// Worst-case execution time bounds.
//
// Two independent analyses over the same per-block costs:
//  * structural_wcet — recursion over the structured AST (Seq: sum, If/
//    Switch: max over arms, Loop: trips_max iterations, Call: callee bound
//    folded in). Exact for this repo's structured programs.
//  * ipet_wcet — Implicit Path Enumeration (Li/Malik): per function,
//    maximize sum(cost_b * x_b) over CFG edge counts subject to flow
//    conservation and loop-bound constraints, solved as an LP with the
//    repo's simplex. The standard technique for arbitrary CFGs.
//
// The two must agree on structured programs — the test suite uses that as
// a differential oracle. Combined with block_costs this quantifies the
// paper's claim that scratchpads "allow tighter bounds on WCET prediction":
// swap cache-pessimistic costs for scratchpad costs and watch the bound
// drop.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/prog/program.hpp"

namespace casa::wcet {

/// AST-recursive WCET bound (cycles). `block_cost` indexed by basic block.
/// Throws on (unsupported) recursive call graphs.
std::uint64_t structural_wcet(const prog::Program& program,
                              const std::vector<std::uint64_t>& block_cost);

/// IPET WCET bound (cycles), LP per function in callee-first order.
std::uint64_t ipet_wcet(const prog::Program& program,
                        const std::vector<std::uint64_t>& block_cost);

}  // namespace casa::wcet

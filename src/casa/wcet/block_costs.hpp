// Per-block worst-case cycle costs under a memory configuration.
//
// The paper's introduction argues that scratchpads "allow tighter bounds on
// WCET prediction": a scratchpad fetch takes a fixed cycle count, while a
// sound cache bound must assume misses unless proven otherwise. This module
// quantifies that: every basic block gets a worst-case cost depending on
// where its memory object lives.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::wcet {

/// How the analysis treats fetches served by the I-cache.
enum class CacheAssumption {
  /// Sound without cache analysis: every line the block touches misses on
  /// every execution.
  kAlwaysMiss,
  /// Oracle floor (unsound as a bound — reference only): every fetch hits.
  kAlwaysHit,
};

const char* to_string(CacheAssumption a);

struct BlockCostOptions {
  cachesim::CacheConfig cache;
  memsim::LatencyParams latency;
  CacheAssumption assumption = CacheAssumption::kAlwaysMiss;
};

/// Worst-case cycles for one execution of every basic block. Objects with
/// on_spm[mo] set cost spm_access cycles per word; cached blocks cost one
/// hit per word plus, under kAlwaysMiss, a refill penalty for every line
/// the block spans in `layout`.
std::vector<std::uint64_t> block_cycle_costs(
    const traceopt::TraceProgram& tp, const traceopt::Layout& layout,
    const std::vector<bool>& on_spm, const BlockCostOptions& opt);

}  // namespace casa::wcet

#include "casa/wcet/block_costs.hpp"

#include "casa/support/error.hpp"

namespace casa::wcet {

const char* to_string(CacheAssumption a) {
  switch (a) {
    case CacheAssumption::kAlwaysMiss:
      return "always-miss";
    case CacheAssumption::kAlwaysHit:
      return "always-hit";
  }
  return "?";
}

std::vector<std::uint64_t> block_cycle_costs(
    const traceopt::TraceProgram& tp, const traceopt::Layout& layout,
    const std::vector<bool>& on_spm, const BlockCostOptions& opt) {
  CASA_CHECK(on_spm.size() == tp.object_count(), "on_spm size mismatch");
  const prog::Program& program = tp.program();
  const memsim::LatencyParams& lat = opt.latency;
  const std::uint64_t line_words = opt.cache.line_size / kWordBytes;

  std::vector<std::uint64_t> cost(program.block_count(), 0);
  for (const prog::BasicBlock& bb : program.blocks()) {
    const MemoryObjectId mo = tp.object_of(bb.id);
    const std::uint64_t words = bb.size / kWordBytes;
    if (on_spm[mo.index()]) {
      cost[bb.id.index()] = words * lat.spm_access;
      continue;
    }
    std::uint64_t c = words * lat.cache_hit;
    if (opt.assumption == CacheAssumption::kAlwaysMiss) {
      const Addr lo = layout.block_addr(bb.id);
      const Addr hi = lo + bb.size;
      const std::uint64_t lines =
          (hi + opt.cache.line_size - 1) / opt.cache.line_size -
          lo / opt.cache.line_size;
      c += lines * (lat.miss_base_penalty + line_words * lat.miss_per_word);
    }
    cost[bb.id.index()] = c;
  }
  return cost;
}

}  // namespace casa::wcet

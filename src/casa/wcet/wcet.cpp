#include "casa/wcet/wcet.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "casa/ilp/model.hpp"
#include "casa/ilp/simplex.hpp"
#include "casa/support/error.hpp"

namespace casa::wcet {

namespace {

/// Callee-first ordering of functions; rejects recursion.
std::vector<FunctionId> callee_first_order(const prog::Program& program) {
  const std::size_t n = program.function_count();

  // Call graph from the statement trees.
  std::vector<std::vector<FunctionId>> callees(n);
  struct CallCollector : prog::StmtVisitor {
    std::vector<FunctionId>* out;
    void visit(const prog::BlockStmt&) override {}
    void visit(const prog::SeqStmt& s) override {
      for (const auto& item : s.items()) item->accept(*this);
    }
    void visit(const prog::LoopStmt& s) override { s.body().accept(*this); }
    void visit(const prog::IfStmt& s) override {
      s.then_arm().accept(*this);
      if (s.else_arm() != nullptr) s.else_arm()->accept(*this);
    }
    void visit(const prog::CallStmt& s) override {
      out->push_back(s.callee());
    }
    void visit(const prog::SwitchStmt& s) override {
      for (const auto& arm : s.arms()) arm->accept(*this);
    }
  };
  for (std::size_t f = 0; f < n; ++f) {
    CallCollector c;
    c.out = &callees[f];
    program.functions()[f].body().accept(c);
  }

  std::vector<FunctionId> order;
  std::vector<std::uint8_t> mark(n, 0);  // 0 new, 1 in progress, 2 done
  const std::function<void(FunctionId)> dfs = [&](FunctionId f) {
    CASA_CHECK(mark[f.index()] != 1,
               "recursive call graph — WCET analysis unsupported");
    if (mark[f.index()] == 2) return;
    mark[f.index()] = 1;
    for (const FunctionId callee : callees[f.index()]) dfs(callee);
    mark[f.index()] = 2;
    order.push_back(f);
  };
  for (std::size_t f = 0; f < n; ++f) {
    dfs(FunctionId(static_cast<std::uint32_t>(f)));
  }
  return order;
}

/// Per-block cost with callee WCET folded into call-site blocks.
std::vector<std::uint64_t> folded_costs(
    const prog::Function& fn, const std::vector<std::uint64_t>& block_cost,
    const std::vector<std::uint64_t>& fn_wcet) {
  std::vector<std::uint64_t> cost = block_cost;
  struct Folder : prog::StmtVisitor {
    std::vector<std::uint64_t>* cost;
    const std::vector<std::uint64_t>* fn_wcet;
    void visit(const prog::BlockStmt&) override {}
    void visit(const prog::SeqStmt& s) override {
      for (const auto& item : s.items()) item->accept(*this);
    }
    void visit(const prog::LoopStmt& s) override { s.body().accept(*this); }
    void visit(const prog::IfStmt& s) override {
      s.then_arm().accept(*this);
      if (s.else_arm() != nullptr) s.else_arm()->accept(*this);
    }
    void visit(const prog::CallStmt& s) override {
      (*cost)[s.site().index()] += (*fn_wcet)[s.callee().index()];
    }
    void visit(const prog::SwitchStmt& s) override {
      for (const auto& arm : s.arms()) arm->accept(*this);
    }
  };
  Folder folder;
  folder.cost = &cost;
  folder.fn_wcet = &fn_wcet;
  fn.body().accept(folder);
  return cost;
}

// ------------------------------------------------------------ structural ---

class StructuralVisitor : public prog::StmtVisitor {
 public:
  StructuralVisitor(const std::vector<std::uint64_t>& cost,
                    const std::vector<std::uint64_t>& fn_wcet)
      : cost_(cost), fn_wcet_(fn_wcet) {}

  std::uint64_t result = 0;

  void visit(const prog::BlockStmt& s) override {
    result += cost_[s.bb().index()];
  }
  void visit(const prog::SeqStmt& s) override {
    for (const auto& item : s.items()) item->accept(*this);
  }
  void visit(const prog::LoopStmt& s) override {
    result += cost_[s.header().index()];
    StructuralVisitor body(cost_, fn_wcet_);
    s.body().accept(body);
    const auto trips = static_cast<std::uint64_t>(s.trips_max());
    result += trips * (body.result + cost_[s.latch().index()]);
  }
  void visit(const prog::IfStmt& s) override {
    result += cost_[s.cond().index()];
    StructuralVisitor then_v(cost_, fn_wcet_);
    s.then_arm().accept(then_v);
    std::uint64_t worst = then_v.result;
    if (s.else_arm() != nullptr) {
      StructuralVisitor else_v(cost_, fn_wcet_);
      s.else_arm()->accept(else_v);
      worst = std::max(worst, else_v.result);
    }
    result += worst;
  }
  void visit(const prog::CallStmt& s) override {
    result += cost_[s.site().index()] + fn_wcet_[s.callee().index()];
  }
  void visit(const prog::SwitchStmt& s) override {
    result += cost_[s.selector().index()];
    std::uint64_t worst = 0;
    for (const auto& arm : s.arms()) {
      StructuralVisitor v(cost_, fn_wcet_);
      arm->accept(v);
      worst = std::max(worst, v.result);
    }
    result += worst;
  }

 private:
  const std::vector<std::uint64_t>& cost_;
  const std::vector<std::uint64_t>& fn_wcet_;
};

// ------------------------------------------------------------------ IPET ---

/// Blocks after which control can leave the statement (mirrors the exit
/// rules of ProgramBuilder's lowering). Applied to a function body it
/// yields the blocks from which the function returns.
class ExitCollector : public prog::StmtVisitor {
 public:
  std::vector<BasicBlockId> exits;

  void visit(const prog::BlockStmt& s) override { exits = {s.bb()}; }
  void visit(const prog::SeqStmt& s) override {
    CASA_CHECK(!s.items().empty(), "empty sequence");
    s.items().back()->accept(*this);
  }
  void visit(const prog::LoopStmt& s) override { exits = {s.latch()}; }
  void visit(const prog::IfStmt& s) override {
    ExitCollector then_c;
    s.then_arm().accept(then_c);
    exits = std::move(then_c.exits);
    if (s.else_arm() != nullptr) {
      ExitCollector else_c;
      s.else_arm()->accept(else_c);
      exits.insert(exits.end(), else_c.exits.begin(), else_c.exits.end());
    } else {
      exits.push_back(s.cond());
    }
  }
  void visit(const prog::CallStmt& s) override { exits = {s.site()}; }
  void visit(const prog::SwitchStmt& s) override {
    std::vector<BasicBlockId> all;
    for (const auto& arm : s.arms()) {
      ExitCollector c;
      arm->accept(c);
      all.insert(all.end(), c.exits.begin(), c.exits.end());
    }
    exits = std::move(all);
  }
};

/// IPET bound for one function, callee costs pre-folded into `cost`.
std::uint64_t ipet_function(const prog::Program& program,
                            const prog::Function& fn,
                            const std::vector<std::uint64_t>& cost) {
  // Intra-function edges only (call/return edges never appear between
  // blocks of the same function).
  struct E {
    BasicBlockId from, to;
    VarId var;
  };
  std::vector<E> edges;
  ilp::Model m;
  for (const prog::CfgEdge& e : program.edges()) {
    if (program.block(e.from).function != fn.id() ||
        program.block(e.to).function != fn.id()) {
      continue;
    }
    edges.push_back(
        E{e.from, e.to,
          m.add_continuous("e" + std::to_string(edges.size()), 0.0,
                           ilp::kInfinity)});
  }
  const VarId entry = m.add_continuous("entry", 1.0, 1.0);

  // Block execution counts as expressions over incoming edges.
  std::unordered_map<std::uint32_t, ilp::LinExpr> in_expr, out_expr;
  for (const BasicBlockId bb : fn.blocks()) {
    in_expr[bb.value()] = ilp::LinExpr();
    out_expr[bb.value()] = ilp::LinExpr();
  }
  for (const E& e : edges) {
    in_expr[e.to.value()].add(e.var, 1.0);
    out_expr[e.from.value()].add(e.var, 1.0);
  }
  CASA_CHECK(!fn.blocks().empty(), "function without blocks");
  in_expr[fn.blocks().front().value()].add(entry, 1.0);

  // Function-return points get sink variables (a loop latch can be both a
  // back-edge source and the block that returns, so "no successors" is not
  // the right criterion — the structured exit rule is).
  ExitCollector exit_collector;
  fn.body().accept(exit_collector);
  std::unordered_map<std::uint32_t, VarId> sink_of;
  for (const BasicBlockId bb : exit_collector.exits) {
    if (sink_of.count(bb.value()) != 0) continue;
    sink_of.emplace(bb.value(),
                    m.add_continuous("sink" + std::to_string(bb.value()),
                                     0.0, ilp::kInfinity));
  }

  // Flow conservation: in = out (+ sink at return points).
  for (const BasicBlockId bb : fn.blocks()) {
    ilp::LinExpr flow = in_expr[bb.value()];
    for (const ilp::Term& t : out_expr[bb.value()].terms()) {
      flow.add(t.var, -1.0);
    }
    auto s = sink_of.find(bb.value());
    if (s != sink_of.end()) flow.add(s->second, -1.0);
    m.add_constraint("flow" + std::to_string(bb.value()), std::move(flow),
                     ilp::Rel::kEqual, 0.0);
  }

  // Loop bounds: back-edge count <= (trips_max - 1) * loop-entry-edge count.
  for (const prog::LoopRegion& lr : program.loop_regions()) {
    if (lr.function != fn.id()) continue;
    const BasicBlockId body_entry =
        program.fallthrough_successor(lr.header);
    CASA_CHECK(body_entry.valid(), "loop header without body");
    ilp::LinExpr bound;
    bool have_back = false, have_entry = false;
    const double k =
        static_cast<double>(std::max<std::int64_t>(lr.trips_max, 1) - 1);
    for (const E& e : edges) {
      if (e.from == lr.latch && e.to == body_entry) {
        bound.add(e.var, 1.0);
        have_back = true;
      } else if (e.from == lr.header && e.to == body_entry) {
        bound.add(e.var, -k);
        have_entry = true;
      }
    }
    CASA_CHECK(have_back && have_entry, "loop edges missing in CFG");
    m.add_constraint("loop" + std::to_string(lr.header.value()),
                     std::move(bound), ilp::Rel::kLessEq, 0.0);
  }

  // Objective: sum over blocks of cost * execution count.
  ilp::LinExpr obj;
  for (const BasicBlockId bb : fn.blocks()) {
    const double c = static_cast<double>(cost[bb.index()]);
    if (c == 0.0) continue;
    for (const ilp::Term& t : in_expr[bb.value()].terms()) {
      obj.add(t.var, c);
    }
  }
  m.set_objective(ilp::Sense::kMaximize, std::move(obj));

  const ilp::Solution sol = ilp::SimplexSolver().solve_relaxation(m);
  CASA_CHECK(sol.status == ilp::SolveStatus::kOptimal,
             "IPET LP did not solve");
  return static_cast<std::uint64_t>(std::llround(sol.objective));
}

}  // namespace

std::uint64_t structural_wcet(const prog::Program& program,
                              const std::vector<std::uint64_t>& block_cost) {
  CASA_CHECK(block_cost.size() == program.block_count(),
             "block cost size mismatch");
  std::vector<std::uint64_t> fn_wcet(program.function_count(), 0);
  for (const FunctionId f : callee_first_order(program)) {
    StructuralVisitor v(block_cost, fn_wcet);
    program.function(f).body().accept(v);
    fn_wcet[f.index()] = v.result;
  }
  return fn_wcet[program.entry().index()];
}

std::uint64_t ipet_wcet(const prog::Program& program,
                        const std::vector<std::uint64_t>& block_cost) {
  CASA_CHECK(block_cost.size() == program.block_count(),
             "block cost size mismatch");
  std::vector<std::uint64_t> fn_wcet(program.function_count(), 0);
  for (const FunctionId f : callee_first_order(program)) {
    const prog::Function& fn = program.function(f);
    const std::vector<std::uint64_t> cost =
        folded_costs(fn, block_cost, fn_wcet);
    fn_wcet[f.index()] = ipet_function(program, fn, cost);
  }
  return fn_wcet[program.entry().index()];
}

}  // namespace casa::wcet

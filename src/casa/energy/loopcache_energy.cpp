#include "casa/energy/loopcache_energy.hpp"

#include "casa/support/error.hpp"

namespace casa::energy {

LoopCacheEnergyModel::LoopCacheEnergyModel(Bytes size, unsigned max_regions,
                                           const TechnologyParams& tech)
    : size_(size), max_regions_(max_regions) {
  CASA_CHECK(max_regions >= 1, "loop cache needs at least one region");
  CASA_CHECK(size >= 2 * kWordBytes, "loop cache too small");
  const std::uint64_t rows = size / kWordBytes;
  const SramArray array{rows, 32};
  array_energy_ = array.read_energy(tech, 32);

  // Two 32-bit magnitude comparators (start/end bound) per region, every
  // fetch. This is why real devices keep the region count at 2-6.
  const double bits = 2.0 * 32.0 * static_cast<double>(max_regions);
  controller_energy_ = bits * tech.e_comparator_per_bit * 1e-3;
}

}  // namespace casa::energy

// Aggregated per-event energies for one memory-subsystem configuration.
//
// This is the "energy cost model" input of the paper's workflow (fig. 3):
// every simulator event maps to exactly one of these constants.
#pragma once

#include "casa/cachesim/cache.hpp"
#include "casa/energy/technology.hpp"
#include "casa/support/units.hpp"

namespace casa::energy {

struct EnergyTable {
  Energy cache_hit = 0;      ///< E_Cache_hit per word fetch
  Energy cache_miss = 0;     ///< E_Cache_miss per missing word fetch
  Energy spm_access = 0;     ///< E_SP_hit per word fetch (0 if no SPM)
  Energy lc_access = 0;      ///< loop-cache fetch incl. controller
  Energy lc_controller = 0;  ///< loop-cache controller-only (fetch not served)
  Energy mainmem_word = 0;   ///< uncached word fetch from main memory

  /// Builds the table for an I-cache plus optional scratchpad (spm_size > 0)
  /// and optional loop cache (lc_size > 0 with lc_regions bound registers).
  static EnergyTable build(const cachesim::CacheConfig& cache, Bytes spm_size,
                           Bytes lc_size, unsigned lc_regions,
                           const TechnologyParams& tech = arm7_tech());
};

}  // namespace casa::energy

// Preloaded loop cache energy model (Gordon-Ross & Vahid style).
//
// Same SRAM array as a scratchpad of equal size, plus a controller that on
// *every* instruction fetch compares the PC against the start/end bounds of
// each preloadable region to decide whether the fetch is served by the loop
// cache — this controller energy is the architectural overhead the paper
// contrasts with the software-managed scratchpad.
#pragma once

#include "casa/energy/sram_array.hpp"
#include "casa/energy/technology.hpp"

namespace casa::energy {

class LoopCacheEnergyModel {
 public:
  LoopCacheEnergyModel(Bytes size, unsigned max_regions,
                       const TechnologyParams& tech = arm7_tech());

  /// Energy of a fetch served by the loop cache (array read + controller).
  Energy access_energy() const { return array_energy_ + controller_energy_; }

  /// Controller energy charged on every fetch NOT served by the loop cache
  /// (the range checks still run).
  Energy controller_energy() const { return controller_energy_; }

  Bytes size() const { return size_; }
  unsigned max_regions() const { return max_regions_; }

 private:
  Bytes size_;
  unsigned max_regions_;
  Energy array_energy_ = 0;
  Energy controller_energy_ = 0;
};

}  // namespace casa::energy

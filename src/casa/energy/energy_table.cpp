#include "casa/energy/energy_table.hpp"

#include "casa/energy/cache_energy.hpp"
#include "casa/energy/loopcache_energy.hpp"
#include "casa/energy/main_memory.hpp"
#include "casa/energy/spm_energy.hpp"

namespace casa::energy {

EnergyTable EnergyTable::build(const cachesim::CacheConfig& cache,
                               Bytes spm_size, Bytes lc_size,
                               unsigned lc_regions,
                               const TechnologyParams& tech) {
  EnergyTable t;
  const CacheEnergyModel cm(cache, tech);
  t.cache_hit = cm.hit_energy();
  t.cache_miss = cm.miss_energy();
  if (spm_size > 0) {
    t.spm_access = SpmEnergyModel(spm_size, tech).access_energy();
  }
  if (lc_size > 0) {
    const LoopCacheEnergyModel lc(lc_size, lc_regions, tech);
    t.lc_access = lc.access_energy();
    t.lc_controller = lc.controller_energy();
  }
  t.mainmem_word = MainMemoryModel(tech).word_read_energy();
  return t;
}

}  // namespace casa::energy

#include "casa/energy/cache_energy.hpp"

#include "casa/energy/main_memory.hpp"
#include "casa/support/error.hpp"

namespace casa::energy {

CacheEnergyModel::CacheEnergyModel(const cachesim::CacheConfig& cfg,
                                   const TechnologyParams& tech)
    : cfg_(cfg) {
  cfg_.validate();
  const unsigned sets = cfg_.sets();
  const unsigned line_bits = static_cast<unsigned>(cfg_.line_size * 8);

  const unsigned index_bits = cfg_.index_bits();
  const unsigned offset_bits = cfg_.offset_bits();
  CASA_CHECK(tech.address_bits > index_bits + offset_bits,
             "address too narrow for this cache");
  tag_bits_ = tech.address_bits - index_bits - offset_bits;

  // Data array: one row per set, all ways side by side.
  const SramArray data{sets,
                       static_cast<std::uint64_t>(line_bits) *
                           cfg_.associativity};
  // Tag array: tag + valid bit per way.
  const SramArray tags{sets, static_cast<std::uint64_t>(tag_bits_ + 1) *
                                 cfg_.associativity};

  const double compare =
      static_cast<double>(tag_bits_) * cfg_.associativity *
          tech.e_comparator_per_bit * 1e-3 +
      static_cast<double>(cfg_.associativity) * tech.e_valid_check * 1e-3;

  // Hit: read set (data + tag), compare, drive one 32-bit word out.
  hit_energy_ = data.read_energy(tech, 32) + tags.read_energy(tech, 0) +
                compare;

  // Miss: the probe (same as a hit minus the word that never comes out of
  // the array), the off-chip burst for the line, the data-array fill and
  // the tag write.
  const MainMemoryModel mm(tech);
  probe_energy_ = data.read_energy(tech, 0) + tags.read_energy(tech, 0) +
                  compare;
  refill_energy_ = data.write_energy(tech, line_bits) +
                   tags.write_energy(tech, tag_bits_ + 1);
  miss_energy_ =
      probe_energy_ + mm.burst_read_energy(cfg_.line_size) + refill_energy_;
}

}  // namespace casa::energy

// I-cache energy model.
//
// A hit reads the full selected set (all ways, data + tag) and muxes one
// word out — the parallel-read organization CACTI assumes for low-latency
// caches. A miss pays the probe, the off-chip line transfer, and the line
// fill write into the data array (plus the tag write).
#pragma once

#include "casa/cachesim/cache.hpp"
#include "casa/energy/sram_array.hpp"
#include "casa/energy/technology.hpp"

namespace casa::energy {

class CacheEnergyModel {
 public:
  CacheEnergyModel(const cachesim::CacheConfig& cfg,
                   const TechnologyParams& tech = arm7_tech());

  /// E_Cache_hit — energy of one word fetch that hits.
  Energy hit_energy() const { return hit_energy_; }

  /// E_Cache_miss — energy of one word fetch that misses: probe + off-chip
  /// line read + array fill. (The paper's E_Cache_miss >> E_Cache_hit.)
  Energy miss_energy() const { return miss_energy_; }

  /// The tag+data lookup that discovers a miss (no word delivered).
  Energy probe_energy() const { return probe_energy_; }

  /// Writing one line (data + tag) into the arrays.
  Energy linefill_energy() const { return refill_energy_; }

  /// Tag bits per line for this configuration.
  unsigned tag_bits() const { return tag_bits_; }

  const cachesim::CacheConfig& config() const { return cfg_; }

 private:
  cachesim::CacheConfig cfg_;
  unsigned tag_bits_ = 0;
  Energy hit_energy_ = 0;
  Energy miss_energy_ = 0;
  Energy probe_energy_ = 0;
  Energy refill_energy_ = 0;
};

}  // namespace casa::energy

#include "casa/energy/sram_array.hpp"

#include <cmath>

#include "casa/support/error.hpp"

namespace casa::energy {

namespace {
// femtofarads * volts^2 -> nanojoules  (fF * V^2 = 1e-15 J = 1e-6 nJ)
constexpr double kFFV2ToNano = 1e-6;
// picojoules -> nanojoules
constexpr double kPicoToNano = 1e-3;
}  // namespace

Energy SramArray::decode_energy(const TechnologyParams& t) const {
  CASA_CHECK(rows > 0, "array needs rows");
  const double addr_bits = std::log2(static_cast<double>(rows));
  // Predecoders plus the selected row driver; fanout grows with the tree.
  const double cap = t.c_decoder_per_bit * (addr_bits + 2.0);
  return cap * t.vdd * t.vdd * kFFV2ToNano;
}

Energy SramArray::wordline_energy(const TechnologyParams& t) const {
  const double cap =
      t.c_wordline_driver + t.c_wordline_per_cell * static_cast<double>(cols);
  return cap * t.vdd * t.vdd * kFFV2ToNano;
}

Energy SramArray::bitline_read_energy(const TechnologyParams& t) const {
  // Differential pair per column: precharge then partial swing discharge.
  const double cap_per_col =
      t.c_bitline_base + t.c_bitline_per_cell * static_cast<double>(rows);
  const double pair_factor = 2.0;
  return pair_factor * static_cast<double>(cols) * cap_per_col * t.vdd *
         t.bitline_swing * kFFV2ToNano;
}

Energy SramArray::sense_energy(const TechnologyParams& t) const {
  return static_cast<double>(cols) * t.e_senseamp_per_bit * kPicoToNano;
}

Energy SramArray::output_energy(const TechnologyParams& t,
                                std::uint64_t bits_out) const {
  return static_cast<double>(bits_out) * t.c_output_per_bit * t.vdd * t.vdd *
         kFFV2ToNano;
}

Energy SramArray::read_energy(const TechnologyParams& t,
                              std::uint64_t bits_out) const {
  return decode_energy(t) + wordline_energy(t) + bitline_read_energy(t) +
         sense_energy(t) + output_energy(t, bits_out);
}

Energy SramArray::write_energy(const TechnologyParams& t,
                               std::uint64_t bits) const {
  // Written columns swing rail to rail; the rest of the row is half-selected
  // and still pays the read-style partial swing.
  const double cap_per_col =
      t.c_bitline_base + t.c_bitline_per_cell * static_cast<double>(rows);
  const double full = static_cast<double>(bits) * cap_per_col * t.vdd * t.vdd;
  const double half_cols =
      cols > bits ? static_cast<double>(cols - bits) : 0.0;
  const double half = half_cols * cap_per_col * t.vdd * t.bitline_swing;
  return decode_energy(t) + wordline_energy(t) +
         (full + half) * kFFV2ToNano;
}

}  // namespace casa::energy

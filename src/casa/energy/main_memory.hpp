// Off-chip main memory energy.
//
// The paper measured this from the ARM7T evaluation board; here it is a
// constant-per-burst plus per-word model (row activation + word transfers +
// pad/bus driving).
#pragma once

#include "casa/energy/technology.hpp"
#include "casa/support/units.hpp"

namespace casa::energy {

class MainMemoryModel {
 public:
  explicit MainMemoryModel(const TechnologyParams& tech = arm7_tech())
      : tech_(tech) {}

  /// Energy of reading `bytes` as one burst (e.g. a cache line fill).
  Energy burst_read_energy(Bytes bytes) const {
    const double words =
        static_cast<double>((bytes + kWordBytes - 1) / kWordBytes);
    return tech_.e_mainmem_fixed_nj +
           words * (tech_.e_mainmem_per_word_nj +
                    tech_.e_offchip_bus_per_word_nj);
  }

  /// Energy of a single uncached word fetch from main memory.
  Energy word_read_energy() const { return burst_read_energy(kWordBytes); }

 private:
  TechnologyParams tech_;
};

}  // namespace casa::energy

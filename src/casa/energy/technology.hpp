// Technology parameters for the analytical energy models.
//
// The paper used CACTI (Wilton & Jouppi) at 0.5 µm for the on-chip arrays,
// the Banakar et al. model for the scratchpad, and board measurements for
// off-chip main memory. We re-implement the same *structure*: per-stage
// SRAM-array terms (decoder, wordline, bitline, sense, output) driven by a
// small set of capacitance/voltage constants. The defaults below are tuned
// to the 0.5 µm / 3.3 V era so that the energy *ratios* that drive the
// allocation (E_miss >> E_hit > E_spm) match the regime of the paper.
#pragma once

namespace casa::energy {

struct TechnologyParams {
  double vdd = 3.3;            ///< supply voltage (V)
  double bitline_swing = 0.45;  ///< read swing on the bitlines (V)

  // Capacitances in femtofarads (0.5 µm-era cell and driver loads).
  double c_bitline_per_cell = 6.5;   ///< drain load each cell adds to a bitline
  double c_bitline_base = 220.0;     ///< precharge/IO fixed bitline load
  double c_wordline_per_cell = 4.0;  ///< gate load each cell adds to a wordline
  double c_wordline_driver = 60.0;   ///< wordline driver self-load
  double c_decoder_per_bit = 260.0;  ///< predecode/drive per address bit
  double c_output_per_bit = 260.0;   ///< output driver + mux per data bit read

  // Fixed per-operation energies in picojoules.
  double e_senseamp_per_bit = 1.1;    ///< differential sense amplifier fire
  double e_comparator_per_bit = 0.45; ///< tag comparator per tag bit per way
  double e_valid_check = 0.50;        ///< valid/status bit handling per way

  // Off-chip main memory (measured constants in the paper's setup).
  double e_mainmem_fixed_nj = 12.0;      ///< per-burst: control + row activate
  double e_mainmem_per_word_nj = 6.0;   ///< per 32-bit word transferred
  double e_offchip_bus_per_word_nj = 1.1;  ///< pad/bus driving per word

  /// Physical address width used for tag sizing.
  unsigned address_bits = 32;
};

/// The constant set used by all ARM7T experiments in this repo.
inline const TechnologyParams& arm7_tech() {
  static const TechnologyParams t{};
  return t;
}

}  // namespace casa::energy

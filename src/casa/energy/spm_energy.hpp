// Scratchpad energy model (Banakar et al., CODES 2002 style).
//
// A scratchpad is a plain SRAM array: no tags, no comparators, word-wide
// read. This is why E_SP_hit < E_Cache_hit at equal capacity — the whole
// point of the architecture.
#pragma once

#include "casa/energy/sram_array.hpp"
#include "casa/energy/technology.hpp"

namespace casa::energy {

class SpmEnergyModel {
 public:
  /// `size` bytes of scratchpad, organized as 32-bit words.
  explicit SpmEnergyModel(Bytes size,
                          const TechnologyParams& tech = arm7_tech());

  /// E_SP_hit — one word fetch from the scratchpad.
  Energy access_energy() const { return access_energy_; }

  Bytes size() const { return size_; }

 private:
  Bytes size_;
  Energy access_energy_ = 0;
};

}  // namespace casa::energy

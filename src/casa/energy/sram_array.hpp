// Analytical SRAM array energy (CACTI-style stage decomposition).
//
// An array of `rows` wordlines by `cols` bit cells. A read fires the
// decoder, one wordline, all column bitline pairs (partial swing), and one
// sense amplifier per column; a write drives the written columns rail to
// rail. All energies are returned in nanojoules.
#pragma once

#include <cstdint>

#include "casa/energy/technology.hpp"
#include "casa/support/units.hpp"

namespace casa::energy {

struct SramArray {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;  ///< bit columns

  /// Energy to decode one of `rows` wordlines.
  Energy decode_energy(const TechnologyParams& t) const;
  /// Energy to raise one wordline across `cols` cells.
  Energy wordline_energy(const TechnologyParams& t) const;
  /// Energy of a partial-swing read on all columns (differential pairs).
  Energy bitline_read_energy(const TechnologyParams& t) const;
  /// Energy of sensing all columns.
  Energy sense_energy(const TechnologyParams& t) const;
  /// Energy to drive `bits_out` bits off the array.
  Energy output_energy(const TechnologyParams& t, std::uint64_t bits_out) const;

  /// Full read access delivering `bits_out` bits.
  Energy read_energy(const TechnologyParams& t, std::uint64_t bits_out) const;

  /// Full-swing write of `bits` columns (line fill / store).
  Energy write_energy(const TechnologyParams& t, std::uint64_t bits) const;
};

}  // namespace casa::energy

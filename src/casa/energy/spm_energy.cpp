#include "casa/energy/spm_energy.hpp"

#include "casa/support/error.hpp"

namespace casa::energy {

SpmEnergyModel::SpmEnergyModel(Bytes size, const TechnologyParams& tech)
    : size_(size) {
  CASA_CHECK(size >= 2 * kWordBytes, "scratchpad too small");
  CASA_CHECK(size % kWordBytes == 0, "scratchpad size must be word multiple");
  const std::uint64_t rows = size / kWordBytes;
  const SramArray array{rows, 32};
  access_energy_ = array.read_energy(tech, 32);
}

}  // namespace casa::energy

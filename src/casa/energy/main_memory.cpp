#include "casa/energy/main_memory.hpp"

// Header-only model; translation unit anchors the library target.

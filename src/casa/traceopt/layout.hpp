// Program layout: assignment of main-memory addresses to memory objects.
//
// Two entry points mirror the paper's two allocation semantics:
//  * layout_all      — every object gets a main-memory slot (CASA *copies*
//                      objects to the scratchpad, leaving the layout of the
//                      remaining program untouched);
//  * layout_excluding — scratchpad-resident objects are removed and the rest
//                      is compacted (Steinke's allocator *moves* objects,
//                      which re-maps every remaining object in the cache —
//                      the source of the erratic behaviour the paper
//                      criticizes).
#pragma once

#include <vector>

#include "casa/trace/compiled_stream.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::traceopt {

class Layout {
 public:
  Layout(const TraceProgram& tp, std::vector<Addr> object_base, Addr base,
         Bytes span);

  /// Main-memory base address of `mo`. Must only be queried for placed
  /// objects.
  Addr object_base(MemoryObjectId mo) const {
    CASA_CHECK(placed(mo), "object not placed in this layout");
    return object_base_[mo.index()];
  }

  bool placed(MemoryObjectId mo) const {
    return object_base_[mo.index()] != kUnplaced;
  }

  /// Address of the first instruction of `bb` (owning object must be
  /// placed).
  Addr block_addr(BasicBlockId bb) const;

  Addr base() const { return base_; }
  Bytes span() const { return span_; }

  static constexpr Addr kUnplaced = ~Addr{0};

 private:
  const TraceProgram* tp_;
  std::vector<Addr> object_base_;
  Addr base_;
  Bytes span_;
};

/// Lays out every memory object contiguously from `base` in object order.
Layout layout_all(const TraceProgram& tp, Addr base = 0);

/// Lays out only objects with excluded[mo] == false, compacted from `base`.
Layout layout_excluding(const TraceProgram& tp,
                        const std::vector<bool>& excluded, Addr base = 0);

/// Lowers `layout` into a line-granular fetch stream for `line_size`-byte
/// cache lines. Blocks of unplaced objects compile as not-cached (their
/// fetches never reach the cache).
trace::CompiledStream compile_fetch_stream(const TraceProgram& tp,
                                           const Layout& layout,
                                           Bytes line_size);

}  // namespace casa::traceopt

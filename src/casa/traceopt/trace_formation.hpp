// Trace formation (Tomiyama/Yasuura-style, adapted per the paper §3.2).
//
// Partitions every basic block of the program into traces:
//  * only fallthrough CFG edges may be fused,
//  * fusion follows hot paths (profile-driven),
//  * a trace never exceeds max_trace_size bytes so it stays placeable on the
//    scratchpad as a whole,
//  * a trace whose last block originally fell through now needs an explicit
//    unconditional exit jump (one word) so the trace is relocatable,
//  * traces are NOP-padded to the I-cache line size.
#pragma once

#include "casa/prog/program.hpp"
#include "casa/trace/profile.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::traceopt {

struct TraceFormationOptions {
  /// Upper bound on the unpadded trace size. The paper keeps traces smaller
  /// than the scratchpad so each one is individually placeable.
  Bytes max_trace_size = 1024;

  /// I-cache line size; traces are padded to this alignment.
  Bytes cache_line_size = 16;

  /// A fallthrough edge b->n is fused only when its dynamic count is at
  /// least fuse_ratio * max(count(b), count(n)). 0 fuses every fallthrough
  /// chain (size permitting); values > 1 disable fusion entirely.
  double fuse_ratio = 0.5;

  /// Size in bytes of the unconditional jump appended when a trace is cut
  /// at a point where control used to fall through.
  Bytes exit_jump_size = kWordBytes;
};

/// Forms the memory objects for `program` under `profile`.
TraceProgram form_traces(const prog::Program& program,
                         const trace::Profile& profile,
                         const TraceFormationOptions& opt = {});

}  // namespace casa::traceopt

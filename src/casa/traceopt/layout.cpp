#include "casa/traceopt/layout.hpp"

namespace casa::traceopt {

Layout::Layout(const TraceProgram& tp, std::vector<Addr> object_base,
               Addr base, Bytes span)
    : tp_(&tp), object_base_(std::move(object_base)), base_(base), span_(span) {
  CASA_CHECK(object_base_.size() == tp.object_count(),
             "layout object count mismatch");
}

Addr Layout::block_addr(BasicBlockId bb) const {
  const MemoryObjectId mo = tp_->object_of(bb);
  return object_base(mo) + tp_->block_offset(bb);
}

Layout layout_all(const TraceProgram& tp, Addr base) {
  const std::vector<bool> none(tp.object_count(), false);
  return layout_excluding(tp, none, base);
}

Layout layout_excluding(const TraceProgram& tp,
                        const std::vector<bool>& excluded, Addr base) {
  CASA_CHECK(excluded.size() == tp.object_count(),
             "excluded mask size mismatch");
  std::vector<Addr> object_base(tp.object_count(), Layout::kUnplaced);
  Addr cursor = base;
  for (const MemoryObject& mo : tp.objects()) {
    if (excluded[mo.id.index()]) continue;
    object_base[mo.id.index()] = cursor;
    cursor += mo.padded_size;
  }
  return Layout(tp, std::move(object_base), base, cursor - base);
}

trace::CompiledStream compile_fetch_stream(const TraceProgram& tp,
                                           const Layout& layout,
                                           Bytes line_size) {
  const prog::Program& program = tp.program();
  std::vector<Addr> block_addr(program.block_count(),
                               trace::CompiledStream::kNotCached);
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const BasicBlockId bb(static_cast<std::uint32_t>(i));
    const MemoryObjectId mo = tp.object_of(bb);
    if (!mo.valid() || !layout.placed(mo)) continue;
    block_addr[i] = layout.block_addr(bb);
  }
  return trace::CompiledStream(program, block_addr, line_size);
}

}  // namespace casa::traceopt

// Memory objects (traces) — the allocation unit of the paper.
//
// A memory object is a straight-line trace of basic blocks, padded with NOPs
// to the next I-cache line boundary so that every cache miss is attributable
// to exactly one object. The scratchpad capacity check uses the *unpadded*
// size (the paper strips the NOPs before copying to the scratchpad).
#pragma once

#include <cstdint>
#include <vector>

#include "casa/prog/program.hpp"
#include "casa/support/ids.hpp"
#include "casa/support/units.hpp"
#include "casa/trace/profile.hpp"

namespace casa::traceopt {

struct MemoryObject {
  MemoryObjectId id;
  FunctionId function;
  std::vector<BasicBlockId> blocks;  ///< in trace layout order
  Bytes raw_size = 0;     ///< real instructions incl. exit jump, no NOP pad
  Bytes padded_size = 0;  ///< raw_size aligned up to the cache line
  std::uint64_t fetches = 0;  ///< dynamic instruction fetches f_i
};

/// The program partitioned into memory objects, with intra-object block
/// placement resolved.
class TraceProgram {
 public:
  TraceProgram(const prog::Program& program,
               std::vector<MemoryObject> objects,
               std::vector<MemoryObjectId> object_of_block,
               std::vector<Bytes> block_offset);

  const prog::Program& program() const { return *program_; }
  const std::vector<MemoryObject>& objects() const { return objects_; }
  const MemoryObject& object(MemoryObjectId id) const {
    CASA_CHECK(id.index() < objects_.size(), "bad MemoryObjectId");
    return objects_[id.index()];
  }
  std::size_t object_count() const { return objects_.size(); }

  /// Memory object that owns basic block `bb`.
  MemoryObjectId object_of(BasicBlockId bb) const {
    return object_of_block_[bb.index()];
  }

  /// Byte offset of `bb` inside its owning object.
  Bytes block_offset(BasicBlockId bb) const {
    return block_offset_[bb.index()];
  }

  /// Total padded code size (what main memory layout occupies).
  Bytes padded_code_size() const;
  /// Total unpadded code size.
  Bytes raw_code_size() const;

 private:
  const prog::Program* program_;
  std::vector<MemoryObject> objects_;
  std::vector<MemoryObjectId> object_of_block_;
  std::vector<Bytes> block_offset_;
};

}  // namespace casa::traceopt

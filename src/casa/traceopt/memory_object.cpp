#include "casa/traceopt/memory_object.hpp"

namespace casa::traceopt {

TraceProgram::TraceProgram(const prog::Program& program,
                           std::vector<MemoryObject> objects,
                           std::vector<MemoryObjectId> object_of_block,
                           std::vector<Bytes> block_offset)
    : program_(&program),
      objects_(std::move(objects)),
      object_of_block_(std::move(object_of_block)),
      block_offset_(std::move(block_offset)) {
  CASA_CHECK(object_of_block_.size() == program.block_count(),
             "object_of_block size mismatch");
  CASA_CHECK(block_offset_.size() == program.block_count(),
             "block_offset size mismatch");
  for (const auto& mo : objects_) {
    CASA_CHECK(!mo.blocks.empty(), "memory object with no blocks");
    CASA_CHECK(mo.padded_size >= mo.raw_size, "padding must not shrink");
  }
}

Bytes TraceProgram::padded_code_size() const {
  Bytes total = 0;
  for (const auto& mo : objects_) total += mo.padded_size;
  return total;
}

Bytes TraceProgram::raw_code_size() const {
  Bytes total = 0;
  for (const auto& mo : objects_) total += mo.raw_size;
  return total;
}

}  // namespace casa::traceopt

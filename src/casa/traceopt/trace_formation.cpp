#include "casa/traceopt/trace_formation.hpp"

#include <algorithm>

#include "casa/support/error.hpp"

namespace casa::traceopt {

namespace {

/// True when the fallthrough edge b -> n is hot enough to fuse.
bool hot_enough(const trace::Profile& profile, BasicBlockId b, BasicBlockId n,
                double fuse_ratio) {
  const std::uint64_t cb = profile.count(b);
  const std::uint64_t cn = profile.count(n);
  if (cb == 0 && cn == 0) return true;  // cold chunks stay together
  const std::uint64_t edge = profile.edge_count(b, n);
  const double need = fuse_ratio * static_cast<double>(std::max(cb, cn));
  return static_cast<double>(edge) >= need;
}

}  // namespace

TraceProgram form_traces(const prog::Program& program,
                         const trace::Profile& profile,
                         const TraceFormationOptions& opt) {
  CASA_CHECK(is_pow2(opt.cache_line_size), "cache line size must be pow2");
  CASA_CHECK(opt.max_trace_size >= opt.cache_line_size,
             "max trace size must hold at least one cache line");
  CASA_CHECK(profile.block_slots() == program.block_count(),
             "profile does not match program");

  std::vector<MemoryObject> objects;
  std::vector<MemoryObjectId> object_of_block(program.block_count());
  std::vector<Bytes> block_offset(program.block_count(), 0);

  for (const prog::Function& fn : program.functions()) {
    const auto& blocks = fn.blocks();
    std::size_t i = 0;
    while (i < blocks.size()) {
      MemoryObject mo;
      mo.id = MemoryObjectId(static_cast<std::uint32_t>(objects.size()));
      mo.function = fn.id();

      // Greedily extend the trace along hot fallthrough edges.
      Bytes size = 0;
      std::size_t j = i;
      for (;;) {
        const BasicBlockId bb = blocks[j];
        const Bytes bsize = program.block(bb).size;
        mo.blocks.push_back(bb);
        block_offset[bb.index()] = size;
        object_of_block[bb.index()] = mo.id;
        size += bsize;
        mo.fetches += profile.fetches(program, bb);
        ++j;
        if (j >= blocks.size()) break;
        const BasicBlockId next = blocks[j];
        const BasicBlockId ft = program.fallthrough_successor(bb);
        if (ft != next) break;  // layout successor is not a fallthrough
        // Reserve room for the exit jump we would need if we cut later.
        if (size + program.block(next).size + opt.exit_jump_size >
            opt.max_trace_size) {
          break;
        }
        if (!hot_enough(profile, bb, next, opt.fuse_ratio)) break;
      }

      mo.raw_size = size;
      // If the trace's last block originally fell through to the next block
      // in layout, the cut point needs an explicit unconditional jump to
      // keep the trace relocatable (paper §3.2: traces end with a jump).
      if (j < blocks.size() &&
          program.fallthrough_successor(blocks[j - 1]) == blocks[j]) {
        mo.raw_size += opt.exit_jump_size;
      }
      mo.padded_size = align_up(mo.raw_size, opt.cache_line_size);
      CASA_CHECK(mo.raw_size <= opt.max_trace_size ||
                     mo.blocks.size() == 1,
                 "formed trace exceeds max size");

      objects.push_back(std::move(mo));
      i = j;
    }
  }

  return TraceProgram(program, std::move(objects), std::move(object_of_block),
                      std::move(block_offset));
}

}  // namespace casa::traceopt

#include "casa/svc/protocol.hpp"

#include <ostream>
#include <sstream>

#include "casa/cachesim/cache.hpp"
#include "casa/core/allocator.hpp"
#include "casa/core/formulation.hpp"
#include "casa/io/json.hpp"
#include "casa/obs/export.hpp"
#include "casa/support/error.hpp"

namespace casa::svc {

namespace {

using io::JsonValue;

std::uint64_t u64_field(const JsonValue& obj, const std::string& key,
                        std::uint64_t fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  CASA_CHECK(v->kind == JsonValue::Kind::kNumber,
             "serve request: '" + key + "' must be a number");
  return io::to_u64(v->str);
}

std::string str_field(const JsonValue& obj, const std::string& key,
                      const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  CASA_CHECK(v->kind == JsonValue::Kind::kString,
             "serve request: '" + key + "' must be a string");
  return v->str;
}

report::FlowKind flow_from(const std::string& s) {
  using FlowKind = report::FlowKind;
  for (const FlowKind f : {FlowKind::kCasa, FlowKind::kSteinke,
                           FlowKind::kLoopCache, FlowKind::kCacheOnly}) {
    if (s == to_string(f)) return f;
  }
  throw PreconditionError("serve request: unknown flow '" + s + "'");
}

cachesim::CacheConfig cache_from(const JsonValue& v) {
  CASA_CHECK(v.kind == JsonValue::Kind::kObject,
             "serve request: 'cache' must be an object");
  cachesim::CacheConfig config;
  config.size = u64_field(v, "size", config.size);
  config.line_size = u64_field(v, "line_size", config.line_size);
  config.associativity = static_cast<unsigned>(
      u64_field(v, "associativity", config.associativity));
  const std::string policy = str_field(v, "policy", "LRU");
  bool known = false;
  for (const auto p :
       {cachesim::ReplacementPolicy::kLru, cachesim::ReplacementPolicy::kFifo,
        cachesim::ReplacementPolicy::kRoundRobin,
        cachesim::ReplacementPolicy::kRandom}) {
    if (policy == to_string(p)) {
      config.policy = p;
      known = true;
    }
  }
  CASA_CHECK(known, "serve request: unknown cache policy '" + policy + "'");
  return config;
}

report::Workbench::Job job_from(const JsonValue& v) {
  CASA_CHECK(v.kind == JsonValue::Kind::kObject,
             "serve request: a job must be an object");
  report::Workbench::Job job;
  job.kind = flow_from(str_field(v, "kind", "casa"));
  if (const JsonValue* cache = v.find("cache")) job.cache = cache_from(*cache);
  job.size = u64_field(v, "size", job.size);
  job.max_regions =
      static_cast<unsigned>(u64_field(v, "max_regions", job.max_regions));
  if (const JsonValue* casa = v.find("casa")) {
    CASA_CHECK(casa->kind == JsonValue::Kind::kObject,
               "serve request: 'casa' must be an object");
    core::CasaOptions& o = job.casa;
    const std::string engine = str_field(*casa, "engine", "auto");
    bool known = false;
    for (const auto e :
         {core::CasaEngine::kAuto, core::CasaEngine::kSpecializedBnB,
          core::CasaEngine::kGenericIlp, core::CasaEngine::kGreedy}) {
      if (engine == to_string(e)) {
        o.engine = e;
        known = true;
      }
    }
    CASA_CHECK(known, "serve request: unknown engine '" + engine + "'");
    const std::string lin = str_field(*casa, "linearization", "tight");
    CASA_CHECK(lin == "paper" || lin == "tight",
               "serve request: unknown linearization '" + lin + "'");
    o.linearization = lin == "paper" ? core::Linearization::kPaper
                                     : core::Linearization::kTight;
    o.generic_ilp_max_edges =
        u64_field(*casa, "generic_ilp_max_edges", o.generic_ilp_max_edges);
    o.max_nodes = u64_field(*casa, "max_nodes", o.max_nodes);
    o.ilp_threads =
        static_cast<unsigned>(u64_field(*casa, "ilp_threads", o.ilp_threads));
    o.ilp_subtree_depth = static_cast<unsigned>(
        u64_field(*casa, "ilp_subtree_depth", o.ilp_subtree_depth));
    o.ilp_warm_start =
        u64_field(*casa, "ilp_warm_start", o.ilp_warm_start ? 1 : 0) != 0;
    o.ilp_presolve =
        u64_field(*casa, "ilp_presolve", o.ilp_presolve ? 1 : 0) != 0;
  }
  return job;
}

/// Compact, deterministic outcome rendering: a pure function of the
/// Outcome, so equal Outcomes always serialize to identical bytes (the
/// warm-cache byte-identity contract).
void write_outcome(std::ostream& os, const report::Outcome& out) {
  const memsim::SimCounters& c = out.sim.counters;
  os << "{\"flow\":\"" << to_string(out.flow())
     << "\",\"object_count\":" << out.object_count
     << ",\"spm_used\":" << out.spm_used
     << ",\"total_fetches\":" << c.total_fetches
     << ",\"spm_accesses\":" << c.spm_accesses
     << ",\"lc_accesses\":" << c.lc_accesses
     << ",\"cache_accesses\":" << c.cache_accesses
     << ",\"cache_hits\":" << c.cache_hits
     << ",\"cache_misses\":" << c.cache_misses
     << ",\"cache_evictions\":" << c.cache_evictions
     << ",\"mainmem_words\":" << c.mainmem_words << ",\"cycles\":" << c.cycles
     << ",\"total_energy\":" << obs::format_double(out.sim.total_energy)
     << ",\"spm_energy\":" << obs::format_double(out.sim.spm_energy)
     << ",\"cache_energy\":" << obs::format_double(out.sim.cache_energy)
     << ",\"lc_energy\":" << obs::format_double(out.sim.lc_energy);
  if (out.flow() == report::FlowKind::kCasa) {
    const core::AllocationResult& a = out.alloc();
    os << ",\"conflict_edges\":" << out.conflict_edges()
       << ",\"predicted_energy\":" << obs::format_double(a.predicted_energy)
       << ",\"predicted_saving\":" << obs::format_double(a.predicted_saving)
       << ",\"engine_used\":\"" << to_string(a.engine_used)
       << "\",\"solver_nodes\":" << a.solver_nodes
       << ",\"exact\":" << (a.exact ? 1 : 0);
  } else if (out.flow() == report::FlowKind::kLoopCache) {
    os << ",\"lc_regions\":" << out.lc_regions();
  }
  os << "}";
}

}  // namespace

Request parse_request(const std::string& line) {
  const JsonValue root = io::JsonReader(line).parse();
  CASA_CHECK(root.kind == JsonValue::Kind::kObject,
             "serve request: expected a JSON object");
  Request req;
  const std::string op = str_field(root, "op", "");
  if (op == "stats") {
    req.op = Request::Op::kStats;
    return req;
  }
  if (op == "flush") {
    req.op = Request::Op::kFlush;
    return req;
  }
  CASA_CHECK(op == "evaluate" || op == "batch" || op == "sweep",
             "serve request: unknown op '" + op + "'");
  req.workload = str_field(root, "workload", "");
  CASA_CHECK(!req.workload.empty(),
             "serve request: '" + op + "' needs a workload");
  if (op == "evaluate") {
    req.op = Request::Op::kEvaluate;
    const JsonValue* job = root.find("job");
    CASA_CHECK(job != nullptr, "serve request: 'evaluate' needs a job");
    req.jobs.push_back(job_from(*job));
    return req;
  }
  if (op == "batch") {
    req.op = Request::Op::kBatch;
    const JsonValue* jobs = root.find("jobs");
    CASA_CHECK(jobs != nullptr && jobs->kind == JsonValue::Kind::kArray &&
                   !jobs->items.empty(),
               "serve request: 'batch' needs a non-empty jobs array");
    for (const JsonValue& j : jobs->items) req.jobs.push_back(job_from(j));
    return req;
  }
  if (op == "sweep") {
    req.op = Request::Op::kSweep;
    cachesim::CacheConfig cache;
    if (const JsonValue* c = root.find("cache")) cache = cache_from(*c);
    const JsonValue* spm = root.find("spm");
    CASA_CHECK(spm != nullptr && spm->kind == JsonValue::Kind::kArray,
               "serve request: 'sweep' needs an spm size array");
    const JsonValue* flows = root.find("flows");
    CASA_CHECK(flows != nullptr && flows->kind == JsonValue::Kind::kArray &&
                   !flows->items.empty(),
               "serve request: 'sweep' needs a flows array");
    const unsigned regions =
        static_cast<unsigned>(u64_field(root, "max_regions", 4));
    for (const JsonValue& f : flows->items) {
      CASA_CHECK(f.kind == JsonValue::Kind::kString,
                 "serve request: flow names must be strings");
      const report::FlowKind kind = flow_from(f.str);
      if (kind == report::FlowKind::kCacheOnly) {
        req.jobs.push_back(report::Workbench::Job::cache_only_job(cache));
        continue;
      }
      CASA_CHECK(!spm->items.empty(),
                 "serve request: 'sweep' needs at least one spm size");
      for (const JsonValue& size : spm->items) {
        CASA_CHECK(size.kind == JsonValue::Kind::kNumber,
                   "serve request: spm sizes must be numbers");
        const Bytes bytes = io::to_u64(size.str);
        switch (kind) {
          case report::FlowKind::kCasa:
            req.jobs.push_back(
                report::Workbench::Job::casa_job(cache, bytes));
            break;
          case report::FlowKind::kSteinke:
            req.jobs.push_back(
                report::Workbench::Job::steinke_job(cache, bytes));
            break;
          case report::FlowKind::kLoopCache:
            req.jobs.push_back(
                report::Workbench::Job::loopcache_job(cache, bytes, regions));
            break;
          case report::FlowKind::kCacheOnly:
            break;
        }
      }
    }
    return req;
  }
  throw PreconditionError("serve request: unknown op '" + op + "'");
}

void write_response_line(std::ostream& os, std::size_t index,
                         const EvalResponse& resp) {
  if (resp.rejected) {
    os << "{\"reply\":\"rejected\",\"index\":" << index
       << ",\"retry_after_ms\":" << resp.retry_after_ms << "}\n";
    return;
  }
  os << "{\"reply\":\"result\",\"index\":" << index << ",\"status\":\""
     << to_string(resp.result.status) << "\",\"provenance\":\""
     << to_string(resp.provenance)
     << "\",\"attempts\":" << resp.result.attempts;
  if (resp.result.ok()) {
    os << ",\"outcome\":";
    write_outcome(os, resp.result.outcome);
  } else {
    os << ",\"error_kind\":\"" << obs::json_escape(resp.result.error_kind)
       << "\",\"message\":\"" << obs::json_escape(resp.result.message)
       << "\"";
  }
  os << "}\n";
}

void write_stats_line(std::ostream& os, const EvalService::Stats& stats) {
  os << "{\"reply\":\"stats\",\"requests\":" << stats.requests
     << ",\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
     << ",\"inflight_joins\":" << stats.inflight_joins
     << ",\"rejections\":" << stats.rejections
     << ",\"persist_loads\":" << stats.persist_loads
     << ",\"persist_errors\":" << stats.persist_errors
     << ",\"verified_hits\":" << stats.verified_hits
     << ",\"queue_depth\":" << stats.queue_depth
     << ",\"cache_entries\":" << stats.cache.entries
     << ",\"cache_bytes\":" << stats.cache.bytes
     << ",\"cache_evictions\":" << stats.cache.evictions << "}\n";
}

void write_ok_line(std::ostream& os) { os << "{\"reply\":\"ok\"}\n"; }

void write_done_line(std::ostream& os, std::size_t results) {
  os << "{\"reply\":\"done\",\"results\":" << results << "}\n";
}

void write_error_line(std::ostream& os, const std::string& message) {
  os << "{\"reply\":\"error\",\"message\":\"" << obs::json_escape(message)
     << "\"}\n";
}

}  // namespace casa::svc

#include "casa/svc/service.hpp"

#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "casa/check/rules.hpp"
#include "casa/check/runner.hpp"
#include "casa/fault/fault.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/io/serialize.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/span.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/error.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::svc {

namespace metrics = obs::metric_names;

std::string_view to_string(Provenance p) {
  switch (p) {
    case Provenance::kMiss:
      return "miss";
    case Provenance::kHit:
      return "hit";
    case Provenance::kInflightJoin:
      return "inflight_join";
  }
  return "?";
}

EvalService::EvalService(ServiceOptions opt)
    : opt_(std::move(opt)), cache_(opt_.cache_bytes, opt_.metrics) {
  if (!opt_.persist_dir.empty()) {
    std::filesystem::create_directories(opt_.persist_dir);
  }
}

void EvalService::count(std::string_view name,
                        std::atomic<std::uint64_t>& cell) {
  cell.fetch_add(1, std::memory_order_relaxed);
  if (opt_.metrics != nullptr) opt_.metrics->add(name);
}

void EvalService::note_queue_depth() {
  if (opt_.metrics != nullptr) {
    opt_.metrics->set_gauge(metrics::kSvcQueueDepth,
                            static_cast<double>(inflight_jobs_.load()));
  }
}

const report::Workbench& EvalService::bench_for(const std::string& workload) {
  std::lock_guard<std::mutex> lock(bench_mu_);
  auto it = benches_.find(workload);
  if (it == benches_.end()) {
    // The profiling run — one per workload for the whole service lifetime,
    // which is the point of keeping the process resident. The Bench owns
    // the Program because the Workbench holds a pointer to it.
    report::WorkbenchOptions wopt;
    wopt.exec_seed = opt_.exec_seed;
    wopt.fuse_ratio = opt_.fuse_ratio;
    wopt.steinke_moves = opt_.steinke_moves;
    wopt.metrics = opt_.metrics;
    auto owned = std::make_unique<Bench>(workloads::by_name(workload));
    owned->bench.emplace(owned->program, wopt);
    it = benches_.emplace(workload, std::move(owned)).first;
  }
  return *it->second->bench;
}

KeyContext EvalService::context_for(const std::string& workload) const {
  KeyContext ctx;
  ctx.workload = workload;
  ctx.exec_seed = opt_.exec_seed;
  ctx.fuse_ratio = opt_.fuse_ratio;
  ctx.steinke_moves = opt_.steinke_moves;
  return ctx;
}

std::string EvalService::persist_path(const std::string& key) const {
  return opt_.persist_dir + "/" + key_digest(key) + ".json";
}

bool EvalService::try_persist_load(const std::string& key,
                                   const report::Workbench::Job& job,
                                   const std::string& workload,
                                   CachedResult& out) {
  if (opt_.persist_dir.empty()) return false;
  const std::string path = persist_path(key);
  try {
    fault::at(fault::site_names::kSvcCacheLoad);
    std::ifstream file(path);
    if (!file.good()) return false;
    io::LoadedResult loaded = io::read_result_json(file);
    // The digest is not the key: re-derive and require exact agreement, so
    // a hash collision or a stale file can never impersonate this job.
    CASA_CHECK(loaded.workload == workload && loaded.job == job &&
                   result_key(context_for(loaded.workload), loaded.job) == key,
               "persisted artifact does not match its key: " + path);
    std::ostringstream artifact;
    io::write_result_json(artifact, loaded.job, loaded.result,
                          loaded.workload, "casa_serve");
    out.result = std::move(loaded.result);
    out.artifact = std::move(artifact).str();
    count(metrics::kSvcPersistLoads, persist_loads_);
    return true;
  } catch (const Error&) {
    // Contained: a fired fault.svc.cache_load, unreadable bytes, a wrong
    // schema, or a mismatched job all degrade to an ordinary recompute.
    count(metrics::kSvcPersistErrors, persist_errors_);
    return false;
  }
}

void EvalService::publish(const std::shared_ptr<Inflight>& inflight,
                          report::JobResult result, std::string artifact) {
  {
    std::lock_guard<std::mutex> lock(inflight->m);
    inflight->result = std::move(result);
    inflight->artifact = std::move(artifact);
    inflight->done = true;
  }
  inflight->cv.notify_all();
}

void EvalService::maybe_verify_hit(const report::Workbench& bench,
                                   const report::Workbench::Job& job,
                                   const std::string& key,
                                   const CachedResult& cached) {
  if (opt_.verify_sample == 0) return;
  const std::uint64_t serial = hit_serial_.fetch_add(1) + 1;
  if (serial % opt_.verify_sample != 0) return;
  const report::JobResult fresh = bench.evaluate(job);
  check::CachedResultSample sample;
  sample.key = key;
  sample.outcomes_equal = fresh.ok() && fresh.outcome == cached.result.outcome;
  check::CheckRunner runner(opt_.metrics);
  check::check_cached_result(sample, runner);
  runner.throw_if_errors();
  count(metrics::kSvcVerifiedHits, verified_hits_);
}

EvalResponse EvalService::evaluate(const std::string& workload,
                                   const report::Workbench::Job& job) {
  return evaluate_batch(workload, {&job, 1}).front();
}

std::vector<EvalResponse> EvalService::evaluate_batch(
    const std::string& workload,
    std::span<const report::Workbench::Job> jobs) {
  count(metrics::kSvcRequests, requests_);
  const obs::Span span(opt_.metrics, obs::trace_names::kSvcRequest);
  std::vector<EvalResponse> responses(jobs.size());
  std::vector<char> resolved(jobs.size(), 0);

  struct FreshJob {
    std::size_t index = 0;
    std::shared_ptr<Inflight> inflight;
  };
  struct JoinedJob {
    std::size_t index = 0;
    std::shared_ptr<Inflight> inflight;
  };
  std::vector<FreshJob> fresh;
  std::vector<JoinedJob> joins;
  std::vector<report::Workbench::Job> fresh_jobs;

  try {
    fault::at(fault::site_names::kSvcAdmit);
    const report::Workbench& bench = bench_for(workload);
    const KeyContext ctx = context_for(workload);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EvalResponse& resp = responses[i];
      resp.key = result_key(ctx, jobs[i]);

      if (const auto cached = cache_.find(resp.key)) {
        try {
          maybe_verify_hit(bench, jobs[i], resp.key, *cached);
          resp.provenance = Provenance::kHit;
          resp.result = cached->result;
          resp.artifact = cached->artifact;
          count(metrics::kSvcHits, hits_);
        } catch (...) {
          // A sampled-hit mismatch (CheckError) fails this one response.
          resp.provenance = Provenance::kHit;
          resp.result = report::failed_job_result(std::current_exception(), 1);
        }
        resolved[i] = 1;
        continue;
      }

      std::shared_ptr<Inflight> mine;
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        const auto it = inflight_.find(resp.key);
        if (it != inflight_.end()) {
          joins.push_back({i, it->second});
          continue;
        }
        if (inflight_jobs_.load() >= opt_.max_inflight) {
          resp.rejected = true;
          resp.retry_after_ms = opt_.retry_after_ms;
          count(metrics::kSvcRejections, rejections_);
          resolved[i] = 1;
          continue;
        }
        mine = std::make_shared<Inflight>();
        inflight_.emplace(resp.key, mine);
        inflight_jobs_.fetch_add(1);
      }
      note_queue_depth();

      CachedResult loaded;
      if (try_persist_load(resp.key, jobs[i], workload, loaded)) {
        resp.provenance = Provenance::kHit;
        resp.result = loaded.result;
        resp.artifact = loaded.artifact;
        resolved[i] = 1;
        count(metrics::kSvcHits, hits_);
        publish(mine, loaded.result, loaded.artifact);
        cache_.insert(resp.key, std::move(loaded));
        {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_.erase(resp.key);
        }
        inflight_jobs_.fetch_sub(1);
        note_queue_depth();
        continue;
      }
      fresh.push_back({i, std::move(mine)});
      fresh_jobs.push_back(jobs[i]);
    }

    if (!fresh_jobs.empty()) {
      obs::Tracer* const tracer = obs::Tracer::current();
      const std::uint64_t flow_id =
          tracer != nullptr
              ? tracer->flow_begin(obs::trace_names::kSvcRequest)
              : 0;
      std::vector<report::JobResult> computed;
      try {
        // Misses ride the existing batch machinery: dedup, per-job fault
        // containment and retries, the shared ThreadPool.
        const obs::TraceSpan cspan(tracer, obs::trace_names::kSvcCompute,
                                   obs::trace_names::kCatPhase, flow_id);
        report::BatchOptions bopt;
        bopt.threads = opt_.threads;
        bopt.fail_fast = false;
        bopt.max_retries = opt_.max_retries;
        computed = bench.evaluate_batch(fresh_jobs, bopt);
      } catch (...) {
        computed.assign(fresh_jobs.size(),
                        report::failed_job_result(std::current_exception(), 1));
      }
      for (std::size_t k = 0; k < fresh.size(); ++k) {
        EvalResponse& resp = responses[fresh[k].index];
        resp.provenance = Provenance::kMiss;
        resp.result = computed[k];
        if (resp.result.ok()) {
          std::ostringstream artifact;
          io::write_result_json(artifact, jobs[fresh[k].index], resp.result,
                                workload, "casa_serve");
          resp.artifact = std::move(artifact).str();
          CachedResult entry;
          entry.result = resp.result;
          entry.artifact = resp.artifact;
          if (!opt_.persist_dir.empty()) {
            std::ofstream file(persist_path(resp.key));
            file << resp.artifact;
          }
          cache_.insert(resp.key, std::move(entry));
        }
        count(metrics::kSvcMisses, misses_);
        resolved[fresh[k].index] = 1;
        publish(fresh[k].inflight, resp.result, resp.artifact);
        {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_.erase(resp.key);
        }
        inflight_jobs_.fetch_sub(1);
        note_queue_depth();
      }
    }

    for (const JoinedJob& j : joins) {
      EvalResponse& resp = responses[j.index];
      {
        std::unique_lock<std::mutex> lock(j.inflight->m);
        j.inflight->cv.wait(lock, [&] { return j.inflight->done; });
        resp.result = j.inflight->result;
        resp.artifact = j.inflight->artifact;
      }
      resp.provenance = Provenance::kInflightJoin;
      count(metrics::kSvcInflightJoins, joins_);
      resolved[j.index] = 1;
    }
  } catch (...) {
    // Admission faults and unknown workloads land here, before any
    // single-flight registration: fail every unresolved response, keep
    // the service alive.
    const std::exception_ptr error = std::current_exception();
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (resolved[i] == 0) {
        responses[i].result = report::failed_job_result(error, 1);
      }
    }
  }
  return responses;
}

void EvalService::flush() { cache_.clear(); }

EvalService::Stats EvalService::stats() const {
  Stats s;
  s.requests = requests_.load();
  s.hits = hits_.load();
  s.misses = misses_.load();
  s.inflight_joins = joins_.load();
  s.rejections = rejections_.load();
  s.persist_loads = persist_loads_.load();
  s.persist_errors = persist_errors_.load();
  s.verified_hits = verified_hits_.load();
  s.queue_depth = inflight_jobs_.load();
  s.cache = cache_.stats();
  return s;
}

}  // namespace casa::svc

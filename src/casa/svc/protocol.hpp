// The casa_serve wire protocol: JSON lines in both directions.
//
// Each request is one line; each request produces one or more response
// lines, ending with a `done` line so a client can frame multi-result
// replies without counting ahead. The grammar (docs/serve.md):
//
//   {"op":"evaluate","workload":W,"job":J}
//   {"op":"batch","workload":W,"jobs":[J,...]}
//   {"op":"sweep","workload":W,"cache":C,"spm":[N,...],"flows":[F,...]}
//   {"op":"stats"}
//   {"op":"flush"}
//
// A job J is {"kind":F,"cache":C,"size":N,"max_regions":N,"casa":{...}} —
// every field optional, defaults matching Workbench::Job. Responses carry
// status, attempts, and cache provenance (hit | miss | inflight_join);
// rejected jobs carry retry_after_ms instead. The rendered outcome text is
// a pure function of the Outcome, so a warm-cache re-request is
// byte-identical to the original response apart from its provenance tag.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "casa/svc/service.hpp"

namespace casa::svc {

struct Request {
  enum class Op { kEvaluate, kBatch, kSweep, kStats, kFlush };
  Op op = Op::kEvaluate;
  std::string workload;
  std::vector<report::Workbench::Job> jobs;  ///< evaluate/batch/sweep
};

/// Parses one request line. Malformed input (bad JSON, unknown op or
/// field, a sweep with no jobs) throws PreconditionError.
Request parse_request(const std::string& line);

/// One evaluated (or rejected) job, newline-terminated.
void write_response_line(std::ostream& os, std::size_t index,
                         const EvalResponse& resp);

void write_stats_line(std::ostream& os, const EvalService::Stats& stats);
void write_ok_line(std::ostream& os);
void write_done_line(std::ostream& os, std::size_t results);
void write_error_line(std::ostream& os, const std::string& message);

}  // namespace casa::svc

// EvalService — the persistent evaluation engine behind casa_serve.
//
// One service owns lazily-built Workbenches (one per workload; building
// one is the profiling run), a content-addressed ResultCache, and the
// request scheduler: admitted jobs resolve as cache hits, join an
// identical in-flight computation (single-flight — N concurrent requests
// for the same key cost one evaluation), or run as cache misses through
// Workbench::evaluate_batch on its ThreadPool. Queue depth is bounded:
// when max_inflight computations are already running, new misses are
// rejected with a retry-after hint instead of queueing without bound.
//
// Containment mirrors the batch runner's philosophy: a failed evaluation,
// a fired fault (fault.svc.admit / fault.svc.cache_load), a corrupted
// persisted artifact, or a sampled-hit verification mismatch fails that
// one response — the service itself never dies on a request.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "casa/obs/metrics.hpp"
#include "casa/report/workbench.hpp"
#include "casa/svc/result_cache.hpp"

namespace casa::svc {

struct ServiceOptions {
  /// ResultCache byte budget (keys + rendered artifacts).
  std::size_t cache_bytes = 64ull << 20;
  /// Worker threads for miss evaluation (Workbench::evaluate_batch);
  /// 0 = hardware concurrency.
  unsigned threads = 0;
  /// Per-job transient-failure retry budget (BatchOptions::max_retries).
  unsigned max_retries = 0;
  /// Maximum jobs computing at once; further misses are rejected.
  std::size_t max_inflight = 64;
  /// Retry hint attached to rejected responses.
  unsigned retry_after_ms = 50;
  /// When non-empty: persist ok results as `casa-result v1` artifacts here
  /// and serve future misses from disk (corrupt files degrade to
  /// recompute, never to a crash).
  std::string persist_dir;
  /// When > 0: every Nth cache hit is re-evaluated from scratch and the
  /// cached Outcome bit-compared against it (check rule svc.cache.mismatch).
  unsigned verify_sample = 0;
  /// Workbench profiling knobs — part of every cache key.
  std::uint64_t exec_seed = 42;
  double fuse_ratio = 0.5;
  bool steinke_moves = true;
  /// Telemetry sink for the svc.* metrics and the workbenches. May be null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Where a response's result came from.
enum class Provenance {
  kMiss,          ///< computed by this request
  kHit,           ///< served from the cache (memory or persist_dir)
  kInflightJoin,  ///< joined an identical computation already running
};

std::string_view to_string(Provenance p);

struct EvalResponse {
  /// True when backpressure rejected the job before evaluation; only
  /// retry_after_ms and key are meaningful then.
  bool rejected = false;
  unsigned retry_after_ms = 0;
  Provenance provenance = Provenance::kMiss;
  report::JobResult result;
  std::string key;       ///< canonical cache key (result_key)
  std::string artifact;  ///< `casa-result v1` text (ok results only)
};

class EvalService {
 public:
  explicit EvalService(ServiceOptions opt = {});

  /// Evaluates one job against `workload` (a workloads::by_name id).
  EvalResponse evaluate(const std::string& workload,
                        const report::Workbench::Job& job);

  /// Evaluates a batch; responses align with `jobs` by index. Misses run
  /// through one Workbench::evaluate_batch call (shared ThreadPool,
  /// per-job fault containment); duplicates within the batch and across
  /// concurrent callers are computed once.
  std::vector<EvalResponse> evaluate_batch(
      const std::string& workload,
      std::span<const report::Workbench::Job> jobs);

  /// Drops every cached entry (the `flush` protocol op). Persisted
  /// artifacts are kept — delete the directory to cold-start.
  void flush();

  struct Stats {
    std::uint64_t requests = 0;       ///< evaluate/evaluate_batch calls
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inflight_joins = 0;
    std::uint64_t rejections = 0;
    std::uint64_t persist_loads = 0;
    std::uint64_t persist_errors = 0;
    std::uint64_t verified_hits = 0;
    std::size_t queue_depth = 0;      ///< jobs computing right now
    ResultCache::Stats cache;
  };
  Stats stats() const;

  const ServiceOptions& options() const { return opt_; }

 private:
  struct Inflight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    report::JobResult result;
    std::string artifact;
  };

  /// The Workbench keeps a pointer to its Program, so the service must own
  /// both with the same lifetime.
  struct Bench {
    explicit Bench(prog::Program p) : program(std::move(p)) {}
    prog::Program program;
    std::optional<const report::Workbench> bench;
  };

  const report::Workbench& bench_for(const std::string& workload);
  KeyContext context_for(const std::string& workload) const;
  std::string persist_path(const std::string& key) const;

  /// Disk lookup for a miss; returns true (and fills `out`) on a valid
  /// persisted artifact. Any failure — fault.svc.cache_load, unreadable or
  /// corrupted file, a key mismatch — returns false and counts
  /// svc.persist_errors: the miss simply recomputes.
  bool try_persist_load(const std::string& key,
                        const report::Workbench::Job& job,
                        const std::string& workload, CachedResult& out);

  void publish(const std::shared_ptr<Inflight>& inflight,
               report::JobResult result, std::string artifact);

  /// Every Nth hit: recompute and bit-compare (throws CheckError on
  /// mismatch — contained by the caller into a failed response).
  void maybe_verify_hit(const report::Workbench& bench,
                        const report::Workbench::Job& job,
                        const std::string& key, const CachedResult& cached);

  void count(std::string_view name, std::atomic<std::uint64_t>& cell);
  void note_queue_depth();

  const ServiceOptions opt_;
  ResultCache cache_;

  std::mutex bench_mu_;
  std::map<std::string, std::unique_ptr<Bench>> benches_;

  std::mutex inflight_mu_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::atomic<std::size_t> inflight_jobs_{0};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> joins_{0};
  std::atomic<std::uint64_t> rejections_{0};
  std::atomic<std::uint64_t> persist_loads_{0};
  std::atomic<std::uint64_t> persist_errors_{0};
  std::atomic<std::uint64_t> verified_hits_{0};
  std::atomic<std::uint64_t> hit_serial_{0};
};

}  // namespace casa::svc

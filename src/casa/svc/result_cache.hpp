// Content-addressed Outcome cache for the evaluation service.
//
// The cache is keyed by a canonical text serialization of everything the
// evaluation provably depends on: the Workbench::Job (normalized per flow,
// so fields a flow ignores cannot split the key space), the workload id,
// the Workbench profiling parameters, and the build provenance
// (obs::build_info) — a rebuilt binary never serves results computed by a
// different build. Two jobs map to the same key if and only if the
// pipeline would produce bit-identical Outcomes for them.
//
// Entries hold the finished JobResult plus its rendered `casa-result v1`
// artifact text; a hit streams the stored bytes back without re-rendering.
// The cache is thread-safe and LRU-evicted under a byte budget.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "casa/obs/metrics.hpp"
#include "casa/report/workbench.hpp"

namespace casa::svc {

/// The evaluation context a key must capture beyond the job itself: which
/// workload the Workbench profiled, and the profiling knobs that shape the
/// trace every flow replays.
struct KeyContext {
  std::string workload;
  std::uint64_t exec_seed = 42;
  double fuse_ratio = 0.5;
  bool steinke_moves = true;
};

/// Canonical cache key (`casa-result-key v1`). Deterministic, pure, and
/// flow-normalized: kCacheOnly drops size/regions/solver options,
/// kSteinke keeps only the capacity (plus the move-vs-copy knob),
/// kLoopCache keeps capacity + region budget, kCasa keeps capacity +
/// every solver option. Defaulted and explicitly-spelled-out option sets
/// therefore serialize identically.
std::string result_key(const KeyContext& ctx,
                       const report::Workbench::Job& job);

/// Stable 64-bit FNV-1a of a key, hex-encoded — the persisted artifact's
/// file name (process-independent, unlike std::hash).
std::string key_digest(const std::string& key);

/// One finished evaluation: the result and its rendered artifact.
struct CachedResult {
  report::JobResult result;  ///< always ok() — failures are never cached
  std::string artifact;      ///< `casa-result v1` text for this result
};

class ResultCache {
 public:
  /// `metrics` may be null; when set, svc.evictions / svc.bytes record
  /// eviction pressure (hit/miss accounting belongs to the service, which
  /// also sees single-flight joins and persisted loads).
  explicit ResultCache(std::size_t byte_budget,
                       obs::MetricsRegistry* metrics = nullptr);

  /// Returns the entry for `key` (refreshing its LRU position), or null.
  std::shared_ptr<const CachedResult> find(const std::string& key);

  /// Inserts (or replaces) `key`, then evicts least-recently-used entries
  /// until the byte budget holds again. The newest entry always survives,
  /// even when it alone exceeds the budget.
  void insert(const std::string& key, CachedResult value);

  /// Drops every entry (the `flush` protocol op).
  void clear();

  struct Stats {
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< key + artifact bytes currently held
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  /// Entry cost in budget bytes (the dominant strings; struct overhead is
  /// deliberately ignored — the budget is a bound on payload, not RSS).
  static std::size_t cost(const std::string& key, const CachedResult& value);

  void evict_over_budget_locked();

  const std::size_t budget_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  /// Most-recently-used at the front; nodes hold their LRU position so
  /// refresh and eviction are O(1).
  std::list<std::string> lru_;
  struct Node {
    std::shared_ptr<const CachedResult> value;
    std::size_t bytes = 0;
    std::list<std::string>::iterator pos;
  };
  std::unordered_map<std::string, Node> map_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace casa::svc

#include "casa/svc/result_cache.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "casa/cachesim/cache.hpp"
#include "casa/core/allocator.hpp"
#include "casa/core/formulation.hpp"
#include "casa/obs/build_info.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/support/error.hpp"

namespace casa::svc {

namespace {

/// Exact (hexfloat) spelling, so a key never depends on decimal rounding.
std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

}  // namespace

std::string result_key(const KeyContext& ctx,
                       const report::Workbench::Job& job) {
  using FlowKind = report::FlowKind;
  std::ostringstream key;
  const obs::BuildInfo& info = obs::build_info();
  key << "casa-result-key v1|build=" << info.git_describe << '/'
      << info.build_type << '/' << info.compiler
      << "|workload=" << ctx.workload << "|seed=" << ctx.exec_seed
      << "|fuse=" << hexfloat(ctx.fuse_ratio) << "|cache=" << job.cache.size
      << '/' << job.cache.line_size << '/' << job.cache.associativity << '/'
      << to_string(job.cache.policy) << "|kind=" << to_string(job.kind);
  switch (job.kind) {
    case FlowKind::kCasa: {
      const core::CasaOptions& o = job.casa;
      key << "|spm=" << job.size << "|casa=" << to_string(o.engine) << '/'
          << (o.linearization == core::Linearization::kPaper ? "paper"
                                                             : "tight")
          << '/' << o.generic_ilp_max_edges << '/' << o.max_nodes << '/'
          << o.ilp_threads << '/' << o.ilp_subtree_depth << '/'
          << (o.ilp_warm_start ? 1 : 0) << '/' << (o.ilp_presolve ? 1 : 0);
      break;
    }
    case FlowKind::kSteinke:
      key << "|spm=" << job.size << "|moves=" << (ctx.steinke_moves ? 1 : 0);
      break;
    case FlowKind::kLoopCache:
      key << "|lc=" << job.size << '/' << job.max_regions;
      break;
    case FlowKind::kCacheOnly:
      break;
  }
  return std::move(key).str();
}

std::string key_digest(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

ResultCache::ResultCache(std::size_t byte_budget,
                         obs::MetricsRegistry* metrics)
    : budget_(byte_budget), metrics_(metrics) {}

std::size_t ResultCache::cost(const std::string& key,
                              const CachedResult& value) {
  return key.size() + value.artifact.size();
}

std::shared_ptr<const CachedResult> ResultCache::find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.pos);
  return it->second.value;
}

void ResultCache::insert(const std::string& key, CachedResult value) {
  CASA_CHECK(value.result.ok(), "result cache: only ok() results are cached");
  const std::size_t bytes = cost(key, value);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second.bytes;
    it->second.value = std::make_shared<CachedResult>(std::move(value));
    it->second.bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
  } else {
    lru_.push_front(key);
    Node node;
    node.value = std::make_shared<CachedResult>(std::move(value));
    node.bytes = bytes;
    node.pos = lru_.begin();
    map_.emplace(key, std::move(node));
    bytes_ += bytes;
  }
  evict_over_budget_locked();
  if (metrics_ != nullptr) {
    metrics_->set_gauge(obs::metric_names::kSvcBytes,
                        static_cast<double>(bytes_));
  }
}

void ResultCache::evict_over_budget_locked() {
  while (bytes_ > budget_ && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    const auto it = map_.find(victim);
    bytes_ -= it->second.bytes;
    map_.erase(it);
    lru_.pop_back();
    ++evictions_;
    if (metrics_ != nullptr) {
      metrics_->add(obs::metric_names::kSvcEvictions);
    }
  }
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  bytes_ = 0;
  if (metrics_ != nullptr) {
    metrics_->set_gauge(obs::metric_names::kSvcBytes, 0.0);
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.entries = map_.size();
  return s;
}

}  // namespace casa::svc

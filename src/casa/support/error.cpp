#include "casa/support/error.hpp"

#include <sstream>

namespace casa::detail {

void raise_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "CASA_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

}  // namespace casa::detail

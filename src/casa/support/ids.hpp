// Strong identifier types.
//
// The library passes many small integer ids around (basic blocks, functions,
// memory objects, ILP variables). Wrapping them in distinct types prevents
// accidental cross-domain mixing at zero runtime cost.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace casa {

/// CRTP-free strong id: distinct Tag types produce unrelated id types.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  constexpr value_type value() const { return value_; }
  constexpr std::size_t index() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr Id invalid() { return Id(); }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();
  value_type value_ = kInvalid;
};

struct BasicBlockTag {};
struct FunctionTag {};
struct MemoryObjectTag {};
struct VarTag {};
struct ConstraintTag {};

using BasicBlockId = Id<BasicBlockTag>;
using FunctionId = Id<FunctionTag>;
using MemoryObjectId = Id<MemoryObjectTag>;
using VarId = Id<VarTag>;
using ConstraintId = Id<ConstraintTag>;

}  // namespace casa

namespace std {
template <typename Tag>
struct hash<casa::Id<Tag>> {
  size_t operator()(casa::Id<Tag> id) const noexcept {
    return std::hash<typename casa::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std

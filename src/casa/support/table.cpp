#include "casa/support/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "casa/support/error.hpp"

namespace casa {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = 0;
  if (s[i] == '-' || s[i] == '+') ++i;
  bool digit = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] != '.' && s[i] != '%' && s[i] != ',') {
      return false;
    }
  }
  return digit;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CASA_CHECK(!header_.empty(), "Table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  CASA_CHECK(!rows_.empty(), "call row() before cell()");
  CASA_CHECK(rows_.back().size() < header_.size(), "row has too many cells");
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::separator() {
  separators_.push_back(rows_.size());
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  auto rule = [&] {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(width[c] + 2, '-');
      if (c + 1 < header_.size()) os << '+';
    }
    os << '\n';
  };

  auto emit_row = [&](const std::vector<std::string>& r, bool align) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < r.size() ? r[c] : std::string();
      const bool right = align && looks_numeric(s);
      os << ' ';
      if (right) {
        os << std::string(width[c] - s.size(), ' ') << s;
      } else {
        os << s << std::string(width[c] - s.size(), ' ');
      }
      os << ' ';
      if (c + 1 < header_.size()) os << '|';
    }
    os << '\n';
  };

  emit_row(header_, /*align=*/false);
  rule();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (std::find(separators_.begin(), separators_.end(), i) !=
            separators_.end() &&
        i != 0) {
      rule();
    }
    emit_row(rows_[i], /*align=*/true);
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string percent_of(double value, double base, int precision) {
  if (base == 0.0) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (100.0 * value / base)
     << '%';
  return os.str();
}

}  // namespace casa

// Minimal fixed-size worker pool.
//
// The simulation layer's unit of work is coarse (one full hierarchy
// simulation or allocation per task), so a plain mutex-guarded queue is
// entirely sufficient — no work stealing, no lock-free cleverness. Tasks
// are arbitrary void() callables; completion is observed with wait().
// Exceptions thrown by tasks are captured and rethrown from wait() (first
// one wins) so callers never lose a CASA_CHECK failure to a worker thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace casa::support {

/// Who the current thread is, for observability track labels. Pool workers
/// carry their pool name and a stable 0-based index ("sim-0", "sim-1", ...);
/// threads that never set an ident report index -1 and an empty name (the
/// consumer picks its own fallback label).
struct ThreadIdent {
  int worker_index = -1;
  std::string name;
};

/// The calling thread's ident (set once by ThreadPool workers at startup).
const ThreadIdent& this_thread_ident();

/// Overrides the calling thread's ident. Exposed so tests and non-pool
/// threads (a main driver, say) can label their own tracks.
void set_this_thread_ident(int worker_index, std::string name);

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (at least 1).
  /// Workers ident themselves as "<name>-<index>" (see ThreadIdent).
  explicit ThreadPool(unsigned threads = 0, std::string name = "worker");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Must not be called concurrently with wait().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first task exception (if any). The pool is reusable afterwards.
  void wait();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Resolves a thread-count request: 0 -> hardware concurrency, floor 1.
  static unsigned resolve(unsigned threads);

 private:
  void worker_loop(unsigned index);

  std::string name_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace casa::support

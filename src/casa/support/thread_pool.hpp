// Minimal fixed-size worker pool.
//
// The simulation layer's unit of work is coarse (one full hierarchy
// simulation or allocation per task), so a plain mutex-guarded queue is
// entirely sufficient — no work stealing, no lock-free cleverness. Tasks
// are arbitrary void() callables; completion is observed with wait().
//
// Every task exception is captured with the task's submission index —
// nothing is dropped when several tasks fail concurrently. wait() rethrows
// the error of the lowest-indexed failed task (deterministic for any
// schedule) so callers never lose a CASA_CHECK failure to a worker thread;
// wait_collect() instead returns the full error list for callers that
// contain failures per task (batch runners).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace casa::support {

/// Who the current thread is, for observability track labels. Pool workers
/// carry their pool name and a stable 0-based index ("sim-0", "sim-1", ...);
/// threads that never set an ident report index -1 and an empty name (the
/// consumer picks its own fallback label).
struct ThreadIdent {
  int worker_index = -1;
  std::string name;
};

/// The calling thread's ident (set once by ThreadPool workers at startup).
const ThreadIdent& this_thread_ident();

/// Overrides the calling thread's ident. Exposed so tests and non-pool
/// threads (a main driver, say) can label their own tracks.
void set_this_thread_ident(int worker_index, std::string name);

/// One captured task failure: which submit() the task came from (0-based,
/// counted since the last wait/wait_collect) and the exception it threw.
struct TaskError {
  std::size_t task_index = 0;
  std::exception_ptr error;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (at least 1).
  /// Workers ident themselves as "<name>-<index>" (see ThreadIdent).
  explicit ThreadPool(unsigned threads = 0, std::string name = "worker");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task and returns its index in the current batch (0-based,
  /// reset by wait/wait_collect). Must not be called concurrently with
  /// wait().
  std::size_t submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// exception of the lowest-indexed failed task (if any); later errors
  /// are discarded with it. The pool is reusable afterwards.
  void wait();

  /// Blocks until every submitted task has finished and returns *all*
  /// captured task errors, sorted by task index (empty when every task
  /// succeeded). Nothing is rethrown; the pool is reusable afterwards.
  std::vector<TaskError> wait_collect();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Resolves a thread-count request: 0 -> hardware concurrency, floor 1.
  static unsigned resolve(unsigned threads);

 private:
  void worker_loop(unsigned index);

  /// Waits for the batch to drain and moves the captured errors out,
  /// sorted by task index. Resets the batch index counter.
  std::vector<TaskError> drain_errors();

  struct IndexedTask {
    std::size_t index = 0;
    std::function<void()> task;
  };

  std::string name_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::queue<IndexedTask> queue_;
  std::size_t in_flight_ = 0;    ///< queued + currently executing
  std::size_t next_index_ = 0;   ///< per-batch submit counter
  std::vector<TaskError> errors_;  ///< every failure of the current batch
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace casa::support

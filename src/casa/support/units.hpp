// Units used throughout the library.
//
// Energies are carried as double nanojoules (nJ); sizes as byte counts.
// Helper literals keep constants in source code legible.
#pragma once

#include <cstdint>

namespace casa {

using Energy = double;  ///< nanojoules
using Addr = std::uint64_t;
using Bytes = std::uint64_t;

constexpr Bytes operator""_B(unsigned long long v) { return v; }
constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024; }

/// ARM7T fetches 32-bit words.
constexpr Bytes kWordBytes = 4;

/// Converts nanojoules to microjoules for paper-style reporting.
constexpr double to_micro_joules(Energy nj) { return nj / 1000.0; }

/// True iff v is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Rounds v up to the next multiple of align (align must be a power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Integer log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t v) {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

}  // namespace casa

#include "casa/support/args.hpp"

#include <sstream>

#include "casa/support/error.hpp"

namespace casa {

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

ArgParser::ArgParser(const std::vector<std::string>& args) { parse(args); }

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    CASA_CHECK(a.rfind("--", 0) == 0, "arguments must start with --: " + a);
    std::string key = a.substr(2);
    std::string value;
    const std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      value = args[++i];
    } else {
      value = "true";  // bare flag
    }
    if (key == "help") {
      help_requested_ = true;
      continue;
    }
    values_[key] = value;
  }
}

std::string ArgParser::get(const std::string& key, const std::string& def,
                           const std::string& help) {
  declared_.insert(key);
  help_lines_.emplace_back(key, help + " (default: " + def + ")");
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::uint64_t ArgParser::get_u64(const std::string& key, std::uint64_t def,
                                 const std::string& help) {
  const std::string v = get(key, std::to_string(def), help);
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    throw PreconditionError("--" + key + " expects an integer, got: " + v);
  }
}

double ArgParser::get_double(const std::string& key, double def,
                             const std::string& help) {
  const std::string v = get(key, std::to_string(def), help);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw PreconditionError("--" + key + " expects a number, got: " + v);
  }
}

bool ArgParser::get_flag(const std::string& key, const std::string& help) {
  const std::string v = get(key, "false", help);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::string> ArgParser::unknown_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (declared_.count(key) == 0) out.push_back(key);
  }
  return out;
}

std::string ArgParser::help() const {
  std::ostringstream os;
  for (const auto& [key, text] : help_lines_) {
    os << "  --" << key << "  " << text << '\n';
  }
  return os.str();
}

}  // namespace casa

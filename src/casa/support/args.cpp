#include "casa/support/args.hpp"

#include <algorithm>
#include <sstream>

#include "casa/support/error.hpp"

namespace casa {

namespace {

/// Levenshtein edit distance — small strings only, O(|a|*|b|).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      const std::size_t next =
          std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

ArgParser::ArgParser(const std::vector<std::string>& args) { parse(args); }

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    CASA_CHECK(a.rfind("--", 0) == 0, "arguments must start with --: " + a);
    std::string key = a.substr(2);
    std::string value;
    const std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      value = args[++i];
    } else {
      value = "true";  // bare flag
    }
    if (key == "help") {
      help_requested_ = true;
      continue;
    }
    values_[key] = value;
  }
}

std::string ArgParser::get(const std::string& key, const std::string& def,
                           const std::string& help) {
  declared_.insert(key);
  help_lines_.emplace_back(key, help + " (default: " + def + ")");
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::uint64_t ArgParser::get_u64(const std::string& key, std::uint64_t def,
                                 const std::string& help) {
  const std::string v = get(key, std::to_string(def), help);
  // stoull would happily accept "4x" (partial parse), " 4" (leading
  // whitespace) and "-3" (wraps around) — require plain digits, then let
  // stoull handle only the range check.
  bool digits_only = !v.empty();
  for (char c : v) {
    if (c < '0' || c > '9') digits_only = false;
  }
  if (digits_only) {
    try {
      return std::stoull(v);
    } catch (const std::exception&) {
      throw PreconditionError("--" + key + " value out of range: " + v);
    }
  }
  throw PreconditionError("--" + key +
                          " expects an unsigned integer, got: '" + v +
                          "' (digits only — no sign, spaces, or suffix)");
}

double ArgParser::get_double(const std::string& key, double def,
                             const std::string& help) {
  const std::string v = get(key, std::to_string(def), help);
  // Like get_u64: a partial parse ("1.5x") must be an error, not silently
  // the prefix. stod reports how much it consumed; require all of it.
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (v.empty() || pos != v.size() ||
      static_cast<unsigned char>(v.front()) <= ' ') {
    throw PreconditionError("--" + key + " expects a number, got: '" + v +
                            "' (trailing or leading junk is rejected)");
  }
  return parsed;
}

bool ArgParser::get_flag(const std::string& key, const std::string& help) {
  const std::string v = get(key, "false", help);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::string> ArgParser::unknown_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (declared_.count(key) == 0) out.push_back(key);
  }
  return out;
}

void ArgParser::reject_unknown() const {
  if (help_requested_) return;
  const std::vector<std::string> unknown = unknown_keys();
  if (unknown.empty()) return;
  std::ostringstream os;
  os << "unknown option" << (unknown.size() == 1 ? "" : "s") << ':';
  for (const std::string& key : unknown) {
    os << " --" << key;
    // Suggest the closest declared key when it is plausibly a typo (edit
    // distance no more than 2, or a third of the key for long names).
    const std::size_t budget = std::max<std::size_t>(2, key.size() / 3);
    std::size_t best = budget + 1;
    std::string suggestion;
    for (const std::string& candidate : declared_) {
      const std::size_t d = edit_distance(key, candidate);
      if (d < best) {
        best = d;
        suggestion = candidate;
      }
    }
    if (!suggestion.empty()) os << " (did you mean --" << suggestion << "?)";
  }
  throw PreconditionError(os.str());
}

std::string ArgParser::help() const {
  std::ostringstream os;
  for (const auto& [key, text] : help_lines_) {
    os << "  --" << key << "  " << text << '\n';
  }
  return os.str();
}

}  // namespace casa

// Minimal command-line argument parser for the repo's tools.
//
// Accepts --key=value, --key value, and boolean --flag forms. Unknown keys
// are rejected: after declaring every option via get*, a tool calls
// reject_unknown(), which throws a PreconditionError naming each stray
// flag together with its closest declared key ("did you mean --spm?"), so
// a typo can never silently fall back to a default value.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace casa {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);
  explicit ArgParser(const std::vector<std::string>& args);

  /// Declares a key as known (with a help line) and returns its value.
  std::string get(const std::string& key, const std::string& def,
                  const std::string& help = "");
  std::uint64_t get_u64(const std::string& key, std::uint64_t def,
                        const std::string& help = "");
  double get_double(const std::string& key, double def,
                    const std::string& help = "");
  /// Boolean flag: present (with no value or "true"/"1") => true.
  bool get_flag(const std::string& key, const std::string& help = "");

  /// Keys provided on the command line but never declared. Call after all
  /// get* declarations.
  std::vector<std::string> unknown_keys() const;

  /// Throws PreconditionError when any undeclared --flag was supplied,
  /// listing every stray key with a near-miss suggestion from the declared
  /// set. Call after all get* declarations; no-op when everything matched
  /// (or when --help was requested — a typo next to --help should still
  /// show the usage text, not die).
  void reject_unknown() const;

  /// Formatted help text of everything declared so far.
  std::string help() const;

  bool help_requested() const { return help_requested_; }

 private:
  void parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> values_;
  std::set<std::string> declared_;
  std::vector<std::pair<std::string, std::string>> help_lines_;
  bool help_requested_ = false;
};

}  // namespace casa

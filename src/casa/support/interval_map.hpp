// Address-range to value mapping.
//
// Used to resolve a fetched instruction address to the memory object that
// owns it. Ranges are half-open [lo, hi), non-overlapping, and queried far
// more often than they are built, so lookups are a binary search over a
// sorted flat vector.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "casa/support/error.hpp"

namespace casa {

template <typename Value>
class IntervalMap {
 public:
  struct Entry {
    std::uint64_t lo = 0;  ///< inclusive
    std::uint64_t hi = 0;  ///< exclusive
    Value value{};
  };

  /// Inserts [lo, hi) -> value. Ranges must not overlap existing entries.
  void insert(std::uint64_t lo, std::uint64_t hi, Value value) {
    CASA_CHECK(lo < hi, "IntervalMap range must be non-empty");
    Entry e{lo, hi, std::move(value)};
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), e,
        [](const Entry& a, const Entry& b) { return a.lo < b.lo; });
    if (it != entries_.end()) {
      CASA_CHECK(e.hi <= it->lo, "IntervalMap ranges overlap");
    }
    if (it != entries_.begin()) {
      CASA_CHECK(std::prev(it)->hi <= e.lo, "IntervalMap ranges overlap");
    }
    entries_.insert(it, std::move(e));
  }

  /// Returns the value covering addr, or nullopt.
  std::optional<Value> find(std::uint64_t addr) const {
    const Entry* e = find_entry(addr);
    if (e == nullptr) return std::nullopt;
    return e->value;
  }

  /// Returns the full entry covering addr, or nullptr.
  const Entry* find_entry(std::uint64_t addr) const {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), addr,
        [](std::uint64_t a, const Entry& e) { return a < e.lo; });
    if (it == entries_.begin()) return nullptr;
    --it;
    if (addr < it->hi) return &*it;
    return nullptr;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace casa

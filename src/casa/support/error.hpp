// Error handling primitives shared by every casa library.
//
// Invariant violations inside the library throw casa::Error; the CASA_CHECK
// macro is the single choke point so callers can set a breakpoint on
// casa::detail::raise_check_failure.
#pragma once

#include <stdexcept>
#include <string>

namespace casa {

/// Base exception for all casa library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when a solver fails to produce a result (infeasible, unbounded...).
class SolveError : public Error {
 public:
  explicit SolveError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void raise_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace casa

/// Precondition / invariant check that is always on (cheap checks only).
#define CASA_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::casa::detail::raise_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)

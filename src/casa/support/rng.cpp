#include "casa/support/rng.hpp"

#include "casa/support/error.hpp"

namespace casa {

Rng::Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}

std::uint64_t Rng::next_u64() {
  std::uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545f4914f6cdd1dULL;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CASA_CHECK(bound > 0, "next_below bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Rng::next_unit() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_unit() < p;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  CASA_CHECK(lo <= hi, "next_in requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace casa

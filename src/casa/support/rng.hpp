// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the library (branch outcomes in the executor,
// random cache replacement, workload shape jitter) draws from an explicitly
// seeded Xorshift64* stream so that experiments are bit-reproducible across
// platforms; std::mt19937 distributions are not portable across standard
// library implementations, ours are.
#pragma once

#include <cstdint>

namespace casa {

/// Xorshift64* generator. Small, fast, and fully portable.
class Rng {
 public:
  /// Seeds the stream. A zero seed is remapped to a fixed odd constant
  /// because xorshift has a fixed point at zero state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_unit();

  /// Bernoulli draw with probability p of returning true (p clamped to
  /// [0, 1]).
  bool next_bool(double p);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Forks an independent stream; the child is seeded from this stream's
  /// output so sub-components can be given private streams deterministically.
  Rng fork();

 private:
  std::uint64_t state_;
};

}  // namespace casa

#include "casa/support/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace casa::support {

namespace {

ThreadIdent& ident_slot() {
  thread_local ThreadIdent ident;
  return ident;
}

}  // namespace

const ThreadIdent& this_thread_ident() { return ident_slot(); }

void set_this_thread_ident(int worker_index, std::string name) {
  ident_slot() = ThreadIdent{worker_index, std::move(name)};
}

unsigned ThreadPool::resolve(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads, std::string name)
    : name_(std::move(name)) {
  const unsigned n = resolve(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::submit(std::function<void()> task) {
  std::size_t index = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = next_index_++;
    queue_.push(IndexedTask{index, std::move(task)});
    ++in_flight_;
  }
  work_ready_.notify_one();
  return index;
}

std::vector<TaskError> ThreadPool::drain_errors() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  std::vector<TaskError> errors = std::move(errors_);
  errors_.clear();
  next_index_ = 0;
  lock.unlock();
  // Sorting by submission index makes the report (and wait()'s rethrow
  // choice) independent of which worker lost the race to fail first.
  std::sort(errors.begin(), errors.end(),
            [](const TaskError& a, const TaskError& b) {
              return a.task_index < b.task_index;
            });
  return errors;
}

void ThreadPool::wait() {
  std::vector<TaskError> errors = drain_errors();
  if (!errors.empty()) std::rethrow_exception(errors.front().error);
}

std::vector<TaskError> ThreadPool::wait_collect() { return drain_errors(); }

void ThreadPool::worker_loop(unsigned index) {
  set_this_thread_ident(static_cast<int>(index),
                        name_ + "-" + std::to_string(index));
  for (;;) {
    IndexedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task.task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      errors_.push_back(TaskError{task.index, std::current_exception()});
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace casa::support

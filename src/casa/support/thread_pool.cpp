#include "casa/support/thread_pool.hpp"

#include <utility>

namespace casa::support {

namespace {

ThreadIdent& ident_slot() {
  thread_local ThreadIdent ident;
  return ident;
}

}  // namespace

const ThreadIdent& this_thread_ident() { return ident_slot(); }

void set_this_thread_ident(int worker_index, std::string name) {
  ident_slot() = ThreadIdent{worker_index, std::move(name)};
}

unsigned ThreadPool::resolve(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads, std::string name)
    : name_(std::move(name)) {
  const unsigned n = resolve(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(unsigned index) {
  set_this_thread_ident(static_cast<int>(index),
                        name_ + "-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace casa::support

// Plain-text table rendering for experiment reports.
//
// The bench binaries print paper-style tables; this is the single formatter
// they share so column alignment and number formatting stay uniform.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace casa {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with fixed precision. Rendering right-aligns cells that parse as numbers
/// and left-aligns everything else.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(double value, int precision = 2);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);

  /// Inserts a horizontal separator line after the current row.
  Table& separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices after which to draw
};

/// Formats `value` as a percentage of `base` ("87.3%"); returns "n/a" when
/// base is zero.
std::string percent_of(double value, double base, int precision = 1);

}  // namespace casa

#include "casa/sim/sweep_planner.hpp"

#include <memory>
#include <utility>

#include "casa/cachesim/stack_sim.hpp"
#include "casa/check/rules.hpp"
#include "casa/check/runner.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/error.hpp"
#include "casa/trace/compiled_stream.hpp"
#include "casa/traceopt/layout.hpp"

namespace casa::sim {

namespace {

using report::Outcome;
using report::Workbench;

/// What the I-cache actually sees during a job's replay. Two prepared jobs
/// with equal keys feed the cache the same line-run sequence: the trace
/// program is a deterministic function of (line size, trace budget, fuse
/// ratio — bench-wide), the layout of (trace program, mode, mask), the
/// compiled stream of (trace program, layout, line size), and the walk is
/// shared. Only the cache geometry differs inside a group.
struct StreamKey {
  Bytes line_size = 0;
  cachesim::ReplacementPolicy policy = cachesim::ReplacementPolicy::kLru;
  Bytes max_trace = 0;          ///< effective trace-formation budget
  bool excluding_layout = false;  ///< Steinke move semantics
  bool loop_cache = false;        ///< region replay — never groupable
  std::vector<bool> on_spm;

  friend bool operator==(const StreamKey&, const StreamKey&) = default;
};

StreamKey key_of(const Workbench::PreparedJob& pj, bool steinke_moves) {
  StreamKey key;
  key.line_size = pj.job.cache.line_size;
  key.policy = pj.job.cache.policy;
  // Mirrors Workbench::form's budget: the cache-only flow forms with 1 KiB,
  // every other flow with its scratchpad / loop-cache capacity, floored at
  // one line.
  const Bytes budget = pj.job.kind == Workbench::Job::Kind::kCacheOnly
                           ? 1_KiB
                           : pj.job.size;
  key.max_trace = std::max<Bytes>(budget, key.line_size);
  key.excluding_layout =
      pj.job.kind == Workbench::Job::Kind::kSteinke && steinke_moves;
  key.loop_cache = pj.regions != nullptr;
  key.on_spm = pj.on_spm;
  return key;
}

/// Counters a direct line-granular replay (memsim's compiled-stream path)
/// would have produced, reconstructed from one configuration's slice of the
/// stack pass. `spm_words` and the latency table are group-wide; everything
/// else follows from the per-config hit/miss/eviction counts.
memsim::SimCounters counters_from_stack(const cachesim::StackCounters& sc,
                                        std::uint64_t spm_words,
                                        Bytes line_size,
                                        const memsim::LatencyParams& lat) {
  const std::uint64_t line_words = line_size / kWordBytes;
  memsim::SimCounters c;
  c.spm_accesses = spm_words;
  c.cache_hits = sc.hits;
  c.cache_misses = sc.misses;
  c.cache_evictions = sc.evictions;
  c.cache_accesses = sc.hits + sc.misses;
  c.total_fetches = spm_words + c.cache_accesses;
  c.mainmem_words = sc.misses * line_words;
  // run_lines charges every cache word one hit latency (a missing word pays
  // its fill on top), so the cycle total collapses to three terms.
  c.cycles = spm_words * lat.spm_access + c.cache_accesses * lat.cache_hit +
             sc.misses * (lat.miss_base_penalty + line_words * lat.miss_per_word);
  return c;
}

}  // namespace

std::vector<Outcome> SweepPlanner::run(const std::vector<Job>& jobs,
                                       unsigned threads,
                                       MetricsShards* shards) const {
  CASA_CHECK(shards == nullptr || shards->size() == jobs.size(),
             "MetricsShards size must match the job count");
  // Root trace span for the sweep; the prepare and group-task flows the
  // runner fans out are flow-linked back into it.
  const obs::TraceSpan sweep_scope(obs::Tracer::current(), obs::trace_names::kSweep,
                                 obs::trace_names::kCatSim);
  const report::WorkbenchOptions& wopt = bench_->options();
  RunnerOptions ropt;
  ropt.threads = threads;
  const ParallelRunner runner(ropt);

  // Same dedup as run_many: repeated sweep points share one Outcome.
  std::vector<std::size_t> unique;
  std::vector<std::size_t> rep_of(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::size_t rep = i;
    for (const std::size_t u : unique) {
      if (jobs[u] == jobs[i]) {
        rep = u;
        break;
      }
    }
    rep_of[i] = rep;
    if (rep == i) unique.push_back(i);
  }

  std::unique_ptr<MetricsShards> local;
  MetricsShards* sh = shards;
  if (sh == nullptr && wopt.metrics != nullptr) {
    local = std::make_unique<MetricsShards>(jobs.size());
    sh = local.get();
  }
  const auto shard_of = [sh](std::size_t job_idx) -> obs::MetricsRegistry* {
    return sh != nullptr ? &sh->shard(job_idx) : nullptr;
  };

  // Phase 1: every stage but the replay, in parallel over unique jobs.
  using PreparedJob = Workbench::PreparedJob;
  const std::vector<PreparedJob> prepared = runner.map<PreparedJob>(
      unique.size(),
      [this, &jobs, &unique, &shard_of](std::size_t i, std::uint64_t) {
        return bench_->prepare_job(jobs[unique[i]], shard_of(unique[i]));
      });

  // Phase 2: group by stream signature (indices into `prepared`).
  struct Group {
    StreamKey key;
    std::vector<std::size_t> members;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    const StreamKey key = key_of(prepared[i], wopt.steinke_moves);
    Group* home = nullptr;
    if (!key.loop_cache) {
      for (Group& g : groups) {
        if (g.key == key) {
          home = &g;
          break;
        }
      }
    }
    if (home == nullptr) {
      groups.push_back(Group{key, {}});
      home = &groups.back();
    }
    home->members.push_back(i);
  }

  // Phase 3: one task per group. Stack-eligible groups (LRU, >= 2 members,
  // no loop cache) replay the shared stream once; everything else finishes
  // through the ordinary per-configuration simulation.
  const trace::BlockWalk& walk = bench_->execution().walk;
  std::uint64_t stack_passes = 0;
  std::uint64_t stack_hits = 0;
  if (wopt.metrics != nullptr) {
    for (const Group& g : groups) {
      if (g.key.policy == cachesim::ReplacementPolicy::kLru &&
          !g.key.loop_cache && g.members.size() >= 2) {
        ++stack_passes;
        stack_hits += g.members.size();
        wopt.metrics->observe(obs::metric_names::kSweepConfigsPerPass,
                              static_cast<double>(g.members.size()));
      }
    }
  }

  using Finished = std::vector<std::pair<std::size_t, Outcome>>;
  const std::vector<Finished> finished = runner.map<Finished>(
      groups.size(),
      [this, &groups, &prepared, &unique, &walk, &wopt, &shard_of](
          std::size_t g, std::uint64_t) {
        const Group& grp = groups[g];
        Finished done;
        done.reserve(grp.members.size());

        const bool stack_eligible =
            grp.key.policy == cachesim::ReplacementPolicy::kLru &&
            !grp.key.loop_cache && grp.members.size() >= 2;
        if (!stack_eligible) {
          for (const std::size_t idx : grp.members) {
            done.emplace_back(idx, bench_->finish_job(prepared[idx],
                                                      shard_of(unique[idx])));
          }
          return done;
        }

        // One shared replay. The representative's trace program / layout /
        // mask are byte-identical to every member's (that is what the group
        // key guarantees), so the compiled stream is too.
        obs::Tracer* const tracer = obs::Tracer::current();
        const obs::TraceSpan pass(tracer, obs::trace_names::kSweepStackPass,
                                  obs::trace_names::kCatSim);
        if (tracer != nullptr) {
          tracer->instant(obs::trace_names::kSweepConfigsPerPass,
                          static_cast<double>(grp.members.size()),
                          obs::trace_names::kCatSim);
        }
        const PreparedJob& rep = prepared[grp.members.front()];
        const Bytes line_size = grp.key.line_size;
        const trace::CompiledStream stream =
            traceopt::compile_fetch_stream(*rep.tp, *rep.layout, line_size);

        cachesim::ConfigFamily family;
        family.line_size = line_size;
        family.policy = grp.key.policy;
        for (const std::size_t idx : grp.members) {
          family.configs.push_back(prepared[idx].job.cache);
        }
        cachesim::StackSimulator sim(family);

        std::uint64_t spm_words = 0;
        std::uint64_t replayed_runs = 0;
        for (const BasicBlockId bb : walk.seq) {
          const MemoryObjectId mo = rep.tp->object_of(bb);
          if (!rep.on_spm.empty() && rep.on_spm[mo.index()]) {
            spm_words += stream.words_of(bb);
            continue;
          }
          CASA_CHECK(stream.cached(bb),
                     "cached block missing from the compiled layout");
          replayed_runs += stream.runs(bb).size();
          for (const trace::LineRun& run : stream.runs(bb)) {
            sim.access_line(run.addr, run.words);
          }
        }

        const memsim::LatencyParams lat;  // finish_job's defaults
        memsim::SimCounters sampled;
        for (const std::size_t idx : grp.members) {
          const PreparedJob& pj = prepared[idx];
          const memsim::SimCounters c = counters_from_stack(
              sim.counters(pj.job.cache), spm_words, line_size, lat);
          if (idx == grp.members.front()) sampled = c;
          obs::MetricsRegistry* reg = shard_of(unique[idx]);
          done.emplace_back(idx, bench_->finish_with_counters(pj, c, reg));
          if (reg != nullptr) {
            // Same stream.* telemetry run_lines emits per direct replay.
            reg->add(obs::metric_names::kStreamCompiledRuns, stream.total_runs());
            reg->add(obs::metric_names::kStreamReplayedRuns, replayed_runs);
            reg->add(obs::metric_names::kStreamReplayedWords,
                     c.cache_hits + c.cache_misses);
          }
        }

        if (wopt.check_artifacts) {
          // Cross-validate one sampled configuration per group against a
          // direct simulation; a divergence fails the whole sweep.
          const memsim::SimReport direct = memsim::simulate_spm_system(
              *rep.tp, *rep.layout, walk, rep.on_spm, rep.job.cache,
              rep.energies, memsim::SimOptions{});
          check::CheckRunner chk(shard_of(unique[grp.members.front()]));
          check::check_stack_sweep(sampled, direct.counters, rep.job.cache,
                                   chk);
          chk.throw_if_errors();
        }
        return done;
      });

  // Reassemble in job order: unique outcomes land at their indices,
  // duplicates copy their representative's.
  std::vector<Outcome> by_unique(unique.size());
  for (const Finished& group_done : finished) {
    for (const auto& [idx, outcome] : group_done) by_unique[idx] = outcome;
  }
  std::vector<std::size_t> unique_pos(jobs.size());
  for (std::size_t i = 0; i < unique.size(); ++i) unique_pos[unique[i]] = i;
  std::vector<Outcome> results;
  results.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    results.push_back(by_unique[unique_pos[rep_of[i]]]);
  }

  if (wopt.metrics != nullptr && sh != nullptr) {
    wopt.metrics->merge_from(sh->merged());
    wopt.metrics->add(obs::metric_names::kRunnerJobs, jobs.size());
    wopt.metrics->add(obs::metric_names::kRunnerDedupHits,
                      jobs.size() - unique.size());
    wopt.metrics->set_gauge(obs::metric_names::kRunnerThreads,
                            static_cast<double>(runner.threads()));
    wopt.metrics->add(obs::metric_names::kSweepGroups, groups.size());
    wopt.metrics->add(obs::metric_names::kSweepStackPasses, stack_passes);
    wopt.metrics->add(obs::metric_names::kSweepStackHits, stack_hits);
    wopt.metrics->add(obs::metric_names::kSweepFallbackConfigs,
                      unique.size() - stack_hits);
    wopt.metrics->add(obs::metric_names::kSweepDedupHits,
                      jobs.size() - unique.size());
  }
  return results;
}

}  // namespace casa::sim

#include "casa/sim/sweep_planner.hpp"

#include <exception>
#include <memory>
#include <utility>

#include "casa/cachesim/stack_sim.hpp"
#include "casa/check/rules.hpp"
#include "casa/check/runner.hpp"
#include "casa/fault/fault.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/error.hpp"
#include "casa/trace/compiled_stream.hpp"
#include "casa/traceopt/layout.hpp"

namespace casa::sim {

namespace {

using report::BatchOptions;
using report::JobResult;
using report::JobStatus;
using report::Outcome;
using report::Workbench;

/// What the I-cache actually sees during a job's replay. Two prepared jobs
/// with equal keys feed the cache the same line-run sequence: the trace
/// program is a deterministic function of (line size, trace budget, fuse
/// ratio — bench-wide), the layout of (trace program, mode, mask), the
/// compiled stream of (trace program, layout, line size), and the walk is
/// shared. Only the cache geometry differs inside a group.
struct StreamKey {
  Bytes line_size = 0;
  cachesim::ReplacementPolicy policy = cachesim::ReplacementPolicy::kLru;
  Bytes max_trace = 0;          ///< effective trace-formation budget
  bool excluding_layout = false;  ///< Steinke move semantics
  bool loop_cache = false;        ///< region replay — never groupable
  std::vector<bool> on_spm;

  friend bool operator==(const StreamKey&, const StreamKey&) = default;
};

StreamKey key_of(const Workbench::PreparedJob& pj, bool steinke_moves) {
  StreamKey key;
  key.line_size = pj.job.cache.line_size;
  key.policy = pj.job.cache.policy;
  // Mirrors Workbench::form's budget: the cache-only flow forms with 1 KiB,
  // every other flow with its scratchpad / loop-cache capacity, floored at
  // one line.
  const Bytes budget = pj.job.kind == Workbench::Job::Kind::kCacheOnly
                           ? 1_KiB
                           : pj.job.size;
  key.max_trace = std::max<Bytes>(budget, key.line_size);
  key.excluding_layout =
      pj.job.kind == Workbench::Job::Kind::kSteinke && steinke_moves;
  key.loop_cache = pj.regions != nullptr;
  key.on_spm = pj.on_spm;
  return key;
}

/// Counters a direct line-granular replay (memsim's compiled-stream path)
/// would have produced, reconstructed from one configuration's slice of the
/// stack pass. `spm_words` and the latency table are group-wide; everything
/// else follows from the per-config hit/miss/eviction counts.
memsim::SimCounters counters_from_stack(const cachesim::StackCounters& sc,
                                        std::uint64_t spm_words,
                                        Bytes line_size,
                                        const memsim::LatencyParams& lat) {
  const std::uint64_t line_words = line_size / kWordBytes;
  memsim::SimCounters c;
  c.spm_accesses = spm_words;
  c.cache_hits = sc.hits;
  c.cache_misses = sc.misses;
  c.cache_evictions = sc.evictions;
  c.cache_accesses = sc.hits + sc.misses;
  c.total_fetches = spm_words + c.cache_accesses;
  c.mainmem_words = sc.misses * line_words;
  // run_lines charges every cache word one hit latency (a missing word pays
  // its fill on top), so the cycle total collapses to three terms.
  c.cycles = spm_words * lat.spm_access + c.cache_accesses * lat.cache_hit +
             sc.misses * (lat.miss_base_penalty + line_words * lat.miss_per_word);
  return c;
}

/// A unique job after the prepare phase: the PreparedJob plus the telemetry
/// it recorded (held back as a snapshot and merged into the job's shard
/// only when the job ultimately succeeds) — or its contained failure.
struct Prep {
  Workbench::PreparedJob pj;
  obs::MetricsSnapshot recorded;
  JobResult failure;       ///< valid only when !prepared
  unsigned attempts = 1;   ///< prepare attempts actually run
  bool prepared = false;
};

/// Deterministic inter-attempt backoff plus the runner.retry trace instant
/// (same pacing Workbench::evaluate_job uses).
void pace_retry(const BatchOptions& bopt, unsigned attempt) {
  fault::RetryPolicy policy;
  policy.max_retries = bopt.max_retries;
  policy.backoff_us = bopt.retry_backoff_us;
  fault::backoff_sleep(policy, attempt);
  if (obs::Tracer* tracer = obs::Tracer::current()) {
    tracer->instant(obs::trace_names::kRunnerRetry,
                    static_cast<double>(attempt + 1),
                    obs::trace_names::kCatFault);
  }
}

}  // namespace

std::vector<Outcome> SweepPlanner::run(const std::vector<Job>& jobs,
                                       unsigned threads,
                                       MetricsShards* shards) const {
  report::BatchOptions bopt;
  bopt.threads = threads;
  bopt.fail_fast = true;  // the historical contract: one poisoned job throws
  const std::vector<JobResult> results = run_jobs(jobs, bopt, shards);
  std::vector<Outcome> outcomes;
  outcomes.reserve(results.size());
  for (const JobResult& r : results) outcomes.push_back(r.outcome);
  return outcomes;
}

std::vector<JobResult> SweepPlanner::run_jobs(const std::vector<Job>& jobs,
                                              const report::BatchOptions& bopt,
                                              MetricsShards* shards) const {
  CASA_CHECK(shards == nullptr || shards->size() == jobs.size(),
             "MetricsShards size must match the job count");
  // Root trace span for the sweep; the prepare and group-task flows the
  // runner fans out are flow-linked back into it.
  const obs::TraceSpan sweep_scope(obs::Tracer::current(), obs::trace_names::kSweep,
                                 obs::trace_names::kCatSim);
  const fault::InjectorStats faults_before = fault::stats();
  const report::WorkbenchOptions& wopt = bench_->options();
  RunnerOptions ropt;
  ropt.threads = bopt.threads;
  const ParallelRunner runner(ropt);

  // Same dedup as run_many: repeated sweep points share one JobResult.
  std::vector<std::size_t> unique;
  std::vector<std::size_t> rep_of(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::size_t rep = i;
    for (const std::size_t u : unique) {
      if (jobs[u] == jobs[i]) {
        rep = u;
        break;
      }
    }
    rep_of[i] = rep;
    if (rep == i) unique.push_back(i);
  }

  std::unique_ptr<MetricsShards> local;
  MetricsShards* sh = shards;
  if (sh == nullptr && wopt.metrics != nullptr) {
    local = std::make_unique<MetricsShards>(jobs.size());
    sh = local.get();
  }
  const auto shard_of = [sh](std::size_t job_idx) -> obs::MetricsRegistry* {
    return sh != nullptr ? &sh->shard(job_idx) : nullptr;
  };
  const bool want_metrics = sh != nullptr;

  // Phase 1: every stage but the replay, in parallel over unique jobs, with
  // per-job containment. Each attempt records into a fresh registry whose
  // snapshot merges into the job's shard only when the job later finishes —
  // a job that dies mid-prepare leaves no partial counts behind.
  const std::vector<Prep> prepared = runner.map<Prep>(
      unique.size(),
      [this, &jobs, &unique, &bopt, want_metrics](std::size_t i,
                                                  std::uint64_t) {
        const std::size_t job_idx = unique[i];
        // Bind the job index as the thread's fault argument: spec clauses
        // with arg=N target exactly this job, on any schedule.
        const fault::ScopedArg scope(job_idx);
        Prep p;
        for (unsigned attempt = 0;; ++attempt) {
          obs::MetricsRegistry temp;
          try {
            p.pj = bench_->prepare_job(jobs[job_idx],
                                       want_metrics ? &temp : nullptr);
            p.recorded = temp.snapshot();
            p.attempts = attempt + 1;
            p.prepared = true;
            return p;
          } catch (...) {
            const std::exception_ptr err = std::current_exception();
            if (attempt < bopt.max_retries && fault::is_transient(err)) {
              pace_retry(bopt, attempt);
              continue;
            }
            p.failure = report::failed_job_result(err, attempt + 1);
            p.attempts = attempt + 1;
            return p;
          }
        }
      });

  // Phase 2: group the successfully prepared jobs by stream signature
  // (indices into `prepared`). Failed prepares carry no artifacts to group.
  struct Group {
    StreamKey key;
    std::vector<std::size_t> members;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    if (!prepared[i].prepared) continue;
    const StreamKey key = key_of(prepared[i].pj, wopt.steinke_moves);
    Group* home = nullptr;
    if (!key.loop_cache) {
      for (Group& g : groups) {
        if (g.key == key) {
          home = &g;
          break;
        }
      }
    }
    if (home == nullptr) {
      groups.push_back(Group{key, {}});
      home = &groups.back();
    }
    home->members.push_back(i);
  }

  // Phase 3: one task per group. Stack-eligible groups (LRU, >= 2 members,
  // no loop cache) replay the shared stream once; everything else finishes
  // through the ordinary per-configuration simulation. A stack pass that
  // fails degrades its group to the direct path in containment mode and
  // propagates under fail_fast (a stack-engine regression must fail the
  // sweep, not be silently papered over).
  const trace::BlockWalk& walk = bench_->execution().walk;
  struct GroupDone {
    std::vector<std::pair<std::size_t, JobResult>> done;
    std::size_t size = 0;
    bool stack_pass = false;  ///< members finished off one shared replay
    bool degraded = false;    ///< stack branch failed, fell back to direct
  };
  const std::vector<GroupDone> finished = runner.map<GroupDone>(
      groups.size(),
      [this, &groups, &prepared, &unique, &walk, &wopt, &bopt, &shard_of](
          std::size_t g, std::uint64_t) {
        const Group& grp = groups[g];
        GroupDone out;
        out.size = grp.members.size();
        out.done.reserve(grp.members.size());

        // Direct per-configuration finish with the same containment and
        // merge-on-success discipline as the prepare phase. Attempts
        // accumulate across phases: a job that retried in prepare and again
        // here reports the total.
        const auto finish_direct = [this, &prepared, &unique, &bopt,
                                    &shard_of](std::size_t idx) -> JobResult {
          const std::size_t job_idx = unique[idx];
          const fault::ScopedArg scope(job_idx);
          const Prep& prep = prepared[idx];
          obs::MetricsRegistry* const shard = shard_of(job_idx);
          for (unsigned attempt = 0;; ++attempt) {
            obs::MetricsRegistry temp;
            try {
              JobResult res;
              res.outcome =
                  bench_->finish_job(prep.pj, shard != nullptr ? &temp : nullptr);
              res.attempts = prep.attempts + attempt;
              res.status =
                  res.attempts > 1 ? JobStatus::kRetriedOk : JobStatus::kOk;
              if (shard != nullptr) {
                shard->merge_from(prep.recorded);
                shard->merge_from(temp.snapshot());
              }
              return res;
            } catch (...) {
              const std::exception_ptr err = std::current_exception();
              if (attempt < bopt.max_retries && fault::is_transient(err)) {
                pace_retry(bopt, attempt);
                continue;
              }
              return report::failed_job_result(err, prep.attempts + attempt);
            }
          }
        };

        const bool stack_eligible =
            grp.key.policy == cachesim::ReplacementPolicy::kLru &&
            !grp.key.loop_cache && grp.members.size() >= 2;
        obs::Tracer* const tracer = obs::Tracer::current();
        if (stack_eligible) {
          try {
            // One shared replay. The representative's trace program /
            // layout / mask are byte-identical to every member's (that is
            // what the group key guarantees), so the compiled stream is
            // too. The representative's job index is the fault argument
            // for the pass-wide machinery.
            const Prep& rep = prepared[grp.members.front()];
            const std::size_t rep_job = unique[grp.members.front()];
            const fault::ScopedArg pass_scope(rep_job);
            fault::at(fault::site_names::kSweepStackPass);
            const obs::TraceSpan pass(tracer, obs::trace_names::kSweepStackPass,
                                      obs::trace_names::kCatSim);
            if (tracer != nullptr) {
              tracer->instant(obs::trace_names::kSweepConfigsPerPass,
                              static_cast<double>(grp.members.size()),
                              obs::trace_names::kCatSim);
            }
            const Bytes line_size = grp.key.line_size;
            const trace::CompiledStream stream = traceopt::compile_fetch_stream(
                *rep.pj.tp, *rep.pj.layout, line_size);

            cachesim::ConfigFamily family;
            family.line_size = line_size;
            family.policy = grp.key.policy;
            for (const std::size_t idx : grp.members) {
              family.configs.push_back(prepared[idx].pj.job.cache);
            }
            cachesim::StackSimulator sim(family);

            std::uint64_t spm_words = 0;
            std::uint64_t replayed_runs = 0;
            for (const BasicBlockId bb : walk.seq) {
              const MemoryObjectId mo = rep.pj.tp->object_of(bb);
              if (!rep.pj.on_spm.empty() && rep.pj.on_spm[mo.index()]) {
                spm_words += stream.words_of(bb);
                continue;
              }
              CASA_CHECK(stream.cached(bb),
                         "cached block missing from the compiled layout");
              replayed_runs += stream.runs(bb).size();
              for (const trace::LineRun& run : stream.runs(bb)) {
                sim.access_line(run.addr, run.words);
              }
            }

            const memsim::LatencyParams lat;  // finish_job's defaults
            const memsim::SimCounters sampled = counters_from_stack(
                sim.counters(rep.pj.job.cache), spm_words, line_size, lat);

            // Cross-validate the sampled configuration against a direct
            // simulation BEFORE any member consumes stack counters: a
            // divergence poisons the whole group, so it must degrade (or,
            // under fail_fast, abort) rather than emit suspect Outcomes.
            obs::MetricsSnapshot validation;
            if (wopt.check_artifacts) {
              const memsim::SimReport direct = memsim::simulate_spm_system(
                  *rep.pj.tp, *rep.pj.layout, walk, rep.pj.on_spm,
                  rep.pj.job.cache, rep.pj.energies, memsim::SimOptions{});
              obs::MetricsRegistry chk_reg;
              check::CheckRunner chk(shard_of(rep_job) != nullptr ? &chk_reg
                                                                  : nullptr);
              check::check_stack_sweep(sampled, direct.counters,
                                       rep.pj.job.cache, chk);
              validation = chk_reg.snapshot();
              chk.throw_if_errors();
            }

            for (const std::size_t idx : grp.members) {
              const std::size_t job_idx = unique[idx];
              const fault::ScopedArg member_scope(job_idx);
              const Prep& prep = prepared[idx];
              const memsim::SimCounters c =
                  counters_from_stack(sim.counters(prep.pj.job.cache),
                                      spm_words, line_size, lat);
              obs::MetricsRegistry* const shard = shard_of(job_idx);
              JobResult res;
              for (unsigned attempt = 0;; ++attempt) {
                obs::MetricsRegistry temp;
                try {
                  res.outcome = bench_->finish_with_counters(
                      prep.pj, c, shard != nullptr ? &temp : nullptr);
                  res.attempts = prep.attempts + attempt;
                  res.status = res.attempts > 1 ? JobStatus::kRetriedOk
                                                : JobStatus::kOk;
                  if (shard != nullptr) {
                    shard->merge_from(prep.recorded);
                    // Same stream.* telemetry run_lines emits per direct
                    // replay.
                    temp.add(obs::metric_names::kStreamCompiledRuns,
                             stream.total_runs());
                    temp.add(obs::metric_names::kStreamReplayedRuns,
                             replayed_runs);
                    temp.add(obs::metric_names::kStreamReplayedWords,
                             c.cache_hits + c.cache_misses);
                    shard->merge_from(temp.snapshot());
                    // The group's check.* validation counters ride with the
                    // sampled member.
                    if (idx == grp.members.front()) {
                      shard->merge_from(validation);
                    }
                  }
                  break;
                } catch (...) {
                  const std::exception_ptr err = std::current_exception();
                  if (attempt < bopt.max_retries && fault::is_transient(err)) {
                    pace_retry(bopt, attempt);
                    continue;
                  }
                  res = report::failed_job_result(err, prep.attempts + attempt);
                  break;
                }
              }
              out.done.emplace_back(idx, std::move(res));
            }
            out.stack_pass = true;
            return out;
          } catch (...) {
            if (bopt.fail_fast) throw;
            // The shared machinery itself failed (injected fault, stack /
            // direct divergence). The members are still individually
            // healthy jobs: degrade the whole group to direct simulation —
            // exact by construction — and account for it.
            out.degraded = true;
            out.done.clear();
            if (tracer != nullptr) {
              tracer->instant(obs::trace_names::kSweepDegraded,
                              static_cast<double>(grp.members.size()),
                              obs::trace_names::kCatFault);
            }
          }
        }

        for (const std::size_t idx : grp.members) {
          out.done.emplace_back(idx, finish_direct(idx));
        }
        return out;
      });

  // Reassemble in job order: unique results land at their indices,
  // duplicates copy their representative's.
  std::vector<JobResult> by_unique(unique.size());
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    if (!prepared[i].prepared) by_unique[i] = prepared[i].failure;
  }
  for (const GroupDone& gd : finished) {
    for (const auto& [idx, res] : gd.done) by_unique[idx] = res;
  }
  std::vector<std::size_t> unique_pos(jobs.size());
  for (std::size_t i = 0; i < unique.size(); ++i) unique_pos[unique[i]] = i;
  std::vector<JobResult> results;
  results.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    results.push_back(by_unique[unique_pos[rep_of[i]]]);
  }

  std::size_t failed = 0;
  std::size_t retried = 0;
  for (const JobResult& r : results) {
    if (r.status == JobStatus::kFailed) ++failed;
    if (r.status == JobStatus::kRetriedOk) ++retried;
  }
  std::uint64_t stack_passes = 0;
  std::uint64_t stack_hits = 0;
  std::uint64_t direct_finishes = 0;
  std::uint64_t degraded_groups = 0;
  for (const GroupDone& gd : finished) {
    if (gd.stack_pass) {
      ++stack_passes;
      stack_hits += gd.size;
    } else {
      direct_finishes += gd.size;
    }
    if (gd.degraded) ++degraded_groups;
  }

  if (wopt.metrics != nullptr && sh != nullptr) {
    wopt.metrics->merge_from(sh->merged());
    wopt.metrics->add(obs::metric_names::kRunnerJobs, jobs.size());
    wopt.metrics->add(obs::metric_names::kRunnerDedupHits,
                      jobs.size() - unique.size());
    wopt.metrics->set_gauge(obs::metric_names::kRunnerThreads,
                            static_cast<double>(runner.threads()));
    wopt.metrics->add(obs::metric_names::kSweepGroups, groups.size());
    wopt.metrics->add(obs::metric_names::kSweepStackPasses, stack_passes);
    wopt.metrics->add(obs::metric_names::kSweepStackHits, stack_hits);
    wopt.metrics->add(obs::metric_names::kSweepFallbackConfigs,
                      direct_finishes);
    wopt.metrics->add(obs::metric_names::kSweepDedupHits,
                      jobs.size() - unique.size());
    for (const GroupDone& gd : finished) {
      if (gd.stack_pass) {
        wopt.metrics->observe(obs::metric_names::kSweepConfigsPerPass,
                              static_cast<double>(gd.size));
      }
    }
    if (degraded_groups != 0) {
      wopt.metrics->add(obs::metric_names::kSweepDegradedGroups,
                        degraded_groups);
    }
    if (failed != 0) {
      wopt.metrics->add(obs::metric_names::kRunnerJobsFailed, failed);
    }
    if (retried != 0) {
      wopt.metrics->add(obs::metric_names::kRunnerJobsRetried, retried);
    }
    const std::uint64_t fired = fault::stats().fires - faults_before.fires;
    if (fired != 0) {
      wopt.metrics->add(obs::metric_names::kFaultInjected, fired);
    }
  }

  if (bopt.fail_fast) {
    for (const JobResult& r : results) {
      if (r.status == JobStatus::kFailed) std::rethrow_exception(r.error);
    }
  } else if (wopt.check_artifacts) {
    // Degraded batches are reported, not thrown — same policy as
    // Workbench::run_jobs.
    check::CheckRunner chk(wopt.metrics);
    check::check_batch(report::batch_summary_of(results), chk);
  }
  return results;
}

}  // namespace casa::sim

// Parallel evaluation engine for independent simulation points.
//
// Design-space sweeps evaluate many (config, workload, allocation) points
// that share nothing but read-only inputs, so they parallelize trivially.
// ParallelRunner::map fans `count` indexed tasks out across a ThreadPool
// and returns results **in index order** regardless of completion order,
// so a sweep's output is byte-identical on 1 thread and on N.
//
// Stochastic tasks must not share an RNG stream across threads (the
// interleaving would be schedule-dependent). Each task instead receives a
// private seed derived from (base seed, index) via task_seed() — a
// SplitMix64 mix, so consecutive indices get well-separated streams.
//
// When a Tracer is attached (obs::Tracer::set_current), every task runs
// inside a "task" trace span, and pooled tasks are flow-linked back to the
// span that called map() — the submitting thread emits a flow tail per
// task, the worker emits the head — so worker timelines connect to their
// parent flow instead of starting at their own roots.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "casa/obs/metrics.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/thread_pool.hpp"

namespace casa::sim {

struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (no pool).
  unsigned threads = 0;
  /// Base seed mixed into every task's private seed.
  std::uint64_t seed = 1;
};

/// Deterministic per-task seed: SplitMix64 of base ^ index. Never 0.
std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t index);

/// One metrics registry per parallel task.
///
/// Tasks record into their own shard with no cross-thread contention; after
/// the fan-out completes, merged() folds the shards together **in index
/// order**, so the merged counters are identical for any thread count (the
/// same invariance ParallelRunner::map gives results). Span timings merge
/// too — their sums depend on wall time, not on the merge, so only the
/// counter part of the merged view is schedule-invariant.
class MetricsShards {
 public:
  explicit MetricsShards(std::size_t count) : shards_(count) {}

  std::size_t size() const { return shards_.size(); }
  obs::MetricsRegistry& shard(std::size_t i) { return shards_[i]; }

  /// Per-shard snapshots, in index order (the artifact "tasks" array).
  std::vector<obs::MetricsSnapshot> snapshots() const;

  /// All shards folded together in index order.
  obs::MetricsSnapshot merged() const;

 private:
  // deque: MetricsRegistry is not movable, and shard addresses must stay
  // stable while worker threads hold them.
  std::deque<obs::MetricsRegistry> shards_;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions opt = {});

  unsigned threads() const { return threads_; }

  /// Evaluates fn(index, seed) for index in [0, count) and returns the
  /// results in index order. R must be default-constructible and movable.
  /// The first task exception (if any) is rethrown after all tasks finish.
  template <typename R, typename F>
  std::vector<R> map(std::size_t count, F&& fn) const {
    std::vector<R> results(count);
    obs::Tracer* const tracer = obs::Tracer::current();
    if (threads_ == 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) {
        const obs::TraceSpan task(tracer, obs::trace_names::kTask,
                                  obs::trace_names::kCatSim);
        results[i] = fn(i, task_seed(opt_.seed, i));
      }
      return results;
    }
    // Flow tails are emitted on this thread, inside whatever span encloses
    // the map() call; each worker's "task" span carries the matching head.
    std::vector<std::uint64_t> flows;
    if (tracer != nullptr) {
      flows.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        flows.push_back(tracer->flow_begin(obs::trace_names::kTask,
                                           obs::trace_names::kCatSim));
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      pool_->submit([&results, &fn, &flows, tracer, this, i] {
        const obs::TraceSpan task(tracer, obs::trace_names::kTask,
                                  obs::trace_names::kCatSim,
                                  flows.empty() ? 0 : flows[i]);
        results[i] = fn(i, task_seed(opt_.seed, i));
      });
    }
    pool_->wait();
    return results;
  }

 private:
  RunnerOptions opt_;
  unsigned threads_ = 1;
  std::unique_ptr<support::ThreadPool> pool_;  ///< null when threads_ == 1
};

}  // namespace casa::sim

// Parallel evaluation engine for independent simulation points.
//
// Design-space sweeps evaluate many (config, workload, allocation) points
// that share nothing but read-only inputs, so they parallelize trivially.
// ParallelRunner::map fans `count` indexed tasks out across a ThreadPool
// and returns results **in index order** regardless of completion order,
// so a sweep's output is byte-identical on 1 thread and on N.
//
// Stochastic tasks must not share an RNG stream across threads (the
// interleaving would be schedule-dependent). Each task instead receives a
// private seed derived from (base seed, index) via task_seed() — a
// SplitMix64 mix, so consecutive indices get well-separated streams.
//
// When a Tracer is attached (obs::Tracer::set_current), every task runs
// inside a "task" trace span, and pooled tasks are flow-linked back to the
// span that called map() — the submitting thread emits a flow tail per
// task, the worker emits the head — so worker timelines connect to their
// parent flow instead of starting at their own roots.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "casa/obs/metrics.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/thread_pool.hpp"

namespace casa::sim {

struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (no pool).
  unsigned threads = 0;
  /// Base seed mixed into every task's private seed.
  std::uint64_t seed = 1;
};

/// Deterministic per-task seed: SplitMix64 of base ^ index. Never 0.
std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t index);

/// One metrics registry per parallel task.
///
/// Tasks record into their own shard with no cross-thread contention; after
/// the fan-out completes, merged() folds the shards together **in index
/// order**, so the merged counters are identical for any thread count (the
/// same invariance ParallelRunner::map gives results). Span timings merge
/// too — their sums depend on wall time, not on the merge, so only the
/// counter part of the merged view is schedule-invariant.
class MetricsShards {
 public:
  explicit MetricsShards(std::size_t count) : shards_(count) {}

  std::size_t size() const { return shards_.size(); }
  obs::MetricsRegistry& shard(std::size_t i) { return shards_[i]; }

  /// Per-shard snapshots, in index order (the artifact "tasks" array).
  std::vector<obs::MetricsSnapshot> snapshots() const;

  /// All shards folded together in index order.
  obs::MetricsSnapshot merged() const;

 private:
  // deque: MetricsRegistry is not movable, and shard addresses must stay
  // stable while worker threads hold them.
  std::deque<obs::MetricsRegistry> shards_;
};

/// One contained task failure from map_collect: the task's map index and
/// the exception it raised.
struct TaskFailure {
  std::size_t index = 0;
  std::exception_ptr error;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions opt = {});

  unsigned threads() const { return threads_; }

  /// Evaluates fn(index, seed) for index in [0, count) and returns the
  /// results in index order. R must be default-constructible and movable.
  /// Task exceptions are contained per index: every failure lands in
  /// `failures` sorted by index (the slot keeps its default-constructed R),
  /// every healthy task still completes, and nothing is rethrown.
  template <typename R, typename F>
  std::vector<R> map_collect(std::size_t count, F&& fn,
                             std::vector<TaskFailure>& failures) const {
    std::vector<R> results(count);
    // Errors are captured per index inside the task body — deterministic
    // attribution that does not depend on pool bookkeeping or schedule.
    std::vector<std::exception_ptr> errors(count);
    obs::Tracer* const tracer = obs::Tracer::current();
    const auto run_one = [&results, &errors, &fn, this](std::size_t i) {
      try {
        results[i] = fn(i, task_seed(opt_.seed, i));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    };
    if (threads_ == 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) {
        const obs::TraceSpan task(tracer, obs::trace_names::kTask,
                                  obs::trace_names::kCatSim);
        run_one(i);
      }
    } else {
      // Flow tails are emitted on this thread, inside whatever span
      // encloses the map() call; each worker's "task" span carries the
      // matching head.
      std::vector<std::uint64_t> flows;
      if (tracer != nullptr) {
        flows.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          flows.push_back(tracer->flow_begin(obs::trace_names::kTask,
                                             obs::trace_names::kCatSim));
        }
      }
      for (std::size_t i = 0; i < count; ++i) {
        pool_->submit([&run_one, &flows, tracer, i] {
          const obs::TraceSpan task(tracer, obs::trace_names::kTask,
                                    obs::trace_names::kCatSim,
                                    flows.empty() ? 0 : flows[i]);
          run_one(i);
        });
      }
      pool_->wait();
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (errors[i] != nullptr) failures.push_back(TaskFailure{i, errors[i]});
    }
    return results;
  }

  /// map_collect with batch-level rethrow: the lowest-indexed task
  /// exception (if any) is rethrown after all tasks finish, so one poisoned
  /// point still fails the whole fan-out deterministically.
  template <typename R, typename F>
  std::vector<R> map(std::size_t count, F&& fn) const {
    std::vector<TaskFailure> failures;
    std::vector<R> results =
        map_collect<R>(count, static_cast<F&&>(fn), failures);
    if (!failures.empty()) std::rethrow_exception(failures.front().error);
    return results;
  }

 private:
  RunnerOptions opt_;
  unsigned threads_ = 1;
  std::unique_ptr<support::ThreadPool> pool_;  ///< null when threads_ == 1
};

}  // namespace casa::sim

#include "casa/sim/parallel_runner.hpp"

namespace casa::sim {

std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 (Steele et al.) — one mix is enough to decorrelate
  // consecutive indices into unrelated xorshift seed states.
  std::uint64_t z = (base_seed ^ index) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z != 0 ? z : 0x9e3779b97f4a7c15ULL;
}

ParallelRunner::ParallelRunner(RunnerOptions opt)
    : opt_(opt), threads_(support::ThreadPool::resolve(opt.threads)) {
  if (threads_ > 1) {
    pool_ = std::make_unique<support::ThreadPool>(threads_, "sim");
  }
}

std::vector<obs::MetricsSnapshot> MetricsShards::snapshots() const {
  std::vector<obs::MetricsSnapshot> out;
  out.reserve(shards_.size());
  for (const obs::MetricsRegistry& shard : shards_) {
    out.push_back(shard.snapshot());
  }
  return out;
}

obs::MetricsSnapshot MetricsShards::merged() const {
  obs::MetricsSnapshot merged;
  for (const obs::MetricsRegistry& shard : shards_) {
    merged.merge_from(shard.snapshot());
  }
  return merged;
}

}  // namespace casa::sim

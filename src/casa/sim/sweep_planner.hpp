// One-pass design-space sweeps over the Workbench.
//
// A sweep hands run_many one job per cache configuration, and each job
// replays the whole fetch stream against its own cachesim::Cache — N
// configurations, N replays of the same stream. SweepPlanner removes that
// redundancy without changing a single counter:
//
//  1. deduplicate identical jobs (repeated sweep points share one Outcome);
//  2. run every unique job's pipeline stages up to — but not including —
//     the hierarchy replay, in parallel (Workbench::prepare_job: trace
//     formation, layout, conflict graph + ILP where the flow has one);
//  3. group the prepared jobs by what the cache actually sees: line size,
//     replacement policy, trace-formation budget, layout mode, and the
//     scratchpad mask. Jobs in one group provably feed the cache the same
//     line-run sequence — only the cache geometry differs;
//  4. for LRU groups with two or more members, replay that sequence ONCE
//     through cachesim::StackSimulator and read exact per-configuration
//     counters off the stack-distance histograms; every other job (non-LRU
//     policies, loop-cache flows, singleton groups) finishes through the
//     ordinary per-config simulation (Workbench::finish_job);
//  5. finish each job from its counters (Workbench::finish_with_counters),
//     which derives energies through the same arithmetic a direct replay
//     uses — Outcomes and per-job sim.* / cache.* / stream.* telemetry come
//     out bit-identical to run_many's.
//
// When artifact checking is on (WorkbenchOptions::check_artifacts), each
// stack group cross-validates its first member against a direct simulation
// through check::check_stack_sweep, so a stack-engine regression fails the
// sweep instead of skewing every configuration in the group.
//
// run_jobs is the fault-contained entry point (mirrors
// Workbench::run_jobs): per-job failures are captured as JobResults,
// transients retry with deterministic backoff, and — in containment mode —
// a failing stack pass degrades its group to per-configuration direct
// simulation (counted in sweep.degraded_groups) instead of poisoning the
// member jobs. run() is run_jobs with fail_fast semantics.
//
// docs/sweep.md covers the algorithm, the LRU-only exactness argument, the
// fallback rules, and the sweep.* metrics; docs/faults.md covers the
// containment and degradation model.
#pragma once

#include <vector>

#include "casa/report/workbench.hpp"
#include "casa/sim/parallel_runner.hpp"

namespace casa::sim {

class SweepPlanner {
 public:
  using Job = report::Workbench::Job;

  /// The workbench must outlive the planner.
  explicit SweepPlanner(const report::Workbench& bench) : bench_(&bench) {}

  /// Drop-in replacement for Workbench::run_many: evaluates every job,
  /// fanning out across `threads` workers (0 = hardware concurrency), and
  /// returns Outcomes in job order, identical for any thread count and
  /// bit-identical to run_many. With `shards` (size == jobs.size()), job i
  /// records into shards->shard(i) exactly as run_many's jobs do;
  /// duplicates record nothing. The merged view folds into
  /// options().metrics when that is set, plus the sweep.* planning metrics:
  ///   sweep.groups           stream-sharing groups formed
  ///   sweep.stack_passes     groups replayed once through the stack engine
  ///   sweep.stack_hits       jobs whose counters came from a stack pass
  ///   sweep.fallback_configs jobs finished by direct per-config simulation
  ///   sweep.dedup_hits       duplicate jobs that shared an Outcome
  ///   sweep.configs_per_pass distribution of stack-group sizes
  std::vector<report::Outcome> run(const std::vector<Job>& jobs,
                                   unsigned threads = 0,
                                   MetricsShards* shards = nullptr) const;

  /// Fault-contained sweep: like run(), but failures stay per-job. Every
  /// healthy job completes and its JobResult carries the Outcome; a failed
  /// job carries its classified error instead. Transient failures retry up
  /// to opt.max_retries times with deterministic backoff. When the shared
  /// stack pass of a group fails in containment mode (opt.fail_fast ==
  /// false), the group degrades to per-configuration direct simulation —
  /// the surviving members' Outcomes stay bit-identical to a healthy
  /// sweep's — and the sweep.degraded_groups counter records it. With
  /// opt.fail_fast the lowest-indexed failure rethrows after the batch
  /// drains (run()'s historical contract; a stack/direct divergence fails
  /// the whole sweep). Shards merge per job only on that job's success.
  std::vector<report::JobResult> run_jobs(const std::vector<Job>& jobs,
                                          const report::BatchOptions& opt = {},
                                          MetricsShards* shards = nullptr) const;

 private:
  const report::Workbench* bench_;
};

}  // namespace casa::sim

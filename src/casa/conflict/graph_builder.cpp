#include "casa/conflict/graph_builder.hpp"

#include <unordered_map>

#include "casa/support/error.hpp"

namespace casa::conflict {

ConflictGraph build_conflict_graph(const traceopt::TraceProgram& tp,
                                   const traceopt::Layout& layout,
                                   const trace::BlockWalk& walk,
                                   const BuildOptions& opt) {
  CASA_CHECK(opt.cache.line_size > 0, "cache line size must be positive");
  const std::size_t n = tp.object_count();
  const prog::Program& program = tp.program();

  cachesim::Cache cache(opt.cache, opt.seed);

  std::vector<std::uint64_t> fetches(n, 0);
  std::vector<std::uint64_t> cold(n, 0);
  std::vector<std::uint64_t> hits(n, 0);
  // (i << 32 | j) -> m_ij
  std::unordered_map<std::uint64_t, std::uint64_t> m;
  // line number -> object whose fill evicted it
  std::unordered_map<std::uint64_t, MemoryObjectId> evicted_by;

  for (const BasicBlockId bb : walk.seq) {
    const MemoryObjectId mo = tp.object_of(bb);
    const Addr base = layout.block_addr(bb);
    const Bytes size = program.block(bb).size;
    for (Bytes off = 0; off < size; off += kWordBytes) {
      const Addr addr = base + off;
      ++fetches[mo.index()];
      const cachesim::AccessResult r = cache.access(addr);
      if (r.hit) {
        ++hits[mo.index()];
        continue;
      }
      const std::uint64_t line = cache.line_of(addr);
      auto ev = evicted_by.find(line);
      if (ev == evicted_by.end()) {
        ++cold[mo.index()];
      } else {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(mo.value()) << 32) |
            ev->second.value();
        ++m[key];
        evicted_by.erase(ev);
      }
      if (r.evicted_line.has_value()) {
        evicted_by[*r.evicted_line] = mo;
      }
    }
  }

  std::vector<Edge> edges;
  edges.reserve(m.size());
  for (const auto& [key, weight] : m) {
    edges.push_back(Edge{MemoryObjectId(static_cast<std::uint32_t>(key >> 32)),
                         MemoryObjectId(static_cast<std::uint32_t>(key)),
                         weight});
  }
  return ConflictGraph(n, std::move(fetches), std::move(cold),
                       std::move(hits), std::move(edges));
}

}  // namespace casa::conflict

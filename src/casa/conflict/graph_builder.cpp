#include "casa/conflict/graph_builder.hpp"

#include <unordered_map>

#include "casa/support/error.hpp"

namespace casa::conflict {

namespace {

/// Mutable build state shared by both replay granularities.
struct BuildState {
  std::vector<std::uint64_t> fetches;
  std::vector<std::uint64_t> cold;
  std::vector<std::uint64_t> hits;
  // (i << 32 | j) -> m_ij
  std::unordered_map<std::uint64_t, std::uint64_t> m;
  // line number -> object whose fill evicted it
  std::unordered_map<std::uint64_t, MemoryObjectId> evicted_by;

  explicit BuildState(std::size_t n) : fetches(n, 0), cold(n, 0), hits(n, 0) {}

  /// Miss bookkeeping for one missing line access by `mo` (paper eq. 5/6):
  /// attribute the miss to its recorded evictor, or count it cold.
  void on_miss(MemoryObjectId mo, std::uint64_t line,
               const cachesim::AccessResult& r) {
    auto ev = evicted_by.find(line);
    if (ev == evicted_by.end()) {
      ++cold[mo.index()];
    } else {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(mo.value()) << 32) | ev->second.value();
      ++m[key];
      evicted_by.erase(ev);
    }
    if (r.evicted_line.has_value()) {
      evicted_by[*r.evicted_line] = mo;
    }
  }

  ConflictGraph finish(std::size_t n) {
    std::vector<Edge> edges;
    edges.reserve(m.size());
    for (const auto& [key, weight] : m) {
      edges.push_back(
          Edge{MemoryObjectId(static_cast<std::uint32_t>(key >> 32)),
               MemoryObjectId(static_cast<std::uint32_t>(key)), weight});
    }
    return ConflictGraph(n, std::move(fetches), std::move(cold),
                         std::move(hits), std::move(edges));
  }
};

ConflictGraph replay_words(const traceopt::TraceProgram& tp,
                           const traceopt::Layout& layout,
                           const trace::BlockWalk& walk,
                           const BuildOptions& opt) {
  const std::size_t n = tp.object_count();
  const prog::Program& program = tp.program();
  cachesim::Cache cache(opt.cache, opt.seed);
  BuildState st(n);

  for (const BasicBlockId bb : walk.seq) {
    const MemoryObjectId mo = tp.object_of(bb);
    const Addr base = layout.block_addr(bb);
    const Bytes size = program.block(bb).size;
    for (Bytes off = 0; off < size; off += kWordBytes) {
      const Addr addr = base + off;
      ++st.fetches[mo.index()];
      const cachesim::AccessResult r = cache.access(addr);
      if (r.hit) {
        ++st.hits[mo.index()];
        continue;
      }
      st.on_miss(mo, cache.line_of(addr), r);
    }
  }
  return st.finish(n);
}

ConflictGraph replay_lines(const traceopt::TraceProgram& tp,
                           const trace::CompiledStream& stream,
                           const trace::BlockWalk& walk,
                           const BuildOptions& opt) {
  const std::size_t n = tp.object_count();
  cachesim::Cache cache(opt.cache, opt.seed);
  BuildState st(n);

  for (const BasicBlockId bb : walk.seq) {
    const MemoryObjectId mo = tp.object_of(bb);
    const std::size_t moi = mo.index();
    CASA_CHECK(stream.cached(bb),
               "conflict build needs every executed block in the layout");
    for (const trace::LineRun& run : stream.runs(bb)) {
      st.fetches[moi] += run.words;
      const cachesim::AccessResult r = cache.access_line(run.addr, run.words);
      if (r.hit) {
        st.hits[moi] += run.words;
        continue;
      }
      // Same-line run: only the first word can miss, the rest hit.
      st.hits[moi] += run.words - 1;
      st.on_miss(mo, run.line, r);
    }
  }
  return st.finish(n);
}

}  // namespace

ConflictGraph build_conflict_graph(const traceopt::TraceProgram& tp,
                                   const traceopt::Layout& layout,
                                   const trace::BlockWalk& walk,
                                   const BuildOptions& opt) {
  CASA_CHECK(opt.cache.line_size > 0, "cache line size must be positive");
  if (!opt.use_compiled_stream) return replay_words(tp, layout, walk, opt);
  const trace::CompiledStream stream =
      traceopt::compile_fetch_stream(tp, layout, opt.cache.line_size);
  return replay_lines(tp, stream, walk, opt);
}

ConflictGraph build_conflict_graph(const traceopt::TraceProgram& tp,
                                   const trace::CompiledStream& stream,
                                   const trace::BlockWalk& walk,
                                   const BuildOptions& opt) {
  CASA_CHECK(stream.line_size() == opt.cache.line_size,
             "stream was compiled for a different line size");
  return replay_lines(tp, stream, walk, opt);
}

}  // namespace casa::conflict

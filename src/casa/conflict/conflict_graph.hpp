// Conflict graph G = (X, E) — paper §3.3.
//
// Vertex x_i: one memory object, weighted with its instruction fetch count
// f_i. Directed edge e_ij with weight m_ij: the number of cache misses of
// x_i whose missing line was previously evicted by x_j. Cold (first-touch)
// misses have no evictor and are kept separately; they are unavoidable by
// allocation and therefore not part of the optimization objective's variable
// term.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "casa/support/ids.hpp"

namespace casa::conflict {

struct Edge {
  MemoryObjectId from;  ///< x_i — the object that missed
  MemoryObjectId to;    ///< x_j — the object whose fill evicted x_i's line
  std::uint64_t misses = 0;  ///< m_ij
};

class ConflictGraph {
 public:
  ConflictGraph(std::size_t nodes, std::vector<std::uint64_t> fetches,
                std::vector<std::uint64_t> cold_misses,
                std::vector<std::uint64_t> hits, std::vector<Edge> edges);

  std::size_t node_count() const { return fetches_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// f_i — instruction fetches of object i (vertex weight).
  std::uint64_t fetches(MemoryObjectId i) const {
    return fetches_[i.index()];
  }
  /// Cold misses of object i (not attributable to any conflict).
  std::uint64_t cold_misses(MemoryObjectId i) const {
    return cold_misses_[i.index()];
  }
  /// Cache hits of object i during the profiling run.
  std::uint64_t hits(MemoryObjectId i) const { return hits_[i.index()]; }

  /// Total misses of object i: cold + sum of m_ij (paper eq. 3 plus cold).
  std::uint64_t total_misses(MemoryObjectId i) const;

  /// m_ij, zero when no edge exists.
  std::uint64_t miss_weight(MemoryObjectId i, MemoryObjectId j) const;

  /// All edges, ordered by (from, to).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Outgoing edges of node i (conflict neighbourhood N_i).
  std::vector<Edge> out_edges(MemoryObjectId i) const;

  /// Sum of all conflict-miss weights.
  std::uint64_t total_conflict_misses() const;

  /// Graphviz dump for inspection.
  std::string to_dot() const;

 private:
  std::vector<std::uint64_t> fetches_;
  std::vector<std::uint64_t> cold_misses_;
  std::vector<std::uint64_t> hits_;
  std::vector<Edge> edges_;              ///< sorted by (from, to)
  std::vector<std::size_t> out_begin_;   ///< CSR index into edges_ by from
};

}  // namespace casa::conflict

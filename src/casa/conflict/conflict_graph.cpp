#include "casa/conflict/conflict_graph.hpp"

#include <algorithm>
#include <sstream>

#include "casa/support/error.hpp"

namespace casa::conflict {

ConflictGraph::ConflictGraph(std::size_t nodes,
                             std::vector<std::uint64_t> fetches,
                             std::vector<std::uint64_t> cold_misses,
                             std::vector<std::uint64_t> hits,
                             std::vector<Edge> edges)
    : fetches_(std::move(fetches)),
      cold_misses_(std::move(cold_misses)),
      hits_(std::move(hits)),
      edges_(std::move(edges)) {
  CASA_CHECK(fetches_.size() == nodes && cold_misses_.size() == nodes &&
                 hits_.size() == nodes,
             "conflict graph vector size mismatch");
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  for (const Edge& e : edges_) {
    CASA_CHECK(e.from.index() < nodes && e.to.index() < nodes,
               "conflict edge references unknown node");
    CASA_CHECK(e.misses > 0, "conflict edge with zero weight");
  }
  out_begin_.assign(nodes + 1, 0);
  for (const Edge& e : edges_) ++out_begin_[e.from.index() + 1];
  for (std::size_t i = 1; i <= nodes; ++i) out_begin_[i] += out_begin_[i - 1];
}

std::uint64_t ConflictGraph::total_misses(MemoryObjectId i) const {
  std::uint64_t total = cold_misses_[i.index()];
  for (const Edge& e : out_edges(i)) total += e.misses;
  return total;
}

std::uint64_t ConflictGraph::miss_weight(MemoryObjectId i,
                                         MemoryObjectId j) const {
  for (const Edge& e : out_edges(i)) {
    if (e.to == j) return e.misses;
  }
  return 0;
}

std::vector<Edge> ConflictGraph::out_edges(MemoryObjectId i) const {
  CASA_CHECK(i.index() < node_count(), "bad node id");
  return {edges_.begin() + static_cast<std::ptrdiff_t>(out_begin_[i.index()]),
          edges_.begin() +
              static_cast<std::ptrdiff_t>(out_begin_[i.index() + 1])};
}

std::uint64_t ConflictGraph::total_conflict_misses() const {
  std::uint64_t total = 0;
  for (const Edge& e : edges_) total += e.misses;
  return total;
}

std::string ConflictGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph conflict {\n";
  for (std::size_t i = 0; i < node_count(); ++i) {
    os << "  n" << i << " [label=\"x" << i << "\\nf=" << fetches_[i]
       << "\"];\n";
  }
  for (const Edge& e : edges_) {
    os << "  n" << e.from.index() << " -> n" << e.to.index() << " [label=\""
       << e.misses << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace casa::conflict

// Conflict-graph construction: the profiling cache pass.
//
// Replays the dynamic block walk through the configured I-cache with every
// memory object cached (no scratchpad — the paper builds G before
// allocation). For each miss the previously recorded evictor of the missing
// line determines the conflict edge; fills record the current object as the
// future evictor of whatever line they displaced.
//
// By default the walk is replayed at line granularity through a pre-compiled
// fetch stream (trace::CompiledStream) — one cache lookup per same-line run
// of word fetches instead of one per word, with bit-identical counters. The
// word-granular reference path survives behind BuildOptions for oracle
// testing and A/B benchmarking.
#pragma once

#include "casa/cachesim/cache.hpp"
#include "casa/conflict/conflict_graph.hpp"
#include "casa/trace/compiled_stream.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::conflict {

struct BuildOptions {
  cachesim::CacheConfig cache;
  /// Seed for the cache's random replacement policy (unused otherwise).
  std::uint64_t seed = 1;
  /// Replay at line granularity (fast path). The word-granular reference is
  /// kept for oracle tests; both produce identical graphs.
  bool use_compiled_stream = true;
};

/// Builds G for `tp` laid out by `layout` over the dynamic `walk`.
ConflictGraph build_conflict_graph(const traceopt::TraceProgram& tp,
                                   const traceopt::Layout& layout,
                                   const trace::BlockWalk& walk,
                                   const BuildOptions& opt);

/// As above but replaying a caller-compiled stream (must have been compiled
/// from the same layout with opt.cache.line_size lines); lets sweeps reuse
/// one compilation across builds.
ConflictGraph build_conflict_graph(const traceopt::TraceProgram& tp,
                                   const trace::CompiledStream& stream,
                                   const trace::BlockWalk& walk,
                                   const BuildOptions& opt);

}  // namespace casa::conflict

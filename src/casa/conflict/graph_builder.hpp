// Conflict-graph construction: the profiling cache pass.
//
// Replays the dynamic block walk through the configured I-cache with every
// memory object cached (no scratchpad — the paper builds G before
// allocation). For each miss the previously recorded evictor of the missing
// line determines the conflict edge; fills record the current object as the
// future evictor of whatever line they displaced.
#pragma once

#include "casa/cachesim/cache.hpp"
#include "casa/conflict/conflict_graph.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::conflict {

struct BuildOptions {
  cachesim::CacheConfig cache;
  /// Seed for the cache's random replacement policy (unused otherwise).
  std::uint64_t seed = 1;
};

/// Builds G for `tp` laid out by `layout` over the dynamic `walk`.
ConflictGraph build_conflict_graph(const traceopt::TraceProgram& tp,
                                   const traceopt::Layout& layout,
                                   const trace::BlockWalk& walk,
                                   const BuildOptions& opt);

}  // namespace casa::conflict

// Steinke et al. (DATE 2002) scratchpad allocator — the paper's baseline.
//
// Cache-oblivious: each object's profit is proportional to its execution
// (fetch) count; the best subset under the capacity is a plain 0/1 knapsack.
// Crucially, the technique *moves* objects out of the main-memory image
// instead of copying them, so the remaining program is compacted and every
// residual object's cache mapping changes — the source of the erratic
// results the CASA paper demonstrates. The memsim layer reproduces that by
// re-laying-out the residue (layout_excluding) before simulation.
#pragma once

#include <vector>

#include "casa/support/units.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::baseline {

struct SteinkeResult {
  std::vector<bool> on_spm;  ///< per memory object
  Bytes used_bytes = 0;
  double knapsack_profit = 0.0;
};

/// Selects objects by fetch-count knapsack. `per_access_saving` scales the
/// profit (Steinke used E_mainmem - E_spm; any positive constant yields the
/// same selection).
SteinkeResult allocate_steinke(const traceopt::TraceProgram& tp,
                               Bytes capacity,
                               Energy per_access_saving = 1.0);

/// The Steinke decision rule factored out over explicit per-item weights
/// and profits: the exact 0/1 knapsack selection under `capacity`.
/// Deterministic for fixed inputs. This is also the warm-start seed the
/// exact CASA solvers use — a knapsack over the linear savings is always
/// feasible for the full model (conflict edges only add savings), so it
/// gives branch & bound a sound incumbent before node 1.
std::vector<bool> knapsack_seed(const std::vector<Bytes>& weights,
                                const std::vector<Energy>& profits,
                                Bytes capacity);

}  // namespace casa::baseline

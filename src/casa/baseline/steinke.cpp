#include "casa/baseline/steinke.hpp"

#include "casa/ilp/knapsack.hpp"
#include "casa/support/error.hpp"

namespace casa::baseline {

std::vector<bool> knapsack_seed(const std::vector<Bytes>& weights,
                                const std::vector<Energy>& profits,
                                Bytes capacity) {
  CASA_CHECK(weights.size() == profits.size(),
             "knapsack seed needs one profit per weight");
  std::vector<ilp::KnapsackItem> items;
  items.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    items.push_back(ilp::KnapsackItem{weights[i], profits[i]});
  }
  const ilp::KnapsackResult k = ilp::solve_knapsack(items, capacity);
  return k.taken;
}

SteinkeResult allocate_steinke(const traceopt::TraceProgram& tp,
                               Bytes capacity, Energy per_access_saving) {
  CASA_CHECK(per_access_saving > 0, "per-access saving must be positive");

  std::vector<ilp::KnapsackItem> items;
  items.reserve(tp.object_count());
  for (const auto& mo : tp.objects()) {
    items.push_back(ilp::KnapsackItem{
        mo.raw_size,
        static_cast<double>(mo.fetches) * per_access_saving});
  }

  const ilp::KnapsackResult k = ilp::solve_knapsack(items, capacity);

  SteinkeResult r;
  r.on_spm.assign(tp.object_count(), false);
  for (std::size_t i = 0; i < k.taken.size(); ++i) {
    if (k.taken[i]) {
      r.on_spm[i] = true;
      r.used_bytes += tp.objects()[i].raw_size;
    }
  }
  r.knapsack_profit = k.total_profit;
  return r;
}

}  // namespace casa::baseline

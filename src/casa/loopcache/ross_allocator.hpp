// Gordon-Ross / Vahid preloading heuristic.
//
// Candidates (loops and functions) are ranked by execution-time density —
// fetches per byte — and greedily packed into the loop cache, skipping
// candidates that overlap an already-selected region (a nested loop inside a
// selected outer loop is already covered), until the region-count or
// capacity limit is hit.
#pragma once

#include "casa/loopcache/loop_cache.hpp"

namespace casa::loopcache {

struct RossResult {
  RegionSet selected{std::vector<Region>{}};
  Bytes used_bytes = 0;
  std::uint64_t covered_fetches = 0;  ///< static estimate from the profile
};

RossResult allocate_ross(const std::vector<Region>& candidates,
                         const LoopCacheConfig& config);

}  // namespace casa::loopcache

// Preloaded loop cache model (Gordon-Ross & Vahid, CAL 2002).
//
// The loop cache sits where the scratchpad sits (paper fig. 1b) but is
// managed by a controller holding start/end bounds for a small fixed number
// of regions; on every fetch the controller decides loop-cache vs. L1. Only
// whole loops or functions can be preloaded, and at most `max_regions` of
// them — the architectural inflexibility the paper exploits.
#pragma once

#include <string>
#include <vector>

#include "casa/prog/program.hpp"
#include "casa/support/units.hpp"
#include "casa/trace/profile.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::loopcache {

struct LoopCacheConfig {
  Bytes size = 256;
  unsigned max_regions = 4;  ///< the paper's experiments preload <= 4 loops
};

/// A preloadable candidate: a contiguous address range covering one loop or
/// one whole function, with its dynamic fetch count.
struct Region {
  Addr lo = 0;             ///< inclusive
  Addr hi = 0;             ///< exclusive
  std::uint64_t fetches = 0;
  std::string label;

  Bytes size() const { return hi - lo; }
  bool contains(Addr a) const { return a >= lo && a < hi; }
  bool overlaps(const Region& o) const { return lo < o.hi && o.lo < hi; }
};

/// Enumerates candidates (every static loop region and every function) for
/// `tp` under `layout`, with fetch counts from `profile`.
std::vector<Region> enumerate_regions(const traceopt::TraceProgram& tp,
                                      const traceopt::Layout& layout,
                                      const trace::Profile& profile);

/// Fast membership test over a set of selected (non-overlapping) regions.
class RegionSet {
 public:
  explicit RegionSet(std::vector<Region> regions);
  bool contains(Addr a) const;
  const std::vector<Region>& regions() const { return regions_; }
  Bytes total_size() const;

 private:
  std::vector<Region> regions_;  ///< sorted by lo
};

}  // namespace casa::loopcache

#include "casa/loopcache/ross_allocator.hpp"

#include <algorithm>

namespace casa::loopcache {

RossResult allocate_ross(const std::vector<Region>& candidates,
                         const LoopCacheConfig& config) {
  std::vector<Region> ranked = candidates;
  std::sort(ranked.begin(), ranked.end(), [](const Region& a,
                                             const Region& b) {
    const double da = static_cast<double>(a.fetches) /
                      static_cast<double>(a.size());
    const double db = static_cast<double>(b.fetches) /
                      static_cast<double>(b.size());
    if (da != db) return da > db;
    return a.lo < b.lo;
  });

  std::vector<Region> selected;
  Bytes used = 0;
  std::uint64_t covered = 0;
  for (const Region& r : ranked) {
    if (selected.size() >= config.max_regions) break;
    if (r.fetches == 0) continue;
    if (used + r.size() > config.size) continue;
    const bool overlap =
        std::any_of(selected.begin(), selected.end(),
                    [&r](const Region& s) { return s.overlaps(r); });
    if (overlap) continue;
    used += r.size();
    covered += r.fetches;
    selected.push_back(r);
  }

  RossResult result;
  result.selected = RegionSet(std::move(selected));
  result.used_bytes = used;
  result.covered_fetches = covered;
  return result;
}

}  // namespace casa::loopcache

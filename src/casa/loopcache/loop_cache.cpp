#include "casa/loopcache/loop_cache.hpp"

#include <algorithm>

#include "casa/support/error.hpp"

namespace casa::loopcache {

namespace {

/// Builds the covering address range of a block set; returns false when the
/// blocks are not placed contiguously (cannot be preloaded as one region).
bool range_of_blocks(const prog::Program& program,
                     const traceopt::TraceProgram& tp,
                     const traceopt::Layout& layout,
                     const std::vector<BasicBlockId>& blocks, Addr& lo,
                     Addr& hi) {
  if (blocks.empty()) return false;
  lo = ~Addr{0};
  hi = 0;
  Bytes covered = 0;
  for (const BasicBlockId bb : blocks) {
    const MemoryObjectId mo = tp.object_of(bb);
    if (!layout.placed(mo)) return false;
    const Addr a = layout.block_addr(bb);
    const Bytes sz = program.block(bb).size;
    lo = std::min(lo, a);
    hi = std::max(hi, a + sz);
    covered += sz;
  }
  // Gaps from NOP padding between objects are fine (they are part of the
  // image); gaps larger than the total padding of the span are not expected
  // with contiguous layouts but guard anyway.
  return covered > 0 && lo < hi;
}

}  // namespace

std::vector<Region> enumerate_regions(const traceopt::TraceProgram& tp,
                                      const traceopt::Layout& layout,
                                      const trace::Profile& profile) {
  const prog::Program& program = tp.program();
  std::vector<Region> out;

  for (const prog::LoopRegion& lr : program.loop_regions()) {
    Region r;
    if (!range_of_blocks(program, tp, layout, lr.blocks, r.lo, r.hi)) continue;
    for (const BasicBlockId bb : lr.blocks) {
      r.fetches += profile.fetches(program, bb);
    }
    r.label = "loop@" + program.function(lr.function).name();
    out.push_back(std::move(r));
  }
  for (const prog::Function& fn : program.functions()) {
    Region r;
    if (!range_of_blocks(program, tp, layout, fn.blocks(), r.lo, r.hi)) {
      continue;
    }
    for (const BasicBlockId bb : fn.blocks()) {
      r.fetches += profile.fetches(program, bb);
    }
    r.label = "func:" + fn.name();
    out.push_back(std::move(r));
  }
  return out;
}

RegionSet::RegionSet(std::vector<Region> regions)
    : regions_(std::move(regions)) {
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.lo < b.lo; });
  for (std::size_t i = 1; i < regions_.size(); ++i) {
    CASA_CHECK(regions_[i - 1].hi <= regions_[i].lo,
               "RegionSet regions overlap");
  }
}

bool RegionSet::contains(Addr a) const {
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](Addr addr, const Region& r) { return addr < r.lo; });
  if (it == regions_.begin()) return false;
  --it;
  return a < it->hi;
}

Bytes RegionSet::total_size() const {
  Bytes total = 0;
  for (const Region& r : regions_) total += r.size();
  return total;
}

}  // namespace casa::loopcache

#include "casa/report/workbench.hpp"

#include "casa/conflict/graph_builder.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/sim/parallel_runner.hpp"
#include "casa/traceopt/layout.hpp"

namespace casa::report {

namespace {
trace::ExecutorOptions exec_opts(const WorkbenchOptions& o) {
  trace::ExecutorOptions e;
  e.seed = o.exec_seed;
  return e;
}
}  // namespace

Workbench::Workbench(const prog::Program& program, WorkbenchOptions opt)
    : program_(&program),
      opt_(opt),
      exec_(trace::Executor::run(program, exec_opts(opt))) {}

traceopt::TraceProgram Workbench::form(const cachesim::CacheConfig& cache,
                                       Bytes max_trace) const {
  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache.line_size;
  // Traces must stay individually placeable (paper §3.2) but never smaller
  // than one line.
  topt.max_trace_size = std::max<Bytes>(max_trace, cache.line_size);
  topt.fuse_ratio = opt_.fuse_ratio;
  return traceopt::form_traces(*program_, exec_.profile, topt);
}

Outcome Workbench::run_casa(const cachesim::CacheConfig& cache,
                            Bytes spm_size,
                            const core::CasaOptions& copt) const {
  const traceopt::TraceProgram tp = form(cache, spm_size);
  const traceopt::Layout layout = traceopt::layout_all(tp);

  conflict::BuildOptions bopt;
  bopt.cache = cache;
  const conflict::ConflictGraph graph =
      conflict::build_conflict_graph(tp, layout, exec_.walk, bopt);

  const energy::EnergyTable energies =
      energy::EnergyTable::build(cache, spm_size, 0, 0);
  const core::CasaProblem problem =
      core::CasaProblem::from(tp, graph, energies, spm_size);

  const core::CasaAllocator allocator(copt);
  Outcome out;
  out.alloc = allocator.allocate(problem);
  out.object_count = tp.object_count();
  out.conflict_edges = graph.edge_count();
  out.spm_used = out.alloc.used_bytes;
  // Copy semantics: the main-memory image keeps every object; fetches of
  // scratchpad objects simply go to the scratchpad.
  out.sim = memsim::simulate_spm_system(tp, layout, exec_.walk,
                                        out.alloc.on_spm, cache, energies);
  return out;
}

Outcome Workbench::run_steinke(const cachesim::CacheConfig& cache,
                               Bytes spm_size) const {
  const traceopt::TraceProgram tp = form(cache, spm_size);
  const energy::EnergyTable energies =
      energy::EnergyTable::build(cache, spm_size, 0, 0);

  const baseline::SteinkeResult sel = baseline::allocate_steinke(
      tp, spm_size, energies.cache_hit - energies.spm_access);

  Outcome out;
  out.object_count = tp.object_count();
  out.spm_used = sel.used_bytes;
  if (opt_.steinke_moves) {
    // Move semantics: scratchpad objects leave the image; the residue is
    // compacted, changing every remaining object's cache mapping.
    std::vector<bool> excluded(sel.on_spm.begin(), sel.on_spm.end());
    const traceopt::Layout layout = traceopt::layout_excluding(tp, excluded);
    out.sim = memsim::simulate_spm_system(tp, layout, exec_.walk, sel.on_spm,
                                          cache, energies);
  } else {
    const traceopt::Layout layout = traceopt::layout_all(tp);
    out.sim = memsim::simulate_spm_system(tp, layout, exec_.walk, sel.on_spm,
                                          cache, energies);
  }
  return out;
}

Outcome Workbench::run_loopcache(const cachesim::CacheConfig& cache,
                                 Bytes lc_size, unsigned max_regions) const {
  // Fair comparison (paper §5): the loop-cache flow also runs on the
  // trace-formed program, laid out in full (nothing leaves the image).
  const traceopt::TraceProgram tp = form(cache, lc_size);
  const traceopt::Layout layout = traceopt::layout_all(tp);
  const energy::EnergyTable energies =
      energy::EnergyTable::build(cache, 0, lc_size, max_regions);

  const std::vector<loopcache::Region> candidates =
      loopcache::enumerate_regions(tp, layout, exec_.profile);
  loopcache::LoopCacheConfig lcfg;
  lcfg.size = lc_size;
  lcfg.max_regions = max_regions;
  const loopcache::RossResult sel = loopcache::allocate_ross(candidates, lcfg);

  Outcome out;
  out.object_count = tp.object_count();
  out.spm_used = sel.used_bytes;
  out.lc_regions = static_cast<unsigned>(sel.selected.regions().size());
  out.sim = memsim::simulate_loopcache_system(tp, layout, exec_.walk,
                                              sel.selected, cache, energies);
  return out;
}

std::vector<Outcome> Workbench::run_many(const std::vector<Job>& jobs,
                                         unsigned threads) const {
  sim::RunnerOptions ropt;
  ropt.threads = threads;
  const sim::ParallelRunner runner(ropt);
  return runner.map<Outcome>(
      jobs.size(), [this, &jobs](std::size_t i, std::uint64_t) {
        // Every flow is internally seeded (executor seed fixed at
        // construction, cache seeds fixed per run_*), so the per-task seed
        // is deliberately unused: a job must produce the same outcome
        // whether it runs in a batch or alone.
        const Job& job = jobs[i];
        switch (job.kind) {
          case Job::Kind::kCasa:
            return run_casa(job.cache, job.size, job.casa);
          case Job::Kind::kSteinke:
            return run_steinke(job.cache, job.size);
          case Job::Kind::kLoopCache:
            return run_loopcache(job.cache, job.size, job.max_regions);
          case Job::Kind::kCacheOnly:
            return run_cache_only(job.cache);
        }
        return Outcome{};
      });
}

Outcome Workbench::run_cache_only(const cachesim::CacheConfig& cache) const {
  const traceopt::TraceProgram tp = form(cache, 1_KiB);
  const traceopt::Layout layout = traceopt::layout_all(tp);
  const energy::EnergyTable energies = energy::EnergyTable::build(
      cache, /*spm_size=*/kWordBytes * 2, 0, 0);

  Outcome out;
  out.object_count = tp.object_count();
  const std::vector<bool> none(tp.object_count(), false);
  out.sim = memsim::simulate_spm_system(tp, layout, exec_.walk, none, cache,
                                        energies);
  return out;
}

}  // namespace casa::report

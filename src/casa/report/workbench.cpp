#include "casa/report/workbench.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "casa/check/rules.hpp"
#include "casa/conflict/graph_builder.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/fault/fault.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/span.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/sim/parallel_runner.hpp"
#include "casa/support/error.hpp"
#include "casa/traceopt/layout.hpp"

namespace casa::report {

namespace {

trace::ExecutorOptions exec_opts(const WorkbenchOptions& o) {
  trace::ExecutorOptions e;
  e.seed = o.exec_seed;
  return e;
}

memsim::SimOptions sim_opts(obs::MetricsRegistry* reg) {
  memsim::SimOptions s;
  s.metrics = reg;
  return s;
}

/// Allocation telemetry shared by every solving flow. Counters sum across
/// run_many jobs; per-run quantities (tree depth, solve time) go in as
/// distributions so merging keeps min/max instead of a meaningless sum.
void record_alloc(obs::MetricsRegistry* reg, const core::AllocationResult& a) {
  if (reg == nullptr) return;
  reg->add(obs::metric_names::kSolverNodes, a.solver_stats.nodes);
  reg->add(obs::metric_names::kSolverIncumbentUpdates,
           a.solver_stats.incumbent_updates);
  reg->add(obs::metric_names::kSolverBoundPrunes, a.solver_stats.bound_prunes);
  reg->add(obs::metric_names::kSolverInfeasiblePrunes,
           a.solver_stats.infeasible_prunes);
  reg->add(obs::metric_names::kSolverSimplexIterations,
           a.solver_stats.simplex_iterations);
  reg->add(obs::metric_names::kSolverPresolvedItems, a.presolved_items);
  reg->add(obs::metric_names::kSolverPresolvedEdges, a.presolved_edges);
  reg->observe(obs::metric_names::kSolverMaxDepth,
               static_cast<double>(a.solver_stats.max_depth));
  reg->observe(obs::metric_names::kSolverSeconds, a.solve_seconds);
  reg->observe(obs::metric_names::kAllocSpmUsedBytes,
               static_cast<double>(a.used_bytes));
  // Generic-ILP search telemetry: how much work presolve and the warm
  // start removed, and whether any LP relaxation ran into its pivot budget.
  reg->add(obs::metric_names::kIlpPresolveFixed, a.solver_stats.presolve_fixed);
  reg->add(obs::metric_names::kIlpWarmstartUsed,
           a.solver_stats.warm_start_used ? 1 : 0);
  reg->add(obs::metric_names::kIlpWarmstartRcFixed, a.solver_stats.rc_fixed);
  reg->observe(obs::metric_names::kIlpWarmstartRootGap, a.solver_stats.root_gap);
  reg->add(obs::metric_names::kIlpLpLimitRetries, a.solver_stats.lp_limit_retries);
  reg->add(obs::metric_names::kIlpSubtrees, a.solver_stats.subtrees);
}

/// Inter-stage analyzer handle: null when checking is disabled. Stages
/// validate their freshly produced artifact and escalate immediately, so a
/// broken artifact never reaches the next stage.
std::unique_ptr<check::CheckRunner> make_checker(const WorkbenchOptions& o,
                                                 obs::MetricsRegistry* reg) {
  if (!o.check_artifacts) return nullptr;
  return std::make_unique<check::CheckRunner>(reg);
}

/// Span name of a job kind's flow — identical whether the flow runs whole
/// (run_*) or staged (prepare_job / finish_*), so dashboards see one path.
const char* flow_name(Workbench::Job::Kind kind) {
  switch (kind) {
    case Workbench::Job::Kind::kCasa:
      return "run_casa";
    case Workbench::Job::Kind::kSteinke:
      return "run_steinke";
    case Workbench::Job::Kind::kLoopCache:
      return "run_loopcache";
    case Workbench::Job::Kind::kCacheOnly:
      return "run_cache_only";
  }
  return "run_unknown";
}

/// Stable error classification for JobResult: most-derived types first so
/// a transient fault never reads as a generic casa::Error. The kinds are
/// part of the batch API (drivers switch on them), so keep them stable.
void classify_error(const std::exception_ptr& err, std::string& kind,
                    std::string& message) {
  try {
    std::rethrow_exception(err);
  } catch (const fault::TransientError& e) {
    kind = "transient";
    message = e.what();
  } catch (const fault::FaultError& e) {
    kind = "fault";
    message = e.what();
  } catch (const check::CheckError& e) {
    kind = "check";
    message = e.what();
  } catch (const PreconditionError& e) {
    kind = "precondition";
    message = e.what();
  } catch (const SolveError& e) {
    kind = "solve";
    message = e.what();
  } catch (const Error& e) {
    kind = "casa";
    message = e.what();
  } catch (const std::exception& e) {
    kind = "std";
    message = e.what();
  } catch (...) {
    kind = "unknown";
    message = "non-standard exception";
  }
}

}  // namespace

std::string_view to_string(FlowKind kind) {
  switch (kind) {
    case FlowKind::kCasa:
      return "casa";
    case FlowKind::kSteinke:
      return "steinke";
    case FlowKind::kLoopCache:
      return "loopcache";
    case FlowKind::kCacheOnly:
      return "cache_only";
  }
  return "?";
}

FlowError::FlowError(std::string_view accessor, FlowKind flow)
    : Error("Outcome::" + std::string(accessor) +
            "() read off the wrong flow: this outcome is from the '" +
            std::string(to_string(flow)) + "' flow"),
      accessor_(accessor),
      flow_(flow) {}

std::size_t Outcome::conflict_edges() const {
  if (flow_ != FlowKind::kCasa) throw FlowError("conflict_edges", flow_);
  return conflict_edges_;
}

unsigned Outcome::lc_regions() const {
  if (flow_ != FlowKind::kLoopCache) throw FlowError("lc_regions", flow_);
  return lc_regions_;
}

const core::AllocationResult& Outcome::alloc() const {
  if (flow_ != FlowKind::kCasa) throw FlowError("alloc", flow_);
  return alloc_;
}

void Outcome::set_conflict_edges(std::size_t edges) {
  if (flow_ != FlowKind::kCasa) throw FlowError("set_conflict_edges", flow_);
  conflict_edges_ = edges;
}

void Outcome::set_lc_regions(unsigned regions) {
  if (flow_ != FlowKind::kLoopCache) throw FlowError("set_lc_regions", flow_);
  lc_regions_ = regions;
}

void Outcome::set_alloc(core::AllocationResult alloc) {
  if (flow_ != FlowKind::kCasa) throw FlowError("set_alloc", flow_);
  alloc_ = std::move(alloc);
}

Workbench::Workbench(const prog::Program& program, WorkbenchOptions opt)
    : program_(&program),
      opt_(opt),
      exec_(trace::Executor::run(program, exec_opts(opt))) {}

traceopt::TraceProgram Workbench::form(const cachesim::CacheConfig& cache,
                                       Bytes max_trace) const {
  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache.line_size;
  // Traces must stay individually placeable (paper §3.2) but never smaller
  // than one line.
  topt.max_trace_size = std::max<Bytes>(max_trace, cache.line_size);
  topt.fuse_ratio = opt_.fuse_ratio;
  return traceopt::form_traces(*program_, exec_.profile, topt);
}

Outcome Workbench::run_casa(const cachesim::CacheConfig& cache,
                            Bytes spm_size,
                            const core::CasaOptions& copt) const {
  return run_casa_into(opt_.metrics, cache, spm_size, copt);
}

Workbench::PreparedJob Workbench::prepare_casa(
    obs::MetricsRegistry* reg, check::CheckRunner* chk,
    const cachesim::CacheConfig& cache, Bytes spm_size,
    const core::CasaOptions& copt) const {
  fault::at(fault::site_names::kSimPrepare);
  PreparedJob pj;
  pj.job = Job::casa_job(cache, spm_size, copt);
  pj.partial = Outcome(FlowKind::kCasa);

  std::shared_ptr<traceopt::TraceProgram> tp;
  {
    const obs::Span s(reg, obs::trace_names::kTraceFormation);
    tp = std::make_shared<traceopt::TraceProgram>(form(cache, spm_size));
    if (chk) {
      check::check_trace_program(*tp, cache.line_size, *chk);
      chk->throw_if_errors();
    }
  }

  std::shared_ptr<traceopt::Layout> layout;
  {
    const obs::Span s(reg, obs::trace_names::kLayout);
    layout = std::make_shared<traceopt::Layout>(traceopt::layout_all(*tp));
    if (chk) {
      check::check_layout(*tp, *layout, cache.line_size, *chk);
      chk->throw_if_errors();
    }
  }

  std::unique_ptr<conflict::ConflictGraph> graph;
  {
    const obs::Span s(reg, obs::trace_names::kConflictGraph);
    conflict::BuildOptions bopt;
    bopt.cache = cache;
    graph = std::make_unique<conflict::ConflictGraph>(
        conflict::build_conflict_graph(*tp, *layout, exec_.walk, bopt));
    if (reg != nullptr) {
      reg->add(obs::metric_names::kConflictNodes, graph->node_count());
      reg->add(obs::metric_names::kConflictEdges, graph->edge_count());
    }
    if (chk) {
      check::check_conflict_graph(*tp, *layout, *graph, cache, *chk);
      chk->throw_if_errors();
    }
  }

  Outcome& out = pj.partial;
  {
    const obs::Span s(reg, obs::trace_names::kAllocation);
    pj.energies = energy::EnergyTable::build(cache, spm_size, 0, 0);
    const core::CasaProblem problem =
        core::CasaProblem::from(*tp, *graph, pj.energies, spm_size);
    if (chk) {
      check::check_energy_table(pj.energies, spm_size > 0, false, *chk);
      // The model the generic solver would consume must be well-formed no
      // matter which engine actually runs — the formulation stage is an
      // artifact in its own right.
      const core::SavingsProblem sp = core::presolve(problem);
      const core::CasaModel cm = core::build_casa_model(sp, copt.linearization);
      check::check_casa_model(cm, sp, copt.linearization, *chk);
      chk->throw_if_errors();
    }
    const core::CasaAllocator allocator(copt);
    fault::at(fault::site_names::kSolverAllocate);
    out.set_alloc(allocator.allocate(problem));
    record_alloc(reg, out.alloc());
    if (chk) {
      check::check_allocation(problem, out.alloc(), *chk);
      chk->throw_if_errors();
    }
    // A truncated solve must never be reported as an allocation — an empty
    // incumbent would masquerade as "nothing fits" and a partial one as the
    // optimum. This guard also covers runs with check_artifacts disabled.
    CASA_CHECK(out.alloc().solver_status == ilp::SolveStatus::kOptimal,
               "CASA solve was truncated (status " +
                   std::string(ilp::to_string(out.alloc().solver_status)) +
                   "); raise max_nodes instead of reporting a partial "
                   "allocation");
  }
  out.object_count = tp->object_count();
  out.set_conflict_edges(graph->edge_count());
  out.spm_used = out.alloc().used_bytes;

  // Copy semantics: the main-memory image keeps every object; fetches of
  // scratchpad objects simply go to the scratchpad.
  pj.on_spm = out.alloc().on_spm;
  pj.tp = std::move(tp);
  pj.layout = std::move(layout);
  return pj;
}

Outcome Workbench::run_casa_into(obs::MetricsRegistry* reg,
                                 const cachesim::CacheConfig& cache,
                                 Bytes spm_size,
                                 const core::CasaOptions& copt) const {
  const obs::Span flow(reg, obs::trace_names::kRunCasa);
  const std::unique_ptr<check::CheckRunner> chk = make_checker(opt_, reg);
  return finish_core(prepare_casa(reg, chk.get(), cache, spm_size, copt), reg);
}

Outcome Workbench::run_steinke(const cachesim::CacheConfig& cache,
                               Bytes spm_size) const {
  return run_steinke_into(opt_.metrics, cache, spm_size);
}

Workbench::PreparedJob Workbench::prepare_steinke(
    obs::MetricsRegistry* reg, check::CheckRunner* chk,
    const cachesim::CacheConfig& cache, Bytes spm_size) const {
  fault::at(fault::site_names::kSimPrepare);
  PreparedJob pj;
  pj.job = Job::steinke_job(cache, spm_size);
  pj.partial = Outcome(FlowKind::kSteinke);

  std::shared_ptr<traceopt::TraceProgram> tp;
  {
    const obs::Span s(reg, obs::trace_names::kTraceFormation);
    tp = std::make_shared<traceopt::TraceProgram>(form(cache, spm_size));
    if (chk) {
      check::check_trace_program(*tp, cache.line_size, *chk);
      chk->throw_if_errors();
    }
  }
  pj.energies = energy::EnergyTable::build(cache, spm_size, 0, 0);
  if (chk) {
    check::check_energy_table(pj.energies, spm_size > 0, false, *chk);
    chk->throw_if_errors();
  }

  baseline::SteinkeResult sel;
  {
    const obs::Span s(reg, obs::trace_names::kAllocation);
    sel = baseline::allocate_steinke(
        *tp, spm_size, pj.energies.cache_hit - pj.energies.spm_access);
    if (chk) {
      std::vector<Bytes> sizes;
      sizes.reserve(tp->object_count());
      for (const auto& mo : tp->objects()) sizes.push_back(mo.raw_size);
      check::check_spm_selection(sizes, spm_size, sel.on_spm, sel.used_bytes,
                                 *chk);
      chk->throw_if_errors();
    }
  }
  pj.partial.object_count = tp->object_count();
  pj.partial.spm_used = sel.used_bytes;

  std::shared_ptr<traceopt::Layout> layout;
  {
    const obs::Span s(reg, obs::trace_names::kLayout);
    if (opt_.steinke_moves) {
      // Move semantics: scratchpad objects leave the image; the residue is
      // compacted, changing every remaining object's cache mapping.
      const std::vector<bool> excluded(sel.on_spm.begin(), sel.on_spm.end());
      layout = std::make_shared<traceopt::Layout>(
          traceopt::layout_excluding(*tp, excluded));
    } else {
      layout =
          std::make_shared<traceopt::Layout>(traceopt::layout_all(*tp));
    }
    if (chk) {
      check::check_layout(*tp, *layout, cache.line_size, *chk);
      chk->throw_if_errors();
    }
  }
  pj.on_spm = std::move(sel.on_spm);
  pj.tp = std::move(tp);
  pj.layout = std::move(layout);
  return pj;
}

Outcome Workbench::run_steinke_into(obs::MetricsRegistry* reg,
                                    const cachesim::CacheConfig& cache,
                                    Bytes spm_size) const {
  const obs::Span flow(reg, obs::trace_names::kRunSteinke);
  const std::unique_ptr<check::CheckRunner> chk = make_checker(opt_, reg);
  return finish_core(prepare_steinke(reg, chk.get(), cache, spm_size), reg);
}

Outcome Workbench::run_loopcache(const cachesim::CacheConfig& cache,
                                 Bytes lc_size, unsigned max_regions) const {
  return run_loopcache_into(opt_.metrics, cache, lc_size, max_regions);
}

Workbench::PreparedJob Workbench::prepare_loopcache(
    obs::MetricsRegistry* reg, check::CheckRunner* chk,
    const cachesim::CacheConfig& cache, Bytes lc_size,
    unsigned max_regions) const {
  fault::at(fault::site_names::kSimPrepare);
  PreparedJob pj;
  pj.job = Job::loopcache_job(cache, lc_size, max_regions);
  pj.partial = Outcome(FlowKind::kLoopCache);

  // Fair comparison (paper §5): the loop-cache flow also runs on the
  // trace-formed program, laid out in full (nothing leaves the image).
  std::shared_ptr<traceopt::TraceProgram> tp;
  {
    const obs::Span s(reg, obs::trace_names::kTraceFormation);
    tp = std::make_shared<traceopt::TraceProgram>(form(cache, lc_size));
    if (chk) {
      check::check_trace_program(*tp, cache.line_size, *chk);
      chk->throw_if_errors();
    }
  }
  std::shared_ptr<traceopt::Layout> layout;
  {
    const obs::Span s(reg, obs::trace_names::kLayout);
    layout = std::make_shared<traceopt::Layout>(traceopt::layout_all(*tp));
    if (chk) {
      check::check_layout(*tp, *layout, cache.line_size, *chk);
      chk->throw_if_errors();
    }
  }
  pj.energies = energy::EnergyTable::build(cache, 0, lc_size, max_regions);
  if (chk) {
    check::check_energy_table(pj.energies, false, lc_size > 0, *chk);
    chk->throw_if_errors();
  }

  loopcache::RossResult sel;
  {
    const obs::Span s(reg, obs::trace_names::kAllocation);
    const std::vector<loopcache::Region> candidates =
        loopcache::enumerate_regions(*tp, *layout, exec_.profile);
    loopcache::LoopCacheConfig lcfg;
    lcfg.size = lc_size;
    lcfg.max_regions = max_regions;
    sel = loopcache::allocate_ross(candidates, lcfg);
  }
  pj.partial.object_count = tp->object_count();
  pj.partial.spm_used = sel.used_bytes;
  pj.partial.set_lc_regions(
      static_cast<unsigned>(sel.selected.regions().size()));
  if (reg != nullptr) {
    reg->add(obs::metric_names::kLcRegions, pj.partial.lc_regions());
  }

  pj.regions =
      std::make_shared<const loopcache::RegionSet>(std::move(sel.selected));
  pj.tp = std::move(tp);
  pj.layout = std::move(layout);
  return pj;
}

Outcome Workbench::run_loopcache_into(obs::MetricsRegistry* reg,
                                      const cachesim::CacheConfig& cache,
                                      Bytes lc_size,
                                      unsigned max_regions) const {
  const obs::Span flow(reg, obs::trace_names::kRunLoopcache);
  const std::unique_ptr<check::CheckRunner> chk = make_checker(opt_, reg);
  return finish_core(
      prepare_loopcache(reg, chk.get(), cache, lc_size, max_regions), reg);
}

Outcome Workbench::run_cache_only(const cachesim::CacheConfig& cache) const {
  return run_cache_only_into(opt_.metrics, cache);
}

Workbench::PreparedJob Workbench::prepare_cache_only(
    obs::MetricsRegistry* reg, check::CheckRunner* chk,
    const cachesim::CacheConfig& cache) const {
  fault::at(fault::site_names::kSimPrepare);
  PreparedJob pj;
  pj.job = Job::cache_only_job(cache);
  pj.partial = Outcome(FlowKind::kCacheOnly);

  std::shared_ptr<traceopt::TraceProgram> tp;
  {
    const obs::Span s(reg, obs::trace_names::kTraceFormation);
    tp = std::make_shared<traceopt::TraceProgram>(form(cache, 1_KiB));
    if (chk) {
      check::check_trace_program(*tp, cache.line_size, *chk);
      chk->throw_if_errors();
    }
  }
  std::shared_ptr<traceopt::Layout> layout;
  {
    const obs::Span s(reg, obs::trace_names::kLayout);
    layout = std::make_shared<traceopt::Layout>(traceopt::layout_all(*tp));
    if (chk) {
      check::check_layout(*tp, *layout, cache.line_size, *chk);
      chk->throw_if_errors();
    }
  }
  pj.energies = energy::EnergyTable::build(
      cache, /*spm_size=*/kWordBytes * 2, 0, 0);
  if (chk) {
    check::check_energy_table(pj.energies, true, false, *chk);
    chk->throw_if_errors();
  }

  pj.partial.object_count = tp->object_count();
  pj.on_spm.assign(tp->object_count(), false);
  pj.tp = std::move(tp);
  pj.layout = std::move(layout);
  return pj;
}

Outcome Workbench::run_cache_only_into(
    obs::MetricsRegistry* reg, const cachesim::CacheConfig& cache) const {
  const obs::Span flow(reg, obs::trace_names::kRunCacheOnly);
  const std::unique_ptr<check::CheckRunner> chk = make_checker(opt_, reg);
  return finish_core(prepare_cache_only(reg, chk.get(), cache), reg);
}

Workbench::PreparedJob Workbench::prepare_core(const Job& job,
                                               obs::MetricsRegistry* reg,
                                               check::CheckRunner* chk) const {
  switch (job.kind) {
    case Job::Kind::kCasa:
      return prepare_casa(reg, chk, job.cache, job.size, job.casa);
    case Job::Kind::kSteinke:
      return prepare_steinke(reg, chk, job.cache, job.size);
    case Job::Kind::kLoopCache:
      return prepare_loopcache(reg, chk, job.cache, job.size,
                               job.max_regions);
    case Job::Kind::kCacheOnly:
      return prepare_cache_only(reg, chk, job.cache);
  }
  return PreparedJob{};
}

Outcome Workbench::finish_core(const PreparedJob& pj,
                               obs::MetricsRegistry* reg) const {
  fault::at(fault::site_names::kSimFinish);
  Outcome out = pj.partial;
  const obs::Span s(reg, obs::trace_names::kSimulation);
  if (pj.regions != nullptr) {
    out.sim = memsim::simulate_loopcache_system(*pj.tp, *pj.layout, exec_.walk,
                                                *pj.regions, pj.job.cache,
                                                pj.energies, sim_opts(reg));
  } else {
    out.sim = memsim::simulate_spm_system(*pj.tp, *pj.layout, exec_.walk,
                                          pj.on_spm, pj.job.cache,
                                          pj.energies, sim_opts(reg));
  }
  return out;
}

Workbench::PreparedJob Workbench::prepare_job(const Job& job,
                                              obs::MetricsRegistry* reg) const {
  const obs::Span flow(reg, flow_name(job.kind));
  const std::unique_ptr<check::CheckRunner> chk = make_checker(opt_, reg);
  return prepare_core(job, reg, chk.get());
}

Outcome Workbench::finish_job(const PreparedJob& pj,
                              obs::MetricsRegistry* reg) const {
  const obs::Span flow(reg, flow_name(pj.job.kind));
  return finish_core(pj, reg);
}

Outcome Workbench::finish_with_counters(const PreparedJob& pj,
                                        const memsim::SimCounters& counters,
                                        obs::MetricsRegistry* reg) const {
  fault::at(fault::site_names::kSimFinish);
  const obs::Span flow(reg, flow_name(pj.job.kind));
  Outcome out = pj.partial;
  const obs::Span s(reg, obs::trace_names::kSimulation);
  out.sim = memsim::report_from_counters(counters, pj.energies,
                                         pj.regions != nullptr);
  memsim::record_sim_counters(reg, counters);
  return out;
}

Outcome Workbench::run_job(const Job& job, obs::MetricsRegistry* reg) const {
  switch (job.kind) {
    case Job::Kind::kCasa:
      return run_casa_into(reg, job.cache, job.size, job.casa);
    case Job::Kind::kSteinke:
      return run_steinke_into(reg, job.cache, job.size);
    case Job::Kind::kLoopCache:
      return run_loopcache_into(reg, job.cache, job.size, job.max_regions);
    case Job::Kind::kCacheOnly:
      return run_cache_only_into(reg, job.cache);
  }
  return Outcome{};
}

namespace {

/// The historical run_many contract: fail-fast batch, Outcome-only view.
std::vector<Outcome> outcomes_of(std::vector<JobResult> results) {
  std::vector<Outcome> outcomes;
  outcomes.reserve(results.size());
  for (JobResult& r : results) outcomes.push_back(std::move(r.outcome));
  return outcomes;
}

}  // namespace

JobResult Workbench::evaluate(const Job& job) const {
  // Single-job evaluation is the batch containment contract without the
  // fan-out: classify-and-contain, record into options().metrics directly
  // (one job needs no shard ordering to stay deterministic).
  const BatchOptions bopt;
  return evaluate_job(job, 0, bopt, opt_.metrics);
}

std::vector<Outcome> Workbench::run_many(const std::vector<Job>& jobs,
                                         unsigned threads) const {
  BatchOptions bopt;
  bopt.threads = threads;
  return outcomes_of(evaluate_batch(jobs, bopt, nullptr));
}

std::vector<Outcome> Workbench::run_many(const std::vector<Job>& jobs,
                                         unsigned threads,
                                         sim::MetricsShards* shards) const {
  BatchOptions bopt;
  bopt.threads = threads;
  return outcomes_of(evaluate_batch(jobs, bopt, shards));
}

std::vector<JobResult> Workbench::run_jobs(const std::vector<Job>& jobs,
                                           const BatchOptions& bopt,
                                           sim::MetricsShards* shards) const {
  return evaluate_batch(jobs, bopt, shards);
}

JobResult Workbench::evaluate_job(const Job& job, std::size_t job_idx,
                                  const BatchOptions& bopt,
                                  obs::MetricsRegistry* shard) const {
  // Bind the job index as the thread's fault argument: spec clauses with
  // arg=N target exactly this job, deterministically for any schedule.
  const fault::ScopedArg scope(job_idx);
  JobResult res;
  for (unsigned attempt = 0;; ++attempt) {
    // Fresh registry per attempt, merged into the shard only on success: a
    // job that fails (or retries) mid-flow leaves no partial counts behind,
    // so merged batch metrics reflect completed jobs only.
    obs::MetricsRegistry attempt_reg;
    try {
      res.outcome = run_job(job, shard != nullptr ? &attempt_reg : nullptr);
      res.status = attempt == 0 ? JobStatus::kOk : JobStatus::kRetriedOk;
      res.attempts = attempt + 1;
      if (shard != nullptr) shard->merge_from(attempt_reg.snapshot());
      return res;
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      if (attempt < bopt.max_retries && fault::is_transient(err)) {
        fault::RetryPolicy policy;
        policy.max_retries = bopt.max_retries;
        policy.backoff_us = bopt.retry_backoff_us;
        fault::backoff_sleep(policy, attempt);
        if (obs::Tracer* tracer = obs::Tracer::current()) {
          tracer->instant(obs::trace_names::kRunnerRetry,
                          static_cast<double>(attempt + 1),
                          obs::trace_names::kCatFault);
        }
        continue;
      }
      return failed_job_result(err, attempt + 1);
    }
  }
}

std::vector<JobResult> Workbench::evaluate_batch(
    std::span<const Job> jobs, const BatchOptions& bopt,
    sim::MetricsShards* shards) const {
  CASA_CHECK(shards == nullptr || shards->size() == jobs.size(),
             "MetricsShards size must match the job count");
  // Root trace span for the whole batch: every per-task flow tail the
  // runner emits lands inside it, so worker timelines link back here.
  const obs::TraceSpan batch(obs::Tracer::current(), obs::trace_names::kRunMany,
                             obs::trace_names::kCatSim);
  const fault::InjectorStats faults_before = fault::stats();
  sim::RunnerOptions ropt;
  ropt.threads = bopt.threads;
  const sim::ParallelRunner runner(ropt);

  // Identical jobs produce identical outcomes (flows are deterministic), so
  // repeated sweep points run once: each job maps to the index of its first
  // equal occurrence, duplicates copy that JobResult and record nothing.
  std::vector<std::size_t> unique;
  std::vector<std::size_t> rep_of(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::size_t rep = i;
    for (const std::size_t u : unique) {
      if (jobs[u] == jobs[i]) {
        rep = u;
        break;
      }
    }
    rep_of[i] = rep;
    if (rep == i) unique.push_back(i);
  }

  // Tasks never record into opt_.metrics directly: each gets a private
  // shard, and the shards merge in job order afterwards — that is what
  // keeps merged counters identical on 1 thread and on N.
  std::unique_ptr<sim::MetricsShards> local;
  sim::MetricsShards* sh = shards;
  if (sh == nullptr && opt_.metrics != nullptr) {
    local = std::make_unique<sim::MetricsShards>(jobs.size());
    sh = local.get();
  }

  // evaluate_job never throws — every failure is contained in its
  // JobResult — so the fan-out itself cannot abort.
  const std::vector<JobResult> evaluated = runner.map<JobResult>(
      unique.size(),
      [this, &jobs, &unique, &bopt, sh](std::size_t i, std::uint64_t) {
        // Every flow is internally seeded (executor seed fixed at
        // construction, cache seeds fixed per run_*), so the per-task seed
        // is deliberately unused: a job must produce the same outcome
        // whether it runs in a batch or alone.
        const std::size_t job_idx = unique[i];
        return evaluate_job(jobs[job_idx], job_idx, bopt,
                            sh != nullptr ? &sh->shard(job_idx) : nullptr);
      });

  std::vector<std::size_t> unique_pos(jobs.size());
  for (std::size_t i = 0; i < unique.size(); ++i) unique_pos[unique[i]] = i;
  std::vector<JobResult> results;
  results.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    results.push_back(evaluated[unique_pos[rep_of[i]]]);
  }

  std::size_t failed = 0;
  std::size_t retried = 0;
  for (const JobResult& r : results) {
    if (r.status == JobStatus::kFailed) ++failed;
    if (r.status == JobStatus::kRetriedOk) ++retried;
  }

  if (opt_.metrics != nullptr && sh != nullptr) {
    opt_.metrics->merge_from(sh->merged());
    opt_.metrics->add(obs::metric_names::kRunnerJobs, jobs.size());
    opt_.metrics->add(obs::metric_names::kRunnerDedupHits,
                      jobs.size() - unique.size());
    opt_.metrics->set_gauge(obs::metric_names::kRunnerThreads,
                            static_cast<double>(runner.threads()));
    if (failed != 0) {
      opt_.metrics->add(obs::metric_names::kRunnerJobsFailed, failed);
    }
    if (retried != 0) {
      opt_.metrics->add(obs::metric_names::kRunnerJobsRetried, retried);
    }
    const std::uint64_t fired = fault::stats().fires - faults_before.fires;
    if (fired != 0) {
      opt_.metrics->add(obs::metric_names::kFaultInjected, fired);
    }
  }

  if (bopt.fail_fast) {
    for (const JobResult& r : results) {
      if (r.status == JobStatus::kFailed) std::rethrow_exception(r.error);
    }
  } else if (opt_.check_artifacts) {
    // Degraded batches are reported, not thrown: the diagnostic lands in
    // the check.* counters (and any check artifact the caller writes), the
    // healthy outcomes stay usable data.
    check::CheckRunner chk(opt_.metrics);
    check::check_batch(batch_summary_of(results), chk);
  }
  return results;
}

std::string_view to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kRetriedOk:
      return "retried_ok";
    case JobStatus::kFailed:
      return "failed";
  }
  return "?";
}

JobResult failed_job_result(std::exception_ptr error, unsigned attempts) {
  JobResult res;
  res.status = JobStatus::kFailed;
  res.attempts = attempts;
  res.error = error;
  classify_error(error, res.error_kind, res.message);
  return res;
}

check::BatchSummary batch_summary_of(const std::vector<JobResult>& results) {
  check::BatchSummary summary;
  summary.jobs = results.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    if (r.status == JobStatus::kRetriedOk) ++summary.retried;
    if (r.status != JobStatus::kFailed) continue;
    ++summary.failed;
    std::ostringstream line;
    line << "job " << i << ": " << r.error_kind << ": " << r.message;
    summary.failures.push_back(line.str());
  }
  return summary;
}

}  // namespace casa::report

// Workbench: the paper's experimental workflow (fig. 3) as one object.
//
// Construction runs the program once (profiling + dynamic walk). Each
// evaluated Job then executes the full flow for one configuration:
//   trace formation -> layout -> [conflict graph] -> allocation ->
//   hierarchy simulation -> energy report.
// Benches, examples and integration tests all drive experiments through
// this type so the methodology is identical everywhere. The whole surface
// is two calls: evaluate(job) for one configuration, evaluate_batch(jobs)
// for a fault-contained fan-out; the historical run_* / run_many /
// run_jobs entry points remain as deprecated shims over them.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "casa/baseline/steinke.hpp"
#include "casa/cachesim/cache.hpp"
#include "casa/core/allocator.hpp"
#include "casa/loopcache/ross_allocator.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/prog/program.hpp"
#include "casa/support/error.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"

namespace casa::check {
class CheckRunner;
struct BatchSummary;
}  // namespace casa::check

namespace casa::sim {
class MetricsShards;
}  // namespace casa::sim

namespace casa::report {

struct WorkbenchOptions {
  std::uint64_t exec_seed = 42;
  double fuse_ratio = 0.5;
  /// Steinke moves objects (paper-faithful). Setting this to false gives
  /// Steinke CASA's copy semantics — the move-vs-copy ablation.
  bool steinke_moves = true;
  /// Telemetry sink. When set, every run_* records per-stage spans
  /// (trace_formation / layout / conflict_graph / allocation / simulation)
  /// and pipeline counters here; run_many records per job into a private
  /// shard and folds the shards in job order, so merged counters are
  /// thread-count invariant. Null (the default) disables all recording —
  /// the instrumented paths cost nothing beyond a pointer test.
  obs::MetricsRegistry* metrics = nullptr;
  /// Run the casa::check artifact analyzer between pipeline stages in every
  /// flow: trace padding and layout legality after layout, conflict-graph
  /// invariants after the build, ILP well-formedness plus capacity/energy
  /// sanity around allocation. Any error-severity diagnostic throws
  /// check::CheckError (fatal); diagnostics and evaluated rules are counted
  /// into `metrics` under "check.*" when that is set. On by default — the
  /// rules are linear scans over artifacts the stages just produced.
  bool check_artifacts = true;
};

/// Which pipeline flow produced an Outcome. Doubles as Workbench::Job::Kind
/// (the job selects the flow, the outcome records which one ran).
enum class FlowKind {
  kCasa,       ///< conflict-graph ILP allocation, copy semantics
  kSteinke,    ///< Steinke DATE'02 knapsack, move semantics
  kLoopCache,  ///< Gordon-Ross/Vahid preloaded loop cache
  kCacheOnly,  ///< reference: I-cache only
};

std::string_view to_string(FlowKind kind);

/// Thrown by Outcome's flow-gated accessors on wrong-flow access: reading
/// alloc() off a Steinke outcome is a caller bug, not a missing value, so
/// it fails loudly with both sides of the mismatch instead of handing back
/// a default-constructed field. Structured so drivers can report the
/// accessor and the flow separately.
class FlowError : public Error {
 public:
  FlowError(std::string_view accessor, FlowKind flow);

  /// Accessor that was misused, e.g. "alloc".
  const std::string& accessor() const { return accessor_; }
  /// Flow the outcome actually came from.
  FlowKind flow() const { return flow_; }

 private:
  std::string accessor_;
  FlowKind flow_;
};

/// One scratchpad (or loop-cache) experiment outcome, tagged with the flow
/// that produced it. Fields meaningful in every flow (the simulation
/// report, object count, bytes placed) are plain members; flow-specific
/// results sit behind accessors that throw FlowError when read off the
/// wrong flow — the flow tag replaces the old "engaged only for some
/// flows" optionals with an explicit contract.
class Outcome {
 public:
  memsim::SimReport sim;
  std::size_t object_count = 0;
  Bytes spm_used = 0;  ///< scratchpad or loop-cache bytes actually placed

  Outcome() = default;
  explicit Outcome(FlowKind flow) : flow_(flow) {}

  FlowKind flow() const { return flow_; }

  /// Conflict-graph edge count — CASA flow only (the only flow that builds
  /// the graph). A value of 0 means the graph was built and genuinely has
  /// no edges.
  std::size_t conflict_edges() const;
  /// Regions preloaded into the loop cache — loop-cache flow only.
  unsigned lc_regions() const;
  /// Full allocation result — CASA flow only.
  const core::AllocationResult& alloc() const;

  /// Flow-gated setters (same FlowError contract as the accessors); used
  /// by the pipeline stages and by io::read_result_json when rebuilding an
  /// Outcome from a casa-result artifact.
  void set_conflict_edges(std::size_t edges);
  void set_lc_regions(unsigned regions);
  void set_alloc(core::AllocationResult alloc);

  /// Field-wise equality — exact, including every double (flows are
  /// deterministic; the svc cache's bit-identical-hit contract and the
  /// casa-result round-trip tests both rest on this).
  friend bool operator==(const Outcome&, const Outcome&) = default;

 private:
  FlowKind flow_ = FlowKind::kCacheOnly;
  std::size_t conflict_edges_ = 0;
  unsigned lc_regions_ = 0;
  core::AllocationResult alloc_;
};

/// How one job of a contained batch ended up.
enum class JobStatus {
  kOk,         ///< succeeded on the first attempt
  kRetriedOk,  ///< succeeded after transient-failure retries
  kFailed,     ///< final attempt still failed; `error` holds the exception
};

std::string_view to_string(JobStatus status);

/// Structured per-job outcome of Workbench::evaluate / evaluate_batch /
/// sim::SweepPlanner::run_jobs. Healthy jobs carry their Outcome; failed
/// jobs carry the original exception plus a stable classification so batch
/// drivers can report per-point failures as data instead of crashing.
struct JobResult {
  JobStatus status = JobStatus::kOk;
  Outcome outcome;           ///< valid only when ok()
  std::string error_kind;    ///< "transient", "fault", "check",
                             ///< "precondition", "solve", "casa", "std"
  std::string message;       ///< the exception's what() (failed jobs)
  unsigned attempts = 1;     ///< attempts that ran (1 = no retry)
  std::exception_ptr error;  ///< original exception (failed jobs only)

  bool ok() const { return status != JobStatus::kFailed; }

  /// The Outcome, or — for failed jobs — the original exception rethrown.
  /// `evaluate(job).value()` is the drop-in spelling of the historical
  /// throwing run_* contract.
  const Outcome& value() const {
    if (!ok()) std::rethrow_exception(error);
    return outcome;
  }
};

/// Batch execution policy for the fault-contained entry points.
struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial.
  unsigned threads = 0;
  /// Rethrow the lowest-indexed failed job's original exception after the
  /// whole batch finishes (the historical run_many contract). False keeps
  /// every failure contained in its JobResult.
  bool fail_fast = true;
  /// Per-job retry budget for transient-classed failures (fault::
  /// TransientError); non-transient errors never retry.
  unsigned max_retries = 0;
  /// Base backoff before the first retry, doubled per further retry —
  /// deterministic, no jitter (see fault::backoff_sleep).
  std::uint64_t retry_backoff_us = 200;
};

class Workbench {
 public:
  Workbench(const prog::Program& program, WorkbenchOptions opt = {});

  const prog::Program& program() const { return *program_; }
  const trace::ExecutionResult& execution() const { return exec_; }

  /// One point of a batched sweep: which flow to run and its parameters.
  struct Job {
    using Kind = FlowKind;
    Kind kind = Kind::kCasa;
    cachesim::CacheConfig cache;
    Bytes size = 0;  ///< scratchpad (CASA/Steinke) or loop-cache capacity
    unsigned max_regions = 4;  ///< loop-cache flow only
    core::CasaOptions casa;    ///< CASA flow only

    static Job casa_job(const cachesim::CacheConfig& c, Bytes spm,
                        const core::CasaOptions& o = {}) {
      return Job{Kind::kCasa, c, spm, 4, o};
    }
    static Job steinke_job(const cachesim::CacheConfig& c, Bytes spm) {
      return Job{Kind::kSteinke, c, spm, 4, {}};
    }
    static Job loopcache_job(const cachesim::CacheConfig& c, Bytes lc,
                             unsigned regions = 4) {
      return Job{Kind::kLoopCache, c, lc, regions, {}};
    }
    static Job cache_only_job(const cachesim::CacheConfig& c) {
      return Job{Kind::kCacheOnly, c, 0, 4, {}};
    }

    /// Field-wise equality — two equal jobs provably produce the same
    /// Outcome (every flow is deterministic given its parameters), which is
    /// what lets run_many and the sweep planner deduplicate repeated sweep
    /// points.
    friend bool operator==(const Job&, const Job&) = default;
  };

  /// A job carried through every pipeline stage except the final hierarchy
  /// replay: trace formation, layout, conflict graph + allocation (flow
  /// permitting), energy table — with the same artifact checks and
  /// per-stage spans the run_* methods record. `partial` holds every
  /// Outcome field but `.sim`; finish_job / finish_with_counters complete
  /// it. The split exists for sim::SweepPlanner, which prepares many jobs,
  /// replaces their per-config replays with one shared stack pass, and
  /// finishes each from externally derived counters.
  struct PreparedJob {
    Job job;
    std::shared_ptr<const traceopt::TraceProgram> tp;
    std::shared_ptr<const traceopt::Layout> layout;
    energy::EnergyTable energies;
    /// Scratchpad mask over tp's objects. Loop-cache flows leave it empty
    /// and carry `regions` instead.
    std::vector<bool> on_spm;
    std::shared_ptr<const loopcache::RegionSet> regions;
    Outcome partial;
  };

  /// Runs every stage of `job`'s flow except the hierarchy replay,
  /// recording the flow's spans and stage counters into `reg` (null = no
  /// telemetry). prepare_job + finish_job ≡ the matching run_* method.
  PreparedJob prepare_job(const Job& job, obs::MetricsRegistry* reg) const;

  /// Completes a prepared job by direct hierarchy simulation — the exact
  /// replay the matching run_* method would have performed.
  Outcome finish_job(const PreparedJob& pj, obs::MetricsRegistry* reg) const;

  /// Completes a prepared job from externally produced counters (the
  /// one-pass sweep engine): derives energies via
  /// memsim::report_from_counters and records the same sim.* / cache.*
  /// telemetry a direct replay would. Counter-identical inputs therefore
  /// yield bit-identical Outcomes.
  Outcome finish_with_counters(const PreparedJob& pj,
                               const memsim::SimCounters& counters,
                               obs::MetricsRegistry* reg) const;

  const WorkbenchOptions& options() const { return opt_; }

  /// Evaluates one job through its full flow, fault-contained: the result
  /// always comes back as a JobResult (never throws), with failures
  /// classified and the original exception preserved. Telemetry records
  /// into options().metrics when that is set. `evaluate(job).value()`
  /// restores the historical throwing contract of the run_* methods.
  JobResult evaluate(const Job& job) const;

  /// Fault-contained batch evaluation: every healthy job completes no
  /// matter how many others fail, failed jobs come back as structured
  /// JobResults (in job order, thread-count invariant), and transient
  /// failures retry per `opt.max_retries` with deterministic backoff.
  /// Fanning out across opt.threads workers (0 = hardware concurrency,
  /// 1 = serial). Identical jobs are evaluated once: duplicates share the
  /// first occurrence's JobResult (and record nothing of their own), with
  /// "runner.dedup_hits" counting the jobs skipped. Jobs record into a
  /// fresh per-attempt registry that merges into their shard only on
  /// success, so merged counters reflect completed jobs only — per-shard
  /// merging in job order keeps merged counters identical for any thread
  /// count. With opt.fail_fast (the default) the lowest-indexed failure is
  /// rethrown after the batch drains — run_many's historical contract —
  /// otherwise a run.partial_failure check diagnostic reports degraded
  /// batches through options().metrics. When `shards` is non-null, job i
  /// records into shards->shard(i) (shards->size() must equal
  /// jobs.size()) and the caller keeps the per-task breakdown.
  std::vector<JobResult> evaluate_batch(
      std::span<const Job> jobs, const BatchOptions& opt = {},
      sim::MetricsShards* shards = nullptr) const;

  // Historical entry points, kept as thin shims over evaluate /
  // evaluate_batch so existing drivers keep compiling with a deprecation
  // nudge instead of breaking.

  /// CASA: conflict-graph ILP allocation, copy semantics.
  [[deprecated("use evaluate(Job::casa_job(...)).value()")]]
  Outcome run_casa(const cachesim::CacheConfig& cache, Bytes spm_size,
                   const core::CasaOptions& copt = {}) const;

  /// Steinke DATE'02: fetch-count knapsack, move semantics (see options).
  [[deprecated("use evaluate(Job::steinke_job(...)).value()")]]
  Outcome run_steinke(const cachesim::CacheConfig& cache,
                      Bytes spm_size) const;

  /// Gordon-Ross/Vahid preloaded loop cache.
  [[deprecated("use evaluate(Job::loopcache_job(...)).value()")]]
  Outcome run_loopcache(const cachesim::CacheConfig& cache, Bytes lc_size,
                        unsigned max_regions = 4) const;

  /// Reference: I-cache only.
  [[deprecated("use evaluate(Job::cache_only_job(...)).value()")]]
  Outcome run_cache_only(const cachesim::CacheConfig& cache) const;

  /// evaluate_batch with the fail-fast Outcome-only view.
  [[deprecated("use evaluate_batch(jobs) and read .value() per result")]]
  std::vector<Outcome> run_many(const std::vector<Job>& jobs,
                                unsigned threads = 0) const;

  /// evaluate_batch with caller-owned per-task metrics, Outcome-only view.
  [[deprecated("use evaluate_batch(jobs, {.threads = n}, shards)")]]
  std::vector<Outcome> run_many(const std::vector<Job>& jobs, unsigned threads,
                                sim::MetricsShards* shards) const;

  /// The old name of evaluate_batch.
  [[deprecated("use evaluate_batch(jobs, opt, shards)")]]
  std::vector<JobResult> run_jobs(const std::vector<Job>& jobs,
                                  const BatchOptions& opt = {},
                                  sim::MetricsShards* shards = nullptr) const;

 private:
  JobResult evaluate_job(const Job& job, std::size_t job_idx,
                         const BatchOptions& opt,
                         obs::MetricsRegistry* shard) const;
  traceopt::TraceProgram form(const cachesim::CacheConfig& cache,
                              Bytes max_trace) const;

  PreparedJob prepare_casa(obs::MetricsRegistry* reg, check::CheckRunner* chk,
                           const cachesim::CacheConfig& cache, Bytes spm_size,
                           const core::CasaOptions& copt) const;
  PreparedJob prepare_steinke(obs::MetricsRegistry* reg,
                              check::CheckRunner* chk,
                              const cachesim::CacheConfig& cache,
                              Bytes spm_size) const;
  PreparedJob prepare_loopcache(obs::MetricsRegistry* reg,
                                check::CheckRunner* chk,
                                const cachesim::CacheConfig& cache,
                                Bytes lc_size, unsigned max_regions) const;
  PreparedJob prepare_cache_only(obs::MetricsRegistry* reg,
                                 check::CheckRunner* chk,
                                 const cachesim::CacheConfig& cache) const;
  PreparedJob prepare_core(const Job& job, obs::MetricsRegistry* reg,
                           check::CheckRunner* chk) const;
  Outcome finish_core(const PreparedJob& pj, obs::MetricsRegistry* reg) const;

  Outcome run_casa_into(obs::MetricsRegistry* reg,
                        const cachesim::CacheConfig& cache, Bytes spm_size,
                        const core::CasaOptions& copt) const;
  Outcome run_steinke_into(obs::MetricsRegistry* reg,
                           const cachesim::CacheConfig& cache,
                           Bytes spm_size) const;
  Outcome run_loopcache_into(obs::MetricsRegistry* reg,
                             const cachesim::CacheConfig& cache, Bytes lc_size,
                             unsigned max_regions) const;
  Outcome run_cache_only_into(obs::MetricsRegistry* reg,
                              const cachesim::CacheConfig& cache) const;
  Outcome run_job(const Job& job, obs::MetricsRegistry* reg) const;

  const prog::Program* program_;
  WorkbenchOptions opt_;
  trace::ExecutionResult exec_;
};

/// Reduces a batch's JobResults to the counts the run.partial_failure
/// check rule consumes (callers include casa/check/rules.hpp for the
/// complete BatchSummary type).
check::BatchSummary batch_summary_of(const std::vector<JobResult>& results);

/// Builds a kFailed JobResult from `error`: stable kind classification,
/// what() message, attempt count. Shared by every batch engine so failures
/// classify identically whether they surface in run_jobs or in the sweep.
JobResult failed_job_result(std::exception_ptr error, unsigned attempts);

}  // namespace casa::report

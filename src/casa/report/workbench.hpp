// Workbench: the paper's experimental workflow (fig. 3) as one object.
//
// Construction runs the program once (profiling + dynamic walk). Each run_*
// method then executes the full flow for one configuration:
//   trace formation -> layout -> [conflict graph] -> allocation ->
//   hierarchy simulation -> energy report.
// Benches, examples and integration tests all drive experiments through
// this type so the methodology is identical everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/baseline/steinke.hpp"
#include "casa/cachesim/cache.hpp"
#include "casa/core/allocator.hpp"
#include "casa/loopcache/ross_allocator.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/prog/program.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/trace_formation.hpp"

namespace casa::report {

struct WorkbenchOptions {
  std::uint64_t exec_seed = 42;
  double fuse_ratio = 0.5;
  /// Steinke moves objects (paper-faithful). Setting this to false gives
  /// Steinke CASA's copy semantics — the move-vs-copy ablation.
  bool steinke_moves = true;
};

/// One scratchpad (or loop-cache) experiment outcome.
struct Outcome {
  memsim::SimReport sim;
  std::size_t object_count = 0;
  std::size_t conflict_edges = 0;   ///< 0 for cache-oblivious flows
  Bytes spm_used = 0;
  unsigned lc_regions = 0;
  core::AllocationResult alloc;     ///< CASA runs only
};

class Workbench {
 public:
  Workbench(const prog::Program& program, WorkbenchOptions opt = {});

  const prog::Program& program() const { return *program_; }
  const trace::ExecutionResult& execution() const { return exec_; }

  /// CASA: conflict-graph ILP allocation, copy semantics.
  Outcome run_casa(const cachesim::CacheConfig& cache, Bytes spm_size,
                   const core::CasaOptions& copt = {}) const;

  /// Steinke DATE'02: fetch-count knapsack, move semantics (see options).
  Outcome run_steinke(const cachesim::CacheConfig& cache,
                      Bytes spm_size) const;

  /// Gordon-Ross/Vahid preloaded loop cache.
  Outcome run_loopcache(const cachesim::CacheConfig& cache, Bytes lc_size,
                        unsigned max_regions = 4) const;

  /// Reference: I-cache only.
  Outcome run_cache_only(const cachesim::CacheConfig& cache) const;

  /// One point of a batched sweep: which flow to run and its parameters.
  struct Job {
    enum class Kind { kCasa, kSteinke, kLoopCache, kCacheOnly };
    Kind kind = Kind::kCasa;
    cachesim::CacheConfig cache;
    Bytes size = 0;  ///< scratchpad (CASA/Steinke) or loop-cache capacity
    unsigned max_regions = 4;  ///< loop-cache flow only
    core::CasaOptions casa;    ///< CASA flow only

    static Job casa_job(const cachesim::CacheConfig& c, Bytes spm,
                        const core::CasaOptions& o = {}) {
      return Job{Kind::kCasa, c, spm, 4, o};
    }
    static Job steinke_job(const cachesim::CacheConfig& c, Bytes spm) {
      return Job{Kind::kSteinke, c, spm, 4, {}};
    }
    static Job loopcache_job(const cachesim::CacheConfig& c, Bytes lc,
                             unsigned regions = 4) {
      return Job{Kind::kLoopCache, c, lc, regions, {}};
    }
    static Job cache_only_job(const cachesim::CacheConfig& c) {
      return Job{Kind::kCacheOnly, c, 0, 4, {}};
    }
  };

  /// Evaluates every job, fanning out across `threads` workers (0 =
  /// hardware concurrency, 1 = serial). Jobs are independent — every run_*
  /// method is const over shared read-only state — and results come back
  /// in job order, identical for any thread count.
  std::vector<Outcome> run_many(const std::vector<Job>& jobs,
                                unsigned threads = 0) const;

 private:
  traceopt::TraceProgram form(const cachesim::CacheConfig& cache,
                              Bytes max_trace) const;

  const prog::Program* program_;
  WorkbenchOptions opt_;
  trace::ExecutionResult exec_;
};

}  // namespace casa::report

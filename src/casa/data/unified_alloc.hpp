// Unified code+data scratchpad allocation.
//
// Both sides reduce to the same savings structure (linear per-item saving
// plus once-per-edge conflict bonuses, edges only within a side — Harvard
// split means code and data never evict each other), so the merged problem
// is one core::SavingsProblem over code objects followed by data objects,
// solved by the existing exact machinery. The Steinke-style unified
// baseline (his DATE'02 paper allocates "program and data objects" by
// access counts) is a plain knapsack over both item kinds.
#pragma once

#include "casa/conflict/conflict_graph.hpp"
#include "casa/core/casa_branch_bound.hpp"
#include "casa/data/data_model.hpp"
#include "casa/support/units.hpp"

namespace casa::data {

struct UnifiedProblem {
  const conflict::ConflictGraph* code_graph = nullptr;
  std::vector<Bytes> code_sizes;
  const conflict::ConflictGraph* data_graph = nullptr;
  std::vector<Bytes> data_sizes;
  Bytes capacity = 0;
  Energy e_icache_hit = 0;
  Energy e_icache_miss = 0;
  Energy e_dcache_hit = 0;
  Energy e_dcache_miss = 0;
  Energy e_spm = 0;

  void validate() const;
};

struct UnifiedResult {
  std::vector<bool> code_on_spm;
  std::vector<bool> data_on_spm;
  Bytes used_bytes = 0;
  Energy predicted_saving = 0;
  bool exact = true;
};

/// Exact cache-aware unified allocation (CASA objective on both sides).
UnifiedResult allocate_unified(const UnifiedProblem& p);

/// Steinke-style unified baseline: knapsack by access counts, no conflict
/// terms.
UnifiedResult allocate_unified_steinke(const UnifiedProblem& p);

/// Restricted variants for ablation: only one side may use the scratchpad.
UnifiedResult allocate_code_only(const UnifiedProblem& p);
UnifiedResult allocate_data_only(const UnifiedProblem& p);

}  // namespace casa::data

#include "casa/data/unified_alloc.hpp"

#include <map>

#include "casa/core/problem.hpp"
#include "casa/ilp/knapsack.hpp"
#include "casa/support/error.hpp"

namespace casa::data {

void UnifiedProblem::validate() const {
  CASA_CHECK(code_graph != nullptr && data_graph != nullptr,
             "UnifiedProblem needs both graphs");
  CASA_CHECK(code_sizes.size() == code_graph->node_count(),
             "code sizes mismatch");
  CASA_CHECK(data_sizes.size() == data_graph->node_count(),
             "data sizes mismatch");
  CASA_CHECK(e_icache_miss > e_icache_hit && e_dcache_miss > e_dcache_hit,
             "miss must cost more than hit");
  CASA_CHECK(e_icache_hit > e_spm && e_dcache_hit > e_spm,
             "scratchpad must beat both caches per access");
}

namespace {

/// Appends one side's items/edges to the shared savings problem.
/// `item_of` receives, per node, the item index or -1 (oversized).
void append_side(core::SavingsProblem& sp, const conflict::ConflictGraph& g,
                 const std::vector<Bytes>& sizes, Energy e_hit,
                 Energy d_hit_sp, Energy d_miss_hit, bool allowed,
                 std::vector<std::int32_t>& item_of) {
  const std::size_t n = g.node_count();
  item_of.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    if (allowed && sizes[i] <= sp.capacity) {
      item_of[i] = static_cast<std::int32_t>(sp.object_of.size());
      sp.object_of.push_back(
          MemoryObjectId(static_cast<std::uint32_t>(sp.object_of.size())));
      sp.value.push_back(static_cast<Energy>(g.fetches(mo)) * d_hit_sp);
      sp.weight.push_back(sizes[i]);
    }
    sp.all_cached_energy += static_cast<Energy>(g.fetches(mo)) * e_hit;
  }

  std::map<std::pair<std::uint32_t, std::uint32_t>, Energy> pair_w;
  for (const conflict::Edge& e : g.edges()) {
    const Energy w = static_cast<Energy>(e.misses) * d_miss_hit;
    sp.all_cached_energy += w;
    if (w <= 0) continue;  // conflict-blind mode folds no edge terms
    const std::int32_t a = item_of[e.from.index()];
    const std::int32_t b = item_of[e.to.index()];
    if (a < 0 && b < 0) continue;
    if (e.from == e.to) {
      sp.value[static_cast<std::size_t>(a)] += w;
      continue;
    }
    if (a < 0) {
      sp.value[static_cast<std::size_t>(b)] += w;
    } else if (b < 0) {
      sp.value[static_cast<std::size_t>(a)] += w;
    } else {
      const auto key =
          a < b ? std::make_pair(static_cast<std::uint32_t>(a),
                                 static_cast<std::uint32_t>(b))
                : std::make_pair(static_cast<std::uint32_t>(b),
                                 static_cast<std::uint32_t>(a));
      pair_w[key] += w;
    }
  }
  for (const auto& [key, w] : pair_w) {
    sp.edges.push_back(core::SavingsProblem::Edge{key.first, key.second, w});
  }
}

UnifiedResult solve(const UnifiedProblem& p, bool code_allowed,
                    bool data_allowed, bool cache_aware) {
  p.validate();
  const std::size_t nc = p.code_graph->node_count();
  const std::size_t nd = p.data_graph->node_count();

  core::SavingsProblem sp;
  sp.capacity = p.capacity;
  std::vector<std::int32_t> code_item, data_item;
  append_side(sp, *p.code_graph, p.code_sizes, p.e_icache_hit,
              p.e_icache_hit - p.e_spm,
              cache_aware ? p.e_icache_miss - p.e_icache_hit : 0.0,
              code_allowed, code_item);
  append_side(sp, *p.data_graph, p.data_sizes, p.e_dcache_hit,
              p.e_dcache_hit - p.e_spm,
              cache_aware ? p.e_dcache_miss - p.e_dcache_hit : 0.0,
              data_allowed, data_item);

  std::vector<bool> chosen;
  UnifiedResult r;
  if (cache_aware) {
    const core::CasaBranchBoundResult res = core::CasaBranchBound().solve(sp);
    chosen = res.chosen;
    r.exact = res.exact;
  } else {
    // Steinke: knapsack over the linear values only.
    std::vector<ilp::KnapsackItem> items;
    items.reserve(sp.item_count());
    for (std::size_t k = 0; k < sp.item_count(); ++k) {
      items.push_back(ilp::KnapsackItem{sp.weight[k], sp.value[k]});
    }
    const ilp::KnapsackResult res = ilp::solve_knapsack(items, p.capacity);
    chosen.assign(sp.item_count(), false);
    for (std::size_t k = 0; k < res.taken.size(); ++k) {
      chosen[k] = res.taken[k];
    }
    r.exact = true;  // optimal for its own (conflict-blind) objective
  }

  r.code_on_spm.assign(nc, false);
  r.data_on_spm.assign(nd, false);
  for (std::size_t i = 0; i < nc; ++i) {
    if (code_item[i] >= 0 && chosen[static_cast<std::size_t>(code_item[i])]) {
      r.code_on_spm[i] = true;
      r.used_bytes += p.code_sizes[i];
    }
  }
  for (std::size_t i = 0; i < nd; ++i) {
    if (data_item[i] >= 0 &&
        chosen[static_cast<std::size_t>(data_item[i]) ]) {
      r.data_on_spm[i] = true;
      r.used_bytes += p.data_sizes[i];
    }
  }
  r.predicted_saving = sp.saving_for(chosen);
  return r;
}

}  // namespace

UnifiedResult allocate_unified(const UnifiedProblem& p) {
  return solve(p, true, true, /*cache_aware=*/true);
}

UnifiedResult allocate_unified_steinke(const UnifiedProblem& p) {
  return solve(p, true, true, /*cache_aware=*/false);
}

UnifiedResult allocate_code_only(const UnifiedProblem& p) {
  return solve(p, true, false, /*cache_aware=*/true);
}

UnifiedResult allocate_data_only(const UnifiedProblem& p) {
  return solve(p, false, true, /*cache_aware=*/true);
}

}  // namespace casa::data

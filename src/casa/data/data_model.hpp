// Data-side model (paper §7 future work: "preloading of data").
//
// The code path models instruction fetches; this module adds the data side:
// named data objects (arrays, state structs, tables) bound to the functions
// that access them. Replaying the block walk with these bindings yields a
// deterministic data-access stream — the input for D-cache simulation, the
// data conflict graph, and unified code+data scratchpad allocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "casa/prog/program.hpp"
#include "casa/support/units.hpp"

namespace casa::data {

struct DataObject {
  std::string name;
  Bytes size = 0;  ///< bytes, word multiple
};

/// While executing a block of function `fn`, every fetched instruction word
/// issues `accesses_per_fetch` accesses to `object` (fractional rates
/// accumulate across fetches and emit on overflow). `sequential` objects
/// are streamed with a per-binding cursor (arrays); non-sequential ones
/// hammer a hot scalar region at the object's start.
struct DataBinding {
  std::size_t object = 0;
  FunctionId fn;
  double accesses_per_fetch = 0.0;
  bool sequential = true;
};

class DataSpec {
 public:
  std::size_t add_object(std::string name, Bytes size);
  void bind(std::size_t object, FunctionId fn, double accesses_per_fetch,
            bool sequential = true);

  const std::vector<DataObject>& objects() const { return objects_; }
  const std::vector<DataBinding>& bindings() const { return bindings_; }
  Bytes total_size() const;

 private:
  std::vector<DataObject> objects_;
  std::vector<DataBinding> bindings_;
};

/// Ready-made data specs for the bundled workloads ("adpcm", "g721",
/// "gsm"): state arrays, sample buffers and lookup tables shaped after the
/// originals. Throws for workloads without a spec.
DataSpec data_spec_for(const prog::Program& program,
                       const std::string& name);

}  // namespace casa::data

// Data-side simulation: access-stream generation, D-cache profiling with
// evictor attribution (data conflict graph), and energy accounting under a
// data scratchpad assignment.
#pragma once

#include "casa/cachesim/cache.hpp"
#include "casa/conflict/conflict_graph.hpp"
#include "casa/data/data_model.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/trace/executor.hpp"

namespace casa::data {

/// Per-event energies for the data side.
struct DataEnergy {
  Energy dcache_hit = 0;
  Energy dcache_miss = 0;
  Energy spm_access = 0;

  /// D-cache from the analytical model, SPM at `spm_size` (0 = no SPM).
  static DataEnergy build(const cachesim::CacheConfig& dcache,
                          Bytes spm_size);
};

struct DataProfile {
  std::vector<std::uint64_t> accesses;  ///< per data object
  conflict::ConflictGraph graph;        ///< nodes = data objects
  std::uint64_t total_accesses = 0;
};

/// Replays `walk`, generating the deterministic access stream of `spec`
/// through the D-cache; returns per-object counts and the data conflict
/// graph.
DataProfile profile_data(const prog::Program& program,
                         const trace::BlockWalk& walk, const DataSpec& spec,
                         const cachesim::CacheConfig& dcache,
                         std::uint64_t seed = 1);

struct DataSimReport {
  std::uint64_t total_accesses = 0;
  std::uint64_t spm_accesses = 0;
  std::uint64_t dcache_hits = 0;
  std::uint64_t dcache_misses = 0;
  Energy total_energy = 0;
};

/// Same replay with `on_spm[object]` accesses served by the scratchpad.
DataSimReport simulate_data(const prog::Program& program,
                            const trace::BlockWalk& walk,
                            const DataSpec& spec,
                            const std::vector<bool>& on_spm,
                            const cachesim::CacheConfig& dcache,
                            const DataEnergy& energy,
                            std::uint64_t seed = 1);

}  // namespace casa::data

#include "casa/data/data_sim.hpp"

#include <unordered_map>

#include "casa/energy/cache_energy.hpp"
#include "casa/energy/spm_energy.hpp"
#include "casa/support/error.hpp"

namespace casa::data {

DataEnergy DataEnergy::build(const cachesim::CacheConfig& dcache,
                             Bytes spm_size) {
  DataEnergy e;
  const energy::CacheEnergyModel cm(dcache);
  e.dcache_hit = cm.hit_energy();
  e.dcache_miss = cm.miss_energy();
  if (spm_size > 0) {
    e.spm_access = energy::SpmEnergyModel(spm_size).access_energy();
  }
  return e;
}

namespace {

/// Shared replay engine. The `sink` receives (object, address) per access.
template <typename Sink>
void replay(const prog::Program& program, const trace::BlockWalk& walk,
            const DataSpec& spec, Sink&& sink) {
  // Data layout: objects packed line-aligned from a distinct base.
  constexpr Addr kDataBase = 0x40000000;
  std::vector<Addr> base(spec.objects().size());
  Addr cursor = kDataBase;
  for (std::size_t d = 0; d < spec.objects().size(); ++d) {
    base[d] = cursor;
    cursor += align_up(spec.objects()[d].size, 16);
  }

  // Per-function binding lists for O(1) dispatch in the hot loop.
  std::vector<std::vector<std::size_t>> by_fn(program.function_count());
  for (std::size_t b = 0; b < spec.bindings().size(); ++b) {
    by_fn[spec.bindings()[b].fn.index()].push_back(b);
  }

  std::vector<double> accum(spec.bindings().size(), 0.0);
  std::vector<Bytes> seq_cursor(spec.bindings().size(), 0);

  for (const BasicBlockId bb : walk.seq) {
    const prog::BasicBlock& blk = program.block(bb);
    const auto& bindings = by_fn[blk.function.index()];
    if (bindings.empty()) continue;
    const double words = static_cast<double>(blk.size / kWordBytes);
    for (const std::size_t bi : bindings) {
      const DataBinding& bind = spec.bindings()[bi];
      accum[bi] += bind.accesses_per_fetch * words;
      while (accum[bi] >= 1.0) {
        accum[bi] -= 1.0;
        const DataObject& obj = spec.objects()[bind.object];
        Addr addr;
        if (bind.sequential) {
          addr = base[bind.object] + seq_cursor[bi];
          seq_cursor[bi] = (seq_cursor[bi] + kWordBytes) % obj.size;
        } else {
          // Hot scalar region: cycle the first 32 bytes (or whole object).
          const Bytes hot = std::min<Bytes>(32, obj.size);
          addr = base[bind.object] + seq_cursor[bi];
          seq_cursor[bi] = (seq_cursor[bi] + kWordBytes) % hot;
        }
        sink(bind.object, addr);
      }
    }
  }
}

}  // namespace

DataProfile profile_data(const prog::Program& program,
                         const trace::BlockWalk& walk, const DataSpec& spec,
                         const cachesim::CacheConfig& dcache,
                         std::uint64_t seed) {
  const std::size_t n = spec.objects().size();
  cachesim::Cache cache(dcache, seed);

  std::vector<std::uint64_t> accesses(n, 0), cold(n, 0), hits(n, 0);
  std::unordered_map<std::uint64_t, std::uint64_t> m;  // (i<<32|j) -> misses
  std::unordered_map<std::uint64_t, std::uint32_t> evicted_by;
  std::uint64_t total = 0;

  replay(program, walk, spec, [&](std::size_t obj, Addr addr) {
    ++accesses[obj];
    ++total;
    const cachesim::AccessResult r = cache.access(addr);
    if (r.hit) {
      ++hits[obj];
      return;
    }
    const std::uint64_t line = cache.line_of(addr);
    auto ev = evicted_by.find(line);
    if (ev == evicted_by.end()) {
      ++cold[obj];
    } else {
      ++m[(static_cast<std::uint64_t>(obj) << 32) | ev->second];
      evicted_by.erase(ev);
    }
    if (r.evicted_line.has_value()) {
      evicted_by[*r.evicted_line] = static_cast<std::uint32_t>(obj);
    }
  });

  std::vector<conflict::Edge> edges;
  edges.reserve(m.size());
  for (const auto& [key, misses] : m) {
    edges.push_back(conflict::Edge{
        MemoryObjectId(static_cast<std::uint32_t>(key >> 32)),
        MemoryObjectId(static_cast<std::uint32_t>(key)), misses});
  }
  std::vector<std::uint64_t> per_object = accesses;
  DataProfile profile{
      std::move(per_object),
      conflict::ConflictGraph(n, std::move(accesses), std::move(cold),
                              std::move(hits), std::move(edges)),
      total};
  return profile;
}

DataSimReport simulate_data(const prog::Program& program,
                            const trace::BlockWalk& walk,
                            const DataSpec& spec,
                            const std::vector<bool>& on_spm,
                            const cachesim::CacheConfig& dcache,
                            const DataEnergy& energy, std::uint64_t seed) {
  CASA_CHECK(on_spm.size() == spec.objects().size(), "on_spm size mismatch");
  cachesim::Cache cache(dcache, seed);
  DataSimReport rep;

  replay(program, walk, spec, [&](std::size_t obj, Addr addr) {
    ++rep.total_accesses;
    if (on_spm[obj]) {
      ++rep.spm_accesses;
      rep.total_energy += energy.spm_access;
      return;
    }
    const cachesim::AccessResult r = cache.access(addr);
    if (r.hit) {
      ++rep.dcache_hits;
      rep.total_energy += energy.dcache_hit;
    } else {
      ++rep.dcache_misses;
      rep.total_energy += energy.dcache_miss;
    }
  });
  return rep;
}

}  // namespace casa::data

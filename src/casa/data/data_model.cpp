#include "casa/data/data_model.hpp"

#include "casa/support/error.hpp"

namespace casa::data {

std::size_t DataSpec::add_object(std::string name, Bytes size) {
  CASA_CHECK(size >= kWordBytes && size % kWordBytes == 0,
             "data object size must be a positive word multiple");
  objects_.push_back(DataObject{std::move(name), size});
  return objects_.size() - 1;
}

void DataSpec::bind(std::size_t object, FunctionId fn,
                    double accesses_per_fetch, bool sequential) {
  CASA_CHECK(object < objects_.size(), "unknown data object");
  CASA_CHECK(accesses_per_fetch > 0.0, "binding rate must be positive");
  bindings_.push_back(DataBinding{object, fn, accesses_per_fetch, sequential});
}

Bytes DataSpec::total_size() const {
  Bytes total = 0;
  for (const DataObject& o : objects_) total += o.size;
  return total;
}

namespace {

FunctionId fn_by_name(const prog::Program& p, const std::string& name) {
  for (const prog::Function& f : p.functions()) {
    if (f.name() == name) return f.id();
  }
  CASA_CHECK(false, "data spec references unknown function: " + name);
  return FunctionId();
}

DataSpec adpcm_spec(const prog::Program& p) {
  DataSpec s;
  const auto samples = s.add_object("sample_buf", 2048);
  const auto codes = s.add_object("code_buf", 512);
  const auto step_tab = s.add_object("step_table", 356);
  const auto index_tab = s.add_object("index_table", 64);
  const auto state = s.add_object("codec_state", 32);
  s.bind(samples, fn_by_name(p, "main"), 0.35);
  s.bind(codes, fn_by_name(p, "main"), 0.18);
  s.bind(step_tab, fn_by_name(p, "step_update"), 0.5, /*sequential=*/false);
  s.bind(index_tab, fn_by_name(p, "step_update"), 0.3, false);
  s.bind(state, fn_by_name(p, "encode_sample"), 0.6, false);
  s.bind(state, fn_by_name(p, "decode_sample"), 0.6, false);
  return s;
}

DataSpec g721_spec(const prog::Program& p) {
  DataSpec s;
  const auto samples = s.add_object("sample_buf", 4096);
  const auto delay_b = s.add_object("delay_bn", 96);
  const auto delay_a = s.add_object("delay_an", 32);
  const auto quan_tab = s.add_object("quan_table", 128);
  const auto wi_tab = s.add_object("witab", 64);
  const auto state = s.add_object("g72x_state", 96);
  s.bind(samples, fn_by_name(p, "main"), 0.25);
  s.bind(delay_b, fn_by_name(p, "predictor_zero"), 0.45, false);
  s.bind(delay_a, fn_by_name(p, "predictor_pole"), 0.5, false);
  s.bind(quan_tab, fn_by_name(p, "quan"), 0.6, false);
  s.bind(wi_tab, fn_by_name(p, "step_size"), 0.4, false);
  s.bind(state, fn_by_name(p, "update_state"), 0.55, false);
  return s;
}

DataSpec gsm_spec(const prog::Program& p) {
  DataSpec s;
  const auto frame = s.add_object("frame_buf", 640);
  const auto acf = s.add_object("acf_buf", 72);
  const auto dmax = s.add_object("ltp_window", 512);
  const auto rpe = s.add_object("rpe_buf", 208);
  const auto state = s.add_object("gsm_state", 648);
  s.bind(frame, fn_by_name(p, "preprocess"), 0.4);
  s.bind(frame, fn_by_name(p, "autocorr"), 0.45);
  s.bind(acf, fn_by_name(p, "reflection"), 0.5, false);
  s.bind(dmax, fn_by_name(p, "ltp_dist"), 0.55);
  s.bind(rpe, fn_by_name(p, "rpe_encode"), 0.5);
  s.bind(state, fn_by_name(p, "short_term_filter"), 0.45, false);
  return s;
}

}  // namespace

DataSpec data_spec_for(const prog::Program& program,
                       const std::string& name) {
  if (name == "adpcm") return adpcm_spec(program);
  if (name == "g721") return g721_spec(program);
  if (name == "gsm") return gsm_spec(program);
  CASA_CHECK(false, "no data spec for workload: " + name);
  return DataSpec();
}

}  // namespace casa::data

// CasaAllocator — the public entry point for the paper's algorithm.
//
// Pipeline position (paper fig. 3): after trace generation and conflict
// graph construction, the allocator picks the subset of memory objects to
// copy onto the scratchpad. Engines:
//  * kGenericIlp     — the literal paper path: build the ILP (eq. 12-17) and
//                      solve it exactly with the generic branch & bound over
//                      the simplex relaxation (the repo's CPLEX stand-in).
//  * kSpecializedBnB — exact combinatorial branch & bound on the presolved
//                      savings problem; same optimum, much faster on large
//                      conflict graphs.
//  * kGreedy         — polynomial heuristic (no optimality guarantee).
//  * kAuto           — generic ILP for small instances, specialized B&B
//                      beyond `generic_ilp_max_edges` edges.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/core/formulation.hpp"
#include "casa/core/problem.hpp"
#include "casa/ilp/model.hpp"
#include "casa/ilp/solve_stats.hpp"

namespace casa::core {

enum class CasaEngine { kAuto, kSpecializedBnB, kGenericIlp, kGreedy };

const char* to_string(CasaEngine e);

struct CasaOptions {
  CasaEngine engine = CasaEngine::kAuto;
  /// kTight by default: identical integer optima to the paper's (13)-(15)
  /// with far smaller branch & bound trees (Ablation B in EXPERIMENTS.md
  /// verifies the equivalence). Set kPaper for the literal formulation.
  Linearization linearization = Linearization::kTight;
  /// kAuto switches from the generic ILP to the specialized solver when the
  /// presolved edge count exceeds this.
  std::size_t generic_ilp_max_edges = 120;
  std::uint64_t max_nodes = 50'000'000;
  /// Generic-ILP engine tuning (ignored by the specialized/greedy engines).
  /// Worker threads for the branch & bound subtree fan-out (0 = hardware
  /// concurrency, 1 = serial). Results are thread-count-invariant; see
  /// docs/solver.md.
  unsigned ilp_threads = 1;
  /// Pin the subtree fan-out depth explicitly (0 = allocator default of 3,
  /// deliberately independent of ilp_threads so the allocation never
  /// depends on the machine's core count).
  unsigned ilp_subtree_depth = 0;
  /// Seed the incumbent from the Steinke knapsack selection and a rounded
  /// root LP before node 1 (SolveStats::warm_start_used).
  bool ilp_warm_start = true;
  /// Run the bound-box presolve before search (SolveStats::presolve_fixed).
  bool ilp_presolve = true;

  friend bool operator==(const CasaOptions&, const CasaOptions&) = default;
};

struct AllocationResult {
  std::vector<bool> on_spm;    ///< per memory object
  Bytes used_bytes = 0;        ///< unpadded bytes placed on the scratchpad
  Energy predicted_energy = 0; ///< paper model (eq. 16; cold misses excl.)
  Energy predicted_saving = 0; ///< vs. the all-cached assignment
  std::uint64_t solver_nodes = 0;  ///< == solver_stats.nodes (convenience)
  bool exact = true;
  /// Termination status of the engine that ran. kOptimal means the search
  /// ran to completion (for greedy: the heuristic finished — `exact` stays
  /// false there, status only reports termination); kLimit means the search
  /// was truncated (max_nodes / LP iteration limit) and the allocation is a
  /// best-effort incumbent, or empty when none was found. Downstream
  /// reporting (Workbench, check_allocation) refuses truncated results
  /// rather than presenting them as "nothing fits".
  ilp::SolveStatus solver_status = ilp::SolveStatus::kOptimal;
  double solve_seconds = 0.0;
  CasaEngine engine_used = CasaEngine::kAuto;
  /// Exploration statistics of the engine that ran (all 0 for greedy).
  ilp::SolveStats solver_stats;
  /// Presolve reductions: items/edges that survived into the solved form.
  std::size_t presolved_items = 0;
  std::size_t presolved_edges = 0;

  /// Result equality. Every field the solve *determines* is compared
  /// exactly (bit-level for the doubles, not tolerance-based) — two runs
  /// of the same problem must compare equal, which is what the svc result
  /// cache's sampled hit-verification and the casa-result round-trip tests
  /// assert. solve_seconds is deliberately excluded: it is wall-clock
  /// telemetry, the one field an identical re-solve does not reproduce.
  friend bool operator==(const AllocationResult& a,
                         const AllocationResult& b) {
    return a.on_spm == b.on_spm && a.used_bytes == b.used_bytes &&
           a.predicted_energy == b.predicted_energy &&
           a.predicted_saving == b.predicted_saving &&
           a.solver_nodes == b.solver_nodes && a.exact == b.exact &&
           a.solver_status == b.solver_status &&
           a.engine_used == b.engine_used &&
           a.solver_stats == b.solver_stats &&
           a.presolved_items == b.presolved_items &&
           a.presolved_edges == b.presolved_edges;
  }
};

class CasaAllocator {
 public:
  using Options = CasaOptions;

  explicit CasaAllocator(Options opt = {}) : opt_(opt) {}

  [[nodiscard]] AllocationResult allocate(const CasaProblem& p) const;

 private:
  Options opt_;
};

}  // namespace casa::core

#include "casa/core/casa_branch_bound.hpp"

#include <algorithm>
#include <numeric>

#include "casa/core/greedy.hpp"
#include "casa/support/error.hpp"

namespace casa::core {

namespace {

/// Quadratic-knapsack-style DFS.
///
/// State per item: undecided / included / excluded. `cur_opt[k]` is an upper
/// bound on item k's remaining marginal saving: its linear value plus every
/// *uncovered* incident edge weight (an edge is covered once either endpoint
/// is included). The node bound is the fractional knapsack over undecided
/// items at cur_opt values — optimistic because a shared uncovered edge may
/// be credited to both endpoints, but it tightens as inclusions cover edges.
/// Branching picks the undecided item with the highest cur_opt density
/// (include branch first).
class Search {
 public:
  Search(const SavingsProblem& sp, const CasaBranchBoundOptions& opt)
      : sp_(sp), opt_(opt) {
    const std::size_t n = sp.item_count();
    incident_.resize(n);
    cur_opt_.assign(sp.value.begin(), sp.value.end());
    for (std::size_t e = 0; e < sp_.edges.size(); ++e) {
      incident_[sp_.edges[e].a].push_back(static_cast<std::uint32_t>(e));
      incident_[sp_.edges[e].b].push_back(static_cast<std::uint32_t>(e));
      cur_opt_[sp_.edges[e].a] += sp_.edges[e].weight;
      cur_opt_[sp_.edges[e].b] += sp_.edges[e].weight;
    }
    state_.assign(n, kUndecided);
    cover_.assign(sp_.edges.size(), 0);
    cap_left_ = sp_.capacity;
    for (const auto& e : sp_.edges) open_edge_weight_ += e.weight;

    // Items that can never contribute are excluded up front: no saving, or
    // they simply do not fit.
    for (std::size_t k = 0; k < n; ++k) {
      if (cur_opt_[k] <= 0 || sp_.weight[k] > sp_.capacity) {
        exclude(k);
      }
    }

    // Static order by linear-value density, for the capacity-free second
    // bound (edges counted once).
    value_order_.resize(n);
    std::iota(value_order_.begin(), value_order_.end(), 0u);
    std::sort(value_order_.begin(), value_order_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const double da =
                    sp_.value[a] / static_cast<double>(sp_.weight[a]);
                const double db =
                    sp_.value[b] / static_cast<double>(sp_.weight[b]);
                if (da != db) return da > db;
                return a < b;
              });

    // Incumbent: marginal-density greedy, strengthened by 1-out/1-in local
    // search. A tight incumbent is what keeps the tree small — the
    // fractional bound alone double-counts shared edges.
    const GreedyResult g = solve_greedy(sp_);
    best_chosen_ = g.chosen;
    best_saving_ = g.saving;
    local_search();
  }

  /// Hill-climbs best_chosen_ with single swaps (drop one chosen item, add
  /// the best replacement set greedily) until no move improves.
  void local_search() {
    const std::size_t n = sp_.item_count();
    bool improved = true;
    int rounds = 0;
    while (improved && rounds++ < 20) {
      improved = false;
      for (std::size_t out = 0; out < n; ++out) {
        if (!best_chosen_[out]) continue;
        std::vector<bool> trial = best_chosen_;
        trial[out] = false;
        Bytes used = 0;
        for (std::size_t k = 0; k < n; ++k) {
          if (trial[k]) used += sp_.weight[k];
        }
        // Refill greedily by marginal density.
        for (;;) {
          const Energy base = sp_.saving_for(trial);
          int pick = -1;
          double best_density = 0.0;
          for (std::size_t in = 0; in < n; ++in) {
            if (trial[in] || sp_.weight[in] + used > sp_.capacity) continue;
            trial[in] = true;
            const Energy with = sp_.saving_for(trial);
            trial[in] = false;
            const double d =
                (with - base) / static_cast<double>(sp_.weight[in]);
            if (d > best_density) {
              best_density = d;
              pick = static_cast<int>(in);
            }
          }
          if (pick < 0) break;
          trial[static_cast<std::size_t>(pick)] = true;
          used += sp_.weight[static_cast<std::size_t>(pick)];
        }
        const Energy s = sp_.saving_for(trial);
        if (s > best_saving_ + opt_.eps) {
          best_saving_ = s;
          best_chosen_ = std::move(trial);
          improved = true;
        }
      }
    }
  }

  CasaBranchBoundResult run() {
    dfs(0);
    CasaBranchBoundResult r;
    r.chosen = std::move(best_chosen_);
    r.saving = sp_.saving_for(r.chosen);
    r.nodes = nodes_;
    r.exact = !aborted_;
    r.stats = stats_;
    r.stats.nodes = nodes_;
    return r;
  }

 private:
  static constexpr std::uint8_t kUndecided = 0;
  static constexpr std::uint8_t kIncluded = 1;
  static constexpr std::uint8_t kExcluded = 2;

  double density(std::size_t k) const {
    return cur_opt_[k] / static_cast<double>(sp_.weight[k]);
  }

  /// Two complementary optimistic completions; the min of both is sound:
  ///  (a) fractional knapsack at cur_opt values — capacity-aware, but a
  ///      shared uncovered edge may be credited to both endpoints;
  ///  (b) fractional knapsack at linear values plus *all* still-open edge
  ///      weight — edges counted once, but granted without capacity.
  Energy bound() {
    scratch_.clear();
    for (std::size_t k = 0; k < state_.size(); ++k) {
      if (state_[k] == kUndecided && sp_.weight[k] <= cap_left_ &&
          cur_opt_[k] > 0) {
        scratch_.push_back(static_cast<std::uint32_t>(k));
      }
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return density(a) > density(b);
              });
    Energy opt_knap = 0;
    Bytes cap = cap_left_;
    for (const std::uint32_t k : scratch_) {
      if (cap == 0) break;
      if (sp_.weight[k] <= cap) {
        opt_knap += cur_opt_[k];
        cap -= sp_.weight[k];
      } else {
        opt_knap += cur_opt_[k] * (static_cast<double>(cap) /
                                   static_cast<double>(sp_.weight[k]));
        cap = 0;
      }
    }

    Energy val_knap = 0;
    cap = cap_left_;
    for (const std::uint32_t k : value_order_) {
      if (cap == 0) break;
      if (state_[k] != kUndecided || sp_.weight[k] > cap_left_ ||
          sp_.value[k] <= 0) {
        continue;
      }
      if (sp_.weight[k] <= cap) {
        val_knap += sp_.value[k];
        cap -= sp_.weight[k];
      } else {
        val_knap += sp_.value[k] * (static_cast<double>(cap) /
                                    static_cast<double>(sp_.weight[k]));
        cap = 0;
      }
    }

    return cur_saving_ + std::min(opt_knap, val_knap + open_edge_weight_);
  }

  std::size_t other_endpoint(std::uint32_t e, std::size_t k) const {
    return sp_.edges[e].a == k ? sp_.edges[e].b : sp_.edges[e].a;
  }

  void include(std::size_t k) {
    state_[k] = kIncluded;
    cap_left_ -= sp_.weight[k];
    cur_saving_ += sp_.value[k];
    for (const std::uint32_t e : incident_[k]) {
      if (cover_[e]++ == 0) {
        cur_saving_ += sp_.edges[e].weight;
        cur_opt_[sp_.edges[e].a] -= sp_.edges[e].weight;
        cur_opt_[sp_.edges[e].b] -= sp_.edges[e].weight;
        // k was undecided, so the edge was coverable (open) until now.
        open_edge_weight_ -= sp_.edges[e].weight;
      }
    }
  }

  void undo_include(std::size_t k) {
    state_[k] = kUndecided;
    cap_left_ += sp_.weight[k];
    cur_saving_ -= sp_.value[k];
    for (const std::uint32_t e : incident_[k]) {
      if (--cover_[e] == 0) {
        cur_saving_ -= sp_.edges[e].weight;
        cur_opt_[sp_.edges[e].a] += sp_.edges[e].weight;
        cur_opt_[sp_.edges[e].b] += sp_.edges[e].weight;
        // k is undecided again: the edge is coverable once more.
        open_edge_weight_ += sp_.edges[e].weight;
      }
    }
  }

  // An uncovered edge stops being coverable only when BOTH endpoints are
  // excluded (covering needs one *included* endpoint, which requires an
  // undecided one).
  void exclude(std::size_t k) {
    state_[k] = kExcluded;
    for (const std::uint32_t e : incident_[k]) {
      if (cover_[e] == 0 && state_[other_endpoint(e, k)] == kExcluded) {
        open_edge_weight_ -= sp_.edges[e].weight;
      }
    }
  }

  void undo_exclude(std::size_t k) {
    state_[k] = kUndecided;
    for (const std::uint32_t e : incident_[k]) {
      if (cover_[e] == 0 && state_[other_endpoint(e, k)] == kExcluded) {
        open_edge_weight_ += sp_.edges[e].weight;
      }
    }
  }

  void dfs(std::uint64_t depth) {
    if (aborted_) return;
    if (++nodes_ > opt_.max_nodes) {
      aborted_ = true;
      return;
    }
    if (depth > stats_.max_depth) stats_.max_depth = depth;
    if (cur_saving_ > best_saving_) {
      best_saving_ = cur_saving_;
      best_chosen_.assign(state_.size(), false);
      for (std::size_t k = 0; k < state_.size(); ++k) {
        best_chosen_[k] = state_[k] == kIncluded;
      }
      ++stats_.incumbent_updates;
    }

    // Branch variable: densest undecided item that still fits.
    int pick = -1;
    double pick_density = 0.0;
    for (std::size_t k = 0; k < state_.size(); ++k) {
      if (state_[k] != kUndecided || sp_.weight[k] > cap_left_ ||
          cur_opt_[k] <= 0) {
        continue;
      }
      const double d = density(k);
      if (pick < 0 || d > pick_density) {
        pick = static_cast<int>(k);
        pick_density = d;
      }
    }
    if (pick < 0) return;  // nothing can be added
    if (bound() <= best_saving_ + opt_.eps) {
      ++stats_.bound_prunes;
      return;
    }

    const auto k = static_cast<std::size_t>(pick);
    include(k);
    dfs(depth + 1);
    undo_include(k);

    exclude(k);
    dfs(depth + 1);
    undo_exclude(k);
  }

  const SavingsProblem& sp_;
  const CasaBranchBoundOptions& opt_;

  std::vector<std::vector<std::uint32_t>> incident_;
  std::vector<Energy> cur_opt_;
  std::vector<std::uint8_t> state_;
  std::vector<std::uint16_t> cover_;
  std::vector<std::uint32_t> scratch_;
  std::vector<std::uint32_t> value_order_;
  Bytes cap_left_ = 0;
  Energy cur_saving_ = 0;
  Energy open_edge_weight_ = 0;

  std::vector<bool> best_chosen_;
  Energy best_saving_ = 0;
  std::uint64_t nodes_ = 0;
  ilp::SolveStats stats_;
  bool aborted_ = false;
};

}  // namespace

CasaBranchBoundResult CasaBranchBound::solve(const SavingsProblem& sp) const {
  Search search(sp, opt_);
  return search.run();
}

}  // namespace casa::core

#include "casa/core/multi_spm.hpp"

#include <map>
#include <string>

#include "casa/ilp/branch_bound.hpp"
#include "casa/support/error.hpp"

namespace casa::core {

void MultiSpmProblem::validate() const {
  CASA_CHECK(graph != nullptr, "MultiSpmProblem needs a conflict graph");
  CASA_CHECK(sizes.size() == graph->node_count(), "sizes size mismatch");
  CASA_CHECK(!capacities.empty(), "need at least one scratchpad");
  CASA_CHECK(capacities.size() == e_spm.size(),
             "capacities / energies mismatch");
  CASA_CHECK(e_cache_miss > e_cache_hit, "miss must cost more than hit");
  for (const Energy e : e_spm) {
    CASA_CHECK(e_cache_hit > e, "scratchpad must beat the cache per access");
  }
}

MultiSpmResult allocate_multi_spm(const MultiSpmProblem& p,
                                  MultiSpmOptions opt) {
  p.validate();
  const conflict::ConflictGraph& g = *p.graph;
  const std::size_t n = g.node_count();
  const std::size_t pads = p.capacities.size();

  ilp::Model m;

  // l_i: 1 = cached. a_ik: object i lives on pad k.
  std::vector<VarId> l(n);
  std::vector<std::vector<VarId>> a(n, std::vector<VarId>(pads));
  Bytes max_cap = 0;
  for (const Bytes c : p.capacities) max_cap = std::max(max_cap, c);

  for (std::size_t i = 0; i < n; ++i) {
    l[i] = m.add_binary("l_" + std::to_string(i));
    ilp::LinExpr link;
    link.add(l[i], 1.0);
    for (std::size_t k = 0; k < pads; ++k) {
      a[i][k] = m.add_binary("a_" + std::to_string(i) + "_" +
                             std::to_string(k));
      link.add(a[i][k], 1.0);
      if (p.sizes[i] > p.capacities[k]) {
        // Object cannot fit this pad at all.
        m.add_constraint("nofit_" + std::to_string(i) + "_" +
                             std::to_string(k),
                         ilp::LinExpr().add(a[i][k], 1.0), ilp::Rel::kEqual,
                         0.0);
      }
    }
    // Exactly one location: cached or one pad.
    m.add_constraint("loc_" + std::to_string(i), std::move(link),
                     ilp::Rel::kEqual, 1.0);
  }

  // Per-pad capacity (paper: inequation (17) repeated per scratchpad).
  for (std::size_t k = 0; k < pads; ++k) {
    ilp::LinExpr cap;
    for (std::size_t i = 0; i < n; ++i) {
      cap.add(a[i][k], static_cast<double>(p.sizes[i]));
    }
    m.add_constraint("cap_" + std::to_string(k), std::move(cap),
                     ilp::Rel::kLessEq, static_cast<double>(p.capacities[k]));
  }

  // Merge directed conflict edges into unordered pairs.
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> pair_w;
  const double d_miss_hit = p.e_cache_miss - p.e_cache_hit;
  ilp::LinExpr obj;
  for (const conflict::Edge& e : g.edges()) {
    const double w = static_cast<double>(e.misses) * d_miss_hit;
    if (e.from == e.to) {
      obj.add(l[e.from.index()], w);  // l_i^2 = l_i
      continue;
    }
    const auto key = e.from.value() < e.to.value()
                         ? std::make_pair(e.from.value(), e.to.value())
                         : std::make_pair(e.to.value(), e.from.value());
    pair_w[key] += w;
  }

  // Objective: fetch costs plus linearized conflict terms.
  for (std::size_t i = 0; i < n; ++i) {
    const auto f = static_cast<double>(
        g.fetches(MemoryObjectId(static_cast<std::uint32_t>(i))));
    obj.add(l[i], f * p.e_cache_hit);
    for (std::size_t k = 0; k < pads; ++k) {
      obj.add(a[i][k], f * p.e_spm[k]);
    }
  }
  std::size_t edge_idx = 0;
  for (const auto& [key, w] : pair_w) {
    const VarId L = m.add_continuous("L_" + std::to_string(edge_idx++), 0.0,
                                     1.0);
    // Tight linearization: L >= l_i + l_j - 1.
    m.add_constraint("lin_" + std::to_string(edge_idx),
                     ilp::LinExpr()
                         .add(l[key.first], 1.0)
                         .add(l[key.second], 1.0)
                         .add(L, -1.0),
                     ilp::Rel::kLessEq, 1.0);
    obj.add(L, w);
  }
  m.set_objective(ilp::Sense::kMinimize, std::move(obj));

  ilp::BranchAndBoundOptions bopt;
  bopt.max_nodes = opt.max_nodes;
  ilp::BranchAndBound solver(bopt);
  const ilp::Solution sol = solver.solve(m);
  CASA_CHECK(sol.status == ilp::SolveStatus::kOptimal ||
                 sol.status == ilp::SolveStatus::kLimit,
             "multi-SPM ILP did not produce a solution");

  MultiSpmResult r;
  r.exact = sol.status == ilp::SolveStatus::kOptimal;
  r.pad_of.assign(n, -1);
  r.used_bytes.assign(pads, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < pads; ++k) {
      if (sol.value_as_bool(a[i][k])) {
        r.pad_of[i] = static_cast<int>(k);
        r.used_bytes[k] += p.sizes[i];
      }
    }
  }
  r.predicted_energy = sol.objective;
  return r;
}

}  // namespace casa::core

#include "casa/core/allocator.hpp"

#include <chrono>

#include "casa/core/casa_branch_bound.hpp"
#include "casa/core/greedy.hpp"
#include "casa/ilp/branch_bound.hpp"
#include "casa/support/error.hpp"

namespace casa::core {

const char* to_string(CasaEngine e) {
  switch (e) {
    case CasaEngine::kAuto:
      return "auto";
    case CasaEngine::kSpecializedBnB:
      return "specialized-bnb";
    case CasaEngine::kGenericIlp:
      return "generic-ilp";
    case CasaEngine::kGreedy:
      return "greedy";
  }
  return "?";
}

AllocationResult CasaAllocator::allocate(const CasaProblem& p) const {
  const auto start = std::chrono::steady_clock::now();
  const SavingsProblem sp = presolve(p);

  CasaEngine engine = opt_.engine;
  if (engine == CasaEngine::kAuto) {
    engine = sp.edges.size() <= opt_.generic_ilp_max_edges
                 ? CasaEngine::kGenericIlp
                 : CasaEngine::kSpecializedBnB;
  }

  AllocationResult result;
  result.engine_used = engine;
  result.presolved_items = sp.item_count();
  result.presolved_edges = sp.edges.size();
  std::vector<bool> chosen;

  switch (engine) {
    case CasaEngine::kGenericIlp: {
      const CasaModel cm = build_casa_model(sp, opt_.linearization);
      ilp::BranchAndBoundOptions bopt;
      bopt.max_nodes = opt_.max_nodes;
      // Location variables decide the allocation; the linearization
      // variables L are implied once the l are fixed — branch l first.
      bopt.branch_priority.assign(cm.model.var_count(), 0);
      for (const VarId l : cm.l_vars) bopt.branch_priority[l.index()] = 1;
      ilp::BranchAndBound solver(bopt);
      const ilp::Solution sol = solver.solve(cm.model);
      CASA_CHECK(sol.status == ilp::SolveStatus::kOptimal ||
                     sol.status == ilp::SolveStatus::kLimit,
                 "CASA ILP did not produce a solution");
      chosen = choice_from_solution(cm, sol);
      result.exact = sol.status == ilp::SolveStatus::kOptimal;
      result.solver_stats = solver.last_stats();
      result.solver_nodes = result.solver_stats.nodes;
      break;
    }
    case CasaEngine::kSpecializedBnB: {
      CasaBranchBoundOptions bopt;
      bopt.max_nodes = opt_.max_nodes;
      const CasaBranchBound solver(bopt);
      CasaBranchBoundResult r = solver.solve(sp);
      chosen = std::move(r.chosen);
      result.exact = r.exact;
      result.solver_stats = r.stats;
      result.solver_nodes = r.nodes;
      break;
    }
    case CasaEngine::kGreedy: {
      GreedyResult r = solve_greedy(sp);
      chosen = std::move(r.chosen);
      result.exact = false;
      break;
    }
    case CasaEngine::kAuto:
      CASA_CHECK(false, "unreachable");
  }

  result.predicted_saving = sp.saving_for(chosen);
  result.predicted_energy = sp.energy_for(chosen);
  result.on_spm = expand_choice(p, sp, chosen);
  for (std::size_t k = 0; k < chosen.size(); ++k) {
    if (chosen[k]) result.used_bytes += sp.weight[k];
  }
  CASA_CHECK(result.used_bytes <= p.capacity,
             "allocation exceeds scratchpad capacity");
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace casa::core

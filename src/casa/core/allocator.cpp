#include "casa/core/allocator.hpp"

#include <chrono>

#include "casa/baseline/steinke.hpp"
#include "casa/core/casa_branch_bound.hpp"
#include "casa/core/greedy.hpp"
#include "casa/ilp/branch_bound.hpp"
#include "casa/support/error.hpp"

namespace casa::core {

const char* to_string(CasaEngine e) {
  switch (e) {
    case CasaEngine::kAuto:
      return "auto";
    case CasaEngine::kSpecializedBnB:
      return "specialized-bnb";
    case CasaEngine::kGenericIlp:
      return "generic-ilp";
    case CasaEngine::kGreedy:
      return "greedy";
  }
  return "?";
}

AllocationResult CasaAllocator::allocate(const CasaProblem& p) const {
  const auto start = std::chrono::steady_clock::now();
  const SavingsProblem sp = presolve(p);

  CasaEngine engine = opt_.engine;
  if (engine == CasaEngine::kAuto) {
    engine = sp.edges.size() <= opt_.generic_ilp_max_edges
                 ? CasaEngine::kGenericIlp
                 : CasaEngine::kSpecializedBnB;
  }

  AllocationResult result;
  result.engine_used = engine;
  result.presolved_items = sp.item_count();
  result.presolved_edges = sp.edges.size();
  std::vector<bool> chosen;

  switch (engine) {
    case CasaEngine::kGenericIlp: {
      const CasaModel cm = build_casa_model(sp, opt_.linearization);
      ilp::BranchAndBoundOptions bopt;
      bopt.max_nodes = opt_.max_nodes;
      bopt.threads = opt_.ilp_threads;
      // Pin the fan-out depth to a thread-count-independent constant so the
      // allocation is bit-identical whatever ilp_threads is (the B&B derives
      // depth from the thread count when left at 0, which would tie results
      // to the machine).
      bopt.subtree_depth =
          opt_.ilp_subtree_depth != 0 ? opt_.ilp_subtree_depth : 3;
      bopt.presolve = opt_.ilp_presolve;
      bopt.warm_start = opt_.ilp_warm_start;
      if (opt_.ilp_warm_start && sp.item_count() > 0) {
        // Steinke's knapsack over the linear savings is capacity-feasible
        // for the full model (edges only add savings), so its lift is a
        // sound incumbent before node 1.
        bopt.warm_hint = warm_assignment(
            cm, sp, baseline::knapsack_seed(sp.weight, sp.value, sp.capacity));
      }
      // Location variables decide the allocation; the linearization
      // variables L are implied once the l are fixed — branch l first.
      bopt.branch_priority.assign(cm.model.var_count(), 0);
      for (const VarId l : cm.l_vars) bopt.branch_priority[l.index()] = 1;
      ilp::BranchAndBound solver(bopt);
      const ilp::Solution sol = solver.solve(cm.model);
      // The all-cached point always satisfies (13)-(17), so a well-formed
      // CASA model can never be infeasible or unbounded.
      CASA_CHECK(sol.status == ilp::SolveStatus::kOptimal ||
                     sol.status == ilp::SolveStatus::kLimit,
                 "CASA ILP did not produce a solution");
      result.solver_status = sol.status;
      if (sol.values.empty()) {
        // Truncated with no incumbent: the search proved nothing. Report
        // the all-cached assignment, but keep the kLimit status so
        // downstream consumers refuse to present it as an allocation.
        chosen.assign(sp.item_count(), false);
      } else {
        chosen = choice_from_solution(cm, sol);
      }
      result.exact = sol.status == ilp::SolveStatus::kOptimal;
      result.solver_stats = solver.last_stats();
      result.solver_nodes = result.solver_stats.nodes;
      break;
    }
    case CasaEngine::kSpecializedBnB: {
      CasaBranchBoundOptions bopt;
      bopt.max_nodes = opt_.max_nodes;
      const CasaBranchBound solver(bopt);
      CasaBranchBoundResult r = solver.solve(sp);
      chosen = std::move(r.chosen);
      result.exact = r.exact;
      result.solver_status =
          r.exact ? ilp::SolveStatus::kOptimal : ilp::SolveStatus::kLimit;
      result.solver_stats = r.stats;
      result.solver_nodes = r.nodes;
      break;
    }
    case CasaEngine::kGreedy: {
      GreedyResult r = solve_greedy(sp);
      chosen = std::move(r.chosen);
      result.exact = false;
      break;
    }
    case CasaEngine::kAuto:
      CASA_CHECK(false, "unreachable");
  }

  result.predicted_saving = sp.saving_for(chosen);
  result.predicted_energy = sp.energy_for(chosen);
  result.on_spm = expand_choice(p, sp, chosen);
  for (std::size_t k = 0; k < chosen.size(); ++k) {
    if (chosen[k]) result.used_bytes += sp.weight[k];
  }
  CASA_CHECK(result.used_bytes <= p.capacity,
             "allocation exceeds scratchpad capacity");
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace casa::core

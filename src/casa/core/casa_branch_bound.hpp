// Specialized exact solver for the CASA savings problem.
//
// The presolved problem is a quadratic-knapsack variant: choose items under
// a capacity so that linear values plus once-per-edge bonuses are maximized.
// This branch & bound explores items in static optimistic-density order and
// prunes with a fractional-knapsack bound over static optimistic values
// (value + all incident edge weights — an upper bound on any completion, so
// pruning is sound and the search is exact).
//
// The generic ilp::BranchAndBound solves the same instances through the
// paper's LP formulation; this solver exists because it is orders of
// magnitude faster on the larger benchmarks (mpeg) while provably returning
// the same optimum — the test suite cross-checks the two.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/core/problem.hpp"
#include "casa/ilp/solve_stats.hpp"

namespace casa::core {

struct CasaBranchBoundOptions {
  std::uint64_t max_nodes = 50'000'000;
  double eps = 1e-9;  ///< pruning slack on energy comparisons (nJ)
};

struct CasaBranchBoundResult {
  std::vector<bool> chosen;  ///< per presolved item
  Energy saving = 0;
  std::uint64_t nodes = 0;   ///< == stats.nodes (kept for existing callers)
  bool exact = true;  ///< false when max_nodes aborted the proof
  /// Exploration statistics (simplex_iterations stays 0 — no LPs here).
  ilp::SolveStats stats;
};

class CasaBranchBound {
 public:
  using Options = CasaBranchBoundOptions;

  explicit CasaBranchBound(Options opt = {}) : opt_(opt) {}

  [[nodiscard]] CasaBranchBoundResult solve(const SavingsProblem& sp) const;

 private:
  Options opt_;
};

}  // namespace casa::core

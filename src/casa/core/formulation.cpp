#include "casa/core/formulation.hpp"

#include <string>

#include "casa/support/error.hpp"

namespace casa::core {

CasaModel build_casa_model(const SavingsProblem& sp, Linearization lin) {
  CasaModel cm;
  ilp::Model& m = cm.model;

  // Location variables l_k (eq. 7): 1 = cached, 0 = scratchpad.
  cm.l_vars.reserve(sp.item_count());
  for (std::size_t k = 0; k < sp.item_count(); ++k) {
    cm.l_vars.push_back(m.add_binary("l_" + std::to_string(k)));
  }

  // Linearization variables L_p = l_a * l_b (eq. 12).
  cm.L_vars.reserve(sp.edges.size());
  for (std::size_t p = 0; p < sp.edges.size(); ++p) {
    const auto& e = sp.edges[p];
    const std::string name = "L_" + std::to_string(e.a) + "_" +
                             std::to_string(e.b);
    if (lin == Linearization::kPaper) {
      const VarId L = m.add_binary(name);
      cm.L_vars.push_back(L);
      // (13) l_a - L >= 0
      m.add_constraint("lin13_" + std::to_string(p),
                       ilp::LinExpr().add(cm.l_vars[e.a], 1.0).add(L, -1.0),
                       ilp::Rel::kGreaterEq, 0.0);
      // (14) l_b - L >= 0
      m.add_constraint("lin14_" + std::to_string(p),
                       ilp::LinExpr().add(cm.l_vars[e.b], 1.0).add(L, -1.0),
                       ilp::Rel::kGreaterEq, 0.0);
      // (15) l_a + l_b - 2L <= 1
      m.add_constraint("lin15_" + std::to_string(p),
                       ilp::LinExpr()
                           .add(cm.l_vars[e.a], 1.0)
                           .add(cm.l_vars[e.b], 1.0)
                           .add(L, -2.0),
                       ilp::Rel::kLessEq, 1.0);
    } else {
      const VarId L = m.add_continuous(name, 0.0, 1.0);
      cm.L_vars.push_back(L);
      // L >= l_a + l_b - 1 (minimization with positive weight pushes L down
      // to the max of this and zero, which equals l_a * l_b at integer l).
      m.add_constraint("lin_" + std::to_string(p),
                       ilp::LinExpr()
                           .add(cm.l_vars[e.a], 1.0)
                           .add(cm.l_vars[e.b], 1.0)
                           .add(L, -1.0),
                       ilp::Rel::kLessEq, 1.0);
    }
  }

  // Capacity (eq. 17): sum of sizes of scratchpad objects <= capacity.
  // Over items: sum w_k (1 - l_k) <= C  <=>  sum w_k l_k >= W - C.
  double total_w = 0.0;
  ilp::LinExpr cap;
  for (std::size_t k = 0; k < sp.item_count(); ++k) {
    cap.add(cm.l_vars[k], static_cast<double>(sp.weight[k]));
    total_w += static_cast<double>(sp.weight[k]);
  }
  m.add_constraint("capacity", std::move(cap), ilp::Rel::kGreaterEq,
                   total_w - static_cast<double>(sp.capacity));

  // Objective (eq. 12/16): variable part only; the constant is carried in
  // objective_offset.
  ilp::LinExpr obj;
  Energy var_total = 0;
  for (std::size_t k = 0; k < sp.item_count(); ++k) {
    obj.add(cm.l_vars[k], sp.value[k]);
    var_total += sp.value[k];
  }
  for (std::size_t p = 0; p < sp.edges.size(); ++p) {
    obj.add(cm.L_vars[p], sp.edges[p].weight);
    var_total += sp.edges[p].weight;
  }
  m.set_objective(ilp::Sense::kMinimize, std::move(obj));
  cm.objective_offset = sp.all_cached_energy - var_total;
  return cm;
}

std::vector<double> warm_assignment(const CasaModel& cm,
                                    const SavingsProblem& sp,
                                    const std::vector<bool>& chosen) {
  CASA_CHECK(chosen.size() == cm.l_vars.size(),
             "warm assignment needs one choice per item");
  std::vector<double> x(cm.model.var_count(), 0.0);
  for (std::size_t k = 0; k < cm.l_vars.size(); ++k) {
    x[cm.l_vars[k].index()] = chosen[k] ? 0.0 : 1.0;
  }
  for (std::size_t p = 0; p < cm.L_vars.size(); ++p) {
    const auto& e = sp.edges[p];
    x[cm.L_vars[p].index()] =
        x[cm.l_vars[e.a].index()] * x[cm.l_vars[e.b].index()];
  }
  return x;
}

std::vector<bool> choice_from_solution(const CasaModel& cm,
                                       const ilp::Solution& sol) {
  CASA_CHECK(sol.status == ilp::SolveStatus::kOptimal ||
                 sol.status == ilp::SolveStatus::kLimit,
             "no usable ILP solution");
  std::vector<bool> chosen(cm.l_vars.size());
  for (std::size_t k = 0; k < cm.l_vars.size(); ++k) {
    chosen[k] = !sol.value_as_bool(cm.l_vars[k]);  // l = 0 -> scratchpad
  }
  return chosen;
}

}  // namespace casa::core

// Multi-scratchpad extension (paper §4, "repeat inequation (17) for every
// scratchpad").
//
// Each object may be copied to at most one of several scratchpads with
// individual capacities and per-access energies; the conflict terms vanish
// when either endpoint leaves the cache, exactly as in the single-pad case.
// Solved through the generic ILP path (assignment variables a_ik, location
// variable l_i = 1 - sum_k a_ik, capacity row per pad).
#pragma once

#include <vector>

#include "casa/conflict/conflict_graph.hpp"
#include "casa/support/units.hpp"

namespace casa::core {

struct MultiSpmProblem {
  const conflict::ConflictGraph* graph = nullptr;
  std::vector<Bytes> sizes;        ///< per object, unpadded
  std::vector<Bytes> capacities;   ///< per scratchpad
  std::vector<Energy> e_spm;       ///< per scratchpad, per access
  Energy e_cache_hit = 0;
  Energy e_cache_miss = 0;

  void validate() const;
};

struct MultiSpmResult {
  /// Pad index per object, -1 = stays cached.
  std::vector<int> pad_of;
  std::vector<Bytes> used_bytes;  ///< per pad
  Energy predicted_energy = 0;
  bool exact = true;
};

struct MultiSpmOptions {
  std::uint64_t max_nodes = 500'000;
};

MultiSpmResult allocate_multi_spm(const MultiSpmProblem& p,
                                  MultiSpmOptions opt = {});

}  // namespace casa::core

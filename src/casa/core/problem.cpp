#include "casa/core/problem.hpp"

#include <map>

#include "casa/support/error.hpp"

namespace casa::core {

CasaProblem CasaProblem::from(const traceopt::TraceProgram& tp,
                              const conflict::ConflictGraph& graph,
                              const energy::EnergyTable& energies,
                              Bytes capacity) {
  CasaProblem p;
  p.graph = &graph;
  p.sizes.reserve(tp.object_count());
  for (const auto& mo : tp.objects()) p.sizes.push_back(mo.raw_size);
  p.capacity = capacity;
  p.e_cache_hit = energies.cache_hit;
  p.e_cache_miss = energies.cache_miss;
  p.e_spm = energies.spm_access;
  p.validate();
  return p;
}

void CasaProblem::validate() const {
  CASA_CHECK(graph != nullptr, "CasaProblem needs a conflict graph");
  CASA_CHECK(sizes.size() == graph->node_count(),
             "sizes / graph node count mismatch");
  CASA_CHECK(e_cache_miss > e_cache_hit,
             "a cache miss must cost more than a hit");
  CASA_CHECK(e_cache_hit > e_spm,
             "scratchpad must be cheaper than the cache per access");
  for (Bytes s : sizes) CASA_CHECK(s > 0, "object with zero size");
}

Energy SavingsProblem::saving_for(const std::vector<bool>& chosen) const {
  CASA_CHECK(chosen.size() == item_count(), "choice size mismatch");
  Energy total = 0;
  for (std::size_t k = 0; k < item_count(); ++k) {
    if (chosen[k]) total += value[k];
  }
  for (const Edge& e : edges) {
    if (chosen[e.a] || chosen[e.b]) total += e.weight;
  }
  return total;
}

Energy SavingsProblem::energy_for(const std::vector<bool>& chosen) const {
  return all_cached_energy - saving_for(chosen);
}

SavingsProblem presolve(const CasaProblem& p) {
  p.validate();
  const conflict::ConflictGraph& g = *p.graph;
  const std::size_t n = g.node_count();
  const Energy d_hit_sp = p.e_cache_hit - p.e_spm;
  const Energy d_miss_hit = p.e_cache_miss - p.e_cache_hit;

  SavingsProblem sp;
  sp.capacity = p.capacity;

  // Partition nodes into free items and fixed (oversized) objects.
  std::vector<std::int32_t> item_of(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    if (p.sizes[i] <= p.capacity) {
      item_of[i] = static_cast<std::int32_t>(sp.object_of.size());
      sp.object_of.push_back(mo);
      sp.value.push_back(static_cast<Energy>(g.fetches(mo)) * d_hit_sp);
      sp.weight.push_back(p.sizes[i]);
    }
    // Every object contributes f_i * E_hit when cached; start from the
    // all-cached energy and let savings subtract.
    sp.all_cached_energy += static_cast<Energy>(g.fetches(mo)) * p.e_cache_hit;
  }

  // Merge directed edges into unordered pairs; fold self loops and edges to
  // fixed endpoints.
  std::map<std::pair<std::uint32_t, std::uint32_t>, Energy> pair_weight;
  for (const conflict::Edge& e : g.edges()) {
    const Energy w = static_cast<Energy>(e.misses) * d_miss_hit;
    sp.all_cached_energy += w;  // both endpoints cached in the base state
    const std::int32_t a = item_of[e.from.index()];
    const std::int32_t b = item_of[e.to.index()];
    if (a < 0 && b < 0) continue;  // both fixed: the conflict is unavoidable
    if (e.from == e.to) {
      // Self conflict: l_i * l_i = l_i — placing i saves the whole term.
      sp.value[static_cast<std::size_t>(a)] += w;
      continue;
    }
    if (a < 0) {
      // from is fixed cached; placing `to` still kills the misses of from.
      sp.value[static_cast<std::size_t>(b)] += w;
      continue;
    }
    if (b < 0) {
      sp.value[static_cast<std::size_t>(a)] += w;
      continue;
    }
    const auto key = a < b ? std::make_pair(static_cast<std::uint32_t>(a),
                                            static_cast<std::uint32_t>(b))
                           : std::make_pair(static_cast<std::uint32_t>(b),
                                            static_cast<std::uint32_t>(a));
    pair_weight[key] += w;
  }
  sp.edges.reserve(pair_weight.size());
  for (const auto& [key, w] : pair_weight) {
    sp.edges.push_back(SavingsProblem::Edge{key.first, key.second, w});
  }
  return sp;
}

std::vector<bool> expand_choice(const CasaProblem& p, const SavingsProblem& sp,
                                const std::vector<bool>& chosen) {
  CASA_CHECK(chosen.size() == sp.item_count(), "choice size mismatch");
  std::vector<bool> on_spm(p.graph->node_count(), false);
  for (std::size_t k = 0; k < chosen.size(); ++k) {
    if (chosen[k]) on_spm[sp.object_of[k].index()] = true;
  }
  return on_spm;
}

}  // namespace casa::core

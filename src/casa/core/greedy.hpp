// Greedy marginal-density heuristic for the savings problem.
//
// Polynomial-time alternative to the exact solvers: repeatedly take the
// undecided item with the best marginal saving per byte (linear value plus
// still-uncovered incident edges) until nothing fits. Used to quantify the
// ILP's optimality gap (ablation) and as a fast mode for very large inputs.
#pragma once

#include <vector>

#include "casa/core/problem.hpp"

namespace casa::core {

struct GreedyResult {
  std::vector<bool> chosen;
  Energy saving = 0;
};

GreedyResult solve_greedy(const SavingsProblem& sp);

}  // namespace casa::core

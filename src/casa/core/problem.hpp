// CASA problem definition and its presolved "savings" form.
//
// The raw problem is the paper's: binary location l(x_i) per memory object,
// objective eq. (12), capacity constraint eq. (17). Presolve rewrites it as
// an equivalent maximization of energy *savings* over the objects that can
// actually fit:
//   * objects larger than the scratchpad are fixed to l = 1 (cached),
//   * self-conflict edges m_ii collapse onto the linear term (l_i^2 = l_i),
//   * edge pairs (i,j)/(j,i) merge — L(x_i,x_j) = L(x_j,x_i) = l_i*l_j,
//   * edges with a fixed endpoint collapse onto the free endpoint's linear
//     term or into the constant.
// Every solver (generic ILP, specialized branch & bound, greedy) consumes
// the same presolved form, so their optima are directly comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/conflict/conflict_graph.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/support/units.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::core {

/// Raw inputs: one conflict graph node per memory object.
struct CasaProblem {
  const conflict::ConflictGraph* graph = nullptr;
  std::vector<Bytes> sizes;  ///< unpadded object sizes (NOPs stripped)
  Bytes capacity = 0;        ///< scratchpad bytes
  Energy e_cache_hit = 0;
  Energy e_cache_miss = 0;
  Energy e_spm = 0;

  /// Convenience: assemble from the pipeline products.
  static CasaProblem from(const traceopt::TraceProgram& tp,
                          const conflict::ConflictGraph& graph,
                          const energy::EnergyTable& energies, Bytes capacity);

  void validate() const;
};

/// Presolved form. Item k corresponds to free object `object_of[k]`.
/// Placing item k on the scratchpad saves `value[k]` plus, for every
/// incident edge, the edge's `weight` if the edge is not already covered by
/// the other endpoint.
struct SavingsProblem {
  struct Edge {
    std::uint32_t a = 0;  ///< item index
    std::uint32_t b = 0;  ///< item index, a != b
    Energy weight = 0;    ///< (m_ab + m_ba) * (E_miss - E_hit)
  };

  std::vector<MemoryObjectId> object_of;  ///< item -> object
  std::vector<Energy> value;              ///< linear saving per item
  std::vector<Bytes> weight;              ///< size per item
  std::vector<Edge> edges;
  Bytes capacity = 0;

  /// Energy of the all-cached assignment as predicted by the paper's model
  /// (constant + every l_i = 1 term + every conflict term); savings subtract
  /// from this.
  Energy all_cached_energy = 0;

  /// Model-predicted total energy for a chosen item set (bit per item).
  Energy energy_for(const std::vector<bool>& chosen) const;

  /// Total saving for a chosen item set.
  Energy saving_for(const std::vector<bool>& chosen) const;

  std::size_t item_count() const { return value.size(); }
};

/// Runs the presolve described above.
SavingsProblem presolve(const CasaProblem& p);

/// Expands a per-item choice vector back to a per-object scratchpad mask.
std::vector<bool> expand_choice(const CasaProblem& p, const SavingsProblem& sp,
                                const std::vector<bool>& chosen);

}  // namespace casa::core

#include "casa/core/greedy.hpp"

#include <vector>

namespace casa::core {

GreedyResult solve_greedy(const SavingsProblem& sp) {
  const std::size_t n = sp.item_count();
  std::vector<std::vector<std::uint32_t>> incident(n);
  for (std::size_t e = 0; e < sp.edges.size(); ++e) {
    incident[sp.edges[e].a].push_back(static_cast<std::uint32_t>(e));
    incident[sp.edges[e].b].push_back(static_cast<std::uint32_t>(e));
  }

  std::vector<bool> chosen(n, false);
  std::vector<std::uint8_t> covered(sp.edges.size(), 0);
  Bytes cap = sp.capacity;

  for (;;) {
    int best = -1;
    double best_density = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (chosen[k] || sp.weight[k] > cap) continue;
      Energy marginal = sp.value[k];
      for (const std::uint32_t e : incident[k]) {
        if (!covered[e]) marginal += sp.edges[e].weight;
      }
      const double density =
          marginal / static_cast<double>(sp.weight[k]);
      if (marginal > 0 && density > best_density) {
        best_density = density;
        best = static_cast<int>(k);
      }
    }
    if (best < 0) break;
    const auto k = static_cast<std::size_t>(best);
    chosen[k] = true;
    cap -= sp.weight[k];
    for (const std::uint32_t e : incident[k]) covered[e] = 1;
  }

  GreedyResult r;
  r.saving = sp.saving_for(chosen);
  r.chosen = std::move(chosen);
  return r;
}

}  // namespace casa::core

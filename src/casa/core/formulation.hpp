// The paper's ILP formulation (eq. 12-17) over the presolved problem.
//
// Two linearizations of L(x_i,x_j) = l_i * l_j are provided:
//  * kPaper — constraints (13)-(15) with *binary* L. (With continuous L the
//    paper's constraint set admits L = 1/2 at l_i = l_j = 1, so integrality
//    of L is required for correctness; see DESIGN.md.)
//  * kTight — the standard linearization for minimization with positive
//    coefficients: continuous L >= l_i + l_j - 1, L >= 0. Fewer integer
//    variables, identical integer optima.
#pragma once

#include <vector>

#include "casa/core/problem.hpp"
#include "casa/ilp/model.hpp"

namespace casa::core {

enum class Linearization { kPaper, kTight };

struct CasaModel {
  ilp::Model model;
  std::vector<VarId> l_vars;  ///< per item: l = 1 cached, l = 0 scratchpad
  std::vector<VarId> L_vars;  ///< per presolved edge
  /// predicted energy = objective_offset + ILP objective value.
  Energy objective_offset = 0;
};

/// Builds the ILP for `sp`.
CasaModel build_casa_model(const SavingsProblem& sp, Linearization lin);

/// Extracts the per-item scratchpad choice from a solved model.
std::vector<bool> choice_from_solution(const CasaModel& cm,
                                       const ilp::Solution& sol);

/// Lifts a per-item scratchpad choice into a full model assignment
/// (l_k = 0 when chosen, 1 when cached; L_p = l_a * l_b), sized
/// cm.model.var_count(). Any capacity-feasible choice yields a feasible
/// point of either linearization, so the result is a sound warm-start hint
/// for ilp::BranchAndBound.
std::vector<double> warm_assignment(const CasaModel& cm,
                                    const SavingsProblem& sp,
                                    const std::vector<bool>& chosen);

}  // namespace casa::core

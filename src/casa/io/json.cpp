#include "casa/io/json.hpp"

#include <cctype>

#include "casa/support/error.hpp"

namespace casa::io {

std::uint64_t to_u64(const std::string& s) {
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    throw PreconditionError("serialized data: expected integer, got: " + s);
  }
}

double to_double(const std::string& s) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw PreconditionError("serialized data: expected number, got: " + s);
  }
}

JsonValue JsonReader::parse() {
  JsonValue v = value();
  skip_ws();
  CASA_CHECK(pos_ == text_.size(), "metrics json: trailing data");
  return v;
}

void JsonReader::skip_ws() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

char JsonReader::peek() {
  skip_ws();
  CASA_CHECK(pos_ < text_.size(), "metrics json: unexpected end of input");
  return text_[pos_];
}

void JsonReader::expect(char c) {
  CASA_CHECK(peek() == c, std::string("metrics json: expected '") + c +
                              "' at offset " + std::to_string(pos_));
  ++pos_;
}

JsonValue JsonReader::value() {
  const char c = peek();
  if (c == '{') return object();
  if (c == '[') return array();
  if (c == '"') {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.str = string();
    return v;
  }
  return number();
}

JsonValue JsonReader::object() {
  expect('{');
  JsonValue v;
  v.kind = JsonValue::Kind::kObject;
  if (peek() == '}') {
    ++pos_;
    return v;
  }
  for (;;) {
    std::string key = string();
    expect(':');
    v.members.emplace_back(std::move(key), value());
    if (peek() == ',') {
      ++pos_;
      continue;
    }
    expect('}');
    return v;
  }
}

JsonValue JsonReader::array() {
  expect('[');
  JsonValue v;
  v.kind = JsonValue::Kind::kArray;
  if (peek() == ']') {
    ++pos_;
    return v;
  }
  for (;;) {
    v.items.push_back(value());
    if (peek() == ',') {
      ++pos_;
      continue;
    }
    expect(']');
    return v;
  }
}

std::string JsonReader::string() {
  expect('"');
  std::string out;
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c == '\\') {
      CASA_CHECK(pos_ < text_.size(), "metrics json: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'u': {
          CASA_CHECK(pos_ + 4 <= text_.size(),
                     "metrics json: truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          c = static_cast<char>(std::stoul(hex, nullptr, 16));
          break;
        }
        default:
          CASA_CHECK(false, std::string("metrics json: bad escape \\") + e);
      }
    }
    out += c;
  }
  expect('"');
  return out;
}

JsonValue JsonReader::number() {
  const std::size_t start = pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
          text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
  }
  CASA_CHECK(pos_ > start, "metrics json: expected a value at offset " +
                               std::to_string(start));
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  v.str = text_.substr(start, pos_ - start);
  return v;
}

const JsonValue& member(const JsonValue& obj, const std::string& key) {
  CASA_CHECK(obj.kind == JsonValue::Kind::kObject,
             "metrics json: expected an object around '" + key + "'");
  const JsonValue* v = obj.find(key);
  CASA_CHECK(v != nullptr, "metrics json: missing key '" + key + "'");
  return *v;
}

double num(const JsonValue& v, const std::string& what) {
  CASA_CHECK(v.kind == JsonValue::Kind::kNumber,
             "metrics json: '" + what + "' must be a number");
  return to_double(v.str);
}

}  // namespace casa::io

// `casa-result v1` — one evaluated Workbench job and its Outcome as a
// self-describing JSON artifact. This is the persistence format of the
// casa_serve result cache: a hit streams the stored bytes back verbatim,
// so every field is encoded exactly (raw integers, obs::format_double for
// doubles, 0/1 for booleans) and write → read → write is byte-identical.
#include <istream>
#include <ostream>
#include <sstream>

#include "casa/cachesim/cache.hpp"
#include "casa/core/allocator.hpp"
#include "casa/core/formulation.hpp"
#include "casa/ilp/model.hpp"
#include "casa/io/json.hpp"
#include "casa/io/serialize.hpp"
#include "casa/obs/build_info.hpp"
#include "casa/obs/export.hpp"
#include "casa/support/error.hpp"

namespace casa::io {

namespace {

const char* lin_to_string(core::Linearization l) {
  return l == core::Linearization::kPaper ? "paper" : "tight";
}

core::Linearization lin_from(const std::string& s) {
  if (s == "paper") return core::Linearization::kPaper;
  if (s == "tight") return core::Linearization::kTight;
  throw PreconditionError("result json: bad linearization '" + s + "'");
}

/// Reverse of the repo's to_string overloads: match against every
/// enumerator's spelling, reject anything else.
template <typename E>
E enum_from(const std::string& s, std::initializer_list<E> values,
            const char* what) {
  for (const E v : values) {
    if (s == to_string(v)) return v;
  }
  throw PreconditionError(std::string("result json: bad ") + what + " '" +
                          s + "'");
}

std::uint64_t u64_of(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  CASA_CHECK(v.kind == JsonValue::Kind::kNumber,
             "result json: '" + key + "' must be a number");
  return to_u64(v.str);
}

bool bool_of(const JsonValue& obj, const std::string& key) {
  const std::uint64_t v = u64_of(obj, key);
  CASA_CHECK(v <= 1, "result json: '" + key + "' must be 0 or 1");
  return v == 1;
}

std::string str_of(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  CASA_CHECK(v.kind == JsonValue::Kind::kString,
             "result json: '" + key + "' must be a string");
  return v.str;
}

void write_sim(std::ostream& os, const memsim::SimReport& sim,
               const char* indent) {
  const memsim::SimCounters& c = sim.counters;
  os << indent << "\"sim\": {\n"
     << indent << "  \"total_fetches\": " << c.total_fetches << ",\n"
     << indent << "  \"spm_accesses\": " << c.spm_accesses << ",\n"
     << indent << "  \"lc_accesses\": " << c.lc_accesses << ",\n"
     << indent << "  \"cache_accesses\": " << c.cache_accesses << ",\n"
     << indent << "  \"cache_hits\": " << c.cache_hits << ",\n"
     << indent << "  \"cache_misses\": " << c.cache_misses << ",\n"
     << indent << "  \"cache_evictions\": " << c.cache_evictions << ",\n"
     << indent << "  \"mainmem_words\": " << c.mainmem_words << ",\n"
     << indent << "  \"cycles\": " << c.cycles << ",\n"
     << indent << "  \"total_energy\": " << obs::format_double(sim.total_energy)
     << ",\n"
     << indent << "  \"spm_energy\": " << obs::format_double(sim.spm_energy)
     << ",\n"
     << indent << "  \"cache_energy\": " << obs::format_double(sim.cache_energy)
     << ",\n"
     << indent << "  \"lc_energy\": " << obs::format_double(sim.lc_energy)
     << "\n"
     << indent << "}";
}

memsim::SimReport read_sim(const JsonValue& v) {
  memsim::SimReport sim;
  memsim::SimCounters& c = sim.counters;
  c.total_fetches = u64_of(v, "total_fetches");
  c.spm_accesses = u64_of(v, "spm_accesses");
  c.lc_accesses = u64_of(v, "lc_accesses");
  c.cache_accesses = u64_of(v, "cache_accesses");
  c.cache_hits = u64_of(v, "cache_hits");
  c.cache_misses = u64_of(v, "cache_misses");
  c.cache_evictions = u64_of(v, "cache_evictions");
  c.mainmem_words = u64_of(v, "mainmem_words");
  c.cycles = u64_of(v, "cycles");
  sim.total_energy = num(member(v, "total_energy"), "total_energy");
  sim.spm_energy = num(member(v, "spm_energy"), "spm_energy");
  sim.cache_energy = num(member(v, "cache_energy"), "cache_energy");
  sim.lc_energy = num(member(v, "lc_energy"), "lc_energy");
  return sim;
}

void write_alloc(std::ostream& os, const core::AllocationResult& a) {
  os << "      \"alloc\": {\n        \"on_spm\": [";
  for (std::size_t i = 0; i < a.on_spm.size(); ++i) {
    os << (i ? "," : "") << (a.on_spm[i] ? 1 : 0);
  }
  const ilp::SolveStats& s = a.solver_stats;
  os << "],\n"
     << "        \"used_bytes\": " << a.used_bytes << ",\n"
     << "        \"predicted_energy\": "
     << obs::format_double(a.predicted_energy) << ",\n"
     << "        \"predicted_saving\": "
     << obs::format_double(a.predicted_saving) << ",\n"
     << "        \"solver_nodes\": " << a.solver_nodes << ",\n"
     << "        \"exact\": " << (a.exact ? 1 : 0) << ",\n"
     << "        \"solver_status\": \"" << to_string(a.solver_status)
     << "\",\n"
     << "        \"solve_seconds\": " << obs::format_double(a.solve_seconds)
     << ",\n"
     << "        \"engine_used\": \"" << to_string(a.engine_used) << "\",\n"
     << "        \"presolved_items\": " << a.presolved_items << ",\n"
     << "        \"presolved_edges\": " << a.presolved_edges << ",\n"
     << "        \"solver_stats\": {\n"
     << "          \"nodes\": " << s.nodes << ",\n"
     << "          \"max_depth\": " << s.max_depth << ",\n"
     << "          \"incumbent_updates\": " << s.incumbent_updates << ",\n"
     << "          \"bound_prunes\": " << s.bound_prunes << ",\n"
     << "          \"infeasible_prunes\": " << s.infeasible_prunes << ",\n"
     << "          \"simplex_iterations\": " << s.simplex_iterations << ",\n"
     << "          \"presolve_fixed\": " << s.presolve_fixed << ",\n"
     << "          \"lp_limit_retries\": " << s.lp_limit_retries << ",\n"
     << "          \"subtrees\": " << s.subtrees << ",\n"
     << "          \"rc_fixed\": " << s.rc_fixed << ",\n"
     << "          \"warm_start_used\": " << (s.warm_start_used ? 1 : 0)
     << ",\n"
     << "          \"root_gap\": " << obs::format_double(s.root_gap) << "\n"
     << "        }\n      }";
}

core::AllocationResult read_alloc(const JsonValue& v) {
  core::AllocationResult a;
  const JsonValue& mask = member(v, "on_spm");
  CASA_CHECK(mask.kind == JsonValue::Kind::kArray,
             "result json: 'on_spm' must be an array");
  for (const JsonValue& bit : mask.items) {
    CASA_CHECK(bit.kind == JsonValue::Kind::kNumber &&
                   (bit.str == "0" || bit.str == "1"),
               "result json: 'on_spm' entries must be 0 or 1");
    a.on_spm.push_back(bit.str == "1");
  }
  a.used_bytes = u64_of(v, "used_bytes");
  a.predicted_energy = num(member(v, "predicted_energy"), "predicted_energy");
  a.predicted_saving = num(member(v, "predicted_saving"), "predicted_saving");
  a.solver_nodes = u64_of(v, "solver_nodes");
  a.exact = bool_of(v, "exact");
  a.solver_status = enum_from(
      str_of(v, "solver_status"),
      {ilp::SolveStatus::kOptimal, ilp::SolveStatus::kInfeasible,
       ilp::SolveStatus::kUnbounded, ilp::SolveStatus::kLimit},
      "solver_status");
  a.solve_seconds = num(member(v, "solve_seconds"), "solve_seconds");
  a.engine_used = enum_from(
      str_of(v, "engine_used"),
      {core::CasaEngine::kAuto, core::CasaEngine::kSpecializedBnB,
       core::CasaEngine::kGenericIlp, core::CasaEngine::kGreedy},
      "engine_used");
  a.presolved_items = u64_of(v, "presolved_items");
  a.presolved_edges = u64_of(v, "presolved_edges");
  const JsonValue& sv = member(v, "solver_stats");
  ilp::SolveStats& s = a.solver_stats;
  s.nodes = u64_of(sv, "nodes");
  s.max_depth = u64_of(sv, "max_depth");
  s.incumbent_updates = u64_of(sv, "incumbent_updates");
  s.bound_prunes = u64_of(sv, "bound_prunes");
  s.infeasible_prunes = u64_of(sv, "infeasible_prunes");
  s.simplex_iterations = u64_of(sv, "simplex_iterations");
  s.presolve_fixed = u64_of(sv, "presolve_fixed");
  s.lp_limit_retries = u64_of(sv, "lp_limit_retries");
  s.subtrees = u64_of(sv, "subtrees");
  s.rc_fixed = u64_of(sv, "rc_fixed");
  s.warm_start_used = bool_of(sv, "warm_start_used");
  s.root_gap = num(member(sv, "root_gap"), "root_gap");
  return a;
}

}  // namespace

void write_result_json(std::ostream& os, const report::Workbench::Job& job,
                       const report::JobResult& result,
                       std::string_view workload, std::string_view tool) {
  CASA_CHECK(result.ok(),
             "result json: only successful results are persisted");
  const obs::BuildInfo& info = obs::build_info();
  const report::Outcome& out = result.outcome;
  os << "{\n  \"schema\": \"casa-result v1\",\n  \"run\": {\n"
     << "    \"tool\": \"" << obs::json_escape(tool) << "\",\n"
     << "    \"git\": \"" << obs::json_escape(info.git_describe) << "\",\n"
     << "    \"build_type\": \"" << obs::json_escape(info.build_type)
     << "\",\n"
     << "    \"compiler\": \"" << obs::json_escape(info.compiler) << "\"\n"
     << "  },\n"
     << "  \"workload\": \"" << obs::json_escape(workload) << "\",\n"
     << "  \"job\": {\n"
     << "    \"kind\": \"" << to_string(job.kind) << "\",\n"
     << "    \"cache\": { \"size\": " << job.cache.size
     << ", \"line_size\": " << job.cache.line_size
     << ", \"associativity\": " << job.cache.associativity
     << ", \"policy\": \"" << to_string(job.cache.policy) << "\" },\n"
     << "    \"size\": " << job.size << ",\n"
     << "    \"max_regions\": " << job.max_regions << ",\n"
     << "    \"casa\": {\n"
     << "      \"engine\": \"" << to_string(job.casa.engine) << "\",\n"
     << "      \"linearization\": \"" << lin_to_string(job.casa.linearization)
     << "\",\n"
     << "      \"generic_ilp_max_edges\": " << job.casa.generic_ilp_max_edges
     << ",\n"
     << "      \"max_nodes\": " << job.casa.max_nodes << ",\n"
     << "      \"ilp_threads\": " << job.casa.ilp_threads << ",\n"
     << "      \"ilp_subtree_depth\": " << job.casa.ilp_subtree_depth << ",\n"
     << "      \"ilp_warm_start\": " << (job.casa.ilp_warm_start ? 1 : 0)
     << ",\n"
     << "      \"ilp_presolve\": " << (job.casa.ilp_presolve ? 1 : 0) << "\n"
     << "    }\n  },\n"
     << "  \"result\": {\n"
     << "    \"status\": \"" << to_string(result.status) << "\",\n"
     << "    \"attempts\": " << result.attempts << ",\n"
     << "    \"outcome\": {\n"
     << "      \"flow\": \"" << to_string(out.flow()) << "\",\n"
     << "      \"object_count\": " << out.object_count << ",\n"
     << "      \"spm_used\": " << out.spm_used << ",\n";
  write_sim(os, out.sim, "      ");
  if (out.flow() == report::FlowKind::kCasa) {
    os << ",\n      \"conflict_edges\": " << out.conflict_edges() << ",\n";
    write_alloc(os, out.alloc());
  } else if (out.flow() == report::FlowKind::kLoopCache) {
    os << ",\n      \"lc_regions\": " << out.lc_regions();
  }
  os << "\n    }\n  }\n}\n";
}

LoadedResult read_result_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const JsonValue root = JsonReader(std::move(buf).str()).parse();

  const JsonValue& schema = member(root, "schema");
  CASA_CHECK(schema.kind == JsonValue::Kind::kString &&
                 schema.str == "casa-result v1",
             "result json: unsupported schema '" + schema.str + "'");
  const JsonValue& run = member(root, "run");
  for (const char* key : {"tool", "git", "build_type", "compiler"}) {
    str_of(run, key);
  }

  LoadedResult loaded;
  loaded.workload = str_of(root, "workload");

  using FlowKind = report::FlowKind;
  const std::initializer_list<FlowKind> kFlows = {
      FlowKind::kCasa, FlowKind::kSteinke, FlowKind::kLoopCache,
      FlowKind::kCacheOnly};
  const JsonValue& jv = member(root, "job");
  report::Workbench::Job& job = loaded.job;
  job.kind = enum_from(str_of(jv, "kind"), kFlows, "job kind");
  const JsonValue& cv = member(jv, "cache");
  job.cache.size = u64_of(cv, "size");
  job.cache.line_size = u64_of(cv, "line_size");
  job.cache.associativity = static_cast<unsigned>(u64_of(cv, "associativity"));
  job.cache.policy = enum_from(
      str_of(cv, "policy"),
      {cachesim::ReplacementPolicy::kLru, cachesim::ReplacementPolicy::kFifo,
       cachesim::ReplacementPolicy::kRoundRobin,
       cachesim::ReplacementPolicy::kRandom},
      "cache policy");
  job.size = u64_of(jv, "size");
  job.max_regions = static_cast<unsigned>(u64_of(jv, "max_regions"));
  const JsonValue& ov = member(jv, "casa");
  job.casa.engine = enum_from(
      str_of(ov, "engine"),
      {core::CasaEngine::kAuto, core::CasaEngine::kSpecializedBnB,
       core::CasaEngine::kGenericIlp, core::CasaEngine::kGreedy},
      "engine");
  job.casa.linearization = lin_from(str_of(ov, "linearization"));
  job.casa.generic_ilp_max_edges = u64_of(ov, "generic_ilp_max_edges");
  job.casa.max_nodes = u64_of(ov, "max_nodes");
  job.casa.ilp_threads = static_cast<unsigned>(u64_of(ov, "ilp_threads"));
  job.casa.ilp_subtree_depth =
      static_cast<unsigned>(u64_of(ov, "ilp_subtree_depth"));
  job.casa.ilp_warm_start = bool_of(ov, "ilp_warm_start");
  job.casa.ilp_presolve = bool_of(ov, "ilp_presolve");

  const JsonValue& rv = member(root, "result");
  report::JobResult& result = loaded.result;
  const std::string status = str_of(rv, "status");
  if (status == "ok") {
    result.status = report::JobStatus::kOk;
  } else if (status == "retried_ok") {
    result.status = report::JobStatus::kRetriedOk;
  } else {
    CASA_CHECK(false, "result json: bad status '" + status + "'");
  }
  result.attempts = static_cast<unsigned>(u64_of(rv, "attempts"));

  const JsonValue& outv = member(rv, "outcome");
  const FlowKind flow = enum_from(str_of(outv, "flow"), kFlows, "flow");
  CASA_CHECK(flow == job.kind,
             "result json: outcome flow contradicts the job kind");
  report::Outcome out(flow);
  out.object_count = u64_of(outv, "object_count");
  out.spm_used = u64_of(outv, "spm_used");
  out.sim = read_sim(member(outv, "sim"));
  if (flow == FlowKind::kCasa) {
    out.set_conflict_edges(u64_of(outv, "conflict_edges"));
    out.set_alloc(read_alloc(member(outv, "alloc")));
  } else if (flow == FlowKind::kLoopCache) {
    out.set_lc_regions(static_cast<unsigned>(u64_of(outv, "lc_regions")));
  }
  result.outcome = std::move(out);
  return loaded;
}

}  // namespace casa::io

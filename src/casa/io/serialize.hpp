// Text serialization of the allocator's inputs and outputs.
//
// Enables the split workflow real deployments use: profile on the target
// (or a big simulation box), ship the conflict graph + problem description
// as a small text artifact, solve and inspect anywhere. The format is
// line-based, versioned, and deliberately human-readable:
//
//   casa-problem v1
//   capacity 512
//   energy hit 0.793 miss 42.88 spm 0.211
//   nodes 3
//   node 0 size 64 fetches 1000 cold 2 hits 900
//   edge 0 1 49
//   end
//
// Loading validates structure and re-establishes every invariant through
// the normal constructors (a malformed file throws PreconditionError, it
// cannot produce a half-built object).
#pragma once

#include <iosfwd>
#include <memory>

#include "casa/conflict/conflict_graph.hpp"
#include "casa/core/problem.hpp"
#include "casa/obs/export.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/report/workbench.hpp"

namespace casa::io {

/// Writes graph-only data (`casa-conflict-graph v1`).
void write_conflict_graph(std::ostream& os,
                          const conflict::ConflictGraph& graph);

/// Reads a graph written by write_conflict_graph.
conflict::ConflictGraph read_conflict_graph(std::istream& is);

/// A loaded problem owns its graph (CasaProblem only references it).
struct LoadedProblem {
  std::unique_ptr<conflict::ConflictGraph> graph;
  core::CasaProblem problem;
};

/// Writes the complete allocator input (`casa-problem v1`).
void write_problem(std::ostream& os, const core::CasaProblem& problem);

/// Reads a problem written by write_problem.
LoadedProblem read_problem(std::istream& is);

/// Writes an allocation mask (`casa-allocation v1`).
void write_allocation(std::ostream& os, const std::vector<bool>& on_spm);

/// Reads an allocation written by write_allocation.
std::vector<bool> read_allocation(std::istream& is);

/// Writes the `casa-metrics v1` JSON artifact (delegates to the obs
/// exporter; listed here so telemetry rides the same save/load surface as
/// problems and allocations).
void write_metrics_json(std::ostream& os, const obs::MetricsSnapshot& snap,
                        const obs::ArtifactOptions& opt = {});

/// Reads an artifact written by write_metrics_json back into a snapshot.
/// Restores config/phases/counters/gauges/distributions bit-for-bit; run
/// provenance and the per-task array have no snapshot representation and
/// are validated but dropped.
obs::MetricsSnapshot read_metrics_json(std::istream& is);

/// Writes the `casa-trace v1` Chrome Trace Format artifact (delegates to
/// the obs exporter, same pattern as write_metrics_json).
void write_trace_json(std::ostream& os, const obs::TraceData& data,
                      std::string_view tool = "casa");

/// Reads an artifact written by write_trace_json back into a TraceData.
/// Tracks, events (nanosecond timestamps — the microsecond `ts` fields
/// carry three decimals) and the drop count restore bit-for-bit; run
/// provenance is validated but dropped. Malformed input (wrong schema,
/// unknown ph, missing fields, negative timestamps, unpaired flow ids)
/// throws PreconditionError.
obs::TraceData read_trace_json(std::istream& is);

/// A loaded `casa-result v1` artifact: the job that was evaluated, its
/// result, and the workload the Workbench was built from.
struct LoadedResult {
  report::Workbench::Job job;
  report::JobResult result;
  std::string workload;
};

/// Writes the `casa-result v1` JSON artifact: one evaluated job with its
/// Outcome, plus run provenance (obs::build_info) and the workload name.
/// This is the persistence format of the casa_serve result cache, so the
/// encoding is exact: integers are emitted raw, doubles through
/// obs::format_double (shortest round-trip form), booleans as 0/1 — a
/// write/read/write cycle is byte-identical and the reloaded Outcome
/// compares equal to the original under Outcome::operator==. Requires
/// result.ok(); failed jobs are never persisted.
void write_result_json(std::ostream& os, const report::Workbench::Job& job,
                       const report::JobResult& result,
                       std::string_view workload,
                       std::string_view tool = "casa");

/// Reads an artifact written by write_result_json. Malformed or truncated
/// input (wrong schema, missing fields, unknown enum spellings, a flow tag
/// that contradicts the job kind) throws PreconditionError rather than
/// producing a half-built result.
LoadedResult read_result_json(std::istream& is);

}  // namespace casa::io

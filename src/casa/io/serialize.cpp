#include "casa/io/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "casa/support/error.hpp"

namespace casa::io {

namespace {

/// Reads one non-empty line; empty result signals end of stream.
std::string next_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) return line;
  }
  return {};
}

/// Tokenizes a line and checks the leading keyword.
std::vector<std::string> expect_tokens(const std::string& line,
                                       const std::string& keyword,
                                       std::size_t count) {
  std::istringstream ss(line);
  std::vector<std::string> tokens;
  std::string t;
  while (ss >> t) tokens.push_back(t);
  CASA_CHECK(!tokens.empty() && tokens[0] == keyword,
             "serialized data: expected '" + keyword + "', got: " + line);
  CASA_CHECK(tokens.size() == count,
             "serialized data: wrong field count in: " + line);
  return tokens;
}

std::uint64_t to_u64(const std::string& s) {
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    throw PreconditionError("serialized data: expected integer, got: " + s);
  }
}

double to_double(const std::string& s) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw PreconditionError("serialized data: expected number, got: " + s);
  }
}

struct GraphData {
  std::vector<std::uint64_t> fetches, cold, hits;
  std::vector<conflict::Edge> edges;
};

void write_graph_body(std::ostream& os, const conflict::ConflictGraph& g) {
  os << "nodes " << g.node_count() << "\n";
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    os << "node " << i << " fetches " << g.fetches(mo) << " cold "
       << g.cold_misses(mo) << " hits " << g.hits(mo) << "\n";
  }
  for (const conflict::Edge& e : g.edges()) {
    os << "edge " << e.from.value() << " " << e.to.value() << " " << e.misses
       << "\n";
  }
}

/// Parses `nodes` + `node`/`edge` lines until (and consuming) `end`.
GraphData read_graph_body(std::istream& is) {
  GraphData d;
  const auto header = expect_tokens(next_line(is), "nodes", 2);
  const std::uint64_t n = to_u64(header[1]);
  d.fetches.assign(n, 0);
  d.cold.assign(n, 0);
  d.hits.assign(n, 0);

  std::size_t nodes_seen = 0;
  for (;;) {
    const std::string line = next_line(is);
    CASA_CHECK(!line.empty(), "serialized data: missing 'end'");
    if (line == "end") break;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "node") {
      const auto t = expect_tokens(line, "node", 8);
      const std::uint64_t idx = to_u64(t[1]);
      CASA_CHECK(idx < n, "serialized data: node index out of range");
      CASA_CHECK(t[2] == "fetches" && t[4] == "cold" && t[6] == "hits",
                 "serialized data: malformed node line: " + line);
      d.fetches[idx] = to_u64(t[3]);
      d.cold[idx] = to_u64(t[5]);
      d.hits[idx] = to_u64(t[7]);
      ++nodes_seen;
    } else if (kind == "edge") {
      const auto t = expect_tokens(line, "edge", 4);
      const std::uint64_t from = to_u64(t[1]);
      const std::uint64_t to = to_u64(t[2]);
      CASA_CHECK(from < n && to < n,
                 "serialized data: edge endpoint out of range");
      d.edges.push_back(
          conflict::Edge{MemoryObjectId(static_cast<std::uint32_t>(from)),
                         MemoryObjectId(static_cast<std::uint32_t>(to)),
                         to_u64(t[3])});
    } else {
      CASA_CHECK(false, "serialized data: unexpected line: " + line);
    }
  }
  CASA_CHECK(nodes_seen == n, "serialized data: node count mismatch");
  return d;
}

conflict::ConflictGraph graph_from(GraphData d) {
  const std::size_t n = d.fetches.size();
  return conflict::ConflictGraph(n, std::move(d.fetches), std::move(d.cold),
                                 std::move(d.hits), std::move(d.edges));
}

}  // namespace

void write_conflict_graph(std::ostream& os,
                          const conflict::ConflictGraph& graph) {
  os << "casa-conflict-graph v1\n";
  write_graph_body(os, graph);
  os << "end\n";
}

conflict::ConflictGraph read_conflict_graph(std::istream& is) {
  const std::string header = next_line(is);
  CASA_CHECK(header == "casa-conflict-graph v1",
             "serialized data: bad header: " + header);
  return graph_from(read_graph_body(is));
}

void write_problem(std::ostream& os, const core::CasaProblem& problem) {
  problem.validate();
  os << "casa-problem v1\n";
  os << "capacity " << problem.capacity << "\n";
  os << "energy hit " << problem.e_cache_hit << " miss "
     << problem.e_cache_miss << " spm " << problem.e_spm << "\n";
  os << "sizes";
  for (const Bytes s : problem.sizes) os << " " << s;
  os << "\n";
  write_graph_body(os, *problem.graph);
  os << "end\n";
}

LoadedProblem read_problem(std::istream& is) {
  const std::string header = next_line(is);
  CASA_CHECK(header == "casa-problem v1",
             "serialized data: bad header: " + header);

  const auto cap = expect_tokens(next_line(is), "capacity", 2);
  const auto energy_line = next_line(is);
  const auto e = expect_tokens(energy_line, "energy", 7);
  CASA_CHECK(e[1] == "hit" && e[3] == "miss" && e[5] == "spm",
             "serialized data: malformed energy line: " + energy_line);

  const std::string sizes_line = next_line(is);
  std::istringstream ss(sizes_line);
  std::string kw;
  ss >> kw;
  CASA_CHECK(kw == "sizes", "serialized data: expected sizes line");
  std::vector<Bytes> sizes;
  std::string tok;
  while (ss >> tok) sizes.push_back(to_u64(tok));

  LoadedProblem loaded;
  loaded.graph = std::make_unique<conflict::ConflictGraph>(
      graph_from(read_graph_body(is)));
  loaded.problem.graph = loaded.graph.get();
  loaded.problem.sizes = std::move(sizes);
  loaded.problem.capacity = to_u64(cap[1]);
  loaded.problem.e_cache_hit = to_double(e[2]);
  loaded.problem.e_cache_miss = to_double(e[4]);
  loaded.problem.e_spm = to_double(e[6]);
  loaded.problem.validate();
  return loaded;
}

void write_allocation(std::ostream& os, const std::vector<bool>& on_spm) {
  os << "casa-allocation v1\n";
  os << "objects " << on_spm.size() << "\n";
  os << "spm";
  for (std::size_t i = 0; i < on_spm.size(); ++i) {
    if (on_spm[i]) os << " " << i;
  }
  os << "\nend\n";
}

std::vector<bool> read_allocation(std::istream& is) {
  const std::string header = next_line(is);
  CASA_CHECK(header == "casa-allocation v1",
             "serialized data: bad header: " + header);
  const auto n_line = expect_tokens(next_line(is), "objects", 2);
  std::vector<bool> on_spm(to_u64(n_line[1]), false);

  const std::string spm_line = next_line(is);
  std::istringstream ss(spm_line);
  std::string kw;
  ss >> kw;
  CASA_CHECK(kw == "spm", "serialized data: expected spm line");
  std::string tok;
  while (ss >> tok) {
    const std::uint64_t idx = to_u64(tok);
    CASA_CHECK(idx < on_spm.size(),
               "serialized data: allocation index out of range");
    on_spm[idx] = true;
  }
  CASA_CHECK(next_line(is) == "end", "serialized data: missing 'end'");
  return on_spm;
}

}  // namespace casa::io

#include "casa/io/serialize.hpp"

#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "casa/io/json.hpp"
#include "casa/support/error.hpp"

namespace casa::io {

namespace {

/// Reads one non-empty line; empty result signals end of stream.
std::string next_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) return line;
  }
  return {};
}

/// Tokenizes a line and checks the leading keyword.
std::vector<std::string> expect_tokens(const std::string& line,
                                       const std::string& keyword,
                                       std::size_t count) {
  std::istringstream ss(line);
  std::vector<std::string> tokens;
  std::string t;
  while (ss >> t) tokens.push_back(t);
  CASA_CHECK(!tokens.empty() && tokens[0] == keyword,
             "serialized data: expected '" + keyword + "', got: " + line);
  CASA_CHECK(tokens.size() == count,
             "serialized data: wrong field count in: " + line);
  return tokens;
}

struct GraphData {
  std::vector<std::uint64_t> fetches, cold, hits;
  std::vector<conflict::Edge> edges;
};

void write_graph_body(std::ostream& os, const conflict::ConflictGraph& g) {
  os << "nodes " << g.node_count() << "\n";
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    os << "node " << i << " fetches " << g.fetches(mo) << " cold "
       << g.cold_misses(mo) << " hits " << g.hits(mo) << "\n";
  }
  for (const conflict::Edge& e : g.edges()) {
    os << "edge " << e.from.value() << " " << e.to.value() << " " << e.misses
       << "\n";
  }
}

/// Parses `nodes` + `node`/`edge` lines until (and consuming) `end`.
GraphData read_graph_body(std::istream& is) {
  GraphData d;
  const auto header = expect_tokens(next_line(is), "nodes", 2);
  const std::uint64_t n = to_u64(header[1]);
  d.fetches.assign(n, 0);
  d.cold.assign(n, 0);
  d.hits.assign(n, 0);

  std::size_t nodes_seen = 0;
  for (;;) {
    const std::string line = next_line(is);
    CASA_CHECK(!line.empty(), "serialized data: missing 'end'");
    if (line == "end") break;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "node") {
      const auto t = expect_tokens(line, "node", 8);
      const std::uint64_t idx = to_u64(t[1]);
      CASA_CHECK(idx < n, "serialized data: node index out of range");
      CASA_CHECK(t[2] == "fetches" && t[4] == "cold" && t[6] == "hits",
                 "serialized data: malformed node line: " + line);
      d.fetches[idx] = to_u64(t[3]);
      d.cold[idx] = to_u64(t[5]);
      d.hits[idx] = to_u64(t[7]);
      ++nodes_seen;
    } else if (kind == "edge") {
      const auto t = expect_tokens(line, "edge", 4);
      const std::uint64_t from = to_u64(t[1]);
      const std::uint64_t to = to_u64(t[2]);
      CASA_CHECK(from < n && to < n,
                 "serialized data: edge endpoint out of range");
      d.edges.push_back(
          conflict::Edge{MemoryObjectId(static_cast<std::uint32_t>(from)),
                         MemoryObjectId(static_cast<std::uint32_t>(to)),
                         to_u64(t[3])});
    } else {
      CASA_CHECK(false, "serialized data: unexpected line: " + line);
    }
  }
  CASA_CHECK(nodes_seen == n, "serialized data: node count mismatch");
  return d;
}

conflict::ConflictGraph graph_from(GraphData d) {
  const std::size_t n = d.fetches.size();
  return conflict::ConflictGraph(n, std::move(d.fetches), std::move(d.cold),
                                 std::move(d.hits), std::move(d.edges));
}

}  // namespace

void write_conflict_graph(std::ostream& os,
                          const conflict::ConflictGraph& graph) {
  os << "casa-conflict-graph v1\n";
  write_graph_body(os, graph);
  os << "end\n";
}

conflict::ConflictGraph read_conflict_graph(std::istream& is) {
  const std::string header = next_line(is);
  CASA_CHECK(header == "casa-conflict-graph v1",
             "serialized data: bad header: " + header);
  return graph_from(read_graph_body(is));
}

void write_problem(std::ostream& os, const core::CasaProblem& problem) {
  problem.validate();
  os << "casa-problem v1\n";
  os << "capacity " << problem.capacity << "\n";
  os << "energy hit " << problem.e_cache_hit << " miss "
     << problem.e_cache_miss << " spm " << problem.e_spm << "\n";
  os << "sizes";
  for (const Bytes s : problem.sizes) os << " " << s;
  os << "\n";
  write_graph_body(os, *problem.graph);
  os << "end\n";
}

LoadedProblem read_problem(std::istream& is) {
  const std::string header = next_line(is);
  CASA_CHECK(header == "casa-problem v1",
             "serialized data: bad header: " + header);

  const auto cap = expect_tokens(next_line(is), "capacity", 2);
  const auto energy_line = next_line(is);
  const auto e = expect_tokens(energy_line, "energy", 7);
  CASA_CHECK(e[1] == "hit" && e[3] == "miss" && e[5] == "spm",
             "serialized data: malformed energy line: " + energy_line);

  const std::string sizes_line = next_line(is);
  std::istringstream ss(sizes_line);
  std::string kw;
  ss >> kw;
  CASA_CHECK(kw == "sizes", "serialized data: expected sizes line");
  std::vector<Bytes> sizes;
  std::string tok;
  while (ss >> tok) sizes.push_back(to_u64(tok));

  LoadedProblem loaded;
  loaded.graph = std::make_unique<conflict::ConflictGraph>(
      graph_from(read_graph_body(is)));
  loaded.problem.graph = loaded.graph.get();
  loaded.problem.sizes = std::move(sizes);
  loaded.problem.capacity = to_u64(cap[1]);
  loaded.problem.e_cache_hit = to_double(e[2]);
  loaded.problem.e_cache_miss = to_double(e[4]);
  loaded.problem.e_spm = to_double(e[6]);
  loaded.problem.validate();
  return loaded;
}

namespace {

obs::DistSummary read_summary(const JsonValue& v, const std::string& name,
                              const std::string& sum_key) {
  obs::DistSummary d;
  d.count = to_u64(member(v, "count").str);
  d.sum = num(member(v, sum_key), name + "." + sum_key);
  d.min = num(member(v, "min"), name + ".min");
  d.max = num(member(v, "max"), name + ".max");
  return d;
}

}  // namespace

void write_allocation(std::ostream& os, const std::vector<bool>& on_spm) {
  os << "casa-allocation v1\n";
  os << "objects " << on_spm.size() << "\n";
  os << "spm";
  for (std::size_t i = 0; i < on_spm.size(); ++i) {
    if (on_spm[i]) os << " " << i;
  }
  os << "\nend\n";
}

std::vector<bool> read_allocation(std::istream& is) {
  const std::string header = next_line(is);
  CASA_CHECK(header == "casa-allocation v1",
             "serialized data: bad header: " + header);
  const auto n_line = expect_tokens(next_line(is), "objects", 2);
  std::vector<bool> on_spm(to_u64(n_line[1]), false);

  const std::string spm_line = next_line(is);
  std::istringstream ss(spm_line);
  std::string kw;
  ss >> kw;
  CASA_CHECK(kw == "spm", "serialized data: expected spm line");
  std::string tok;
  while (ss >> tok) {
    const std::uint64_t idx = to_u64(tok);
    CASA_CHECK(idx < on_spm.size(),
               "serialized data: allocation index out of range");
    on_spm[idx] = true;
  }
  CASA_CHECK(next_line(is) == "end", "serialized data: missing 'end'");
  return on_spm;
}

void write_metrics_json(std::ostream& os, const obs::MetricsSnapshot& snap,
                        const obs::ArtifactOptions& opt) {
  obs::write_artifact_json(os, snap, opt);
}

obs::MetricsSnapshot read_metrics_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const JsonValue root = JsonReader(std::move(buf).str()).parse();

  const JsonValue& schema = member(root, "schema");
  CASA_CHECK(schema.kind == JsonValue::Kind::kString &&
                 schema.str == "casa-metrics v1",
             "metrics json: unsupported schema '" + schema.str + "'");
  member(root, "run");  // provenance must be present, but has no
                        // snapshot representation

  obs::MetricsSnapshot snap;
  for (const auto& [k, v] : member(root, "config").members) {
    CASA_CHECK(v.kind == JsonValue::Kind::kString,
               "metrics json: config values must be strings");
    snap.config[k] = v.str;
  }
  for (const auto& [k, v] : member(root, "phases").members) {
    snap.spans[k] = read_summary(v, k, "seconds");
  }
  for (const auto& [k, v] : member(root, "counters").members) {
    CASA_CHECK(v.kind == JsonValue::Kind::kNumber,
               "metrics json: counter '" + k + "' must be a number");
    snap.counters[k] = to_u64(v.str);
  }
  for (const auto& [k, v] : member(root, "gauges").members) {
    snap.gauges[k] = num(v, k);
  }
  for (const auto& [k, v] : member(root, "distributions").members) {
    snap.distributions[k] = read_summary(v, k, "sum");
  }
  return snap;
}

namespace {

std::uint64_t event_u64(const JsonValue& e, const std::string& key) {
  const JsonValue& v = member(e, key);
  CASA_CHECK(v.kind == JsonValue::Kind::kNumber,
             "trace json: '" + key + "' must be a number");
  return to_u64(v.str);
}

std::string event_str(const JsonValue& e, const std::string& key) {
  const JsonValue& v = member(e, key);
  CASA_CHECK(v.kind == JsonValue::Kind::kString,
             "trace json: '" + key + "' must be a string");
  return v.str;
}

/// Microsecond `ts` token back to nanoseconds. The writer emits exactly
/// three decimals, so the round through double is exact for any trace
/// shorter than ~104 days.
std::uint64_t ts_to_ns(const JsonValue& e) {
  const double micros = num(member(e, "ts"), "ts");
  CASA_CHECK(micros >= 0.0, "trace json: negative ts");
  return static_cast<std::uint64_t>(std::llround(micros * 1000.0));
}

}  // namespace

void write_trace_json(std::ostream& os, const obs::TraceData& data,
                      std::string_view tool) {
  obs::write_trace_json(os, data, tool);
}

obs::TraceData read_trace_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const JsonValue root = JsonReader(std::move(buf).str()).parse();

  const JsonValue& schema = member(root, "schema");
  CASA_CHECK(schema.kind == JsonValue::Kind::kString &&
                 schema.str == "casa-trace v1",
             "trace json: unsupported schema '" + schema.str + "'");
  const JsonValue& run = member(root, "run");
  for (const char* key : {"tool", "git", "build_type", "compiler"}) {
    CASA_CHECK(member(run, key).kind == JsonValue::Kind::kString,
               std::string("trace json: run.") + key + " must be a string");
  }

  obs::TraceData data;
  data.dropped = event_u64(root, "dropped");
  const JsonValue& events = member(root, "traceEvents");
  CASA_CHECK(events.kind == JsonValue::Kind::kArray,
             "trace json: traceEvents must be an array");
  std::map<std::uint64_t, char> flow_sides;  // id -> seen sides ('s'/'f'/'b')
  for (const JsonValue& e : events.items) {
    const std::string name = event_str(e, "name");
    const std::string ph = event_str(e, "ph");
    if (ph == "M") {
      // Metadata: track labels and sort order; process_name is validated
      // by presence of its args.name and otherwise dropped.
      const JsonValue& args = member(e, "args");
      if (name == "thread_name") {
        obs::TraceTrack track;
        track.tid = static_cast<std::uint32_t>(event_u64(e, "tid"));
        track.label = event_str(args, "name");
        data.tracks.push_back(std::move(track));
      } else if (name == "thread_sort_index") {
        const std::uint32_t tid =
            static_cast<std::uint32_t>(event_u64(e, "tid"));
        bool found = false;
        for (obs::TraceTrack& track : data.tracks) {
          if (track.tid == tid) {
            track.worker_index =
                static_cast<int>(event_u64(args, "sort_index")) - 1;
            found = true;
          }
        }
        CASA_CHECK(found,
                   "trace json: thread_sort_index before thread_name for "
                   "tid " + std::to_string(tid));
      } else {
        CASA_CHECK(name == "process_name",
                   "trace json: unknown metadata event '" + name + "'");
        event_str(args, "name");
      }
      continue;
    }
    obs::TraceEvent ev;
    ev.name = name;
    ev.cat = event_str(e, "cat");
    ev.tid = static_cast<std::uint32_t>(event_u64(e, "tid"));
    ev.ts_ns = ts_to_ns(e);
    if (ph == "B") {
      ev.kind = obs::TraceEventKind::kBegin;
    } else if (ph == "E") {
      ev.kind = obs::TraceEventKind::kEnd;
    } else if (ph == "i") {
      ev.kind = obs::TraceEventKind::kInstant;
      ev.value = num(member(member(e, "args"), "value"), name + ".value");
    } else if (ph == "C") {
      ev.kind = obs::TraceEventKind::kCounter;
      ev.value = num(member(member(e, "args"), "value"), name + ".value");
    } else if (ph == "s" || ph == "f") {
      ev.kind = ph == "s" ? obs::TraceEventKind::kFlowBegin
                          : obs::TraceEventKind::kFlowEnd;
      ev.flow_id = event_u64(e, "id");
      CASA_CHECK(ev.flow_id != 0, "trace json: flow id must be nonzero");
      char& sides = flow_sides[ev.flow_id];
      const char side = ph == "s" ? 's' : 'f';
      sides = sides == 0 ? side : (sides != side ? 'b' : sides);
    } else {
      CASA_CHECK(false, "trace json: unknown ph '" + ph + "'");
    }
    data.events.push_back(std::move(ev));
  }
  // Flow tails and heads must pair up — except in a truncated trace, where
  // drop-newest may legitimately have kept one side and lost the other.
  if (data.dropped == 0) {
    for (const auto& [id, sides] : flow_sides) {
      CASA_CHECK(sides == 'b', "trace json: unpaired flow id " +
                                   std::to_string(id));
    }
  }
  return data;
}

}  // namespace casa::io

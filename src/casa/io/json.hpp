// Minimal JSON machinery shared by the io readers (casa-metrics,
// casa-trace, casa-result). One parser, one error style, one exact-number
// convention: numbers keep their raw token so integer counters round-trip
// exactly even past 2^53, and doubles written with obs::format_double
// restore bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace casa::io {

/// Strict integer parse; throws PreconditionError on anything else.
std::uint64_t to_u64(const std::string& s);

/// Strict floating parse; throws PreconditionError on anything else.
double to_double(const std::string& s);

/// Minimal JSON value for the artifact subset (objects, arrays, strings,
/// numbers). Numbers keep their raw token so integer counters round-trip
/// exactly even past 2^53.
struct JsonValue {
  enum class Kind { kString, kNumber, kObject, kArray };
  Kind kind = Kind::kString;
  std::string str;  ///< string payload, or the raw number token
  std::vector<std::pair<std::string, JsonValue>> members;  ///< objects
  std::vector<JsonValue> items;                            ///< arrays

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent parser for exactly what the obs/io writers emit.
/// Not a general JSON reader: no booleans, no null, no nested escapes
/// beyond what obs::json_escape produces. Errors keep the historical
/// "metrics json:" prefix the artifact readers have always thrown.
class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse();

 private:
  void skip_ws();
  char peek();
  void expect(char c);
  JsonValue value();
  JsonValue object();
  JsonValue array();
  std::string string();
  JsonValue number();

  std::string text_;
  std::size_t pos_ = 0;
};

/// Object member access with a uniform missing-key error.
const JsonValue& member(const JsonValue& obj, const std::string& key);

/// Number coercion with a uniform wrong-kind error naming the field.
double num(const JsonValue& v, const std::string& what);

}  // namespace casa::io

// Phase-resolved profiling for scratchpad overlay (paper §7 future work:
// "dynamic copying (overlay) of memory objects on the scratchpad").
//
// The dynamic walk is split into a fixed number of temporal phases; for
// each phase we record per-object fetch counts and the conflict-miss edges
// observed inside it (cache state flows across phase boundaries — a miss is
// charged to the phase in which it occurs). An overlay allocator may then
// give each phase its own scratchpad residency, paying an explicit copy
// cost at phase changes.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::overlay {

/// One merged (undirected) conflict pair within a phase.
struct PhaseEdge {
  std::uint32_t a = 0;  ///< object index
  std::uint32_t b = 0;  ///< object index (a < b)
  std::uint64_t misses = 0;
};

struct Phase {
  std::size_t begin = 0;  ///< walk index, inclusive
  std::size_t end = 0;    ///< walk index, exclusive
  std::vector<std::uint64_t> fetches;  ///< per object
  std::vector<PhaseEdge> edges;        ///< merged conflict pairs
};

class PhaseProfile {
 public:
  PhaseProfile(std::vector<Phase> phases, std::size_t object_count)
      : phases_(std::move(phases)), object_count_(object_count) {}

  const std::vector<Phase>& phases() const { return phases_; }
  std::size_t phase_count() const { return phases_.size(); }
  std::size_t object_count() const { return object_count_; }

  /// Total fetches of object i across all phases.
  std::uint64_t total_fetches(std::size_t i) const;

 private:
  std::vector<Phase> phases_;
  std::size_t object_count_;
};

struct PhaseProfileOptions {
  unsigned phase_count = 4;
  cachesim::CacheConfig cache;
  std::uint64_t seed = 1;
};

/// Profiles `walk` through the cache, bucketing counts into equal-length
/// walk windows.
PhaseProfile build_phase_profile(const traceopt::TraceProgram& tp,
                                 const traceopt::Layout& layout,
                                 const trace::BlockWalk& walk,
                                 const PhaseProfileOptions& opt);

}  // namespace casa::overlay

// Overlay allocation ILP.
//
// Extends the CASA formulation with time: a_{i,p} = 1 places object i on
// the scratchpad during phase p. Per-phase capacity rows repeat eq. (17);
// per-phase conflict terms use the tight linearization (an edge costs its
// misses when both endpoints are cached in that phase); copying an object
// in at a phase boundary pays an explicit per-byte transfer cost
// (main-memory read + scratchpad write per word), captured by transition
// variables t_{i,p} >= a_{i,p} - a_{i,p-1}.
//
// Candidate reduction keeps the ILP small: only the `max_candidates`
// objects with the highest optimistic savings participate; the rest stay
// cached. A greedy per-phase fallback handles arbitrary sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/energy/energy_table.hpp"
#include "casa/overlay/phase_profile.hpp"
#include "casa/support/units.hpp"

namespace casa::overlay {

struct OverlayProblem {
  const PhaseProfile* profile = nullptr;
  std::vector<Bytes> sizes;  ///< unpadded, per object
  Bytes capacity = 0;
  Energy e_cache_hit = 0;
  Energy e_cache_miss = 0;
  Energy e_spm = 0;
  /// Energy to copy one word main memory -> scratchpad.
  Energy e_copy_word = 0;

  void validate() const;

  static OverlayProblem from(const PhaseProfile& profile,
                             const traceopt::TraceProgram& tp,
                             const energy::EnergyTable& energies,
                             Bytes capacity);
};

struct OverlayResult {
  /// residency[p][i]: object i on the scratchpad during phase p.
  std::vector<std::vector<bool>> residency;
  Energy predicted_energy = 0;  ///< model objective incl. copy costs
  Energy copy_energy = 0;       ///< predicted copy traffic share
  std::uint64_t copies = 0;     ///< object copy-ins over the run
  bool exact = true;
};

struct OverlayOptions {
  std::size_t max_candidates = 12;
  std::uint64_t max_nodes = 200000;
  /// The monolithic ILP couples candidates x phases binaries; beyond this
  /// product the solver switches to the beam-DP decomposition (per-phase
  /// exact residencies + dynamic programming over transitions).
  std::size_t ilp_budget = 30;
};

/// Overlay allocation. Small instances (candidates x phases <= ilp_budget)
/// are solved exactly through the generic ILP; larger ones by beam-DP
/// (result.exact = false — optimal per phase and over the generated pool,
/// not globally proven).
OverlayResult allocate_overlay(const OverlayProblem& p,
                               OverlayOptions opt = {});

/// Greedy baseline: solves each phase independently with the static CASA
/// greedy, then keeps an object resident across adjacent phases when that
/// avoids a copy whose cost exceeds the phase saving.
OverlayResult allocate_overlay_greedy(const OverlayProblem& p);

/// Static reference through the same machinery: one residency for all
/// phases (aggregated counts), no copies except the initial load.
OverlayResult allocate_static(const OverlayProblem& p, OverlayOptions opt = {});

}  // namespace casa::overlay

#include "casa/overlay/overlay_ilp.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "casa/core/casa_branch_bound.hpp"
#include "casa/core/greedy.hpp"
#include "casa/core/problem.hpp"
#include "casa/ilp/branch_bound.hpp"
#include "casa/support/error.hpp"

namespace casa::overlay {

void OverlayProblem::validate() const {
  CASA_CHECK(profile != nullptr, "OverlayProblem needs a phase profile");
  CASA_CHECK(sizes.size() == profile->object_count(), "sizes size mismatch");
  CASA_CHECK(e_cache_miss > e_cache_hit, "miss must cost more than hit");
  CASA_CHECK(e_cache_hit > e_spm, "scratchpad must beat the cache");
  CASA_CHECK(e_copy_word > 0, "copy cost must be positive");
}

OverlayProblem OverlayProblem::from(const PhaseProfile& profile,
                                    const traceopt::TraceProgram& tp,
                                    const energy::EnergyTable& energies,
                                    Bytes capacity) {
  OverlayProblem p;
  p.profile = &profile;
  for (const auto& mo : tp.objects()) p.sizes.push_back(mo.raw_size);
  p.capacity = capacity;
  p.e_cache_hit = energies.cache_hit;
  p.e_cache_miss = energies.cache_miss;
  p.e_spm = energies.spm_access;
  // Word copy: read from off-chip memory, write into the scratchpad array.
  p.e_copy_word = energies.mainmem_word + energies.spm_access;
  p.validate();
  return p;
}

namespace {

Energy copy_cost(const OverlayProblem& p, std::size_t i) {
  return static_cast<double>(p.sizes[i] / kWordBytes) * p.e_copy_word;
}

/// Optimistic per-object total saving, used to pick ILP candidates.
std::vector<std::size_t> pick_candidates(const OverlayProblem& p,
                                         std::size_t max_candidates) {
  const PhaseProfile& prof = *p.profile;
  const std::size_t n = prof.object_count();
  const Energy d_hit_sp = p.e_cache_hit - p.e_spm;
  const Energy d_miss_hit = p.e_cache_miss - p.e_cache_hit;

  std::vector<Energy> score(n, 0);
  for (const Phase& ph : prof.phases()) {
    for (std::size_t i = 0; i < n; ++i) {
      score[i] += static_cast<Energy>(ph.fetches[i]) * d_hit_sp;
    }
    for (const PhaseEdge& e : ph.edges) {
      score[e.a] += static_cast<Energy>(e.misses) * d_miss_hit;
      score[e.b] += static_cast<Energy>(e.misses) * d_miss_hit;
    }
  }

  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < n; ++i) {
    if (p.sizes[i] <= p.capacity && score[i] > 0) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&score](std::size_t a, std::size_t b) {
    return score[a] > score[b];
  });
  if (idx.size() > max_candidates) idx.resize(max_candidates);
  return idx;
}

/// Fills result bookkeeping (copies, copy energy) from a residency matrix.
void account_copies(const OverlayProblem& p, OverlayResult& r) {
  r.copies = 0;
  r.copy_energy = 0;
  const std::size_t n = p.profile->object_count();
  for (std::size_t ph = 0; ph < r.residency.size(); ++ph) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool now = r.residency[ph][i];
      const bool before = ph > 0 && r.residency[ph - 1][i];
      if (now && !before) {
        ++r.copies;
        r.copy_energy += copy_cost(p, i);
      }
    }
  }
}

}  // namespace

namespace {

/// Monolithic ILP over candidates x phases (exact on the candidate set).
OverlayResult allocate_overlay_ilp(const OverlayProblem& p,
                                   const std::vector<std::size_t>& cand,
                                   OverlayOptions opt);

/// Beam-DP decomposition: per-phase residency pools (specialized exact
/// solver + greedy + continuations), then DP over phases with copy costs.
OverlayResult allocate_overlay_beam(const OverlayProblem& p,
                                    const std::vector<std::size_t>& cand);

}  // namespace

OverlayResult allocate_overlay(const OverlayProblem& p, OverlayOptions opt) {
  p.validate();
  const std::vector<std::size_t> cand =
      pick_candidates(p, opt.max_candidates);
  if (cand.size() * p.profile->phase_count() <= opt.ilp_budget) {
    return allocate_overlay_ilp(p, cand, opt);
  }
  return allocate_overlay_beam(p, cand);
}

namespace {

OverlayResult allocate_overlay_ilp(const OverlayProblem& p,
                                   const std::vector<std::size_t>& cand,
                                   OverlayOptions opt) {
  const PhaseProfile& prof = *p.profile;
  const std::size_t pcount = prof.phase_count();
  const std::size_t n = prof.object_count();
  const Energy d_miss_hit = p.e_cache_miss - p.e_cache_hit;

  std::vector<std::int32_t> cand_of(n, -1);
  for (std::size_t c = 0; c < cand.size(); ++c) {
    cand_of[cand[c]] = static_cast<std::int32_t>(c);
  }

  ilp::Model m;
  // a[c][ph] — candidate c resident in phase ph.
  std::vector<std::vector<VarId>> a(cand.size(),
                                    std::vector<VarId>(pcount));
  for (std::size_t c = 0; c < cand.size(); ++c) {
    for (std::size_t ph = 0; ph < pcount; ++ph) {
      a[c][ph] = m.add_binary("a_" + std::to_string(c) + "_" +
                              std::to_string(ph));
    }
  }

  ilp::LinExpr obj;
  Energy offset = 0;

  // Fetch energy: candidates pay E_hit when cached, E_sp when resident;
  // everything else always pays E_hit.
  for (std::size_t ph = 0; ph < pcount; ++ph) {
    const Phase& phase = prof.phases()[ph];
    for (std::size_t i = 0; i < n; ++i) {
      const auto f = static_cast<Energy>(phase.fetches[i]);
      offset += f * p.e_cache_hit;
      if (cand_of[i] >= 0) {
        obj.add(a[static_cast<std::size_t>(cand_of[i])][ph],
                f * (p.e_spm - p.e_cache_hit));
      }
    }
    // Conflict terms.
    for (const PhaseEdge& e : phase.edges) {
      const Energy d = static_cast<Energy>(e.misses) * d_miss_hit;
      const std::int32_t ca = cand_of[e.a];
      const std::int32_t cb = cand_of[e.b];
      if (ca < 0 && cb < 0) {
        offset += d;  // unavoidable
      } else if (ca >= 0 && cb < 0) {
        // Saved iff a is resident: d * (1 - a).
        offset += d;
        obj.add(a[static_cast<std::size_t>(ca)][ph], -d);
      } else if (cb >= 0 && ca < 0) {
        offset += d;
        obj.add(a[static_cast<std::size_t>(cb)][ph], -d);
      } else {
        // Both candidates: L >= 1 - a_a - a_b (tight; L in [0,1]).
        const VarId L = m.add_continuous(
            "L_" + std::to_string(ph) + "_" + std::to_string(e.a) + "_" +
                std::to_string(e.b),
            0.0, 1.0);
        ilp::LinExpr lin;
        lin.add(a[static_cast<std::size_t>(ca)][ph], 1.0)
            .add(a[static_cast<std::size_t>(cb)][ph], 1.0)
            .add(L, 1.0);
        m.add_constraint("lin_" + std::to_string(ph), std::move(lin),
                         ilp::Rel::kGreaterEq, 1.0);
        obj.add(L, d);
      }
    }
    // Capacity (paper eq. 17, one per phase).
    ilp::LinExpr cap;
    for (std::size_t c = 0; c < cand.size(); ++c) {
      cap.add(a[c][ph], static_cast<double>(p.sizes[cand[c]]));
    }
    m.add_constraint("cap_" + std::to_string(ph), std::move(cap),
                     ilp::Rel::kLessEq, static_cast<double>(p.capacity));
  }

  // Copy-in transitions.
  for (std::size_t c = 0; c < cand.size(); ++c) {
    const Energy cost = copy_cost(p, cand[c]);
    for (std::size_t ph = 0; ph < pcount; ++ph) {
      const VarId t = m.add_continuous(
          "t_" + std::to_string(c) + "_" + std::to_string(ph), 0.0, 1.0);
      ilp::LinExpr tr;
      tr.add(t, 1.0).add(a[c][ph], -1.0);
      if (ph > 0) tr.add(a[c][ph - 1], 1.0);
      m.add_constraint("copy_" + std::to_string(c) + "_" +
                           std::to_string(ph),
                       std::move(tr), ilp::Rel::kGreaterEq, 0.0);
      obj.add(t, cost);
    }
  }

  m.set_objective(ilp::Sense::kMinimize, std::move(obj));

  ilp::BranchAndBoundOptions bopt;
  bopt.max_nodes = opt.max_nodes;
  ilp::BranchAndBound solver(bopt);
  const ilp::Solution sol = solver.solve(m);
  CASA_CHECK(sol.status == ilp::SolveStatus::kOptimal ||
                 sol.status == ilp::SolveStatus::kLimit,
             "overlay ILP produced no solution");

  OverlayResult r;
  r.exact = sol.status == ilp::SolveStatus::kOptimal;
  r.residency.assign(pcount, std::vector<bool>(n, false));
  for (std::size_t c = 0; c < cand.size(); ++c) {
    for (std::size_t ph = 0; ph < pcount; ++ph) {
      r.residency[ph][cand[c]] = sol.value_as_bool(a[c][ph]);
    }
  }
  r.predicted_energy = offset + sol.objective;
  account_copies(p, r);
  return r;
}

/// Model energy of one phase under a full residency vector.
Energy phase_energy(const OverlayProblem& p, const Phase& phase,
                    const std::vector<bool>& resident) {
  Energy energy = 0;
  const Energy d_miss_hit = p.e_cache_miss - p.e_cache_hit;
  for (std::size_t i = 0; i < resident.size(); ++i) {
    energy += static_cast<Energy>(phase.fetches[i]) *
              (resident[i] ? p.e_spm : p.e_cache_hit);
  }
  for (const PhaseEdge& e : phase.edges) {
    if (!resident[e.a] && !resident[e.b]) {
      energy += static_cast<Energy>(e.misses) * d_miss_hit;
    }
  }
  return energy;
}

OverlayResult allocate_overlay_beam(const OverlayProblem& p,
                                    const std::vector<std::size_t>& cand) {
  const PhaseProfile& prof = *p.profile;
  const std::size_t pcount = prof.phase_count();
  const std::size_t n = prof.object_count();
  const Energy d_hit_sp = p.e_cache_hit - p.e_spm;
  const Energy d_miss_hit = p.e_cache_miss - p.e_cache_hit;

  std::vector<std::int32_t> cand_of(n, -1);
  for (std::size_t c = 0; c < cand.size(); ++c) {
    cand_of[cand[c]] = static_cast<std::int32_t>(c);
  }

  // Whole-run (static) residency, computed over the merged profile; seeding
  // every phase pool with it guarantees the DP never loses to the static
  // allocation (it can always pick this residency in every phase, paying
  // its copies exactly once).
  std::vector<bool> static_residency(n, false);
  {
    core::SavingsProblem sp;
    sp.capacity = p.capacity;
    std::map<std::pair<std::uint32_t, std::uint32_t>, Energy> pair_w;
    for (const std::size_t i : cand) {
      sp.object_of.push_back(MemoryObjectId(static_cast<std::uint32_t>(i)));
      Energy value = 0;
      for (const Phase& ph : prof.phases()) {
        value += static_cast<Energy>(ph.fetches[i]) * d_hit_sp;
      }
      sp.value.push_back(value);
      sp.weight.push_back(p.sizes[i]);
    }
    for (const Phase& ph : prof.phases()) {
      for (const PhaseEdge& e : ph.edges) {
        const std::int32_t a = cand_of[e.a];
        const std::int32_t b = cand_of[e.b];
        const Energy w = static_cast<Energy>(e.misses) * d_miss_hit;
        if (a < 0 && b < 0) continue;
        if (a < 0) {
          sp.value[static_cast<std::size_t>(b)] += w;
        } else if (b < 0) {
          sp.value[static_cast<std::size_t>(a)] += w;
        } else {
          pair_w[{static_cast<std::uint32_t>(std::min(a, b)),
                  static_cast<std::uint32_t>(std::max(a, b))}] += w;
        }
      }
    }
    for (const auto& [key, w] : pair_w) {
      sp.edges.push_back(core::SavingsProblem::Edge{
          static_cast<std::uint32_t>(key.first),
          static_cast<std::uint32_t>(key.second), w});
    }
    const auto res = core::CasaBranchBound().solve(sp);
    for (std::size_t c = 0; c < cand.size(); ++c) {
      if (res.chosen[c]) static_residency[cand[c]] = true;
    }
  }

  // Per-phase residency pools.
  std::vector<std::vector<std::vector<bool>>> pools(pcount);
  for (std::size_t ph = 0; ph < pcount; ++ph) {
    const Phase& phase = prof.phases()[ph];
    core::SavingsProblem sp;
    sp.capacity = p.capacity;
    for (const std::size_t i : cand) {
      sp.object_of.push_back(MemoryObjectId(static_cast<std::uint32_t>(i)));
      sp.value.push_back(static_cast<Energy>(phase.fetches[i]) * d_hit_sp);
      sp.weight.push_back(p.sizes[i]);
    }
    for (const PhaseEdge& e : phase.edges) {
      const std::int32_t a = cand_of[e.a];
      const std::int32_t b = cand_of[e.b];
      const Energy w = static_cast<Energy>(e.misses) * d_miss_hit;
      if (a < 0 && b < 0) continue;
      if (a < 0) {
        sp.value[static_cast<std::size_t>(b)] += w;
      } else if (b < 0) {
        sp.value[static_cast<std::size_t>(a)] += w;
      } else {
        sp.edges.push_back(core::SavingsProblem::Edge{
            static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b), w});
      }
    }

    auto to_resident = [&](const std::vector<bool>& chosen) {
      std::vector<bool> r(n, false);
      for (std::size_t c = 0; c < cand.size(); ++c) {
        if (chosen[c]) r[cand[c]] = true;
      }
      return r;
    };

    std::vector<std::vector<bool>> pool;
    const core::CasaBranchBoundResult exact = core::CasaBranchBound().solve(sp);
    pool.push_back(to_resident(exact.chosen));
    const core::GreedyResult greedy = core::solve_greedy(sp);
    pool.push_back(to_resident(greedy.chosen));
    pool.push_back(static_residency);
    pool.emplace_back(n, false);  // empty residency
    if (ph > 0) {
      // Continuations: everything the previous phase could hold.
      for (const auto& prev : pools[ph - 1]) pool.push_back(prev);
    }
    // Deduplicate.
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    pools[ph] = std::move(pool);
  }

  // DP over phases.
  auto transition_cost = [&](const std::vector<bool>& from,
                             const std::vector<bool>& to) {
    Energy cost = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (to[i] && !from[i]) cost += copy_cost(p, i);
    }
    return cost;
  };

  const std::vector<bool> nothing(n, false);
  std::vector<std::vector<Energy>> best(pcount);
  std::vector<std::vector<int>> parent(pcount);
  for (std::size_t ph = 0; ph < pcount; ++ph) {
    best[ph].assign(pools[ph].size(), 0);
    parent[ph].assign(pools[ph].size(), -1);
    for (std::size_t k = 0; k < pools[ph].size(); ++k) {
      const Energy local = phase_energy(p, prof.phases()[ph], pools[ph][k]);
      if (ph == 0) {
        best[ph][k] = local + transition_cost(nothing, pools[ph][k]);
        continue;
      }
      Energy best_prev = 0;
      int arg = -1;
      for (std::size_t q = 0; q < pools[ph - 1].size(); ++q) {
        const Energy cost = best[ph - 1][q] +
                            transition_cost(pools[ph - 1][q], pools[ph][k]);
        if (arg < 0 || cost < best_prev) {
          best_prev = cost;
          arg = static_cast<int>(q);
        }
      }
      best[ph][k] = best_prev + local;
      parent[ph][k] = arg;
    }
  }

  // Trace back the best chain.
  std::size_t pick = 0;
  for (std::size_t k = 1; k < pools[pcount - 1].size(); ++k) {
    if (best[pcount - 1][k] < best[pcount - 1][pick]) pick = k;
  }
  OverlayResult r;
  r.exact = false;
  r.residency.assign(pcount, std::vector<bool>(n, false));
  r.predicted_energy = best[pcount - 1][pick];
  for (std::size_t ph = pcount; ph-- > 0;) {
    r.residency[ph] = pools[ph][pick];
    if (ph > 0) pick = static_cast<std::size_t>(parent[ph][pick]);
  }
  account_copies(p, r);
  return r;
}

}  // namespace

OverlayResult allocate_static(const OverlayProblem& p, OverlayOptions opt) {
  p.validate();
  // Collapse all phases into one, solve, then replicate the residency.
  const PhaseProfile& prof = *p.profile;
  const std::size_t n = prof.object_count();

  Phase merged;
  merged.begin = 0;
  merged.end = 0;
  merged.fetches.assign(n, 0);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> pairs;
  for (const Phase& ph : prof.phases()) {
    merged.end = ph.end;
    for (std::size_t i = 0; i < n; ++i) merged.fetches[i] += ph.fetches[i];
    for (const PhaseEdge& e : ph.edges) pairs[{e.a, e.b}] += e.misses;
  }
  for (const auto& [key, misses] : pairs) {
    merged.edges.push_back(PhaseEdge{key.first, key.second, misses});
  }
  PhaseProfile single({merged}, n);

  OverlayProblem sp = p;
  sp.profile = &single;
  OverlayResult one = allocate_overlay(sp, opt);

  OverlayResult r;
  r.exact = one.exact;
  r.residency.assign(prof.phase_count(), one.residency[0]);
  // Energy: re-derive against the real phase profile (identical, since the
  // model is linear in per-phase counts), keep the single-load copy cost.
  r.predicted_energy = one.predicted_energy;
  account_copies(p, r);
  return r;
}

OverlayResult allocate_overlay_greedy(const OverlayProblem& p) {
  p.validate();
  const PhaseProfile& prof = *p.profile;
  const std::size_t pcount = prof.phase_count();
  const std::size_t n = prof.object_count();
  const Energy d_hit_sp = p.e_cache_hit - p.e_spm;
  const Energy d_miss_hit = p.e_cache_miss - p.e_cache_hit;

  OverlayResult r;
  r.residency.assign(pcount, std::vector<bool>(n, false));

  for (std::size_t ph = 0; ph < pcount; ++ph) {
    const Phase& phase = prof.phases()[ph];
    core::SavingsProblem sp;
    sp.capacity = p.capacity;
    std::vector<std::int32_t> item_of(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
      if (p.sizes[i] > p.capacity) continue;
      item_of[i] = static_cast<std::int32_t>(sp.object_of.size());
      sp.object_of.push_back(
          MemoryObjectId(static_cast<std::uint32_t>(i)));
      Energy value = static_cast<Energy>(phase.fetches[i]) * d_hit_sp;
      // Hysteresis: an object already resident needs no copy; a new one
      // must earn its transfer first.
      if (ph == 0 || !r.residency[ph - 1][i]) {
        value -= copy_cost(p, i);
      }
      sp.value.push_back(value);
      sp.weight.push_back(p.sizes[i]);
    }
    for (const PhaseEdge& e : phase.edges) {
      const std::int32_t a = item_of[e.a];
      const std::int32_t b = item_of[e.b];
      const Energy w = static_cast<Energy>(e.misses) * d_miss_hit;
      if (a < 0 && b < 0) continue;
      if (a < 0) {
        sp.value[static_cast<std::size_t>(b)] += w;
      } else if (b < 0) {
        sp.value[static_cast<std::size_t>(a)] += w;
      } else {
        sp.edges.push_back(core::SavingsProblem::Edge{
            static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b),
            w});
      }
    }
    const core::GreedyResult g = core::solve_greedy(sp);
    for (std::size_t k = 0; k < sp.object_of.size(); ++k) {
      if (g.chosen[k]) r.residency[ph][sp.object_of[k].index()] = true;
    }
  }

  // Model-energy accounting for the chosen residency.
  Energy energy = 0;
  for (std::size_t ph = 0; ph < pcount; ++ph) {
    const Phase& phase = prof.phases()[ph];
    for (std::size_t i = 0; i < n; ++i) {
      energy += static_cast<Energy>(phase.fetches[i]) *
                (r.residency[ph][i] ? p.e_spm : p.e_cache_hit);
    }
    for (const PhaseEdge& e : phase.edges) {
      if (!r.residency[ph][e.a] && !r.residency[ph][e.b]) {
        energy += static_cast<Energy>(e.misses) * d_miss_hit;
      }
    }
  }
  account_copies(p, r);
  r.predicted_energy = energy + r.copy_energy;
  r.exact = false;
  return r;
}

}  // namespace casa::overlay

// Overlay hierarchy simulation: like memsim's scratchpad system, but the
// scratchpad residency switches at phase boundaries and each copy-in is
// charged (energy and cycles) explicitly.
#pragma once

#include "casa/energy/energy_table.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/overlay/phase_profile.hpp"

namespace casa::overlay {

struct OverlaySimReport {
  memsim::SimReport sim;       ///< fetch-path counters and energy
  Energy copy_energy = 0;      ///< explicit transfer energy
  std::uint64_t copies = 0;    ///< object copy-ins performed
  std::uint64_t copy_words = 0;

  Energy total_energy() const { return sim.total_energy + copy_energy; }
};

/// Replays `walk` with residency[p] active inside phase p (phase boundaries
/// from `profile`). Residency changes are applied, and paid for, at the
/// phase entry.
OverlaySimReport simulate_overlay(const traceopt::TraceProgram& tp,
                                  const traceopt::Layout& layout,
                                  const trace::BlockWalk& walk,
                                  const PhaseProfile& profile,
                                  const std::vector<std::vector<bool>>& residency,
                                  const cachesim::CacheConfig& cache_cfg,
                                  const energy::EnergyTable& energies,
                                  const memsim::SimOptions& opt = {});

}  // namespace casa::overlay

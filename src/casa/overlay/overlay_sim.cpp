#include "casa/overlay/overlay_sim.hpp"

#include "casa/support/error.hpp"

namespace casa::overlay {

OverlaySimReport simulate_overlay(
    const traceopt::TraceProgram& tp, const traceopt::Layout& layout,
    const trace::BlockWalk& walk, const PhaseProfile& profile,
    const std::vector<std::vector<bool>>& residency,
    const cachesim::CacheConfig& cache_cfg,
    const energy::EnergyTable& energies, const memsim::SimOptions& opt) {
  CASA_CHECK(residency.size() == profile.phase_count(),
             "residency / phase count mismatch");
  for (const auto& r : residency) {
    CASA_CHECK(r.size() == tp.object_count(), "residency size mismatch");
  }
  CASA_CHECK(energies.spm_access > 0, "energy table lacks an SPM entry");

  const prog::Program& program = tp.program();
  cachesim::Cache cache(cache_cfg, opt.seed);
  const std::uint64_t line_words = cache_cfg.line_size / kWordBytes;
  const memsim::LatencyParams& lat = opt.latency;
  const Energy copy_word_energy =
      energies.mainmem_word + energies.spm_access;

  OverlaySimReport rep;
  memsim::SimCounters& c = rep.sim.counters;

  std::size_t phase_idx = static_cast<std::size_t>(-1);
  for (std::size_t w = 0; w < walk.seq.size(); ++w) {
    // Phase entry: swap residency, pay the copies.
    while (phase_idx == static_cast<std::size_t>(-1) ||
           (phase_idx + 1 < profile.phase_count() &&
            w >= profile.phases()[phase_idx].end)) {
      ++phase_idx;
      for (std::size_t i = 0; i < tp.object_count(); ++i) {
        const bool now = residency[phase_idx][i];
        const bool before = phase_idx > 0 && residency[phase_idx - 1][i];
        if (now && !before) {
          const std::uint64_t words = tp.objects()[i].raw_size / kWordBytes;
          ++rep.copies;
          rep.copy_words += words;
          rep.copy_energy += static_cast<double>(words) * copy_word_energy;
          c.cycles += lat.miss_base_penalty +
                      words * (lat.miss_per_word + lat.spm_access);
        }
      }
    }

    const BasicBlockId bb = walk.seq[w];
    const MemoryObjectId mo = tp.object_of(bb);
    const Bytes size = program.block(bb).size;
    const std::uint64_t words = size / kWordBytes;

    if (residency[phase_idx][mo.index()]) {
      c.total_fetches += words;
      c.spm_accesses += words;
      c.cycles += words * lat.spm_access;
      rep.sim.spm_energy += static_cast<double>(words) * energies.spm_access;
      continue;
    }

    const Addr base = layout.block_addr(bb);
    for (std::uint64_t k = 0; k < words; ++k) {
      ++c.total_fetches;
      const cachesim::AccessResult r = cache.access(base + k * kWordBytes);
      ++c.cache_accesses;
      if (r.hit) {
        ++c.cache_hits;
        c.cycles += lat.cache_hit;
        rep.sim.cache_energy += energies.cache_hit;
      } else {
        ++c.cache_misses;
        c.mainmem_words += line_words;
        c.cycles += lat.cache_hit + lat.miss_base_penalty +
                    line_words * lat.miss_per_word;
        rep.sim.cache_energy += energies.cache_miss;
      }
    }
  }

  rep.sim.total_energy = rep.sim.spm_energy + rep.sim.cache_energy;
  return rep;
}

}  // namespace casa::overlay

#include "casa/overlay/phase_profile.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "casa/cachesim/cache.hpp"
#include "casa/support/error.hpp"

namespace casa::overlay {

std::uint64_t PhaseProfile::total_fetches(std::size_t i) const {
  std::uint64_t total = 0;
  for (const Phase& p : phases_) total += p.fetches[i];
  return total;
}

PhaseProfile build_phase_profile(const traceopt::TraceProgram& tp,
                                 const traceopt::Layout& layout,
                                 const trace::BlockWalk& walk,
                                 const PhaseProfileOptions& opt) {
  CASA_CHECK(opt.phase_count >= 1, "need at least one phase");
  CASA_CHECK(!walk.seq.empty(), "empty walk");

  const prog::Program& program = tp.program();
  const std::size_t n = tp.object_count();
  const std::size_t pcount = opt.phase_count;
  cachesim::Cache cache(opt.cache, opt.seed);

  std::vector<Phase> phases(pcount);
  for (std::size_t p = 0; p < pcount; ++p) {
    phases[p].begin = walk.seq.size() * p / pcount;
    phases[p].end = walk.seq.size() * (p + 1) / pcount;
    phases[p].fetches.assign(n, 0);
  }

  std::unordered_map<std::uint64_t, MemoryObjectId> evicted_by;
  // Per phase: merged pair -> misses.
  std::vector<std::map<std::pair<std::uint32_t, std::uint32_t>,
                       std::uint64_t>>
      pair_misses(pcount);

  std::size_t phase_idx = 0;
  for (std::size_t w = 0; w < walk.seq.size(); ++w) {
    while (w >= phases[phase_idx].end) ++phase_idx;
    Phase& phase = phases[phase_idx];

    const BasicBlockId bb = walk.seq[w];
    const MemoryObjectId mo = tp.object_of(bb);
    const Addr base = layout.block_addr(bb);
    const Bytes size = program.block(bb).size;
    for (Bytes off = 0; off < size; off += kWordBytes) {
      const Addr addr = base + off;
      ++phase.fetches[mo.index()];
      const cachesim::AccessResult r = cache.access(addr);
      if (r.hit) continue;
      const std::uint64_t line = cache.line_of(addr);
      auto ev = evicted_by.find(line);
      if (ev != evicted_by.end()) {
        const std::uint32_t i = mo.value();
        const std::uint32_t j = ev->second.value();
        if (i != j) {
          ++pair_misses[phase_idx][{std::min(i, j), std::max(i, j)}];
        }
        evicted_by.erase(ev);
      }
      if (r.evicted_line.has_value()) {
        evicted_by[*r.evicted_line] = mo;
      }
    }
  }

  for (std::size_t p = 0; p < pcount; ++p) {
    phases[p].edges.reserve(pair_misses[p].size());
    for (const auto& [key, misses] : pair_misses[p]) {
      phases[p].edges.push_back(PhaseEdge{key.first, key.second, misses});
    }
  }
  return PhaseProfile(std::move(phases), n);
}

}  // namespace casa::overlay

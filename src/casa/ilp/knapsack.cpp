#include "casa/ilp/knapsack.hpp"

#include <algorithm>
#include <cstdint>

#include "casa/support/error.hpp"

namespace casa::ilp {

KnapsackResult solve_knapsack(const std::vector<KnapsackItem>& items,
                              std::uint64_t capacity) {
  CASA_CHECK(capacity < (1u << 26), "knapsack capacity too large for DP");
  const std::size_t n = items.size();
  const std::size_t cap = static_cast<std::size_t>(capacity);

  // dp[w] = best profit with weight budget <= w. Backtracking needs one
  // decision bit per (item, budget); a vector<vector<bool>> here cost one
  // heap allocation per item and pointer-chasing per probe. One flat
  // bit-packed buffer (n * (cap+1) bits, single allocation) keeps the
  // reconstruction exact while shrinking the 64 KiB-capacity ablation
  // solves from megabytes of row objects to one arena-friendly block.
  std::vector<double> dp(cap + 1, 0.0);
  const std::size_t row_words = (cap + 1 + 63) / 64;
  std::vector<std::uint64_t> take(n * row_words, 0);
  const auto take_bit = [&](std::size_t i, std::size_t w) {
    return (take[i * row_words + w / 64] >> (w % 64)) & 1u;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = items[i].weight;
    const double p = items[i].profit;
    if (p <= 0.0 || w > capacity) continue;
    CASA_CHECK(w > 0, "knapsack item with zero weight and positive profit");
    std::uint64_t* row = take.data() + i * row_words;
    for (std::size_t budget = cap; budget >= w; --budget) {
      const double with = dp[budget - w] + p;
      if (with > dp[budget]) {
        dp[budget] = with;
        row[budget / 64] |= std::uint64_t{1} << (budget % 64);
      }
    }
  }

  KnapsackResult result;
  result.total_profit = dp[cap];
  result.taken.assign(n, false);
  std::size_t budget = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take_bit(i, budget)) {
      result.taken[i] = true;
      result.used_capacity += items[i].weight;
      budget -= static_cast<std::size_t>(items[i].weight);
    }
  }
  return result;
}

}  // namespace casa::ilp

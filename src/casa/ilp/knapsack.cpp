#include "casa/ilp/knapsack.hpp"

#include <algorithm>

#include "casa/support/error.hpp"

namespace casa::ilp {

KnapsackResult solve_knapsack(const std::vector<KnapsackItem>& items,
                              std::uint64_t capacity) {
  CASA_CHECK(capacity < (1u << 26), "knapsack capacity too large for DP");
  const std::size_t n = items.size();
  const std::size_t cap = static_cast<std::size_t>(capacity);

  // dp[w] = best profit with weight budget exactly <= w, take[i][w] records
  // the decision for backtracking.
  std::vector<double> dp(cap + 1, 0.0);
  std::vector<std::vector<bool>> take(n, std::vector<bool>(cap + 1, false));

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = items[i].weight;
    const double p = items[i].profit;
    if (p <= 0.0 || w > capacity) continue;
    CASA_CHECK(w > 0, "knapsack item with zero weight and positive profit");
    for (std::size_t budget = cap; budget >= w; --budget) {
      const double with = dp[budget - w] + p;
      if (with > dp[budget]) {
        dp[budget] = with;
        take[i][budget] = true;
      }
    }
  }

  KnapsackResult result;
  result.total_profit = dp[cap];
  result.taken.assign(n, false);
  std::size_t budget = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][budget]) {
      result.taken[i] = true;
      result.used_capacity += items[i].weight;
      budget -= static_cast<std::size_t>(items[i].weight);
    }
  }
  return result;
}

}  // namespace casa::ilp

#include "casa/ilp/branch_bound.hpp"

#include <cmath>
#include <vector>

#include "casa/support/error.hpp"

namespace casa::ilp {

namespace {

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  std::uint64_t depth = 0;
};

}  // namespace

Solution BranchAndBound::solve(const Model& m) const {
  const bool maximize = m.sense() == Sense::kMaximize;
  // Internally we compare as minimization: better == smaller key.
  const auto key = [maximize](double obj) { return maximize ? -obj : obj; };

  SimplexSolver lp(opt_.lp);

  Node root;
  root.lower.resize(m.var_count());
  root.upper.resize(m.var_count());
  for (std::size_t j = 0; j < m.var_count(); ++j) {
    const Variable& v = m.var(VarId(static_cast<std::uint32_t>(j)));
    root.lower[j] = v.lower;
    root.upper[j] = v.upper;
  }

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_key = kInfinity;
  bool hit_limit = false;

  std::vector<Node> stack;
  stack.push_back(std::move(root));
  last_stats_ = SolveStats{};

  while (!stack.empty()) {
    if (last_stats_.nodes >= opt_.max_nodes) {
      hit_limit = true;
      break;
    }
    ++last_stats_.nodes;
    Node node = std::move(stack.back());
    stack.pop_back();
    if (node.depth > last_stats_.max_depth) {
      last_stats_.max_depth = node.depth;
    }

    const Solution relax = lp.solve_relaxation(m, node.lower, node.upper);
    last_stats_.simplex_iterations += relax.iterations;
    if (relax.status == SolveStatus::kInfeasible) {
      ++last_stats_.infeasible_prunes;
      continue;
    }
    if (relax.status == SolveStatus::kUnbounded) {
      // A bounded-binary model relaxation can be unbounded only through
      // continuous vars; integrality cannot repair that.
      Solution s;
      s.status = SolveStatus::kUnbounded;
      return s;
    }
    if (relax.status == SolveStatus::kLimit) {
      hit_limit = true;
      continue;
    }
    if (key(relax.objective) >= incumbent_key - opt_.gap_tol) {
      ++last_stats_.bound_prunes;
      continue;
    }

    // Find the most fractional binary among the highest-priority tier.
    int branch_var = -1;
    int best_prio = 0;
    double worst = opt_.int_tol;
    for (std::size_t j = 0; j < m.var_count(); ++j) {
      if (m.var(VarId(static_cast<std::uint32_t>(j))).type !=
          VarType::kBinary) {
        continue;
      }
      const double x = relax.values[j];
      const double frac = std::abs(x - std::round(x));
      if (frac <= opt_.int_tol) continue;
      const int prio =
          opt_.branch_priority.empty() ? 0 : opt_.branch_priority[j];
      if (branch_var < 0 || prio > best_prio ||
          (prio == best_prio && frac > worst)) {
        worst = frac;
        best_prio = prio;
        branch_var = static_cast<int>(j);
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent = relax;
      incumbent_key = key(relax.objective);
      ++last_stats_.incumbent_updates;
      continue;
    }

    const auto b = static_cast<std::size_t>(branch_var);
    const double x = relax.values[b];
    Node down = node;   // x_b = 0 side (floor)
    down.upper[b] = std::floor(x);
    down.lower[b] = node.lower[b];
    ++down.depth;
    Node up = std::move(node);  // x_b = 1 side (ceil)
    up.lower[b] = std::ceil(x);
    ++up.depth;

    // DFS explores the rounding-toward x side first for faster incumbents.
    if (x - std::floor(x) > 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  if (incumbent.status == SolveStatus::kOptimal && hit_limit) {
    incumbent.status = SolveStatus::kLimit;
  }
  return incumbent;
}

}  // namespace casa::ilp

#include "casa/ilp/branch_bound.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "casa/ilp/presolve.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/error.hpp"
#include "casa/support/thread_pool.hpp"

namespace casa::ilp {

namespace {

/// Feasibility tolerance for validating externally supplied assignments
/// (warm hints); looser than the LP pivot tolerance on purpose.
constexpr double kFeasTol = 1e-6;

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  std::uint64_t depth = 0;
};

double key_of(bool maximize, double obj) { return maximize ? -obj : obj; }

double objective_value(const Model& m, const std::vector<double>& x) {
  double v = m.objective().constant();
  for (const Term& t : m.objective().terms()) {
    v += t.coef * x[t.var.index()];
  }
  return v;
}

/// True when `x` satisfies the model's bounds, binary integrality and every
/// constraint within kFeasTol.
bool satisfies(const Model& m, const std::vector<double>& x) {
  if (x.size() != m.var_count()) return false;
  for (std::size_t j = 0; j < m.var_count(); ++j) {
    const Variable& v = m.var(VarId(static_cast<std::uint32_t>(j)));
    if (x[j] < v.lower - kFeasTol || x[j] > v.upper + kFeasTol) return false;
    if (v.type == VarType::kBinary &&
        std::abs(x[j] - std::round(x[j])) > kFeasTol) {
      return false;
    }
  }
  for (std::size_t r = 0; r < m.constraint_count(); ++r) {
    const Constraint& c =
        m.constraint(ConstraintId(static_cast<std::uint32_t>(r)));
    double lhs = c.expr.constant();
    for (const Term& t : c.expr.terms()) {
      lhs += t.coef * x[t.var.index()];
    }
    switch (c.rel) {
      case Rel::kLessEq:
        if (lhs > c.rhs + kFeasTol) return false;
        break;
      case Rel::kGreaterEq:
        if (lhs < c.rhs - kFeasTol) return false;
        break;
      case Rel::kEqual:
        if (std::abs(lhs - c.rhs) > kFeasTol) return false;
        break;
    }
  }
  return true;
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

struct SubtreeResult {
  Solution best;  ///< best.values empty when the subtree found no incumbent
  double best_key = kInfinity;
  bool hit_limit = false;
  bool unbounded = false;
  SolveStats stats;
};

/// Serial DFS over one bound box — the classic node loop, parameterized by
/// the pruning key it starts from (warm start) and an optional shared
/// incumbent key (opportunistic cross-subtree pruning).
SubtreeResult explore_subtree(const Model& m, const BranchAndBoundOptions& opt,
                              Node root, std::uint64_t node_budget,
                              double seed_key,
                              std::atomic<double>* shared_key) {
  const bool maximize = m.sense() == Sense::kMaximize;
  obs::Tracer* const tracer = obs::Tracer::current();
  const SimplexSolver lp(opt.lp);
  SimplexOptions retry_opt = opt.lp;
  retry_opt.max_iters = static_cast<std::uint64_t>(
      static_cast<double>(opt.lp.max_iters) *
      std::max(1.0, opt.lp_retry_factor));
  const SimplexSolver retry_lp(retry_opt);

  SubtreeResult out;
  double incumbent_key = seed_key;

  std::vector<Node> stack;
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    if (out.stats.nodes >= node_budget) {
      out.hit_limit = true;
      break;
    }
    ++out.stats.nodes;
    if (tracer != nullptr && (out.stats.nodes & 1023u) == 0) {
      // Sampled search-progress counters: one pair of samples per 1024
      // nodes keeps the timeline readable on million-node solves.
      tracer->counter(obs::trace_names::kIlpNodes,
                      static_cast<double>(out.stats.nodes));
      tracer->counter(obs::trace_names::kIlpPrunes,
                      static_cast<double>(out.stats.bound_prunes +
                                          out.stats.infeasible_prunes));
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    if (node.depth > out.stats.max_depth) {
      out.stats.max_depth = node.depth;
    }

    Solution relax = lp.solve_relaxation(m, node.lower, node.upper);
    out.stats.simplex_iterations += relax.iterations;
    if (relax.status == SolveStatus::kLimit) {
      // One retry with a raised pivot budget before giving up on the node.
      ++out.stats.lp_limit_retries;
      relax = retry_lp.solve_relaxation(m, node.lower, node.upper);
      out.stats.simplex_iterations += relax.iterations;
    }
    if (relax.status == SolveStatus::kInfeasible) {
      ++out.stats.infeasible_prunes;
      continue;
    }
    if (relax.status == SolveStatus::kUnbounded) {
      // A bounded-binary model relaxation can be unbounded only through
      // continuous vars; integrality cannot repair that.
      out.unbounded = true;
      return out;
    }
    if (relax.status == SolveStatus::kLimit) {
      // Still truncated after the retry: the subtree's bound is unknown, so
      // the overall search result must report kLimit, never optimality.
      out.hit_limit = true;
      continue;
    }
    double prune_key = incumbent_key;
    if (shared_key != nullptr) {
      prune_key =
          std::min(prune_key, shared_key->load(std::memory_order_relaxed));
    }
    if (key_of(maximize, relax.objective) >= prune_key - opt.gap_tol) {
      ++out.stats.bound_prunes;
      continue;
    }

    // Find the most fractional binary among the highest-priority tier.
    int branch_var = -1;
    int best_prio = 0;
    double worst = opt.int_tol;
    for (std::size_t j = 0; j < m.var_count(); ++j) {
      if (m.var(VarId(static_cast<std::uint32_t>(j))).type !=
          VarType::kBinary) {
        continue;
      }
      const double x = relax.values[j];
      const double frac = std::abs(x - std::round(x));
      if (frac <= opt.int_tol) continue;
      const int prio =
          opt.branch_priority.empty() ? 0 : opt.branch_priority[j];
      if (branch_var < 0 || prio > best_prio ||
          (prio == best_prio && frac > worst)) {
        worst = frac;
        best_prio = prio;
        branch_var = static_cast<int>(j);
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      if (tracer != nullptr) {
        tracer->instant(obs::trace_names::kIlpIncumbent, relax.objective,
                        obs::trace_names::kCatIlp);
      }
      incumbent_key = key_of(maximize, relax.objective);
      out.best = std::move(relax);
      out.best_key = incumbent_key;
      ++out.stats.incumbent_updates;
      if (shared_key != nullptr) {
        atomic_min(*shared_key, incumbent_key);
      }
      continue;
    }

    const auto b = static_cast<std::size_t>(branch_var);
    const double x = relax.values[b];
    Node down = node;  // x_b = 0 side (floor)
    down.upper[b] = std::floor(x);
    down.lower[b] = node.lower[b];
    ++down.depth;
    Node up = std::move(node);  // x_b = 1 side (ceil)
    up.lower[b] = std::ceil(x);
    ++up.depth;

    // DFS explores the rounding-toward x side first for faster incumbents.
    if (x - std::floor(x) > 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }
  if (tracer != nullptr) {
    // Final per-subtree totals, so prune pressure is visible even on
    // subtrees too small to hit a 1024-node sample.
    tracer->instant(obs::trace_names::kIlpPrunes,
                    static_cast<double>(out.stats.bound_prunes +
                                        out.stats.infeasible_prunes),
                    obs::trace_names::kCatIlp);
  }
  return out;
}

unsigned ceil_log2(unsigned n) {
  unsigned d = 0;
  while ((1u << d) < n) ++d;
  return d;
}

}  // namespace

Solution BranchAndBound::solve(const Model& m) const {
  const bool maximize = m.sense() == Sense::kMaximize;
  obs::Tracer* const tracer = obs::Tracer::current();
  last_stats_ = SolveStats{};

  Node root;
  root.lower.resize(m.var_count());
  root.upper.resize(m.var_count());
  for (std::size_t j = 0; j < m.var_count(); ++j) {
    const Variable& v = m.var(VarId(static_cast<std::uint32_t>(j)));
    root.lower[j] = v.lower;
    root.upper[j] = v.upper;
  }

  if (opt_.presolve) {
    const PresolveResult pre = presolve_box(m, root.lower, root.upper);
    last_stats_.presolve_fixed = pre.fixed;
    if (tracer != nullptr) {
      tracer->instant(obs::trace_names::kIlpPresolve, static_cast<double>(pre.fixed),
                      obs::trace_names::kCatIlp);
    }
    if (!pre.feasible) {
      // Presolve infeasibility is a complete proof, not a truncation.
      Solution s;
      s.status = SolveStatus::kInfeasible;
      return s;
    }
  }

  // Warm-start candidate 1: the caller's hint, validated against the full
  // model (not the presolved box — duality fixing may discard alternative
  // optima the hint happens to pick; a feasible hint still prunes soundly).
  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_key = kInfinity;
  if (opt_.warm_start && !opt_.warm_hint.empty() &&
      satisfies(m, opt_.warm_hint)) {
    incumbent.values = opt_.warm_hint;
    for (std::size_t j = 0; j < m.var_count(); ++j) {
      if (m.var(VarId(static_cast<std::uint32_t>(j))).type ==
          VarType::kBinary) {
        incumbent.values[j] = std::round(incumbent.values[j]);
      }
    }
    incumbent.objective = objective_value(m, incumbent.values);
    incumbent.status = SolveStatus::kOptimal;
    incumbent_key = key_of(maximize, incumbent.objective);
    last_stats_.warm_start_used = true;
  }

  // Root relaxation (with one retried pivot budget, like any node).
  const SimplexSolver lp(opt_.lp);
  Solution root_relax = lp.solve_relaxation(m, root.lower, root.upper);
  last_stats_.simplex_iterations += root_relax.iterations;
  if (root_relax.status == SolveStatus::kLimit) {
    ++last_stats_.lp_limit_retries;
    SimplexOptions retry_opt = opt_.lp;
    retry_opt.max_iters = static_cast<std::uint64_t>(
        static_cast<double>(opt_.lp.max_iters) *
        std::max(1.0, opt_.lp_retry_factor));
    root_relax =
        SimplexSolver(retry_opt).solve_relaxation(m, root.lower, root.upper);
    last_stats_.simplex_iterations += root_relax.iterations;
  }
  if (root_relax.status == SolveStatus::kLimit) {
    // Cannot even bound the root: truncated, never "infeasible".
    incumbent.status = SolveStatus::kLimit;
    return incumbent;
  }
  if (root_relax.status == SolveStatus::kInfeasible) {
    Solution s;
    s.status = SolveStatus::kInfeasible;
    return s;
  }
  if (root_relax.status == SolveStatus::kUnbounded) {
    Solution s;
    s.status = SolveStatus::kUnbounded;
    return s;
  }
  const double root_key = key_of(maximize, root_relax.objective);

  // Is the root already integral?
  bool root_integral = true;
  for (std::size_t j = 0; j < m.var_count() && root_integral; ++j) {
    if (m.var(VarId(static_cast<std::uint32_t>(j))).type != VarType::kBinary) {
      continue;
    }
    const double x = root_relax.values[j];
    if (std::abs(x - std::round(x)) > opt_.int_tol) root_integral = false;
  }
  if (root_integral) {
    root_relax.status = SolveStatus::kOptimal;
    return root_relax;
  }

  // Warm-start candidate 2: round the root relaxation's binaries and let the
  // LP complete the continuous variables over the rounded box.
  if (opt_.warm_start) {
    std::vector<double> lo = root.lower;
    std::vector<double> hi = root.upper;
    for (std::size_t j = 0; j < m.var_count(); ++j) {
      if (m.var(VarId(static_cast<std::uint32_t>(j))).type !=
          VarType::kBinary) {
        continue;
      }
      const double v =
          std::clamp(std::round(root_relax.values[j]), lo[j], hi[j]);
      lo[j] = v;
      hi[j] = v;
    }
    const Solution rounded = lp.solve_relaxation(m, lo, hi);
    last_stats_.simplex_iterations += rounded.iterations;
    if (rounded.status == SolveStatus::kOptimal &&
        key_of(maximize, rounded.objective) < incumbent_key) {
      incumbent = rounded;
      incumbent_key = key_of(maximize, rounded.objective);
      last_stats_.warm_start_used = true;
    }
  }
  if (last_stats_.warm_start_used) {
    last_stats_.root_gap = std::max(0.0, incumbent_key - root_key);
    if (tracer != nullptr) {
      tracer->instant(obs::trace_names::kIlpWarmStart, last_stats_.root_gap,
                      obs::trace_names::kCatIlp);
    }
    if (incumbent_key <= root_key + opt_.gap_tol) {
      // The warm incumbent already meets the root bound: proven optimal.
      incumbent.status = SolveStatus::kOptimal;
      return incumbent;
    }
  }

  // Reduced-cost fixing against the warm incumbent: a nonbasic binary whose
  // root reduced cost exceeds the incumbent gap cannot move off its bound in
  // any solution at least as good as the incumbent, so it is fixed for the
  // whole search. (The incumbent itself is kept aside and merged at the end,
  // so discarding its alternative optima is sound.)
  if (std::isfinite(incumbent_key) &&
      root_relax.reduced_costs.size() == m.var_count()) {
    const double gap = incumbent_key - root_key;
    const double fix_tol = 1e-7 * (1.0 + std::abs(incumbent_key));
    for (std::size_t j = 0; j < m.var_count(); ++j) {
      if (m.var(VarId(static_cast<std::uint32_t>(j))).type !=
          VarType::kBinary) {
        continue;
      }
      if (root.upper[j] - root.lower[j] <= opt_.int_tol) continue;
      const double rc = root_relax.reduced_costs[j];
      if (rc > gap + fix_tol) {
        root.upper[j] = root.lower[j];  // pinned at its lower bound
        ++last_stats_.rc_fixed;
      } else if (-rc > gap + fix_tol) {
        root.lower[j] = root.upper[j];  // pinned at its upper bound
        ++last_stats_.rc_fixed;
      }
    }
    if (tracer != nullptr) {
      tracer->instant(obs::trace_names::kIlpRcFixed,
                      static_cast<double>(last_stats_.rc_fixed),
                      obs::trace_names::kCatIlp);
    }
  }

  // Subtree decomposition over the first `depth` free binaries, ordered by
  // branch priority (desc) then index (asc). The fan-out depends only on
  // `subtree_depth`, never on the thread count, so solutions and merged
  // counters are thread-count-invariant.
  unsigned depth = opt_.subtree_depth;
  if (depth == 0 && opt_.threads != 1) {
    depth = ceil_log2(support::ThreadPool::resolve(opt_.threads));
  }
  depth = std::min(depth, 6u);  // at most 64 subtrees
  std::vector<std::size_t> fan_vars;
  if (depth > 0) {
    std::vector<std::size_t> free_bins;
    for (std::size_t j = 0; j < m.var_count(); ++j) {
      if (m.var(VarId(static_cast<std::uint32_t>(j))).type ==
              VarType::kBinary &&
          root.upper[j] - root.lower[j] > opt_.int_tol) {
        free_bins.push_back(j);
      }
    }
    std::stable_sort(free_bins.begin(), free_bins.end(),
                     [&](std::size_t a, std::size_t b) {
                       const int pa = opt_.branch_priority.empty()
                                          ? 0
                                          : opt_.branch_priority[a];
                       const int pb = opt_.branch_priority.empty()
                                          ? 0
                                          : opt_.branch_priority[b];
                       return pa > pb;
                     });
    depth = std::min<unsigned>(depth,
                               static_cast<unsigned>(free_bins.size()));
    fan_vars.assign(free_bins.begin(), free_bins.begin() + depth);
  }

  const std::size_t n_subtrees = std::size_t{1} << depth;
  const std::uint64_t budget =
      std::max<std::uint64_t>(1, opt_.max_nodes / n_subtrees);
  std::atomic<double> shared_key{incumbent_key};
  std::atomic<double>* shared =
      opt_.share_incumbent ? &shared_key : nullptr;

  std::vector<SubtreeResult> results(n_subtrees);
  // Each subtree runs inside an "ilp.subtree" trace span, flow-linked back
  // to the span that launched the fan-out (flow tails are emitted here, on
  // the solving thread, before any subtree starts).
  std::vector<std::uint64_t> subtree_flows;
  if (tracer != nullptr && depth > 0) {
    subtree_flows.reserve(n_subtrees);
    for (std::size_t i = 0; i < n_subtrees; ++i) {
      subtree_flows.push_back(tracer->flow_begin(obs::trace_names::kIlpSubtree, obs::trace_names::kCatIlp));
    }
  }
  const auto run_subtree = [&](std::size_t i) {
    const obs::TraceSpan scope(
        depth > 0 ? tracer : nullptr, obs::trace_names::kIlpSubtree, obs::trace_names::kCatIlp,
        subtree_flows.empty() ? 0 : subtree_flows[i]);
    Node sub = root;
    sub.depth = depth;
    for (unsigned k = 0; k < depth; ++k) {
      const std::size_t j = fan_vars[k];
      const double v = static_cast<double>((i >> k) & 1u);
      sub.lower[j] = v;
      sub.upper[j] = v;
    }
    results[i] = explore_subtree(m, opt_, std::move(sub), budget,
                                 incumbent_key, shared);
  };

  const unsigned workers = support::ThreadPool::resolve(opt_.threads);
  if (workers > 1 && n_subtrees > 1) {
    support::ThreadPool pool(workers, "ilp");
    for (std::size_t i = 0; i < n_subtrees; ++i) {
      pool.submit([&run_subtree, i] { run_subtree(i); });
    }
    pool.wait();
  } else {
    for (std::size_t i = 0; i < n_subtrees; ++i) run_subtree(i);
  }

  // Deterministic merge in subtree index order: counters sum, the best
  // strictly-improving incumbent wins, ties keep the earliest subtree.
  last_stats_.subtrees = depth > 0 ? n_subtrees : 0;
  bool hit_limit = false;
  for (std::size_t i = 0; i < n_subtrees; ++i) {
    SubtreeResult& r = results[i];
    if (r.unbounded) {
      Solution s;
      s.status = SolveStatus::kUnbounded;
      return s;
    }
    last_stats_.nodes += r.stats.nodes;
    last_stats_.max_depth = std::max(last_stats_.max_depth, r.stats.max_depth);
    last_stats_.incumbent_updates += r.stats.incumbent_updates;
    last_stats_.bound_prunes += r.stats.bound_prunes;
    last_stats_.infeasible_prunes += r.stats.infeasible_prunes;
    last_stats_.simplex_iterations += r.stats.simplex_iterations;
    last_stats_.lp_limit_retries += r.stats.lp_limit_retries;
    hit_limit = hit_limit || r.hit_limit;
    if (!r.best.values.empty() && r.best_key < incumbent_key) {
      incumbent = std::move(r.best);
      incumbent_key = r.best_key;
    }
  }

  if (incumbent.values.empty()) {
    incumbent.status =
        hit_limit ? SolveStatus::kLimit : SolveStatus::kInfeasible;
  } else {
    incumbent.status = hit_limit ? SolveStatus::kLimit : SolveStatus::kOptimal;
  }
  return incumbent;
}

}  // namespace casa::ilp

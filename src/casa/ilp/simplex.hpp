// Bounded-variable primal simplex (dense tableau, two-phase).
//
// Solves the continuous relaxation of a Model: all variables are treated as
// continuous within their bounds. Upper bounds are handled with the classic
// complemented-variable technique (a nonbasic variable always sits at its
// lower bound in tableau space; reaching its upper bound flips it to its
// complement), so bound rows never enter the tableau. Phase 1 drives
// artificial variables of >= and = rows to zero; phase 2 optimizes the real
// objective. Dantzig pricing with a Bland fallback guards against cycling.
//
// Intended problem scale: hundreds of rows by a few thousand columns — the
// size of the paper's CASA instances after presolve. This is a substrate for
// exactness, not a large-scale LP code.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/ilp/model.hpp"

namespace casa::ilp {

struct SimplexOptions {
  double tol = 1e-9;
  std::uint64_t max_iters = 500000;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  unsigned bland_trigger = 64;
};

class SimplexSolver {
 public:
  using Options = SimplexOptions;

  explicit SimplexSolver(Options opt = {}) : opt_(opt) {}

  /// Solves the LP relaxation of `m`.
  [[nodiscard]] Solution solve_relaxation(const Model& m) const;

  /// Solves the LP relaxation with per-variable bound overrides (used by
  /// branch & bound to fix binaries without copying the model). Vectors must
  /// be empty or sized var_count().
  [[nodiscard]] Solution solve_relaxation(
      const Model& m, const std::vector<double>& lower,
      const std::vector<double>& upper) const;

 private:
  Options opt_;
};

}  // namespace casa::ilp

// Bound-box presolve for 0/1 ILP models.
//
// Tightens the per-variable bound box a branch & bound starts from, without
// changing the optimal objective value. Three classic reductions run to a
// fixpoint:
//
//  * redundant rows   — a constraint whose activity range over the current
//    box can never violate it is ignored by the other rules (it can no
//    longer "protect" a variable from being fixed);
//  * forcing rows     — a constraint satisfiable only at one extreme of its
//    activity range pins every participating variable to the bound that
//    attains that extreme;
//  * duality fixing   — a binary variable whose objective coefficient pushes
//    it toward a bound, and whose column never tightens a (non-redundant)
//    constraint when moved toward that bound, is fixed there.
//
// On the CASA model (eq. 12-17) this fixes exactly the obviously-decided
// memory objects: zero-fetch objects pin to "cached" (their location
// variable has no objective pull and only relaxes the capacity row), and
// when the scratchpad fits every remaining object the capacity row goes
// redundant and all beneficial objects cascade to "scratchpad", dragging
// their linearization variables along through the forcing rule.
//
// Soundness: every rule preserves at least one optimal solution of the
// integer program (duality fixing may discard alternative optima, never the
// optimal value), and a box reported infeasible is genuinely infeasible.
#pragma once

#include <cstddef>
#include <vector>

#include "casa/ilp/model.hpp"

namespace casa::ilp {

struct PresolveResult {
  /// False when presolve proved the model infeasible over the given box
  /// (some constraint cannot be satisfied by any point in it).
  bool feasible = true;
  /// Variables newly fixed (lower == upper) by the reductions.
  std::size_t fixed = 0;
  /// Fixpoint rounds executed (diagnostics only).
  std::size_t rounds = 0;
};

/// Tightens `lower`/`upper` (sized var_count(), seeded from the model's or
/// the caller's bounds) in place. Only binary variables are ever fixed by
/// duality fixing; forcing rows may pin continuous variables too.
PresolveResult presolve_box(const Model& m, std::vector<double>& lower,
                            std::vector<double>& upper, double tol = 1e-9);

}  // namespace casa::ilp

// Exploration statistics every exact solver reports.
//
// Returned unconditionally (no metrics registry required) so callers and
// tests can reason about solver effort — e.g. asserting that the
// specialized CASA branch & bound explores no more nodes than the generic
// ILP on the same instance. Fields that a solver has no notion of stay 0
// (the combinatorial solver never solves LPs, so simplex_iterations = 0).
#pragma once

#include <cstdint>

namespace casa::ilp {

struct SolveStats {
  std::uint64_t nodes = 0;              ///< branch & bound nodes expanded
  std::uint64_t max_depth = 0;          ///< deepest node expanded
  std::uint64_t incumbent_updates = 0;  ///< times the best solution improved
  std::uint64_t bound_prunes = 0;       ///< subtrees cut by the dual bound
  std::uint64_t infeasible_prunes = 0;  ///< subtrees cut by LP infeasibility
  std::uint64_t simplex_iterations = 0; ///< pivots across all LP solves
};

}  // namespace casa::ilp

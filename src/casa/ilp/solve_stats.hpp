// Exploration statistics every exact solver reports.
//
// Returned unconditionally (no metrics registry required) so callers and
// tests can reason about solver effort — e.g. asserting that the
// specialized CASA branch & bound explores no more nodes than the generic
// ILP on the same instance. Fields that a solver has no notion of stay 0
// (the combinatorial solver never solves LPs, so simplex_iterations = 0).
#pragma once

#include <cstdint>

namespace casa::ilp {

struct SolveStats {
  std::uint64_t nodes = 0;              ///< branch & bound nodes expanded
  std::uint64_t max_depth = 0;          ///< deepest node expanded
  std::uint64_t incumbent_updates = 0;  ///< times the best solution improved
  std::uint64_t bound_prunes = 0;       ///< subtrees cut by the dual bound
  std::uint64_t infeasible_prunes = 0;  ///< subtrees cut by LP infeasibility
  std::uint64_t simplex_iterations = 0; ///< pivots across all LP solves
  /// Variables fixed before search by bound-box presolve (0 for solvers
  /// without a presolve stage).
  std::uint64_t presolve_fixed = 0;
  /// Nodes whose LP relaxation hit its iteration limit and were re-solved
  /// with a raised budget (see BranchAndBoundOptions::lp_retry_factor).
  std::uint64_t lp_limit_retries = 0;
  /// Independent subtrees the root was fanned into (0 = plain DFS).
  std::uint64_t subtrees = 0;
  /// Binaries fixed at the root by reduced-cost fixing against the
  /// warm-start incumbent (requires warm_start_used).
  std::uint64_t rc_fixed = 0;
  /// True when a warm-start incumbent (caller hint or rounded root LP)
  /// seeded the search before the first node.
  bool warm_start_used = false;
  /// Gap between the warm-start incumbent and the root relaxation bound,
  /// in minimization-key space (>= 0; 0 when no warm start or the root
  /// already proved the incumbent optimal).
  double root_gap = 0.0;

  friend bool operator==(const SolveStats&, const SolveStats&) = default;
};

}  // namespace casa::ilp

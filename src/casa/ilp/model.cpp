#include "casa/ilp/model.hpp"

#include <sstream>

namespace casa::ilp {

VarId Model::add_var(std::string name, VarType type, double lower,
                     double upper) {
  CASA_CHECK(lower <= upper, "variable bounds crossed: " + name);
  if (type == VarType::kBinary) {
    CASA_CHECK(lower >= 0.0 && upper <= 1.0, "binary bounds must be in [0,1]");
  }
  const VarId id(static_cast<std::uint32_t>(vars_.size()));
  vars_.push_back(Variable{std::move(name), type, lower, upper});
  return id;
}

ConstraintId Model::add_constraint(std::string name, LinExpr expr, Rel rel,
                                   double rhs) {
  for (const Term& t : expr.terms()) {
    CASA_CHECK(t.var.index() < vars_.size(),
               "constraint references unknown variable: " + name);
  }
  const ConstraintId id(static_cast<std::uint32_t>(constraints_.size()));
  constraints_.push_back(
      Constraint{std::move(name), std::move(expr), rel, rhs});
  return id;
}

void Model::set_objective(Sense sense, LinExpr expr) {
  for (const Term& t : expr.terms()) {
    CASA_CHECK(t.var.index() < vars_.size(),
               "objective references unknown variable");
  }
  sense_ = sense;
  objective_ = std::move(expr);
}

bool Model::has_integers() const {
  for (const auto& v : vars_) {
    if (v.type == VarType::kBinary) return true;
  }
  return false;
}

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kLimit:
      return "limit";
  }
  return "?";
}

namespace {
void print_expr(std::ostringstream& os, const Model& m, const LinExpr& e) {
  bool first = true;
  for (const Term& t : e.terms()) {
    if (!first) os << (t.coef >= 0 ? " + " : " - ");
    if (first && t.coef < 0) os << "-";
    const double mag = t.coef >= 0 ? t.coef : -t.coef;
    os << mag << ' ' << m.var(t.var).name;
    first = false;
  }
  if (e.constant() != 0.0 || first) {
    if (!first) os << (e.constant() >= 0 ? " + " : " - ");
    os << (e.constant() >= 0 ? e.constant() : -e.constant());
  }
}
}  // namespace

std::string Model::to_string() const {
  std::ostringstream os;
  os << (sense_ == Sense::kMinimize ? "minimize " : "maximize ");
  print_expr(os, *this, objective_);
  os << "\nsubject to\n";
  for (const auto& c : constraints_) {
    os << "  " << c.name << ": ";
    print_expr(os, *this, c.expr);
    switch (c.rel) {
      case Rel::kLessEq:
        os << " <= ";
        break;
      case Rel::kGreaterEq:
        os << " >= ";
        break;
      case Rel::kEqual:
        os << " = ";
        break;
    }
    os << c.rhs << '\n';
  }
  os << "bounds\n";
  for (const auto& v : vars_) {
    os << "  " << v.lower << " <= " << v.name << " <= " << v.upper
       << (v.type == VarType::kBinary ? " (binary)" : "") << '\n';
  }
  return os.str();
}

}  // namespace casa::ilp

// Linear / integer linear program model builder.
//
// The CASA formulation (paper §4) is expressed against this interface and
// handed to the solvers. The model is solver-agnostic: SimplexSolver
// consumes the continuous relaxation, BranchAndBound enforces integrality.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "casa/support/error.hpp"
#include "casa/support/ids.hpp"

namespace casa::ilp {

enum class VarType { kContinuous, kBinary };
enum class Sense { kMinimize, kMaximize };
enum class Rel { kLessEq, kGreaterEq, kEqual };

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One linear term, coef * var.
struct Term {
  VarId var;
  double coef = 0.0;
};

/// Linear expression Σ coef_k · var_k + constant.
class LinExpr {
 public:
  LinExpr() = default;

  LinExpr& add(VarId var, double coef) {
    if (coef != 0.0) terms_.push_back(Term{var, coef});
    return *this;
  }
  LinExpr& add_constant(double c) {
    constant_ += c;
    return *this;
  }

  const std::vector<Term>& terms() const { return terms_; }
  double constant() const { return constant_; }

 private:
  std::vector<Term> terms_;
  double constant_ = 0.0;
};

struct Variable {
  std::string name;
  VarType type = VarType::kContinuous;
  double lower = 0.0;
  double upper = kInfinity;
};

struct Constraint {
  std::string name;
  LinExpr expr;
  Rel rel = Rel::kLessEq;
  double rhs = 0.0;
};

class Model {
 public:
  VarId add_var(std::string name, VarType type, double lower, double upper);
  /// Convenience: binary variable in [0, 1].
  VarId add_binary(std::string name) {
    return add_var(std::move(name), VarType::kBinary, 0.0, 1.0);
  }
  VarId add_continuous(std::string name, double lower, double upper) {
    return add_var(std::move(name), VarType::kContinuous, lower, upper);
  }

  ConstraintId add_constraint(std::string name, LinExpr expr, Rel rel,
                              double rhs);

  void set_objective(Sense sense, LinExpr expr);

  std::size_t var_count() const { return vars_.size(); }
  std::size_t constraint_count() const { return constraints_.size(); }
  const Variable& var(VarId id) const { return vars_[id.index()]; }
  const Constraint& constraint(ConstraintId id) const {
    return constraints_[id.index()];
  }
  const std::vector<Variable>& vars() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  Sense sense() const { return sense_; }
  const LinExpr& objective() const { return objective_; }

  /// True when any variable is integral.
  bool has_integers() const;

  /// Human-readable LP-format-ish dump (debugging / tests).
  std::string to_string() const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> constraints_;
  Sense sense_ = Sense::kMinimize;
  LinExpr objective_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kLimit };

const char* to_string(SolveStatus s);

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< indexed by VarId
  /// Simplex pivots spent producing this solution (both phases;
  /// observability only, set on every status).
  std::uint64_t iterations = 0;
  /// Reduced costs of the final optimal basis, indexed by VarId, in
  /// minimization space (maximization objectives are negated). A nonbasic
  /// variable at its lower bound has cost >= 0, one at its upper bound
  /// <= 0, basic variables 0. Empty unless status == kOptimal and the
  /// producer is an LP solver (integer solvers leave it empty).
  std::vector<double> reduced_costs;

  double value(VarId v) const {
    CASA_CHECK(v.index() < values.size(), "no value for variable");
    return values[v.index()];
  }
  /// Rounds a relaxed binary to bool.
  bool value_as_bool(VarId v) const { return value(v) > 0.5; }
};

}  // namespace casa::ilp

#include "casa/ilp/presolve.hpp"

#include <cmath>

#include "casa/support/error.hpp"

namespace casa::ilp {

namespace {

struct Activity {
  double min = 0.0;
  double max = 0.0;
};

/// Activity range of a row over the current bound box. Bounds are finite
/// for every CASA-model variable, but infinities propagate correctly.
Activity row_activity(const Constraint& c, const std::vector<double>& lower,
                      const std::vector<double>& upper) {
  Activity a;
  a.min = c.expr.constant();
  a.max = c.expr.constant();
  for (const Term& t : c.expr.terms()) {
    const double lo = lower[t.var.index()];
    const double hi = upper[t.var.index()];
    if (t.coef > 0.0) {
      a.min += t.coef * lo;
      a.max += t.coef * hi;
    } else {
      a.min += t.coef * hi;
      a.max += t.coef * lo;
    }
  }
  return a;
}

/// Fixes var j at value v; returns true when the box actually narrowed.
bool fix(std::vector<double>& lower, std::vector<double>& upper,
         std::size_t j, double v) {
  const bool changed = lower[j] != v || upper[j] != v;
  lower[j] = v;
  upper[j] = v;
  return changed;
}

}  // namespace

PresolveResult presolve_box(const Model& m, std::vector<double>& lower,
                            std::vector<double>& upper, double tol) {
  CASA_CHECK(lower.size() == m.var_count() && upper.size() == m.var_count(),
             "presolve bound box must be sized var_count()");
  PresolveResult result;
  const bool maximize = m.sense() == Sense::kMaximize;

  // Effective minimization objective coefficient per variable.
  std::vector<double> obj(m.var_count(), 0.0);
  for (const Term& t : m.objective().terms()) {
    obj[t.var.index()] += maximize ? -t.coef : t.coef;
  }

  std::vector<char> redundant(m.constraint_count(), 0);
  // rows_of[j]: indices of constraints variable j participates in.
  std::vector<std::vector<std::uint32_t>> rows_of(m.var_count());
  for (std::size_t r = 0; r < m.constraint_count(); ++r) {
    const Constraint& c =
        m.constraint(ConstraintId(static_cast<std::uint32_t>(r)));
    for (const Term& t : c.expr.terms()) {
      rows_of[t.var.index()].push_back(static_cast<std::uint32_t>(r));
    }
  }

  constexpr std::size_t kMaxRounds = 16;
  bool changed = true;
  while (changed && result.rounds < kMaxRounds) {
    changed = false;
    ++result.rounds;

    // Pass 1: classify rows (infeasible / redundant / forcing).
    for (std::size_t r = 0; r < m.constraint_count(); ++r) {
      if (redundant[r]) continue;
      const Constraint& c =
          m.constraint(ConstraintId(static_cast<std::uint32_t>(r)));
      const Activity a = row_activity(c, lower, upper);

      const bool le = c.rel != Rel::kGreaterEq;  // kLessEq or kEqual
      const bool ge = c.rel != Rel::kLessEq;     // kGreaterEq or kEqual
      if ((le && a.min > c.rhs + tol) || (ge && a.max < c.rhs - tol)) {
        result.feasible = false;
        return result;
      }
      const bool le_slack = !le || a.max <= c.rhs + tol;
      const bool ge_slack = !ge || a.min >= c.rhs - tol;
      if (le_slack && ge_slack) {
        redundant[r] = 1;
        changed = true;
        continue;
      }
      // Forcing: the row is satisfiable only at one extreme of its
      // activity range — pin every participant at the attaining bound.
      const bool force_min = le && a.min >= c.rhs - tol;
      const bool force_max = ge && a.max <= c.rhs + tol;
      if (force_min || force_max) {
        for (const Term& t : c.expr.terms()) {
          const std::size_t j = t.var.index();
          const bool at_lower = (t.coef > 0.0) == force_min;
          if (fix(lower, upper, j, at_lower ? lower[j] : upper[j])) {
            ++result.fixed;
            changed = true;
          }
        }
        redundant[r] = 1;  // now satisfied with equality, nothing left to say
      }
    }

    // Pass 2: duality fixing over free binaries, ignoring redundant rows.
    for (std::size_t j = 0; j < m.var_count(); ++j) {
      if (m.var(VarId(static_cast<std::uint32_t>(j))).type !=
          VarType::kBinary) {
        continue;
      }
      if (upper[j] - lower[j] <= tol) continue;  // already fixed
      bool can_low = obj[j] >= -tol;  // objective never rewards raising it
      bool can_high = obj[j] <= tol;  // objective never rewards lowering it
      for (const std::uint32_t r : rows_of[j]) {
        if (redundant[r]) continue;
        const Constraint& c = m.constraint(ConstraintId(r));
        if (c.rel == Rel::kEqual) {
          can_low = can_high = false;
          break;
        }
        double coef = 0.0;
        for (const Term& t : c.expr.terms()) {
          if (t.var.index() == j) coef += t.coef;
        }
        if (c.rel == Rel::kLessEq) {
          // Lowering x_j lowers the LHS only when coef >= 0.
          if (coef < -tol) can_low = false;
          if (coef > tol) can_high = false;
        } else {  // kGreaterEq: raising the LHS is what helps
          if (coef > tol) can_low = false;
          if (coef < -tol) can_high = false;
        }
        if (!can_low && !can_high) break;
      }
      // Prefer the lower bound on a zero-coefficient tie for determinism.
      if (can_low) {
        if (fix(lower, upper, j, lower[j])) {
          ++result.fixed;
          changed = true;
        }
      } else if (can_high) {
        if (fix(lower, upper, j, upper[j])) {
          ++result.fixed;
          changed = true;
        }
      }
    }
  }
  return result;
}

}  // namespace casa::ilp

// Exact 0/1 ILP solver: branch & bound over the simplex relaxation.
//
// Depth-first search (good incumbents early, O(depth) memory) with
// most-fractional branching and bound pruning against the incumbent. This
// plays the role of the paper's commercial ILP solver (CPLEX) for the CASA
// formulation; instances there solved "in under a second", i.e. they are
// small — exactness matters, scalability to industrial MIP does not.
//
// The search is preceded by a bound-box presolve (presolve.hpp) and a warm
// start (caller hint and/or rounded root LP), and can fan the first
// `subtree_depth` branching levels into 2^depth independent subtrees
// executed on a support::ThreadPool. See docs/solver.md for the status-code
// and determinism contracts.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/ilp/model.hpp"
#include "casa/ilp/simplex.hpp"
#include "casa/ilp/solve_stats.hpp"

namespace casa::ilp {

struct BranchAndBoundOptions {
  double int_tol = 1e-6;      ///< |x - round(x)| below this is integral
  double gap_tol = 1e-9;      ///< prune when bound cannot beat incumbent
  std::uint64_t max_nodes = 2'000'000;
  SimplexOptions lp;
  /// Optional per-variable branching priority (higher branches first; empty
  /// = uniform). Among the highest-priority fractional binaries the most
  /// fractional one is chosen. Derived variables (e.g. the CASA paper
  /// formulation's L = l_i*l_j) should get lower priority than the decision
  /// variables that determine them.
  std::vector<int> branch_priority;

  /// Run bound-box presolve before the search (SolveStats::presolve_fixed).
  bool presolve = true;
  /// Seed the incumbent before node 1 from `warm_hint` (when valid) and a
  /// rounded root-LP completion, keeping the better of the two.
  bool warm_start = true;
  /// Optional caller-provided full assignment (sized var_count()); it is
  /// validated against the model's bounds, integrality and constraints and
  /// silently ignored when invalid or when `warm_start` is false.
  std::vector<double> warm_hint;
  /// Worker threads for the subtree fan-out (0 = hardware concurrency,
  /// 1 = serial). Thread count never changes results or counters — only
  /// `subtree_depth` does.
  unsigned threads = 1;
  /// Fan the first `subtree_depth` free binaries (priority-desc, index-asc)
  /// into 2^depth independent subtrees. 0 = derive from `threads`
  /// (ceil(log2(threads)); 0 when serial). Pin this explicitly to make
  /// solutions and merged SolveStats invariant across thread counts.
  unsigned subtree_depth = 0;
  /// Let subtrees publish/read a shared atomic incumbent key while running.
  /// Faster on unbalanced trees, but bound-prune counters (and, on objective
  /// ties, the returned solution) then depend on timing — off by default to
  /// keep the determinism contract.
  bool share_incumbent = false;
  /// A node whose LP relaxation hits its iteration limit is re-solved once
  /// with max_iters scaled by this factor before the truncation is recorded
  /// (SolveStats::lp_limit_retries).
  double lp_retry_factor = 8.0;
};

class BranchAndBound {
 public:
  using Options = BranchAndBoundOptions;

  explicit BranchAndBound(Options opt = {}) : opt_(opt) {}

  /// Solves `m` with all kBinary variables integral.
  ///
  /// Status contract:
  ///  * kOptimal    — search ran to completion; the returned solution is a
  ///                  true optimum.
  ///  * kInfeasible — search ran to completion and no feasible point exists.
  ///                  Never returned for a truncated search.
  ///  * kLimit      — the search was truncated (max_nodes, or an LP
  ///                  relaxation that stayed at kLimit after one retry). The
  ///                  best incumbent found so far is returned if one exists;
  ///                  otherwise the solution carries empty values and proves
  ///                  nothing about feasibility.
  ///  * kUnbounded  — the relaxation is unbounded through continuous vars.
  [[nodiscard]] Solution solve(const Model& m) const;

  /// Nodes explored by the most recent solve() (observability hook).
  std::uint64_t last_node_count() const { return last_stats_.nodes; }

  /// Full exploration statistics of the most recent solve().
  const SolveStats& last_stats() const { return last_stats_; }

 private:
  Options opt_;
  mutable SolveStats last_stats_;
};

}  // namespace casa::ilp

// Exact 0/1 ILP solver: branch & bound over the simplex relaxation.
//
// Depth-first search (good incumbents early, O(depth) memory) with
// most-fractional branching and bound pruning against the incumbent. This
// plays the role of the paper's commercial ILP solver (CPLEX) for the CASA
// formulation; instances there solved "in under a second", i.e. they are
// small — exactness matters, scalability to industrial MIP does not.
#pragma once

#include <cstdint>

#include "casa/ilp/model.hpp"
#include "casa/ilp/simplex.hpp"
#include "casa/ilp/solve_stats.hpp"

namespace casa::ilp {

struct BranchAndBoundOptions {
  double int_tol = 1e-6;      ///< |x - round(x)| below this is integral
  double gap_tol = 1e-9;      ///< prune when bound cannot beat incumbent
  std::uint64_t max_nodes = 2'000'000;
  SimplexOptions lp;
  /// Optional per-variable branching priority (higher branches first; empty
  /// = uniform). Among the highest-priority fractional binaries the most
  /// fractional one is chosen. Derived variables (e.g. the CASA paper
  /// formulation's L = l_i*l_j) should get lower priority than the decision
  /// variables that determine them.
  std::vector<int> branch_priority;
};

class BranchAndBound {
 public:
  using Options = BranchAndBoundOptions;

  explicit BranchAndBound(Options opt = {}) : opt_(opt) {}

  /// Solves `m` with all kBinary variables integral. Returns kOptimal with
  /// the best solution, kInfeasible, or kLimit when max_nodes was hit (the
  /// incumbent, if any, is returned with kLimit status in that case).
  Solution solve(const Model& m) const;

  /// Nodes explored by the most recent solve() (observability hook).
  std::uint64_t last_node_count() const { return last_stats_.nodes; }

  /// Full exploration statistics of the most recent solve().
  const SolveStats& last_stats() const { return last_stats_; }

 private:
  Options opt_;
  mutable SolveStats last_stats_;
};

}  // namespace casa::ilp

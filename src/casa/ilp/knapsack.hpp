// Exact 0/1 knapsack by dynamic programming over capacity.
//
// Steinke's DATE 2002 allocator reduces scratchpad allocation to exactly
// this problem (profit = execution-count energy saving, weight = object
// size); capacities are small (<= a few KiB), so the DP is effectively free.
#pragma once

#include <cstdint>
#include <vector>

namespace casa::ilp {

struct KnapsackItem {
  std::uint64_t weight = 0;
  double profit = 0.0;
};

struct KnapsackResult {
  double total_profit = 0.0;
  std::uint64_t used_capacity = 0;
  std::vector<bool> taken;  ///< per input item
};

/// Maximizes total profit subject to total weight <= capacity. Items with
/// non-positive profit are never taken; items heavier than the capacity are
/// skipped.
[[nodiscard]] KnapsackResult solve_knapsack(
    const std::vector<KnapsackItem>& items, std::uint64_t capacity);

}  // namespace casa::ilp

#include "casa/ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "casa/support/error.hpp"

namespace casa::ilp {

namespace {

/// Dense two-phase bounded-variable simplex working state.
class Tableau {
 public:
  Tableau(const Model& m, const std::vector<double>& lower,
          const std::vector<double>& upper, const SimplexSolver::Options& opt)
      : model_(m), opt_(opt) {
    build(lower, upper);
  }

  Solution run();

 private:
  enum class StepResult { kOptimal, kUnbounded, kIterLimit, kProgress };

  void build(const std::vector<double>& lower,
             const std::vector<double>& upper);
  void compute_reduced_costs();
  StepResult iterate();
  int price() const;
  Solution extract(SolveStatus status);
  double phase1_infeasibility() const;

  double at(std::size_t r, std::size_t c) const { return t_[r * stride_ + c]; }
  double& at(std::size_t r, std::size_t c) { return t_[r * stride_ + c]; }

  const Model& model_;
  const SimplexSolver::Options& opt_;

  std::size_t m_ = 0;        // rows
  std::size_t n_ = 0;        // total columns (struct + slack + artificial)
  std::size_t n_struct_ = 0; // structural columns
  std::size_t stride_ = 0;   // n_ + 1 (b column last)
  std::size_t bcol_ = 0;

  std::vector<double> t_;        // m_ x stride_ tableau
  std::vector<double> d_;        // reduced costs, length n_
  std::vector<double> cost_;     // tableau-space phase cost, length n_
  std::vector<double> cost2_;    // tableau-space phase-2 cost, length n_
  std::vector<double> ubound_;   // tableau-space upper bounds (U_j)
  std::vector<double> shift_;    // original lower bound per struct var
  std::vector<char> complemented_;
  std::vector<char> is_artificial_;
  std::vector<int> basis_;       // basic var per row, -1 none
  std::vector<int> row_of_;      // row of basic var, -1 if nonbasic
  bool phase1_ = true;
  unsigned degenerate_streak_ = 0;
  std::uint64_t iters_ = 0;
  bool maximize_ = false;
};

void Tableau::build(const std::vector<double>& lower,
                    const std::vector<double>& upper) {
  const std::size_t nv = model_.var_count();
  const std::size_t nc = model_.constraint_count();
  maximize_ = model_.sense() == Sense::kMaximize;

  shift_.resize(nv);
  std::vector<double> ub(nv);
  for (std::size_t j = 0; j < nv; ++j) {
    const Variable& v = model_.var(VarId(static_cast<std::uint32_t>(j)));
    const double lo = lower.empty() ? v.lower : lower[j];
    const double hi = upper.empty() ? v.upper : upper[j];
    CASA_CHECK(std::isfinite(lo), "simplex requires finite lower bounds");
    CASA_CHECK(lo <= hi, "variable bounds crossed in override");
    shift_[j] = lo;
    ub[j] = hi - lo;
  }

  // Row preprocessing: shifted rhs, sign normalization, slack layout.
  struct RowInfo {
    Rel rel;
    double rhs;
    bool negated;
  };
  std::vector<RowInfo> rows(nc);
  std::size_t n_slack = 0, n_art = 0;
  for (std::size_t i = 0; i < nc; ++i) {
    const Constraint& c =
        model_.constraint(ConstraintId(static_cast<std::uint32_t>(i)));
    double rhs = c.rhs - c.expr.constant();
    for (const Term& term : c.expr.terms()) {
      rhs -= term.coef * shift_[term.var.index()];
    }
    Rel rel = c.rel;
    bool neg = rhs < 0.0;
    if (neg) {
      rhs = -rhs;
      if (rel == Rel::kLessEq) {
        rel = Rel::kGreaterEq;
      } else if (rel == Rel::kGreaterEq) {
        rel = Rel::kLessEq;
      }
    }
    rows[i] = RowInfo{rel, rhs, neg};
    if (rel != Rel::kEqual) ++n_slack;
    if (rel != Rel::kLessEq) ++n_art;
  }

  m_ = nc;
  n_struct_ = nv;
  n_ = nv + n_slack + n_art;
  stride_ = n_ + 1;
  bcol_ = n_;
  t_.assign(m_ * stride_, 0.0);
  ubound_.assign(n_, kInfinity);
  for (std::size_t j = 0; j < nv; ++j) ubound_[j] = ub[j];
  complemented_.assign(n_, 0);
  is_artificial_.assign(n_, 0);
  basis_.assign(m_, -1);
  row_of_.assign(n_, -1);
  cost_.assign(n_, 0.0);
  cost2_.assign(n_, 0.0);

  // Structural coefficients.
  for (std::size_t i = 0; i < nc; ++i) {
    const Constraint& c =
        model_.constraint(ConstraintId(static_cast<std::uint32_t>(i)));
    const double sign = rows[i].negated ? -1.0 : 1.0;
    for (const Term& term : c.expr.terms()) {
      at(i, term.var.index()) += sign * term.coef;
    }
    at(i, bcol_) = rows[i].rhs;
  }

  // Slack / artificial columns and the starting basis.
  std::size_t next = nv;
  for (std::size_t i = 0; i < nc; ++i) {
    switch (rows[i].rel) {
      case Rel::kLessEq: {
        at(i, next) = 1.0;
        basis_[i] = static_cast<int>(next);
        row_of_[next] = static_cast<int>(i);
        ++next;
        break;
      }
      case Rel::kGreaterEq: {
        at(i, next) = -1.0;  // surplus
        ++next;
        break;
      }
      case Rel::kEqual:
        break;
    }
  }
  for (std::size_t i = 0; i < nc; ++i) {
    if (rows[i].rel == Rel::kLessEq) continue;
    at(i, next) = 1.0;  // artificial
    is_artificial_[next] = 1;
    cost_[next] = 1.0;
    basis_[i] = static_cast<int>(next);
    row_of_[next] = static_cast<int>(i);
    ++next;
  }
  CASA_CHECK(next == n_, "column accounting bug");

  // Phase-2 cost in tableau space (minimization).
  for (const Term& term : model_.objective().terms()) {
    cost2_[term.var.index()] += maximize_ ? -term.coef : term.coef;
  }

  phase1_ = true;
  compute_reduced_costs();
}

void Tableau::compute_reduced_costs() {
  const std::vector<double>& c = phase1_ ? cost_ : cost2_;
  d_.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) d_[j] = c[j];
  for (std::size_t i = 0; i < m_; ++i) {
    const double cb = c[static_cast<std::size_t>(basis_[i])];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j < n_; ++j) d_[j] -= cb * at(i, j);
  }
  for (std::size_t i = 0; i < m_; ++i) {
    d_[static_cast<std::size_t>(basis_[i])] = 0.0;
  }
}

int Tableau::price() const {
  const bool bland = degenerate_streak_ >= opt_.bland_trigger;
  int best = -1;
  double best_d = -opt_.tol;
  for (std::size_t j = 0; j < n_; ++j) {
    if (row_of_[j] >= 0) continue;            // basic
    if (ubound_[j] <= 0.0) continue;          // fixed
    if (phase1_ == false && is_artificial_[j]) continue;
    if (d_[j] < best_d) {
      if (bland) return static_cast<int>(j);
      best_d = d_[j];
      best = static_cast<int>(j);
    }
  }
  return best;
}

Tableau::StepResult Tableau::iterate() {
  if (iters_ >= opt_.max_iters) return StepResult::kIterLimit;
  ++iters_;

  const int enter = price();
  if (enter < 0) return StepResult::kOptimal;
  const auto q = static_cast<std::size_t>(enter);

  // Ratio test.
  double t_best = ubound_[q];  // bound flip distance (may be +inf)
  int leave_row = -1;
  bool leave_at_upper = false;
  for (std::size_t i = 0; i < m_; ++i) {
    const double a = at(i, q);
    const double xb = at(i, bcol_);
    const auto vb = static_cast<std::size_t>(basis_[i]);
    if (a > opt_.tol) {
      const double t = xb / a;
      if (t < t_best - opt_.tol ||
          (t < t_best + opt_.tol && leave_row >= 0 &&
           basis_[i] < basis_[static_cast<std::size_t>(leave_row)])) {
        t_best = t;
        leave_row = static_cast<int>(i);
        leave_at_upper = false;
      }
    } else if (a < -opt_.tol && std::isfinite(ubound_[vb])) {
      const double t = (ubound_[vb] - xb) / (-a);
      if (t < t_best - opt_.tol ||
          (t < t_best + opt_.tol && leave_row >= 0 &&
           basis_[i] < basis_[static_cast<std::size_t>(leave_row)])) {
        t_best = t;
        leave_row = static_cast<int>(i);
        leave_at_upper = true;
      }
    }
  }

  if (leave_row < 0) {
    if (!std::isfinite(t_best)) return StepResult::kUnbounded;
    // Bound flip: the entering variable travels to its upper bound.
    for (std::size_t i = 0; i < m_; ++i) {
      at(i, bcol_) -= at(i, q) * t_best;
      at(i, q) = -at(i, q);
    }
    d_[q] = -d_[q];
    cost_[q] = -cost_[q];
    cost2_[q] = -cost2_[q];
    complemented_[q] ^= 1;
    degenerate_streak_ = t_best < opt_.tol ? degenerate_streak_ + 1 : 0;
    return StepResult::kProgress;
  }

  const auto r = static_cast<std::size_t>(leave_row);
  if (leave_at_upper) {
    // Substitute the leaving basic variable by its complement so it exits at
    // zero: negate its row and reposition the basic value.
    const auto vb = static_cast<std::size_t>(basis_[r]);
    const double u = ubound_[vb];
    for (std::size_t j = 0; j < n_; ++j) at(r, j) = -at(r, j);
    at(r, vb) = 1.0;
    at(r, bcol_) = u - at(r, bcol_);
    cost_[vb] = -cost_[vb];
    cost2_[vb] = -cost2_[vb];
    complemented_[vb] ^= 1;
    // Note: a_rq became -a_rq > 0 — pivot below proceeds normally.
  }

  // Pivot on (r, q).
  const double p = at(r, q);
  CASA_CHECK(std::abs(p) > opt_.tol, "pivot element vanished");
  const double inv = 1.0 / p;
  for (std::size_t j = 0; j <= n_; ++j) at(r, j) *= inv;
  at(r, q) = 1.0;
  for (std::size_t i = 0; i < m_; ++i) {
    if (i == r) continue;
    const double f = at(i, q);
    if (f == 0.0) continue;
    for (std::size_t j = 0; j <= n_; ++j) at(i, j) -= f * at(r, j);
    at(i, q) = 0.0;
  }
  const double dq = d_[q];
  if (dq != 0.0) {
    for (std::size_t j = 0; j < n_; ++j) d_[j] -= dq * at(r, j);
  }
  d_[q] = 0.0;

  row_of_[static_cast<std::size_t>(basis_[r])] = -1;
  basis_[r] = static_cast<int>(q);
  row_of_[q] = static_cast<int>(r);

  degenerate_streak_ = t_best < opt_.tol ? degenerate_streak_ + 1 : 0;
  return StepResult::kProgress;
}

double Tableau::phase1_infeasibility() const {
  double total = 0.0;
  for (std::size_t i = 0; i < m_; ++i) {
    if (is_artificial_[static_cast<std::size_t>(basis_[i])]) {
      total += std::max(0.0, at(i, bcol_));
    }
  }
  return total;
}

Solution Tableau::extract(SolveStatus status) {
  Solution sol;
  sol.status = status;
  sol.iterations = iters_;
  if (status != SolveStatus::kOptimal) return sol;

  sol.values.assign(model_.var_count(), 0.0);
  sol.reduced_costs.assign(model_.var_count(), 0.0);
  for (std::size_t j = 0; j < n_struct_; ++j) {
    double y = 0.0;
    if (row_of_[j] >= 0) {
      y = at(static_cast<std::size_t>(row_of_[j]), bcol_);
    }
    if (complemented_[j]) y = ubound_[j] - y;
    sol.values[j] = shift_[j] + y;
    // d_ holds phase-2 reduced costs in tableau space at termination; a
    // complemented column prices the variable's complement, so flip the
    // sign to report the original orientation (at upper bound => <= 0).
    sol.reduced_costs[j] =
        row_of_[j] >= 0 ? 0.0 : (complemented_[j] ? -d_[j] : d_[j]);
  }

  double obj = model_.objective().constant();
  for (const Term& term : model_.objective().terms()) {
    obj += term.coef * sol.values[term.var.index()];
  }
  sol.objective = obj;
  return sol;
}

Solution Tableau::run() {
  // Phase 1: minimize artificial infeasibility.
  bool need_phase1 = false;
  for (std::size_t j = 0; j < n_; ++j) {
    if (is_artificial_[j]) {
      need_phase1 = true;
      break;
    }
  }
  if (need_phase1) {
    for (;;) {
      const StepResult r = iterate();
      if (r == StepResult::kProgress) continue;
      if (r == StepResult::kIterLimit) return extract(SolveStatus::kLimit);
      if (r == StepResult::kUnbounded) {
        // Phase-1 objective is bounded below by zero; an unbounded ray here
        // indicates numeric trouble. Treat as limit.
        return extract(SolveStatus::kLimit);
      }
      break;  // optimal
    }
    if (phase1_infeasibility() > 1e-7) {
      return extract(SolveStatus::kInfeasible);
    }
    // Freeze artificials at zero and switch cost rows.
    for (std::size_t j = 0; j < n_; ++j) {
      if (is_artificial_[j]) ubound_[j] = 0.0;
    }
  }

  phase1_ = false;
  degenerate_streak_ = 0;
  compute_reduced_costs();
  for (;;) {
    const StepResult r = iterate();
    if (r == StepResult::kProgress) continue;
    if (r == StepResult::kIterLimit) return extract(SolveStatus::kLimit);
    if (r == StepResult::kUnbounded) return extract(SolveStatus::kUnbounded);
    break;
  }
  return extract(SolveStatus::kOptimal);
}

}  // namespace

Solution SimplexSolver::solve_relaxation(const Model& m) const {
  return solve_relaxation(m, {}, {});
}

Solution SimplexSolver::solve_relaxation(const Model& m,
                                         const std::vector<double>& lower,
                                         const std::vector<double>& upper) const {
  CASA_CHECK(lower.empty() || lower.size() == m.var_count(),
             "lower override size mismatch");
  CASA_CHECK(upper.empty() || upper.size() == m.var_count(),
             "upper override size mismatch");
  Tableau tab(m, lower, upper, opt_);
  return tab.run();
}

}  // namespace casa::ilp

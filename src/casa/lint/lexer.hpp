// Preprocessor/string/comment-aware C++ tokenizer for casa::lint.
//
// This is not a compiler front end: it produces exactly the token stream
// the lint rules need — identifiers, literals, punctuation, one token per
// preprocessor directive — while getting the hard lexical cases *right*,
// because those are where grep-based linting silently lies:
//  * string literals (escapes, raw strings with custom delimiters,
//    encoding prefixes) never leak their contents into the code stream;
//  * comments (// with line splices, /* */ across lines) are kept in a
//    side channel so suppression markers stay visible without polluting
//    the rules' view of the code;
//  * `#if 0` / `#if false` regions are skipped like the preprocessor
//    would, so dead code cannot trip (or satisfy) a rule;
//  * backslash-newline splices are joined inside directives.
// Anything it cannot lex (unterminated string/comment) becomes a
// `lex.unterminated` diagnostic instead of garbage tokens.
#pragma once

#include <string>
#include <vector>

#include "casa/lint/source.hpp"

namespace casa::lint {

enum class TokKind {
  kIdent,      ///< identifier or keyword
  kNumber,     ///< numeric literal (incl. digit separators, exponents)
  kString,     ///< string literal; text is the *contents*, undecoded
  kChar,       ///< character literal; text is the contents
  kPunct,      ///< single punctuation character
  kDirective,  ///< whole preprocessor directive, splices joined
};

const char* to_string(TokKind kind);

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 1-based, byte offset within the line

  friend bool operator==(const Token&, const Token&) = default;
};

/// A comment, kept separate from the code stream. `text` excludes the
/// delimiters; `line` is where the comment starts.
struct Comment {
  std::string text;
  int line = 0;
  int col = 0;
};

/// A lexical error: rule `lex.unterminated`, message names the construct.
struct LexError {
  std::string message;
  int line = 0;
  int col = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<LexError> errors;
  /// Lines carrying an `#if 0` / `#if false` whose region was skipped.
  std::vector<int> dead_blocks;
};

LexResult lex(const SourceFile& src);

}  // namespace casa::lint

#include "casa/lint/source.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "casa/support/error.hpp"

namespace casa::lint {

SourceFile load_source(const std::string& fs_path, std::string display_path) {
  std::ifstream in(fs_path, std::ios::binary);
  CASA_CHECK(in.good(), "lint: cannot open source file: " + fs_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  CASA_CHECK(!in.bad(), "lint: read error on source file: " + fs_path);
  return SourceFile{std::move(display_path), std::move(buf).str()};
}

}  // namespace casa::lint

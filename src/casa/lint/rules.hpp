// The casa_lint rule families.
//
// Three groups, all running over the token stream from lexer.hpp:
//  * name-registry sync (`names.*`) — every dotted-name literal
//    ("sim.fetches", "ilp.capacity.mismatch") must come from a central
//    registry constant, and every registry entry must be documented;
//  * include-graph analysis (`include.*`) — style, cycles, and layering
//    derived from the per-module CMakeLists link graph, so a file cannot
//    include a module its target does not directly link;
//  * concurrency / hot-path hygiene (`hygiene.*`, `hotpath.*`, `api.*`) —
//    non-atomic mutable globals, detached threads, raw new/delete,
//    std::endl in hot paths, missing [[nodiscard]] on status-returning
//    solver APIs.
//
// Every rule honours `// casa-lint: allow(<rule>[, <rule>...])` on the
// diagnostic's line or the line above it. Rules take in-memory inputs
// (ParsedFile / SourceFile / docs text) so tests can feed corrupted
// fixtures without touching the filesystem; only the casa_lint driver
// walks the tree.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "casa/lint/lexer.hpp"
#include "casa/lint/runner.hpp"
#include "casa/lint/source.hpp"

namespace casa::lint {

/// A lexed source file plus the suppressions parsed from its comments.
struct ParsedFile {
  SourceFile source;
  LexResult lex;
  /// (line, rule) pairs from `casa-lint: allow(...)` comments.
  std::vector<std::pair<int, std::string>> allows;

  /// True when `rule` is allowed at `line`: a marker comment suppresses
  /// its own line and the line below it, so both trailing comments and
  /// whole-line comments above the finding work.
  bool suppressed(std::string_view rule, int line) const;
};

ParsedFile parse_source(SourceFile src);

/// One `#include` extracted from a directive token.
struct IncludeRef {
  std::string path;  ///< as written, without quotes/brackets
  bool angled = false;
  int line = 0;
};

std::vector<IncludeRef> includes_of(const ParsedFile& file);

/// The CMake-derived layering model: which module directories a file may
/// include, based on the *direct* link dependencies of the target that
/// compiles it.
struct LayerModel {
  struct Target {
    std::string name;               ///< "casa_obs"
    std::string dir;                ///< "obs"
    std::vector<std::string> deps;  ///< direct casa_* link deps
    std::vector<std::string> stems; ///< source stems ("metrics", "span")
  };
  std::vector<Target> targets;

  const Target* find(std::string_view name) const;
  /// Targets whose sources live in module dir `dir`.
  std::vector<const Target*> targets_in_dir(std::string_view dir) const;
  /// Target attribution for a file: the target listing `<stem>.cpp` in
  /// `dir`, else every target in `dir` (headers with no same-stem .cpp).
  std::vector<const Target*> owners(std::string_view dir,
                                    std::string_view stem) const;
  /// May a file owned by targets in `dir` (stem `stem`) include a header
  /// from module `include_dir`?
  bool allowed(std::string_view dir, std::string_view stem,
               std::string_view include_dir) const;
};

/// Parses `add_library` / `target_link_libraries` from the per-module
/// CMakeLists files (paths like "src/casa/obs/CMakeLists.txt").
LayerModel parse_layer_model(const std::vector<SourceFile>& cmake_files);

/// Raw text of the documentation files the registries sync against.
struct DocsTexts {
  std::string metrics;  ///< docs/metrics.md
  std::string tracing;  ///< docs/tracing.md
  std::string checks;   ///< docs/checks.md
  std::string faults;   ///< docs/faults.md
  std::string lint;     ///< docs/lint.md
};

/// Entire-string dotted-name test: two or more non-empty
/// `[a-z0-9_-]+` segments joined by '.', starting with a letter, and not
/// a file name (known extensions excluded).
bool is_dotted_name(std::string_view s);

// ---- per-file rules ----
void rule_lex(const ParsedFile& file, LintRunner& runner);
void rule_pragma_once(const ParsedFile& file, LintRunner& runner);
void rule_dead_code(const ParsedFile& file, LintRunner& runner);
void rule_include_style(const ParsedFile& file, LintRunner& runner);
void rule_hygiene(const ParsedFile& file, LintRunner& runner);
void rule_api_nodiscard(const ParsedFile& file, LintRunner& runner);

// ---- whole-tree rules ----
void rule_names(const std::vector<ParsedFile>& files, const DocsTexts& docs,
                LintRunner& runner);
void rule_include_graph(const std::vector<ParsedFile>& files,
                        const LayerModel& layers, LintRunner& runner);

/// Everything casa_lint hands to the rules, pre-loaded by the driver (or a
/// test).
struct TreeInputs {
  std::vector<ParsedFile> files;
  LayerModel layers;
  DocsTexts docs;
};

/// Runs every rule family and records files/rules-evaluated counters.
void run_all_rules(const TreeInputs& inputs, LintRunner& runner);

}  // namespace casa::lint

#include "casa/lint/runner.hpp"

#include <cctype>
#include <cstddef>
#include <ostream>
#include <sstream>
#include <utility>

#include "casa/obs/export.hpp"
#include "casa/support/error.hpp"

namespace casa::lint {

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << check::to_string(severity) << '[' << rule << "] " << file << ':'
     << line << ':' << col << ": " << message;
  if (!hint.empty()) os << " (hint: " << hint << ')';
  return os.str();
}

void LintRunner::report(Diagnostic d) {
  if (d.severity == check::Severity::kError) ++errors_;
  diags_.push_back(std::move(d));
}

void LintRunner::error(std::string_view rule, std::string file, int line,
                       int col, std::string message, std::string hint) {
  report(Diagnostic{check::Severity::kError, std::string(rule),
                    std::move(file), line, col, std::move(message),
                    std::move(hint)});
}

void LintRunner::warn(std::string_view rule, std::string file, int line,
                      int col, std::string message, std::string hint) {
  report(Diagnostic{check::Severity::kWarning, std::string(rule),
                    std::move(file), line, col, std::move(message),
                    std::move(hint)});
}

std::string LintRunner::summary() const {
  std::ostringstream os;
  os << "casa-lint: ";
  if (diags_.empty()) {
    os << "OK";
  } else {
    os << errors_ << (errors_ == 1 ? " error, " : " errors, ")
       << warning_count() << (warning_count() == 1 ? " warning" : " warnings");
  }
  os << " (" << files_scanned_ << (files_scanned_ == 1 ? " file, " : " files, ")
     << rules_evaluated_ << (rules_evaluated_ == 1 ? " rule family" : " rule families")
     << ")";
  return os.str();
}

void write_lint_json(std::ostream& os, const LintRunner& runner,
                     const std::string& tool) {
  os << "{\n"
     << "  \"schema\": \"casa-lint v1\",\n"
     << "  \"tool\": \"" << obs::json_escape(tool) << "\",\n"
     << "  \"files_scanned\": " << runner.files_scanned() << ",\n"
     << "  \"rules_evaluated\": " << runner.rules_evaluated() << ",\n"
     << "  \"errors\": " << runner.error_count() << ",\n"
     << "  \"warnings\": " << runner.warning_count() << ",\n"
     << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : runner.diagnostics()) {
    os << (first ? "" : ",") << "\n    {\"severity\": \""
       << check::to_string(d.severity) << "\", \"rule\": \""
       << obs::json_escape(d.rule) << "\", \"file\": \""
       << obs::json_escape(d.file) << "\", \"line\": " << d.line
       << ", \"col\": " << d.col << ", \"message\": \""
       << obs::json_escape(d.message) << "\", \"hint\": \""
       << obs::json_escape(d.hint) << "\"}";
    first = false;
  }
  if (!runner.diagnostics().empty()) os << "\n  ";
  os << "]\n}\n";
}

void write_fix_list(std::ostream& os, const LintRunner& runner) {
  for (const Diagnostic& d : runner.diagnostics()) {
    os << d.file << ':' << d.line << ':' << d.col << '\t' << d.rule << '\t'
       << (d.hint.empty() ? d.message : d.hint) << '\n';
  }
}

namespace {

// Minimal JSON reader for the casa-lint artifact, same shape as the one
// the io serializer uses: recursive descent, CASA_CHECK on malformed
// input so a corrupted artifact is rejected rather than half-read.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> members;
  std::vector<JsonValue> items;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    CASA_CHECK(i_ >= text_.size(), "lint artifact: trailing data after JSON");
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_])) != 0) {
      ++i_;
    }
  }
  char peek() {
    skip_ws();
    CASA_CHECK(i_ < text_.size(), "lint artifact: unexpected end of JSON");
    return text_[i_];
  }
  void expect(char c) {
    CASA_CHECK(peek() == c, std::string("lint artifact: expected '") + c +
                                "' at offset " + std::to_string(i_));
    ++i_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return JsonValue{};
    }
    return number();
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++i_;
      return v;
    }
    while (true) {
      std::string key = string();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++i_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      CASA_CHECK(i_ < text_.size(), "lint artifact: unterminated string");
      const char c = text_[i_++];
      if (c == '"') return out;
      if (c == '\\') {
        CASA_CHECK(i_ < text_.size(), "lint artifact: bad escape");
        const char e = text_[i_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            CASA_CHECK(i_ + 4 <= text_.size(), "lint artifact: bad \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[i_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                CASA_CHECK(false, "lint artifact: bad \\u escape digit");
              }
            }
            // The writer only emits \u00XX for control bytes.
            out += static_cast<char>(code);
            break;
          }
          default:
            out += e;  // '"', '\\', '/'
        }
        continue;
      }
      out += c;
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    skip_ws();
    std::size_t j = i_;
    while (j < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[j])) != 0 ||
            text_[j] == '-' || text_[j] == '+' || text_[j] == '.' ||
            text_[j] == 'e' || text_[j] == 'E')) {
      ++j;
    }
    CASA_CHECK(j > i_, "lint artifact: expected a number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(i_, j - i_));
    i_ = j;
    return v;
  }

  void literal(std::string_view word) {
    skip_ws();
    CASA_CHECK(text_.compare(i_, word.size(), word) == 0,
               "lint artifact: bad literal");
    i_ += word.size();
  }

  std::string text_;
  std::size_t i_ = 0;
};

const JsonValue& member(const JsonValue& obj, const std::string& key) {
  CASA_CHECK(obj.kind == JsonValue::Kind::kObject,
             "lint artifact: expected an object for \"" + key + "\"");
  const JsonValue* v = obj.find(key);
  CASA_CHECK(v != nullptr, "lint artifact: missing \"" + key + "\"");
  return *v;
}

std::size_t count(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  CASA_CHECK(v.kind == JsonValue::Kind::kNumber && v.number >= 0,
             "lint artifact: \"" + key + "\" must be a non-negative number");
  return static_cast<std::size_t>(v.number);
}

std::string str(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  CASA_CHECK(v.kind == JsonValue::Kind::kString,
             "lint artifact: \"" + key + "\" must be a string");
  return v.text;
}

}  // namespace

LintRunner read_lint_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const JsonValue root = JsonReader(std::move(buf).str()).parse();
  CASA_CHECK(str(root, "schema") == "casa-lint v1",
             "lint artifact: schema is not \"casa-lint v1\"");
  LintRunner runner;
  runner.mark_scanned(count(root, "files_scanned"));
  runner.mark_evaluated(count(root, "rules_evaluated"));
  const JsonValue& diags = member(root, "diagnostics");
  CASA_CHECK(diags.kind == JsonValue::Kind::kArray,
             "lint artifact: \"diagnostics\" must be an array");
  for (const JsonValue& d : diags.items) {
    Diagnostic out;
    const std::string sev = str(d, "severity");
    CASA_CHECK(sev == "error" || sev == "warning",
               "lint artifact: bad severity \"" + sev + "\"");
    out.severity =
        sev == "error" ? check::Severity::kError : check::Severity::kWarning;
    out.rule = str(d, "rule");
    out.file = str(d, "file");
    out.line = static_cast<int>(count(d, "line"));
    out.col = static_cast<int>(count(d, "col"));
    out.message = str(d, "message");
    out.hint = str(d, "hint");
    runner.report(std::move(out));
  }
  CASA_CHECK(count(root, "errors") == runner.error_count(),
             "lint artifact: \"errors\" disagrees with diagnostics");
  CASA_CHECK(count(root, "warnings") == runner.warning_count(),
             "lint artifact: \"warnings\" disagrees with diagnostics");
  return runner;
}

}  // namespace casa::lint

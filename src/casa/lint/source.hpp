// Source representation for casa::lint: a display path (repo-relative,
// stable in diagnostics and artifacts) plus the raw text. Tests build
// SourceFiles inline; the casa_lint driver loads them from disk.
#pragma once

#include <string>

namespace casa::lint {

struct SourceFile {
  std::string path;  ///< repo-relative display path ("src/casa/obs/x.hpp")
  std::string text;
};

/// Reads `fs_path` into a SourceFile whose display path is `display_path`.
/// Throws casa::PreconditionError when the file cannot be read.
SourceFile load_source(const std::string& fs_path, std::string display_path);

}  // namespace casa::lint

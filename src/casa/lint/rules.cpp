#include "casa/lint/rules.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "casa/check/rule_ids.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/lint/rule_ids.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/trace_names.hpp"

namespace casa::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}
bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// "src/casa/obs/metrics.hpp" -> "obs"; "" when not under src/casa/.
std::string_view module_dir(std::string_view path) {
  constexpr std::string_view kPrefix = "src/casa/";
  if (!starts_with(path, kPrefix)) return {};
  std::string_view rest = path.substr(kPrefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return rest.substr(0, slash);
}

/// "src/casa/obs/metrics.hpp" -> "metrics".
std::string_view file_stem(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  std::string_view name =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.rfind('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

/// First word of a directive body: "#  pragma once" -> "pragma".
std::string_view directive_keyword(std::string_view body) {
  std::size_t i = 0;
  while (i < body.size() && body[i] == '#') ++i;
  while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < body.size() &&
         ((body[j] >= 'a' && body[j] <= 'z') ||
          (body[j] >= 'A' && body[j] <= 'Z') ||
          (body[j] >= '0' && body[j] <= '9') || body[j] == '_')) {
    ++j;
  }
  return body.substr(i, j - i);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// ParsedFile / suppressions
// ---------------------------------------------------------------------------

ParsedFile parse_source(SourceFile src) {
  ParsedFile out;
  out.lex = lex(src);
  out.source = std::move(src);
  for (const Comment& c : out.lex.comments) {
    std::size_t pos = c.text.find("casa-lint:");
    if (pos == std::string::npos) continue;
    pos = c.text.find("allow(", pos);
    if (pos == std::string::npos) continue;
    const std::size_t close = c.text.find(')', pos);
    if (close == std::string::npos) continue;
    std::string_view inner(c.text.data() + pos + 6, close - pos - 6);
    while (!inner.empty()) {
      const std::size_t comma = inner.find(',');
      std::string_view rule = trim(inner.substr(0, comma));
      if (!rule.empty()) out.allows.emplace_back(c.line, std::string(rule));
      if (comma == std::string_view::npos) break;
      inner.remove_prefix(comma + 1);
    }
  }
  return out;
}

bool ParsedFile::suppressed(std::string_view rule, int line) const {
  for (const auto& [allow_line, allow_rule] : allows) {
    if (allow_rule == rule && (allow_line == line || allow_line == line - 1)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Includes
// ---------------------------------------------------------------------------

std::vector<IncludeRef> includes_of(const ParsedFile& file) {
  std::vector<IncludeRef> out;
  for (const Token& t : file.lex.tokens) {
    if (t.kind != TokKind::kDirective) continue;
    if (directive_keyword(t.text) != "include") continue;
    const std::size_t open = t.text.find_first_of("\"<");
    if (open == std::string::npos) continue;
    const bool angled = t.text[open] == '<';
    const std::size_t close = t.text.find(angled ? '>' : '"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back(IncludeRef{
        t.text.substr(open + 1, close - open - 1), angled, t.line});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Layer model from CMakeLists
// ---------------------------------------------------------------------------

namespace {

/// CMake tokens: comments stripped, parens split out, rest on whitespace.
std::vector<std::string> cmake_tokens(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  bool in_comment = false;
  for (const char c : text) {
    if (c == '\n') {
      in_comment = false;
      if (!cur.empty()) out.push_back(std::exchange(cur, {}));
      continue;
    }
    if (in_comment) continue;
    if (c == '#') {
      in_comment = true;
      if (!cur.empty()) out.push_back(std::exchange(cur, {}));
      continue;
    }
    if (c == '(' || c == ')') {
      if (!cur.empty()) out.push_back(std::exchange(cur, {}));
      out.push_back(std::string(1, c));
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) out.push_back(std::exchange(cur, {}));
      continue;
    }
    cur += c;
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool is_cmake_keyword(std::string_view tok) {
  return tok == "STATIC" || tok == "SHARED" || tok == "OBJECT" ||
         tok == "INTERFACE" || tok == "MODULE" || tok == "ALIAS" ||
         tok == "EXCLUDE_FROM_ALL" || tok == "PUBLIC" || tok == "PRIVATE";
}

}  // namespace

const LayerModel::Target* LayerModel::find(std::string_view name) const {
  for (const Target& t : targets) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::vector<const LayerModel::Target*> LayerModel::targets_in_dir(
    std::string_view dir) const {
  std::vector<const Target*> out;
  for (const Target& t : targets) {
    if (t.dir == dir) out.push_back(&t);
  }
  return out;
}

std::vector<const LayerModel::Target*> LayerModel::owners(
    std::string_view dir, std::string_view stem) const {
  for (const Target& t : targets) {
    if (t.dir != dir) continue;
    if (std::find(t.stems.begin(), t.stems.end(), stem) != t.stems.end()) {
      return {&t};
    }
  }
  return targets_in_dir(dir);
}

bool LayerModel::allowed(std::string_view dir, std::string_view stem,
                         std::string_view include_dir) const {
  if (include_dir == dir) return true;
  const std::vector<const Target*> own = owners(dir, stem);
  if (own.empty()) return true;  // unknown module: never flag blindly
  for (const Target* t : own) {
    for (const std::string& dep : t->deps) {
      const Target* d = find(dep);
      if (d != nullptr && d->dir == include_dir) return true;
    }
  }
  return false;
}

LayerModel parse_layer_model(const std::vector<SourceFile>& cmake_files) {
  LayerModel model;
  for (const SourceFile& f : cmake_files) {
    const std::string dir(module_dir(f.path));
    const std::vector<std::string> toks = cmake_tokens(f.text);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i] == "add_library" && i + 2 < toks.size() &&
          toks[i + 1] == "(") {
        LayerModel::Target t;
        t.name = toks[i + 2];
        t.dir = dir;
        for (std::size_t j = i + 3; j < toks.size() && toks[j] != ")"; ++j) {
          if (is_cmake_keyword(toks[j])) continue;
          if (ends_with(toks[j], ".cpp")) {
            t.stems.push_back(std::string(file_stem(toks[j])));
          }
        }
        model.targets.push_back(std::move(t));
        continue;
      }
      if (toks[i] == "target_link_libraries" && i + 2 < toks.size() &&
          toks[i + 1] == "(") {
        const std::string& name = toks[i + 2];
        for (LayerModel::Target& t : model.targets) {
          if (t.name != name) continue;
          for (std::size_t j = i + 3; j < toks.size() && toks[j] != ")";
               ++j) {
            if (is_cmake_keyword(toks[j])) continue;
            if (starts_with(toks[j], "casa_")) t.deps.push_back(toks[j]);
          }
          break;
        }
      }
    }
  }
  return model;
}

// ---------------------------------------------------------------------------
// Dotted names
// ---------------------------------------------------------------------------

bool is_dotted_name(std::string_view s) {
  // File names use the same shape; a path or artifact name is not a
  // metric/rule id, so known extensions are excluded outright.
  static constexpr std::string_view kFileExts[] = {
      ".json", ".jsonl", ".csv", ".md",   ".txt", ".sh",  ".hpp",
      ".cpp",  ".cc",    ".h",   ".yml",  ".yaml", ".py", ".html",
      ".log",  ".gz",    ".cfg", ".trace",
  };
  if (s.size() < 3) return false;
  if (s[0] < 'a' || s[0] > 'z') return false;
  std::size_t segments = 1;
  std::size_t seg_len = 0;
  for (const char c : s) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0 || segments < 2) return false;
  for (const std::string_view ext : kFileExts) {
    if (ends_with(s, ext)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

void rule_lex(const ParsedFile& file, LintRunner& runner) {
  for (const LexError& e : file.lex.errors) {
    if (file.suppressed(rule_ids::kLexUnterminated, e.line)) continue;
    runner.error(rule_ids::kLexUnterminated, file.source.path, e.line, e.col,
                 e.message);
  }
}

void rule_pragma_once(const ParsedFile& file, LintRunner& runner) {
  if (!ends_with(file.source.path, ".hpp")) return;
  for (const Token& t : file.lex.tokens) {
    if (t.kind == TokKind::kDirective &&
        directive_keyword(t.text) == "pragma" &&
        t.text.find("once") != std::string::npos) {
      return;
    }
  }
  if (file.suppressed(rule_ids::kPpPragmaOnce, 1)) return;
  runner.error(rule_ids::kPpPragmaOnce, file.source.path, 1, 1,
               "header has no #pragma once",
               "add #pragma once below the header comment");
}

void rule_dead_code(const ParsedFile& file, LintRunner& runner) {
  for (const int line : file.lex.dead_blocks) {
    if (file.suppressed(rule_ids::kPpDeadCode, line)) continue;
    runner.warn(rule_ids::kPpDeadCode, file.source.path, line, 1,
                "code disabled with #if 0 / #if false",
                "delete the dead block or leave a comment explaining why it "
                "must stay");
  }
}

void rule_include_style(const ParsedFile& file, LintRunner& runner) {
  for (const IncludeRef& inc : includes_of(file)) {
    if (file.suppressed(rule_ids::kIncludeStyle, inc.line)) continue;
    if (inc.angled && starts_with(inc.path, "casa/")) {
      runner.error(rule_ids::kIncludeStyle, file.source.path, inc.line, 1,
                   "project header <" + inc.path + "> included with angle "
                   "brackets",
                   "use #include \"" + inc.path + "\"");
    } else if (!inc.angled && !starts_with(inc.path, "casa/")) {
      runner.error(rule_ids::kIncludeStyle, file.source.path, inc.line, 1,
                   "quoted include \"" + inc.path + "\" is not a casa/ "
                   "project header",
                   "use angle brackets for system and third-party headers");
    }
  }
}

namespace {

constexpr std::string_view kHotDirs[] = {
    "cachesim", "memsim", "sim", "ilp", "core", "conflict", "trace",
    "traceopt",
};

bool in_hot_dir(std::string_view path) {
  const std::string_view dir = module_dir(path);
  for (const std::string_view d : kHotDirs) {
    if (dir == d) return true;
  }
  return false;
}

/// Idents that mean a declaration already carries synchronisation or
/// immutability and needs no mutable-global diagnostic.
bool is_sync_or_const_ident(std::string_view t) {
  return t == "const" || t == "constexpr" || t == "constinit" ||
         t == "thread_local" || starts_with(t, "atomic") || t == "mutex" ||
         t == "shared_mutex" || t == "recursive_mutex" ||
         t == "timed_mutex" || t == "once_flag" ||
         t == "condition_variable" || t == "condition_variable_any" ||
         t == "counting_semaphore" || t == "binary_semaphore" ||
         t == "barrier" || t == "latch";
}

bool is_skip_leader(std::string_view t) {
  return t == "using" || t == "typedef" || t == "static_assert" ||
         t == "namespace" || t == "template" || t == "friend" ||
         t == "extern" ||
         t == "concept" || t == "return" || t == "if" || t == "for" ||
         t == "while" || t == "do" || t == "switch" || t == "case" ||
         t == "default" || t == "break" || t == "continue" || t == "goto" ||
         t == "else" || t == "try" || t == "catch" || t == "public" ||
         t == "private" || t == "protected" || t == "co_return" ||
         t == "throw" || t == "delete" || t == "operator";
}

/// Analyzes one declaration (tokens between statement boundaries). When
/// `require_static` is set (block / class scope) only `static` locals and
/// members are candidates; at namespace scope every definition is.
void check_mutable_decl(const ParsedFile& file,
                        const std::vector<const Token*>& decl,
                        bool require_static, LintRunner& runner) {
  if (decl.empty()) return;
  if (is_skip_leader(decl.front()->text)) return;
  bool has_static = false;
  bool has_ident = false;
  std::size_t eq_pos = decl.size();
  std::size_t paren_pos = decl.size();
  for (std::size_t i = 0; i < decl.size(); ++i) {
    const Token& t = *decl[i];
    if (t.kind == TokKind::kIdent) {
      has_ident = true;
      if (t.text == "static") has_static = true;
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum") {
        return;  // type definition / elaborated specifier
      }
      if (is_sync_or_const_ident(t.text)) return;
      if (is_skip_leader(t.text)) return;
    } else if (t.kind == TokKind::kPunct) {
      if (t.text == "(" && paren_pos == decl.size()) paren_pos = i;
      if (t.text == "=" && eq_pos == decl.size()) eq_pos = i;
    }
  }
  if (!has_ident) return;
  if (require_static && !has_static) return;
  // A '(' before any '=' is a function declaration or a call statement.
  if (paren_pos < eq_pos) return;
  // The declared name: the last identifier before the initializer.
  const Token* name = nullptr;
  for (std::size_t i = 0; i < eq_pos && i < decl.size(); ++i) {
    if (decl[i]->kind == TokKind::kIdent) name = decl[i];
  }
  if (name == nullptr) return;
  const Token& at = *decl.front();
  if (file.suppressed(rule_ids::kHygieneMutableGlobal, at.line)) return;
  runner.error(rule_ids::kHygieneMutableGlobal, file.source.path, at.line,
               at.col,
               std::string(require_static ? "mutable static \""
                                          : "mutable global \"") +
                   name->text + "\" is not atomic, locked, or thread_local",
               "make it const/constexpr, std::atomic, thread_local, or "
               "guard it with a mutex");
}

enum class ScopeKind { kNamespace, kType, kBlock };

void scan_mutable_globals(const ParsedFile& file, LintRunner& runner) {
  const std::vector<Token>& toks = file.lex.tokens;
  std::vector<ScopeKind> scopes{ScopeKind::kNamespace};
  std::vector<const Token*> decl;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kDirective) continue;
    if (t.kind != TokKind::kPunct) {
      decl.push_back(&t);
      continue;
    }
    if (t.text == ";") {
      check_mutable_decl(file, decl, scopes.back() != ScopeKind::kNamespace,
                         runner);
      decl.clear();
      continue;
    }
    if (t.text == "{") {
      bool has_ns = false, has_type = false, has_paren = false,
           has_eq = false;
      for (const Token* d : decl) {
        if (d->kind == TokKind::kIdent) {
          if (d->text == "namespace") has_ns = true;
          if (d->text == "class" || d->text == "struct" ||
              d->text == "union" || d->text == "enum") {
            has_type = true;
          }
        } else if (d->kind == TokKind::kPunct) {
          if (d->text == "(") has_paren = true;
          if (d->text == "=") has_eq = true;
        }
      }
      const bool block_leader =
          decl.empty() ||
          (decl.size() == 1 && (decl.front()->text == "else" ||
                                decl.front()->text == "do" ||
                                decl.front()->text == "try"));
      if (has_ns || (!decl.empty() && decl.front()->text == "extern")) {
        scopes.push_back(ScopeKind::kNamespace);
      } else if (has_type && !has_paren && !has_eq) {
        scopes.push_back(ScopeKind::kType);
      } else if (has_paren || block_leader) {
        scopes.push_back(ScopeKind::kBlock);
      } else {
        // Brace initializer (`int g{0};`, `= {1, 2}`): skip its contents
        // but keep the declaration for the ';' that follows.
        int depth = 1;
        ++i;
        for (; i < toks.size(); ++i) {
          if (toks[i].kind != TokKind::kPunct) continue;
          if (toks[i].text == "{") ++depth;
          if (toks[i].text == "}" && --depth == 0) break;
        }
        continue;
      }
      decl.clear();
      continue;
    }
    if (t.text == "}") {
      if (scopes.size() > 1) scopes.pop_back();
      decl.clear();
      continue;
    }
    decl.push_back(&t);
  }
}

}  // namespace

void rule_hygiene(const ParsedFile& file, LintRunner& runner) {
  const std::vector<Token>& toks = file.lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "new") {
      if (file.suppressed(rule_ids::kHygieneRawNew, t.line)) continue;
      runner.error(rule_ids::kHygieneRawNew, file.source.path, t.line, t.col,
                   "raw operator new",
                   "use std::make_unique / std::vector instead of manual "
                   "allocation");
    } else if (t.text == "delete") {
      // `= delete;` / `= delete,` is the deleted-function syntax, not a
      // deallocation.
      const bool deleted_fn =
          i > 0 && toks[i - 1].kind == TokKind::kPunct &&
          toks[i - 1].text == "=" && i + 1 < toks.size() &&
          toks[i + 1].kind == TokKind::kPunct &&
          (toks[i + 1].text == ";" || toks[i + 1].text == ",");
      if (deleted_fn) continue;
      if (file.suppressed(rule_ids::kHygieneRawNew, t.line)) continue;
      runner.error(rule_ids::kHygieneRawNew, file.source.path, t.line, t.col,
                   "raw operator delete",
                   "owning pointers belong in std::unique_ptr");
    } else if (t.text == "detach") {
      const bool member_call =
          i > 0 && toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "." ||
           (toks[i - 1].text == ">" && i > 1 &&
            toks[i - 2].kind == TokKind::kPunct &&
            toks[i - 2].text == "-")) &&
          i + 1 < toks.size() && toks[i + 1].text == "(";
      if (!member_call) continue;
      if (file.suppressed(rule_ids::kHygieneDetachedThread, t.line)) continue;
      runner.error(rule_ids::kHygieneDetachedThread, file.source.path, t.line,
                   t.col, "detached thread",
                   "join the thread (or hand it to ThreadPool) so shutdown "
                   "is deterministic");
    } else if (t.text == "endl") {
      if (file.suppressed(rule_ids::kHotpathEndl, t.line)) continue;
      const bool hot = in_hot_dir(file.source.path);
      const std::string msg =
          "std::endl flushes the stream on every call";
      const std::string hint = "write '\\n' and flush explicitly if needed";
      if (hot) {
        runner.error(rule_ids::kHotpathEndl, file.source.path, t.line, t.col,
                     msg + " (hot-path module)", hint);
      } else {
        runner.warn(rule_ids::kHotpathEndl, file.source.path, t.line, t.col,
                    msg, hint);
      }
    }
  }
  scan_mutable_globals(file, runner);
}

void rule_api_nodiscard(const ParsedFile& file, LintRunner& runner) {
  const std::string_view dir = module_dir(file.source.path);
  if ((dir != "ilp" && dir != "core") ||
      !ends_with(file.source.path, ".hpp")) {
    return;
  }
  // Result/status types whose value must not be silently dropped.
  constexpr std::string_view kStatusTypes[] = {
      "Solution", "SolveStatus", "KnapsackResult", "CasaBranchBoundResult",
      "AllocationResult",
  };
  const std::vector<Token>& toks = file.lex.tokens;
  bool window_nodiscard = false;
  bool window_dirty = false;  // saw '=' or 'return': not a declaration
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      window_nodiscard = false;
      window_dirty = false;
      continue;
    }
    if (t.kind == TokKind::kIdent && t.text == "nodiscard") {
      window_nodiscard = true;
      continue;
    }
    if ((t.kind == TokKind::kPunct && t.text == "=") ||
        (t.kind == TokKind::kIdent && t.text == "return")) {
      window_dirty = true;
      continue;
    }
    if (t.kind != TokKind::kIdent || window_dirty || window_nodiscard) {
      continue;
    }
    bool is_status = false;
    for (const std::string_view s : kStatusTypes) {
      if (t.text == s) is_status = true;
    }
    if (!is_status) continue;
    if (i + 2 >= toks.size() || toks[i + 1].kind != TokKind::kIdent ||
        toks[i + 2].text != "(") {
      continue;
    }
    if (file.suppressed(rule_ids::kApiNodiscardStatus, t.line)) continue;
    runner.error(rule_ids::kApiNodiscardStatus, file.source.path, t.line,
                 t.col,
                 "status-returning API " + toks[i + 1].text +
                     "() is not [[nodiscard]]",
                 "declare it [[nodiscard]] so callers cannot drop the "
                 "result");
    window_dirty = true;  // one diagnostic per declaration
  }
}

// ---------------------------------------------------------------------------
// Whole-tree rules
// ---------------------------------------------------------------------------

namespace {

bool is_registry_header(std::string_view path) {
  return ends_with(path, "obs/metric_names.hpp") ||
         ends_with(path, "obs/trace_names.hpp") ||
         ends_with(path, "check/rule_ids.hpp") ||
         ends_with(path, "fault/site_names.hpp") ||
         ends_with(path, "lint/rule_ids.hpp");
}

template <std::size_t N>
bool contains(const std::string_view (&names)[N], std::string_view s) {
  for (const std::string_view n : names) {
    if (n == s) return true;
  }
  return false;
}

}  // namespace

void rule_names(const std::vector<ParsedFile>& files, const DocsTexts& docs,
                LintRunner& runner) {
  for (const ParsedFile& file : files) {
    const std::string_view path = file.source.path;
    if (is_registry_header(path)) continue;
    if (starts_with(path, "src/casa/workloads/")) continue;
    for (const Token& t : file.lex.tokens) {
      if (t.kind != TokKind::kString || !is_dotted_name(t.text)) continue;
      if (file.suppressed(rule_ids::kNamesUnregistered, t.line)) continue;
      const bool registered =
          obs::metric_names::is_registered(t.text) ||
          obs::trace_names::is_registered(t.text) ||
          check::rule_ids::is_registered(t.text) ||
          fault::site_names::is_registered(t.text) ||
          rule_ids::is_registered(t.text);
      if (registered) {
        runner.error(rule_ids::kNamesUnregistered, std::string(path), t.line,
                     t.col,
                     "registered name \"" + t.text + "\" written as a "
                     "string literal",
                     "use the registry constant so a rename cannot miss "
                     "this site");
      } else {
        runner.error(rule_ids::kNamesUnregistered, std::string(path), t.line,
                     t.col,
                     "dotted name \"" + t.text + "\" is in no registry",
                     "add it to obs/metric_names.hpp, obs/trace_names.hpp, "
                     "check/rule_ids.hpp, fault/site_names.hpp, or "
                     "lint/rule_ids.hpp and document it");
      }
    }
  }
  // Registry -> docs sync. Each registry entry must appear (verbatim) in
  // its catalogue; a renamed metric that leaves stale docs fails here.
  for (const std::string_view name : obs::metric_names::kAll) {
    if (docs.metrics.find(name) != std::string::npos) continue;
    runner.error(rule_ids::kNamesUndocumented, "docs/metrics.md", 1, 1,
                 "metric \"" + std::string(name) + "\" is not documented",
                 "add a row for it in docs/metrics.md");
  }
  for (const std::string_view name : obs::trace_names::kAll) {
    if (docs.tracing.find(name) != std::string::npos ||
        docs.metrics.find(name) != std::string::npos) {
      continue;
    }
    runner.error(rule_ids::kNamesUndocumented, "docs/tracing.md", 1, 1,
                 "trace name \"" + std::string(name) + "\" is not documented",
                 "add it to the event table in docs/tracing.md");
  }
  for (const std::string_view name : check::rule_ids::kAll) {
    if (docs.checks.find(name) != std::string::npos) continue;
    runner.error(rule_ids::kNamesUndocumented, "docs/checks.md", 1, 1,
                 "check rule \"" + std::string(name) + "\" is not documented",
                 "add it to the rule catalogue in docs/checks.md");
  }
  for (const std::string_view name : fault::site_names::kAll) {
    if (docs.faults.find(name) != std::string::npos) continue;
    runner.error(rule_ids::kNamesUndocumented, "docs/faults.md", 1, 1,
                 "fault site \"" + std::string(name) + "\" is not documented",
                 "add it to the site catalogue in docs/faults.md");
  }
  for (const std::string_view name : rule_ids::kAll) {
    if (docs.lint.find(name) != std::string::npos) continue;
    runner.error(rule_ids::kNamesUndocumented, "docs/lint.md", 1, 1,
                 "lint rule \"" + std::string(name) + "\" is not documented",
                 "add it to the rule catalogue in docs/lint.md");
  }
}

namespace {

/// Modules every file may be included from but which may depend on almost
/// nothing themselves, plus the export-boundary rules: measurement-producing
/// modules must not reach into reporting.
void check_forbidden(const ParsedFile& file, std::string_view dir,
                     const IncludeRef& inc, LintRunner& runner) {
  if (!starts_with(inc.path, "casa/")) return;
  if (file.suppressed(rule_ids::kIncludeForbidden, inc.line)) return;
  if (dir == "support" && !starts_with(inc.path, "casa/support/")) {
    runner.error(rule_ids::kIncludeForbidden, file.source.path, inc.line, 1,
                 "support/ must stay dependency-free but includes \"" +
                     inc.path + "\"",
                 "move the shared code into casa/support or invert the "
                 "dependency");
    return;
  }
  const bool solver_layer = dir == "core" || dir == "conflict" ||
                            dir == "cachesim" || dir == "ilp";
  if (solver_layer && (starts_with(inc.path, "casa/report/") ||
                       inc.path == "casa/obs/export.hpp")) {
    runner.error(rule_ids::kIncludeForbidden, file.source.path, inc.line, 1,
                 "solver-layer module " + std::string(dir) +
                     "/ includes reporting header \"" + inc.path + "\"",
                 "solvers emit metrics/traces; exporting and reporting "
                 "belong above them");
  }
}

struct CycleFinder {
  const std::map<std::string, std::vector<std::pair<std::string, int>>>&
      graph;  // header path -> (included header path, line)
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  LintRunner& runner;
  const std::map<std::string, const ParsedFile*>& by_path;

  void visit(const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    const auto it = graph.find(node);
    if (it != graph.end()) {
      for (const auto& [dep, line] : it->second) {
        if (graph.find(dep) == graph.end()) continue;
        const int c = color[dep];
        if (c == 0) {
          visit(dep);
        } else if (c == 1) {
          report(node, dep, line);
        }
      }
    }
    color[node] = 2;
    stack.pop_back();
  }

  void report(const std::string& from, const std::string& back_to,
              int line) {
    // The cycle is the stack suffix starting at back_to.
    std::vector<std::string> cycle;
    bool in = false;
    for (const std::string& n : stack) {
      if (n == back_to) in = true;
      if (in) cycle.push_back(n);
    }
    std::vector<std::string> key = cycle;
    std::sort(key.begin(), key.end());
    std::string key_str;
    for (const std::string& k : key) key_str += k + "|";
    if (!reported.insert(key_str).second) return;
    const auto fit = by_path.find(from);
    if (fit != by_path.end() &&
        fit->second->suppressed(rule_ids::kIncludeCycle, line)) {
      return;
    }
    std::ostringstream msg;
    msg << "include cycle: ";
    for (const std::string& n : cycle) msg << n << " -> ";
    msg << back_to;
    runner.error(rule_ids::kIncludeCycle, from, line, 1, msg.str(),
                 "break the cycle with a forward declaration or by moving "
                 "the shared type down a layer");
  }
};

}  // namespace

void rule_include_graph(const std::vector<ParsedFile>& files,
                        const LayerModel& layers, LintRunner& runner) {
  // Header graph keyed by repo path ("src/casa/obs/metrics.hpp"); edges
  // only between project headers so the cycle scan is closed.
  std::map<std::string, std::vector<std::pair<std::string, int>>> graph;
  std::map<std::string, const ParsedFile*> by_path;
  for (const ParsedFile& f : files) {
    by_path[f.source.path] = &f;
    if (!ends_with(f.source.path, ".hpp")) continue;
    auto& edges = graph[f.source.path];
    for (const IncludeRef& inc : includes_of(f)) {
      if (!starts_with(inc.path, "casa/")) continue;
      edges.emplace_back("src/" + inc.path, inc.line);
    }
  }
  CycleFinder finder{graph, {}, {}, {}, runner, by_path};
  for (const auto& [node, _] : graph) {
    if (finder.color[node] == 0) finder.visit(node);
  }

  // Layering + forbidden edges, for every scanned file under src/casa/.
  for (const ParsedFile& f : files) {
    const std::string_view dir = module_dir(f.source.path);
    if (dir.empty()) continue;  // tools/ etc: style rules only
    const std::string_view stem = file_stem(f.source.path);
    for (const IncludeRef& inc : includes_of(f)) {
      if (!starts_with(inc.path, "casa/")) continue;
      check_forbidden(f, dir, inc, runner);
      std::string_view inc_rest = std::string_view(inc.path).substr(5);
      const std::size_t slash = inc_rest.find('/');
      if (slash == std::string_view::npos) continue;
      const std::string_view inc_dir = inc_rest.substr(0, slash);
      if (layers.allowed(dir, stem, inc_dir)) continue;
      if (f.suppressed(rule_ids::kIncludeLayering, inc.line)) continue;
      runner.error(
          rule_ids::kIncludeLayering, f.source.path, inc.line, 1,
          std::string(dir) + "/ includes \"" + inc.path + "\" but no " +
              "target in src/casa/" + std::string(dir) +
              " links a casa_" + std::string(inc_dir) + " target directly",
          "add the dependency to target_link_libraries in src/casa/" +
              std::string(dir) + "/CMakeLists.txt or drop the include");
    }
  }
}

void run_all_rules(const TreeInputs& inputs, LintRunner& runner) {
  for (const ParsedFile& f : inputs.files) {
    rule_lex(f, runner);
    rule_pragma_once(f, runner);
    rule_dead_code(f, runner);
    rule_include_style(f, runner);
    rule_hygiene(f, runner);
    rule_api_nodiscard(f, runner);
  }
  rule_names(inputs.files, inputs.docs, runner);
  rule_include_graph(inputs.files, inputs.layers, runner);
  runner.mark_scanned(inputs.files.size());
  runner.mark_evaluated(std::size(rule_ids::kAll));
}

}  // namespace casa::lint

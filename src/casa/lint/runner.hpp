// LintRunner — collects source-level Diagnostics from the rule functions
// in rules.hpp, mirroring casa::check's runner/artifact design one layer
// down: check validates *artifacts* a run produced, lint validates the
// *source tree* that produces them.
//
// The runner owns the verdict (ok / error_count), the "casa-lint v1" JSON
// artifact, and the --fix-list rendering. Suppression
// (`// casa-lint: allow(<rule>)`) is applied by the rules before they
// report, so everything in here is a real finding.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "casa/check/diagnostic.hpp"

namespace casa::lint {

/// One source-level finding. `file` is the repo-relative path; line/col
/// are 1-based.
struct Diagnostic {
  check::Severity severity = check::Severity::kError;
  std::string rule;  ///< stable id from lint::rule_ids
  std::string file;
  int line = 0;
  int col = 0;
  std::string message;
  std::string hint;  ///< how to fix (may be empty)

  /// "error[names.unregistered] src/casa/x.cpp:12:7: <message> (hint: ...)"
  std::string to_string() const;
};

class LintRunner {
 public:
  void report(Diagnostic d);

  void error(std::string_view rule, std::string file, int line, int col,
             std::string message, std::string hint = "");
  void warn(std::string_view rule, std::string file, int line, int col,
            std::string message, std::string hint = "");

  /// Rule functions record how many rules they evaluated (violated or
  /// not), so a clean artifact is distinguishable from a run where no
  /// analysis happened.
  void mark_evaluated(std::size_t count) { rules_evaluated_ += count; }
  /// Files the driver actually scanned (artifact provenance).
  void mark_scanned(std::size_t count) { files_scanned_ += count; }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return diags_.size() - errors_; }
  std::size_t rules_evaluated() const { return rules_evaluated_; }
  std::size_t files_scanned() const { return files_scanned_; }
  bool ok() const { return errors_ == 0; }

  /// One line: "casa-lint: OK (212 files, 14 rule families)" or
  /// "casa-lint: 3 errors, 1 warning (212 files, 14 rule families)".
  std::string summary() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
  std::size_t rules_evaluated_ = 0;
  std::size_t files_scanned_ = 0;
};

/// Writes the "casa-lint v1" JSON artifact:
///   { "schema": "casa-lint v1", "tool": ..., "files_scanned": N,
///     "rules_evaluated": N, "errors": N, "warnings": N,
///     "diagnostics": [ {severity, rule, file, line, col, message, hint},
///     ... ] }
/// Diagnostics appear in report order; strings are JSON-escaped with the
/// same escaper every casa artifact uses.
void write_lint_json(std::ostream& os, const LintRunner& runner,
                     const std::string& tool = "casa_lint");

/// Reads an artifact written by write_lint_json back into a runner
/// (diagnostics in artifact order; counters restored). Throws
/// casa::PreconditionError on schema or shape violations — corrupted
/// artifacts are rejected, never half-read.
LintRunner read_lint_json(std::istream& is);

/// Machine-readable fix list, one finding per line:
///   file:line:col\trule\thint-or-message
void write_fix_list(std::ostream& os, const LintRunner& runner);

}  // namespace casa::lint

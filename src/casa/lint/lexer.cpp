#include "casa/lint/lexer.hpp"

#include <cctype>
#include <cstddef>
#include <string_view>

namespace casa::lint {

const char* to_string(TokKind kind) {
  switch (kind) {
    case TokKind::kIdent:
      return "ident";
    case TokKind::kNumber:
      return "number";
    case TokKind::kString:
      return "string";
    case TokKind::kChar:
      return "char";
    case TokKind::kPunct:
      return "punct";
    case TokKind::kDirective:
      return "directive";
  }
  return "unknown";
}

namespace {

bool is_ident_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}
bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// First word of a directive body: "#  pragma once" -> "pragma".
std::string_view directive_keyword(std::string_view body) {
  std::size_t i = 0;
  while (i < body.size() && body[i] == '#') ++i;
  while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < body.size() && is_ident_char(body[j])) ++j;
  return body.substr(i, j - i);
}

/// Token after the directive keyword: "#if 0  // x" -> "0".
std::string_view directive_operand(std::string_view body) {
  std::size_t i = 0;
  while (i < body.size() && body[i] == '#') ++i;
  while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
  while (i < body.size() && is_ident_char(body[i])) ++i;  // keyword
  while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < body.size() && body[j] != ' ' && body[j] != '\t') ++j;
  return body.substr(i, j - i);
}

class Lexer {
 public:
  explicit Lexer(const SourceFile& src) : text_(src.text) {}

  LexResult run() {
    while (!eof()) {
      const char c = peek();
      if (c == '\\' && peek(1) == '\n') {  // stray splice between tokens
        advance();
        advance();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
          c == '\v') {
        advance();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && only_blank_before_on_line()) {
        lex_directive();
        continue;
      }
      if (c == '"') {
        lex_string(/*raw=*/false, /*prefix_len=*/0);
        continue;
      }
      if (is_raw_string_intro()) {
        lex_raw_string();
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (is_ident_start(c)) {
        lex_ident();
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        lex_number();
        continue;
      }
      push(TokKind::kPunct, std::string(1, c), line_, col_);
      advance();
    }
    return std::move(out_);
  }

 private:
  bool eof() const { return i_ >= text_.size(); }
  char peek(std::size_t off = 0) const {
    return i_ + off < text_.size() ? text_[i_ + off] : '\0';
  }
  void advance() {
    if (text_[i_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++i_;
  }
  void push(TokKind kind, std::string text, int line, int col) {
    out_.tokens.push_back(Token{kind, std::move(text), line, col});
  }

  /// True when every byte between the last newline and i_ is blank — the
  /// preprocessor's definition of a directive-introducing '#'.
  bool only_blank_before_on_line() const {
    std::size_t j = i_;
    while (j > 0) {
      const char c = text_[j - 1];
      if (c == '\n') return true;
      if (c != ' ' && c != '\t') return false;
      --j;
    }
    return true;
  }

  bool is_raw_string_intro() const {
    // R"..., u8R"..., uR"..., UR"..., LR"...
    std::size_t j = i_;
    if (peek() == 'u' && peek(1) == '8') j += 2;
    else if (peek() == 'u' || peek() == 'U' || peek() == 'L') j += 1;
    if (j < text_.size() && text_[j] == 'R' && j + 1 < text_.size() &&
        text_[j + 1] == '"') {
      // Reject when the prefix is the tail of a longer identifier (fooR"").
      if (i_ > 0 && is_ident_char(text_[i_ - 1])) return false;
      return true;
    }
    return false;
  }

  void lex_line_comment() {
    const int line = line_;
    const int col = col_;
    advance();  // '/'
    advance();  // '/'
    std::string text;
    while (!eof()) {
      if (peek() == '\\' && peek(1) == '\n') {  // spliced comment continues
        text += ' ';
        advance();
        advance();
        continue;
      }
      if (peek() == '\n') break;
      text += peek();
      advance();
    }
    out_.comments.push_back(Comment{std::move(text), line, col});
  }

  void lex_block_comment() {
    const int line = line_;
    const int col = col_;
    advance();  // '/'
    advance();  // '*'
    std::string text;
    while (!eof()) {
      if (peek() == '*' && peek(1) == '/') {
        advance();
        advance();
        out_.comments.push_back(Comment{std::move(text), line, col});
        return;
      }
      text += peek();
      advance();
    }
    out_.errors.push_back(LexError{"unterminated block comment", line, col});
  }

  void lex_string(bool raw, std::size_t prefix_len) {
    (void)raw;
    const int line = line_;
    const int col = col_;
    for (std::size_t k = 0; k < prefix_len; ++k) advance();
    advance();  // opening '"'
    std::string text;
    while (!eof()) {
      const char c = peek();
      if (c == '\\') {  // escape: keep both bytes, never close on \"
        text += c;
        advance();
        if (!eof()) {
          text += peek();
          advance();
        }
        continue;
      }
      if (c == '"') {
        advance();
        push(TokKind::kString, std::move(text), line, col);
        return;
      }
      if (c == '\n') break;  // a plain literal cannot span lines
      text += c;
      advance();
    }
    out_.errors.push_back(LexError{"unterminated string literal", line, col});
  }

  void lex_raw_string() {
    const int line = line_;
    const int col = col_;
    while (peek() != 'R') advance();  // encoding prefix
    advance();                        // 'R'
    advance();                        // '"'
    std::string delim;
    while (!eof() && peek() != '(') {
      delim += peek();
      advance();
    }
    if (eof()) {
      out_.errors.push_back(
          LexError{"unterminated raw string delimiter", line, col});
      return;
    }
    advance();  // '('
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (!eof()) {
      if (peek() == ')' &&
          text_.compare(i_, closer.size(), closer) == 0) {
        for (std::size_t k = 0; k < closer.size(); ++k) advance();
        push(TokKind::kString, std::move(text), line, col);
        return;
      }
      text += peek();
      advance();
    }
    out_.errors.push_back(LexError{"unterminated raw string", line, col});
  }

  void lex_char() {
    const int line = line_;
    const int col = col_;
    advance();  // opening '\''
    std::string text;
    while (!eof()) {
      const char c = peek();
      if (c == '\\') {
        text += c;
        advance();
        if (!eof()) {
          text += peek();
          advance();
        }
        continue;
      }
      if (c == '\'') {
        advance();
        push(TokKind::kChar, std::move(text), line, col);
        return;
      }
      if (c == '\n') break;
      text += c;
      advance();
    }
    out_.errors.push_back(
        LexError{"unterminated character literal", line, col});
  }

  void lex_ident() {
    const int line = line_;
    const int col = col_;
    std::string text;
    while (!eof() && is_ident_char(peek())) {
      text += peek();
      advance();
    }
    push(TokKind::kIdent, std::move(text), line, col);
  }

  void lex_number() {
    const int line = line_;
    const int col = col_;
    std::string text;
    while (!eof()) {
      const char c = peek();
      if (is_ident_char(c) || c == '.' ||
          (c == '\'' && is_ident_char(peek(1)) && !text.empty())) {
        text += c;
        advance();
        continue;
      }
      // Exponent sign: 1e-5, 0x1p+3.
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text += c;
          advance();
          continue;
        }
      }
      break;
    }
    push(TokKind::kNumber, std::move(text), line, col);
  }

  /// Reads one directive (splices joined, comments elided) and handles
  /// `#if 0` / `#if false` region skipping.
  void lex_directive() {
    const int line = line_;
    const int col = col_;
    std::string body;
    while (!eof()) {
      const char c = peek();
      if (c == '\\' && peek(1) == '\n') {  // splice: directive continues
        body += ' ';
        advance();
        advance();
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        body += ' ';
        continue;
      }
      body += c;
      advance();
    }
    const std::string_view kw = directive_keyword(body);
    const std::string_view operand = directive_operand(body);
    push(TokKind::kDirective, body, line, col);
    if (kw == "if" && (operand == "0" || operand == "false")) {
      out_.dead_blocks.push_back(line);
      skip_inactive();
    }
  }

  /// Skips an `#if 0` region the way the preprocessor does: only nested
  /// conditional directives are interpreted; everything else — including
  /// unbalanced quotes and braces — is ignored. Resumes after the matching
  /// `#endif`, or at a same-depth `#else`/`#elif` (whose branch is live).
  void skip_inactive() {
    int depth = 0;
    while (!eof()) {
      // Advance to the next line start.
      while (!eof() && peek() != '\n') advance();
      if (!eof()) advance();  // consume the newline
      // Peek the directive on this line, if any.
      std::size_t j = i_;
      while (j < text_.size() && (text_[j] == ' ' || text_[j] == '\t')) ++j;
      if (j >= text_.size() || text_[j] != '#') continue;
      std::size_t e = j;
      while (e < text_.size() && text_[e] != '\n') ++e;
      const std::string_view body(text_.data() + j, e - j);
      const std::string_view kw = directive_keyword(body);
      if (kw == "if" || kw == "ifdef" || kw == "ifndef") {
        ++depth;
      } else if (kw == "endif") {
        if (depth == 0) {
          while (!eof() && peek() != '\n') advance();  // swallow #endif
          return;
        }
        --depth;
      } else if ((kw == "else" || kw == "elif") && depth == 0) {
        // The alternative branch is (conservatively) live: resume lexing
        // right after this directive line.
        while (!eof() && peek() != '\n') advance();
        return;
      }
    }
    out_.errors.push_back(
        LexError{"unterminated #if 0 block", line_, col_});
  }

  const std::string& text_;
  std::size_t i_ = 0;
  int line_ = 1;
  int col_ = 1;
  LexResult out_;
};

}  // namespace

LexResult lex(const SourceFile& src) { return Lexer(src).run(); }

}  // namespace casa::lint

// Central registry of every casa::lint rule id.
//
// Same contract as check::rule_ids, one level up: these are the ids the
// *source-level* analyzer emits. docs/lint.md catalogues each one with its
// rationale and the suppression syntax; casa_lint checks that catalogue
// against this array (`names.undocumented`), so a rule cannot ship
// undocumented — including lint's own.
#pragma once

#include <cstddef>
#include <iterator>
#include <string_view>

namespace casa::lint::rule_ids {

// ---- tokenizer ----
inline constexpr std::string_view kLexUnterminated = "lex.unterminated";

// ---- preprocessor hygiene ----
inline constexpr std::string_view kPpPragmaOnce = "pp.pragma-once";
inline constexpr std::string_view kPpDeadCode = "pp.dead-code";

// ---- include graph ----
inline constexpr std::string_view kIncludeStyle = "include.style";
inline constexpr std::string_view kIncludeCycle = "include.cycle";
inline constexpr std::string_view kIncludeLayering = "include.layering";
inline constexpr std::string_view kIncludeForbidden = "include.forbidden";

// ---- name registries / docs sync ----
inline constexpr std::string_view kNamesUnregistered = "names.unregistered";
inline constexpr std::string_view kNamesUndocumented = "names.undocumented";

// ---- concurrency / hot-path hygiene ----
inline constexpr std::string_view kHygieneMutableGlobal =
    "hygiene.mutable-global";
inline constexpr std::string_view kHygieneRawNew = "hygiene.raw-new";
inline constexpr std::string_view kHygieneDetachedThread =
    "hygiene.detached-thread";
inline constexpr std::string_view kHotpathEndl = "hotpath.endl";

// ---- API contracts ----
inline constexpr std::string_view kApiNodiscardStatus = "api.nodiscard-status";

/// Every lint rule id, docs-sync-checked against docs/lint.md by casa_lint
/// itself.
inline constexpr std::string_view kAll[] = {
    kLexUnterminated,      kPpPragmaOnce,     kPpDeadCode,
    kIncludeStyle,         kIncludeCycle,     kIncludeLayering,
    kIncludeForbidden,     kNamesUnregistered, kNamesUndocumented,
    kHygieneMutableGlobal, kHygieneRawNew,    kHygieneDetachedThread,
    kHotpathEndl,          kApiNodiscardStatus,
};

namespace detail {
constexpr bool all_unique(const std::string_view* names, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (names[i] == names[j]) return false;
    }
  }
  return true;
}
}  // namespace detail

static_assert(detail::all_unique(kAll, std::size(kAll)),
              "duplicate rule id in lint::rule_ids::kAll");

constexpr bool is_registered(std::string_view id) {
  for (std::string_view n : kAll) {
    if (n == id) return true;
  }
  return false;
}

}  // namespace casa::lint::rule_ids

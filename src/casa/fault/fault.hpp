// Deterministic fault injection for batch-run containment testing.
//
// The pipeline embeds named failure points (fault::at calls, one per entry
// in fault::site_names) at simulation, solver, and artifact-I/O boundaries.
// They are inert until a FaultSpec is armed — from the CASA_FAULT_SPEC
// environment variable or a --fault-spec option — so the production cost of
// a site is one relaxed atomic load. An armed spec selects sites by name
// and fires one of four actions:
//
//   throw      raise fault::FaultError (a permanent failure)
//   transient  raise fault::TransientError (retryable; see run_with_retry)
//   delay      sleep delay_us microseconds (scheduling perturbation)
//   corrupt    mutate an artifact payload in flight (corrupt_payload sites)
//
// Selection is deterministic: clauses match on the site name plus an
// optional argument (batch runners bind the current job index via
// ScopedArg), hit windows count matching visits per clause, and the
// probability coin is a pure hash of (seed, site, arg, hit) — the same
// spec fires at the same places for any thread count. Hit counting across
// *different* args interleaves with the schedule, so thread-deterministic
// specs should pin `arg=`.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "casa/support/error.hpp"

namespace casa::fault {

/// An injected permanent failure. Carries the site name in what().
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what) : Error(what) {}
};

/// An injected (or detected) retryable failure — the transient class.
/// run_with_retry retries these with deterministic backoff; everything
/// else propagates immediately.
class TransientError : public FaultError {
 public:
  explicit TransientError(const std::string& what) : FaultError(what) {}
};

enum class Action { kThrow, kTransient, kDelay, kCorrupt };

std::string_view to_string(Action action);

/// Matches any job/argument value (the default when a clause omits arg=).
inline constexpr std::uint64_t kAnyArg = ~std::uint64_t{0};

/// One spec clause: where to inject and what to do there.
struct SiteSpec {
  std::string site;                 ///< must be fault::site_names-registered
  Action action = Action::kThrow;
  std::uint64_t arg = kAnyArg;      ///< fire only when the bound arg matches
  std::uint64_t hits_from = 1;      ///< 1-based: fire from this matching hit
  std::uint64_t max_fires = ~std::uint64_t{0};  ///< stop after this many
  std::uint64_t delay_us = 100;     ///< kDelay sleep length
  double probability = 1.0;         ///< seeded per-hit coin when < 1
};

struct FaultSpec {
  std::vector<SiteSpec> sites;
  std::uint64_t seed = 1;  ///< probability-coin seed
};

/// Parses the spec grammar (docs/faults.md):
///   spec   := clause (';' clause)*
///   clause := "seed=" N
///           | "site=" name ("," key "=" value)*
///   key    := action | arg | hits | count | delay_us | p
/// Example: "site=fault.solver.allocate,action=throw,arg=2;seed=7".
/// Unknown sites, keys, or malformed values throw PreconditionError.
FaultSpec parse_spec(const std::string& text);

/// Arms `spec` process-wide (validates every clause) and resets counters.
void arm(FaultSpec spec);
/// Disarms injection; every site reverts to the one-load fast path.
void disarm();
bool armed();
/// Arms from CASA_FAULT_SPEC when set and non-empty; returns armed().
bool arm_from_env();
/// Clauses in the armed spec (0 when disarmed) — drivers export this as the
/// fault.armed_sites gauge so artifacts self-describe injected runs.
std::size_t armed_site_count();

/// Process-wide injection counters since the last arm().
struct InjectorStats {
  std::uint64_t hits = 0;     ///< matching site visits while armed
  std::uint64_t fires = 0;    ///< actions actually taken
  std::uint64_t throws_ = 0;
  std::uint64_t transients = 0;
  std::uint64_t delays = 0;
  std::uint64_t corrupts = 0;
};
InjectorStats stats();

/// Called on every fire, before the action is taken. A plain function
/// pointer so installing one costs nothing on the disarmed path; the obs
/// layer installs a trace-instant emitter here.
using InjectionHook = void (*)(std::string_view site, Action action,
                               std::uint64_t arg);
void set_injection_hook(InjectionHook hook);

/// Binds the calling thread's fault argument (batch runners bind the job
/// index) for the lifetime of the scope; nested scopes restore the
/// previous value. Sites visited with the one-argument fault::at match
/// clauses against this value.
class ScopedArg {
 public:
  explicit ScopedArg(std::uint64_t arg);
  ~ScopedArg();
  ScopedArg(const ScopedArg&) = delete;
  ScopedArg& operator=(const ScopedArg&) = delete;

 private:
  std::uint64_t prev_;
};

/// The calling thread's bound argument (kAnyArg when none is bound).
std::uint64_t current_arg();

namespace detail {
extern std::atomic<bool> g_armed;
void fire(std::string_view site, std::uint64_t arg);
bool corrupt(std::string_view site, std::uint64_t arg, std::string& payload);
}  // namespace detail

/// Failure point: no-op unless a spec is armed (one relaxed load).
inline void at(std::string_view site) {
  if (detail::g_armed.load(std::memory_order_relaxed)) {
    detail::fire(site, current_arg());
  }
}

/// Failure point with an explicit argument (overrides the thread binding).
inline void at(std::string_view site, std::uint64_t arg) {
  if (detail::g_armed.load(std::memory_order_relaxed)) {
    detail::fire(site, arg);
  }
}

/// Corrupt-and-detect point: when a kCorrupt clause matches, mutates
/// `payload` in place (deterministic byte flip) and returns true. Callers
/// verify payload integrity before committing and classify a detected
/// corruption as transient. No-op (false) unless armed.
inline bool corrupt_payload(std::string_view site, std::string& payload) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::corrupt(site, current_arg(), payload);
}

/// Bounded-retry policy for transient-classed failures.
struct RetryPolicy {
  unsigned max_retries = 2;        ///< attempts beyond the first
  std::uint64_t backoff_us = 200;  ///< doubled each retry (deterministic)
};

/// Sleeps policy.backoff_us << attempt microseconds (attempt is 0-based).
void backoff_sleep(const RetryPolicy& policy, unsigned attempt);

/// True when `error` is (derived from) TransientError.
bool is_transient(const std::exception_ptr& error);

/// Runs fn(), retrying TransientError up to policy.max_retries times with
/// deterministic exponential backoff; other exceptions (and the final
/// transient) propagate. Returns the number of attempts that ran; `retried`
/// (when non-null) is called once per retry with the 1-based attempt about
/// to re-run.
template <typename F, typename OnRetry>
unsigned run_with_retry(const RetryPolicy& policy, F&& fn, OnRetry&& retried) {
  for (unsigned attempt = 0;; ++attempt) {
    try {
      fn();
      return attempt + 1;
    } catch (const TransientError&) {
      if (attempt >= policy.max_retries) throw;
      backoff_sleep(policy, attempt);
      retried(attempt + 1);
    }
  }
}

template <typename F>
unsigned run_with_retry(const RetryPolicy& policy, F&& fn) {
  return run_with_retry(policy, static_cast<F&&>(fn), [](unsigned) {});
}

}  // namespace casa::fault

#include "casa/fault/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "casa/fault/site_names.hpp"

namespace casa::fault {

namespace {

// SplitMix64: the same stream separator the parallel runner uses, so the
// probability coin is a pure function of its inputs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic coin in [0, 1): depends only on (seed, site, arg, hit).
/// The inputs are folded in sequentially — XOR-combining independent
/// mix64() outputs would cancel whenever two inputs coincide (a visit
/// sequence with arg + 1 == hit would see one constant coin forever).
double coin(std::uint64_t seed, std::string_view site, std::uint64_t arg,
            std::uint64_t hit) {
  std::uint64_t x = mix64(seed ^ hash_site(site));
  x = mix64(x ^ (arg + 1));
  x = mix64(x ^ hit);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

struct SiteState {
  SiteSpec spec;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

struct ArmedState {
  std::uint64_t seed = 1;
  // deque: SiteState holds atomics (non-movable) and worker threads keep
  // raw references while firing.
  std::deque<SiteState> sites;
};

struct Core {
  std::mutex mu;
  std::shared_ptr<ArmedState> state;
  std::atomic<InjectionHook> hook{nullptr};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
  std::atomic<std::uint64_t> throws{0};
  std::atomic<std::uint64_t> transients{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> corrupts{0};
};

Core& core() {
  // Internally synchronised (mutex + atomics): casa-lint: allow(hygiene.mutable-global)
  static Core c;
  return c;
}

std::shared_ptr<ArmedState> snapshot_state() {
  std::lock_guard<std::mutex> lock(core().mu);
  return core().state;
}

std::uint64_t& arg_slot() {
  thread_local std::uint64_t arg = kAnyArg;
  return arg;
}

[[noreturn]] void bad_spec(const std::string& what) {
  throw PreconditionError("fault spec: " + what);
}

Action parse_action(const std::string& v) {
  if (v == "throw") return Action::kThrow;
  if (v == "transient") return Action::kTransient;
  if (v == "delay") return Action::kDelay;
  if (v == "corrupt") return Action::kCorrupt;
  bad_spec("unknown action '" + v +
           "' (expected throw|transient|delay|corrupt)");
}

std::uint64_t parse_u64(const std::string& key, const std::string& v) {
  if (v.empty()) bad_spec(key + " expects an unsigned integer, got: ''");
  for (char c : v) {
    if (c < '0' || c > '9') {
      bad_spec(key + " expects an unsigned integer, got: " + v);
    }
  }
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    bad_spec(key + " out of range: " + v);
  }
}

double parse_prob(const std::string& v) {
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v.size() || v.empty() || p < 0.0 || p > 1.0) {
    bad_spec("p expects a probability in [0,1], got: " + v);
  }
  return p;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, sep)) out.push_back(cur);
  return out;
}

SiteSpec parse_clause(const std::string& clause) {
  SiteSpec spec;
  bool saw_site = false;
  for (const std::string& field : split(clause, ',')) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      bad_spec("expected key=value, got: '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "site") {
      spec.site = value;
      saw_site = true;
    } else if (key == "action") {
      spec.action = parse_action(value);
    } else if (key == "arg") {
      spec.arg = parse_u64(key, value);
    } else if (key == "hits") {
      spec.hits_from = parse_u64(key, value);
    } else if (key == "count") {
      spec.max_fires = parse_u64(key, value);
    } else if (key == "delay_us") {
      spec.delay_us = parse_u64(key, value);
    } else if (key == "p") {
      spec.probability = parse_prob(value);
    } else {
      bad_spec("unknown key '" + key +
               "' (expected site|action|arg|hits|count|delay_us|p)");
    }
  }
  if (!saw_site) bad_spec("clause missing site=: '" + clause + "'");
  return spec;
}

void validate(const SiteSpec& spec) {
  if (!site_names::is_registered(spec.site)) {
    std::ostringstream os;
    os << "unknown site '" << spec.site << "'; registered sites:";
    for (std::string_view s : site_names::kAll) os << ' ' << s;
    bad_spec(os.str());
  }
  if (spec.hits_from == 0) bad_spec("hits is 1-based; hits=0 never fires");
  if (spec.max_fires == 0) bad_spec("count=0 never fires; omit the clause");
}

void reset_stats() {
  core().hits.store(0);
  core().fires.store(0);
  core().throws.store(0);
  core().transients.store(0);
  core().delays.store(0);
  core().corrupts.store(0);
}

/// Claims one fire slot on `st` if the hit window, fire budget, and
/// probability coin all admit this visit.
bool claim_fire(SiteState& st, std::uint64_t seed, std::string_view site,
                std::uint64_t arg) {
  const std::uint64_t hit = st.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  core().hits.fetch_add(1, std::memory_order_relaxed);
  if (hit < st.spec.hits_from) return false;
  if (st.spec.probability < 1.0 &&
      coin(seed, site, arg, hit) >= st.spec.probability) {
    return false;
  }
  if (st.fires.fetch_add(1, std::memory_order_relaxed) >= st.spec.max_fires) {
    return false;  // budget exhausted (fetch_add keeps this monotone)
  }
  core().fires.fetch_add(1, std::memory_order_relaxed);
  if (InjectionHook hook = core().hook.load(std::memory_order_relaxed)) {
    hook(site, st.spec.action, arg);
  }
  return true;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void fire(std::string_view site, std::uint64_t arg) {
  const std::shared_ptr<ArmedState> state = snapshot_state();
  if (state == nullptr) return;
  for (SiteState& st : state->sites) {
    if (st.spec.action == Action::kCorrupt) continue;  // corrupt_payload only
    if (st.spec.site != site) continue;
    if (st.spec.arg != kAnyArg && st.spec.arg != arg) continue;
    if (!claim_fire(st, state->seed, site, arg)) continue;
    switch (st.spec.action) {
      case Action::kThrow:
        core().throws.fetch_add(1, std::memory_order_relaxed);
        throw FaultError("injected fault at " + std::string(site));
      case Action::kTransient:
        core().transients.fetch_add(1, std::memory_order_relaxed);
        throw TransientError("injected transient fault at " +
                             std::string(site));
      case Action::kDelay:
        core().delays.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::microseconds(st.spec.delay_us));
        break;
      case Action::kCorrupt:
        break;
    }
  }
}

bool corrupt(std::string_view site, std::uint64_t arg, std::string& payload) {
  const std::shared_ptr<ArmedState> state = snapshot_state();
  if (state == nullptr) return false;
  bool corrupted = false;
  for (SiteState& st : state->sites) {
    if (st.spec.action != Action::kCorrupt) continue;
    if (st.spec.site != site) continue;
    if (st.spec.arg != kAnyArg && st.spec.arg != arg) continue;
    if (!claim_fire(st, state->seed, site, arg)) continue;
    core().corrupts.fetch_add(1, std::memory_order_relaxed);
    if (payload.empty()) {
      payload.push_back('#');
    } else {
      const std::uint64_t pos =
          mix64(state->seed ^ hash_site(site) ^ (arg + 1)) % payload.size();
      payload[pos] = static_cast<char>(payload[pos] ^ 0x40);
    }
    corrupted = true;
  }
  return corrupted;
}

}  // namespace detail

std::string_view to_string(Action action) {
  switch (action) {
    case Action::kThrow:
      return "throw";
    case Action::kTransient:
      return "transient";
    case Action::kDelay:
      return "delay";
    case Action::kCorrupt:
      return "corrupt";
  }
  return "?";
}

FaultSpec parse_spec(const std::string& text) {
  FaultSpec spec;
  for (const std::string& clause : split(text, ';')) {
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      spec.seed = parse_u64("seed", clause.substr(5));
      continue;
    }
    spec.sites.push_back(parse_clause(clause));
  }
  if (spec.sites.empty()) bad_spec("no site clauses in '" + text + "'");
  return spec;
}

void arm(FaultSpec spec) {
  for (const SiteSpec& s : spec.sites) validate(s);
  auto state = std::make_shared<ArmedState>();
  state->seed = spec.seed;
  for (SiteSpec& s : spec.sites) state->sites.emplace_back().spec = std::move(s);
  {
    std::lock_guard<std::mutex> lock(core().mu);
    core().state = std::move(state);
  }
  reset_stats();
  detail::g_armed.store(true, std::memory_order_release);
}

void disarm() {
  detail::g_armed.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(core().mu);
  core().state = nullptr;
}

bool armed() { return detail::g_armed.load(std::memory_order_acquire); }

bool arm_from_env() {
  const char* text = std::getenv("CASA_FAULT_SPEC");
  if (text != nullptr && *text != '\0') arm(parse_spec(text));
  return armed();
}

std::size_t armed_site_count() {
  if (!armed()) return 0;
  std::shared_ptr<ArmedState> state;
  {
    std::lock_guard<std::mutex> lock(core().mu);
    state = core().state;
  }
  return state != nullptr ? state->sites.size() : 0;
}

InjectorStats stats() {
  InjectorStats out;
  out.hits = core().hits.load();
  out.fires = core().fires.load();
  out.throws_ = core().throws.load();
  out.transients = core().transients.load();
  out.delays = core().delays.load();
  out.corrupts = core().corrupts.load();
  return out;
}

void set_injection_hook(InjectionHook hook) {
  core().hook.store(hook, std::memory_order_relaxed);
}

ScopedArg::ScopedArg(std::uint64_t arg) : prev_(arg_slot()) {
  arg_slot() = arg;
}

ScopedArg::~ScopedArg() { arg_slot() = prev_; }

std::uint64_t current_arg() { return arg_slot(); }

void backoff_sleep(const RetryPolicy& policy, unsigned attempt) {
  const std::uint64_t us = policy.backoff_us << (attempt < 20 ? attempt : 20);
  if (us != 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

bool is_transient(const std::exception_ptr& error) {
  if (error == nullptr) return false;
  try {
    std::rethrow_exception(error);
  } catch (const TransientError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace casa::fault

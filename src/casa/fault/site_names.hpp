// Central registry of every fault-injection site in the pipeline.
//
// A site is a named failure point (fault::at / fault::corrupt_payload call)
// at a simulation, solver, or artifact-I/O boundary. Specs reference sites
// by these dotted names, so a typo would silently arm nothing; exactly like
// the metric/trace/rule registries, instrumented code uses these constants
// and casa_lint enforces the contract both ways — ad-hoc dotted literals
// are `names.unregistered`, and entries missing from the docs/faults.md
// catalogue are `names.undocumented`.
//
// Adding a site: add the constant, add it to kAll, place the fault::at call,
// document it in docs/faults.md, and cover it in the fault-matrix test.
#pragma once

#include <cstddef>
#include <iterator>
#include <string_view>

namespace casa::fault::site_names {

// ---- simulation pipeline (Workbench batch jobs) ----
/// Start of prepare_job: trace formation / layout / allocation stages.
inline constexpr std::string_view kSimPrepare = "fault.sim.prepare";
/// Start of finish_job / finish_with_counters: the hierarchy replay.
inline constexpr std::string_view kSimFinish = "fault.sim.finish";

// ---- solvers ----
/// Immediately before core::Allocator::allocate in the CASA flow.
inline constexpr std::string_view kSolverAllocate = "fault.solver.allocate";

// ---- one-pass sweep engine ----
/// Start of a shared SweepPlanner stack pass (arg = representative job).
inline constexpr std::string_view kSweepStackPass = "fault.sweep.stack_pass";

// ---- artifact I/O (guarded writes; see obs::write_artifact_guarded) ----
inline constexpr std::string_view kIoMetricsWrite = "fault.io.metrics_write";
inline constexpr std::string_view kIoTraceWrite = "fault.io.trace_write";
inline constexpr std::string_view kIoCheckWrite = "fault.io.check_write";

// ---- evaluation service (svc::EvalService) ----
/// Request admission, before the cache lookup. A fired fault fails that
/// one request (contained in its response); the service loop survives.
inline constexpr std::string_view kSvcAdmit = "fault.svc.admit";
/// Persisted-artifact load on a cache miss. A fired fault (or a corrupted
/// artifact) degrades the miss to a recompute, never a crash.
inline constexpr std::string_view kSvcCacheLoad = "fault.svc.cache_load";

/// Every registered site, docs-sync-checked against docs/faults.md by
/// casa_lint and iterated by the fault-matrix test.
inline constexpr std::string_view kAll[] = {
    kSimPrepare,     kSimFinish,    kSolverAllocate, kSweepStackPass,
    kIoMetricsWrite, kIoTraceWrite, kIoCheckWrite,   kSvcAdmit,
    kSvcCacheLoad,
};

namespace detail {
constexpr bool all_unique(const std::string_view* names, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (names[i] == names[j]) return false;
    }
  }
  return true;
}
}  // namespace detail

static_assert(detail::all_unique(kAll, std::size(kAll)),
              "duplicate site name in fault::site_names::kAll");

constexpr bool is_registered(std::string_view name) {
  for (std::string_view n : kAll) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace casa::fault::site_names

#include "casa/cachesim/stack_sim.hpp"

#include <algorithm>

#include "casa/support/error.hpp"

namespace casa::cachesim {

ConfigFamily ConfigFamily::grid(Bytes line_size, unsigned max_sets,
                                unsigned max_associativity,
                                ReplacementPolicy policy) {
  CASA_CHECK(is_pow2(max_sets), "max_sets must be a power of two");
  CASA_CHECK(max_associativity >= 1, "max_associativity must be >= 1");
  ConfigFamily fam;
  fam.line_size = line_size;
  fam.policy = policy;
  for (unsigned sets = 1; sets <= max_sets; sets *= 2) {
    for (unsigned assoc = 1; assoc <= max_associativity; assoc *= 2) {
      CacheConfig cfg;
      cfg.line_size = line_size;
      cfg.associativity = assoc;
      cfg.policy = policy;
      cfg.size = static_cast<Bytes>(sets) * assoc * line_size;
      fam.configs.push_back(cfg);
    }
  }
  return fam;
}

void ConfigFamily::validate() const {
  CASA_CHECK(!configs.empty(), "ConfigFamily has no configurations");
  CASA_CHECK(is_pow2(line_size), "line size must be a power of two");
  for (const CacheConfig& cfg : configs) {
    cfg.validate();
    CASA_CHECK(cfg.line_size == line_size,
               "ConfigFamily members must share one line size");
    CASA_CHECK(cfg.policy == policy,
               "ConfigFamily members must share one replacement policy");
  }
}

unsigned ConfigFamily::max_sets() const {
  unsigned m = 1;
  for (const CacheConfig& cfg : configs) m = std::max(m, cfg.sets());
  return m;
}

unsigned ConfigFamily::max_associativity() const {
  unsigned m = 1;
  for (const CacheConfig& cfg : configs) m = std::max(m, cfg.associativity);
  return m;
}

StackSimulator::StackSimulator(ConfigFamily family, std::uint64_t seed)
    : family_(std::move(family)) {
  family_.validate();
  offset_shift_ = log2_pow2(family_.line_size);
  if (family_.policy != ReplacementPolicy::kLru) {
    // No stack property -> simulate every member directly. Each bank cache
    // gets the same seed a standalone per-config simulation would use, so
    // even kRandom stays bit-identical to the one-config-at-a-time path.
    fallback_.reserve(family_.configs.size());
    for (const CacheConfig& cfg : family_.configs) {
      fallback_.emplace_back(cfg, seed);
    }
    return;
  }
  k_max_ = log2_pow2(family_.max_sets());
  a_max_ = family_.max_associativity();
  heads_.resize(k_max_ + 1);
  for (unsigned k = 0; k <= k_max_; ++k) {
    heads_[k].assign(std::size_t{1} << k, kNil);
  }
  next_.resize(k_max_ + 1);
  prev_.resize(k_max_ + 1);
  reuse_hist_.assign(static_cast<std::size_t>(k_max_ + 1) * (a_max_ + 1), 0);
  cold_hist_.assign(static_cast<std::size_t>(k_max_ + 1) * (a_max_ + 1), 0);
}

void StackSimulator::access_line(Addr addr, std::uint32_t words) {
  if (!fallback_.empty()) {
    for (Cache& cache : fallback_) cache.access_line(addr, words);
    return;
  }

  total_words_ += words;
  const std::uint64_t line = addr >> offset_shift_;

  if (line >= line_id_.size()) {
    line_id_.resize(
        std::max<std::size_t>(line + 1, line_id_.size() * 2), 0);
  }
  const std::uint32_t slot = line_id_[line];
  const bool reuse = slot != 0;
  std::uint32_t node;
  if (reuse) {
    node = slot - 1;
  } else {
    // First touch: mint a dense id with unlinked handles at every level.
    ++cold_runs_;
    node = static_cast<std::uint32_t>(next_[0].size());
    line_id_[line] = node + 1;
    for (unsigned k = 0; k <= k_max_; ++k) {
      next_[k].push_back(kNil);
      prev_[k].push_back(kNil);
    }
  }

  // At level k the accessed line's set list holds, MRU-first, the distinct
  // lines of its 2^k-set cache set. Its position there is the per-set stack
  // distance; positions >= a_max_ miss in every family member, so each walk
  // stops after at most a_max_ nodes. A first touch's "distance" is the
  // set's distinct-line count (decides whether the fill still found an
  // invalid way), equally capped. The splice never needs the walk to reach
  // the node: its level-k handles unlink it in O(1) from any depth.
  std::uint64_t* const hist = (reuse ? reuse_hist_ : cold_hist_).data();
  for (unsigned k = 0; k <= k_max_; ++k) {
    std::uint32_t* const nxt = next_[k].data();
    std::uint32_t* const prv = prev_[k].data();
    std::uint32_t& head =
        heads_[k][static_cast<std::size_t>(line) & ((std::size_t{1} << k) - 1)];

    unsigned d = 0;
    std::uint32_t cur = head;
    while (cur != kNil && cur != node && d < a_max_) {
      ++d;
      cur = nxt[cur];
    }
    ++hist[static_cast<std::size_t>(k) * (a_max_ + 1) + d];

    if (head == node) continue;  // already MRU
    if (reuse) {
      const std::uint32_t p = prv[node];
      const std::uint32_t n = nxt[node];
      nxt[p] = n;
      if (n != kNil) prv[n] = p;
    }
    nxt[node] = head;
    if (head != kNil) prv[head] = node;
    prv[node] = kNil;
    head = node;
  }
}

StackCounters StackSimulator::counters(const CacheConfig& config) const {
  CASA_CHECK(config.line_size == family_.line_size,
             "queried config's line size differs from the family's");
  CASA_CHECK(config.policy == family_.policy,
             "queried config's policy differs from the family's");

  if (!fallback_.empty()) {
    for (std::size_t i = 0; i < family_.configs.size(); ++i) {
      if (family_.configs[i] == config) {
        const Cache& c = fallback_[i];
        return StackCounters{c.hits(), c.misses(), c.evictions()};
      }
    }
    CASA_CHECK(false, "config is not a member of this fallback family");
  }

  config.validate();
  const unsigned k = log2_pow2(config.sets());
  const unsigned assoc = config.associativity;
  CASA_CHECK(k <= k_max_, "set count exceeds the family's maximum");
  CASA_CHECK(assoc >= 1 && assoc <= a_max_,
             "associativity exceeds the family's maximum");

  // A stack-resident access misses iff its per-set distance >= assoc (and
  // then always evicts: >= assoc distinct lines already filled the set). A
  // first touch always misses and evicts iff the set had already seen
  // >= assoc distinct lines (no invalid way left).
  const std::uint64_t* reuse =
      reuse_hist_.data() + static_cast<std::size_t>(k) * (a_max_ + 1);
  const std::uint64_t* cold =
      cold_hist_.data() + static_cast<std::size_t>(k) * (a_max_ + 1);
  std::uint64_t reuse_misses = 0;
  std::uint64_t cold_evictions = 0;
  for (unsigned d = assoc; d <= a_max_; ++d) {
    reuse_misses += reuse[d];
    cold_evictions += cold[d];
  }

  StackCounters out;
  out.misses = reuse_misses + cold_runs_;
  out.hits = total_words_ - out.misses;
  out.evictions = reuse_misses + cold_evictions;
  return out;
}

}  // namespace casa::cachesim

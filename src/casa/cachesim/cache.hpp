// Set-associative cache model.
//
// Word-granular accesses; line-granular state. The model reports, for every
// miss, which memory line (if any) was evicted — the hook the conflict-graph
// builder uses to attribute conflict misses to their evictor (paper §3.3).
//
// Two access granularities share all replacement state:
//  * access()      — one word fetch (the original, fully general path);
//  * access_line() — a run of consecutive word fetches that all fall into
//    one memory line (what sequential instruction fetch produces). One
//    lookup stands in for the whole run; hit/miss counters, LRU/FIFO
//    stamps, round-robin cursors and the random-replacement RNG stream all
//    advance exactly as if each word had been accessed individually, so the
//    two paths are bit-for-bit interchangeable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "casa/support/rng.hpp"
#include "casa/support/units.hpp"

namespace casa::cachesim {

enum class ReplacementPolicy { kLru, kFifo, kRoundRobin, kRandom };

const char* to_string(ReplacementPolicy p);

struct CacheConfig {
  Bytes size = 2_KiB;
  Bytes line_size = 16;
  unsigned associativity = 1;  ///< 1 = direct mapped
  ReplacementPolicy policy = ReplacementPolicy::kLru;

  unsigned sets() const {
    return static_cast<unsigned>(size / (line_size * associativity));
  }
  unsigned offset_bits() const { return log2_pow2(line_size); }
  unsigned index_bits() const { return log2_pow2(sets()); }

  /// Validates size/line/associativity divisibility and power-of-two-ness.
  void validate() const;

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

/// Outcome of one access.
struct AccessResult {
  bool hit = false;
  /// On a miss that displaced a valid line: the displaced line's number
  /// (byte address / line_size).
  std::optional<std::uint64_t> evicted_line;
};

class Cache {
 public:
  explicit Cache(CacheConfig config, std::uint64_t seed = 1);

  /// One word fetch at byte address `addr`.
  AccessResult access(Addr addr);

  /// `words` consecutive word fetches starting at `addr`, all within the
  /// memory line containing `addr` (the caller guarantees this — see
  /// trace::CompiledStream). Equivalent to `words` access() calls: at most
  /// the first word can miss, the rest are guaranteed same-line hits.
  AccessResult access_line(Addr addr, std::uint32_t words);

  /// Invalidates all lines.
  void flush();

  const CacheConfig& config() const { return config_; }
  std::uint64_t line_of(Addr addr) const { return addr >> offset_shift_; }

  /// True when the line containing `addr` is currently resident (test hook;
  /// does not affect replacement state).
  bool contains(Addr addr) const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  /// Misses that displaced a valid line (== misses - cold fills).
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Way {
    std::uint64_t line = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  unsigned set_of(std::uint64_t line) const {
    return static_cast<unsigned>(line) & set_mask_;
  }
  Way* set_base(unsigned set) {
    return &ways_[static_cast<std::size_t>(set) * config_.associativity];
  }
  const Way* set_base(unsigned set) const {
    return &ways_[static_cast<std::size_t>(set) * config_.associativity];
  }

  unsigned pick_victim(unsigned set);

  CacheConfig config_;
  unsigned offset_shift_ = 0;   ///< log2(line_size)
  unsigned set_mask_ = 0;       ///< sets - 1
  std::uint64_t lru_mask_ = 0;  ///< all-ones iff policy == kLru (branchless
                                ///< hit-stamp update)
  std::vector<Way> ways_;       ///< sets * associativity, set-major
  std::vector<unsigned> rr_next_;
  Rng rng_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace casa::cachesim

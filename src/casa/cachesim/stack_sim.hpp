// One-pass multi-configuration cache simulation (Mattson stack distances).
//
// A design-space sweep evaluates the same fetch stream against many cache
// geometries. For LRU replacement the stream need only be replayed ONCE:
// an access hits in an S-set, A-way LRU cache iff fewer than A distinct
// lines mapping to the same set were touched since the previous access to
// its line (the stack property — LRU caches of growing associativity are
// inclusive). With power-of-two set counts the set index is the line
// number's low bits, so the simulator keeps one LRU recency list per
// (set-count level k, set index) — 2^k short lists per level — and each
// access reads its per-set stack distance at every level at once. Two
// properties keep the per-access cost tiny: distances only matter up to
// the family's maximum associativity A (everything deeper misses in every
// member), so each level's walk stops after at most A nodes; and per-level
// node handles make the move-to-front splice O(1) without ever walking to
// a deep node. From the per-level distance histograms the exact
// hit/miss/eviction counters for the whole (set count x associativity)
// family are read off after the pass — bit-identical to running Cache per
// configuration (the oracle suite in tests/stack_sim_test.cpp holds this
// across every bundled workload).
//
// Replacement policies without the inclusion property (FIFO, round-robin,
// random) cannot be folded into one pass; for those the simulator
// transparently falls back to a bank of per-configuration Cache instances
// behind the same API, so callers never special-case the policy.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/support/units.hpp"

namespace casa::cachesim {

/// A family of configurations evaluated together: fixed line size and
/// replacement policy, varying (power-of-two) set count and associativity.
struct ConfigFamily {
  Bytes line_size = 16;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
  std::vector<CacheConfig> configs;

  /// Full power-of-two grid: set counts {1, 2, ..., max_sets} x
  /// associativities {1, 2, ..., max_associativity} (CacheConfig requires a
  /// power-of-two total size, which pins both axes to powers of two).
  static ConfigFamily grid(Bytes line_size, unsigned max_sets,
                           unsigned max_associativity,
                           ReplacementPolicy policy = ReplacementPolicy::kLru);

  /// Non-empty, every member validated, line size and policy uniform.
  void validate() const;

  unsigned max_sets() const;
  unsigned max_associativity() const;
};

/// Exact per-configuration counters, in Cache's word-granular accounting:
/// a run of `words` fetches adds `words` hits on a line hit, and one miss
/// plus `words - 1` hits on a line miss.
struct StackCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< misses that displaced a valid line

  std::uint64_t accesses() const { return hits + misses; }
  friend bool operator==(const StackCounters&, const StackCounters&) = default;
};

class StackSimulator {
 public:
  explicit StackSimulator(ConfigFamily family, std::uint64_t seed = 1);

  /// One word fetch at byte address `addr` (== access_line(addr, 1)).
  void access(Addr addr) { access_line(addr, 1); }

  /// Same contract as Cache::access_line: `words` consecutive word fetches
  /// all inside the memory line containing `addr`.
  void access_line(Addr addr, std::uint32_t words);

  /// Counters for one configuration, as if a fresh Cache had replayed the
  /// whole access sequence. In one-pass (LRU) mode any configuration with
  /// the family's line size and policy, a power-of-two set count <= the
  /// family's maximum and an associativity <= the family's maximum may be
  /// queried — membership in `family().configs` is not required. In
  /// fallback mode the configuration must be a family member.
  StackCounters counters(const CacheConfig& config) const;

  /// True when the single-pass stack engine is active (LRU family); false
  /// when the per-configuration fallback bank is simulating.
  bool one_pass() const { return fallback_.empty(); }

  const ConfigFamily& family() const { return family_; }

  /// Total word fetches replayed so far (identical for every config).
  std::uint64_t total_words() const { return total_words_; }

 private:
  ConfigFamily family_;
  unsigned offset_shift_ = 0;  ///< log2(line_size)
  unsigned k_max_ = 0;         ///< log2(max set count)
  unsigned a_max_ = 1;         ///< max associativity

  // One-pass engine state. Level k (k in [0, k_max_]) models the 2^k-set
  // member geometries: one LRU recency list per set, stitched through
  // per-line node handles (next_[k], prev_[k], indexed by dense line id) so
  // a move-to-front splice at any depth is O(1). Lines never leave a list,
  // so each level's lists partition the distinct lines touched so far.
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};
  std::vector<std::vector<std::uint32_t>> heads_;  ///< [k][set] -> line id
  std::vector<std::vector<std::uint32_t>> next_;   ///< [k][line id]
  std::vector<std::vector<std::uint32_t>> prev_;   ///< [k][line id]
  /// line number -> dense id + 1 (0 = never touched). Line numbers are
  /// layout offsets / line_size, so this stays small and O(1) beats hashing.
  std::vector<std::uint32_t> line_id_;
  /// Distance histograms, (k_max_+1) x (a_max_+1), distances capped at
  /// a_max_. reuse_: accesses whose line was on the stack; cold_: first
  /// touches (their "distance" is the set's distinct-line count, which
  /// decides whether the fill still found an invalid way).
  std::vector<std::uint64_t> reuse_hist_;
  std::vector<std::uint64_t> cold_hist_;
  std::uint64_t cold_runs_ = 0;
  std::uint64_t total_words_ = 0;

  /// Per-configuration Cache bank for non-LRU policies (index-aligned with
  /// family_.configs). Empty in one-pass mode.
  std::vector<Cache> fallback_;
};

}  // namespace casa::cachesim

#include "casa/cachesim/cache.hpp"

#include "casa/support/error.hpp"

namespace casa::cachesim {

const char* to_string(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kFifo:
      return "FIFO";
    case ReplacementPolicy::kRoundRobin:
      return "RoundRobin";
    case ReplacementPolicy::kRandom:
      return "Random";
  }
  return "?";
}

void CacheConfig::validate() const {
  CASA_CHECK(is_pow2(size), "cache size must be a power of two");
  CASA_CHECK(is_pow2(line_size), "line size must be a power of two");
  CASA_CHECK(associativity >= 1, "associativity must be >= 1");
  CASA_CHECK(size % (line_size * associativity) == 0,
             "size must be divisible by line_size * associativity");
  CASA_CHECK(is_pow2(sets()), "set count must be a power of two");
}

Cache::Cache(CacheConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  config_.validate();
  offset_shift_ = config_.offset_bits();
  set_mask_ = config_.sets() - 1;
  lru_mask_ = config_.policy == ReplacementPolicy::kLru ? ~std::uint64_t{0} : 0;
  ways_.resize(static_cast<std::size_t>(config_.sets()) *
               config_.associativity);
  rr_next_.resize(config_.sets(), 0);
}

AccessResult Cache::access(Addr addr) { return access_line(addr, 1); }

AccessResult Cache::access_line(Addr addr, std::uint32_t words) {
  tick_ += words;
  const std::uint64_t line = line_of(addr);
  const unsigned set = set_of(line);
  Way* base = set_base(set);

  for (unsigned w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].line == line) {
      // LRU refreshes the stamp on every hit; other policies leave it at
      // fill time. Selecting with a mask keeps the hot path branch-free.
      base[w].stamp = (base[w].stamp & ~lru_mask_) | (tick_ & lru_mask_);
      hits_ += words;
      return AccessResult{true, std::nullopt};
    }
  }

  // Only the first word of a same-line run can miss; the trailing words hit
  // the line just filled.
  ++misses_;
  hits_ += words - 1;
  const unsigned victim = pick_victim(set);
  Way& v = base[victim];
  AccessResult result{false, std::nullopt};
  if (v.valid) {
    result.evicted_line = v.line;
    ++evictions_;
  }
  v.valid = true;
  v.line = line;
  // Fill happens at the first (missing) word's tick; under LRU the trailing
  // hits then advance the stamp to the run's last tick.
  v.stamp = (tick_ & lru_mask_) | ((tick_ - words + 1) & ~lru_mask_);
  return result;
}

unsigned Cache::pick_victim(unsigned set) {
  Way* base = set_base(set);
  for (unsigned w = 0; w < config_.associativity; ++w) {
    if (!base[w].valid) return w;
  }
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      unsigned victim = 0;
      for (unsigned w = 1; w < config_.associativity; ++w) {
        if (base[w].stamp < base[victim].stamp) victim = w;
      }
      return victim;
    }
    case ReplacementPolicy::kRoundRobin: {
      const unsigned victim = rr_next_[set];
      rr_next_[set] = (victim + 1) % config_.associativity;
      return victim;
    }
    case ReplacementPolicy::kRandom:
      return static_cast<unsigned>(rng_.next_below(config_.associativity));
  }
  return 0;
}

void Cache::flush() {
  for (Way& w : ways_) w.valid = false;
  for (unsigned& n : rr_next_) n = 0;
}

bool Cache::contains(Addr addr) const {
  const std::uint64_t line = line_of(addr);
  const Way* base = set_base(set_of(line));
  for (unsigned w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].line == line) return true;
  }
  return false;
}

}  // namespace casa::cachesim

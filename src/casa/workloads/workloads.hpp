// Synthetic Mediabench-shaped workloads.
//
// The paper evaluates on adpcm (1 kB of code), g721 (4.7 kB) and mpeg
// (19.5 kB) compiled for ARM7T. We cannot redistribute or compile the
// originals here, so each generator builds a program whose *shape* matches
// the original: code footprint, function decomposition, loop nesting, hot
// path working-set size relative to the paper's I-cache, and call/branch
// mix. The CASA pipeline consumes nothing but that shape (CFG, profile,
// sizes), so these stand-ins exercise the identical code paths (see
// DESIGN.md §2).
//
// Two extra programs (epic, pegwit) extend the suite for examples and
// robustness tests.
#pragma once

#include <string>
#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/prog/program.hpp"

namespace casa::workloads {

/// ADPCM speech codec: ~1 kB of code, one dominant sample loop calling
/// encoder and decoder kernels. Paper pairs it with a 128 B I-cache.
prog::Program make_adpcm();

/// G.721 voice codec: ~4.7 kB, call-heavy predictor/quantizer pipeline.
/// Paper pairs it with a 1 kB I-cache.
prog::Program make_g721();

/// MPEG video encoder: ~19.5 kB, frame/macroblock loop nest over DCT,
/// motion estimation, quantization and VLC kernels whose combined hot set
/// far exceeds the paper's 2 kB I-cache.
prog::Program make_mpeg();

/// EPIC image codec stand-in (~3.3 kB): wavelet-style filter pyramid.
prog::Program make_epic();

/// Pegwit public-key stand-in (~7 kB): wide flat call tree, modest loops.
prog::Program make_pegwit();

/// GSM 06.10 codec stand-in (~6 kB): hot long-term-predictor lag search.
prog::Program make_gsm();

/// Baseline JPEG encoder stand-in (~11 kB): per-MCU DCT/quant/Huffman.
prog::Program make_jpeg();

/// Lookup by name ("adpcm", "g721", "mpeg", "epic", "pegwit",
/// "gsm", "jpeg").
prog::Program by_name(const std::string& name);

/// All generator names.
std::vector<std::string> names();

/// The I-cache configuration the paper's Table 1 uses for this benchmark
/// (direct-mapped, 16-byte lines; 128 B / 1 kB / 2 kB).
cachesim::CacheConfig paper_cache_for(const std::string& name);

/// The scratchpad sizes the paper sweeps for this benchmark.
std::vector<Bytes> paper_spm_sizes_for(const std::string& name);

}  // namespace casa::workloads

#include "casa/workloads/workloads.hpp"

#include <algorithm>

#include "casa/prog/builder.hpp"
#include "casa/support/error.hpp"

namespace casa::workloads {

using prog::FunctionScope;
using prog::Program;
using prog::ProgramBuilder;

namespace {

/// Emits `total` bytes of straight-line code as a fallthrough chain of
/// compiler-realistic basic blocks (<= 96 B). Trace formation re-fuses hot
/// chains up to the scratchpad-size bound, so this sets the allocation
/// granularity without distorting totals.
void straightline(FunctionScope& f, Bytes total, const std::string& label) {
  total = align_up(total, kWordBytes);
  int part = 0;
  while (total > 0) {
    const Bytes chunk = std::min<Bytes>(total, 96);
    f.code(chunk, label + "." + std::to_string(part++));
    total -= chunk;
  }
}

}  // namespace

// --------------------------------------------------------------- adpcm ---
//
// IMA-ADPCM style encoder, ~1 kB of code. The per-sample hot core
// (difference/quantize/step-update, ~300 B) is ~2.3x the paper's 128 B
// cache, so hot lines evict each other every sample; slow paths (range
// rescale, clamp repair, decoder verification) are reached with low
// probability and make up the rest of the footprint.
Program make_adpcm() {
  ProgramBuilder b("adpcm");

  b.function("step_update", [](FunctionScope& f) {
    f.code(36, "index.adjust");
    f.if_else(
        0.5, [](FunctionScope& t) { t.code(24, "clamp.hi"); },
        [](FunctionScope& e) { e.code(24, "clamp.lo"); });
    f.code(32, "step.lookup");
    f.if_then(0.05, [](FunctionScope& t) { t.code(68, "range.rescale"); });
  });

  b.function("encode_sample", [](FunctionScope& f) {
    f.code(24, "diff.compute");
    f.code(32, "quant.core");
    f.if_then(0.08, [](FunctionScope& t) { t.code(84, "quant.slowpath"); });
    f.if_else(
        0.5, [](FunctionScope& t) { t.code(20, "sign.pos"); },
        [](FunctionScope& e) { e.code(20, "sign.neg"); });
    f.code(24, "delta.encode");
    f.call("step_update");
    f.if_then(0.06, [](FunctionScope& t) { t.code(76, "clamp.slow"); });
    f.code(16, "state.store");
  });

  b.function("decode_sample", [](FunctionScope& f) {
    f.code(28, "delta.fetch");
    f.code(40, "rebuild.core");
    f.if_then(0.2, [](FunctionScope& t) { t.code(72, "rebuild.slow"); });
    f.call("step_update");
    f.if_then(0.1, [](FunctionScope& t) { t.code(56, "valpred.clamp"); });
    f.code(16, "sample.store");
  });

  b.function("init_tables", [](FunctionScope& f) {
    f.code(96, "tables.init");
    f.loop(4, [](FunctionScope& l) { l.code(20, "tables.fill"); });
  });

  b.function("main", [](FunctionScope& f) {
    f.code(32, "argv.setup");
    f.call("init_tables");
    f.loop(20000, [](FunctionScope& l) {
      l.code(12, "sample.load");
      l.call("encode_sample");
      l.code(8, "bits.pack");
      // Decoder runs only on the verification path.
      l.if_then(0.1, [](FunctionScope& t) { t.call("decode_sample"); });
      l.if_then(0.05, [](FunctionScope& t) { t.code(36, "buffer.flush"); });
    });
    f.code(24, "teardown");
  });

  return b.build();
}

// ---------------------------------------------------------------- g721 ---
//
// G.721 ADPCM, ~4.7 kB. The per-sample pipeline's hot cores sum to ~1.4 kB
// against the paper's 1 kB cache — most sets hold one or two hot lines, so
// conflicts are concentrated and pairwise. Each stage carries low-probability
// slow paths (the bulk of the static code). A tight per-sample checksum loop
// is hot but conflict-light: high fetch density with almost no misses — the
// kind of object Steinke's execution-count knapsack overvalues.
Program make_g721() {
  ProgramBuilder b("g721");

  b.function("quan", [](FunctionScope& f) {
    f.code(48, "table.base");
    f.loop_between(2, 7, [](FunctionScope& l) { l.code(20, "cmp.step"); });
    f.code(32, "level.out");
  });

  b.function("checksum", [](FunctionScope& f) {
    f.code(24, "crc.init");
    f.loop(10, [](FunctionScope& l) { l.code(56, "crc.word"); });
    f.code(20, "crc.fold");
  });

  b.function("predictor_zero", [](FunctionScope& f) {
    f.code(48, "sez.init");
    f.loop(6, [](FunctionScope& l) {
      l.code(24, "coeff.load");
      l.call("fmult");
      l.code(20, "acc.add");
    });
    f.code(36, "sez.scale");
  });

  b.function("predictor_pole", [](FunctionScope& f) {
    f.code(40, "pole.load");
    f.call("fmult");
    f.code(32, "pole.acc");
    f.call("fmult");
    f.code(36, "se.combine");
  });

  b.function("step_size", [](FunctionScope& f) {
    f.code(48, "al.check");
    f.if_else(
        0.3,
        [](FunctionScope& t) {
          straightline(t, 280, "unlocked.mix");
          t.code(64, "y.scale");
        },
        [](FunctionScope& e) { e.code(64, "locked.fast"); });
    f.code(36, "y.clamp");
  });

  b.function("quantize", [](FunctionScope& f) {
    f.code(96, "log.convert");
    f.call("quan");
    f.if_else(
        0.5, [](FunctionScope& t) { t.code(36, "ihat.pos"); },
        [](FunctionScope& e) { e.code(36, "ihat.neg"); });
    f.code(48, "dq.scale");
    f.if_then(0.15, [](FunctionScope& t) { straightline(t, 200, "dq.slow"); });
  });

  b.function("reconstruct", [](FunctionScope& f) {
    f.code(80, "dqln.add");
    f.if_then(0.5, [](FunctionScope& t) { t.code(48, "sign.fold"); });
    f.code(64, "antilog.core");
    f.if_then(0.1, [](FunctionScope& t) { straightline(t, 180, "antilog.slow"); });
  });

  b.function("update_state", [](FunctionScope& f) {
    f.code(80, "pk.core");
    f.if_else(
        0.5,
        [](FunctionScope& t) {
          straightline(t, 220, "a2.up");
          t.if_then(0.3, [](FunctionScope& u) { u.code(52, "a2.clamp"); });
        },
        [](FunctionScope& e) { straightline(e, 180, "a2.down"); });
    f.loop(6, [](FunctionScope& l) {
      l.code(40, "bn.update");
      l.if_then(0.25, [](FunctionScope& t) { t.code(24, "bn.leak"); });
    });
    f.code(64, "delay.core");
    f.if_then(0.2, [](FunctionScope& t) { straightline(t, 200, "delay.slow"); });
    f.code(40, "tone.detect");
  });

  b.function("fmult", [](FunctionScope& f) {
    f.code(40, "mantissa.split");
    f.code(88, "mult.core");
    f.if_then(0.3, [](FunctionScope& t) { t.code(96, "norm.slow"); });
    f.code(28, "result.pack");
  });

  b.function("tandem_adjust", [](FunctionScope& f) {
    f.code(88, "sr.diff");
    f.if_else(
        0.5, [](FunctionScope& t) { t.code(72, "adjust.up"); },
        [](FunctionScope& e) { e.code(72, "adjust.none"); });
    f.code(56, "sd.out");
  });

  b.function("format_convert", [](FunctionScope& f) {
    straightline(f, 230, "alaw.expand");
    f.if_else(
        0.5, [](FunctionScope& t) { t.code(88, "ulaw.path"); },
        [](FunctionScope& e) { e.code(88, "alaw.path"); });
    straightline(f, 140, "pcm.pack");
  });

  b.function("init_state", [](FunctionScope& f) {
    straightline(f, 340, "state.zero");
    f.loop(6, [](FunctionScope& l) { l.code(32, "delay.zero"); });
    straightline(f, 220, "tables.setup");
  });

  b.function("main", [](FunctionScope& f) {
    f.code(72, "args.parse");
    f.call("init_state");
    f.loop(6000, [](FunctionScope& l) {
      l.code(24, "sample.read");
      l.call("predictor_zero");
      l.call("predictor_pole");
      l.code(20, "se.sum");
      l.call("step_size");
      l.call("quantize");
      l.call("reconstruct");
      l.call("update_state");
      l.call("checksum");
      l.if_then(0.15, [](FunctionScope& t) { t.call("tandem_adjust"); });
      l.if_then(0.03, [](FunctionScope& t) { t.call("format_convert"); });
      l.code(20, "code.emit");
    });
    f.code(56, "stream.close");
  });

  return b.build();
}

// ---------------------------------------------------------------- mpeg ---
//
// MPEG-2 style encoder, ~19.5 kB. The macroblock loop's always-executed
// cores (SAD search + its pixel-distance helper, DCT butterflies, quantizer
// and VLC inner loops) total ~2.7 kB against the paper's 2 kB cache —
// conflicts are concentrated: the SAD core and pix_dist ping-pong on every
// search point, and whichever kernels the layout maps onto the same sets
// thrash once per macroblock. Everything else (half-pel refinement, IDCT /
// reconstruction on reference frames, rate control, headers, init, error
// recovery) is warm or cold and supplies the remaining footprint.
Program make_mpeg() {
  ProgramBuilder b("mpeg");

  b.function("motion_est", [](FunctionScope& f) {
    f.code(96, "search.setup");
    f.if_then(0.06,
              [](FunctionScope& t) { straightline(t, 560, "window.rebuild"); });
    f.loop(9, [](FunctionScope& row) {
      row.code(48, "row.setup");
      row.loop(9, [](FunctionScope& col) {
        straightline(col, 240, "sad.core");
        col.call("pix_dist");
        col.if_then(0.15,
                    [](FunctionScope& t) { t.code(64, "best.update"); });
      });
    });
    f.code(80, "mv.pick");
    f.if_then(0.1,
              [](FunctionScope& t) { straightline(t, 420, "search.fixup"); });
    f.if_then(0.12, [](FunctionScope& t) { t.call("me_halfpel"); });
    f.code(48, "mv.store");
    f.if_then(0.08,
              [](FunctionScope& t) { straightline(t, 320, "mv.predict.slow"); });
  });

  b.function("me_halfpel", [](FunctionScope& f) {
    straightline(f, 420, "halfpel.setup");
    f.loop(8, [](FunctionScope& l) {
      straightline(l, 320, "interp.sad");
      l.if_then(0.25, [](FunctionScope& t) { t.code(88, "best.hp"); });
    });
    straightline(f, 260, "mv.refine");
  });

  b.function("dct_8x8", [](FunctionScope& f) {
    f.code(64, "block.load");
    f.if_then(0.1,
              [](FunctionScope& t) { straightline(t, 300, "load.unpack"); });
    f.loop(8, [](FunctionScope& l) { straightline(l, 480, "row.fly"); });
    f.loop(8, [](FunctionScope& l) { straightline(l, 480, "col.fly"); });
    f.code(64, "coeff.store");
    f.if_then(0.1,
              [](FunctionScope& t) { straightline(t, 280, "store.saturate"); });
  });

  b.function("idct_8x8", [](FunctionScope& f) {
    straightline(f, 300, "coeff.load");
    f.loop(8, [](FunctionScope& l) { straightline(l, 460, "col.inv"); });
    f.loop(8, [](FunctionScope& l) { straightline(l, 460, "row.inv"); });
    straightline(f, 260, "pixel.clip");
  });

  b.function("zigzag_scan", [](FunctionScope& f) {
    f.code(20, "zz.setup");
    f.loop(12, [](FunctionScope& l) { l.code(28, "zz.copy"); });
    f.code(16, "zz.finish");
  });

  b.function("quantize_blk", [](FunctionScope& f) {
    f.code(64, "qscale.setup");
    f.if_then(0.15,
              [](FunctionScope& t) { straightline(t, 260, "qmatrix.reload"); });
    f.loop(6, [](FunctionScope& l) {
      straightline(l, 260, "coeff.core");
      l.if_then(0.12,
                [](FunctionScope& t) { straightline(t, 240, "deadzone.slow"); });
    });
    f.code(48, "cbp.update");
  });

  b.function("vlc_encode", [](FunctionScope& f) {
    f.code(72, "runlevel.scan");
    f.if_then(0.1,
              [](FunctionScope& t) { straightline(t, 300, "scan.rescan"); });
    f.loop(6, [](FunctionScope& l) {
      l.code(112, "token.next");
      l.switch_of(
          {0.7, 0.22, 0.08},
          {[](FunctionScope& a) { straightline(a, 160, "code.table0"); },
           [](FunctionScope& a) { straightline(a, 260, "code.table1"); },
           [](FunctionScope& a) {
             straightline(a, 360, "code.escape");
             a.if_then(0.5, [](FunctionScope& t) { t.code(96, "stuff"); });
           }});
      l.code(36, "bits.put");
    });
    f.code(48, "block.finish");
    f.if_then(0.1,
              [](FunctionScope& t) { straightline(t, 220, "finish.flush"); });
  });

  b.function("pix_dist", [](FunctionScope& f) {
    straightline(f, 200, "absdiff.acc");
    f.if_then(0.1, [](FunctionScope& t) { straightline(t, 120, "unaligned.fix"); });
  });

  b.function("reconstruct_mb", [](FunctionScope& f) {
    straightline(f, 300, "pred.fetch");
    f.loop(4, [](FunctionScope& l) {
      straightline(l, 380, "add.clip");
      l.if_then(0.2, [](FunctionScope& t) { t.code(96, "edge.pad"); });
    });
    straightline(f, 240, "frame.store");
  });

  b.function("rate_control", [](FunctionScope& f) {
    straightline(f, 540, "buffer.model");
    f.if_else(
        0.5,
        [](FunctionScope& t) { straightline(t, 380, "qscale.raise"); },
        [](FunctionScope& e) { straightline(e, 380, "qscale.lower"); });
    straightline(f, 480, "vbv.update");
  });

  b.function("header_gen", [](FunctionScope& f) {
    straightline(f, 480, "seq.header");
    f.if_then(0.3, [](FunctionScope& t) { straightline(t, 360, "gop.hdr"); });
    straightline(f, 440, "pic.header");
    f.loop(2, [](FunctionScope& l) { l.code(96, "slice.header"); });
  });

  b.function("input_read", [](FunctionScope& f) {
    straightline(f, 360, "file.seek");
    f.loop(16, [](FunctionScope& l) {
      straightline(l, 240, "luma.copy");
      l.code(96, "chroma.copy");
    });
    straightline(f, 300, "border.extend");
  });

  b.function("init_tables", [](FunctionScope& f) {
    straightline(f, 680, "qmatrix.init");
    f.loop(8, [](FunctionScope& l) { l.code(96, "vlc.table.build"); });
    straightline(f, 560, "me.threshold.init");
    straightline(f, 420, "gop.structure");
  });

  b.function("error_recover", [](FunctionScope& f) {
    straightline(f, 840, "bitstream.resync");
    f.loop(4, [](FunctionScope& l) { straightline(l, 320, "mb.conceal"); });
    straightline(f, 640, "state.rebuild");
    straightline(f, 520, "log.report");
  });

  b.function("main", [](FunctionScope& f) {
    f.code(96, "cmdline.parse");
    f.call("init_tables");
    f.loop(12, [](FunctionScope& frame) {
      frame.call("input_read");
      frame.loop(24, [](FunctionScope& mb) {
        mb.code(32, "mb.setup");
        mb.call("motion_est");
        // One luma/chroma 8x8 block at a time: the transform/quant/VLC
        // kernels alternate six times per macroblock, so any pair of them
        // (or of their helpers) that the layout maps onto the same cache
        // sets thrashes once per block, not once per macroblock.
        mb.loop(6, [](FunctionScope& blk) {
          blk.call("dct_8x8");
          blk.call("zigzag_scan");
          blk.call("quantize_blk");
          blk.call("vlc_encode");
        });
        mb.if_then(0.15, [](FunctionScope& t) {
          t.call("idct_8x8");
          t.call("reconstruct_mb");
        });
        mb.if_then(0.002, [](FunctionScope& t) { t.call("error_recover"); });
      });
      frame.call("rate_control");
      frame.call("header_gen");
      frame.code(48, "frame.flush");
    });
    f.code(96, "trailer.write");
  });

  return b.build();
}

// ---------------------------------------------------------------- epic ---
//
// EPIC image codec stand-in, ~3.3 kB: wavelet-style filter pyramid with a
// quantizer and entropy packer.
Program make_epic() {
  ProgramBuilder b("epic");

  b.function("filter_row", [](FunctionScope& f) {
    f.code(96, "taps.load");
    f.loop(12, [](FunctionScope& l) { straightline(l, 240, "conv.row"); });
    f.code(88, "edge.reflect");
  });

  b.function("filter_col", [](FunctionScope& f) {
    f.code(96, "taps.load");
    f.loop(12, [](FunctionScope& l) { straightline(l, 240, "conv.col"); });
    f.code(88, "edge.reflect");
  });

  b.function("quantize_band", [](FunctionScope& f) {
    straightline(f, 240, "binsize.calc");
    f.loop(10, [](FunctionScope& l) {
      straightline(l, 190, "coeff.bin");
      l.if_then(0.3, [](FunctionScope& t) { t.code(48, "zero.run"); });
    });
    f.code(80, "band.stats");
  });

  b.function("dpcm_encode", [](FunctionScope& f) {
    straightline(f, 260, "pred.delta");
    f.loop(6, [](FunctionScope& l) {
      l.code(72, "delta.map");
      l.if_then(0.35, [](FunctionScope& t) { t.code(40, "overflow.fix"); });
    });
    straightline(f, 180, "band.emit");
  });

  b.function("huffman_pack", [](FunctionScope& f) {
    straightline(f, 280, "tree.walk");
    f.loop(8, [](FunctionScope& l) {
      straightline(l, 170, "symbol.emit");
      l.if_else(
          0.5, [](FunctionScope& t) { t.code(56, "short.code"); },
          [](FunctionScope& e) { e.code(80, "long.code"); });
    });
    f.code(96, "stream.align");
  });

  b.function("main", [](FunctionScope& f) {
    straightline(f, 150, "image.load");
    f.loop(4, [](FunctionScope& level) {
      level.code(56, "level.setup");
      level.loop(40, [](FunctionScope& l) {
        l.call("filter_row");
        l.call("filter_col");
      });
      level.call("quantize_band");
      level.call("dpcm_encode");
    });
    f.loop(48, [](FunctionScope& l) { l.call("huffman_pack"); });
    f.code(96, "file.write");
  });

  return b.build();
}

// -------------------------------------------------------------- pegwit ---
//
// Pegwit public-key stand-in, ~7 kB: wide call tree over field arithmetic,
// elliptic-curve steps and a hash core.
Program make_pegwit() {
  ProgramBuilder b("pegwit");

  b.function("gf_mult", [](FunctionScope& f) {
    straightline(f, 280, "operand.align");
    f.loop(8, [](FunctionScope& l) {
      straightline(l, 180, "shift.xor");
      l.if_then(0.5, [](FunctionScope& t) { t.code(72, "reduce.poly"); });
    });
    straightline(f, 210, "result.mask");
  });

  b.function("gf_square", [](FunctionScope& f) {
    straightline(f, 240, "bit.spread");
    f.loop(4, [](FunctionScope& l) { straightline(l, 210, "table.fold"); });
    f.code(96, "reduce");
  });

  b.function("gf_invert", [](FunctionScope& f) {
    straightline(f, 300, "chain.init");
    f.loop(10, [](FunctionScope& l) {
      l.call("gf_square");
      l.if_then(0.4, [](FunctionScope& t) { t.call("gf_mult"); });
    });
    straightline(f, 220, "chain.final");
  });

  b.function("ec_add", [](FunctionScope& f) {
    straightline(f, 340, "lambda.num");
    f.call("gf_invert");
    f.call("gf_mult");
    straightline(f, 300, "x3.compute");
    f.call("gf_mult");
    straightline(f, 260, "y3.compute");
  });

  b.function("ec_double", [](FunctionScope& f) {
    straightline(f, 300, "slope.setup");
    f.call("gf_square");
    f.call("gf_invert");
    straightline(f, 210, "x3.compute");
    f.call("gf_mult");
    straightline(f, 170, "y3.compute");
  });

  b.function("sha_block", [](FunctionScope& f) {
    straightline(f, 400, "schedule.expand");
    f.loop(20, [](FunctionScope& l) { straightline(l, 230, "round.mix"); });
    straightline(f, 310, "digest.add");
  });

  b.function("key_schedule", [](FunctionScope& f) {
    straightline(f, 440, "seed.expand");
    f.loop(6, [](FunctionScope& l) {
      l.call("sha_block");
      l.code(88, "chunk.fold");
    });
    straightline(f, 280, "key.finalize");
  });

  b.function("io_stream", [](FunctionScope& f) {
    straightline(f, 360, "buffer.fill");
    f.loop(6, [](FunctionScope& l) { l.code(96, "byte.swab"); });
    straightline(f, 220, "crc.update");
  });

  b.function("octet_encode", [](FunctionScope& f) {
    straightline(f, 240, "radix.split");
    f.loop(5, [](FunctionScope& l) {
      l.code(64, "digit.emit");
      l.if_then(0.4, [](FunctionScope& t) { t.code(32, "pad.adjust"); });
    });
    straightline(f, 150, "checksum.mix");
  });

  b.function("main", [](FunctionScope& f) {
    straightline(f, 170, "options.parse");
    f.call("key_schedule");
    f.loop(128, [](FunctionScope& bit) {
      bit.call("ec_double");
      bit.if_then(0.5, [](FunctionScope& t) { t.call("ec_add"); });
      bit.code(24, "bit.next");
    });
    f.loop(48, [](FunctionScope& l) {
      l.call("io_stream");
      l.call("sha_block");
      l.call("octet_encode");
    });
    f.code(96, "signature.write");
  });

  return b.build();
}


// ----------------------------------------------------------------- gsm ---
//
// GSM 06.10 full-rate codec stand-in, ~6 kB: per-frame LPC analysis, a hot
// long-term-predictor lag search (the dominant kernel, called per
// sub-block), and RPE encoding. Hot set ~1.5 kB vs a 1 kB cache.
Program make_gsm() {
  ProgramBuilder b("gsm");

  b.function("autocorr", [](FunctionScope& f) {
    f.code(64, "acf.init");
    f.loop(9, [](FunctionScope& l) { straightline(l, 150, "acf.lag"); });
    f.code(56, "acf.scale");
    f.if_then(0.15, [](FunctionScope& t) { straightline(t, 180, "acf.renorm"); });
  });

  b.function("reflection", [](FunctionScope& f) {
    straightline(f, 140, "schur.init");
    f.loop(8, [](FunctionScope& l) {
      l.code(88, "schur.step");
      l.if_then(0.3, [](FunctionScope& t) { t.code(44, "schur.clamp"); });
    });
    straightline(f, 120, "larc.quant");
  });

  b.function("ltp_dist", [](FunctionScope& f) {
    straightline(f, 170, "xcorr.acc");
    f.if_then(0.12, [](FunctionScope& t) { t.code(60, "xcorr.sat"); });
  });

  b.function("ltp_search", [](FunctionScope& f) {
    f.code(72, "search.init");
    f.loop(40, [](FunctionScope& l) {
      l.code(40, "lag.setup");
      l.call("ltp_dist");
      l.if_then(0.2, [](FunctionScope& t) { t.code(36, "best.lag"); });
    });
    straightline(f, 240, "gain.quant");
  });

  b.function("rpe_encode", [](FunctionScope& f) {
    straightline(f, 280, "weighting.filter");
    f.loop(13, [](FunctionScope& l) { l.code(52, "grid.sample"); });
    f.if_else(
        0.5,
        [](FunctionScope& t) { straightline(t, 130, "apcm.quant"); },
        [](FunctionScope& e) { straightline(e, 130, "apcm.quant.alt"); });
    f.code(72, "grid.select");
  });

  b.function("short_term_filter", [](FunctionScope& f) {
    f.code(56, "st.init");
    f.loop(10, [](FunctionScope& l) { l.code(68, "lattice.stage"); });
    f.code(48, "st.flush");
  });

  b.function("preprocess", [](FunctionScope& f) {
    straightline(f, 300, "offset.comp");
    straightline(f, 240, "preemph");
  });

  b.function("frame_pack", [](FunctionScope& f) {
    straightline(f, 380, "bitpack");
    f.if_then(0.1, [](FunctionScope& t) { straightline(t, 160, "crc.frame"); });
  });

  b.function("init_codec", [](FunctionScope& f) {
    straightline(f, 560, "state.init");
    f.loop(8, [](FunctionScope& l) { l.code(48, "table.fill"); });
    straightline(f, 380, "config.parse");
  });

  b.function("error_conceal", [](FunctionScope& f) {
    straightline(f, 680, "bad.frame");
    f.loop(4, [](FunctionScope& l) { straightline(l, 160, "interpolate"); });
    straightline(f, 460, "mute.ramp");
  });

  b.function("main", [](FunctionScope& f) {
    f.code(64, "args");
    f.call("init_codec");
    f.loop(120, [](FunctionScope& frame) {
      frame.call("preprocess");
      frame.call("autocorr");
      frame.call("reflection");
      frame.call("short_term_filter");
      frame.loop(4, [](FunctionScope& sub) {
        sub.call("ltp_search");
        sub.call("rpe_encode");
      });
      frame.call("frame_pack");
      frame.if_then(0.004, [](FunctionScope& t) { t.call("error_conceal"); });
      frame.code(24, "frame.emit");
    });
    f.code(48, "flush");
  });

  return b.build();
}

// ---------------------------------------------------------------- jpeg ---
//
// Baseline JPEG encoder stand-in, ~11 kB: per-MCU color conversion,
// forward DCT, quantization and Huffman coding (the DCT/Huffman pair
// alternating per block is the conflict hot spot), plus cold marker/io
// code. Pairs with a 2 kB cache.
Program make_jpeg() {
  ProgramBuilder b("jpeg");

  b.function("color_convert", [](FunctionScope& f) {
    f.code(72, "rgb.load");
    f.loop(8, [](FunctionScope& l) { straightline(l, 280, "ycc.row"); });
    f.code(64, "chroma.subsample");
  });

  b.function("fdct", [](FunctionScope& f) {
    f.code(64, "dct.load");
    f.loop(8, [](FunctionScope& l) { straightline(l, 560, "dct.row"); });
    f.loop(8, [](FunctionScope& l) { straightline(l, 560, "dct.col"); });
    straightline(f, 260, "dct.descale");
  });

  b.function("quant_block", [](FunctionScope& f) {
    f.code(56, "q.setup");
    f.loop(6, [](FunctionScope& l) {
      straightline(l, 300, "q.coef");
      l.if_then(0.15, [](FunctionScope& t) { t.code(64, "q.round.slow"); });
    });
  });

  b.function("huff_encode", [](FunctionScope& f) {
    f.code(80, "dc.diff");
    f.loop(8, [](FunctionScope& l) {
      l.code(96, "run.scan");
      l.switch_of(
          {0.75, 0.25},
          {[](FunctionScope& a) { straightline(a, 200, "code.short"); },
           [](FunctionScope& a) {
             straightline(a, 320, "code.long");
             a.if_then(0.3, [](FunctionScope& t) { t.code(48, "byte.stuff"); });
           }});
      l.code(32, "bits.emit");
    });
    f.code(56, "eob.mark");
  });

  b.function("downsample_edge", [](FunctionScope& f) {
    straightline(f, 440, "edge.expand");
    f.loop(6, [](FunctionScope& l) { l.code(72, "edge.avg"); });
  });

  b.function("marker_write", [](FunctionScope& f) {
    straightline(f, 560, "dqt.emit");
    straightline(f, 520, "dht.emit");
    f.if_then(0.5, [](FunctionScope& t) { straightline(t, 340, "sof.emit"); });
    straightline(f, 280, "sos.emit");
  });

  b.function("io_flush", [](FunctionScope& f) {
    straightline(f, 360, "buffer.drain");
    f.loop(4, [](FunctionScope& l) { l.code(56, "swab.word"); });
    f.code(48, "fwrite.call");
  });

  b.function("init_tables", [](FunctionScope& f) {
    straightline(f, 720, "qtable.scale");
    f.loop(8, [](FunctionScope& l) { l.code(64, "huff.derive"); });
    straightline(f, 580, "comp.layout");
  });

  b.function("error_exit", [](FunctionScope& f) {
    straightline(f, 680, "msg.format");
    straightline(f, 480, "cleanup");
  });

  b.function("progressive_scan", [](FunctionScope& f) {
    straightline(f, 560, "spectral.select");
    f.loop(4, [](FunctionScope& l) { straightline(l, 200, "refine.pass"); });
    straightline(f, 420, "scan.script");
  });

  b.function("entropy_opt", [](FunctionScope& f) {
    straightline(f, 480, "freq.gather");
    f.loop(6, [](FunctionScope& l) { l.code(72, "code.assign"); });
    straightline(f, 360, "table.emit");
  });

  b.function("main", [](FunctionScope& f) {
    f.code(72, "cmdline");
    f.call("init_tables");
    f.if_then(0.02, [](FunctionScope& t) {
      t.call("progressive_scan");
      t.call("entropy_opt");
    });
    f.call("marker_write");
    f.loop(20, [](FunctionScope& row) {
      row.loop(16, [](FunctionScope& mcu) {
        mcu.call("color_convert");
        // 3 blocks per MCU (Y, Cb, Cr after subsampling): the transform /
        // quant / Huffman cycle repeats, amplifying whichever pair of
        // kernels the layout maps onto the same sets.
        mcu.loop(3, [](FunctionScope& blk) {
          blk.call("fdct");
          blk.call("quant_block");
          blk.call("huff_encode");
        });
        mcu.if_then(0.06,
                    [](FunctionScope& t) { t.call("downsample_edge"); });
        mcu.if_then(0.001, [](FunctionScope& t) { t.call("error_exit"); });
      });
      row.call("io_flush");
    });
    f.call("marker_write");
    f.code(64, "trailer");
  });

  return b.build();
}

// ------------------------------------------------------------- factory ---

Program by_name(const std::string& name) {
  if (name == "adpcm") return make_adpcm();
  if (name == "g721") return make_g721();
  if (name == "mpeg") return make_mpeg();
  if (name == "epic") return make_epic();
  if (name == "pegwit") return make_pegwit();
  if (name == "gsm") return make_gsm();
  if (name == "jpeg") return make_jpeg();
  CASA_CHECK(false, "unknown workload: " + name);
  return make_adpcm();  // unreachable
}

std::vector<std::string> names() {
  return {"adpcm", "g721", "mpeg", "epic", "pegwit", "gsm", "jpeg"};
}

cachesim::CacheConfig paper_cache_for(const std::string& name) {
  cachesim::CacheConfig cfg;
  cfg.line_size = 16;
  cfg.associativity = 1;
  cfg.policy = cachesim::ReplacementPolicy::kLru;
  if (name == "adpcm") {
    cfg.size = 128;
  } else if (name == "g721") {
    cfg.size = 1_KiB;
  } else if (name == "mpeg") {
    cfg.size = 2_KiB;
  } else if (name == "epic") {
    cfg.size = 512;
  } else if (name == "pegwit") {
    cfg.size = 1_KiB;
  } else if (name == "gsm") {
    cfg.size = 1_KiB;
  } else if (name == "jpeg") {
    cfg.size = 2_KiB;
  } else {
    CASA_CHECK(false, "unknown workload: " + name);
  }
  return cfg;
}

std::vector<Bytes> paper_spm_sizes_for(const std::string& name) {
  if (name == "adpcm") return {64, 128, 256};
  if (name == "g721") return {128, 256, 512, 1024};
  if (name == "mpeg") return {128, 256, 512, 1024};
  if (name == "epic") return {64, 128, 256, 512};
  if (name == "pegwit") return {128, 256, 512, 1024};
  if (name == "gsm") return {128, 256, 512, 1024};
  if (name == "jpeg") return {128, 256, 512, 1024};
  CASA_CHECK(false, "unknown workload: " + name);
  return {};
}

}  // namespace casa::workloads

// Two-level instruction hierarchy: SPM + L1 I-cache + unified L2 + main
// memory.
//
// The paper's §4 claim: "If we had I-caches at different levels (e.g. L1,
// L2) in the memory hierarchy, we need not do anything, as the algorithm
// tries to minimize the L1 I-cache misses. The L2 I-cache misses, being a
// subset of the L1 I-cache misses, are thus also minimized." This module
// lets the experiments verify that claim: the allocator stays L1-based and
// the simulation adds the second level.
#pragma once

#include "casa/cachesim/cache.hpp"
#include "casa/energy/technology.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::memsim {

/// Per-event energies of the two-level system.
struct TwoLevelEnergies {
  Energy spm_access = 0;
  Energy l1_hit = 0;
  /// L1 miss serviced by the L2: L1 probe + L2 read + L1 fill.
  Energy l1_miss_l2_hit = 0;
  /// Both levels miss: both probes + off-chip burst + both fills.
  Energy l1_miss_l2_miss = 0;

  static TwoLevelEnergies build(
      const cachesim::CacheConfig& l1, const cachesim::CacheConfig& l2,
      Bytes spm_size,
      const energy::TechnologyParams& tech = energy::arm7_tech());
};

struct TwoLevelCounters {
  std::uint64_t total_fetches = 0;
  std::uint64_t spm_accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
};

struct TwoLevelReport {
  TwoLevelCounters counters;
  Energy total_energy = 0;
};

/// Replays the walk through SPM / L1 / L2 (inclusive; both levels use their
/// own geometry, L2 line size must be >= L1 line size and a multiple).
/// `use_compiled_stream` selects the line-granular fast path (identical
/// counters; the word-granular reference is kept for oracle tests).
TwoLevelReport simulate_spm_two_level(const traceopt::TraceProgram& tp,
                                      const traceopt::Layout& layout,
                                      const trace::BlockWalk& walk,
                                      const std::vector<bool>& on_spm,
                                      const cachesim::CacheConfig& l1_cfg,
                                      const cachesim::CacheConfig& l2_cfg,
                                      const TwoLevelEnergies& energies,
                                      std::uint64_t seed = 1,
                                      bool use_compiled_stream = true);

}  // namespace casa::memsim

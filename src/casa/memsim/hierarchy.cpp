#include "casa/memsim/hierarchy.hpp"

#include "casa/support/error.hpp"

namespace casa::memsim {

namespace {

/// Shared inner loop. `spm_mo` marks scratchpad-resident objects (empty =
/// none); `regions` enables the loop-cache path (nullptr = none).
SimReport run(const traceopt::TraceProgram& tp,
              const traceopt::Layout& layout, const trace::BlockWalk& walk,
              const std::vector<bool>& spm_mo,
              const loopcache::RegionSet* regions,
              const cachesim::CacheConfig& cache_cfg,
              const energy::EnergyTable& energies, const SimOptions& opt) {
  const prog::Program& program = tp.program();
  cachesim::Cache cache(cache_cfg, opt.seed);
  const std::uint64_t line_words = cache_cfg.line_size / kWordBytes;
  const LatencyParams& lat = opt.latency;

  SimReport rep;
  SimCounters& c = rep.counters;

  for (const BasicBlockId bb : walk.seq) {
    const MemoryObjectId mo = tp.object_of(bb);
    const Bytes size = program.block(bb).size;
    const std::uint64_t words = size / kWordBytes;

    if (!spm_mo.empty() && spm_mo[mo.index()]) {
      // Whole block fetched from the scratchpad.
      c.total_fetches += words;
      c.spm_accesses += words;
      c.cycles += words * lat.spm_access;
      rep.spm_energy += static_cast<double>(words) * energies.spm_access;
      continue;
    }

    const Addr base = layout.block_addr(bb);
    for (std::uint64_t w = 0; w < words; ++w) {
      const Addr addr = base + w * kWordBytes;
      ++c.total_fetches;

      if (regions != nullptr && regions->contains(addr)) {
        ++c.lc_accesses;
        c.cycles += lat.lc_access;
        rep.lc_energy += energies.lc_access;
        continue;
      }
      if (regions != nullptr) {
        // The controller compares bounds on every fetch it does not serve.
        rep.lc_energy += energies.lc_controller;
      }

      const cachesim::AccessResult r = cache.access(addr);
      ++c.cache_accesses;
      if (r.hit) {
        ++c.cache_hits;
        c.cycles += lat.cache_hit;
        rep.cache_energy += energies.cache_hit;
      } else {
        ++c.cache_misses;
        c.mainmem_words += line_words;
        c.cycles += lat.cache_hit + lat.miss_base_penalty +
                    line_words * lat.miss_per_word;
        rep.cache_energy += energies.cache_miss;
      }
    }
  }

  rep.total_energy = rep.spm_energy + rep.cache_energy + rep.lc_energy;
  return rep;
}

}  // namespace

SimReport simulate_spm_system(const traceopt::TraceProgram& tp,
                              const traceopt::Layout& layout,
                              const trace::BlockWalk& walk,
                              const std::vector<bool>& on_spm,
                              const cachesim::CacheConfig& cache_cfg,
                              const energy::EnergyTable& energies,
                              const SimOptions& opt) {
  CASA_CHECK(on_spm.size() == tp.object_count(), "on_spm mask size mismatch");
  CASA_CHECK(energies.spm_access > 0, "energy table lacks an SPM entry");
  return run(tp, layout, walk, on_spm, nullptr, cache_cfg, energies, opt);
}

SimReport simulate_loopcache_system(const traceopt::TraceProgram& tp,
                                    const traceopt::Layout& layout,
                                    const trace::BlockWalk& walk,
                                    const loopcache::RegionSet& regions,
                                    const cachesim::CacheConfig& cache_cfg,
                                    const energy::EnergyTable& energies,
                                    const SimOptions& opt) {
  CASA_CHECK(energies.lc_access > 0, "energy table lacks a loop-cache entry");
  return run(tp, layout, walk, {}, &regions, cache_cfg, energies, opt);
}

SimReport simulate_cache_only(const traceopt::TraceProgram& tp,
                              const traceopt::Layout& layout,
                              const trace::BlockWalk& walk,
                              const cachesim::CacheConfig& cache_cfg,
                              const energy::EnergyTable& energies,
                              const SimOptions& opt) {
  return run(tp, layout, walk, {}, nullptr, cache_cfg, energies, opt);
}

}  // namespace casa::memsim

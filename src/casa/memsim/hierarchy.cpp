#include "casa/memsim/hierarchy.hpp"

#include "casa/obs/metric_names.hpp"
#include "casa/support/error.hpp"

namespace casa::memsim {

namespace {

/// Derives the energy report from event counters. Both replay granularities
/// share this, so energies are byte-identical whenever counters are — and
/// the hot loops carry no floating-point accumulation at all.
void finish(SimReport& rep, const energy::EnergyTable& energies,
            bool loop_cache) {
  const SimCounters& c = rep.counters;
  rep.spm_energy =
      static_cast<double>(c.spm_accesses) * energies.spm_access;
  rep.cache_energy =
      static_cast<double>(c.cache_hits) * energies.cache_hit +
      static_cast<double>(c.cache_misses) * energies.cache_miss;
  if (loop_cache) {
    // The controller compares bounds on every fetch it does not serve.
    rep.lc_energy =
        static_cast<double>(c.lc_accesses) * energies.lc_access +
        static_cast<double>(c.cache_accesses) * energies.lc_controller;
  }
  rep.total_energy = rep.spm_energy + rep.cache_energy + rep.lc_energy;
}

/// Records the finished replay's counters into the attached registry (a
/// handful of adds per *simulation*, never per access — the instrumentation
/// stays off the hot path entirely).
void record_metrics(obs::MetricsRegistry* reg, const SimCounters& c) {
  if (reg == nullptr) return;
  reg->add(obs::metric_names::kSimFetches, c.total_fetches);
  reg->add(obs::metric_names::kSimSpmAccesses, c.spm_accesses);
  reg->add(obs::metric_names::kSimLcAccesses, c.lc_accesses);
  reg->add(obs::metric_names::kCacheAccesses, c.cache_accesses);
  reg->add(obs::metric_names::kCacheHits, c.cache_hits);
  reg->add(obs::metric_names::kCacheMisses, c.cache_misses);
  reg->add(obs::metric_names::kCacheEvictions, c.cache_evictions);
  reg->add(obs::metric_names::kSimMainmemWords, c.mainmem_words);
  reg->add(obs::metric_names::kSimCycles, c.cycles);
}

/// Word-granular reference inner loop. `spm_mo` marks scratchpad-resident
/// objects (empty = none); `regions` enables the loop-cache path (nullptr =
/// none).
SimReport run_words(const traceopt::TraceProgram& tp,
                    const traceopt::Layout& layout,
                    const trace::BlockWalk& walk,
                    const std::vector<bool>& spm_mo,
                    const loopcache::RegionSet* regions,
                    const cachesim::CacheConfig& cache_cfg,
                    const energy::EnergyTable& energies,
                    const SimOptions& opt) {
  const prog::Program& program = tp.program();
  cachesim::Cache cache(cache_cfg, opt.seed);
  const std::uint64_t line_words = cache_cfg.line_size / kWordBytes;
  const LatencyParams& lat = opt.latency;

  SimReport rep;
  SimCounters& c = rep.counters;

  for (const BasicBlockId bb : walk.seq) {
    const MemoryObjectId mo = tp.object_of(bb);
    const Bytes size = program.block(bb).size;
    const std::uint64_t words = size / kWordBytes;

    if (!spm_mo.empty() && spm_mo[mo.index()]) {
      // Whole block fetched from the scratchpad.
      c.total_fetches += words;
      c.spm_accesses += words;
      c.cycles += words * lat.spm_access;
      continue;
    }

    const Addr base = layout.block_addr(bb);
    for (std::uint64_t w = 0; w < words; ++w) {
      const Addr addr = base + w * kWordBytes;
      ++c.total_fetches;

      if (regions != nullptr && regions->contains(addr)) {
        ++c.lc_accesses;
        c.cycles += lat.lc_access;
        continue;
      }

      const cachesim::AccessResult r = cache.access(addr);
      ++c.cache_accesses;
      if (r.hit) {
        ++c.cache_hits;
        c.cycles += lat.cache_hit;
      } else {
        ++c.cache_misses;
        c.mainmem_words += line_words;
        c.cycles += lat.cache_hit + lat.miss_base_penalty +
                    line_words * lat.miss_per_word;
      }
    }
  }

  c.cache_evictions = cache.evictions();
  finish(rep, energies, regions != nullptr);
  record_metrics(opt.metrics, c);
  return rep;
}

/// Line-granular inner loop over a compiled stream (no loop-cache path; see
/// SimOptions::use_compiled_stream).
SimReport run_lines(const traceopt::TraceProgram& tp,
                    const trace::CompiledStream& stream,
                    const trace::BlockWalk& walk,
                    const std::vector<bool>& spm_mo,
                    const cachesim::CacheConfig& cache_cfg,
                    const energy::EnergyTable& energies,
                    const SimOptions& opt) {
  cachesim::Cache cache(cache_cfg, opt.seed);
  const std::uint64_t line_words = cache_cfg.line_size / kWordBytes;
  const LatencyParams& lat = opt.latency;
  const std::uint64_t miss_cycles =
      lat.cache_hit + lat.miss_base_penalty + line_words * lat.miss_per_word;

  SimReport rep;
  SimCounters& c = rep.counters;
  std::uint64_t runs_replayed = 0;

  for (const BasicBlockId bb : walk.seq) {
    const MemoryObjectId mo = tp.object_of(bb);
    const std::uint64_t words = stream.words_of(bb);

    if (!spm_mo.empty() && spm_mo[mo.index()]) {
      c.total_fetches += words;
      c.spm_accesses += words;
      c.cycles += words * lat.spm_access;
      continue;
    }

    CASA_CHECK(stream.cached(bb),
               "cached block missing from the compiled layout");
    runs_replayed += stream.runs(bb).size();
    for (const trace::LineRun& run : stream.runs(bb)) {
      c.total_fetches += run.words;
      c.cache_accesses += run.words;
      const cachesim::AccessResult r = cache.access_line(run.addr, run.words);
      if (r.hit) {
        c.cache_hits += run.words;
        c.cycles += run.words * lat.cache_hit;
      } else {
        // Same-line run: the first word misses, the rest hit.
        c.cache_hits += run.words - 1;
        ++c.cache_misses;
        c.mainmem_words += line_words;
        c.cycles += (run.words - 1) * lat.cache_hit + miss_cycles;
      }
    }
  }

  c.cache_evictions = cache.evictions();
  finish(rep, energies, /*loop_cache=*/false);
  record_metrics(opt.metrics, c);
  if (opt.metrics != nullptr) {
    // Compiled-stream run-length telemetry: static runs in the compiled
    // image, dynamic runs replayed, and the words they collapsed.
    opt.metrics->add(obs::metric_names::kStreamCompiledRuns, stream.total_runs());
    opt.metrics->add(obs::metric_names::kStreamReplayedRuns, runs_replayed);
    opt.metrics->add(obs::metric_names::kStreamReplayedWords,
                     c.cache_hits + c.cache_misses);
  }
  return rep;
}

SimReport run(const traceopt::TraceProgram& tp, const traceopt::Layout& layout,
              const trace::BlockWalk& walk, const std::vector<bool>& spm_mo,
              const loopcache::RegionSet* regions,
              const cachesim::CacheConfig& cache_cfg,
              const energy::EnergyTable& energies, const SimOptions& opt) {
  if (regions == nullptr && opt.use_compiled_stream) {
    const trace::CompiledStream stream =
        traceopt::compile_fetch_stream(tp, layout, cache_cfg.line_size);
    return run_lines(tp, stream, walk, spm_mo, cache_cfg, energies, opt);
  }
  return run_words(tp, layout, walk, spm_mo, regions, cache_cfg, energies,
                   opt);
}

}  // namespace

SimReport simulate_spm_system(const traceopt::TraceProgram& tp,
                              const traceopt::Layout& layout,
                              const trace::BlockWalk& walk,
                              const std::vector<bool>& on_spm,
                              const cachesim::CacheConfig& cache_cfg,
                              const energy::EnergyTable& energies,
                              const SimOptions& opt) {
  CASA_CHECK(on_spm.size() == tp.object_count(), "on_spm mask size mismatch");
  CASA_CHECK(energies.spm_access > 0, "energy table lacks an SPM entry");
  return run(tp, layout, walk, on_spm, nullptr, cache_cfg, energies, opt);
}

SimReport simulate_loopcache_system(const traceopt::TraceProgram& tp,
                                    const traceopt::Layout& layout,
                                    const trace::BlockWalk& walk,
                                    const loopcache::RegionSet& regions,
                                    const cachesim::CacheConfig& cache_cfg,
                                    const energy::EnergyTable& energies,
                                    const SimOptions& opt) {
  CASA_CHECK(energies.lc_access > 0, "energy table lacks a loop-cache entry");
  return run(tp, layout, walk, {}, &regions, cache_cfg, energies, opt);
}

SimReport simulate_cache_only(const traceopt::TraceProgram& tp,
                              const traceopt::Layout& layout,
                              const trace::BlockWalk& walk,
                              const cachesim::CacheConfig& cache_cfg,
                              const energy::EnergyTable& energies,
                              const SimOptions& opt) {
  return run(tp, layout, walk, {}, nullptr, cache_cfg, energies, opt);
}

SimReport report_from_counters(const SimCounters& counters,
                               const energy::EnergyTable& energies,
                               bool loop_cache) {
  SimReport rep;
  rep.counters = counters;
  finish(rep, energies, loop_cache);
  return rep;
}

void record_sim_counters(obs::MetricsRegistry* reg,
                         const SimCounters& counters) {
  record_metrics(reg, counters);
}

}  // namespace casa::memsim

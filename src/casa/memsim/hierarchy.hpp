// Memory-hierarchy simulator (the repo's "memsim").
//
// Replays the dynamic block walk against a concrete hierarchy and produces
// event counters, energy, and cycle totals. Three configurations mirror the
// paper's experiments:
//  * scratchpad + I-cache (fig. 1a)     — simulate_spm_system
//  * preloaded loop cache + I-cache (1b) — simulate_loopcache_system
//  * I-cache only (reference)            — simulate_cache_only
#pragma once

#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/loopcache/loop_cache.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::memsim {

/// Cycle costs per event (ARM7T-ish; only relative magnitudes matter).
struct LatencyParams {
  std::uint64_t spm_access = 1;
  std::uint64_t cache_hit = 1;
  std::uint64_t miss_base_penalty = 4;   ///< bus setup per line fill
  std::uint64_t miss_per_word = 2;       ///< off-chip word transfer
  std::uint64_t lc_access = 1;
};

struct SimCounters {
  std::uint64_t total_fetches = 0;
  std::uint64_t spm_accesses = 0;
  std::uint64_t lc_accesses = 0;
  std::uint64_t cache_accesses = 0;  ///< hits + misses
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0; ///< misses displacing a valid line
  std::uint64_t mainmem_words = 0;   ///< words transferred on line fills
  std::uint64_t cycles = 0;

  friend bool operator==(const SimCounters&, const SimCounters&) = default;
};

struct SimReport {
  SimCounters counters;
  Energy total_energy = 0;
  Energy spm_energy = 0;
  Energy cache_energy = 0;   ///< hits + misses (incl. refill/off-chip part)
  Energy lc_energy = 0;      ///< array accesses + controller overhead

  friend bool operator==(const SimReport&, const SimReport&) = default;
};

struct SimOptions {
  std::uint64_t seed = 1;  ///< for random cache replacement only
  LatencyParams latency;
  /// Replay the walk at line granularity via a pre-compiled fetch stream
  /// (trace::CompiledStream) — ~line_size/4 fewer cache calls, identical
  /// counters and (counter-derived) energies. The word-granular reference
  /// path is kept for oracle tests. Loop-cache simulation always replays
  /// words: preloaded regions bound by loop/function extents need not align
  /// to cache lines, so a line run may straddle a region edge.
  bool use_compiled_stream = true;
  /// When set, the final counters (sim.* / cache.* / stream.* — see
  /// docs/metrics.md) are recorded here after the replay finishes. Recording
  /// happens once per simulation, outside the hot loop, so the null default
  /// costs nothing.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Scratchpad system: objects with on_spm[mo] set are fetched from the
/// scratchpad; everything else goes through the I-cache at its layout
/// address. `layout` must place every cached object (CASA passes the full
/// copy-semantics layout; Steinke passes the compacted move-semantics
/// layout).
SimReport simulate_spm_system(const traceopt::TraceProgram& tp,
                              const traceopt::Layout& layout,
                              const trace::BlockWalk& walk,
                              const std::vector<bool>& on_spm,
                              const cachesim::CacheConfig& cache_cfg,
                              const energy::EnergyTable& energies,
                              const SimOptions& opt = {});

/// Loop-cache system: fetches inside a selected region hit the loop cache;
/// all other fetches pay the controller check plus the I-cache path.
SimReport simulate_loopcache_system(const traceopt::TraceProgram& tp,
                                    const traceopt::Layout& layout,
                                    const trace::BlockWalk& walk,
                                    const loopcache::RegionSet& regions,
                                    const cachesim::CacheConfig& cache_cfg,
                                    const energy::EnergyTable& energies,
                                    const SimOptions& opt = {});

/// Plain I-cache reference run.
SimReport simulate_cache_only(const traceopt::TraceProgram& tp,
                              const traceopt::Layout& layout,
                              const trace::BlockWalk& walk,
                              const cachesim::CacheConfig& cache_cfg,
                              const energy::EnergyTable& energies,
                              const SimOptions& opt = {});

/// Derives the full report (energies) from externally produced counters —
/// the exact computation the simulators above apply to their own counters,
/// so counter-identical inputs yield bit-identical reports. Used by the
/// one-pass sweep engine (sim::SweepPlanner), which produces counters for
/// many configurations from a single stack pass.
SimReport report_from_counters(const SimCounters& counters,
                               const energy::EnergyTable& energies,
                               bool loop_cache);

/// Records `counters` into `reg` under the same sim.* / cache.* keys the
/// simulators use (null registry = no-op). Lets externally derived counters
/// keep per-job telemetry identical to a direct simulation.
void record_sim_counters(obs::MetricsRegistry* reg,
                         const SimCounters& counters);

}  // namespace casa::memsim

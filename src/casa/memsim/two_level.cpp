#include "casa/memsim/two_level.hpp"

#include "casa/energy/cache_energy.hpp"
#include "casa/energy/main_memory.hpp"
#include "casa/energy/spm_energy.hpp"
#include "casa/support/error.hpp"

namespace casa::memsim {

TwoLevelEnergies TwoLevelEnergies::build(
    const cachesim::CacheConfig& l1, const cachesim::CacheConfig& l2,
    Bytes spm_size, const energy::TechnologyParams& tech) {
  const energy::CacheEnergyModel m1(l1, tech);
  const energy::CacheEnergyModel m2(l2, tech);
  const energy::MainMemoryModel mm(tech);

  TwoLevelEnergies e;
  if (spm_size > 0) {
    e.spm_access = energy::SpmEnergyModel(spm_size, tech).access_energy();
  }
  e.l1_hit = m1.hit_energy();
  e.l1_miss_l2_hit =
      m1.probe_energy() + m2.hit_energy() + m1.linefill_energy();
  e.l1_miss_l2_miss = m1.probe_energy() + m2.probe_energy() +
                      mm.burst_read_energy(l2.line_size) +
                      m2.linefill_energy() + m1.linefill_energy();
  return e;
}

TwoLevelReport simulate_spm_two_level(const traceopt::TraceProgram& tp,
                                      const traceopt::Layout& layout,
                                      const trace::BlockWalk& walk,
                                      const std::vector<bool>& on_spm,
                                      const cachesim::CacheConfig& l1_cfg,
                                      const cachesim::CacheConfig& l2_cfg,
                                      const TwoLevelEnergies& energies,
                                      std::uint64_t seed) {
  CASA_CHECK(on_spm.size() == tp.object_count(), "on_spm size mismatch");
  CASA_CHECK(l2_cfg.line_size >= l1_cfg.line_size &&
                 l2_cfg.line_size % l1_cfg.line_size == 0,
             "L2 line must be a multiple of the L1 line");
  CASA_CHECK(l2_cfg.size >= l1_cfg.size, "L2 must not be smaller than L1");

  const prog::Program& program = tp.program();
  cachesim::Cache l1(l1_cfg, seed);
  cachesim::Cache l2(l2_cfg, seed + 1);

  TwoLevelReport rep;
  TwoLevelCounters& c = rep.counters;

  for (const BasicBlockId bb : walk.seq) {
    const MemoryObjectId mo = tp.object_of(bb);
    const Bytes size = program.block(bb).size;
    const std::uint64_t words = size / kWordBytes;

    if (on_spm[mo.index()]) {
      c.total_fetches += words;
      c.spm_accesses += words;
      rep.total_energy += static_cast<double>(words) * energies.spm_access;
      continue;
    }

    const Addr base = layout.block_addr(bb);
    for (std::uint64_t w = 0; w < words; ++w) {
      const Addr addr = base + w * kWordBytes;
      ++c.total_fetches;
      if (l1.access(addr).hit) {
        ++c.l1_hits;
        rep.total_energy += energies.l1_hit;
        continue;
      }
      ++c.l1_misses;
      if (l2.access(addr).hit) {
        ++c.l2_hits;
        rep.total_energy += energies.l1_miss_l2_hit;
      } else {
        ++c.l2_misses;
        rep.total_energy += energies.l1_miss_l2_miss;
      }
    }
  }
  return rep;
}

}  // namespace casa::memsim

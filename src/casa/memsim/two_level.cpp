#include "casa/memsim/two_level.hpp"

#include "casa/energy/cache_energy.hpp"
#include "casa/energy/main_memory.hpp"
#include "casa/energy/spm_energy.hpp"
#include "casa/support/error.hpp"

namespace casa::memsim {

TwoLevelEnergies TwoLevelEnergies::build(
    const cachesim::CacheConfig& l1, const cachesim::CacheConfig& l2,
    Bytes spm_size, const energy::TechnologyParams& tech) {
  const energy::CacheEnergyModel m1(l1, tech);
  const energy::CacheEnergyModel m2(l2, tech);
  const energy::MainMemoryModel mm(tech);

  TwoLevelEnergies e;
  if (spm_size > 0) {
    e.spm_access = energy::SpmEnergyModel(spm_size, tech).access_energy();
  }
  e.l1_hit = m1.hit_energy();
  e.l1_miss_l2_hit =
      m1.probe_energy() + m2.hit_energy() + m1.linefill_energy();
  e.l1_miss_l2_miss = m1.probe_energy() + m2.probe_energy() +
                      mm.burst_read_energy(l2.line_size) +
                      m2.linefill_energy() + m1.linefill_energy();
  return e;
}

namespace {

/// Energy falls out of the counters (identically for both granularities).
void finish(TwoLevelReport& rep, const TwoLevelEnergies& e) {
  const TwoLevelCounters& c = rep.counters;
  rep.total_energy =
      static_cast<double>(c.spm_accesses) * e.spm_access +
      static_cast<double>(c.l1_hits) * e.l1_hit +
      static_cast<double>(c.l2_hits) * e.l1_miss_l2_hit +
      static_cast<double>(c.l2_misses) * e.l1_miss_l2_miss;
}

}  // namespace

TwoLevelReport simulate_spm_two_level(const traceopt::TraceProgram& tp,
                                      const traceopt::Layout& layout,
                                      const trace::BlockWalk& walk,
                                      const std::vector<bool>& on_spm,
                                      const cachesim::CacheConfig& l1_cfg,
                                      const cachesim::CacheConfig& l2_cfg,
                                      const TwoLevelEnergies& energies,
                                      std::uint64_t seed,
                                      bool use_compiled_stream) {
  CASA_CHECK(on_spm.size() == tp.object_count(), "on_spm size mismatch");
  CASA_CHECK(l2_cfg.line_size >= l1_cfg.line_size &&
                 l2_cfg.line_size % l1_cfg.line_size == 0,
             "L2 line must be a multiple of the L1 line");
  CASA_CHECK(l2_cfg.size >= l1_cfg.size, "L2 must not be smaller than L1");

  const prog::Program& program = tp.program();
  cachesim::Cache l1(l1_cfg, seed);
  cachesim::Cache l2(l2_cfg, seed + 1);

  TwoLevelReport rep;
  TwoLevelCounters& c = rep.counters;

  if (use_compiled_stream) {
    // Line runs are bounded by the (smaller) L1 line, so each run touches
    // one line at both levels; the single L2 access per L1-missing run
    // matches the word path, where only the run's first word can miss L1.
    const trace::CompiledStream stream =
        traceopt::compile_fetch_stream(tp, layout, l1_cfg.line_size);
    for (const BasicBlockId bb : walk.seq) {
      const MemoryObjectId mo = tp.object_of(bb);
      const std::uint64_t words = stream.words_of(bb);
      if (on_spm[mo.index()]) {
        c.total_fetches += words;
        c.spm_accesses += words;
        continue;
      }
      for (const trace::LineRun& run : stream.runs(bb)) {
        c.total_fetches += run.words;
        if (l1.access_line(run.addr, run.words).hit) {
          c.l1_hits += run.words;
          continue;
        }
        c.l1_hits += run.words - 1;
        ++c.l1_misses;
        if (l2.access(run.addr).hit) {
          ++c.l2_hits;
        } else {
          ++c.l2_misses;
        }
      }
    }
    finish(rep, energies);
    return rep;
  }

  for (const BasicBlockId bb : walk.seq) {
    const MemoryObjectId mo = tp.object_of(bb);
    const Bytes size = program.block(bb).size;
    const std::uint64_t words = size / kWordBytes;

    if (on_spm[mo.index()]) {
      c.total_fetches += words;
      c.spm_accesses += words;
      continue;
    }

    const Addr base = layout.block_addr(bb);
    for (std::uint64_t w = 0; w < words; ++w) {
      const Addr addr = base + w * kWordBytes;
      ++c.total_fetches;
      if (l1.access(addr).hit) {
        ++c.l1_hits;
        continue;
      }
      ++c.l1_misses;
      if (l2.access(addr).hit) {
        ++c.l2_hits;
      } else {
        ++c.l2_misses;
      }
    }
  }
  finish(rep, energies);
  return rep;
}

}  // namespace casa::memsim

#include "casa/trace/compiled_stream.hpp"

#include "casa/support/error.hpp"

namespace casa::trace {

CompiledStream::CompiledStream(const prog::Program& program,
                               const std::vector<Addr>& block_addr,
                               Bytes line_size)
    : line_size_(line_size) {
  CASA_CHECK(is_pow2(line_size) && line_size >= kWordBytes,
             "line size must be a power of two >= one word");
  CASA_CHECK(block_addr.size() == program.block_count(),
             "block_addr must cover every basic block");

  block_runs_.resize(program.block_count());
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const BasicBlockId bb(static_cast<std::uint32_t>(i));
    BlockRuns& br = block_runs_[i];
    br.first = static_cast<std::uint32_t>(runs_.size());
    const Bytes size = program.block(bb).size;
    br.words = static_cast<std::uint32_t>(size / kWordBytes);
    if (block_addr[i] == kNotCached) continue;
    br.cached = true;

    // Split [base, base + size) into maximal same-line word runs.
    const Addr base = block_addr[i];
    Addr addr = base;
    const Addr end = base + size;
    while (addr < end) {
      const Addr line_end = (addr / line_size + 1) * line_size;
      const Addr run_end = line_end < end ? line_end : end;
      runs_.push_back(LineRun{
          addr, addr / line_size,
          static_cast<std::uint32_t>((run_end - addr) / kWordBytes)});
      addr = run_end;
    }
    br.count = static_cast<std::uint32_t>(runs_.size()) - br.first;
  }
}

}  // namespace casa::trace

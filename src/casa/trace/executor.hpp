// Deterministic program executor (the repo's ARMulator substitute).
//
// Interprets the structured AST with a seeded RNG for branch outcomes and
// variable trip counts, producing (a) the dynamic basic-block walk — from
// which any memory layout can later derive the exact instruction fetch
// stream — and (b) the execution profile.
#pragma once

#include <cstdint>
#include <vector>

#include "casa/prog/program.hpp"
#include "casa/trace/profile.hpp"

namespace casa::trace {

/// The dynamic sequence of executed basic blocks.
struct BlockWalk {
  std::vector<BasicBlockId> seq;
};

struct ExecutionResult {
  BlockWalk walk;
  Profile profile;
  std::uint64_t total_blocks = 0;
  std::uint64_t total_fetches = 0;
};

struct ExecutorOptions {
  std::uint64_t seed = 1;
  /// Hard stop to guard against mis-specified huge workloads.
  std::uint64_t max_blocks = 400'000'000;
  /// When false, only the profile is produced (saves memory for
  /// profile-only passes).
  bool record_walk = true;
  /// Maximum call depth (recursion guard).
  std::uint32_t max_call_depth = 256;
};

class Executor {
 public:
  using Options = ExecutorOptions;

  /// Runs `program` from its entry function.
  static ExecutionResult run(const prog::Program& program, Options opt = {});
};

}  // namespace casa::trace

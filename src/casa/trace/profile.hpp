// Execution profile: per-block and per-edge dynamic counts.
//
// The profile plays the role of the paper's profiling run: it weights the
// conflict-graph vertices (instruction fetches f_i) and drives hot-path
// trace formation (edge counts).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "casa/prog/program.hpp"
#include "casa/support/ids.hpp"

namespace casa::trace {

class Profile {
 public:
  explicit Profile(std::size_t block_count)
      : block_count_(block_count, 0) {}

  void record(BasicBlockId bb) { ++block_count_[bb.index()]; }
  void record_edge(BasicBlockId from, BasicBlockId to) {
    ++edge_count_[key(from, to)];
  }

  /// Dynamic executions of `bb`.
  std::uint64_t count(BasicBlockId bb) const {
    return block_count_[bb.index()];
  }

  /// Dynamic traversals of CFG edge from -> to.
  std::uint64_t edge_count(BasicBlockId from, BasicBlockId to) const {
    auto it = edge_count_.find(key(from, to));
    return it == edge_count_.end() ? 0 : it->second;
  }

  /// Instruction fetches issued while executing `bb` over the whole run
  /// (executions x words in block). This is the paper's f_i restricted to
  /// one block.
  std::uint64_t fetches(const prog::Program& p, BasicBlockId bb) const {
    return count(bb) * (p.block(bb).size / kWordBytes);
  }

  /// Total instruction fetches of the run.
  std::uint64_t total_fetches(const prog::Program& p) const;

  std::size_t block_slots() const { return block_count_.size(); }

 private:
  static std::uint64_t key(BasicBlockId from, BasicBlockId to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }

  std::vector<std::uint64_t> block_count_;
  std::unordered_map<std::uint64_t, std::uint64_t> edge_count_;
};

}  // namespace casa::trace

// Compiled fetch stream: the block walk pre-lowered to line granularity.
//
// Sequential instruction fetch means the word-granular fetch stream of one
// basic block is fully determined by its layout address: ~line_size/4
// consecutive word fetches collapse into one memory-line touch with a fetch
// count. CompiledStream computes, once per basic block, the sequence of
// (line, word-count) runs the block emits; replaying the dynamic walk then
// costs one Cache::access_line() per run instead of one Cache::access() per
// word — a ~line_size/4 reduction in simulator call volume with bit-identical
// counters (see cachesim::Cache::access_line for the equivalence argument).
//
// The compiler is layout-driven, not walk-driven: compilation is O(static
// code size), independent of trace length, so compiling per simulation call
// is cheap. Blocks whose owning object is absent from the layout (e.g.
// scratchpad-resident objects under move semantics) carry no runs and are
// marked not-cached; consumers handle them on their scratchpad path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "casa/prog/program.hpp"
#include "casa/support/ids.hpp"
#include "casa/support/units.hpp"

namespace casa::trace {

/// One line-granular access run: `words` consecutive word fetches that all
/// land in memory line `line` (the first at byte address `addr`).
struct LineRun {
  Addr addr = 0;            ///< byte address of the run's first word
  std::uint64_t line = 0;   ///< addr / line_size
  std::uint32_t words = 0;  ///< consecutive word fetches collapsed
};

class CompiledStream {
 public:
  /// Address marking a block as absent from the cached image.
  static constexpr Addr kNotCached = ~Addr{0};

  /// Lowers every block of `program` against `block_addr` (byte address of
  /// each block's first instruction, or kNotCached) for a cache with
  /// `line_size`-byte lines.
  CompiledStream(const prog::Program& program,
                 const std::vector<Addr>& block_addr, Bytes line_size);

  /// Line runs of `bb`, in fetch order. Empty for not-cached or size-0
  /// blocks.
  std::span<const LineRun> runs(BasicBlockId bb) const {
    const BlockRuns& r = block_runs_[bb.index()];
    return {runs_.data() + r.first, r.count};
  }

  /// False when `bb`'s object was absent from the layout used to compile.
  bool cached(BasicBlockId bb) const {
    return block_runs_[bb.index()].cached;
  }

  /// Word fetches `bb` issues per execution (size / word).
  std::uint64_t words_of(BasicBlockId bb) const {
    return block_runs_[bb.index()].words;
  }

  Bytes line_size() const { return line_size_; }

  /// Total line runs across all compiled blocks (static, not dynamic).
  std::size_t total_runs() const { return runs_.size(); }

 private:
  struct BlockRuns {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::uint32_t words = 0;
    bool cached = false;
  };

  std::vector<LineRun> runs_;       ///< all blocks' runs, block-major
  std::vector<BlockRuns> block_runs_;  ///< indexed by BasicBlockId
  Bytes line_size_ = 0;
};

}  // namespace casa::trace

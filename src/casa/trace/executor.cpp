#include "casa/trace/executor.hpp"

#include "casa/support/error.hpp"
#include "casa/support/rng.hpp"

namespace casa::trace {

namespace {

class Interp final : public prog::StmtVisitor {
 public:
  Interp(const prog::Program& p, const Executor::Options& opt,
         ExecutionResult& out)
      : p_(p), opt_(opt), out_(out), rng_(opt.seed) {}

  void run() {
    const prog::Function& entry = p_.function(p_.entry());
    entry.body().accept(*this);
  }

 private:
  void emit(BasicBlockId bb) {
    CASA_CHECK(out_.total_blocks < opt_.max_blocks,
               "executor exceeded max_blocks — runaway workload?");
    out_.profile.record(bb);
    if (prev_.valid()) out_.profile.record_edge(prev_, bb);
    prev_ = bb;
    if (opt_.record_walk) out_.walk.seq.push_back(bb);
    ++out_.total_blocks;
    out_.total_fetches += p_.block(bb).size / kWordBytes;
  }

  void visit(const prog::BlockStmt& s) override { emit(s.bb()); }

  void visit(const prog::SeqStmt& s) override {
    for (const auto& item : s.items()) item->accept(*this);
  }

  void visit(const prog::LoopStmt& s) override {
    emit(s.header());
    const std::int64_t trips =
        s.trips_min() == s.trips_max()
            ? s.trips_min()
            : rng_.next_in(s.trips_min(), s.trips_max());
    for (std::int64_t t = 0; t < trips; ++t) {
      s.body().accept(*this);
      emit(s.latch());
    }
  }

  void visit(const prog::IfStmt& s) override {
    emit(s.cond());
    if (rng_.next_bool(s.p_then())) {
      s.then_arm().accept(*this);
    } else if (s.else_arm() != nullptr) {
      s.else_arm()->accept(*this);
    }
  }

  void visit(const prog::CallStmt& s) override {
    emit(s.site());
    CASA_CHECK(depth_ < opt_.max_call_depth, "call depth limit exceeded");
    ++depth_;
    p_.function(s.callee()).body().accept(*this);
    --depth_;
  }

  void visit(const prog::SwitchStmt& s) override {
    emit(s.selector());
    double total = 0.0;
    for (double w : s.weights()) total += w;
    double pick = rng_.next_unit() * total;
    std::size_t arm = 0;
    for (; arm + 1 < s.weights().size(); ++arm) {
      pick -= s.weights()[arm];
      if (pick < 0.0) break;
    }
    s.arms()[arm]->accept(*this);
  }

  const prog::Program& p_;
  const Executor::Options& opt_;
  ExecutionResult& out_;
  Rng rng_;
  BasicBlockId prev_;
  std::uint32_t depth_ = 0;
};

}  // namespace

ExecutionResult Executor::run(const prog::Program& program, Options opt) {
  ExecutionResult result{BlockWalk{}, Profile(program.block_count()), 0, 0};
  Interp interp(program, opt, result);
  interp.run();
  return result;
}

}  // namespace trace

#include "casa/trace/profile.hpp"

namespace casa::trace {

std::uint64_t Profile::total_fetches(const prog::Program& p) const {
  std::uint64_t total = 0;
  for (const auto& b : p.blocks()) {
    total += fetches(p, b.id);
  }
  return total;
}

}  // namespace casa::trace

#include "casa/check/runner.hpp"

#include <ostream>
#include <sstream>

#include "casa/obs/export.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/metrics.hpp"

namespace casa::check {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << check::to_string(severity) << '[' << rule << "] " << artifact;
  if (!location.empty()) os << ' ' << location;
  os << ": " << message;
  if (!hint.empty()) os << " (hint: " << hint << ')';
  return os.str();
}

void CheckRunner::report(Diagnostic d) {
  if (d.severity == Severity::kError) ++errors_;
  if (metrics_ != nullptr) {
    metrics_->add(obs::metric_names::kCheckDiagnostics);
    metrics_->add(d.severity == Severity::kError
                      ? obs::metric_names::kCheckErrors
                      : obs::metric_names::kCheckWarnings);
  }
  diags_.push_back(std::move(d));
}

void CheckRunner::error(std::string_view rule, std::string artifact,
                        std::string location, std::string message,
                        std::string hint) {
  report(Diagnostic{Severity::kError, std::string(rule), std::move(artifact),
                    std::move(location), std::move(message), std::move(hint)});
}

void CheckRunner::warn(std::string_view rule, std::string artifact,
                       std::string location, std::string message,
                       std::string hint) {
  report(Diagnostic{Severity::kWarning, std::string(rule), std::move(artifact),
                    std::move(location), std::move(message), std::move(hint)});
}

void CheckRunner::mark_evaluated(std::size_t count) {
  rules_evaluated_ += count;
  if (metrics_ != nullptr) {
    metrics_->add(obs::metric_names::kCheckRulesEvaluated, count);
  }
}

void CheckRunner::throw_if_errors() const {
  if (errors_ == 0) return;
  std::ostringstream os;
  os << "artifact check failed with " << errors_ << " error"
     << (errors_ == 1 ? "" : "s") << ":";
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) os << "\n  " << d.to_string();
  }
  throw CheckError(os.str());
}

std::string CheckRunner::summary() const {
  std::ostringstream os;
  os << "casa-check: ";
  if (diags_.empty()) {
    os << "OK";
  } else {
    os << errors_ << (errors_ == 1 ? " error, " : " errors, ")
       << warning_count() << (warning_count() == 1 ? " warning" : " warnings");
  }
  os << " (" << rules_evaluated_ << " rules evaluated)";
  return os.str();
}

void write_check_json(std::ostream& os, const CheckRunner& runner,
                      const std::string& tool) {
  os << "{\n"
     << "  \"schema\": \"casa-check v1\",\n"
     << "  \"tool\": \"" << obs::json_escape(tool) << "\",\n"
     << "  \"rules_evaluated\": " << runner.rules_evaluated() << ",\n"
     << "  \"errors\": " << runner.error_count() << ",\n"
     << "  \"warnings\": " << runner.warning_count() << ",\n"
     << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : runner.diagnostics()) {
    os << (first ? "" : ",") << "\n    {\"severity\": \""
       << to_string(d.severity) << "\", \"rule\": \""
       << obs::json_escape(d.rule) << "\", \"artifact\": \""
       << obs::json_escape(d.artifact) << "\", \"location\": \""
       << obs::json_escape(d.location) << "\", \"message\": \""
       << obs::json_escape(d.message) << "\", \"hint\": \""
       << obs::json_escape(d.hint) << "\"}";
    first = false;
  }
  if (!runner.diagnostics().empty()) os << "\n  ";
  os << "]\n}\n";
}

}  // namespace casa::check

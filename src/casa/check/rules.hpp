// Semantic invariant rules over the CASA pipeline's inter-stage artifacts.
//
// Each function analyzes one artifact kind and reports violations into a
// CheckRunner; none of them throws on a bad artifact (collection is the
// runner's job, escalation the caller's). The rules encode what the paper's
// formulation guarantees only implicitly:
//
//  * check_casa_model       — ILP well-formedness: every linearization
//    variable L(x_i,x_j) carries its constraints (13)-(15) (paper mode) or
//    the tight single-row form, the capacity row (17) is present and
//    consistent with the memory-object sizes, no orphan variables or
//    degenerate rows.
//  * check_conflict_graph   — edges only between objects that can actually
//    alias in the cache (share a set under the layout), m_ij <= f_i,
//    self-edges only on objects long enough to evict their own lines,
//    hit/cold/conflict-miss bookkeeping sums back to the fetch count, and
//    vertex weights agree with the trace profile.
//  * check_trace_program /  — placement legality: cache-line-aligned
//    check_layout             padding, no address overlap, span containment.
//  * check_allocation       — scratchpad capacity (17) respected by the
//    final mask; used-byte accounting consistent.
//  * check_energy_table /   — E_miss > E_hit > E_SP_hit ordering, finite
//    check_energy_scaling     non-negative entries, monotone SRAM-array
//                             scaling of the analytical models.
//
// Rule ids, severities and paper anchors are catalogued in docs/checks.md.
#pragma once

#include "casa/cachesim/cache.hpp"
#include "casa/check/runner.hpp"
#include "casa/conflict/conflict_graph.hpp"
#include "casa/core/allocator.hpp"
#include "casa/core/formulation.hpp"
#include "casa/core/problem.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/energy/technology.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::check {

/// Trace-formation output: every memory object NOP-padded to a whole number
/// of `line_size`-byte cache lines, raw sizes positive and never larger
/// than the pad.
void check_trace_program(const traceopt::TraceProgram& tp, Bytes line_size,
                         CheckRunner& runner);

/// Layout legality: placed objects line-aligned, mutually non-overlapping,
/// and contained in the layout's [base, base + span) window.
void check_layout(const traceopt::TraceProgram& tp,
                  const traceopt::Layout& layout, Bytes line_size,
                  CheckRunner& runner);

/// Conflict-graph invariants under the layout it was built from.
void check_conflict_graph(const traceopt::TraceProgram& tp,
                          const traceopt::Layout& layout,
                          const conflict::ConflictGraph& graph,
                          const cachesim::CacheConfig& cache,
                          CheckRunner& runner);

/// ILP well-formedness of a built CasaModel against its SavingsProblem.
void check_casa_model(const core::CasaModel& cm,
                      const core::SavingsProblem& sp, core::Linearization lin,
                      CheckRunner& runner);

/// Final allocation legality against the problem it solved: mask size,
/// capacity constraint (17) over unpadded sizes, used-byte accounting.
void check_allocation(const core::CasaProblem& problem,
                      const core::AllocationResult& result,
                      CheckRunner& runner);

/// As above for any plain scratchpad selection mask (Steinke baseline).
void check_spm_selection(const std::vector<Bytes>& sizes, Bytes capacity,
                         const std::vector<bool>& on_spm, Bytes used_bytes,
                         CheckRunner& runner);

/// Energy-table sanity: finite non-negative entries, E_miss > E_hit, and
/// (when a scratchpad / loop cache is configured) E_hit > E_SP_hit and
/// positive loop-cache energies.
void check_energy_table(const energy::EnergyTable& table, bool has_spm,
                        bool has_lc, CheckRunner& runner);

/// Analytical-model scaling: scratchpad and cache per-access energies must
/// grow monotonically with capacity (the SRAM-array decomposition adds
/// rows, never removes cost). Configuration-independent; run once per
/// check invocation, not per flow.
void check_energy_scaling(const energy::TechnologyParams& tech,
                          CheckRunner& runner);

/// One-pass sweep cross-validation: counters the stack engine derived for a
/// sampled configuration must be field-for-field identical to a direct
/// per-configuration simulation of the same job. Any divergence means the
/// stack-distance accounting (or the counter reconstruction on top of it)
/// broke, so every configuration in that sweep group is suspect.
void check_stack_sweep(const memsim::SimCounters& stack,
                       const memsim::SimCounters& direct,
                       const cachesim::CacheConfig& config,
                       CheckRunner& runner);

/// What a fault-contained batch run produced, reduced to the counts the
/// run.partial_failure rule needs (plain values so the rule stays free of
/// report-layer types; report::batch_summary_of builds one from JobResults).
struct BatchSummary {
  std::size_t jobs = 0;     ///< total jobs requested
  std::size_t failed = 0;   ///< jobs whose final attempt still failed
  std::size_t retried = 0;  ///< jobs that succeeded only after retries
  /// One "job N: kind: message" line per failed job, in job order.
  std::vector<std::string> failures;
};

/// Degraded-batch reporting: a batch where some jobs failed is a warning
/// (the healthy outcomes are still usable data — the DSE workflow treats
/// per-point failure as data, not a crash), a batch where *every* job
/// failed is an error.
void check_batch(const BatchSummary& batch, CheckRunner& runner);

/// One sampled cache-hit verification from the evaluation service, reduced
/// to plain values (same layering rationale as BatchSummary): the service
/// re-evaluates a sampled hit from scratch and reports whether the cached
/// Outcome still compares equal — Outcome::operator== is bit-exact on
/// every solve-determined field, so any inequality means the cache served
/// a result the pipeline would no longer produce.
struct CachedResultSample {
  std::string key;             ///< canonical cache key of the sampled entry
  bool outcomes_equal = true;  ///< cached Outcome == freshly recomputed one
};

/// A stale or corrupted cached result is always an error: serving it would
/// silently misreport the paper's numbers, so the service fails the
/// request instead.
void check_cached_result(const CachedResultSample& sample,
                         CheckRunner& runner);

}  // namespace casa::check

#include "casa/check/rules.hpp"

#include "casa/check/rule_ids.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "casa/energy/cache_energy.hpp"
#include "casa/energy/spm_energy.hpp"

namespace casa::check {

namespace {

constexpr const char* kTraceArtifact = "trace-program";
constexpr const char* kLayoutArtifact = "layout";
constexpr const char* kConflictArtifact = "conflict-graph";
constexpr const char* kModelArtifact = "ilp-model";
constexpr const char* kAllocArtifact = "allocation";
constexpr const char* kEnergyArtifact = "energy-table";
constexpr const char* kEnergyModelArtifact = "energy-model";
constexpr const char* kStackSweepArtifact = "stack-sweep";
constexpr const char* kBatchArtifact = "batch-run";
constexpr const char* kSvcCacheArtifact = "svc-cache";

std::string object_loc(std::size_t i) {
  std::string s = "x";
  s += std::to_string(i);
  return s;
}

std::string edge_loc(std::size_t idx, const conflict::Edge& e) {
  std::string s = "edge[";
  s += std::to_string(idx);
  s += "] x";
  s += std::to_string(e.from.index());
  s += "->x";
  s += std::to_string(e.to.index());
  return s;
}

/// The consecutive cache-line range an object occupies under a layout.
struct LineRange {
  std::uint64_t first = 0;
  std::uint64_t count = 0;  ///< number of consecutive lines
};

LineRange line_range(Addr base, Bytes padded_size, Bytes line_size) {
  LineRange r;
  r.first = base / line_size;
  const std::uint64_t last = (base + std::max<Bytes>(padded_size, 1) - 1) /
                             line_size;
  r.count = last - r.first + 1;
  return r;
}

/// True when ranges a and b each map at least one line into a common cache
/// set. Consecutive lines fill sets cyclically, so each range covers the
/// circular interval [first mod sets, first + count) mod sets.
bool share_cache_set(const LineRange& a, const LineRange& b, unsigned sets) {
  if (a.count >= sets || b.count >= sets) return true;
  const std::uint64_t a0 = a.first % sets;
  const std::uint64_t b0 = b.first % sets;
  // Distance from the start of one interval to the start of the other,
  // walking forward around the ring; they intersect iff either start lies
  // inside the other interval.
  const std::uint64_t ab = (b0 + sets - a0) % sets;
  const std::uint64_t ba = (a0 + sets - b0) % sets;
  return ab < a.count || ba < b.count;
}

/// True when the object can evict one of its own lines: two distinct lines
/// of the range must map to the same set, i.e. the range wraps the ring.
bool self_aliases(const LineRange& r, unsigned sets) {
  return r.count > sets;
}

bool near(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= 1e-6 * scale;
}

/// One linear constraint reduced to a coefficient map for shape matching.
struct RowShape {
  std::map<std::uint32_t, double> coef;  ///< var index -> coefficient
  ilp::Rel rel = ilp::Rel::kLessEq;
  double rhs = 0.0;
};

RowShape shape_of(const ilp::Constraint& c) {
  RowShape s;
  for (const ilp::Term& t : c.expr.terms()) s.coef[t.var.value()] += t.coef;
  s.rel = c.rel;
  s.rhs = c.rhs - c.expr.constant();
  return s;
}

bool matches(const RowShape& s, const std::vector<std::pair<VarId, double>>& t,
             ilp::Rel rel, double rhs) {
  if (s.rel != rel || !near(s.rhs, rhs) || s.coef.size() != t.size()) {
    return false;
  }
  for (const auto& [var, coef] : t) {
    auto it = s.coef.find(var.value());
    if (it == s.coef.end() || !near(it->second, coef)) return false;
  }
  return true;
}

}  // namespace

void check_trace_program(const traceopt::TraceProgram& tp, Bytes line_size,
                         CheckRunner& runner) {
  for (const traceopt::MemoryObject& mo : tp.objects()) {
    const std::string loc = object_loc(mo.id.index());
    if (mo.raw_size == 0) {
      runner.error(rule_ids::kTraceSizeZero, kTraceArtifact, loc,
                   "memory object has no instructions",
                   "trace formation must drop empty traces");
      continue;
    }
    if (mo.padded_size % line_size != 0) {
      runner.error(rule_ids::kTracePadMisaligned, kTraceArtifact, loc,
                   "padded size " + std::to_string(mo.padded_size) +
                       " is not a multiple of the " +
                       std::to_string(line_size) + "-byte cache line",
                   "pad traces to line boundaries so every miss has one "
                   "owning object (paper 3.2)");
    }
    if (mo.padded_size != align_up(mo.raw_size, line_size)) {
      runner.error(rule_ids::kTracePadInconsistent, kTraceArtifact, loc,
                   "padded size " + std::to_string(mo.padded_size) +
                       " != align_up(raw " + std::to_string(mo.raw_size) +
                       ", line " + std::to_string(line_size) + ")",
                   "recompute the NOP pad from the raw size");
    }
  }
  runner.mark_evaluated(3);
}

void check_layout(const traceopt::TraceProgram& tp,
                  const traceopt::Layout& layout, Bytes line_size,
                  CheckRunner& runner) {
  struct Placed {
    std::size_t index;
    Addr base;
    Bytes size;
  };
  std::vector<Placed> placed;
  placed.reserve(tp.object_count());
  for (const traceopt::MemoryObject& mo : tp.objects()) {
    if (!layout.placed(mo.id)) continue;
    const Addr base = layout.object_base(mo.id);
    placed.push_back(Placed{mo.id.index(), base, mo.padded_size});
    if (base % line_size != 0) {
      runner.error(rule_ids::kLayoutAlignment, kLayoutArtifact,
                   object_loc(mo.id.index()),
                   "object base " + std::to_string(base) +
                       " is not aligned to the " + std::to_string(line_size) +
                       "-byte cache line",
                   "objects must start on line boundaries for the "
                   "one-miss-one-object attribution to hold");
    }
    if (base < layout.base() ||
        base + mo.padded_size > layout.base() + layout.span()) {
      runner.error(rule_ids::kLayoutSpanInconsistent, kLayoutArtifact,
                   object_loc(mo.id.index()),
                   "object [" + std::to_string(base) + ", " +
                       std::to_string(base + mo.padded_size) +
                       ") escapes the layout window [" +
                       std::to_string(layout.base()) + ", " +
                       std::to_string(layout.base() + layout.span()) + ")",
                   "recompute the layout span after placing every object");
    }
  }
  std::sort(placed.begin(), placed.end(),
            [](const Placed& a, const Placed& b) { return a.base < b.base; });
  for (std::size_t i = 1; i < placed.size(); ++i) {
    const Placed& prev = placed[i - 1];
    const Placed& cur = placed[i];
    if (prev.base + prev.size > cur.base) {
      runner.error(rule_ids::kLayoutOverlap, kLayoutArtifact,
                   object_loc(prev.index) + "/" + object_loc(cur.index),
                   "objects overlap: [" + std::to_string(prev.base) + ", " +
                       std::to_string(prev.base + prev.size) + ") and [" +
                       std::to_string(cur.base) + ", " +
                       std::to_string(cur.base + cur.size) + ")",
                   "each placed object needs a disjoint address interval");
    }
  }
  runner.mark_evaluated(3);
}

void check_conflict_graph(const traceopt::TraceProgram& tp,
                          const traceopt::Layout& layout,
                          const conflict::ConflictGraph& graph,
                          const cachesim::CacheConfig& cache,
                          CheckRunner& runner) {
  const unsigned sets = cache.sets();
  if (sets == 0) {
    runner.error(rule_ids::kConflictCacheDegenerate, kConflictArtifact, "",
                 "cache configuration yields zero sets (size " +
                     std::to_string(cache.size) + " B, line " +
                     std::to_string(cache.line_size) + " B, assoc " +
                     std::to_string(cache.associativity) + ")",
                 "size must be at least line_size * associativity");
    runner.mark_evaluated(6);
    return;
  }
  const std::size_t n = graph.node_count();
  if (n != tp.object_count()) {
    runner.error(rule_ids::kConflictNodesCount, kConflictArtifact, "",
                 "graph has " + std::to_string(n) + " nodes but the trace "
                     "program has " + std::to_string(tp.object_count()) +
                     " memory objects",
                 "build the graph from the same trace program");
    runner.mark_evaluated(6);
    return;
  }

  // Per-node: vertex weight vs. profile, and bookkeeping consistency
  // (every replayed fetch is a hit, a cold miss, or exactly one m_ij).
  for (std::size_t i = 0; i < n; ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    const std::uint64_t f = graph.fetches(mo);
    if (f != tp.object(mo).fetches) {
      runner.error(rule_ids::kConflictFetchesProfileMismatch, kConflictArtifact,
                   object_loc(i),
                   "vertex weight f=" + std::to_string(f) +
                       " disagrees with the profile's " +
                       std::to_string(tp.object(mo).fetches) + " fetches",
                   "graph vertex weights must come from the same profiling "
                   "run as the trace program (paper 3.3)");
    }
    const std::uint64_t accounted =
        graph.hits(mo) + graph.total_misses(mo);
    if (accounted != f) {
      runner.error(rule_ids::kConflictCountsInconsistent, kConflictArtifact,
                   object_loc(i),
                   "hits + cold + conflict misses = " +
                       std::to_string(accounted) + " but f=" +
                       std::to_string(f),
                   "every fetch must be a hit, a cold miss, or attributed "
                   "to exactly one evictor (paper eq. 3)");
    }
  }

  // Per-edge: aliasing feasibility under the layout and m_ij <= f_i.
  std::vector<LineRange> ranges(n);
  std::vector<bool> have_range(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    if (!layout.placed(mo)) continue;
    ranges[i] = line_range(layout.object_base(mo), tp.object(mo).padded_size,
                           cache.line_size);
    have_range[i] = true;
  }
  const auto& edges = graph.edges();
  for (std::size_t idx = 0; idx < edges.size(); ++idx) {
    const conflict::Edge& e = edges[idx];
    const std::size_t a = e.from.index();
    const std::size_t b = e.to.index();
    if (e.misses > graph.fetches(e.from)) {
      runner.error(rule_ids::kConflictEdgeExceedsFetches, kConflictArtifact,
                   edge_loc(idx, e),
                   "m_ij=" + std::to_string(e.misses) + " exceeds f_i=" +
                       std::to_string(graph.fetches(e.from)),
                   "an object cannot miss more often than it fetches "
                   "(m_ij <= f_i)");
    }
    if (!have_range[a] || !have_range[b]) continue;
    if (e.from == e.to) {
      if (!self_aliases(ranges[a], sets)) {
        runner.error(rule_ids::kConflictEdgeSelf, kConflictArtifact, edge_loc(idx, e),
                     "self-conflict on an object spanning " +
                         std::to_string(ranges[a].count) + " lines over " +
                         std::to_string(sets) +
                         " sets - it cannot evict its own lines",
                     "self-edges are only legal when an object maps two "
                     "lines into one cache set");
      }
      continue;
    }
    if (!share_cache_set(ranges[a], ranges[b], sets)) {
      runner.error(rule_ids::kConflictEdgeCrossSet, kConflictArtifact,
                   edge_loc(idx, e),
                   "objects map to disjoint cache sets under this layout "
                   "and can never evict each other",
                   "conflict edges must connect objects sharing a cache "
                   "set (paper 3.3)");
    }
  }
  runner.mark_evaluated(6);
}

void check_casa_model(const core::CasaModel& cm,
                      const core::SavingsProblem& sp, core::Linearization lin,
                      CheckRunner& runner) {
  const ilp::Model& m = cm.model;
  if (cm.l_vars.size() != sp.item_count() ||
      cm.L_vars.size() != sp.edges.size()) {
    runner.error(rule_ids::kIlpVarCountMismatch, kModelArtifact, "",
                 "model has " + std::to_string(cm.l_vars.size()) + " l / " +
                     std::to_string(cm.L_vars.size()) +
                     " L variables for a problem with " +
                     std::to_string(sp.item_count()) + " items / " +
                     std::to_string(sp.edges.size()) + " edges",
                 "rebuild the model from the presolved problem");
    runner.mark_evaluated(7);
    return;
  }

  // Structural hygiene: every term references a real variable, no row is
  // empty, every variable is used somewhere.
  std::vector<bool> used(m.var_count(), false);
  for (const ilp::Term& t : m.objective().terms()) {
    if (t.var.index() < used.size()) used[t.var.index()] = true;
  }
  for (std::size_t c = 0; c < m.constraint_count(); ++c) {
    const ilp::Constraint& row =
        m.constraint(ConstraintId(static_cast<std::uint32_t>(c)));
    if (row.expr.terms().empty()) {
      runner.error(rule_ids::kIlpRowDegenerate, kModelArtifact, row.name,
                   "constraint has no variable terms",
                   "drop constant-only rows; they either always hold or "
                   "make the model trivially infeasible");
    }
    for (const ilp::Term& t : row.expr.terms()) {
      if (t.var.index() >= m.var_count()) {
        runner.error(rule_ids::kIlpTermBadVar, kModelArtifact, row.name,
                     "term references variable #" +
                         std::to_string(t.var.index()) +
                         " but the model has only " +
                         std::to_string(m.var_count()),
                     "add variables before referencing them in rows");
      } else {
        used[t.var.index()] = true;
      }
    }
  }
  for (std::size_t v = 0; v < used.size(); ++v) {
    if (!used[v]) {
      runner.error(rule_ids::kIlpVarOrphan, kModelArtifact,
                   m.var(VarId(static_cast<std::uint32_t>(v))).name,
                   "variable appears in no constraint and not in the "
                   "objective",
                   "orphan variables make the solution mask ambiguous");
    }
  }

  // Linearization rows (paper eq. 13-15, or the tight single-row form):
  // collect every constraint that touches an L variable and match shapes.
  std::vector<std::vector<RowShape>> rows_of(sp.edges.size());
  std::vector<std::int64_t> l_index_of(m.var_count(), -1);
  for (std::size_t p = 0; p < cm.L_vars.size(); ++p) {
    l_index_of[cm.L_vars[p].index()] = static_cast<std::int64_t>(p);
  }
  for (std::size_t c = 0; c < m.constraint_count(); ++c) {
    const ilp::Constraint& row =
        m.constraint(ConstraintId(static_cast<std::uint32_t>(c)));
    for (const ilp::Term& t : row.expr.terms()) {
      if (t.var.index() < l_index_of.size() &&
          l_index_of[t.var.index()] >= 0) {
        rows_of[static_cast<std::size_t>(l_index_of[t.var.index()])]
            .push_back(shape_of(row));
        break;
      }
    }
  }
  for (std::size_t p = 0; p < sp.edges.size(); ++p) {
    const core::SavingsProblem::Edge& e = sp.edges[p];
    const VarId L = cm.L_vars[p];
    const VarId la = cm.l_vars[e.a];
    const VarId lb = cm.l_vars[e.b];
    const std::string loc = "L(x" + std::to_string(e.a) + ",x" +
                            std::to_string(e.b) + ")";
    const auto& rows = rows_of[p];
    const auto has = [&rows](const std::vector<std::pair<VarId, double>>& t,
                             ilp::Rel rel, double rhs) {
      return std::any_of(rows.begin(), rows.end(), [&](const RowShape& s) {
        return matches(s, t, rel, rhs);
      });
    };
    std::vector<std::string> missing;
    std::size_t expected = 0;
    if (lin == core::Linearization::kPaper) {
      if (m.var(L).type != ilp::VarType::kBinary) {
        runner.error(rule_ids::kIlpLinMalformed, kModelArtifact, loc,
                     "L must be binary under the paper linearization - the "
                     "relaxed constraint set admits L=1/2 at l_i=l_j=1",
                     "declare L with add_binary (see DESIGN.md)");
      }
      // (13) l_a - L >= 0,  (14) l_b - L >= 0,  (15) l_a + l_b - 2L <= 1.
      if (!has({{la, 1.0}, {L, -1.0}}, ilp::Rel::kGreaterEq, 0.0)) {
        missing.push_back("(13) l_" + std::to_string(e.a) + " - L >= 0");
      }
      if (!has({{lb, 1.0}, {L, -1.0}}, ilp::Rel::kGreaterEq, 0.0)) {
        missing.push_back("(14) l_" + std::to_string(e.b) + " - L >= 0");
      }
      if (!has({{la, 1.0}, {lb, 1.0}, {L, -2.0}}, ilp::Rel::kLessEq, 1.0)) {
        missing.push_back("(15) l_a + l_b - 2L <= 1");
      }
      expected = 3;
    } else {
      // Tight form: L >= l_a + l_b - 1 encoded as l_a + l_b - L <= 1.
      if (!has({{la, 1.0}, {lb, 1.0}, {L, -1.0}}, ilp::Rel::kLessEq, 1.0)) {
        missing.push_back("l_a + l_b - L <= 1");
      }
      expected = 1;
    }
    for (const std::string& want : missing) {
      runner.error(rule_ids::kIlpLinMissing, kModelArtifact, loc,
                   "linearization constraint " + want + " is absent",
                   "every product variable L(x_i,x_j) needs its full "
                   "constraint set (paper eq. 13-15)");
    }
    if (missing.empty() && rows.size() > expected) {
      runner.error(rule_ids::kIlpLinMalformed, kModelArtifact, loc,
                   std::to_string(rows.size() - expected) +
                       " extra constraint(s) touch this linearization "
                       "variable",
                   "unexpected rows on L variables usually mean a "
                   "mis-indexed edge");
    }
  }

  // Capacity row (paper eq. 17), in the item form
  //   sum w_k l_k >= W - C.
  double total_w = 0.0;
  std::vector<std::pair<VarId, double>> cap_terms;
  cap_terms.reserve(sp.item_count());
  for (std::size_t k = 0; k < sp.item_count(); ++k) {
    cap_terms.emplace_back(cm.l_vars[k], static_cast<double>(sp.weight[k]));
    total_w += static_cast<double>(sp.weight[k]);
  }
  const double cap_rhs = total_w - static_cast<double>(sp.capacity);
  bool cap_found = false;
  bool cap_exact = false;
  for (std::size_t c = 0; c < m.constraint_count(); ++c) {
    const ilp::Constraint& row =
        m.constraint(ConstraintId(static_cast<std::uint32_t>(c)));
    if (row.name != "capacity") continue;
    cap_found = true;
    if (matches(shape_of(row), cap_terms, ilp::Rel::kGreaterEq, cap_rhs)) {
      cap_exact = true;
    }
  }
  if (!cap_found) {
    runner.error(rule_ids::kIlpCapacityMissing, kModelArtifact, "capacity",
                 "the scratchpad capacity constraint (paper eq. 17) is "
                 "absent",
                 "without it the solver places every object on the "
                 "scratchpad");
  } else if (!cap_exact) {
    runner.error(rule_ids::kIlpCapacityMismatch, kModelArtifact, "capacity",
                 "capacity row coefficients/rhs disagree with the memory-"
                 "object sizes (expected sum w_k l_k >= " +
                     std::to_string(cap_rhs) + ")",
                 "rebuild the row from the presolved item weights and the "
                 "scratchpad size");
  }
  runner.mark_evaluated(7);
}

void check_spm_selection(const std::vector<Bytes>& sizes, Bytes capacity,
                         const std::vector<bool>& on_spm, Bytes used_bytes,
                         CheckRunner& runner) {
  if (on_spm.size() != sizes.size()) {
    runner.error(rule_ids::kAllocMaskSize, kAllocArtifact, "",
                 "selection mask covers " + std::to_string(on_spm.size()) +
                     " objects but the problem has " +
                     std::to_string(sizes.size()),
                 "the mask must have exactly one bit per memory object");
    runner.mark_evaluated(3);
    return;
  }
  Bytes total = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (on_spm[i]) total += sizes[i];
  }
  if (total > capacity) {
    runner.error(rule_ids::kAllocCapacityExceeded, kAllocArtifact, "",
                 "selected objects occupy " + std::to_string(total) +
                     " B but the scratchpad holds " +
                     std::to_string(capacity) + " B",
                 "the capacity constraint (paper eq. 17) must hold for the "
                 "final mask, not just inside the solver");
  }
  if (total != used_bytes) {
    runner.error(rule_ids::kAllocUsedBytesMismatch, kAllocArtifact, "",
                 "reported used_bytes=" + std::to_string(used_bytes) +
                     " but the mask sums to " + std::to_string(total) + " B",
                 "recompute used_bytes from the mask and the unpadded "
                 "sizes");
  }
  runner.mark_evaluated(3);
}

void check_allocation(const core::CasaProblem& problem,
                      const core::AllocationResult& result,
                      CheckRunner& runner) {
  check_spm_selection(problem.sizes, problem.capacity, result.on_spm,
                      result.used_bytes, runner);
  // Status soundness: a truncated search (max_nodes, LP iteration limit)
  // must never flow downstream as an allocation — an empty incumbent would
  // read as "nothing fits" and a partial one as the optimum. Greedy is a
  // deliberate heuristic (exact == false, status kOptimal = it completed);
  // only a non-completed exact search trips this rule.
  if (result.solver_status != ilp::SolveStatus::kOptimal) {
    runner.error(rule_ids::kAllocSolverTruncated, kAllocArtifact,
                 core::to_string(result.engine_used),
                 std::string("allocation comes from a truncated solve "
                             "(solver_status == ") +
                     ilp::to_string(result.solver_status) + ")",
                 "raise max_nodes (or the LP iteration budget) and re-solve; "
                 "never report a truncated search as an allocation");
  }
  runner.mark_evaluated(1);
}

void check_energy_table(const energy::EnergyTable& table, bool has_spm,
                        bool has_lc, CheckRunner& runner) {
  const std::pair<const char*, Energy> entries[] = {
      {"cache_hit", table.cache_hit},     {"cache_miss", table.cache_miss},
      {"spm_access", table.spm_access},   {"lc_access", table.lc_access},
      {"lc_controller", table.lc_controller},
      {"mainmem_word", table.mainmem_word}};
  for (const auto& [name, value] : entries) {
    if (!std::isfinite(value) || value < 0.0) {
      runner.error(rule_ids::kEnergyValueInvalid, kEnergyArtifact, name,
                   "entry is " + std::to_string(value) +
                       " nJ - energies must be finite and non-negative",
                   "rebuild the table from the technology parameters");
    }
  }
  if (!(table.cache_miss > table.cache_hit)) {
    runner.error(rule_ids::kEnergyOrderMissHit, kEnergyArtifact,
                 "cache_miss vs cache_hit",
                 "E_Cache_miss=" + std::to_string(table.cache_miss) +
                     " nJ is not greater than E_Cache_hit=" +
                     std::to_string(table.cache_hit) + " nJ",
                 "a miss pays the probe plus the off-chip transfer; the "
                 "allocation objective (paper eq. 12) assumes "
                 "E_miss > E_hit");
  }
  if (has_spm && !(table.cache_hit > table.spm_access)) {
    runner.error(rule_ids::kEnergyOrderHitSpm, kEnergyArtifact,
                 "cache_hit vs spm_access",
                 "E_SP_hit=" + std::to_string(table.spm_access) +
                     " nJ is not below E_Cache_hit=" +
                     std::to_string(table.cache_hit) + " nJ",
                 "a tagless SRAM access must undercut the cache hit or the "
                 "scratchpad can never pay off (paper table 1)");
  }
  if (has_lc && (table.lc_access <= 0.0 || table.lc_controller <= 0.0)) {
    runner.error(rule_ids::kEnergyValueInvalid, kEnergyArtifact, "loop-cache",
                 "loop-cache energies must be positive when a loop cache "
                 "is configured",
                 "build the table with the loop-cache size and region "
                 "count");
  }
  runner.mark_evaluated(4);
}

void check_energy_scaling(const energy::TechnologyParams& tech,
                          CheckRunner& runner) {
  // Scratchpad: per-access energy must grow with capacity (more rows mean
  // longer bitlines and a deeper decoder).
  Energy prev = 0.0;
  for (Bytes size = 64; size <= 64_KiB; size *= 2) {
    const Energy e = energy::SpmEnergyModel(size, tech).access_energy();
    if (e <= 0.0 || !std::isfinite(e) || e < prev) {
      std::ostringstream msg;
      msg << "SPM access energy " << e << " nJ at " << size
          << " B breaks monotone scaling (previous size gave " << prev
          << " nJ)";
      runner.error(rule_ids::kEnergySramNonMonotone, kEnergyModelArtifact,
                   "spm[" + std::to_string(size) + "B]", msg.str(),
                   "the SRAM-array stage decomposition only adds cost with "
                   "capacity; a decrease means a broken model term");
    }
    prev = e;
  }
  // Cache: hit energy must likewise grow with capacity at fixed geometry.
  prev = 0.0;
  for (Bytes size = 128; size <= 64_KiB; size *= 2) {
    cachesim::CacheConfig cfg;
    cfg.size = size;
    cfg.line_size = 16;
    cfg.associativity = 1;
    const Energy e = energy::CacheEnergyModel(cfg, tech).hit_energy();
    if (e <= 0.0 || !std::isfinite(e) || e < prev) {
      std::ostringstream msg;
      msg << "cache hit energy " << e << " nJ at " << size
          << " B breaks monotone scaling (previous size gave " << prev
          << " nJ)";
      runner.error(rule_ids::kEnergySramNonMonotone, kEnergyModelArtifact,
                   "cache[" + std::to_string(size) + "B]", msg.str(),
                   "the SRAM-array stage decomposition only adds cost with "
                   "capacity; a decrease means a broken model term");
    }
    prev = e;
  }
  runner.mark_evaluated(1);
}

void check_stack_sweep(const memsim::SimCounters& stack,
                       const memsim::SimCounters& direct,
                       const cachesim::CacheConfig& config,
                       CheckRunner& runner) {
  const struct {
    const char* name;
    std::uint64_t got;
    std::uint64_t want;
  } fields[] = {
      {"total_fetches", stack.total_fetches, direct.total_fetches},
      {"spm_accesses", stack.spm_accesses, direct.spm_accesses},
      {"lc_accesses", stack.lc_accesses, direct.lc_accesses},
      {"cache_accesses", stack.cache_accesses, direct.cache_accesses},
      {"cache_hits", stack.cache_hits, direct.cache_hits},
      {"cache_misses", stack.cache_misses, direct.cache_misses},
      {"cache_evictions", stack.cache_evictions, direct.cache_evictions},
      {"mainmem_words", stack.mainmem_words, direct.mainmem_words},
      {"cycles", stack.cycles, direct.cycles},
  };
  std::string loc = "cache[" + std::to_string(config.size) + "B/" +
                    std::to_string(config.associativity) + "way/" +
                    std::to_string(config.line_size) + "B]";
  for (const auto& f : fields) {
    if (f.got != f.want) {
      std::ostringstream msg;
      msg << "stack-derived " << f.name << " = " << f.got
          << " but direct simulation counted " << f.want;
      runner.error(rule_ids::kSweepStackMismatch, kStackSweepArtifact, loc, msg.str(),
                   "the one-pass engine must be bit-identical to per-config "
                   "replay; a drift here invalidates every configuration "
                   "sharing this group's stack pass");
    }
  }
  runner.mark_evaluated(1);
}

void check_batch(const BatchSummary& batch, CheckRunner& runner) {
  if (batch.failed != 0) {
    std::ostringstream msg;
    msg << batch.failed << " of " << batch.jobs << " jobs failed";
    if (batch.retried != 0) {
      msg << " (" << batch.retried << " more recovered after retries)";
    }
    std::ostringstream hint;
    // Cap the per-failure detail: a poisoned 64-point sweep should read as
    // one diagnostic, not 64.
    constexpr std::size_t kMaxListed = 4;
    for (std::size_t i = 0; i < batch.failures.size() && i < kMaxListed; ++i) {
      if (i != 0) hint << "; ";
      hint << batch.failures[i];
    }
    if (batch.failures.size() > kMaxListed) {
      // The truncation note carries the total so a capped hint still reads
      // as "4 shown of 64 failed", never as "4 failed".
      hint << "; ... " << (batch.failures.size() - kMaxListed) << " more of "
           << batch.failures.size() << " total failures";
    }
    if (batch.failed >= batch.jobs) {
      runner.error(rule_ids::kRunPartialFailure, kBatchArtifact, "jobs",
                   "every job in the batch failed: " + msg.str(), hint.str());
    } else {
      runner.warn(rule_ids::kRunPartialFailure, kBatchArtifact, "jobs",
                  "batch degraded: " + msg.str(), hint.str());
    }
  }
  runner.mark_evaluated(1);
}

void check_cached_result(const CachedResultSample& sample,
                         CheckRunner& runner) {
  if (!sample.outcomes_equal) {
    runner.error(rule_ids::kSvcCacheMismatch, kSvcCacheArtifact, sample.key,
                 "cached outcome differs from a fresh recomputation",
                 "every solve-determined field is compared bit-exactly; a "
                 "mismatch means the cache entry is stale or corrupted — "
                 "flush the cache (and the persist dir, if any)");
  }
  runner.mark_evaluated(1);
}

}  // namespace casa::check

// Central registry of every casa::check rule id.
//
// Rule ids are stable API: docs/checks.md catalogues each with its
// paper-equation anchor, CI greps assert on them, and tests corrupt one
// artifact per id. Rule code refers to these constants, never to ad-hoc
// literals — a typo would mint a brand-new rule id that no catalogue, test
// or downstream grep knows about. casa_lint enforces this both ways
// (`names.unregistered` for stray literals, `names.undocumented` for
// registry entries missing from docs/checks.md).
#pragma once

#include <cstddef>
#include <iterator>
#include <string_view>

namespace casa::check::rule_ids {

// ---- trace program (check_trace_program) ----
inline constexpr std::string_view kTraceSizeZero = "trace.size.zero";
inline constexpr std::string_view kTracePadMisaligned = "trace.pad.misaligned";
inline constexpr std::string_view kTracePadInconsistent =
    "trace.pad.inconsistent";

// ---- layout (check_layout) ----
inline constexpr std::string_view kLayoutAlignment = "layout.alignment";
inline constexpr std::string_view kLayoutSpanInconsistent =
    "layout.span.inconsistent";
inline constexpr std::string_view kLayoutOverlap = "layout.overlap";

// ---- conflict graph (check_conflict_graph) ----
inline constexpr std::string_view kConflictCacheDegenerate =
    "conflict.cache.degenerate";
inline constexpr std::string_view kConflictNodesCount = "conflict.nodes.count";
inline constexpr std::string_view kConflictFetchesProfileMismatch =
    "conflict.fetches.profile-mismatch";
inline constexpr std::string_view kConflictCountsInconsistent =
    "conflict.counts.inconsistent";
inline constexpr std::string_view kConflictEdgeExceedsFetches =
    "conflict.edge.exceeds-fetches";
inline constexpr std::string_view kConflictEdgeSelf = "conflict.edge.self";
inline constexpr std::string_view kConflictEdgeCrossSet =
    "conflict.edge.cross-set";

// ---- ILP model (check_casa_model) ----
inline constexpr std::string_view kIlpVarCountMismatch =
    "ilp.var.count-mismatch";
inline constexpr std::string_view kIlpRowDegenerate = "ilp.row.degenerate";
inline constexpr std::string_view kIlpTermBadVar = "ilp.term.bad-var";
inline constexpr std::string_view kIlpVarOrphan = "ilp.var.orphan";
inline constexpr std::string_view kIlpLinMissing = "ilp.lin.missing";
inline constexpr std::string_view kIlpLinMalformed = "ilp.lin.malformed";
inline constexpr std::string_view kIlpCapacityMissing = "ilp.capacity.missing";
inline constexpr std::string_view kIlpCapacityMismatch =
    "ilp.capacity.mismatch";

// ---- allocation (check_allocation / check_spm_selection) ----
inline constexpr std::string_view kAllocMaskSize = "alloc.mask.size";
inline constexpr std::string_view kAllocCapacityExceeded =
    "alloc.capacity.exceeded";
inline constexpr std::string_view kAllocUsedBytesMismatch =
    "alloc.used-bytes.mismatch";
inline constexpr std::string_view kAllocSolverTruncated =
    "alloc.solver.truncated";

// ---- energy table and models (check_energy_table / check_energy_scaling) --
inline constexpr std::string_view kEnergyValueInvalid = "energy.value.invalid";
inline constexpr std::string_view kEnergyOrderMissHit =
    "energy.order.miss-hit";
inline constexpr std::string_view kEnergyOrderHitSpm = "energy.order.hit-spm";
inline constexpr std::string_view kEnergySramNonMonotone =
    "energy.sram.non-monotone";

// ---- stack sweep (check_stack_sweep) ----
inline constexpr std::string_view kSweepStackMismatch = "sweep.stack.mismatch";

// ---- batch containment (check_batch) ----
inline constexpr std::string_view kRunPartialFailure = "run.partial_failure";

// ---- evaluation service (check_cached_result) ----
inline constexpr std::string_view kSvcCacheMismatch = "svc.cache.mismatch";

/// Every registered rule id, docs-sync-checked against docs/checks.md by
/// casa_lint.
inline constexpr std::string_view kAll[] = {
    kTraceSizeZero,
    kTracePadMisaligned,
    kTracePadInconsistent,
    kLayoutAlignment,
    kLayoutSpanInconsistent,
    kLayoutOverlap,
    kConflictCacheDegenerate,
    kConflictNodesCount,
    kConflictFetchesProfileMismatch,
    kConflictCountsInconsistent,
    kConflictEdgeExceedsFetches,
    kConflictEdgeSelf,
    kConflictEdgeCrossSet,
    kIlpVarCountMismatch,
    kIlpRowDegenerate,
    kIlpTermBadVar,
    kIlpVarOrphan,
    kIlpLinMissing,
    kIlpLinMalformed,
    kIlpCapacityMissing,
    kIlpCapacityMismatch,
    kAllocMaskSize,
    kAllocCapacityExceeded,
    kAllocUsedBytesMismatch,
    kAllocSolverTruncated,
    kEnergyValueInvalid,
    kEnergyOrderMissHit,
    kEnergyOrderHitSpm,
    kEnergySramNonMonotone,
    kSweepStackMismatch,
    kRunPartialFailure,
    kSvcCacheMismatch,
};

namespace detail {
constexpr bool all_unique(const std::string_view* names, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (names[i] == names[j]) return false;
    }
  }
  return true;
}
}  // namespace detail

static_assert(detail::all_unique(kAll, std::size(kAll)),
              "duplicate rule id in check::rule_ids::kAll");

constexpr bool is_registered(std::string_view id) {
  for (std::string_view n : kAll) {
    if (n == id) return true;
  }
  return false;
}

}  // namespace casa::check::rule_ids

// CheckRunner — collects Diagnostics from the rule functions in rules.hpp.
//
// One runner covers one analysis scope (a pipeline flow, a standalone
// --check invocation). Rule functions report into it; the owner then asks
// for the verdict (ok / error_count), throws on errors (the Workbench's
// fatal-on-error mode), or serializes the collected diagnostics as a
// "casa-check v1" JSON artifact. When a MetricsRegistry is attached, every
// report and every evaluated rule family is mirrored into the "check.*"
// counters so run artifacts record how much validation actually happened.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "casa/check/diagnostic.hpp"

namespace casa::obs {
class MetricsRegistry;
}  // namespace casa::obs

namespace casa::check {

class CheckRunner {
 public:
  /// `metrics` may be null (no telemetry mirroring).
  explicit CheckRunner(obs::MetricsRegistry* metrics = nullptr)
      : metrics_(metrics) {}

  /// Records one rule violation.
  void report(Diagnostic d);

  /// Convenience for the common error/warning cases. `rule` is a
  /// string_view so the check::rule_ids registry constants pass through
  /// without an explicit std::string conversion at every call site.
  void error(std::string_view rule, std::string artifact,
             std::string location, std::string message,
             std::string hint = "");
  void warn(std::string_view rule, std::string artifact, std::string location,
            std::string message, std::string hint = "");

  /// Called by each rule function after evaluating `count` rules, violated
  /// or not — the "check.rules_evaluated" counter distinguishes a clean run
  /// from a run where no analysis happened at all.
  void mark_evaluated(std::size_t count);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return diags_.size() - errors_; }
  std::size_t rules_evaluated() const { return rules_evaluated_; }
  bool ok() const { return errors_ == 0; }

  /// Throws CheckError listing every error diagnostic (no-op when ok()).
  void throw_if_errors() const;

  /// One line: "casa-check: OK (37 rules evaluated)" or
  /// "casa-check: 2 errors, 1 warning (37 rules evaluated)".
  std::string summary() const;

 private:
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
  std::size_t rules_evaluated_ = 0;
};

/// Writes the "casa-check v1" JSON artifact:
///   { "schema": "casa-check v1", "tool": ..., "rules_evaluated": N,
///     "errors": N, "warnings": N, "diagnostics": [ {severity, rule,
///     artifact, location, message, hint}, ... ] }
/// Diagnostics appear in report order; strings are JSON-escaped with the
/// same escaper the metrics artifact uses.
void write_check_json(std::ostream& os, const CheckRunner& runner,
                      const std::string& tool = "casa");

}  // namespace casa::check

// Structured diagnostics for the artifact analyzer (casa::check).
//
// Every rule violation becomes one Diagnostic record: machine-readable rule
// id ("conflict.edge.cross-set"), the artifact it was found in, a location
// string precise enough to find the offending element, the human message,
// and a fix hint. Rule ids are stable API — docs/checks.md catalogues each
// one with its paper-equation anchor — so CI greps and tests can assert on
// them.
#pragma once

#include <string>
#include <vector>

#include "casa/support/error.hpp"

namespace casa::check {

enum class Severity { kError, kWarning };

const char* to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;      ///< stable id, e.g. "ilp.capacity.mismatch"
  std::string artifact;  ///< artifact kind: "ilp-model", "conflict-graph", ...
  std::string location;  ///< element inside the artifact, e.g. "edge[3] x1->x4"
  std::string message;   ///< what is wrong
  std::string hint;      ///< how to fix it (may be empty)

  /// "error[ilp.capacity.mismatch] ilp-model capacity: <message> (hint: ...)"
  std::string to_string() const;
};

/// Thrown by CheckRunner::throw_if_errors when any error-severity
/// diagnostic was collected; what() lists every error.
class CheckError : public Error {
 public:
  explicit CheckError(const std::string& what) : Error(what) {}
};

}  // namespace casa::check

// Conflict-aware code placement (Tomiyama/Yasuura-style, the paper's
// reference [14] beyond trace formation).
//
// Instead of (or in addition to) moving objects to a scratchpad, the
// placer re-orders memory objects in main memory — inserting bounded
// NOP padding where it pays — so that objects with heavy mutual conflict
// weight stop sharing cache sets. The measured conflict graph serves as
// the temporal-affinity estimate: objects that evicted each other under
// the natural layout are interleaved in time and must not alias in the
// new one.
#pragma once

#include "casa/cachesim/cache.hpp"
#include "casa/conflict/conflict_graph.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/memory_object.hpp"

namespace casa::placement {

struct PlacementOptions {
  cachesim::CacheConfig cache;
  /// Padding considered per object, in cache lines (0 disables padding and
  /// reduces the placer to pure reordering).
  unsigned max_padding_lines = 16;

  /// The measured conflict graph only lists pairs that *did* thrash under
  /// the profiling layout; a placer must also avoid creating fresh overlap
  /// between hot-but-previously-disjoint objects. Every pair of executed
  /// objects gets an extra affinity of coactivity_scale * min(f_i, f_j)
  /// (0 disables the term).
  double coactivity_scale = 0.002;

  /// true: heaviest-conflict-first reordering (full placer). false: keep
  /// the natural object order and only insert padding — conservative, never
  /// strays far from the baseline layout.
  bool reorder = true;
};

struct PlacementResult {
  traceopt::Layout layout;
  Bytes padding_bytes = 0;     ///< total alignment padding inserted
  double residual_overlap = 0; ///< Σ conflict weight still aliasing (score)
};

/// Greedily orders and aligns all objects. Objects with the largest
/// incident conflict weight are placed first; each placement scans the
/// padding window for the offset minimizing weighted set-overlap with
/// already-placed conflict partners.
PlacementResult place_conflict_aware(const traceopt::TraceProgram& tp,
                                     const conflict::ConflictGraph& graph,
                                     const PlacementOptions& opt);

}  // namespace casa::placement

#include "casa/placement/placement.hpp"

#include <algorithm>
#include <numeric>

#include "casa/support/error.hpp"

namespace casa::placement {

namespace {

/// Set-interval of an object placed at `base`: [first_set, first_set+sets)
/// modulo the set count (objects are line-aligned and padded, so the span
/// is exact in lines).
struct SetSpan {
  std::uint64_t first = 0;
  std::uint64_t count = 0;  ///< in sets; may exceed set count (wraps fully)
};

SetSpan span_of(Addr base, Bytes padded_size,
                const cachesim::CacheConfig& cache) {
  SetSpan s;
  s.first = (base / cache.line_size) % cache.sets();
  s.count = padded_size / cache.line_size;
  return s;
}

/// Number of cache sets two spans share.
std::uint64_t overlap_sets(const SetSpan& a, const SetSpan& b,
                           std::uint64_t sets) {
  if (a.count >= sets || b.count >= sets) {
    return std::min({a.count, b.count, sets});
  }
  // Wrap-around interval intersection on the set ring.
  std::uint64_t total = 0;
  // Intersect [a.first, a.first+a.count) with b shifted by 0 and ±sets.
  const std::int64_t a0 = static_cast<std::int64_t>(a.first);
  const std::int64_t a1 = a0 + static_cast<std::int64_t>(a.count);
  for (const std::int64_t shift : {-1, 0, 1}) {
    const std::int64_t b0 =
        static_cast<std::int64_t>(b.first) +
        shift * static_cast<std::int64_t>(sets);
    const std::int64_t b1 = b0 + static_cast<std::int64_t>(b.count);
    const std::int64_t lo = std::max(a0, b0);
    const std::int64_t hi = std::min(a1, b1);
    if (hi > lo) total += static_cast<std::uint64_t>(hi - lo);
  }
  return total;
}

}  // namespace

PlacementResult place_conflict_aware(const traceopt::TraceProgram& tp,
                                     const conflict::ConflictGraph& graph,
                                     const PlacementOptions& opt) {
  opt.cache.validate();
  CASA_CHECK(graph.node_count() == tp.object_count(),
             "conflict graph does not match trace program");
  const std::uint64_t sets = opt.cache.sets();
  const Bytes line = opt.cache.line_size;
  const std::size_t n = tp.object_count();

  // Symmetric affinity weights: measured conflicts plus a temporal
  // co-activity floor between all executed pairs (see PlacementOptions).
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (const conflict::Edge& e : graph.edges()) {
    if (e.from == e.to) continue;
    w[e.from.index()][e.to.index()] += static_cast<double>(e.misses);
    w[e.to.index()][e.from.index()] += static_cast<double>(e.misses);
  }
  if (opt.coactivity_scale > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto fi = static_cast<double>(
          graph.fetches(MemoryObjectId(static_cast<std::uint32_t>(i))));
      if (fi <= 0) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto fj = static_cast<double>(
            graph.fetches(MemoryObjectId(static_cast<std::uint32_t>(j))));
        if (fj <= 0) continue;
        const double co = opt.coactivity_scale * std::min(fi, fj);
        w[i][j] += co;
        w[j][i] += co;
      }
    }
  }
  std::vector<std::vector<std::pair<std::uint32_t, double>>> affinity(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (w[i][j] > 0) {
        affinity[i].emplace_back(static_cast<std::uint32_t>(j), w[i][j]);
      }
    }
  }

  // Placement priority: heaviest total incident conflict weight first;
  // cold, conflict-free objects go last in natural order.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [j, w] : affinity[i]) degree[i] += w;
  }
  if (opt.reorder) {
    std::stable_sort(order.begin(), order.end(),
                     [&degree](std::size_t a, std::size_t b) {
                       return degree[a] > degree[b];
                     });
  }

  std::vector<Addr> base(n, traceopt::Layout::kUnplaced);
  std::vector<SetSpan> spans(n);
  Addr cursor = 0;
  Bytes padding = 0;
  double residual = 0;

  for (const std::size_t i : order) {
    const Bytes size = tp.objects()[i].padded_size;
    double best_cost = -1.0;
    Addr best_addr = cursor;
    const unsigned window = degree[i] > 0 ? opt.max_padding_lines : 0;
    for (unsigned pad = 0; pad <= window; ++pad) {
      const Addr addr = cursor + static_cast<Addr>(pad) * line;
      const SetSpan span = span_of(addr, size, opt.cache);
      double cost = 0;
      for (const auto& [j, w] : affinity[i]) {
        if (base[j] == traceopt::Layout::kUnplaced) continue;
        cost += w * static_cast<double>(overlap_sets(span, spans[j], sets));
      }
      // Small tie-break toward less padding.
      cost += 1e-9 * pad;
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best_addr = addr;
      }
      if (cost <= 1e-12) break;  // perfect slot, stop early
    }
    base[i] = best_addr;
    spans[i] = span_of(best_addr, size, opt.cache);
    padding += best_addr - cursor;
    residual += std::max(0.0, best_cost);
    cursor = best_addr + size;
  }

  PlacementResult result{traceopt::Layout(tp, std::move(base), 0, cursor), padding,
                         residual};
  return result;
}

}  // namespace casa::placement

// Structured program AST.
//
// The reproduction replaces the paper's compiled Mediabench binaries with
// synthetic programs. A program is a set of functions, each with a
// structured statement tree; the tree is the single source of truth from
// which both the CFG (for trace formation) and the dynamic basic-block walk
// (for profiling / cache simulation) are derived, so the two can never
// disagree.
#pragma once

#include <memory>
#include <vector>

#include "casa/support/ids.hpp"
#include "casa/support/units.hpp"

namespace casa::prog {

class StmtVisitor;

/// Base of all statement nodes. Nodes are owned by their parent via
/// unique_ptr; the tree is immutable once the Program is built.
class Stmt {
 public:
  virtual ~Stmt() = default;
  virtual void accept(StmtVisitor& v) const = 0;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// Straight-line code: exactly one basic block.
class BlockStmt final : public Stmt {
 public:
  explicit BlockStmt(BasicBlockId bb) : bb_(bb) {}
  BasicBlockId bb() const { return bb_; }
  void accept(StmtVisitor& v) const override;

 private:
  BasicBlockId bb_;
};

/// Sequential composition.
class SeqStmt final : public Stmt {
 public:
  explicit SeqStmt(std::vector<StmtPtr> items) : items_(std::move(items)) {}
  const std::vector<StmtPtr>& items() const { return items_; }
  void accept(StmtVisitor& v) const override;

 private:
  std::vector<StmtPtr> items_;
};

/// Counted loop in do-while shape: `header` runs once on entry, then the
/// body runs `trips` times, each iteration ending in `latch` which branches
/// back. Trip count is drawn uniformly from [trips_min, trips_max] on every
/// loop entry (fixed count when equal).
class LoopStmt final : public Stmt {
 public:
  LoopStmt(BasicBlockId header, BasicBlockId latch, std::int64_t trips_min,
           std::int64_t trips_max, StmtPtr body)
      : header_(header),
        latch_(latch),
        trips_min_(trips_min),
        trips_max_(trips_max),
        body_(std::move(body)) {}

  BasicBlockId header() const { return header_; }
  BasicBlockId latch() const { return latch_; }
  std::int64_t trips_min() const { return trips_min_; }
  std::int64_t trips_max() const { return trips_max_; }
  const Stmt& body() const { return *body_; }
  void accept(StmtVisitor& v) const override;

 private:
  BasicBlockId header_;
  BasicBlockId latch_;
  std::int64_t trips_min_;
  std::int64_t trips_max_;
  StmtPtr body_;
};

/// Two-way branch: `cond` evaluates, then-arm taken with probability
/// p_then; the else-arm may be empty (nullptr).
class IfStmt final : public Stmt {
 public:
  IfStmt(BasicBlockId cond, double p_then, StmtPtr then_arm, StmtPtr else_arm)
      : cond_(cond),
        p_then_(p_then),
        then_(std::move(then_arm)),
        else_(std::move(else_arm)) {}

  BasicBlockId cond() const { return cond_; }
  double p_then() const { return p_then_; }
  const Stmt& then_arm() const { return *then_; }
  const Stmt* else_arm() const { return else_.get(); }
  void accept(StmtVisitor& v) const override;

 private:
  BasicBlockId cond_;
  double p_then_;
  StmtPtr then_;
  StmtPtr else_;
};

/// Direct call; the callee body is inlined into the dynamic walk at this
/// point. `site` is the basic block containing the call instruction.
class CallStmt final : public Stmt {
 public:
  CallStmt(BasicBlockId site, FunctionId callee)
      : site_(site), callee_(callee) {}
  BasicBlockId site() const { return site_; }
  FunctionId callee() const { return callee_; }
  void accept(StmtVisitor& v) const override;

 private:
  BasicBlockId site_;
  FunctionId callee_;
};

/// N-way weighted dispatch (switch / indirect branch). Arm i is selected
/// with probability weight[i] / sum(weights).
class SwitchStmt final : public Stmt {
 public:
  SwitchStmt(BasicBlockId selector, std::vector<double> weights,
             std::vector<StmtPtr> arms)
      : selector_(selector), weights_(std::move(weights)),
        arms_(std::move(arms)) {}

  BasicBlockId selector() const { return selector_; }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<StmtPtr>& arms() const { return arms_; }
  void accept(StmtVisitor& v) const override;

 private:
  BasicBlockId selector_;
  std::vector<double> weights_;
  std::vector<StmtPtr> arms_;
};

/// Visitor over the statement tree.
class StmtVisitor {
 public:
  virtual ~StmtVisitor() = default;
  virtual void visit(const BlockStmt&) = 0;
  virtual void visit(const SeqStmt&) = 0;
  virtual void visit(const LoopStmt&) = 0;
  virtual void visit(const IfStmt&) = 0;
  virtual void visit(const CallStmt&) = 0;
  virtual void visit(const SwitchStmt&) = 0;
};

}  // namespace casa::prog

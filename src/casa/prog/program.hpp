// Program model: functions, basic blocks, CFG edges, loop regions.
#pragma once

#include <string>
#include <vector>

#include "casa/prog/stmt.hpp"
#include "casa/support/error.hpp"
#include "casa/support/ids.hpp"
#include "casa/support/units.hpp"

namespace casa::prog {

/// A basic block: straight-line instruction run of `size` bytes (multiple of
/// the 4-byte ARM word). `layout_index` is the block's position in the
/// function's natural code layout; trace formation walks blocks in this
/// order.
struct BasicBlock {
  BasicBlockId id;
  FunctionId function;
  Bytes size = 0;
  std::uint32_t layout_index = 0;
  std::string label;
};

/// CFG edge. `fallthrough` edges connect blocks adjacent in layout where
/// control can fall through without a jump — only these may be fused into a
/// trace (Tomiyama-style).
struct CfgEdge {
  BasicBlockId from;
  BasicBlockId to;
  bool fallthrough = false;
};

/// Static loop extent: candidate region for preloaded loop caches
/// (Gordon-Ross & Vahid preload whole loops or functions) and loop-bound
/// source for WCET analysis.
struct LoopRegion {
  FunctionId function;
  std::vector<BasicBlockId> blocks;  ///< header, body blocks, latch
  std::uint32_t depth = 1;           ///< nesting depth (1 = outermost)
  BasicBlockId header;
  BasicBlockId latch;
  std::int64_t trips_min = 0;  ///< static trip-count bounds
  std::int64_t trips_max = 0;
};

/// Function: a named statement tree plus its blocks in layout order.
class Function {
 public:
  Function(FunctionId id, std::string name) : id_(id), name_(std::move(name)) {}

  FunctionId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Stmt& body() const {
    CASA_CHECK(body_ != nullptr, "function body not set");
    return *body_;
  }
  const std::vector<BasicBlockId>& blocks() const { return blocks_; }

 private:
  friend class ProgramBuilder;
  FunctionId id_;
  std::string name_;
  StmtPtr body_;
  std::vector<BasicBlockId> blocks_;  ///< layout order
};

/// Immutable whole-program container produced by ProgramBuilder.
class Program {
 public:
  const std::string& name() const { return name_; }
  FunctionId entry() const { return entry_; }

  std::size_t function_count() const { return functions_.size(); }
  std::size_t block_count() const { return blocks_.size(); }

  const Function& function(FunctionId id) const {
    CASA_CHECK(id.index() < functions_.size(), "bad FunctionId");
    return functions_[id.index()];
  }
  const BasicBlock& block(BasicBlockId id) const {
    CASA_CHECK(id.index() < blocks_.size(), "bad BasicBlockId");
    return blocks_[id.index()];
  }
  const std::vector<Function>& functions() const { return functions_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const std::vector<CfgEdge>& edges() const { return edges_; }
  const std::vector<LoopRegion>& loop_regions() const { return loop_regions_; }

  /// Sum of basic-block sizes (no padding) — the paper's "program size".
  Bytes code_size() const;

  /// Outgoing edges of `bb`.
  std::vector<CfgEdge> out_edges(BasicBlockId bb) const;

  /// Fallthrough successor of `bb` if one exists.
  BasicBlockId fallthrough_successor(BasicBlockId bb) const;

 private:
  friend class ProgramBuilder;
  std::string name_;
  FunctionId entry_;
  std::vector<Function> functions_;
  std::vector<BasicBlock> blocks_;
  std::vector<CfgEdge> edges_;
  std::vector<LoopRegion> loop_regions_;
};

}  // namespace casa::prog

#include "casa/prog/builder.hpp"

#include <utility>

namespace casa::prog {

// ---------------------------------------------------------------- scope ---

FunctionScope& FunctionScope::code(Bytes size, std::string label) {
  const BasicBlockId bb = pb_.new_block(fn_, size, std::move(label));
  items_.push_back(std::make_unique<BlockStmt>(bb));
  return *this;
}

FunctionScope& FunctionScope::loop(std::int64_t trips, const Body& body) {
  return loop_between(trips, trips, body);
}

FunctionScope& FunctionScope::loop_between(std::int64_t trips_min,
                                           std::int64_t trips_max,
                                           const Body& body) {
  CASA_CHECK(trips_min >= 0 && trips_min <= trips_max,
             "loop trip bounds must satisfy 0 <= min <= max");
  const BasicBlockId header =
      // CFG label, not a metric name: casa-lint: allow(names.unregistered)
      pb_.new_block(fn_, pb_.cfg_.loop_header_size, "loop.header");
  FunctionScope inner(pb_, fn_);
  body(inner);
  CASA_CHECK(!inner.items_.empty(), "loop body must not be empty");
  const BasicBlockId latch =
      // CFG label, not a metric name: casa-lint: allow(names.unregistered)
      pb_.new_block(fn_, pb_.cfg_.loop_latch_size, "loop.latch");
  items_.push_back(std::make_unique<LoopStmt>(
      header, latch, trips_min, trips_max,
      std::make_unique<SeqStmt>(std::move(inner.items_))));
  return *this;
}

FunctionScope& FunctionScope::if_then(double p_then, const Body& then_arm) {
  CASA_CHECK(p_then >= 0.0 && p_then <= 1.0, "branch probability out of range");
  // CFG label, not a metric name: casa-lint: allow(names.unregistered)
  const BasicBlockId cond = pb_.new_block(fn_, pb_.cfg_.cond_size, "if.cond");
  FunctionScope inner(pb_, fn_);
  then_arm(inner);
  CASA_CHECK(!inner.items_.empty(), "then-arm must not be empty");
  items_.push_back(std::make_unique<IfStmt>(
      cond, p_then, std::make_unique<SeqStmt>(std::move(inner.items_)),
      nullptr));
  return *this;
}

FunctionScope& FunctionScope::if_else(double p_then, const Body& then_arm,
                                      const Body& else_arm) {
  CASA_CHECK(p_then >= 0.0 && p_then <= 1.0, "branch probability out of range");
  // CFG label, not a metric name: casa-lint: allow(names.unregistered)
  const BasicBlockId cond = pb_.new_block(fn_, pb_.cfg_.cond_size, "if.cond");
  FunctionScope then_scope(pb_, fn_);
  then_arm(then_scope);
  CASA_CHECK(!then_scope.items_.empty(), "then-arm must not be empty");
  FunctionScope else_scope(pb_, fn_);
  else_arm(else_scope);
  CASA_CHECK(!else_scope.items_.empty(), "else-arm must not be empty");
  items_.push_back(std::make_unique<IfStmt>(
      cond, p_then, std::make_unique<SeqStmt>(std::move(then_scope.items_)),
      std::make_unique<SeqStmt>(std::move(else_scope.items_))));
  return *this;
}

FunctionScope& FunctionScope::call(const std::string& callee) {
  const BasicBlockId site =
      pb_.new_block(fn_, pb_.cfg_.call_site_size, "call." + callee);
  const FunctionId callee_id = pb_.intern_function(callee);
  items_.push_back(std::make_unique<CallStmt>(site, callee_id));
  return *this;
}

FunctionScope& FunctionScope::switch_of(std::vector<double> weights,
                                        std::vector<Body> arms) {
  CASA_CHECK(!arms.empty(), "switch needs at least one arm");
  CASA_CHECK(weights.size() == arms.size(),
             "switch weights/arms size mismatch");
  double total = 0.0;
  for (double w : weights) {
    CASA_CHECK(w >= 0.0, "switch weight must be non-negative");
    total += w;
  }
  CASA_CHECK(total > 0.0, "switch weights must not all be zero");
  const BasicBlockId sel =
      // CFG label, not a metric name: casa-lint: allow(names.unregistered)
      pb_.new_block(fn_, pb_.cfg_.selector_size, "switch.sel");
  std::vector<StmtPtr> lowered_arms;
  lowered_arms.reserve(arms.size());
  for (auto& arm : arms) {
    FunctionScope inner(pb_, fn_);
    arm(inner);
    CASA_CHECK(!inner.items_.empty(), "switch arm must not be empty");
    lowered_arms.push_back(
        std::make_unique<SeqStmt>(std::move(inner.items_)));
  }
  items_.push_back(std::make_unique<SwitchStmt>(sel, std::move(weights),
                                                std::move(lowered_arms)));
  return *this;
}

// --------------------------------------------------------------- builder ---

ProgramBuilder::ProgramBuilder(std::string program_name, BuilderConfig cfg)
    : cfg_(cfg) {
  CASA_CHECK(cfg_.loop_header_size % kWordBytes == 0 &&
                 cfg_.loop_latch_size % kWordBytes == 0 &&
                 cfg_.cond_size % kWordBytes == 0 &&
                 cfg_.call_site_size % kWordBytes == 0 &&
                 cfg_.selector_size % kWordBytes == 0,
             "control block sizes must be word multiples");
  prog_.name_ = std::move(program_name);
}

BasicBlockId ProgramBuilder::new_block(FunctionId fn, Bytes size,
                                       std::string label) {
  CASA_CHECK(size > 0, "basic block must have positive size");
  CASA_CHECK(size % kWordBytes == 0, "basic block size must be word multiple");
  const BasicBlockId id(static_cast<std::uint32_t>(prog_.blocks_.size()));
  BasicBlock b;
  b.id = id;
  b.function = fn;
  b.size = size;
  b.layout_index = next_layout_index_[fn.index()]++;
  b.label = std::move(label);
  prog_.blocks_.push_back(std::move(b));
  prog_.functions_[fn.index()].blocks_.push_back(id);
  return id;
}

FunctionId ProgramBuilder::intern_function(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const FunctionId id(static_cast<std::uint32_t>(prog_.functions_.size()));
  by_name_.emplace(name, id);
  prog_.functions_.emplace_back(id, name);
  defined_.push_back(false);
  next_layout_index_.push_back(0);
  return id;
}

void ProgramBuilder::add_edge(BasicBlockId from, BasicBlockId to,
                              bool fallthrough) {
  prog_.edges_.push_back(CfgEdge{from, to, fallthrough});
}

ProgramBuilder& ProgramBuilder::function(const std::string& name,
                                         const FunctionScope::Body& body) {
  const FunctionId id = intern_function(name);
  CASA_CHECK(!defined_[id.index()], "function defined twice: " + name);
  defined_[id.index()] = true;

  FunctionScope scope(*this, id);
  body(scope);
  CASA_CHECK(!scope.items_.empty(), "function body must not be empty: " + name);
  prog_.functions_[id.index()].body_ =
      std::make_unique<SeqStmt>(std::move(scope.items_));

  loop_depth_ = 0;
  lower(prog_.functions_[id.index()].body());
  return *this;
}

ProgramBuilder::Lowered ProgramBuilder::lower(const Stmt& s) {
  // Local visitor that dispatches back into lower-rules per node type.
  struct V : StmtVisitor {
    ProgramBuilder& pb;
    Lowered out;
    explicit V(ProgramBuilder& p) : pb(p) {}

    void visit(const BlockStmt& b) override {
      out = Lowered{b.bb(), {{b.bb(), true}}};
    }

    void visit(const SeqStmt& seq) override {
      Lowered acc;
      bool first = true;
      for (const auto& item : seq.items()) {
        Lowered cur = pb.lower(*item);
        if (first) {
          acc.entry = cur.entry;
          first = false;
        } else {
          for (const Exit& e : acc.exits) {
            pb.add_edge(e.bb, cur.entry, e.fallthrough);
          }
        }
        acc.exits = std::move(cur.exits);
      }
      out = std::move(acc);
    }

    void visit(const LoopStmt& l) override {
      ++pb.loop_depth_;
      Lowered body = pb.lower(l.body());
      --pb.loop_depth_;
      pb.add_edge(l.header(), body.entry, /*fallthrough=*/true);
      for (const Exit& e : body.exits) {
        pb.add_edge(e.bb, l.latch(), e.fallthrough);
      }
      pb.add_edge(l.latch(), body.entry, /*fallthrough=*/false);  // back edge

      // Record the static loop region: header..latch span the loop's blocks
      // because block ids are assigned in creation (= layout) order and a
      // nested function definition cannot interleave.
      LoopRegion region;
      region.function = pb.prog_.blocks_[l.header().index()].function;
      region.depth = pb.loop_depth_ + 1;
      region.header = l.header();
      region.latch = l.latch();
      region.trips_min = l.trips_min();
      region.trips_max = l.trips_max();
      for (std::uint32_t v = l.header().value(); v <= l.latch().value(); ++v) {
        region.blocks.push_back(BasicBlockId(v));
      }
      pb.prog_.loop_regions_.push_back(std::move(region));

      out = Lowered{l.header(), {{l.latch(), true}}};
    }

    void visit(const IfStmt& i) override {
      Lowered then_l = pb.lower(i.then_arm());
      pb.add_edge(i.cond(), then_l.entry, /*fallthrough=*/true);
      Lowered result;
      result.entry = i.cond();
      if (i.else_arm() != nullptr) {
        Lowered else_l = pb.lower(*i.else_arm());
        pb.add_edge(i.cond(), else_l.entry, /*fallthrough=*/false);
        // then-arm exits jump over the else-arm: never fallthrough.
        for (Exit e : then_l.exits) {
          e.fallthrough = false;
          result.exits.push_back(e);
        }
        for (const Exit& e : else_l.exits) result.exits.push_back(e);
      } else {
        result.exits = then_l.exits;
        // cond's false-edge skips the then-arm (forward taken branch).
        result.exits.push_back(Exit{i.cond(), false});
      }
      out = std::move(result);
    }

    void visit(const CallStmt& c) override {
      pb.pending_calls_.emplace_back(c.site(), c.callee());
      out = Lowered{c.site(), {{c.site(), true}}};
    }

    void visit(const SwitchStmt& sw) override {
      Lowered result;
      result.entry = sw.selector();
      const std::size_t n = sw.arms().size();
      for (std::size_t a = 0; a < n; ++a) {
        Lowered arm = pb.lower(*sw.arms()[a]);
        // Dispatch is a computed jump: no arm entry is a fallthrough target.
        pb.add_edge(sw.selector(), arm.entry, /*fallthrough=*/false);
        const bool last = (a + 1 == n);
        for (Exit e : arm.exits) {
          if (!last) e.fallthrough = false;  // jumps over the later arms
          result.exits.push_back(e);
        }
      }
      out = std::move(result);
    }
  };

  V v(*this);
  s.accept(v);
  return std::move(v.out);
}

Program ProgramBuilder::build(const std::string& entry) {
  auto it = by_name_.find(entry);
  CASA_CHECK(it != by_name_.end(), "entry function not found: " + entry);
  for (const auto& [name, id] : by_name_) {
    CASA_CHECK(defined_[id.index()], "function called but never defined: " + name);
  }
  for (const auto& [site, callee] : pending_calls_) {
    const Function& f = prog_.functions_[callee.index()];
    CASA_CHECK(!f.blocks().empty(), "callee has no blocks: " + f.name());
    add_edge(site, f.blocks().front(), /*fallthrough=*/false);
  }
  pending_calls_.clear();
  prog_.entry_ = it->second;
  return std::move(prog_);
}

}  // namespace casa::prog

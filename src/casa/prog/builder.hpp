// ProgramBuilder: fluent construction of synthetic programs.
//
// The builder creates basic blocks in code-layout order, derives CFG edges
// (marking which edges are fallthrough and therefore fusable into traces)
// and records static loop regions for the loop-cache allocator.
//
// Lowering shapes:
//   loop:    header; body...; latch        (do-while: latch branches back)
//   if/else: cond; then...; else...; join  (then-exit jumps over else)
//   if:      cond; then...; join           (cond false-edge jumps to join)
//   switch:  selector; arm0...; arm1...;   (computed jumps between arms)
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "casa/prog/program.hpp"

namespace casa::prog {

/// Sizes (bytes) of the control blocks the builder synthesizes. All must be
/// multiples of the 4-byte word.
struct BuilderConfig {
  Bytes loop_header_size = 8;
  Bytes loop_latch_size = 8;
  Bytes cond_size = 8;
  Bytes call_site_size = 8;
  Bytes selector_size = 12;
};

class ProgramBuilder;

/// Scope in which one function body (or nested region) is described.
/// Obtained from ProgramBuilder::function(); nested scopes are passed to the
/// body callbacks of loop()/if_then()/etc.
class FunctionScope {
 public:
  using Body = std::function<void(FunctionScope&)>;

  /// Appends a straight-line block of `size` bytes.
  FunctionScope& code(Bytes size, std::string label = "");

  /// Counted loop with fixed trip count.
  FunctionScope& loop(std::int64_t trips, const Body& body);

  /// Counted loop; trip count drawn uniformly in [trips_min, trips_max] at
  /// every loop entry.
  FunctionScope& loop_between(std::int64_t trips_min, std::int64_t trips_max,
                              const Body& body);

  /// Branch without else-arm; then-arm runs with probability p_then.
  FunctionScope& if_then(double p_then, const Body& then_arm);

  /// Two-armed branch.
  FunctionScope& if_else(double p_then, const Body& then_arm,
                         const Body& else_arm);

  /// Direct call to a (possibly not yet defined) function.
  FunctionScope& call(const std::string& callee);

  /// Weighted N-way dispatch; arm i taken with weights[i]/sum(weights).
  FunctionScope& switch_of(std::vector<double> weights,
                           std::vector<Body> arms);

 private:
  friend class ProgramBuilder;
  FunctionScope(ProgramBuilder& pb, FunctionId fn) : pb_(pb), fn_(fn) {}

  ProgramBuilder& pb_;
  FunctionId fn_;
  std::vector<StmtPtr> items_;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string program_name, BuilderConfig cfg = {});

  /// Defines a function by running `body` in a fresh scope. Each name may be
  /// defined once; calls may reference names defined later.
  ProgramBuilder& function(const std::string& name,
                           const FunctionScope::Body& body);

  /// Finalizes the program. Checks that every called function was defined
  /// and that `entry` exists.
  Program build(const std::string& entry = "main");

 private:
  friend class FunctionScope;

  struct Exit {
    BasicBlockId bb;
    bool fallthrough;
  };
  struct Lowered {
    BasicBlockId entry;
    std::vector<Exit> exits;
  };

  BasicBlockId new_block(FunctionId fn, Bytes size, std::string label);
  FunctionId intern_function(const std::string& name);
  void add_edge(BasicBlockId from, BasicBlockId to, bool fallthrough);

  /// Lowers one statement into CFG blocks/edges. Returns entry/exits used to
  /// stitch the parent sequence together. Called during construction, when
  /// blocks already exist (builder creates blocks eagerly inside the
  /// FunctionScope methods); lower() only wires edges.
  Lowered lower(const Stmt& s);

  BuilderConfig cfg_;
  Program prog_;
  std::unordered_map<std::string, FunctionId> by_name_;
  std::vector<bool> defined_;
  std::vector<std::pair<BasicBlockId, FunctionId>> pending_calls_;
  std::vector<std::uint32_t> next_layout_index_;  // per function
  std::uint32_t loop_depth_ = 0;
};

}  // namespace casa::prog

#include "casa/prog/stmt.hpp"

namespace casa::prog {

void BlockStmt::accept(StmtVisitor& v) const { v.visit(*this); }
void SeqStmt::accept(StmtVisitor& v) const { v.visit(*this); }
void LoopStmt::accept(StmtVisitor& v) const { v.visit(*this); }
void IfStmt::accept(StmtVisitor& v) const { v.visit(*this); }
void CallStmt::accept(StmtVisitor& v) const { v.visit(*this); }
void SwitchStmt::accept(StmtVisitor& v) const { v.visit(*this); }

}  // namespace casa::prog

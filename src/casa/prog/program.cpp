#include "casa/prog/program.hpp"

namespace casa::prog {

Bytes Program::code_size() const {
  Bytes total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

std::vector<CfgEdge> Program::out_edges(BasicBlockId bb) const {
  std::vector<CfgEdge> out;
  for (const auto& e : edges_) {
    if (e.from == bb) out.push_back(e);
  }
  return out;
}

BasicBlockId Program::fallthrough_successor(BasicBlockId bb) const {
  for (const auto& e : edges_) {
    if (e.from == bb && e.fallthrough) return e.to;
  }
  return BasicBlockId::invalid();
}

}  // namespace casa::prog

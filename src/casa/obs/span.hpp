// Scoped phase timers with an injectable clock.
//
// A Span measures the wall time between its construction and destruction
// and records it into a MetricsRegistry under a slash-joined path built
// from the spans enclosing it on the same thread:
//
//   obs::Span run(reg, "run_casa");
//   { obs::Span s(reg, "allocation"); ... }   // -> "run_casa/allocation"
//
// The clock is injectable (tests pass a FakeClock and advance it by hand,
// so timing assertions are deterministic); the default is the process
// steady clock. A Span given a null registry is fully inert: no clock
// reads, no nesting bookkeeping — the null-sink guarantee that lets
// instrumentation stay compiled into release binaries.
//
// Nesting is tracked per thread, which matches how the pipeline runs: one
// flow per task, one task per thread. Spans on different threads never see
// each other as parents (their paths simply start at their own roots) —
// the timeline view stitches them back together: when a Tracer is attached
// (Tracer::set_current), every Span additionally emits begin/end trace
// events under its leaf name, whether or not a registry is present, and
// the sim/ilp layers link cross-thread work with flow events.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "casa/obs/metrics.hpp"

namespace casa::obs {

/// Nanosecond time source for Span. Implementations must be monotonic.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() const = 0;
};

/// The process-wide std::chrono::steady_clock adapter.
const Clock& steady_clock();

/// Manually advanced clock for deterministic tests.
class FakeClock : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t ns) {
    now_.fetch_add(ns, std::memory_order_relaxed);
  }
  void advance_seconds(double s) {
    advance_ns(static_cast<std::uint64_t>(s * 1e9));
  }

 private:
  std::atomic<std::uint64_t> now_{0};
};

class Tracer;

class Span {
 public:
  /// Starts timing `name` against `reg` (null = skip the metrics path) and
  /// the current Tracer (null = skip the trace path); with neither
  /// attached the Span is fully inert. `clock` defaults to the steady
  /// clock and governs the metrics path only — the tracer stamps events
  /// with its own injected clock.
  Span(MetricsRegistry* reg, std::string_view name,
       const Clock* clock = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Full slash-joined path ("run_casa/allocation"); empty when inert or
  /// when only the tracer is attached.
  const std::string& path() const { return path_; }

 private:
  MetricsRegistry* reg_ = nullptr;
  const Clock* clock_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::string path_;
  std::string name_;  ///< leaf name, kept for the trace end event
  std::uint64_t start_ns_ = 0;
  Span* parent_ = nullptr;
};

}  // namespace casa::obs

// Build provenance embedded in every run artifact.
//
// Values are injected at compile time by src/casa/obs/CMakeLists.txt
// (git describe at configure time, the active build type and flags); a
// build outside git falls back to "unknown". Artifacts carry these so a
// metrics JSON can always be traced back to the exact code and compiler
// configuration that produced it.
#pragma once

#include <string>

namespace casa::obs {

struct BuildInfo {
  std::string git_describe;  ///< `git describe --always --dirty`
  std::string build_type;    ///< CMAKE_BUILD_TYPE
  std::string cxx_flags;     ///< CMAKE_CXX_FLAGS (may be empty)
  std::string compiler;      ///< compiler id + version
};

const BuildInfo& build_info();

}  // namespace casa::obs

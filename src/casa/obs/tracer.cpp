#include "casa/obs/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "casa/fault/fault.hpp"
#include "casa/obs/build_info.hpp"
#include "casa/obs/export.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/support/thread_pool.hpp"

namespace casa::obs {

namespace {

std::atomic<Tracer*> g_current_tracer{nullptr};

/// Each Tracer instance gets a unique generation, so a thread's cached
/// buffer pointer can never be mistaken for one belonging to a different
/// (possibly destroyed) tracer.
std::atomic<std::uint64_t> g_next_generation{1};

struct TlsBufferCache {
  std::uint64_t generation = 0;  ///< most recently used tracer
  void* buffer = nullptr;
  /// Buffers for the other live tracers this thread has recorded into, so a
  /// thread alternating between tracers reuses its per-tracer buffer instead
  /// of registering a fresh track (and ring allocation) on every switch.
  /// Entries for destroyed tracers are inert: generations are never reused.
  std::vector<std::pair<std::uint64_t, void*>> cold;
};

TlsBufferCache& tls_cache() {
  thread_local TlsBufferCache cache;
  return cache;
}

/// Microseconds with exactly three decimals: the nanosecond value
/// round-trips through the Chrome-required microsecond ts losslessly.
std::string ts_micros(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBegin:
      return "B";
    case TraceEventKind::kEnd:
      return "E";
    case TraceEventKind::kInstant:
      return "i";
    case TraceEventKind::kCounter:
      return "C";
    case TraceEventKind::kFlowBegin:
      return "s";
    case TraceEventKind::kFlowEnd:
      return "f";
  }
  return "?";
}

struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : slots(capacity) {}

  std::uint32_t tid = 0;
  int worker_index = -1;
  std::string label;
  std::vector<TraceEvent> slots;
  /// Published event count. The producer fills slots[head] and then
  /// release-stores head+1; drain() acquire-loads it and reads only
  /// completed slots. Published slots are never rewritten (drop-newest).
  std::atomic<std::size_t> head{0};
  std::atomic<std::uint64_t> dropped{0};
};

Tracer::Tracer(TracerOptions opt)
    : opt_(opt),
      clock_(opt.clock != nullptr ? opt.clock : &steady_clock()),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() {
  // Defensive: a tracer must be detached (and its producers quiesced)
  // before destruction; make sure a dangling global can't outlive us.
  Tracer* self = this;
  g_current_tracer.compare_exchange_strong(self, nullptr,
                                           std::memory_order_acq_rel);
}

Tracer* Tracer::current() {
  return g_current_tracer.load(std::memory_order_acquire);
}

void Tracer::set_current(Tracer* tracer) {
  g_current_tracer.store(tracer, std::memory_order_release);
}

Tracer::ThreadBuffer* Tracer::buffer_for_this_thread() {
  const std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<ThreadBuffer>(opt_.buffer_capacity);
  buf->tid = static_cast<std::uint32_t>(buffers_.size());
  const support::ThreadIdent& ident = support::this_thread_ident();
  buf->worker_index = ident.worker_index;
  buf->label = !ident.name.empty() ? ident.name
               : buf->tid == 0     ? std::string("main")
                                   : "thread-" + std::to_string(buf->tid);
  buffers_.push_back(std::move(buf));
  return buffers_.back().get();
}

void Tracer::record(TraceEventKind kind, std::string_view name,
                    std::string_view cat, std::uint64_t flow_id,
                    double value) {
  TlsBufferCache& cache = tls_cache();
  if (cache.generation != generation_) {
    void* found = nullptr;
    for (auto& entry : cache.cold) {
      if (entry.first == generation_) {
        found = entry.second;
        entry = {cache.generation, cache.buffer};  // demote the hot pair
        break;
      }
    }
    if (found == nullptr) {
      found = buffer_for_this_thread();
      if (cache.buffer != nullptr) {
        cache.cold.emplace_back(cache.generation, cache.buffer);
      }
    }
    cache.buffer = found;
    cache.generation = generation_;
  }
  auto* buf = static_cast<ThreadBuffer*>(cache.buffer);
  const std::size_t head = buf->head.load(std::memory_order_relaxed);
  if (head == buf->slots.size()) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& e = buf->slots[head];
  e.kind = kind;
  e.tid = buf->tid;
  e.ts_ns = clock_->now_ns();
  e.flow_id = flow_id;
  e.value = value;
  e.name.assign(name.data(), name.size());
  e.cat.assign(cat.data(), cat.size());
  buf->head.store(head + 1, std::memory_order_release);
}

void Tracer::begin(std::string_view name, std::string_view cat) {
  record(TraceEventKind::kBegin, name, cat, 0, 0.0);
}

void Tracer::end(std::string_view name, std::string_view cat) {
  record(TraceEventKind::kEnd, name, cat, 0, 0.0);
}

void Tracer::instant(std::string_view name, double value,
                     std::string_view cat) {
  record(TraceEventKind::kInstant, name, cat, 0, value);
}

void Tracer::counter(std::string_view name, double value) {
  record(TraceEventKind::kCounter, name, "counter", 0, value);
}

std::uint64_t Tracer::flow_begin(std::string_view name,
                                 std::string_view cat) {
  const std::uint64_t id = next_flow_.fetch_add(1, std::memory_order_relaxed);
  record(TraceEventKind::kFlowBegin, name, cat, id, 0.0);
  return id;
}

void Tracer::flow_end(std::string_view name, std::uint64_t id,
                      std::string_view cat) {
  record(TraceEventKind::kFlowEnd, name, cat, id, 0.0);
}

TraceData Tracer::drain() const {
  TraceData data;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      data.tracks.push_back(
          TraceTrack{buf->tid, buf->worker_index, buf->label});
      const std::size_t n = buf->head.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        data.events.push_back(buf->slots[i]);
      }
      data.dropped += buf->dropped.load(std::memory_order_relaxed);
    }
  }
  if (!data.events.empty()) {
    std::uint64_t base = data.events.front().ts_ns;
    for (const TraceEvent& e : data.events) base = std::min(base, e.ts_ns);
    for (TraceEvent& e : data.events) e.ts_ns -= base;
  }
  // Buffers concatenate in tid order, so a stable sort on (ts, tid) keeps
  // each thread's events in record order even under timestamp ties (a
  // FakeClock that never advances, say).
  std::stable_sort(data.events.begin(), data.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.tid < b.tid;
                   });
  return data;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

TraceSpan::TraceSpan(Tracer* tracer, std::string_view name,
                     std::string_view cat, std::uint64_t flow_id)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  name_.assign(name.data(), name.size());
  cat_.assign(cat.data(), cat.size());
  if (flow_id != 0) tracer_->flow_end(name_, flow_id, "flow");
  tracer_->begin(name_, cat_);
}

TraceSpan::~TraceSpan() {
  if (tracer_ != nullptr) tracer_->end(name_, cat_);
}

void write_trace_json(std::ostream& os, const TraceData& data,
                      std::string_view tool) {
  const BuildInfo& build = build_info();
  os << "{\n";
  os << "  \"schema\": \"casa-trace v1\",\n";
  os << "  \"run\": {\n";
  os << "    \"tool\": \"" << json_escape(tool) << "\",\n";
  os << "    \"git\": \"" << json_escape(build.git_describe) << "\",\n";
  os << "    \"build_type\": \"" << json_escape(build.build_type) << "\",\n";
  os << "    \"cxx_flags\": \"" << json_escape(build.cxx_flags) << "\",\n";
  os << "    \"compiler\": \"" << json_escape(build.compiler) << "\"\n";
  os << "  },\n";
  os << "  \"displayTimeUnit\": \"ms\",\n";
  os << "  \"dropped\": " << data.dropped << ",\n";
  os << "  \"traceEvents\": [";
  bool first = true;
  const auto sep = [&os, &first] {
    os << (first ? "\n" : ",\n") << "    ";
    first = false;
  };
  sep();
  os << R"({"name": "process_name", "ph": "M", "pid": 1, "tid": 0, )"
     << R"("args": {"name": ")" << json_escape(tool) << "\"}}";
  for (const TraceTrack& track : data.tracks) {
    sep();
    os << R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )"
       << track.tid << R"(, "args": {"name": ")" << json_escape(track.label)
       << "\"}}";
    if (track.worker_index >= 0) {
      sep();
      os << R"({"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": )"
         << track.tid << R"(, "args": {"sort_index": )"
         << track.worker_index + 1 << "}}";
    }
  }
  for (const TraceEvent& e : data.events) {
    sep();
    os << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
       << json_escape(e.cat) << "\", \"ph\": \"" << to_string(e.kind)
       << "\", \"pid\": 1, \"tid\": " << e.tid << ", \"ts\": "
       << ts_micros(e.ts_ns);
    switch (e.kind) {
      case TraceEventKind::kBegin:
      case TraceEventKind::kEnd:
        break;
      case TraceEventKind::kInstant:
        os << R"(, "s": "t", "args": {"value": )" << format_double(e.value)
           << "}";
        break;
      case TraceEventKind::kCounter:
        os << R"(, "args": {"value": )" << format_double(e.value) << "}";
        break;
      case TraceEventKind::kFlowBegin:
        os << ", \"id\": " << e.flow_id;
        break;
      case TraceEventKind::kFlowEnd:
        os << ", \"id\": " << e.flow_id << R"(, "bp": "e")";
        break;
    }
    os << "}";
  }
  if (!first) os << "\n  ";
  os << "]\n}\n";
}

void install_fault_trace_hook() {
  fault::set_injection_hook(
      [](std::string_view, fault::Action, std::uint64_t) {
        if (Tracer* tracer = Tracer::current()) {
          tracer->instant(trace_names::kFaultInjected, 1.0,
                          trace_names::kCatFault);
        }
      });
}

}  // namespace casa::obs

#include "casa/obs/trace_analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <unordered_map>

namespace casa::obs {

namespace {

struct SpanRec {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  int parent = -1;             ///< same-thread enclosing span
  bool closed = false;
  std::uint64_t stack_child_ns = 0;       ///< same-thread direct children
  std::vector<int> children;   ///< same-thread direct + flow-linked
};

std::string fmt_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

TraceAnalysis analyze_trace(const TraceData& data) {
  TraceAnalysis out;
  out.events = data.events.size();
  out.dropped = data.dropped;
  // drain() sorts by ts, but a parsed artifact need not be sorted — take
  // the max rather than trusting the last event.
  for (const TraceEvent& e : data.events) {
    out.wall_ns = std::max(out.wall_ns, e.ts_ns);
  }

  // Pass 1: rebuild spans per thread from the B/E stack, and resolve flow
  // links — a flow tail (s) hangs off the span open where it was emitted, a
  // flow head (f) attaches to the next span that begins on its thread.
  std::vector<SpanRec> spans;
  std::unordered_map<std::uint32_t, std::vector<int>> open;  // per-tid stack
  std::unordered_map<std::uint32_t, std::uint64_t> pending_flow;
  std::unordered_map<std::uint64_t, int> flow_tail;  // id -> parent span
  std::unordered_map<std::uint64_t, int> flow_head;  // id -> child span
  for (const TraceEvent& e : data.events) {
    switch (e.kind) {
      case TraceEventKind::kBegin: {
        SpanRec rec;
        rec.name = e.name;
        rec.tid = e.tid;
        rec.start = e.ts_ns;
        std::vector<int>& stack = open[e.tid];
        rec.parent = stack.empty() ? -1 : stack.back();
        const int idx = static_cast<int>(spans.size());
        spans.push_back(std::move(rec));
        if (spans[idx].parent >= 0) {
          spans[spans[idx].parent].children.push_back(idx);
        }
        stack.push_back(idx);
        const auto pf = pending_flow.find(e.tid);
        if (pf != pending_flow.end()) {
          flow_head[pf->second] = idx;
          pending_flow.erase(pf);
        }
        break;
      }
      case TraceEventKind::kEnd: {
        std::vector<int>& stack = open[e.tid];
        if (stack.empty()) {
          ++out.unmatched_ends;
          break;
        }
        SpanRec& rec = spans[static_cast<std::size_t>(stack.back())];
        stack.pop_back();
        // Clamp against an out-of-order artifact ending a span before it
        // began — a negative duration would wrap.
        rec.end = std::max(e.ts_ns, rec.start);
        rec.closed = true;
        if (rec.parent >= 0) {
          spans[rec.parent].stack_child_ns += rec.end - rec.start;
        }
        break;
      }
      case TraceEventKind::kFlowBegin: {
        const std::vector<int>& stack = open[e.tid];
        if (!stack.empty()) flow_tail[e.flow_id] = stack.back();
        break;
      }
      case TraceEventKind::kFlowEnd:
        pending_flow[e.tid] = e.flow_id;
        break;
      case TraceEventKind::kInstant:
      case TraceEventKind::kCounter:
        break;
    }
  }
  // Spans still open close at the trace end (their self time below stays
  // well-defined); the count is surfaced so a truncated trace is visible.
  for (SpanRec& rec : spans) {
    if (!rec.closed) {
      rec.end = std::max(out.wall_ns, rec.start);
      ++out.unmatched_begins;
      if (rec.parent >= 0) {
        spans[rec.parent].stack_child_ns += rec.end - rec.start;
      }
    }
  }
  out.spans = spans.size();

  // Attach flow children: the span that picked the work up becomes a child
  // of the span that scheduled it, unless the two are already related
  // through the same-thread stack (a serial fan-out).
  for (const auto& [id, child] : flow_head) {
    const auto tail = flow_tail.find(id);
    if (tail == flow_tail.end()) continue;
    const int parent = tail->second;
    if (parent == child || spans[child].parent == parent) continue;
    spans[parent].children.push_back(child);
  }

  // Phase aggregates.
  std::map<std::string, PhaseStat> by_name;
  for (const SpanRec& rec : spans) {
    PhaseStat& p = by_name[rec.name];
    p.name = rec.name;
    ++p.count;
    const std::uint64_t dur = rec.end - rec.start;
    p.total_ns += dur;
    p.self_ns += dur > rec.stack_child_ns ? dur - rec.stack_child_ns : 0;
  }
  for (auto& [name, stat] : by_name) out.phases.push_back(stat);
  std::stable_sort(out.phases.begin(), out.phases.end(),
                   [](const PhaseStat& a, const PhaseStat& b) {
                     return a.self_ns > b.self_ns;
                   });

  // Per-thread utilization: busy = the union of root-level span time on the
  // thread. Roots from a live drain obey one stack and cannot overlap, but a
  // truncated or handcrafted artifact can (force-closed roots reach wall_ns,
  // unsorted events interleave), so merge intervals instead of summing —
  // busy then never exceeds wall and utilization stays <= 100%.
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      root_ivals;
  for (const SpanRec& rec : spans) {
    if (rec.parent < 0) root_ivals[rec.tid].emplace_back(rec.start, rec.end);
  }
  std::unordered_map<std::uint32_t, std::uint64_t> busy;
  for (auto& [tid, ivals] : root_ivals) {
    std::sort(ivals.begin(), ivals.end());
    std::uint64_t total = 0;
    std::uint64_t cur_start = 0;
    std::uint64_t cur_end = 0;
    bool open_ival = false;
    for (const auto& [lo, hi] : ivals) {
      if (!open_ival || lo > cur_end) {
        if (open_ival) total += cur_end - cur_start;
        cur_start = lo;
        cur_end = hi;
        open_ival = true;
      } else {
        cur_end = std::max(cur_end, hi);
      }
    }
    if (open_ival) total += cur_end - cur_start;
    busy[tid] = total;
  }
  for (const TraceTrack& track : data.tracks) {
    TrackStat t;
    t.tid = track.tid;
    t.label = track.label;
    t.busy_ns = busy.count(track.tid) != 0 ? busy[track.tid] : 0;
    t.utilization = out.wall_ns > 0 ? static_cast<double>(t.busy_ns) /
                                          static_cast<double>(out.wall_ns)
                                    : 0.0;
    out.tracks.push_back(std::move(t));
  }
  std::stable_sort(out.tracks.begin(), out.tracks.end(),
                   [](const TrackStat& a, const TrackStat& b) {
                     return a.tid < b.tid;
                   });

  // Critical path: start from the latest-finishing root span and walk
  // backward, always descending into the child that finished last before
  // the current frontier. The chosen child intervals are disjoint and
  // inside the parent, so the parent's self slice is nonnegative and the
  // slices telescope to exactly the root's duration.
  int root = -1;
  for (int i = 0; i < static_cast<int>(spans.size()); ++i) {
    if (spans[i].parent >= 0) continue;
    if (root < 0 || spans[i].end > spans[root].end ||
        (spans[i].end == spans[root].end && spans[i].tid < spans[root].tid)) {
      root = i;
    }
  }
  if (root >= 0) {
    out.critical_path_ns = spans[root].end - spans[root].start;
    // Recursive descent with an explicit work list of (span, frontier).
    struct Frame {
      int span;
      std::uint64_t frontier;
    };
    std::vector<Frame> work{{root, spans[root].end}};
    std::vector<char> on_path(spans.size(), 0);
    on_path[static_cast<std::size_t>(root)] = 1;
    while (!work.empty()) {
      const Frame frame = work.back();
      work.pop_back();
      const SpanRec& s = spans[frame.span];
      std::uint64_t pos = frame.frontier;
      std::vector<int> chain;  // latest first
      for (;;) {
        int pick = -1;
        for (const int c : s.children) {
          const SpanRec& cand = spans[c];
          // A zero-length span adds nothing to the path and would stall the
          // frontier (pos = cand.start == cand.end == pos); a span already
          // on the path can only come back through a malformed flow cycle.
          if (cand.end <= cand.start ||
              on_path[static_cast<std::size_t>(c)] != 0) {
            continue;
          }
          if (cand.end > pos || cand.start < s.start) continue;
          if (pick < 0 || cand.end > spans[pick].end ||
              (cand.end == spans[pick].end &&
               cand.start > spans[pick].start)) {
            pick = c;
          }
        }
        if (pick < 0) break;
        chain.push_back(pick);
        on_path[static_cast<std::size_t>(pick)] = 1;
        pos = spans[pick].start;  // < old pos: picks have end > start
      }
      std::uint64_t covered = 0;
      for (const int c : chain) covered += spans[c].end - spans[c].start;
      const std::uint64_t span_total = frame.frontier - s.start;
      CriticalStep step;
      step.name = s.name;
      step.tid = s.tid;
      step.start_ns = s.start;
      step.end_ns = frame.frontier;
      step.self_ns = span_total > covered ? span_total - covered : 0;
      out.critical_path.push_back(std::move(step));
      // Recurse earliest-last so the work stack pops children in
      // chronological order right after their parent.
      for (const int c : chain) {
        work.push_back(Frame{c, spans[c].end});
      }
    }
  }
  return out;
}

void write_trace_summary(std::ostream& os, const TraceAnalysis& a) {
  os << "casa-trace summary: " << a.events << " events, " << a.spans
     << " spans, " << a.tracks.size() << " tracks, wall " << fmt_ms(a.wall_ns)
     << ", dropped " << a.dropped << "\n";
  if (a.unmatched_begins > 0 || a.unmatched_ends > 0) {
    os << "  (" << a.unmatched_begins << " unmatched begins, "
       << a.unmatched_ends << " unmatched ends)\n";
  }
  os << "per-thread utilization:\n";
  for (const TrackStat& t : a.tracks) {
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%5.1f%%", 100.0 * t.utilization);
    os << "  tid " << t.tid << "  " << t.label << "  busy "
       << fmt_ms(t.busy_ns) << "  " << pct << "\n";
  }
  os << "phases (count, total, self):\n";
  for (const PhaseStat& p : a.phases) {
    os << "  " << p.name << "  " << p.count << "  " << fmt_ms(p.total_ns)
       << "  " << fmt_ms(p.self_ns) << "\n";
  }
  std::uint64_t path_threads = 0;
  {
    std::vector<std::uint32_t> tids;
    for (const CriticalStep& s : a.critical_path) tids.push_back(s.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    path_threads = tids.size();
  }
  os << "critical path: " << a.critical_path_ns << " ns ("
     << fmt_ms(a.critical_path_ns) << ") across " << path_threads
     << " thread(s)\n";
  for (const CriticalStep& s : a.critical_path) {
    os << "  " << s.name << "  tid " << s.tid << "  self "
       << fmt_ms(s.self_ns) << "\n";
  }
}

}  // namespace casa::obs

#include "casa/obs/export.hpp"

#include <cstdio>
#include <functional>
#include <ostream>
#include <sstream>
#include <utility>

#include "casa/obs/build_info.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/error.hpp"

namespace casa::obs {

namespace {

std::string fmt_double(double v) { return format_double(v); }

/// CSV field quoting, needed only for the free-form provenance values
/// (cxx_flags routinely contains commas); metric names and numbers never
/// need it.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_string(std::ostream& os, std::string_view s) {
  os << '"' << json_escape(s) << '"';
}

void write_summary(std::ostream& os, const DistSummary& d,
                   const char* sum_key) {
  os << "{\"count\": " << d.count << ", \"" << sum_key
     << "\": " << fmt_double(d.sum) << ", \"min\": " << fmt_double(d.min)
     << ", \"max\": " << fmt_double(d.max) << "}";
}

template <typename M, typename F>
void write_object(std::ostream& os, const M& map, const std::string& outer,
                  F&& write_value) {
  const std::string inner = outer + "  ";
  os << "{";
  bool first = true;
  for (const auto& [key, value] : map) {
    os << (first ? "\n" : ",\n") << inner;
    write_string(os, key);
    os << ": ";
    write_value(value);
    first = false;
  }
  if (!first) os << "\n" << outer;
  os << "}";
}

void write_snapshot_body(std::ostream& os, const MetricsSnapshot& snap,
                         const std::string& indent) {
  os << indent << "\"config\": ";
  write_object(os, snap.config, indent,
               [&os](const std::string& v) { write_string(os, v); });
  os << ",\n" << indent << "\"phases\": ";
  write_object(os, snap.spans, indent, [&os](const DistSummary& d) {
    write_summary(os, d, "seconds");
  });
  os << ",\n" << indent << "\"counters\": ";
  write_object(os, snap.counters, indent,
               [&os](std::uint64_t v) { os << v; });
  os << ",\n" << indent << "\"gauges\": ";
  write_object(os, snap.gauges, indent,
               [&os](double v) { os << fmt_double(v); });
  os << ",\n" << indent << "\"distributions\": ";
  write_object(os, snap.distributions, indent,
               [&os](const DistSummary& d) { write_summary(os, d, "sum"); });
}

}  // namespace

std::string format_double(double v) {
  // Shortest representation that parses back to the same double: %.17g is
  // always sufficient but often longer than necessary.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &back);
      if (back == v) return shorter;
    }
  }
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_artifact_json(std::ostream& os, const MetricsSnapshot& snap,
                         const ArtifactOptions& opt) {
  const BuildInfo& build = build_info();
  os << "{\n";
  os << "  \"schema\": \"casa-metrics v1\",\n";
  os << "  \"run\": {\n";
  os << "    \"tool\": ";
  write_string(os, opt.tool);
  os << ",\n    \"git\": ";
  write_string(os, build.git_describe);
  os << ",\n    \"build_type\": ";
  write_string(os, build.build_type);
  os << ",\n    \"cxx_flags\": ";
  write_string(os, build.cxx_flags);
  os << ",\n    \"compiler\": ";
  write_string(os, build.compiler);
  os << "\n  },\n";
  write_snapshot_body(os, snap, "  ");
  if (opt.tasks != nullptr) {
    os << ",\n  \"tasks\": [";
    for (std::size_t i = 0; i < opt.tasks->size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    {\n";
      write_snapshot_body(os, (*opt.tasks)[i], "      ");
      os << "\n    }";
    }
    if (!opt.tasks->empty()) os << "\n  ";
    os << "]";
  }
  os << "\n}\n";
}

void write_artifact_csv(std::ostream& os, const MetricsSnapshot& snap,
                        const ArtifactOptions& opt) {
  const BuildInfo& build = build_info();
  os << "kind,name,value\n";
  os << "run,run.tool," << csv_field(opt.tool) << "\n";
  os << "run,run.git," << csv_field(build.git_describe) << "\n";
  os << "run,run.build_type," << csv_field(build.build_type) << "\n";
  os << "run,run.cxx_flags," << csv_field(build.cxx_flags) << "\n";
  os << "run,run.compiler," << csv_field(build.compiler) << "\n";
  for (const auto& [k, v] : snap.config) {
    os << "config," << k << "," << v << "\n";
  }
  const auto emit_summary = [&os](const char* kind, const std::string& name,
                                  const DistSummary& d) {
    os << kind << "," << name << ".count," << d.count << "\n";
    os << kind << "," << name << ".sum," << fmt_double(d.sum) << "\n";
    os << kind << "," << name << ".min," << fmt_double(d.min) << "\n";
    os << kind << "," << name << ".max," << fmt_double(d.max) << "\n";
  };
  for (const auto& [k, d] : snap.spans) emit_summary("phase", k, d);
  for (const auto& [k, v] : snap.counters) {
    os << "counter," << k << "," << v << "\n";
  }
  for (const auto& [k, v] : snap.gauges) {
    os << "gauge," << k << "," << fmt_double(v) << "\n";
  }
  for (const auto& [k, d] : snap.distributions) {
    emit_summary("distribution", k, d);
  }
}

ArtifactSinkPlan plan_artifact_sinks(const std::string& json_arg,
                                     bool stdout_flag) {
  ArtifactSinkPlan plan;
  if (json_arg == "-") {
    plan.to_stdout = true;
    if (stdout_flag) {
      plan.note =
          "--metrics-stdout is redundant with --metrics-json -; "
          "writing the artifact to stdout once";
    }
    return plan;
  }
  plan.to_stdout = stdout_flag;
  plan.file = json_arg;
  if (!plan.file.empty() && plan.to_stdout) {
    plan.note = "writing the metrics artifact to both " + plan.file +
                " and stdout";
  }
  return plan;
}

unsigned write_artifact_guarded(
    std::ostream& sink, std::string_view site,
    const std::function<void(std::ostream&)>& render,
    const fault::RetryPolicy& policy) {
  return fault::run_with_retry(
      policy,
      [&] {
        // Render before the fault site fires: every attempt re-renders, so
        // a caller whose render callback re-snapshots live state emits the
        // retries it survived into the retried artifact itself.
        std::ostringstream buf;
        render(buf);
        fault::at(site);
        std::string payload = std::move(buf).str();
        if (fault::armed()) {
          // Corrupt-and-detect: a kCorrupt clause mutates the payload in
          // flight; the checksum catches it before anything reaches the
          // sink, and the mismatch retries as a transient.
          const std::size_t digest = std::hash<std::string>{}(payload);
          fault::corrupt_payload(site, payload);
          if (std::hash<std::string>{}(payload) != digest) {
            throw fault::TransientError(
                "artifact payload failed integrity verification at " +
                std::string(site));
          }
        }
        sink.write(payload.data(),
                   static_cast<std::streamsize>(payload.size()));
        CASA_CHECK(sink.good(),
                   "artifact sink write failed at " + std::string(site));
      },
      [](unsigned attempt) {
        if (Tracer* tracer = Tracer::current()) {
          tracer->instant(trace_names::kRunnerRetry,
                          static_cast<double>(attempt),
                          trace_names::kCatFault);
        }
      });
}

}  // namespace casa::obs

#include "casa/obs/build_info.hpp"

#ifndef CASA_GIT_DESCRIBE
#define CASA_GIT_DESCRIBE "unknown"
#endif
#ifndef CASA_BUILD_TYPE
#define CASA_BUILD_TYPE "unknown"
#endif
#ifndef CASA_CXX_FLAGS
#define CASA_CXX_FLAGS ""
#endif
#ifndef CASA_COMPILER
#define CASA_COMPILER "unknown"
#endif

namespace casa::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{CASA_GIT_DESCRIBE, CASA_BUILD_TYPE,
                              CASA_CXX_FLAGS, CASA_COMPILER};
  return info;
}

}  // namespace casa::obs

// Timeline analysis over a drained trace: per-phase self/total time,
// per-thread utilization, and the critical path through the event DAG.
//
// Durations are rebuilt from the begin/end events per thread (stack
// discipline); cross-thread edges come from flow events (a flow head
// immediately precedes the begin of the span that picked the work up, which
// is exactly what TraceSpan emits). The critical path walks backward from
// the latest-finishing root span, at each point descending into the child —
// same-thread nested or flow-linked — that finished last, so the path's
// total length always equals the root span's wall time: on a
// single-threaded run it is the flow span's duration split into the
// self-times of its stages.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "casa/obs/tracer.hpp"

namespace casa::obs {

/// Aggregate over every span with the same (leaf) name. `self_ns` excludes
/// time covered by same-thread direct children — flow children run
/// elsewhere and are not subtracted.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;

  friend bool operator==(const PhaseStat&, const PhaseStat&) = default;
};

/// One thread's share of the trace: busy = time covered by its root-level
/// spans, utilization = busy / trace wall time.
struct TrackStat {
  std::uint32_t tid = 0;
  std::string label;
  std::uint64_t busy_ns = 0;
  double utilization = 0.0;

  friend bool operator==(const TrackStat&, const TrackStat&) = default;
};

/// One segment of the critical path. `self_ns` is the slice of the path
/// attributed to this span itself (not covered by a deeper child on the
/// path); the segments' self times sum to the path length exactly.
struct CriticalStep {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t self_ns = 0;

  friend bool operator==(const CriticalStep&, const CriticalStep&) = default;
};

struct TraceAnalysis {
  std::uint64_t events = 0;
  std::uint64_t spans = 0;
  std::uint64_t unmatched_begins = 0;  ///< closed at the trace end
  std::uint64_t unmatched_ends = 0;    ///< dropped
  std::uint64_t dropped = 0;           ///< ring-buffer drops (from the trace)
  std::uint64_t wall_ns = 0;           ///< first event to last event
  std::uint64_t critical_path_ns = 0;  ///< equals the root span's duration
  std::vector<PhaseStat> phases;       ///< sorted by self time, descending
  std::vector<TrackStat> tracks;       ///< by tid
  std::vector<CriticalStep> critical_path;  ///< root first, then descent order
};

TraceAnalysis analyze_trace(const TraceData& data);

/// Human-readable report (`casa_cli --trace-summary`). The critical path
/// line carries the exact nanosecond length so scripts can compare it
/// against span durations from the artifact.
void write_trace_summary(std::ostream& os, const TraceAnalysis& analysis);

}  // namespace casa::obs

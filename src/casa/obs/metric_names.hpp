// Central registry of every metric name the pipeline records.
//
// Instrumented code refers to these constants, never to ad-hoc string
// literals: a typo in a dotted name silently creates a *new* counter and
// drops the real one from every artifact, which is exactly the drift this
// registry exists to kill. casa_lint enforces the contract both ways —
// any dotted-name literal in src/ outside the registry headers is a
// `names.unregistered` diagnostic, and any entry below that is missing
// from the docs/metrics.md catalogue is a `names.undocumented` one
// (tools/lint_check.sh gates both in ctest and CI).
//
// Adding a metric: add the constant, add it to kAll, document it in
// docs/metrics.md. The static_assert keeps kAll duplicate-free.
#pragma once

#include <cstddef>
#include <iterator>
#include <string_view>

namespace casa::obs::metric_names {

// ---- simulation counters (memsim, one record per simulated run) ----
inline constexpr std::string_view kSimFetches = "sim.fetches";
inline constexpr std::string_view kSimSpmAccesses = "sim.spm_accesses";
inline constexpr std::string_view kSimLcAccesses = "sim.lc_accesses";
inline constexpr std::string_view kSimMainmemWords = "sim.mainmem_words";
inline constexpr std::string_view kSimCycles = "sim.cycles";
inline constexpr std::string_view kCacheAccesses = "cache.accesses";
inline constexpr std::string_view kCacheHits = "cache.hits";
inline constexpr std::string_view kCacheMisses = "cache.misses";
inline constexpr std::string_view kCacheEvictions = "cache.evictions";

// ---- compiled fetch stream (line-grained simulation path) ----
inline constexpr std::string_view kStreamCompiledRuns = "stream.compiled_runs";
inline constexpr std::string_view kStreamReplayedRuns = "stream.replayed_runs";
inline constexpr std::string_view kStreamReplayedWords =
    "stream.replayed_words";

// ---- conflict graph (run_casa flow) ----
inline constexpr std::string_view kConflictNodes = "conflict.nodes";
inline constexpr std::string_view kConflictEdges = "conflict.edges";

// ---- allocation / solvers ----
inline constexpr std::string_view kSolverNodes = "solver.nodes";
inline constexpr std::string_view kSolverIncumbentUpdates =
    "solver.incumbent_updates";
inline constexpr std::string_view kSolverBoundPrunes = "solver.bound_prunes";
inline constexpr std::string_view kSolverInfeasiblePrunes =
    "solver.infeasible_prunes";
inline constexpr std::string_view kSolverSimplexIterations =
    "solver.simplex_iterations";
inline constexpr std::string_view kSolverPresolvedItems =
    "solver.presolved_items";
inline constexpr std::string_view kSolverPresolvedEdges =
    "solver.presolved_edges";
inline constexpr std::string_view kSolverMaxDepth = "solver.max_depth";
inline constexpr std::string_view kSolverSeconds = "solver.seconds";
inline constexpr std::string_view kAllocSpmUsedBytes = "alloc.spm_used_bytes";
inline constexpr std::string_view kLcRegions = "lc.regions";

// ---- exact-solver search telemetry (ilp::BranchAndBound) ----
inline constexpr std::string_view kIlpPresolveFixed = "ilp.presolve.fixed";
inline constexpr std::string_view kIlpWarmstartUsed = "ilp.warmstart.used";
inline constexpr std::string_view kIlpWarmstartRcFixed =
    "ilp.warmstart.rc_fixed";
inline constexpr std::string_view kIlpWarmstartRootGap =
    "ilp.warmstart.root_gap";
inline constexpr std::string_view kIlpLpLimitRetries = "ilp.lp_limit_retries";
inline constexpr std::string_view kIlpSubtrees = "ilp.subtrees";

// ---- batch runner / one-pass sweep ----
inline constexpr std::string_view kRunnerJobs = "runner.jobs";
inline constexpr std::string_view kRunnerDedupHits = "runner.dedup_hits";
inline constexpr std::string_view kRunnerThreads = "runner.threads";
inline constexpr std::string_view kRunnerJobsFailed = "runner.jobs_failed";
inline constexpr std::string_view kRunnerJobsRetried = "runner.jobs_retried";
inline constexpr std::string_view kSweepGroups = "sweep.groups";
inline constexpr std::string_view kSweepStackPasses = "sweep.stack_passes";
inline constexpr std::string_view kSweepStackHits = "sweep.stack_hits";
inline constexpr std::string_view kSweepFallbackConfigs =
    "sweep.fallback_configs";
inline constexpr std::string_view kSweepDedupHits = "sweep.dedup_hits";
inline constexpr std::string_view kSweepDegradedGroups =
    "sweep.degraded_groups";
inline constexpr std::string_view kSweepConfigsPerPass =
    "sweep.configs_per_pass";

// ---- artifact analyzer (casa::check) ----
inline constexpr std::string_view kCheckDiagnostics = "check.diagnostics";
inline constexpr std::string_view kCheckErrors = "check.errors";
inline constexpr std::string_view kCheckWarnings = "check.warnings";
inline constexpr std::string_view kCheckRulesEvaluated =
    "check.rules_evaluated";

// ---- fault injection / containment (casa::fault consumers) ----
inline constexpr std::string_view kFaultInjected = "fault.injected";
inline constexpr std::string_view kFaultArmedSites = "fault.armed_sites";
inline constexpr std::string_view kIoArtifactRetries = "io.artifact_retries";

// ---- evaluation service (svc::EvalService / casa_serve) ----
inline constexpr std::string_view kSvcRequests = "svc.requests";
inline constexpr std::string_view kSvcHits = "svc.hits";
inline constexpr std::string_view kSvcMisses = "svc.misses";
inline constexpr std::string_view kSvcInflightJoins = "svc.inflight_joins";
inline constexpr std::string_view kSvcEvictions = "svc.evictions";
inline constexpr std::string_view kSvcBytes = "svc.bytes";
inline constexpr std::string_view kSvcQueueDepth = "svc.queue_depth";
inline constexpr std::string_view kSvcRejections = "svc.rejections";
inline constexpr std::string_view kSvcPersistLoads = "svc.persist_loads";
inline constexpr std::string_view kSvcPersistErrors = "svc.persist_errors";
inline constexpr std::string_view kSvcVerifiedHits = "svc.verified_hits";

/// Every registered metric name, docs-sync-checked against
/// docs/metrics.md by casa_lint.
inline constexpr std::string_view kAll[] = {
    kSimFetches,
    kSimSpmAccesses,
    kSimLcAccesses,
    kSimMainmemWords,
    kSimCycles,
    kCacheAccesses,
    kCacheHits,
    kCacheMisses,
    kCacheEvictions,
    kStreamCompiledRuns,
    kStreamReplayedRuns,
    kStreamReplayedWords,
    kConflictNodes,
    kConflictEdges,
    kSolverNodes,
    kSolverIncumbentUpdates,
    kSolverBoundPrunes,
    kSolverInfeasiblePrunes,
    kSolverSimplexIterations,
    kSolverPresolvedItems,
    kSolverPresolvedEdges,
    kSolverMaxDepth,
    kSolverSeconds,
    kAllocSpmUsedBytes,
    kLcRegions,
    kIlpPresolveFixed,
    kIlpWarmstartUsed,
    kIlpWarmstartRcFixed,
    kIlpWarmstartRootGap,
    kIlpLpLimitRetries,
    kIlpSubtrees,
    kRunnerJobs,
    kRunnerDedupHits,
    kRunnerThreads,
    kRunnerJobsFailed,
    kRunnerJobsRetried,
    kSweepGroups,
    kSweepStackPasses,
    kSweepStackHits,
    kSweepFallbackConfigs,
    kSweepDedupHits,
    kSweepConfigsPerPass,
    kSweepDegradedGroups,
    kCheckDiagnostics,
    kCheckErrors,
    kCheckWarnings,
    kCheckRulesEvaluated,
    kFaultInjected,
    kFaultArmedSites,
    kIoArtifactRetries,
    kSvcRequests,
    kSvcHits,
    kSvcMisses,
    kSvcInflightJoins,
    kSvcEvictions,
    kSvcBytes,
    kSvcQueueDepth,
    kSvcRejections,
    kSvcPersistLoads,
    kSvcPersistErrors,
    kSvcVerifiedHits,
};

namespace detail {
constexpr bool all_unique(const std::string_view* names, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (names[i] == names[j]) return false;
    }
  }
  return true;
}
}  // namespace detail

static_assert(detail::all_unique(kAll, std::size(kAll)),
              "duplicate metric name in obs::metric_names::kAll");

constexpr bool is_registered(std::string_view name) {
  for (std::string_view n : kAll) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace casa::obs::metric_names

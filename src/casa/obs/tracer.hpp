// Event-level tracing with lock-free per-thread ring buffers.
//
// A Tracer collects a timeline — begin/end duration events, instant
// events, counter samples and flow links — from every thread that records
// into it. Each thread writes into its own fixed-capacity ring buffer with
// no locks on the hot path: a slot is filled, then the buffer's head index
// is published with a release store, so a concurrent drain() (acquire
// load) only ever reads completed slots. When a buffer fills up, further
// events on that thread are dropped (drop-newest) and counted; a trace is
// never silently truncated.
//
// Timestamps come from the same injectable obs::Clock that Span uses, so
// FakeClock-driven tests produce byte-stable traces. The drained TraceData
// serializes to Chrome Trace Format ("casa-trace v1", write_trace_json),
// loadable in chrome://tracing and Perfetto; docs/tracing.md documents the
// schema key-by-key.
//
// Attachment is process-global: Tracer::set_current() installs the tracer
// every obs::Span (and the instrumented sim/ilp layers) dual-emits into.
// The null path — no tracer attached — costs one relaxed atomic load, the
// same null-sink guarantee MetricsRegistry gives (gated by
// BM_TraceOverhead in tools/bench_check.sh).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "casa/obs/span.hpp"

namespace casa::obs {

/// One timeline event. `kind` maps 1:1 onto a Chrome Trace Format phase.
enum class TraceEventKind : std::uint8_t {
  kBegin,      ///< ph "B": a duration opens
  kEnd,        ///< ph "E": the innermost open duration closes
  kInstant,    ///< ph "i": a point in time, with a numeric payload
  kCounter,    ///< ph "C": a sampled counter value
  kFlowBegin,  ///< ph "s": flow arrow tail (where work was submitted)
  kFlowEnd,    ///< ph "f": flow arrow head (where the work ran)
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kInstant;
  std::uint32_t tid = 0;       ///< track id (registration order, 0-based)
  std::uint64_t ts_ns = 0;     ///< nanoseconds, rebased so the trace starts at 0
  std::uint64_t flow_id = 0;   ///< flow events only: matches tail to head
  double value = 0.0;          ///< instant/counter payload
  std::string name;
  std::string cat;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// One thread's track: a stable id plus a human label ("main", "sim-1").
struct TraceTrack {
  std::uint32_t tid = 0;
  int worker_index = -1;  ///< ThreadPool worker index; -1 for non-pool threads
  std::string label;

  friend bool operator==(const TraceTrack&, const TraceTrack&) = default;
};

/// A drained trace: every published event, sorted by (ts, tid, record
/// order), plus the per-thread tracks and the drop count.
struct TraceData {
  std::vector<TraceTrack> tracks;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;

  friend bool operator==(const TraceData&, const TraceData&) = default;
};

struct TracerOptions {
  /// Time source; null = the process steady clock.
  const Clock* clock = nullptr;
  /// Events each thread can hold before drop-newest kicks in.
  std::size_t buffer_capacity = std::size_t{1} << 16;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions opt = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void begin(std::string_view name, std::string_view cat = "phase");
  void end(std::string_view name, std::string_view cat = "phase");
  void instant(std::string_view name, double value = 0.0,
               std::string_view cat = "instant");
  void counter(std::string_view name, double value);

  /// Emits a flow tail on the calling thread and returns its id (never 0);
  /// pass the id to flow_end() on the thread that picks the work up and the
  /// viewer draws an arrow between them.
  std::uint64_t flow_begin(std::string_view name,
                           std::string_view cat = "flow");
  void flow_end(std::string_view name, std::uint64_t id,
                std::string_view cat = "flow");

  /// Snapshot of everything published so far. Safe to call while other
  /// threads are still recording (they keep their buffers; only completed
  /// slots are read). Timestamps are rebased so the earliest event is 0.
  TraceData drain() const;

  /// Events dropped so far to full buffers.
  std::uint64_t dropped() const;

  /// The process-global tracer obs::Span and the instrumented layers emit
  /// into; null when tracing is off.
  static Tracer* current();
  static void set_current(Tracer* tracer);

 private:
  struct ThreadBuffer;

  ThreadBuffer* buffer_for_this_thread();
  void record(TraceEventKind kind, std::string_view name,
              std::string_view cat, std::uint64_t flow_id, double value);

  TracerOptions opt_;
  const Clock* clock_;
  std::uint64_t generation_;  ///< distinguishes tracers for the TLS cache
  std::atomic<std::uint64_t> next_flow_{1};
  mutable std::mutex mu_;  ///< guards buffers_ registration (not recording)
  std::deque<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII begin/end pair. A null tracer makes it fully inert. A nonzero
/// `flow_id` additionally emits the flow head before the begin, linking
/// this span back to the flow_begin() that scheduled it.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string_view name,
            std::string_view cat = "phase", std::uint64_t flow_id = 0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  std::string name_;
  std::string cat_;
};

/// Writes the "casa-trace v1" artifact: Chrome Trace Format JSON with a
/// schema/run provenance header (extra top-level keys are legal and
/// ignored by the viewers). `tool` lands in run.tool and the process name.
void write_trace_json(std::ostream& os, const TraceData& data,
                      std::string_view tool = "casa");

/// Installs a fault::set_injection_hook that emits a "fault.injected"
/// instant (value 1, cat "fault") into Tracer::current() on every fired
/// fault, so injections land on the timeline next to the work they poison.
/// Idempotent; a null current tracer makes the hook inert.
void install_fault_trace_hook();

}  // namespace casa::obs

// Central registry of every span / trace-event name the pipeline emits.
//
// Span names double as metric phase-path components ("run_casa/allocation")
// and as trace track slices, so a misspelled name fractures both views of
// the same run. Instrumented code uses these constants; casa_lint flags
// ad-hoc dotted-name literals (`names.unregistered`) and registry entries
// missing from the docs/tracing.md / docs/metrics.md catalogues
// (`names.undocumented`).
//
// Adding an event: add the constant, add it to kAll, document it in
// docs/tracing.md (dotted event names) or the docs/metrics.md phases table
// (flow/stage span names).
#pragma once

#include <cstddef>
#include <iterator>
#include <string_view>

#include "casa/obs/metric_names.hpp"

namespace casa::obs::trace_names {

// ---- flow spans (one per Workbench entry point) ----
inline constexpr std::string_view kProfiling = "profiling";
inline constexpr std::string_view kRunCasa = "run_casa";
inline constexpr std::string_view kRunSteinke = "run_steinke";
inline constexpr std::string_view kRunLoopcache = "run_loopcache";
inline constexpr std::string_view kRunCacheOnly = "run_cache_only";

// ---- stage spans (nested inside a flow span) ----
inline constexpr std::string_view kTraceFormation = "trace_formation";
inline constexpr std::string_view kLayout = "layout";
inline constexpr std::string_view kConflictGraph = "conflict_graph";
inline constexpr std::string_view kAllocation = "allocation";
inline constexpr std::string_view kSimulation = "simulation";

// ---- batch / sweep spans ----
inline constexpr std::string_view kRunMany = "run_many";
inline constexpr std::string_view kTask = "task";
inline constexpr std::string_view kSweep = "sweep";
inline constexpr std::string_view kSweepStackPass = "sweep.stack_pass";

// ---- exact-solver spans, instants, counter tracks ----
inline constexpr std::string_view kIlpSubtree = "ilp.subtree";
inline constexpr std::string_view kIlpIncumbent = "ilp.incumbent";
inline constexpr std::string_view kIlpPresolve = "ilp.presolve";
inline constexpr std::string_view kIlpWarmStart = "ilp.warm_start";
inline constexpr std::string_view kIlpRcFixed = "ilp.rc_fixed";
inline constexpr std::string_view kIlpNodes = "ilp.nodes";
inline constexpr std::string_view kIlpPrunes = "ilp.prunes";
/// Sweep instant payload: reuses the metric name so the timeline and the
/// aggregate view key the same quantity identically.
inline constexpr std::string_view kSweepConfigsPerPass =
    metric_names::kSweepConfigsPerPass;

// ---- fault injection / containment instants ----
/// Emitted by the injection hook on every fired fault (value 1).
inline constexpr std::string_view kFaultInjected = metric_names::kFaultInjected;
/// Emitted before each transient retry re-runs (value = 1-based attempt).
inline constexpr std::string_view kRunnerRetry = "runner.retry";
/// Emitted when a sweep stack-pass group degrades to per-job simulation.
inline constexpr std::string_view kSweepDegraded =
    metric_names::kSweepDegradedGroups;

// ---- evaluation service (svc::EvalService) ----
/// Span around one admitted request; tail of the request→compute flow.
inline constexpr std::string_view kSvcRequest = "svc.request";
/// Span around a cache-miss computation; head of the request→compute flow.
inline constexpr std::string_view kSvcCompute = "svc.compute";

// ---- event categories ("cat" field; not docs-sync-checked) ----
inline constexpr std::string_view kCatPhase = "phase";
inline constexpr std::string_view kCatInstant = "instant";
inline constexpr std::string_view kCatFlow = "flow";
inline constexpr std::string_view kCatSim = "sim";
inline constexpr std::string_view kCatIlp = "ilp";
inline constexpr std::string_view kCatFault = "fault";

/// Every registered span/event name, docs-sync-checked against
/// docs/tracing.md + docs/metrics.md by casa_lint.
inline constexpr std::string_view kAll[] = {
    kProfiling,    kRunCasa,      kRunSteinke,
    kRunLoopcache, kRunCacheOnly, kTraceFormation,
    kLayout,       kConflictGraph, kAllocation,
    kSimulation,   kRunMany,      kTask,
    kSweep,        kSweepStackPass, kIlpSubtree,
    kIlpIncumbent, kIlpPresolve,  kIlpWarmStart,
    kIlpRcFixed,   kIlpNodes,     kIlpPrunes,
    kSweepConfigsPerPass, kFaultInjected, kRunnerRetry,
    kSweepDegraded, kSvcRequest,   kSvcCompute,
};

static_assert(metric_names::detail::all_unique(kAll, std::size(kAll)),
              "duplicate trace name in obs::trace_names::kAll");

constexpr bool is_registered(std::string_view name) {
  for (std::string_view n : kAll) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace casa::obs::trace_names

#include "casa/obs/span.hpp"

#include <chrono>

#include "casa/obs/tracer.hpp"

namespace casa::obs {

namespace {

class SteadyClock : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

// Innermost live span on this thread (nesting is a per-thread property).
thread_local Span* g_current_span = nullptr;

}  // namespace

const Clock& steady_clock() {
  static const SteadyClock clock;
  return clock;
}

Span::Span(MetricsRegistry* reg, std::string_view name, const Clock* clock)
    : reg_(reg), tracer_(Tracer::current()) {
  // Inert when nothing is attached: no clock read, no TLS push, no copies.
  if (reg_ == nullptr && tracer_ == nullptr) return;
  if (tracer_ != nullptr) {
    name_.assign(name.data(), name.size());
    tracer_->begin(name_);
  }
  if (reg_ == nullptr) return;  // trace-only: no path/nesting bookkeeping
  clock_ = clock != nullptr ? clock : &obs::steady_clock();
  parent_ = g_current_span;
  if (parent_ != nullptr) {
    path_.reserve(parent_->path_.size() + 1 + name.size());
    path_ = parent_->path_;
    path_ += '/';
    path_ += name;
  } else {
    path_ = std::string(name);
  }
  g_current_span = this;
  start_ns_ = clock_->now_ns();
}

Span::~Span() {
  if (reg_ != nullptr) {
    const std::uint64_t end_ns = clock_->now_ns();
    g_current_span = parent_;
    reg_->record_span(path_,
                      static_cast<double>(end_ns - start_ns_) / 1e9);
  }
  if (tracer_ != nullptr) tracer_->end(name_);
}

}  // namespace casa::obs

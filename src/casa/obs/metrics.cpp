#include "casa/obs/metrics.hpp"

namespace casa::obs {

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, d] : other.distributions) {
    distributions[name].merge(d);
  }
  for (const auto& [name, d] : other.spans) spans[name].merge(d);
  for (const auto& [k, v] : other.config) config[k] = v;
}

Counter MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return Counter(it->second.get());
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  counter(name).add(delta);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = dists_.find(name);
  if (it == dists_.end()) {
    it = dists_.emplace(std::string(name), DistSummary{}).first;
  }
  it->second.observe(value);
}

void MetricsRegistry::record_span(std::string_view path, double seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(path);
  if (it == spans_.end()) {
    it = spans_.emplace(std::string(path), DistSummary{}).first;
  }
  it->second.observe(seconds);
}

void MetricsRegistry::set_config(std::string_view key, std::string_view value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = config_.find(key);
  if (it == config_.end()) {
    config_.emplace(std::string(key), std::string(value));
  } else {
    it->second = std::string(value);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace(name, cell->load(std::memory_order_relaxed));
  }
  snap.gauges.insert(gauges_.begin(), gauges_.end());
  snap.distributions.insert(dists_.begin(), dists_.end());
  snap.spans.insert(spans_.begin(), spans_.end());
  snap.config.insert(config_.begin(), config_.end());
  return snap;
}

void MetricsRegistry::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) {
    if (v != 0) counter(name).add(v);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, v] : other.gauges) {
    gauges_.insert_or_assign(name, v);
  }
  for (const auto& [name, d] : other.distributions) dists_[name].merge(d);
  for (const auto& [name, d] : other.spans) spans_[name].merge(d);
  for (const auto& [k, v] : other.config) config_.insert_or_assign(k, v);
}

}  // namespace casa::obs

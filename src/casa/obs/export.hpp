// Structured run artifacts: JSON (machines, jq) and CSV (spreadsheets).
//
// One artifact = one run. The JSON layout ("casa-metrics v1", documented
// key-by-key in docs/metrics.md) is:
//
//   {
//     "schema": "casa-metrics v1",
//     "run":    { "tool", "git", "build_type", "cxx_flags", "compiler" },
//     "config": { "workload": "mpeg", ... },
//     "phases": { "run_casa/allocation": {"count","seconds","min","max"} },
//     "counters": { "cache.hits": 123, ... },
//     "gauges":   { "runner.threads": 4.0, ... },
//     "distributions": { "job.seconds": {"count","sum","min","max"} },
//     "tasks": [ { per-task phases/counters... } ]   // only when provided
//   }
//
// Doubles are written with round-trip precision so that
// io::read_metrics_json(write) reproduces the snapshot bit-for-bit. Maps
// iterate in sorted order, so artifacts are byte-stable across runs with
// equal contents.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "casa/fault/fault.hpp"
#include "casa/obs/metrics.hpp"

namespace casa::obs {

struct ArtifactOptions {
  /// Name of the producing binary, written to run.tool.
  std::string tool = "casa";
  /// Optional per-task snapshots (e.g. one per run_many job); exported as
  /// the "tasks" array in index order.
  const std::vector<MetricsSnapshot>* tasks = nullptr;
};

/// Writes the full "casa-metrics v1" artifact.
void write_artifact_json(std::ostream& os, const MetricsSnapshot& snap,
                         const ArtifactOptions& opt = {});

/// Writes one flat `kind,name,value` row per metric (distribution and span
/// summaries expand to .count/.sum/.min/.max rows). Leads with the same
/// run.* provenance block the JSON artifact carries (run.tool from `opt`,
/// the rest from build_info()), so CSV artifacts are self-describing too.
void write_artifact_csv(std::ostream& os, const MetricsSnapshot& snap,
                        const ArtifactOptions& opt = {});

/// JSON string escaping (shared with io::serialize's reader tests).
std::string json_escape(std::string_view s);

/// Shortest decimal representation that parses back to the same double
/// (shared by the metrics and trace writers).
std::string format_double(double v);

/// Where `casa_cli` should write the metrics artifact, resolved from the
/// `--metrics-json` value and the `--metrics-stdout` flag. `-` is an alias
/// for stdout; each distinct sink is written exactly once, and `note` (when
/// non-empty) is a diagnostic the caller should surface on stderr.
struct ArtifactSinkPlan {
  bool to_stdout = false;
  std::string file;  ///< empty = no file sink
  std::string note;  ///< redundant/overlapping flag combination, or empty

  friend bool operator==(const ArtifactSinkPlan&,
                         const ArtifactSinkPlan&) = default;
};

ArtifactSinkPlan plan_artifact_sinks(const std::string& json_arg,
                                     bool stdout_flag);

/// Fault-contained artifact commit: renders via `render` into a buffer,
/// passes the fault site `site` (throw / transient / delay actions fire
/// here), verifies the rendered payload against in-flight corruption (a
/// checksum mismatch after fault::corrupt_payload classifies as
/// TransientError), and only then writes the verified payload to `sink`.
/// Transient failures re-render and retry under `policy` with
/// deterministic backoff, emitting a "runner.retry" trace instant per
/// retry. Returns the number of attempts that ran (1 = clean first try);
/// with injection disarmed the guard is one relaxed load plus the render.
unsigned write_artifact_guarded(std::ostream& sink, std::string_view site,
                                const std::function<void(std::ostream&)>& render,
                                const fault::RetryPolicy& policy = {});

}  // namespace casa::obs

// Pipeline telemetry: thread-safe metrics registry with handle-based
// recording and a null-sink default.
//
// Three metric kinds cover everything the pipeline emits:
//  * counters       — monotonic uint64 (cache hits, solver nodes, ...);
//  * gauges         — last-written double (thread count, capacity, ...);
//  * distributions  — count/sum/min/max summaries (per-job wall time, ...).
// Completed obs::Span timings land in a fourth, structurally identical map
// keyed by slash-joined phase path ("run_casa/allocation").
//
// Cost model: recording through a Counter handle is one relaxed atomic add,
// and a default-constructed (null) handle is a no-op — instrumented code
// compiles to ~nothing when no registry is attached. Registration
// (name -> handle) takes a mutex; resolve handles once, outside hot loops.
// Snapshots copy all state under the lock; exporters and merging operate on
// snapshots, never on the live registry, so a registry can keep recording
// while another thread exports.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace casa::obs {

class MetricsRegistry;

/// Cheap recording handle for one monotonic counter. Default-constructed
/// handles are null sinks: add() does nothing. Handles stay valid for the
/// lifetime of the registry that issued them.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t delta = 1) const {
    if (cell_ != nullptr) cell_->fetch_add(delta, std::memory_order_relaxed);
  }
  bool attached() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}

  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// count/sum/min/max summary of an observed value stream.
struct DistSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void observe(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    sum += v;
  }
  void merge(const DistSummary& o) {
    if (o.count == 0) return;
    if (count == 0) {
      *this = o;
      return;
    }
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
};

/// Point-in-time copy of a registry's contents. All maps are ordered, so a
/// snapshot (and anything exported from it) has deterministic iteration
/// order independent of registration order or thread schedule.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, DistSummary> distributions;
  /// Completed spans aggregated by slash-joined path; values are seconds.
  std::map<std::string, DistSummary> spans;
  /// Free-form run configuration (workload=mpeg, spm=512, ...).
  std::map<std::string, std::string> config;

  /// Accumulates `other`: counters sum, distributions/spans merge
  /// (count/sum add, min/max widen), gauges and config last-write-win.
  /// Merging task snapshots in index order therefore yields identical
  /// counter values for any thread count.
  void merge_from(const MetricsSnapshot& other);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolves (registering on first use) the counter named `name`.
  Counter counter(std::string_view name);

  /// One-shot counter add (registration cost every call — fine outside hot
  /// loops, wrong inside them; keep a Counter handle there instead).
  void add(std::string_view name, std::uint64_t delta = 1);

  void set_gauge(std::string_view name, double value);

  /// Folds `value` into the distribution named `name`.
  void observe(std::string_view name, double value);

  /// Folds a completed span's duration into the span summary at `path`.
  /// Normally called by obs::Span, not directly.
  void record_span(std::string_view path, double seconds);

  void set_config(std::string_view key, std::string_view value);

  MetricsSnapshot snapshot() const;

  /// Accumulates a snapshot (see MetricsSnapshot::merge_from) — how
  /// per-task registries fold into a run-level one.
  void merge_from(const MetricsSnapshot& other);

 private:
  mutable std::mutex mu_;
  // unique_ptr keeps each atomic's address stable across map rebalancing.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, DistSummary, std::less<>> dists_;
  std::map<std::string, DistSummary, std::less<>> spans_;
  std::map<std::string, std::string, std::less<>> config_;
};

/// Null-safe handle lookup: returns a null-sink Counter when reg is null.
inline Counter counter_or_null(MetricsRegistry* reg, std::string_view name) {
  return reg != nullptr ? reg->counter(name) : Counter();
}

}  // namespace casa::obs

// Quickstart: the whole CASA pipeline on a small hand-built program.
//
//   1. describe a program (or use a bundled workload),
//   2. profile it once,
//   3. pick a memory system (I-cache + scratchpad),
//   4. run the cache-aware allocator,
//   5. simulate and compare.
#include <iostream>

#include "casa/prog/builder.hpp"
#include "casa/report/workbench.hpp"

int main() {
  using namespace casa;
  using prog::FunctionScope;

  // 1. A toy signal-processing program: a hot filter loop that alternates
  //    between two kernels, plus cold setup code.
  prog::ProgramBuilder builder("toy");
  builder.function("kernel_a", [](FunctionScope& f) {
    f.code(96, "mac.loop");
    f.if_then(0.2, [](FunctionScope& t) { t.code(32, "saturate"); });
    f.code(32, "store");
  });
  builder.function("kernel_b", [](FunctionScope& f) {
    f.code(128, "update.taps");
    f.code(32, "rotate");
  });
  builder.function("main", [](FunctionScope& f) {
    f.code(64, "setup");
    f.loop(20000, [](FunctionScope& l) {
      l.call("kernel_a");
      l.call("kernel_b");
      l.if_then(0.01, [](FunctionScope& t) { t.code(96, "report"); });
    });
    f.code(48, "teardown");
  });
  const prog::Program program = builder.build();
  std::cout << "program: " << program.code_size() << " bytes, "
            << program.block_count() << " basic blocks\n";

  // 2-3. Profile once; pick a 256 B direct-mapped I-cache and a 128 B
  //      scratchpad — the two kernels cannot coexist in a cache this small.
  const report::Workbench bench(program);
  cachesim::CacheConfig cache;
  cache.size = 256;
  cache.line_size = 16;
  const Bytes spm = 128;

  // 4-5. Allocate with CASA, then with the cache-oblivious baseline, and
  //      simulate both.
  const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(cache, spm)).value();
  const report::Outcome steinke = bench.evaluate(report::Workbench::Job::steinke_job(cache, spm)).value();
  const report::Outcome cache_only = bench.evaluate(report::Workbench::Job::cache_only_job(cache)).value();

  const auto show = [](const char* name, const report::Outcome& o) {
    std::cout << name << ": " << to_micro_joules(o.sim.total_energy)
              << " uJ  (cache misses " << o.sim.counters.cache_misses
              << ", scratchpad fetches " << o.sim.counters.spm_accesses
              << ")\n";
  };
  show("cache only    ", cache_only);
  show("Steinke (move)", steinke);
  show("CASA          ", casa_run);

  std::cout << "CASA solved " << casa_run.object_count << " objects / "
            << casa_run.conflict_edges() << " conflict edges with the "
            << core::to_string(casa_run.alloc().engine_used) << " engine in "
            << casa_run.alloc().solve_seconds * 1000 << " ms; placed "
            << casa_run.alloc().used_bytes << "/" << spm << " bytes\n";
  std::cout << "energy saved vs cache-only: "
            << 100.0 * (1.0 - casa_run.sim.total_energy /
                                  cache_only.sim.total_energy)
            << "%\n";
  return 0;
}

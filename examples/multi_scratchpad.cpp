// Multi-scratchpad extension (paper §4: "if we had more than one scratchpad
// at the same horizontal level ... we only need to repeat inequation (17)
// for every scratchpad").
//
// Splits a fast-small + slower-large scratchpad pair for the adpcm workload
// and compares against a single pad of the combined capacity.
#include <iostream>

#include "casa/conflict/graph_builder.hpp"
#include "casa/core/multi_spm.hpp"
#include "casa/energy/cache_energy.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/energy/spm_energy.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

int main() {
  const prog::Program program = workloads::make_adpcm();
  const report::Workbench bench(program);
  const auto cache = workloads::paper_cache_for("adpcm");

  // Build the conflict graph at trace size 128 (the smaller pad).
  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache.line_size;
  topt.max_trace_size = 128;
  const auto tp =
      traceopt::form_traces(program, bench.execution().profile, topt);
  const auto layout = traceopt::layout_all(tp);
  conflict::BuildOptions bopt;
  bopt.cache = cache;
  const auto graph =
      conflict::build_conflict_graph(tp, layout, bench.execution().walk, bopt);

  const energy::CacheEnergyModel cache_energy(cache);

  core::MultiSpmProblem problem;
  problem.graph = &graph;
  for (const auto& mo : tp.objects()) problem.sizes.push_back(mo.raw_size);
  problem.capacities = {128, 256};
  problem.e_spm = {energy::SpmEnergyModel(128).access_energy(),
                   energy::SpmEnergyModel(256).access_energy()};
  problem.e_cache_hit = cache_energy.hit_energy();
  problem.e_cache_miss = cache_energy.miss_energy();

  const core::MultiSpmResult multi = core::allocate_multi_spm(problem);

  std::cout << "Multi-scratchpad allocation — adpcm, pads of 128 B ("
            << problem.e_spm[0] << " nJ/access) and 256 B ("
            << problem.e_spm[1] << " nJ/access)\n\n";

  Table table({"object", "size B", "fetches", "location"});
  for (std::size_t i = 0; i < tp.object_count(); ++i) {
    if (multi.pad_of[i] < 0 && tp.objects()[i].fetches < 10000) continue;
    const auto& mo = tp.objects()[i];
    table.row()
        .cell(program.block(mo.blocks.front()).label)
        .cell(mo.raw_size)
        .cell(mo.fetches)
        .cell(multi.pad_of[i] < 0
                  ? std::string("cache")
                  : "pad" + std::to_string(multi.pad_of[i]));
  }
  table.print(std::cout);

  std::cout << "\npad utilization: " << multi.used_bytes[0] << "/128 B and "
            << multi.used_bytes[1] << "/256 B; model energy "
            << to_micro_joules(multi.predicted_energy) << " uJ ("
            << (multi.exact ? "proven optimal" : "node-limit incumbent")
            << ")\n";

  // Reference: one 384 B pad via the classic single-pad path.
  const report::Outcome single = bench.evaluate(report::Workbench::Job::casa_job(cache, 384)).value();
  std::cout << "single 384 B pad (simulated): "
            << to_micro_joules(single.sim.total_energy)
            << " uJ — the split pads trade capacity for cheaper accesses on"
               " the hottest objects.\n";
  return 0;
}

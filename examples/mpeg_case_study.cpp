// MPEG case study: what the conflict graph sees and what CASA does with it.
//
// Reproduces the paper's flagship scenario (19.5 kB encoder, 2 kB
// direct-mapped I-cache, 512 B scratchpad) and walks through the artifacts:
// the heaviest conflict edges, the allocation each technique chooses, and
// where the energy goes.
#include <algorithm>
#include <iostream>

#include "casa/conflict/graph_builder.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

namespace {

std::string object_label(const prog::Program& program,
                         const traceopt::TraceProgram& tp,
                         MemoryObjectId mo) {
  const auto& obj = tp.object(mo);
  return program.block(obj.blocks.front()).label + "+" +
         std::to_string(obj.blocks.size() - 1);
}

}  // namespace

int main() {
  const prog::Program program = workloads::make_mpeg();
  const report::Workbench bench(program);
  const auto cache = workloads::paper_cache_for("mpeg");
  const Bytes spm = 512;

  std::cout << "MPEG case study: " << program.code_size() << " B of code, "
            << cache.size << " B direct-mapped I-cache, " << spm
            << " B scratchpad\n\n";

  // Rebuild the intermediate artifacts the Workbench uses internally, to
  // inspect them.
  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache.line_size;
  topt.max_trace_size = spm;
  const auto tp =
      traceopt::form_traces(program, bench.execution().profile, topt);
  const auto layout = traceopt::layout_all(tp);
  conflict::BuildOptions bopt;
  bopt.cache = cache;
  const auto graph =
      conflict::build_conflict_graph(tp, layout, bench.execution().walk, bopt);

  std::cout << "trace formation: " << tp.object_count() << " memory objects ("
            << tp.raw_code_size() << " B raw, " << tp.padded_code_size()
            << " B padded to " << cache.line_size << " B lines)\n";
  std::cout << "conflict graph: " << graph.edge_count() << " edges, "
            << graph.total_conflict_misses() << " conflict misses\n\n";

  // The heaviest conflict edges: the cache thrash CASA can see and the
  // execution-count heuristic cannot.
  auto edges = graph.edges();
  std::sort(edges.begin(), edges.end(),
            [](const conflict::Edge& a, const conflict::Edge& b) {
              return a.misses > b.misses;
            });
  Table hot({"victim", "evictor", "misses"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, edges.size()); ++i) {
    hot.row()
        .cell(object_label(program, tp, edges[i].from))
        .cell(object_label(program, tp, edges[i].to))
        .cell(edges[i].misses);
  }
  std::cout << "heaviest conflict edges:\n";
  hot.print(std::cout);

  // Allocations and outcomes.
  const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(cache, spm)).value();
  const report::Outcome steinke = bench.evaluate(report::Workbench::Job::steinke_job(cache, spm)).value();
  const report::Outcome lc = bench.evaluate(report::Workbench::Job::loopcache_job(cache, spm, 4)).value();

  std::cout << "\nCASA placed (" << casa_run.alloc().used_bytes << "/" << spm
            << " B): ";
  for (std::size_t i = 0; i < tp.object_count(); ++i) {
    if (casa_run.alloc().on_spm[i]) {
      std::cout << object_label(program, tp,
                                MemoryObjectId(static_cast<std::uint32_t>(i)))
                << "(" << tp.objects()[i].raw_size << "B) ";
    }
  }
  std::cout << "\n\n";

  Table cmp({"technique", "energy uJ", "cache misses", "SPM/LC fetches",
             "cycles"});
  const auto add = [&cmp](const char* name, const report::Outcome& o) {
    cmp.row()
        .cell(name)
        .cell(to_micro_joules(o.sim.total_energy), 1)
        .cell(o.sim.counters.cache_misses)
        .cell(o.sim.counters.spm_accesses + o.sim.counters.lc_accesses)
        .cell(o.sim.counters.cycles);
  };
  add("SP + CASA", casa_run);
  add("SP + Steinke", steinke);
  add("LC + Ross", lc);
  cmp.print(std::cout);

  std::cout << "\nCASA vs Steinke: "
            << 100.0 *
                   (1.0 - casa_run.sim.total_energy / steinke.sim.total_energy)
            << "% energy saved; CASA vs loop cache: "
            << 100.0 * (1.0 - casa_run.sim.total_energy / lc.sim.total_energy)
            << "%\n";
  return 0;
}

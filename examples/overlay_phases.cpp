// Overlay example: watching the scratchpad residency follow program phases.
//
// The EPIC stand-in has two macro-phases (wavelet filtering, then entropy
// packing). This example prints the per-phase hot objects, the residency
// the overlay allocator chooses for each phase, and the copy traffic it
// pays at the transitions — next to the static allocation for contrast.
#include <iostream>

#include "casa/overlay/overlay_ilp.hpp"
#include "casa/overlay/overlay_sim.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

int main() {
  const prog::Program program = workloads::make_epic();
  const report::Workbench bench(program);
  const auto cache = workloads::paper_cache_for("epic");
  const Bytes spm = 512;
  const unsigned phases = 4;

  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache.line_size;
  topt.max_trace_size = spm;
  const auto tp =
      traceopt::form_traces(program, bench.execution().profile, topt);
  const auto layout = traceopt::layout_all(tp);

  overlay::PhaseProfileOptions popt;
  popt.phase_count = phases;
  popt.cache = cache;
  const auto prof = overlay::build_phase_profile(
      tp, layout, bench.execution().walk, popt);

  std::cout << "epic, " << spm << " B scratchpad, " << phases
            << " phases\n\nper-phase hottest objects:\n";
  for (std::size_t ph = 0; ph < prof.phase_count(); ++ph) {
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < prof.object_count(); ++i) {
      if (prof.phases()[ph].fetches[i] >
          prof.phases()[ph].fetches[hottest]) {
        hottest = i;
      }
    }
    const auto& mo = tp.objects()[hottest];
    std::cout << "  phase " << ph << ": "
              << program.block(mo.blocks.front()).label << " ("
              << prof.phases()[ph].fetches[hottest] / 1000 << "k fetches)\n";
  }

  const auto energies = energy::EnergyTable::build(cache, spm, 0, 0);
  const auto problem = overlay::OverlayProblem::from(prof, tp, energies, spm);
  const auto dyn = overlay::allocate_overlay(problem);
  const auto fixed = overlay::allocate_static(problem);

  std::cout << "\nresidency per phase (objects on the scratchpad):\n";
  for (std::size_t ph = 0; ph < dyn.residency.size(); ++ph) {
    std::cout << "  phase " << ph << ": ";
    for (std::size_t i = 0; i < dyn.residency[ph].size(); ++i) {
      if (dyn.residency[ph][i]) {
        std::cout << program.block(tp.objects()[i].blocks.front()).label
                  << " ";
      }
    }
    std::cout << "\n";
  }

  const auto sim_dyn = overlay::simulate_overlay(
      tp, layout, bench.execution().walk, prof, dyn.residency, cache,
      energies);
  const auto sim_fix = overlay::simulate_overlay(
      tp, layout, bench.execution().walk, prof, fixed.residency, cache,
      energies);

  std::cout << "\nstatic:  " << to_micro_joules(sim_fix.total_energy())
            << " uJ\noverlay: " << to_micro_joules(sim_dyn.total_energy())
            << " uJ (" << sim_dyn.copies << " copies, "
            << to_micro_joules(sim_dyn.copy_energy) << " uJ transfer)\n"
            << "gain: "
            << 100.0 * (1.0 - sim_dyn.total_energy() / sim_fix.total_energy())
            << "%\n";
  return 0;
}

// WCET example: how scratchpad allocation tightens worst-case bounds.
//
// The paper's introduction argues scratchpads "allow tighter bounds on
// WCET prediction". This example walks the G.721 codec through the
// analysis: per-block worst-case costs under always-miss / SPM / oracle
// assumptions, IPET bounds per configuration, and the structural-vs-IPET
// differential check.
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/wcet/block_costs.hpp"
#include "casa/wcet/wcet.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

int main() {
  const prog::Program program = workloads::make_g721();
  const report::Workbench bench(program);
  const auto cache = workloads::paper_cache_for("g721");

  std::cout << "WCET analysis — g721, " << cache.size
            << " B direct-mapped I-cache\n\n";

  Table table({"SPM B", "bound (always-miss)", "bound (CASA SPM)",
               "tightening %", "ipet==structural"});

  for (const Bytes spm : workloads::paper_spm_sizes_for("g721")) {
    traceopt::TraceFormationOptions topt;
    topt.cache_line_size = cache.line_size;
    topt.max_trace_size = spm;
    const auto tp =
        traceopt::form_traces(program, bench.execution().profile, topt);
    const auto layout = traceopt::layout_all(tp);
    const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(cache, spm)).value();

    wcet::BlockCostOptions opt;
    opt.cache = cache;
    const std::vector<bool> none(tp.object_count(), false);
    const auto base_costs = wcet::block_cycle_costs(tp, layout, none, opt);
    const auto spm_costs =
        wcet::block_cycle_costs(tp, layout, casa_run.alloc().on_spm, opt);

    const std::uint64_t base = wcet::ipet_wcet(program, base_costs);
    const std::uint64_t tight = wcet::ipet_wcet(program, spm_costs);
    const bool agree =
        base == wcet::structural_wcet(program, base_costs) &&
        tight == wcet::structural_wcet(program, spm_costs);

    table.row()
        .cell(spm)
        .cell(base)
        .cell(tight)
        .cell(100.0 * (1.0 - static_cast<double>(tight) /
                                 static_cast<double>(base)),
              1)
        .cell(agree ? "yes" : "NO");
  }
  table.print(std::cout);

  std::cout << "\nEvery fetch from the scratchpad is a deterministic "
               "single-cycle access; the allocator's energy choices double "
               "as predictability wins.\n";
  return 0;
}

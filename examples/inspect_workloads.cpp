// Diagnostic example: prints, for every bundled workload, the static and
// dynamic shape the rest of the pipeline consumes — code size, block/object
// counts, fetch volume, conflict-graph size against the paper's cache, and
// the per-event energies. Useful as a first look at what the allocators see.
#include <iostream>

#include "casa/conflict/graph_builder.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/support/table.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  Table table({"workload", "code B", "blocks", "funcs", "fetches", "walk",
               "objects", "edges", "cache", "hit nJ", "miss nJ", "spm nJ",
               "miss %"});

  for (const std::string& name : workloads::names()) {
    const prog::Program program = workloads::by_name(name);
    const trace::ExecutionResult exec = trace::Executor::run(program);

    const cachesim::CacheConfig cache = workloads::paper_cache_for(name);
    traceopt::TraceFormationOptions topt;
    topt.cache_line_size = cache.line_size;
    topt.max_trace_size = 256;
    const traceopt::TraceProgram tp =
        traceopt::form_traces(program, exec.profile, topt);
    const traceopt::Layout layout = traceopt::layout_all(tp);

    conflict::BuildOptions bopt;
    bopt.cache = cache;
    const conflict::ConflictGraph graph =
        conflict::build_conflict_graph(tp, layout, exec.walk, bopt);

    std::uint64_t misses = 0;
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      misses +=
          graph.total_misses(MemoryObjectId(static_cast<std::uint32_t>(i)));
    }

    const energy::EnergyTable e =
        energy::EnergyTable::build(cache, 256, 0, 0);

    table.row()
        .cell(name)
        .cell(program.code_size())
        .cell(static_cast<std::uint64_t>(program.block_count()))
        .cell(static_cast<std::uint64_t>(program.function_count()))
        .cell(exec.total_fetches)
        .cell(exec.total_blocks)
        .cell(static_cast<std::uint64_t>(tp.object_count()))
        .cell(static_cast<std::uint64_t>(graph.edge_count()))
        .cell(cache.size)
        .cell(e.cache_hit, 3)
        .cell(e.cache_miss, 3)
        .cell(e.spm_access, 3)
        .cell(100.0 * static_cast<double>(misses) /
                  static_cast<double>(exec.total_fetches),
              2);
  }

  table.print(std::cout);
  return 0;
}

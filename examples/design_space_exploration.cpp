// Design-space exploration: splitting a fixed on-chip SRAM budget between
// I-cache and scratchpad.
//
// The embedded-SoC question the paper's architecture poses: given N bytes
// of on-chip memory, how much should be cache and how much CASA-managed
// scratchpad? Sweeps the split for g721 under a total budget of 1.25 kB and
// reports energy and cycle counts per split.
//
// The sweep points are independent, so they are evaluated as one
// sim::SweepPlanner batch fanned out across cores (pass a thread count as
// argv[1]; default = hardware concurrency). Sweep points that feed the
// cache the same fetch stream share one stack-distance replay; results are
// ordered, identical for any thread count, and bit-identical to running
// each point alone.
//
// The batch runs fail-soft (run_jobs with fail_fast off and one transient
// retry): a sweep point that dies is reported as a failed row while every
// other split still produces data — per-point failure is data in a DSE, not
// a crash. Try it with injection (docs/faults.md):
//
//   CASA_FAULT_SPEC="site=fault.solver.allocate,action=throw,arg=3" \
//     ./design_space_exploration
#include <cstdlib>
#include <iostream>

#include "casa/fault/fault.hpp"
#include "casa/report/workbench.hpp"
#include "casa/sim/sweep_planner.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace casa;

  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 0;
  fault::arm_from_env();

  const prog::Program program = workloads::make_g721();
  const report::Workbench bench(program);

  std::cout << "Design-space exploration — g721, on-chip budget split\n"
               "between direct-mapped I-cache and scratchpad\n\n";

  // Power-of-two cache sizes with the rest of the budget as scratchpad.
  const std::pair<Bytes, Bytes> splits[] = {
      {2048, 0}, {1024, 1024}, {1024, 512}, {512, 512},
      {512, 256}, {256, 256},  {256, 128},  {128, 128}};

  std::vector<report::Workbench::Job> jobs;
  for (const auto& [cache_size, spm] : splits) {
    cachesim::CacheConfig cache;
    cache.size = cache_size;
    cache.line_size = 16;
    jobs.push_back(spm == 0
                       ? report::Workbench::Job::cache_only_job(cache)
                       : report::Workbench::Job::casa_job(cache, spm));
  }

  report::BatchOptions bopt;
  bopt.threads = threads;
  bopt.fail_fast = false;  // keep healthy splits when one point dies
  bopt.max_retries = 1;    // transient failures get one deterministic retry
  const std::vector<report::JobResult> results =
      sim::SweepPlanner(bench).run_jobs(jobs, bopt);

  Table table({"cache B", "SPM B", "energy uJ", "cache miss %", "SPM fetch %",
               "cycles M", "status"});
  std::size_t best = results.size();
  std::size_t failed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const report::JobResult& r = results[i];
    if (!r.ok()) {
      ++failed;
      table.row()
          .cell(splits[i].first)
          .cell(splits[i].second)
          .cell("-")
          .cell("-")
          .cell("-")
          .cell("-")
          .cell(r.error_kind);
      continue;
    }
    const report::Outcome& o = r.outcome;
    if (best == results.size() ||
        o.sim.total_energy < results[best].outcome.sim.total_energy) {
      best = i;
    }
    table.row()
        .cell(splits[i].first)
        .cell(splits[i].second)
        .cell(to_micro_joules(o.sim.total_energy), 1)
        .cell(100.0 * static_cast<double>(o.sim.counters.cache_misses) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, o.sim.counters.cache_accesses)),
              2)
        .cell(100.0 * static_cast<double>(o.sim.counters.spm_accesses) /
                  static_cast<double>(o.sim.counters.total_fetches),
              1)
        .cell(static_cast<double>(o.sim.counters.cycles) / 1e6, 2)
        .cell(std::string(to_string(r.status)));
  }

  table.print(std::cout);
  if (failed != 0) {
    std::cout << "\n" << failed << " of " << results.size()
              << " sweep points failed; the rows above are the survivors\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        std::cout << "  point " << i << " (" << splits[i].first << "B/"
                  << splits[i].second << "B): " << results[i].error_kind
                  << ": " << results[i].message << "\n";
      }
    }
  }
  if (best == results.size()) {
    std::cout << "\nno sweep point survived\n";
    return 1;
  }
  const double base = results[0].ok()
                          ? results[0].outcome.sim.total_energy
                          : results[best].outcome.sim.total_energy;
  std::cout << "\nbest split: " << splits[best].first << " B cache + "
            << splits[best].second << " B scratchpad ("
            << to_micro_joules(results[best].outcome.sim.total_energy)
            << " uJ; "
            << 100.0 * (1.0 - results[best].outcome.sim.total_energy / base)
            << "% below the all-cache design)\n";
  return 0;
}

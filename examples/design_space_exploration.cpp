// Design-space exploration: splitting a fixed on-chip SRAM budget between
// I-cache and scratchpad.
//
// The embedded-SoC question the paper's architecture poses: given N bytes
// of on-chip memory, how much should be cache and how much CASA-managed
// scratchpad? Sweeps the split for g721 under a total budget of 1.25 kB and
// reports energy and cycle counts per split.
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  const prog::Program program = workloads::make_g721();
  const report::Workbench bench(program);

  std::cout << "Design-space exploration — g721, on-chip budget split\n"
               "between direct-mapped I-cache and scratchpad\n\n";

  Table table({"cache B", "SPM B", "energy uJ", "cache miss %", "SPM fetch %",
               "cycles M", "best?"});

  struct Row {
    Bytes cache, spm;
    double energy;
  };
  std::vector<Row> rows;

  // Power-of-two cache sizes with the rest of the budget as scratchpad.
  const std::pair<Bytes, Bytes> splits[] = {
      {2048, 0}, {1024, 1024}, {1024, 512}, {512, 512},
      {512, 256}, {256, 256},  {256, 128},  {128, 128}};

  for (const auto& [cache_size, spm] : splits) {
    cachesim::CacheConfig cache;
    cache.size = cache_size;
    cache.line_size = 16;

    const report::Outcome o =
        spm == 0 ? bench.run_cache_only(cache) : bench.run_casa(cache, spm);
    rows.push_back(Row{cache_size, spm, o.sim.total_energy});

    table.row()
        .cell(cache_size)
        .cell(spm)
        .cell(to_micro_joules(o.sim.total_energy), 1)
        .cell(100.0 * static_cast<double>(o.sim.counters.cache_misses) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, o.sim.counters.cache_accesses)),
              2)
        .cell(100.0 * static_cast<double>(o.sim.counters.spm_accesses) /
                  static_cast<double>(o.sim.counters.total_fetches),
              1)
        .cell(static_cast<double>(o.sim.counters.cycles) / 1e6, 2)
        .cell("");
  }

  // Mark the winner.
  std::size_t best = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].energy < rows[best].energy) best = i;
  }
  table.print(std::cout);
  std::cout << "\nbest split: " << rows[best].cache << " B cache + "
            << rows[best].spm << " B scratchpad ("
            << to_micro_joules(rows[best].energy) << " uJ; "
            << 100.0 * (1.0 - rows[best].energy / rows[0].energy)
            << "% below the all-cache design)\n";
  return 0;
}

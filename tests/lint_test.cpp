// casa::lint — one deliberately corrupted fixture per rule family, each
// asserting the exact rule id it must trigger; tokenizer edge cases (raw
// strings, spliced comments, #if 0 nesting) proving the lexer cannot be
// fooled by the hard lexical corners; suppression semantics; and a JSON
// artifact round-trip through read_lint_json.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "casa/lint/lexer.hpp"
#include "casa/lint/rule_ids.hpp"
#include "casa/lint/rules.hpp"
#include "casa/lint/runner.hpp"
#include "casa/support/error.hpp"

namespace casa::lint {
namespace {

ParsedFile parsed(std::string path, std::string text) {
  return parse_source(SourceFile{std::move(path), std::move(text)});
}

bool has_rule(const LintRunner& r, std::string_view rule) {
  return std::any_of(r.diagnostics().begin(), r.diagnostics().end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::size_t count_rule(const LintRunner& r, std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(r.diagnostics().begin(), r.diagnostics().end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

std::vector<std::string> ident_texts(const LexResult& lr) {
  std::vector<std::string> out;
  for (const Token& t : lr.tokens) {
    if (t.kind == TokKind::kIdent) out.push_back(t.text);
  }
  return out;
}

std::vector<std::string> string_texts(const LexResult& lr) {
  std::vector<std::string> out;
  for (const Token& t : lr.tokens) {
    if (t.kind == TokKind::kString) out.push_back(t.text);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(LintLexer, StringContentsNeverLeakIntoCodeStream) {
  const auto lr = lex(SourceFile{"x.cpp", R"(auto s = "int new = delete;";)"});
  EXPECT_TRUE(lr.errors.empty());
  const auto idents = ident_texts(lr);
  EXPECT_EQ(idents, (std::vector<std::string>{"auto", "s"}));
  EXPECT_EQ(string_texts(lr),
            (std::vector<std::string>{"int new = delete;"}));
}

TEST(LintLexer, EscapedQuoteDoesNotCloseString) {
  const auto lr = lex(SourceFile{"x.cpp", "auto s = \"a\\\"b\";\n"});
  EXPECT_TRUE(lr.errors.empty());
  EXPECT_EQ(string_texts(lr), (std::vector<std::string>{"a\\\"b"}));
}

TEST(LintLexer, RawStringWithCustomDelimiterAndQuotesInside) {
  const auto lr = lex(SourceFile{
      "x.cpp", "auto s = R\"xy(one \" two )\" three)xy\"; int after;\n"});
  EXPECT_TRUE(lr.errors.empty());
  EXPECT_EQ(string_texts(lr),
            (std::vector<std::string>{"one \" two )\" three"}));
  const auto idents = ident_texts(lr);
  EXPECT_NE(std::find(idents.begin(), idents.end(), "after"), idents.end());
}

TEST(LintLexer, RawStringEncodingPrefixesAndIdentifierTails) {
  const auto lr = lex(SourceFile{
      "x.cpp", "auto a = u8R\"(x)\"; auto fooR = 1; auto b = LR\"(y)\";\n"});
  EXPECT_TRUE(lr.errors.empty());
  EXPECT_EQ(string_texts(lr), (std::vector<std::string>{"x", "y"}));
  // fooR must lex as a plain identifier, not a raw-string intro.
  const auto idents = ident_texts(lr);
  EXPECT_NE(std::find(idents.begin(), idents.end(), "fooR"), idents.end());
}

TEST(LintLexer, MultiLineBlockCommentAndSplicedLineComment) {
  const auto lr = lex(SourceFile{"x.cpp",
                                 "/* multi\nline\ncomment */ int a;\n"
                                 "// spliced \\\ncontinues here\nint b;\n"});
  EXPECT_TRUE(lr.errors.empty());
  EXPECT_EQ(ident_texts(lr),
            (std::vector<std::string>{"int", "a", "int", "b"}));
  ASSERT_EQ(lr.comments.size(), 2u);
  EXPECT_EQ(lr.comments[0].text, " multi\nline\ncomment ");
  EXPECT_NE(lr.comments[1].text.find("continues here"), std::string::npos);
}

TEST(LintLexer, IfZeroRegionIsSkippedIncludingNestedConditionals) {
  const auto lr = lex(SourceFile{"x.cpp",
                                 "int before;\n"
                                 "#if 0\n"
                                 "int hidden;\n"
                                 "#ifdef FOO\n"
                                 "int nested;\n"
                                 "#endif\n"
                                 "int also_hidden;\n"
                                 "#endif\n"
                                 "int after;\n"});
  EXPECT_TRUE(lr.errors.empty());
  const auto idents = ident_texts(lr);
  EXPECT_EQ(idents, (std::vector<std::string>{"int", "before", "int",
                                              "after"}));
  ASSERT_EQ(lr.dead_blocks.size(), 1u);
  EXPECT_EQ(lr.dead_blocks[0], 2);
}

TEST(LintLexer, IfZeroElseBranchIsLive) {
  const auto lr = lex(SourceFile{"x.cpp",
                                 "#if 0\n"
                                 "int dead;\n"
                                 "#else\n"
                                 "int live;\n"
                                 "#endif\n"});
  EXPECT_TRUE(lr.errors.empty());
  const auto idents = ident_texts(lr);
  EXPECT_EQ(idents, (std::vector<std::string>{"int", "live"}));
}

TEST(LintLexer, DirectiveSplicesJoinIntoOneToken) {
  const auto lr = lex(SourceFile{
      "x.cpp", "#define FOO(a) \\\n  ((a) + 1)\nint x;\n"});
  EXPECT_TRUE(lr.errors.empty());
  ASSERT_FALSE(lr.tokens.empty());
  EXPECT_EQ(lr.tokens[0].kind, TokKind::kDirective);
  EXPECT_NE(lr.tokens[0].text.find("+ 1"), std::string::npos);
}

TEST(LintLexer, UnterminatedConstructsBecomeLexErrors) {
  EXPECT_EQ(lex(SourceFile{"x.cpp", "auto s = \"open;\n"}).errors.size(), 1u);
  EXPECT_EQ(lex(SourceFile{"x.cpp", "/* never closed\n"}).errors.size(), 1u);
  EXPECT_EQ(lex(SourceFile{"x.cpp", "#if 0\nint dead;\n"}).errors.size(), 1u);
}

TEST(LintLexer, NumbersWithSeparatorsAndExponents) {
  const auto lr = lex(SourceFile{"x.cpp", "auto a = 1'000'000 + 1e-5;\n"});
  EXPECT_TRUE(lr.errors.empty());
  std::vector<std::string> nums;
  for (const Token& t : lr.tokens) {
    if (t.kind == TokKind::kNumber) nums.push_back(t.text);
  }
  EXPECT_EQ(nums, (std::vector<std::string>{"1'000'000", "1e-5"}));
}

// ---------------------------------------------------------------------------
// Rule fixtures — one corruption per family
// ---------------------------------------------------------------------------

TEST(LintRules, LexUnterminatedReported) {
  LintRunner r;
  rule_lex(parsed("src/casa/obs/x.cpp", "auto s = \"open;\n"), r);
  EXPECT_TRUE(has_rule(r, rule_ids::kLexUnterminated));
}

TEST(LintRules, MissingPragmaOnce) {
  LintRunner r;
  rule_pragma_once(parsed("src/casa/obs/x.hpp", "int f();\n"), r);
  EXPECT_TRUE(has_rule(r, rule_ids::kPpPragmaOnce));
  LintRunner ok;
  rule_pragma_once(parsed("src/casa/obs/x.hpp", "#pragma once\nint f();\n"),
                   ok);
  EXPECT_TRUE(ok.ok());
  LintRunner cpp;  // rule is header-only
  rule_pragma_once(parsed("src/casa/obs/x.cpp", "int f() { return 1; }\n"),
                   cpp);
  EXPECT_TRUE(cpp.diagnostics().empty());
}

TEST(LintRules, DeadCodeIsAWarning) {
  LintRunner r;
  rule_dead_code(parsed("src/casa/obs/x.cpp", "#if 0\nint a;\n#endif\n"), r);
  ASSERT_TRUE(has_rule(r, rule_ids::kPpDeadCode));
  EXPECT_EQ(r.error_count(), 0u);
  EXPECT_EQ(r.warning_count(), 1u);
}

TEST(LintRules, IncludeStyleBothDirections) {
  LintRunner r;
  rule_include_style(
      parsed("src/casa/obs/x.cpp",
             "#include <casa/obs/metrics.hpp>\n#include \"vector\"\n"),
      r);
  EXPECT_EQ(count_rule(r, rule_ids::kIncludeStyle), 2u);
  LintRunner ok;
  rule_include_style(
      parsed("src/casa/obs/x.cpp",
             "#include \"casa/obs/metrics.hpp\"\n#include <vector>\n"),
      ok);
  EXPECT_TRUE(ok.diagnostics().empty());
}

TEST(LintRules, IncludeCycleDetected) {
  std::vector<ParsedFile> files;
  files.push_back(parsed("src/casa/obs/a.hpp",
                         "#pragma once\n#include \"casa/obs/b.hpp\"\n"));
  files.push_back(parsed("src/casa/obs/b.hpp",
                         "#pragma once\n#include \"casa/obs/a.hpp\"\n"));
  LayerModel layers;  // empty: layering silent, only the cycle fires
  LintRunner r;
  rule_include_graph(files, layers, r);
  EXPECT_EQ(count_rule(r, rule_ids::kIncludeCycle), 1u);  // reported once
}

LayerModel two_module_model() {
  // casa_aa links casa_bb; casa_cc links nothing.
  std::vector<SourceFile> cmake;
  cmake.push_back(SourceFile{
      "src/casa/aa/CMakeLists.txt",
      "add_library(casa_aa STATIC one.cpp)\n"
      "target_link_libraries(casa_aa PUBLIC casa_bb)\n"});
  cmake.push_back(SourceFile{"src/casa/bb/CMakeLists.txt",
                             "add_library(casa_bb STATIC two.cpp)\n"});
  cmake.push_back(SourceFile{"src/casa/cc/CMakeLists.txt",
                             "add_library(casa_cc STATIC three.cpp)\n"});
  return parse_layer_model(cmake);
}

TEST(LintRules, LayerModelFromCMake) {
  const LayerModel m = two_module_model();
  ASSERT_EQ(m.targets.size(), 3u);
  EXPECT_TRUE(m.allowed("aa", "one", "bb"));   // direct dep
  EXPECT_TRUE(m.allowed("aa", "one", "aa"));   // own module
  EXPECT_FALSE(m.allowed("bb", "two", "aa"));  // no reverse edge
  EXPECT_FALSE(m.allowed("cc", "three", "bb"));
}

TEST(LintRules, IncludeLayeringViolation) {
  std::vector<ParsedFile> files;
  files.push_back(parsed("src/casa/cc/three.cpp",
                         "#include \"casa/bb/two.hpp\"\n"));
  LintRunner r;
  rule_include_graph(files, two_module_model(), r);
  EXPECT_TRUE(has_rule(r, rule_ids::kIncludeLayering));
  std::vector<ParsedFile> ok_files;
  ok_files.push_back(parsed("src/casa/aa/one.cpp",
                            "#include \"casa/bb/two.hpp\"\n"));
  LintRunner ok;
  rule_include_graph(ok_files, two_module_model(), ok);
  EXPECT_FALSE(has_rule(ok, rule_ids::kIncludeLayering));
}

TEST(LintRules, ForbiddenEdges) {
  std::vector<ParsedFile> files;
  files.push_back(parsed("src/casa/support/rng.cpp",
                         "#include \"casa/obs/metrics.hpp\"\n"));
  files.push_back(parsed("src/casa/ilp/simplex.cpp",
                         "#include \"casa/obs/export.hpp\"\n"));
  files.push_back(parsed("src/casa/core/allocator.cpp",
                         "#include \"casa/report/workbench.hpp\"\n"));
  LintRunner r;
  rule_include_graph(files, LayerModel{}, r);
  EXPECT_EQ(count_rule(r, rule_ids::kIncludeForbidden), 3u);
}

TEST(LintRules, UnregisteredAndRegisteredLiterals) {
  std::vector<ParsedFile> files;
  files.push_back(parsed("src/casa/obs/x.cpp",
                         "auto a = \"no.such_name\";\n"
                         "auto b = \"sim.fetches\";\n"   // registered metric
                         "auto c = \"metrics.json\";\n"  // file name: exempt
                         "auto d = \"plainword\";\n"));
  LintRunner r;
  rule_names(files, DocsTexts{}, r);
  EXPECT_EQ(count_rule(r, rule_ids::kNamesUnregistered), 2u);
}

TEST(LintRules, UndocumentedRegistryEntries) {
  // Empty docs: every registry entry of every kind is undocumented.
  LintRunner r;
  rule_names({}, DocsTexts{}, r);
  EXPECT_GT(count_rule(r, rule_ids::kNamesUndocumented), 50u);
  // Docs that contain a name (in any surrounding text) document it.
  DocsTexts docs;
  docs.metrics = "| `sim.fetches` | fetches |";
  LintRunner r2;
  rule_names({}, docs, r2);
  EXPECT_EQ(count_rule(r2, rule_ids::kNamesUndocumented),
            count_rule(r, rule_ids::kNamesUndocumented) - 1);
}

TEST(LintRules, MutableGlobalFlaggedAndSynchronisedOnesNot) {
  LintRunner bad;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "namespace casa {\nint g_count = 0;\n}\n"),
               bad);
  EXPECT_TRUE(has_rule(bad, rule_ids::kHygieneMutableGlobal));
  LintRunner ok;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "namespace casa {\n"
                      "std::atomic<int> g_a{0};\n"
                      "thread_local int g_t = 0;\n"
                      "constexpr int kX = 3;\n"
                      "const char* const kName = \"n\";\n"
                      "std::mutex g_mu;\n"
                      "int add(int a, int b) { int local = a; return local + "
                      "b; }\n"
                      "}\n"),
               ok);
  EXPECT_FALSE(has_rule(ok, rule_ids::kHygieneMutableGlobal));
}

TEST(LintRules, StaticLocalWithoutSyncFlagged) {
  LintRunner r;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "int f() {\n  static int calls = 0;\n  return "
                      "++calls;\n}\n"),
               r);
  EXPECT_TRUE(has_rule(r, rule_ids::kHygieneMutableGlobal));
}

TEST(LintRules, RawNewDeleteButNotDeletedFunctions) {
  LintRunner r;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "void f() { int* p = new int(3); delete p; }\n"),
               r);
  EXPECT_EQ(count_rule(r, rule_ids::kHygieneRawNew), 2u);
  LintRunner ok;
  rule_hygiene(parsed("src/casa/obs/x.hpp",
                      "#pragma once\nstruct X {\n  X(const X&) = delete;\n"
                      "  X& operator=(const X&) = delete;\n};\n"),
               ok);
  EXPECT_FALSE(has_rule(ok, rule_ids::kHygieneRawNew));
}

TEST(LintRules, DetachedThread) {
  LintRunner r;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "void f(std::thread& t) { t.detach(); }\n"),
               r);
  EXPECT_TRUE(has_rule(r, rule_ids::kHygieneDetachedThread));
  LintRunner ok;  // an unrelated identifier named detach is not a call
  rule_hygiene(parsed("src/casa/obs/x.cpp", "int detach = 0;\n"), ok);
  EXPECT_FALSE(has_rule(ok, rule_ids::kHygieneDetachedThread));
}

TEST(LintRules, EndlSeverityDependsOnModule) {
  LintRunner hot;
  rule_hygiene(parsed("src/casa/sim/x.cpp",
                      "void f() { std::cout << std::endl; }\n"),
               hot);
  ASSERT_TRUE(has_rule(hot, rule_ids::kHotpathEndl));
  EXPECT_EQ(hot.error_count(), 1u);
  LintRunner warm;
  rule_hygiene(parsed("src/casa/report/x.cpp",
                      "void f() { std::cout << std::endl; }\n"),
               warm);
  ASSERT_TRUE(has_rule(warm, rule_ids::kHotpathEndl));
  EXPECT_EQ(warm.error_count(), 0u);
  EXPECT_EQ(warm.warning_count(), 1u);
}

TEST(LintRules, NodiscardStatusApis) {
  LintRunner bad;
  rule_api_nodiscard(parsed("src/casa/ilp/simplex.hpp",
                            "#pragma once\nclass S {\n public:\n"
                            "  Solution solve_relaxation(const Model& m) "
                            "const;\n};\n"),
                     bad);
  EXPECT_TRUE(has_rule(bad, rule_ids::kApiNodiscardStatus));
  LintRunner ok;
  rule_api_nodiscard(parsed("src/casa/ilp/simplex.hpp",
                            "#pragma once\nclass S {\n public:\n"
                            "  [[nodiscard]] Solution solve_relaxation(const "
                            "Model& m) const;\n};\n"),
                     ok);
  EXPECT_FALSE(has_rule(ok, rule_ids::kApiNodiscardStatus));
  LintRunner other;  // rule scopes to ilp/ + core/ headers only
  rule_api_nodiscard(parsed("src/casa/report/x.hpp",
                            "#pragma once\nSolution f(Model m);\n"),
                     other);
  EXPECT_TRUE(other.diagnostics().empty());
}

// ---------------------------------------------------------------------------
// Suppression
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAndLineAbove) {
  LintRunner same;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "void f() { auto* p = new int; }  "
                      "// casa-lint: allow(hygiene.raw-new)\n"),
               same);
  EXPECT_FALSE(has_rule(same, rule_ids::kHygieneRawNew));
  LintRunner above;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "// casa-lint: allow(hygiene.raw-new)\n"
                      "void f() { auto* p = new int; }\n"),
               above);
  EXPECT_FALSE(has_rule(above, rule_ids::kHygieneRawNew));
}

TEST(LintSuppression, WrongRuleOrDistantLineDoesNotSuppress) {
  LintRunner wrong;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "// casa-lint: allow(hotpath.endl)\n"
                      "void f() { auto* p = new int; }\n"),
               wrong);
  EXPECT_TRUE(has_rule(wrong, rule_ids::kHygieneRawNew));
  LintRunner distant;
  rule_hygiene(parsed("src/casa/obs/x.cpp",
                      "// casa-lint: allow(hygiene.raw-new)\n"
                      "\n"
                      "void f() { auto* p = new int; }\n"),
               distant);
  EXPECT_TRUE(has_rule(distant, rule_ids::kHygieneRawNew));
}

TEST(LintSuppression, CommaSeparatedRules) {
  LintRunner r;
  rule_hygiene(parsed("src/casa/sim/x.cpp",
                      "// casa-lint: allow(hygiene.raw-new, hotpath.endl)\n"
                      "void f() { std::cout << std::endl; auto* p = new "
                      "int; }\n"),
               r);
  EXPECT_TRUE(r.diagnostics().empty());
}

// ---------------------------------------------------------------------------
// Artifact round-trip
// ---------------------------------------------------------------------------

TEST(LintArtifact, JsonRoundTrip) {
  LintRunner r;
  r.mark_scanned(12);
  r.mark_evaluated(14);
  r.error(rule_ids::kHygieneRawNew, "src/casa/obs/x.cpp", 3, 7,
          "raw operator new", "use std::make_unique");
  r.warn(rule_ids::kPpDeadCode, "src/casa/sim/y.cpp", 10, 1,
         "message with \"quotes\"\nand a newline");
  std::ostringstream os;
  write_lint_json(os, r);
  std::istringstream is(os.str());
  const LintRunner back = read_lint_json(is);
  EXPECT_EQ(back.files_scanned(), 12u);
  EXPECT_EQ(back.rules_evaluated(), 14u);
  ASSERT_EQ(back.diagnostics().size(), 2u);
  EXPECT_EQ(back.error_count(), 1u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.diagnostics()[i].severity, r.diagnostics()[i].severity);
    EXPECT_EQ(back.diagnostics()[i].rule, r.diagnostics()[i].rule);
    EXPECT_EQ(back.diagnostics()[i].file, r.diagnostics()[i].file);
    EXPECT_EQ(back.diagnostics()[i].line, r.diagnostics()[i].line);
    EXPECT_EQ(back.diagnostics()[i].col, r.diagnostics()[i].col);
    EXPECT_EQ(back.diagnostics()[i].message, r.diagnostics()[i].message);
    EXPECT_EQ(back.diagnostics()[i].hint, r.diagnostics()[i].hint);
  }
}

TEST(LintArtifact, CorruptedArtifactsRejected) {
  const auto read = [](const std::string& text) {
    std::istringstream is(text);
    return read_lint_json(is);
  };
  EXPECT_THROW(read("not json"), Error);
  EXPECT_THROW(read("{\"schema\": \"casa-check v1\", \"diagnostics\": []}"),
               Error);
  // Counter disagreeing with the diagnostics array.
  EXPECT_THROW(
      read("{\"schema\": \"casa-lint v1\", \"tool\": \"t\", "
           "\"files_scanned\": 1, \"rules_evaluated\": 1, \"errors\": 5, "
           "\"warnings\": 0, \"diagnostics\": []}"),
      Error);
}

TEST(LintArtifact, SummaryAndToString) {
  LintRunner r;
  r.mark_scanned(3);
  r.mark_evaluated(14);
  EXPECT_NE(r.summary().find("OK"), std::string::npos);
  r.error(rule_ids::kPpPragmaOnce, "src/casa/obs/x.hpp", 1, 1,
          "header has no #pragma once", "add it");
  EXPECT_FALSE(r.ok());
  const std::string line = r.diagnostics()[0].to_string();
  EXPECT_NE(line.find("error[pp.pragma-once]"), std::string::npos);
  EXPECT_NE(line.find("src/casa/obs/x.hpp:1:1"), std::string::npos);
  std::ostringstream fixes;
  write_fix_list(fixes, r);
  EXPECT_EQ(fixes.str(),
            "src/casa/obs/x.hpp:1:1\tpp.pragma-once\tadd it\n");
}

// ---------------------------------------------------------------------------
// Dotted names
// ---------------------------------------------------------------------------

TEST(LintNames, DottedNameShape) {
  EXPECT_TRUE(is_dotted_name("sim.fetches"));
  EXPECT_TRUE(is_dotted_name("ilp.warmstart.rc_fixed"));
  EXPECT_TRUE(is_dotted_name("pp.pragma-once"));
  EXPECT_FALSE(is_dotted_name("plain"));
  EXPECT_FALSE(is_dotted_name("Sim.fetches"));    // uppercase
  EXPECT_FALSE(is_dotted_name("1.5"));            // number
  EXPECT_FALSE(is_dotted_name("sim..fetches"));   // empty segment
  EXPECT_FALSE(is_dotted_name("sim.fetches."));   // trailing dot
  EXPECT_FALSE(is_dotted_name("metrics.json"));   // file name
  EXPECT_FALSE(is_dotted_name("e.g. example"));   // space
}

}  // namespace
}  // namespace casa::lint

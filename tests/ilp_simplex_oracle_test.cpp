// Differential oracle for the simplex: brute-force vertex enumeration.
//
// For random 3-variable LPs with box bounds and <= constraints, the optimum
// (if bounded and feasible) lies at an intersection of 3 active hyperplanes
// drawn from {constraints, bound faces}. Enumerating all such intersections,
// filtering by feasibility and taking the best objective gives an exact
// reference optimum to compare the simplex against.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "casa/ilp/model.hpp"
#include "casa/ilp/simplex.hpp"
#include "casa/support/rng.hpp"

namespace casa::ilp {
namespace {

constexpr int kN = 3;

struct Lp {
  // rows: a.x <= b
  std::vector<std::array<double, kN>> a;
  std::vector<double> b;
  std::array<double, kN> lo{}, hi{}, c{};
};

/// Solves the 3x3 system M x = r by Cramer's rule; nullopt if singular.
std::optional<std::array<double, kN>> solve3(
    const std::array<std::array<double, kN>, kN>& m,
    const std::array<double, kN>& r) {
  const auto det3 = [](const std::array<std::array<double, kN>, kN>& q) {
    return q[0][0] * (q[1][1] * q[2][2] - q[1][2] * q[2][1]) -
           q[0][1] * (q[1][0] * q[2][2] - q[1][2] * q[2][0]) +
           q[0][2] * (q[1][0] * q[2][1] - q[1][1] * q[2][0]);
  };
  const double d = det3(m);
  if (std::abs(d) < 1e-9) return std::nullopt;
  std::array<double, kN> x{};
  for (int col = 0; col < kN; ++col) {
    auto mc = m;
    for (int row = 0; row < kN; ++row) mc[row][col] = r[row];
    x[col] = det3(mc) / d;
  }
  return x;
}

/// Exact optimum by vertex enumeration (maximization).
std::optional<double> brute_force_max(const Lp& lp) {
  // Hyperplane list: constraints, then lower/upper bound faces per var.
  std::vector<std::array<double, kN>> planes;
  std::vector<double> rhs;
  for (std::size_t i = 0; i < lp.a.size(); ++i) {
    planes.push_back(lp.a[i]);
    rhs.push_back(lp.b[i]);
  }
  for (int j = 0; j < kN; ++j) {
    std::array<double, kN> e{};
    e[j] = 1.0;
    planes.push_back(e);
    rhs.push_back(lp.hi[j]);
    e[j] = -1.0;
    planes.push_back(e);
    rhs.push_back(-lp.lo[j]);
  }

  const auto feasible = [&lp](const std::array<double, kN>& x) {
    for (int j = 0; j < kN; ++j) {
      if (x[j] < lp.lo[j] - 1e-7 || x[j] > lp.hi[j] + 1e-7) return false;
    }
    for (std::size_t i = 0; i < lp.a.size(); ++i) {
      double dot = 0;
      for (int j = 0; j < kN; ++j) dot += lp.a[i][j] * x[j];
      if (dot > lp.b[i] + 1e-7) return false;
    }
    return true;
  };

  std::optional<double> best;
  const std::size_t m = planes.size();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      for (std::size_t k = j + 1; k < m; ++k) {
        const auto x = solve3({planes[i], planes[j], planes[k]},
                              {rhs[i], rhs[j], rhs[k]});
        if (!x.has_value() || !feasible(*x)) continue;
        double val = 0;
        for (int v = 0; v < kN; ++v) val += lp.c[v] * (*x)[v];
        if (!best.has_value() || val > *best) best = val;
      }
    }
  }
  return best;  // nullopt only if infeasible (box ensures boundedness)
}

class SimplexOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexOracleTest, MatchesVertexEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  Lp lp;
  for (int j = 0; j < kN; ++j) {
    lp.lo[j] = 0.0;
    lp.hi[j] = 1.0 + rng.next_unit() * 9.0;
    lp.c[j] = rng.next_unit() * 6.0 - 2.0;
  }
  const int rows = 2 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < rows; ++i) {
    std::array<double, kN> a{};
    for (int j = 0; j < kN; ++j) a[j] = rng.next_unit() * 4.0 - 1.0;
    lp.a.push_back(a);
    // Keep the origin feasible so the instance cannot be infeasible.
    lp.b.push_back(0.5 + rng.next_unit() * 10.0);
  }

  Model m;
  std::vector<VarId> x;
  for (int j = 0; j < kN; ++j) {
    x.push_back(m.add_continuous("x" + std::to_string(j), lp.lo[j],
                                 lp.hi[j]));
  }
  for (std::size_t i = 0; i < lp.a.size(); ++i) {
    LinExpr e;
    for (int j = 0; j < kN; ++j) e.add(x[j], lp.a[i][j]);
    m.add_constraint("r" + std::to_string(i), std::move(e), Rel::kLessEq,
                     lp.b[i]);
  }
  LinExpr obj;
  for (int j = 0; j < kN; ++j) obj.add(x[j], lp.c[j]);
  m.set_objective(Sense::kMaximize, std::move(obj));

  const Solution sol = SimplexSolver().solve_relaxation(m);
  const std::optional<double> expected = brute_force_max(lp);
  ASSERT_TRUE(expected.has_value());
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, *expected, 1e-6)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexOracleTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace casa::ilp

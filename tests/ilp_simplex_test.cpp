#include <gtest/gtest.h>

#include "casa/ilp/model.hpp"
#include "casa/ilp/simplex.hpp"
#include "casa/support/rng.hpp"

namespace casa::ilp {
namespace {

TEST(Simplex, TrivialBoundedMaximum) {
  Model m;
  const VarId x = m.add_continuous("x", 0, 10);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1.0));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 10.0, 1e-9);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
}

TEST(Simplex, TextbookTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
  Model m;
  const VarId x = m.add_continuous("x", 0, kInfinity);
  const VarId y = m.add_continuous("y", 0, kInfinity);
  m.add_constraint("c1", LinExpr().add(x, 1), Rel::kLessEq, 4);
  m.add_constraint("c2", LinExpr().add(y, 2), Rel::kLessEq, 12);
  m.add_constraint("c3", LinExpr().add(x, 3).add(y, 2), Rel::kLessEq, 18);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 3).add(y, 5));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.value(x), 2.0, 1e-7);
  EXPECT_NEAR(s.value(y), 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGreaterEq) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2 -> x=8 or x in [2,10]... optimum:
  // put everything on the cheaper x: x=10 minus... x+y>=10, minimize
  // 2x+3y -> all x: x=10, y=0, obj=20 (x unbounded above).
  Model m;
  const VarId x = m.add_continuous("x", 2, kInfinity);
  const VarId y = m.add_continuous("y", 0, kInfinity);
  m.add_constraint("cover", LinExpr().add(x, 1).add(y, 1), Rel::kGreaterEq,
                   10);
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 2).add(y, 3));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  Model m;
  const VarId x = m.add_continuous("x", 0, kInfinity);
  const VarId y = m.add_continuous("y", 0, kInfinity);
  m.add_constraint("eq", LinExpr().add(x, 1).add(y, 1), Rel::kEqual, 7);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 2).add(y, 1));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 7.0, 1e-7);
  EXPECT_NEAR(s.objective, 14.0, 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  Model m;
  const VarId x = m.add_continuous("x", 0, 5);
  m.add_constraint("lo", LinExpr().add(x, 1), Rel::kGreaterEq, 10);
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 1));
  EXPECT_EQ(SimplexSolver().solve_relaxation(m).status,
            SolveStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Model m;
  const VarId x = m.add_continuous("x", 0, kInfinity);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1.0));
  EXPECT_EQ(SimplexSolver().solve_relaxation(m).status,
            SolveStatus::kUnbounded);
}

TEST(Simplex, NonZeroLowerBoundsShifted) {
  Model m;
  const VarId x = m.add_continuous("x", 3, 8);
  const VarId y = m.add_continuous("y", 1, 4);
  m.add_constraint("c", LinExpr().add(x, 1).add(y, 1), Rel::kLessEq, 9);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1).add(y, 2));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // y at 4, then x at 5.
  EXPECT_NEAR(s.value(y), 4.0, 1e-7);
  EXPECT_NEAR(s.value(x), 5.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x - y <= -2 with 0 <= x,y <= 10: feasible; max x -> x = 8 at y = 10.
  Model m;
  const VarId x = m.add_continuous("x", 0, 10);
  const VarId y = m.add_continuous("y", 0, 10);
  m.add_constraint("c", LinExpr().add(x, 1).add(y, -1), Rel::kLessEq, -2);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 8.0, 1e-7);
}

TEST(Simplex, UpperBoundFlipPath) {
  // Optimum requires a nonbasic variable at its upper bound.
  Model m;
  const VarId x = m.add_continuous("x", 0, 3);
  const VarId y = m.add_continuous("y", 0, 3);
  m.add_constraint("c", LinExpr().add(x, 1).add(y, 1), Rel::kLessEq, 4);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 5).add(y, 4));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 3.0, 1e-7);
  EXPECT_NEAR(s.value(y), 1.0, 1e-7);
  EXPECT_NEAR(s.objective, 19.0, 1e-7);
}

TEST(Simplex, FixedVariableViaEqualBounds) {
  Model m;
  const VarId x = m.add_continuous("x", 2, 2);
  const VarId y = m.add_continuous("y", 0, 10);
  m.add_constraint("c", LinExpr().add(x, 1).add(y, 1), Rel::kLessEq, 6);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1).add(y, 1));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 2.0, 1e-9);
  EXPECT_NEAR(s.value(y), 4.0, 1e-7);
}

TEST(Simplex, BoundOverridesRespected) {
  Model m;
  const VarId x = m.add_binary("x");
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1.0));
  std::vector<double> lo{1.0}, hi{1.0};
  const Solution s = SimplexSolver().solve_relaxation(m, lo, hi);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 1.0, 1e-9);
}

TEST(Simplex, ConstraintWithConstantTerm) {
  // (x + 3) <= 5 expressed via expr constant.
  Model m;
  const VarId x = m.add_continuous("x", 0, kInfinity);
  m.add_constraint("c", LinExpr().add(x, 1).add_constant(3), Rel::kLessEq, 5);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 2.0, 1e-9);
}

TEST(Simplex, ObjectiveConstantCarried) {
  Model m;
  const VarId x = m.add_continuous("x", 0, 1);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1).add_constant(100));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 101.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints at the same vertex (degeneracy stress).
  Model m;
  const VarId x = m.add_continuous("x", 0, kInfinity);
  const VarId y = m.add_continuous("y", 0, kInfinity);
  for (int i = 0; i < 6; ++i) {
    m.add_constraint("r" + std::to_string(i),
                     LinExpr().add(x, 1.0 + i * 0.0).add(y, 1.0),
                     Rel::kLessEq, 10);
  }
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1).add(y, 1));
  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-7);
}

/// Randomized LPs verified against feasibility + weak-duality style checks:
/// the reported optimum must be feasible and no trivial improvement may
/// exist (we verify against a dense grid of random feasible points).
class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, OptimalBeatsRandomFeasiblePoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  Model m;
  const int nv = 4;
  std::vector<VarId> vars;
  std::vector<double> c(nv);
  for (int j = 0; j < nv; ++j) {
    vars.push_back(m.add_continuous("x" + std::to_string(j), 0, 5));
    c[j] = rng.next_unit() * 4.0 - 1.0;
  }
  const int nc = 3;
  std::vector<std::vector<double>> a(nc, std::vector<double>(nv));
  std::vector<double> b(nc);
  for (int i = 0; i < nc; ++i) {
    LinExpr e;
    for (int j = 0; j < nv; ++j) {
      a[i][j] = rng.next_unit() * 2.0;  // nonnegative -> x=0 feasible
      e.add(vars[j], a[i][j]);
    }
    b[i] = 2.0 + rng.next_unit() * 8.0;
    m.add_constraint("c" + std::to_string(i), std::move(e), Rel::kLessEq,
                     b[i]);
  }
  LinExpr obj;
  for (int j = 0; j < nv; ++j) obj.add(vars[j], c[j]);
  m.set_objective(Sense::kMaximize, std::move(obj));

  const Solution s = SimplexSolver().solve_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  // Feasibility of the reported point.
  for (int i = 0; i < nc; ++i) {
    double lhs = 0;
    for (int j = 0; j < nv; ++j) lhs += a[i][j] * s.value(vars[j]);
    EXPECT_LE(lhs, b[i] + 1e-6);
  }
  for (int j = 0; j < nv; ++j) {
    EXPECT_GE(s.value(vars[j]), -1e-9);
    EXPECT_LE(s.value(vars[j]), 5.0 + 1e-9);
  }

  // No random feasible point may beat it.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(nv);
    for (int j = 0; j < nv; ++j) x[j] = rng.next_unit() * 5.0;
    bool feasible = true;
    for (int i = 0; i < nc && feasible; ++i) {
      double lhs = 0;
      for (int j = 0; j < nv; ++j) lhs += a[i][j] * x[j];
      feasible = lhs <= b[i];
    }
    if (!feasible) continue;
    double val = 0;
    for (int j = 0; j < nv; ++j) val += c[j] * x[j];
    EXPECT_LE(val, s.objective + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace casa::ilp

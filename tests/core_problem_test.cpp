#include <gtest/gtest.h>

#include "casa/core/problem.hpp"

namespace casa::core {
namespace {

/// Builds a conflict graph directly from edge triples.
conflict::ConflictGraph make_graph(
    std::size_t nodes, std::vector<std::uint64_t> fetches,
    std::vector<conflict::Edge> edges) {
  std::vector<std::uint64_t> cold(nodes, 0), hits(nodes, 0);
  for (std::size_t i = 0; i < nodes; ++i) hits[i] = fetches[i];
  for (const auto& e : edges) hits[e.from.index()] -= e.misses;
  return conflict::ConflictGraph(nodes, std::move(fetches), std::move(cold),
                                 std::move(hits), std::move(edges));
}

CasaProblem make_problem(const conflict::ConflictGraph& g,
                         std::vector<Bytes> sizes, Bytes cap) {
  CasaProblem p;
  p.graph = &g;
  p.sizes = std::move(sizes);
  p.capacity = cap;
  p.e_cache_hit = 1.0;
  p.e_cache_miss = 21.0;
  p.e_spm = 0.5;
  return p;
}

TEST(Presolve, LinearValuesFromFetches) {
  const auto g = make_graph(2, {1000, 500}, {});
  const CasaProblem p = make_problem(g, {64, 32}, 128);
  const SavingsProblem sp = presolve(p);
  ASSERT_EQ(sp.item_count(), 2u);
  EXPECT_DOUBLE_EQ(sp.value[0], 1000 * 0.5);
  EXPECT_DOUBLE_EQ(sp.value[1], 500 * 0.5);
  EXPECT_TRUE(sp.edges.empty());
}

TEST(Presolve, OversizedObjectFixedCached) {
  const auto g = make_graph(2, {1000, 500}, {});
  const CasaProblem p = make_problem(g, {256, 32}, 128);
  const SavingsProblem sp = presolve(p);
  ASSERT_EQ(sp.item_count(), 1u);
  EXPECT_EQ(sp.object_of[0], MemoryObjectId(1));
}

TEST(Presolve, SymmetricEdgesMerged) {
  const auto g = make_graph(
      2, {1000, 500},
      {{MemoryObjectId(0), MemoryObjectId(1), 10},
       {MemoryObjectId(1), MemoryObjectId(0), 5}});
  const CasaProblem p = make_problem(g, {64, 32}, 128);
  const SavingsProblem sp = presolve(p);
  ASSERT_EQ(sp.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(sp.edges[0].weight, 15 * 20.0);  // (m_ij+m_ji)*(21-1)
}

TEST(Presolve, SelfEdgeFoldsIntoLinearTerm) {
  const auto g = make_graph(1, {1000},
                            {{MemoryObjectId(0), MemoryObjectId(0), 7}});
  const CasaProblem p = make_problem(g, {64}, 128);
  const SavingsProblem sp = presolve(p);
  EXPECT_TRUE(sp.edges.empty());
  EXPECT_DOUBLE_EQ(sp.value[0], 1000 * 0.5 + 7 * 20.0);
}

TEST(Presolve, EdgeToFixedEndpointFoldsOntoFreeOne) {
  const auto g = make_graph(
      2, {1000, 500},
      {{MemoryObjectId(0), MemoryObjectId(1), 10}});  // 0 misses due to 1
  // Object 0 is oversized -> fixed cached; placing 1 still saves the edge.
  const CasaProblem p = make_problem(g, {999, 32}, 128);
  const SavingsProblem sp = presolve(p);
  ASSERT_EQ(sp.item_count(), 1u);
  EXPECT_DOUBLE_EQ(sp.value[0], 500 * 0.5 + 10 * 20.0);
}

TEST(Presolve, BothEndpointsFixedIsConstant) {
  const auto g = make_graph(
      2, {1000, 500}, {{MemoryObjectId(0), MemoryObjectId(1), 10}});
  const CasaProblem p = make_problem(g, {999, 999}, 128);
  const SavingsProblem sp = presolve(p);
  EXPECT_EQ(sp.item_count(), 0u);
  EXPECT_TRUE(sp.edges.empty());
  // All-cached energy still accounts for the unavoidable conflict.
  EXPECT_DOUBLE_EQ(sp.all_cached_energy, 1500 * 1.0 + 10 * 20.0);
}

TEST(SavingsProblem, SavingForCoversEdgesOnce) {
  const auto g = make_graph(
      2, {100, 100},
      {{MemoryObjectId(0), MemoryObjectId(1), 10},
       {MemoryObjectId(1), MemoryObjectId(0), 10}});
  const CasaProblem p = make_problem(g, {32, 32}, 64);
  const SavingsProblem sp = presolve(p);

  std::vector<bool> none{false, false}, one{true, false}, both{true, true};
  EXPECT_DOUBLE_EQ(sp.saving_for(none), 0.0);
  EXPECT_DOUBLE_EQ(sp.saving_for(one), 100 * 0.5 + 20 * 20.0);
  EXPECT_DOUBLE_EQ(sp.saving_for(both), 2 * 100 * 0.5 + 20 * 20.0);
}

TEST(SavingsProblem, EnergyForIsComplementOfSaving) {
  const auto g = make_graph(
      2, {100, 100}, {{MemoryObjectId(0), MemoryObjectId(1), 10}});
  const CasaProblem p = make_problem(g, {32, 32}, 64);
  const SavingsProblem sp = presolve(p);
  const std::vector<bool> choice{true, false};
  EXPECT_DOUBLE_EQ(sp.energy_for(choice),
                   sp.all_cached_energy - sp.saving_for(choice));
}

TEST(SavingsProblem, AllCachedEnergyMatchesPaperModel) {
  const auto g = make_graph(
      2, {100, 200}, {{MemoryObjectId(0), MemoryObjectId(1), 10}});
  const CasaProblem p = make_problem(g, {32, 32}, 64);
  const SavingsProblem sp = presolve(p);
  // sum f_i * E_hit + sum m_ij * (E_miss - E_hit)
  EXPECT_DOUBLE_EQ(sp.all_cached_energy, 300 * 1.0 + 10 * 20.0);
}

TEST(ExpandChoice, MapsItemsBackToObjects) {
  const auto g = make_graph(3, {100, 200, 300}, {});
  const CasaProblem p = make_problem(g, {999, 32, 32}, 64);
  const SavingsProblem sp = presolve(p);
  ASSERT_EQ(sp.item_count(), 2u);
  const std::vector<bool> chosen{false, true};
  const std::vector<bool> on_spm = expand_choice(p, sp, chosen);
  EXPECT_FALSE(on_spm[0]);
  EXPECT_FALSE(on_spm[1]);
  EXPECT_TRUE(on_spm[2]);
}

TEST(CasaProblem, ValidationCatchesBadEnergies) {
  const auto g = make_graph(1, {100}, {});
  CasaProblem p = make_problem(g, {32}, 64);
  p.e_spm = 2.0;  // SPM worse than cache hit
  EXPECT_THROW(p.validate(), PreconditionError);
  p = make_problem(g, {32}, 64);
  p.e_cache_miss = 0.5;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(CasaProblem, ValidationCatchesSizeMismatch) {
  const auto g = make_graph(2, {100, 100}, {});
  CasaProblem p = make_problem(g, {32}, 64);
  EXPECT_THROW(p.validate(), PreconditionError);
}

}  // namespace
}  // namespace casa::core

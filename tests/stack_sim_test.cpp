// StackSimulator oracle suite.
//
// The one-pass engine's whole value is exactness: its counters must be
// bit-identical to replaying the same access sequence through a fresh
// cachesim::Cache per configuration. The suite holds that equality across
// set counts {1..64} x associativities {1,2,4,8} x all three deterministic
// replacement policies on every bundled workload's compiled fetch stream
// (LRU via the stack engine, FIFO/round-robin via the fallback bank), plus
// synthetic streams that stress the corner cases the workloads may miss.
#include <gtest/gtest.h>

#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/cachesim/stack_sim.hpp"
#include "casa/support/error.hpp"
#include "casa/support/rng.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::cachesim {
namespace {

struct LineAccess {
  Addr addr = 0;
  std::uint32_t words = 1;
};

StackCounters replay_cache(const CacheConfig& cfg,
                           const std::vector<LineAccess>& runs) {
  Cache cache(cfg);
  for (const LineAccess& r : runs) cache.access_line(r.addr, r.words);
  return StackCounters{cache.hits(), cache.misses(), cache.evictions()};
}

/// Asserts stack == per-config Cache for every grid point of `family`.
void expect_oracle_match(const ConfigFamily& family,
                         const std::vector<LineAccess>& runs,
                         const char* label) {
  StackSimulator sim(family);
  for (const LineAccess& r : runs) sim.access_line(r.addr, r.words);
  for (const CacheConfig& cfg : family.configs) {
    const StackCounters expected = replay_cache(cfg, runs);
    const StackCounters got = sim.counters(cfg);
    EXPECT_EQ(got, expected)
        << label << ": sets=" << cfg.sets() << " assoc=" << cfg.associativity
        << " policy=" << to_string(cfg.policy) << " (hits " << got.hits
        << " vs " << expected.hits << ", misses " << got.misses << " vs "
        << expected.misses << ", evictions " << got.evictions << " vs "
        << expected.evictions << ")";
  }
}

ConfigFamily paper_family(ReplacementPolicy policy) {
  // Set counts {1..64} x associativities {1,2,4,8}: 16-byte lines give
  // capacities from 16 B up to 8 KiB — brackets every paper configuration.
  ConfigFamily fam;
  fam.line_size = 16;
  fam.policy = policy;
  for (unsigned sets = 1; sets <= 64; sets *= 2) {
    for (const unsigned assoc : {1u, 2u, 4u, 8u}) {
      CacheConfig cfg;
      cfg.line_size = fam.line_size;
      cfg.associativity = assoc;
      cfg.policy = policy;
      cfg.size = static_cast<Bytes>(sets) * assoc * fam.line_size;
      fam.configs.push_back(cfg);
    }
  }
  return fam;
}

/// The workload's dynamic fetch stream at line granularity: compiled
/// stream runs in walk order (exactly what the sweep planner feeds).
std::vector<LineAccess> workload_runs(const std::string& name, Bytes line_size) {
  const prog::Program program = workloads::by_name(name);
  const trace::ExecutionResult exec = trace::Executor::run(program);
  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = line_size;
  topt.max_trace_size = 512;
  const traceopt::TraceProgram tp =
      traceopt::form_traces(program, exec.profile, topt);
  const traceopt::Layout layout = traceopt::layout_all(tp);
  const trace::CompiledStream stream =
      traceopt::compile_fetch_stream(tp, layout, line_size);
  std::vector<LineAccess> runs;
  for (const BasicBlockId bb : exec.walk.seq) {
    for (const trace::LineRun& r : stream.runs(bb)) {
      runs.push_back(LineAccess{r.addr, r.words});
    }
  }
  return runs;
}

/// Synthetic mostly-sequential fetch stream with jumps (full-line runs
/// interleaved with word-granular stragglers).
std::vector<LineAccess> synthetic_runs(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<LineAccess> runs;
  runs.reserve(count);
  Addr pc = 0;
  while (runs.size() < count) {
    if (rng.next_bool(0.15)) pc = rng.next_below(8 * 1024) & ~Addr{3};
    const Addr line_end = (pc | 15) + 1;
    const std::uint32_t words_left =
        static_cast<std::uint32_t>((line_end - pc) / kWordBytes);
    const std::uint32_t words =
        1 + static_cast<std::uint32_t>(rng.next_below(words_left));
    runs.push_back(LineAccess{pc, words});
    pc += static_cast<Addr>(words) * kWordBytes;
  }
  return runs;
}

TEST(ConfigFamily, GridEnumeratesTheFullProduct) {
  const ConfigFamily fam = ConfigFamily::grid(16, 8, 4);
  EXPECT_EQ(fam.configs.size(), 4u * 3u);  // sets {1,2,4,8} x assoc {1,2,4}
  EXPECT_EQ(fam.max_sets(), 8u);
  EXPECT_EQ(fam.max_associativity(), 4u);
  fam.validate();
}

TEST(ConfigFamily, ValidateRejectsMixedLineSizeOrPolicy) {
  ConfigFamily fam = ConfigFamily::grid(16, 4, 2);
  fam.configs[0].line_size = 32;
  fam.configs[0].size = 32 * 1;  // keep the config itself valid
  EXPECT_THROW(fam.validate(), PreconditionError);

  ConfigFamily fam2 = ConfigFamily::grid(16, 4, 2);
  fam2.configs[1].policy = ReplacementPolicy::kFifo;
  EXPECT_THROW(fam2.validate(), PreconditionError);
}

TEST(StackSimulator, OnePassOnlyForLru) {
  EXPECT_TRUE(StackSimulator(ConfigFamily::grid(16, 4, 2)).one_pass());
  EXPECT_FALSE(StackSimulator(ConfigFamily::grid(
                                  16, 4, 2, ReplacementPolicy::kFifo))
                   .one_pass());
  EXPECT_FALSE(StackSimulator(ConfigFamily::grid(
                                  16, 4, 2, ReplacementPolicy::kRoundRobin))
                   .one_pass());
}

TEST(StackSimulator, RejectsForeignLineSizeOrPolicy) {
  StackSimulator sim(ConfigFamily::grid(16, 4, 2));
  CacheConfig other;
  other.line_size = 32;
  EXPECT_THROW(sim.counters(other), PreconditionError);
  CacheConfig fifo;
  fifo.line_size = 16;
  fifo.policy = ReplacementPolicy::kFifo;
  EXPECT_THROW(sim.counters(fifo), PreconditionError);
  CacheConfig too_big;
  too_big.line_size = 16;
  too_big.size = 2_KiB;  // 128 sets > family max of 4
  EXPECT_THROW(sim.counters(too_big), PreconditionError);
}

TEST(StackSimulator, SyntheticStreamsMatchTheCacheOracle) {
  for (const std::uint64_t seed : {1u, 7u, 1234u}) {
    const std::vector<LineAccess> runs = synthetic_runs(seed, 20'000);
    expect_oracle_match(paper_family(ReplacementPolicy::kLru), runs, "lru");
    expect_oracle_match(paper_family(ReplacementPolicy::kFifo), runs, "fifo");
    expect_oracle_match(paper_family(ReplacementPolicy::kRoundRobin), runs,
                        "rr");
  }
}

TEST(StackSimulator, RandomPolicyFallbackMatchesSeededCaches) {
  // kRandom is only reproducible through the shared seed; the fallback bank
  // must hand each member cache the exact seed a standalone simulation of
  // that config would use.
  const std::vector<LineAccess> runs = synthetic_runs(99, 5'000);
  ConfigFamily fam = ConfigFamily::grid(16, 8, 4, ReplacementPolicy::kRandom);
  StackSimulator sim(fam, /*seed=*/42);
  for (const LineAccess& r : runs) sim.access_line(r.addr, r.words);
  for (const CacheConfig& cfg : fam.configs) {
    Cache cache(cfg, /*seed=*/42);
    for (const LineAccess& r : runs) cache.access_line(r.addr, r.words);
    EXPECT_EQ(sim.counters(cfg),
              (StackCounters{cache.hits(), cache.misses(), cache.evictions()}))
        << "sets=" << cfg.sets() << " assoc=" << cfg.associativity;
  }
}

TEST(StackSimulator, WordAndLineGranularFeedsAgree) {
  // Feeding a run as one access_line call or word-by-word access() calls
  // must produce identical counters — the same equivalence Cache holds.
  const std::vector<LineAccess> runs = synthetic_runs(5, 10'000);
  const ConfigFamily fam = ConfigFamily::grid(16, 16, 4);
  StackSimulator by_line(fam);
  StackSimulator by_word(fam);
  for (const LineAccess& r : runs) {
    by_line.access_line(r.addr, r.words);
    for (std::uint32_t w = 0; w < r.words; ++w) {
      by_word.access(r.addr + static_cast<Addr>(w) * kWordBytes);
    }
  }
  for (const CacheConfig& cfg : fam.configs) {
    const StackCounters a = by_line.counters(cfg);
    const StackCounters b = by_word.counters(cfg);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.evictions, b.evictions);
    // Word-granular feeding issues the same word count, so hits agree too.
    EXPECT_EQ(a.hits, b.hits);
  }
}

/// Per-workload oracle over the real fetch streams. One TEST per workload
/// keeps failures attributable and lets ctest parallelize the suite.
class WorkloadOracle : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadOracle, AllPoliciesBitIdentical) {
  const std::vector<LineAccess> runs = workload_runs(GetParam(), 16);
  ASSERT_FALSE(runs.empty());
  expect_oracle_match(paper_family(ReplacementPolicy::kLru), runs, "lru");
  expect_oracle_match(paper_family(ReplacementPolicy::kFifo), runs, "fifo");
  expect_oracle_match(paper_family(ReplacementPolicy::kRoundRobin), runs,
                      "rr");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadOracle,
                         ::testing::ValuesIn(workloads::names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace casa::cachesim

#include <gtest/gtest.h>

#include "casa/memsim/hierarchy.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/wcet/block_costs.hpp"
#include "casa/wcet/wcet.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::wcet {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

std::vector<std::uint64_t> unit_costs(const prog::Program& p) {
  std::vector<std::uint64_t> c(p.block_count());
  for (const auto& b : p.blocks()) c[b.id.index()] = b.size / kWordBytes;
  return c;
}

TEST(Structural, StraightLine) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) { f.code(16, "a").code(32, "b"); });
  const prog::Program p = b.build();
  EXPECT_EQ(structural_wcet(p, unit_costs(p)), 4u + 8u);
}

TEST(Structural, LoopMultipliesBody) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(10, [](FunctionScope& l) { l.code(40, "body"); });
  });
  const prog::Program p = b.build();
  // header 2w + 10 * (body 10w + latch 2w)
  EXPECT_EQ(structural_wcet(p, unit_costs(p)), 2u + 10u * 12u);
}

TEST(Structural, VariableTripUsesMax) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop_between(2, 7, [](FunctionScope& l) { l.code(40, "body"); });
  });
  const prog::Program p = b.build();
  EXPECT_EQ(structural_wcet(p, unit_costs(p)), 2u + 7u * 12u);
}

TEST(Structural, BranchTakesWorstArm) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.if_else(
        0.5, [](FunctionScope& t) { t.code(16, "small"); },
        [](FunctionScope& e) { e.code(160, "big"); });
  });
  const prog::Program p = b.build();
  // cond 2w + max(4, 40)
  EXPECT_EQ(structural_wcet(p, unit_costs(p)), 2u + 40u);
}

TEST(Structural, SwitchTakesWorstArm) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.switch_of({0.9, 0.1}, {[](FunctionScope& a) { a.code(8, "s"); },
                             [](FunctionScope& a) { a.code(80, "l"); }});
  });
  const prog::Program p = b.build();
  // selector 3w + max(2, 20)
  EXPECT_EQ(structural_wcet(p, unit_costs(p)), 3u + 20u);
}

TEST(Structural, CallsFoldCalleeBound) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(5, [](FunctionScope& l) { l.call("helper"); });
  });
  b.function("helper", [](FunctionScope& f) { f.code(40, "h"); });
  const prog::Program p = b.build();
  // header 2 + 5 * (site 2 + helper 10 + latch 2)
  EXPECT_EQ(structural_wcet(p, unit_costs(p)), 2u + 5u * 14u);
}

TEST(Ipet, MatchesStructuralOnHandBuiltPrograms) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.code(16, "pre");
    f.loop(8, [](FunctionScope& l) {
      l.if_else(
          0.5, [](FunctionScope& t) { t.code(64, "t"); },
          [](FunctionScope& e) { e.code(16, "e"); });
      l.call("leaf");
    });
    f.switch_of({1.0, 1.0, 1.0},
                {[](FunctionScope& a) { a.code(8, "a0"); },
                 [](FunctionScope& a) { a.code(24, "a1"); },
                 [](FunctionScope& a) { a.code(16, "a2"); }});
  });
  b.function("leaf", [](FunctionScope& f) {
    f.loop_between(1, 3, [](FunctionScope& l) { l.code(20, "x"); });
  });
  const prog::Program p = b.build();
  const auto costs = unit_costs(p);
  EXPECT_EQ(ipet_wcet(p, costs), structural_wcet(p, costs));
}

class WorkloadDifferentialTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadDifferentialTest, IpetEqualsStructural) {
  // Differential oracle on real-sized programs: the LP path enumeration and
  // the AST recursion must produce the same bound.
  const prog::Program p = workloads::by_name(GetParam());
  const auto costs = unit_costs(p);
  EXPECT_EQ(ipet_wcet(p, costs), structural_wcet(p, costs));
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadDifferentialTest,
                         ::testing::Values("adpcm", "g721", "epic",
                                           "pegwit"));

TEST(Wcet, BoundDominatesObservedExecution) {
  // Soundness: the always-miss WCET bound must exceed the cycles of any
  // simulated run (which enjoys cache hits).
  const prog::Program p = workloads::make_adpcm();
  const auto exec = trace::Executor::run(p);
  traceopt::TraceFormationOptions topt;
  topt.max_trace_size = 128;
  const auto tp = traceopt::form_traces(p, exec.profile, topt);
  const auto layout = traceopt::layout_all(tp);
  const auto cache = workloads::paper_cache_for("adpcm");
  const auto energies = energy::EnergyTable::build(cache, 128, 0, 0);

  const std::vector<bool> none(tp.object_count(), false);
  const memsim::SimReport sim = memsim::simulate_spm_system(
      tp, layout, exec.walk, none, cache, energies);

  BlockCostOptions opt;
  opt.cache = cache;
  const auto costs = block_cycle_costs(tp, layout, none, opt);
  EXPECT_GE(structural_wcet(p, costs), sim.counters.cycles);
}

TEST(Wcet, ScratchpadTightensTheBound) {
  // The paper's motivation: SPM-resident code has deterministic latency, so
  // a sound bound drops when hot objects move to the scratchpad.
  const prog::Program p = workloads::make_adpcm();
  const auto exec = trace::Executor::run(p);
  traceopt::TraceFormationOptions topt;
  topt.max_trace_size = 256;
  const auto tp = traceopt::form_traces(p, exec.profile, topt);
  const auto layout = traceopt::layout_all(tp);
  const auto cache = workloads::paper_cache_for("adpcm");

  BlockCostOptions opt;
  opt.cache = cache;
  const std::vector<bool> none(tp.object_count(), false);
  const auto base = block_cycle_costs(tp, layout, none, opt);

  std::vector<bool> all(tp.object_count(), true);
  const auto spm = block_cycle_costs(tp, layout, all, opt);

  EXPECT_LT(structural_wcet(p, spm), structural_wcet(p, base));
}

TEST(Wcet, AlwaysHitIsFloor) {
  const prog::Program p = workloads::make_epic();
  const auto exec = trace::Executor::run(p);
  traceopt::TraceFormationOptions topt;
  const auto tp = traceopt::form_traces(p, exec.profile, topt);
  const auto layout = traceopt::layout_all(tp);
  BlockCostOptions opt;
  opt.cache = workloads::paper_cache_for("epic");
  const std::vector<bool> none(tp.object_count(), false);
  opt.assumption = CacheAssumption::kAlwaysHit;
  const auto hit = block_cycle_costs(tp, layout, none, opt);
  opt.assumption = CacheAssumption::kAlwaysMiss;
  const auto miss = block_cycle_costs(tp, layout, none, opt);
  EXPECT_LT(structural_wcet(p, hit), structural_wcet(p, miss));
}

TEST(BlockCosts, SpmCostIsPerWord) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) { f.code(64, "x"); });
  const prog::Program p = b.build();
  const auto exec = trace::Executor::run(p);
  const auto tp = traceopt::form_traces(p, exec.profile, {});
  const auto layout = traceopt::layout_all(tp);
  BlockCostOptions opt;
  opt.cache.size = 128;
  opt.cache.line_size = 16;
  const std::vector<bool> all(tp.object_count(), true);
  const auto costs = block_cycle_costs(tp, layout, all, opt);
  EXPECT_EQ(costs[0], 16u * opt.latency.spm_access);
}

TEST(BlockCosts, AlwaysMissChargesPerLine) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) { f.code(64, "x"); });
  const prog::Program p = b.build();
  const auto exec = trace::Executor::run(p);
  const auto tp = traceopt::form_traces(p, exec.profile, {});
  const auto layout = traceopt::layout_all(tp);
  BlockCostOptions opt;
  opt.cache.size = 128;
  opt.cache.line_size = 16;
  const std::vector<bool> none(tp.object_count(), false);
  const auto costs = block_cycle_costs(tp, layout, none, opt);
  const memsim::LatencyParams lat;
  // 16 words hit cost + 4 lines * (base + 4 words transfer)
  EXPECT_EQ(costs[0], 16u * lat.cache_hit +
                          4u * (lat.miss_base_penalty +
                                4u * lat.miss_per_word));
}

TEST(Wcet, RejectsRecursion) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) { f.call("a"); });
  b.function("a", [](FunctionScope& f) {
    f.code(8, "x");
    f.if_then(0.1, [](FunctionScope& t) { t.call("a"); });
  });
  const prog::Program p = b.build();
  std::vector<std::uint64_t> costs(p.block_count(), 1);
  EXPECT_THROW(structural_wcet(p, costs), PreconditionError);
  EXPECT_THROW(ipet_wcet(p, costs), PreconditionError);
}

}  // namespace
}  // namespace casa::wcet

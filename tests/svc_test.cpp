// Evaluation-service suite: the content-addressed result cache and the
// request scheduler behind casa_serve.
//
// Key tests pin the canonicalization contract (two jobs share a key iff
// the pipeline provably produces bit-identical Outcomes: flow-ignored
// fields are dropped, profiling knobs and workload split the space).
// Cache tests pin LRU eviction under the byte budget. Service tests pin
// single-flight coalescing (deterministically via duplicate batches,
// concurrently via 8 threads against a delayed compute), persistence
// round-trips with corrupted-artifact degradation, admission/cache-load
// fault containment, backpressure rejection, and sampled-hit
// verification catching a poisoned cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <latch>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/fault/fault.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/error.hpp"
#include "casa/svc/protocol.hpp"
#include "casa/svc/result_cache.hpp"
#include "casa/svc/service.hpp"

namespace casa {
namespace {

using report::FlowKind;
using report::JobStatus;
using Job = report::Workbench::Job;
namespace sites = fault::site_names;

constexpr const char* kWorkload = "adpcm";

cachesim::CacheConfig small_cache() {
  cachesim::CacheConfig c;
  c.size = 1024;
  c.line_size = 16;
  c.associativity = 2;
  return c;
}

svc::KeyContext ctx_for(const std::string& workload = kWorkload) {
  svc::KeyContext ctx;
  ctx.workload = workload;
  return ctx;
}

/// Armed specs are process-global: every service test disarms on the way
/// out so a failure cannot leak an armed spec into later tests.
class SvcFaultTest : public ::testing::Test {
 protected:
  ~SvcFaultTest() override { fault::disarm(); }
};

std::string spec_for(std::string_view site, const std::string& rest) {
  return "site=" + std::string(site) + "," + rest;
}

// ---------------------------------------------------------------- keys --

TEST(ResultKeyTest, EqualJobsShareAKey) {
  const auto cache = small_cache();
  EXPECT_EQ(svc::result_key(ctx_for(), Job::casa_job(cache, 512)),
            svc::result_key(ctx_for(), Job::casa_job(cache, 512)));
  EXPECT_TRUE(svc::result_key(ctx_for(), Job::casa_job(cache, 512))
                  .starts_with("casa-result-key v1|"));
}

TEST(ResultKeyTest, EveryMeaningfulFieldSplitsTheKeySpace) {
  const auto cache = small_cache();
  const std::string base = svc::result_key(ctx_for(), Job::casa_job(cache, 512));
  EXPECT_NE(base, svc::result_key(ctx_for(), Job::casa_job(cache, 256)));
  EXPECT_NE(base, svc::result_key(ctx_for(), Job::steinke_job(cache, 512)));
  auto other_cache = cache;
  other_cache.size = 2048;
  EXPECT_NE(base, svc::result_key(ctx_for(), Job::casa_job(other_cache, 512)));
  core::CasaOptions greedy;
  greedy.engine = core::CasaEngine::kGreedy;
  EXPECT_NE(base,
            svc::result_key(ctx_for(), Job::casa_job(cache, 512, greedy)));
  EXPECT_NE(base, svc::result_key(ctx_for("g721"), Job::casa_job(cache, 512)));
  auto seeded = ctx_for();
  seeded.exec_seed = 7;
  EXPECT_NE(base, svc::result_key(seeded, Job::casa_job(cache, 512)));
  auto fused = ctx_for();
  fused.fuse_ratio = 0.25;
  EXPECT_NE(base, svc::result_key(fused, Job::casa_job(cache, 512)));
}

TEST(ResultKeyTest, FlowIgnoredFieldsAreNormalizedAway) {
  const auto cache = small_cache();

  // cache-only ignores capacity, regions, and every solver option.
  Job cache_only = Job::cache_only_job(cache);
  Job decorated = cache_only;
  decorated.size = 4096;
  decorated.max_regions = 9;
  decorated.casa.engine = core::CasaEngine::kGreedy;
  EXPECT_EQ(svc::result_key(ctx_for(), cache_only),
            svc::result_key(ctx_for(), decorated));

  // Steinke ignores solver options and the region budget.
  Job steinke = Job::steinke_job(cache, 512);
  Job steinke_decorated = steinke;
  steinke_decorated.max_regions = 9;
  steinke_decorated.casa.max_nodes = 1;
  EXPECT_EQ(svc::result_key(ctx_for(), steinke),
            svc::result_key(ctx_for(), steinke_decorated));

  // The loop-cache flow keeps its region budget but ignores solver options.
  Job lc = Job::loopcache_job(cache, 512, 4);
  Job lc_decorated = lc;
  lc_decorated.casa.ilp_threads = 5;
  EXPECT_EQ(svc::result_key(ctx_for(), lc),
            svc::result_key(ctx_for(), lc_decorated));
  EXPECT_NE(svc::result_key(ctx_for(), lc),
            svc::result_key(ctx_for(), Job::loopcache_job(cache, 512, 5)));

  // Steinke-move profiling only shapes the Steinke flow's key.
  auto moves_off = ctx_for();
  moves_off.steinke_moves = false;
  EXPECT_NE(svc::result_key(ctx_for(), steinke),
            svc::result_key(moves_off, steinke));
}

TEST(ResultKeyTest, DigestIsStableHexAndCollisionFreeHere) {
  const std::string a = svc::result_key(ctx_for(), Job::casa_job(small_cache(), 512));
  const std::string b = svc::result_key(ctx_for(), Job::casa_job(small_cache(), 256));
  EXPECT_EQ(svc::key_digest(a), svc::key_digest(a));
  EXPECT_NE(svc::key_digest(a), svc::key_digest(b));
  EXPECT_EQ(svc::key_digest(a).size(), 16u);
  EXPECT_EQ(svc::key_digest(a).find_first_not_of("0123456789abcdef"),
            std::string::npos);
}

// --------------------------------------------------------------- cache --

svc::CachedResult entry_of(std::size_t artifact_bytes) {
  svc::CachedResult value;
  value.artifact.assign(artifact_bytes, 'x');
  return value;
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Keys are 1 byte; artifacts 40 — two entries fit in 100 bytes, not 3.
  svc::ResultCache cache(100);
  cache.insert("a", entry_of(40));
  cache.insert("b", entry_of(40));
  EXPECT_EQ(cache.stats().entries, 2u);

  ASSERT_NE(cache.find("a"), nullptr);  // refresh: "b" is now the LRU entry
  cache.insert("c", entry_of(40));
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().bytes, 82u);
}

TEST(ResultCacheTest, NewestEntrySurvivesEvenOverBudget) {
  svc::ResultCache cache(10);
  cache.insert("big", entry_of(500));
  EXPECT_NE(cache.find("big"), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.insert("next", entry_of(500));  // evicts "big", keeps "next"
  EXPECT_EQ(cache.find("big"), nullptr);
  EXPECT_NE(cache.find("next"), nullptr);
}

TEST(ResultCacheTest, ReplaceAndClear) {
  svc::ResultCache cache(1000);
  cache.insert("k", entry_of(10));
  cache.insert("k", entry_of(20));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.find("k")->artifact.size(), 20u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.find("k"), nullptr);
}

// ------------------------------------------------------------- service --

TEST(EvalServiceTest, MissThenHitReturnsBitIdenticalResult) {
  svc::EvalService service;
  const Job job = Job::steinke_job(small_cache(), 256);
  const svc::EvalResponse first = service.evaluate(kWorkload, job);
  ASSERT_TRUE(first.result.ok());
  EXPECT_EQ(first.provenance, svc::Provenance::kMiss);

  const svc::EvalResponse second = service.evaluate(kWorkload, job);
  ASSERT_TRUE(second.result.ok());
  EXPECT_EQ(second.provenance, svc::Provenance::kHit);
  EXPECT_TRUE(second.result.outcome == first.result.outcome);
  EXPECT_EQ(second.artifact, first.artifact);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.cache.entries, 1u);
}

TEST(EvalServiceTest, FlushColdStartsTheCache) {
  svc::EvalService service;
  const Job job = Job::steinke_job(small_cache(), 256);
  ASSERT_TRUE(service.evaluate(kWorkload, job).result.ok());
  service.flush();
  const svc::EvalResponse again = service.evaluate(kWorkload, job);
  EXPECT_EQ(again.provenance, svc::Provenance::kMiss);
  EXPECT_EQ(service.stats().misses, 2u);
}

TEST(EvalServiceTest, DuplicateJobsInOneBatchCoalesceDeterministically) {
  svc::EvalService service;
  const Job dup = Job::steinke_job(small_cache(), 256);
  const Job other = Job::steinke_job(small_cache(), 512);
  const std::vector<Job> jobs = {dup, dup, dup, other};
  const auto responses = service.evaluate_batch(kWorkload, jobs);
  ASSERT_EQ(responses.size(), 4u);
  for (const auto& r : responses) ASSERT_TRUE(r.result.ok());
  EXPECT_EQ(responses[0].provenance, svc::Provenance::kMiss);
  EXPECT_EQ(responses[1].provenance, svc::Provenance::kInflightJoin);
  EXPECT_EQ(responses[2].provenance, svc::Provenance::kInflightJoin);
  EXPECT_EQ(responses[3].provenance, svc::Provenance::kMiss);
  EXPECT_TRUE(responses[1].result.outcome == responses[0].result.outcome);
  EXPECT_EQ(responses[2].artifact, responses[0].artifact);

  const auto stats = service.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inflight_joins, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(SvcFaultTest, EightThreadsOneKeyComputeOnce) {
  // Delay the single compute 200ms so the seven followers provably arrive
  // while it is in flight and join instead of re-computing.
  fault::arm(fault::parse_spec(
      spec_for(sites::kSimFinish, "action=delay,delay_us=200000,count=1")));
  svc::EvalService service;
  const Job job = Job::steinke_job(small_cache(), 256);

  constexpr int kThreads = 8;
  std::latch start(kThreads);
  std::vector<svc::EvalResponse> responses(kThreads);
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        start.arrive_and_wait();
        responses[t] = service.evaluate(kWorkload, job);
      });
    }
  }

  for (const auto& r : responses) {
    ASSERT_TRUE(r.result.ok());
    EXPECT_TRUE(r.result.outcome == responses[0].result.outcome);
    EXPECT_EQ(r.artifact, responses[0].artifact);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.misses, 1u);  // single-flight: one computation total
  EXPECT_EQ(stats.hits + stats.inflight_joins, 7u);
  EXPECT_GE(stats.inflight_joins, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(EvalServiceTest, BackpressureRejectsWithRetryHint) {
  svc::ServiceOptions opt;
  opt.max_inflight = 0;  // every miss is over the admission limit
  opt.retry_after_ms = 7;
  svc::EvalService service(opt);
  const svc::EvalResponse resp =
      service.evaluate(kWorkload, Job::steinke_job(small_cache(), 256));
  EXPECT_TRUE(resp.rejected);
  EXPECT_EQ(resp.retry_after_ms, 7u);
  EXPECT_EQ(service.stats().rejections, 1u);
  EXPECT_EQ(service.stats().misses, 0u);
}

TEST(EvalServiceTest, UnknownWorkloadFailsTheResponseNotTheService) {
  svc::EvalService service;
  const svc::EvalResponse bad =
      service.evaluate("no_such_workload", Job::steinke_job(small_cache(), 256));
  EXPECT_FALSE(bad.result.ok());
  const svc::EvalResponse good =
      service.evaluate(kWorkload, Job::steinke_job(small_cache(), 256));
  EXPECT_TRUE(good.result.ok());
}

TEST(EvalServiceTest, PersistRoundTripServesAcrossServiceInstances) {
  const std::string dir = ::testing::TempDir() + "svc_persist_roundtrip";
  std::filesystem::remove_all(dir);
  svc::ServiceOptions opt;
  opt.persist_dir = dir;
  const Job job = Job::steinke_job(small_cache(), 256);

  svc::EvalService writer(opt);
  const svc::EvalResponse computed = writer.evaluate(kWorkload, job);
  ASSERT_TRUE(computed.result.ok());
  EXPECT_EQ(computed.provenance, svc::Provenance::kMiss);

  svc::EvalService reader(opt);  // fresh process-equivalent, warm disk
  const svc::EvalResponse loaded = reader.evaluate(kWorkload, job);
  ASSERT_TRUE(loaded.result.ok());
  EXPECT_EQ(loaded.provenance, svc::Provenance::kHit);
  EXPECT_TRUE(loaded.result.outcome == computed.result.outcome);
  EXPECT_EQ(loaded.artifact, computed.artifact);
  EXPECT_EQ(reader.stats().persist_loads, 1u);
  EXPECT_EQ(reader.stats().misses, 0u);
}

TEST(EvalServiceTest, CorruptedPersistedArtifactDegradesToRecompute) {
  const std::string dir = ::testing::TempDir() + "svc_persist_corrupt";
  std::filesystem::remove_all(dir);
  svc::ServiceOptions opt;
  opt.persist_dir = dir;
  const Job job = Job::steinke_job(small_cache(), 256);

  svc::EvalService writer(opt);
  const svc::EvalResponse computed = writer.evaluate(kWorkload, job);
  ASSERT_TRUE(computed.result.ok());

  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "{\"schema\":\"casa-result v1\", truncated";
  }

  svc::EvalService reader(opt);
  const svc::EvalResponse recomputed = reader.evaluate(kWorkload, job);
  ASSERT_TRUE(recomputed.result.ok());
  EXPECT_EQ(recomputed.provenance, svc::Provenance::kMiss);
  EXPECT_TRUE(recomputed.result.outcome == computed.result.outcome);
  EXPECT_EQ(reader.stats().persist_errors, 1u);
}

TEST(EvalServiceTest, StaleArtifactUnderAnotherKeysNameIsRejected) {
  const std::string dir = ::testing::TempDir() + "svc_persist_stale";
  std::filesystem::remove_all(dir);
  svc::ServiceOptions opt;
  opt.persist_dir = dir;
  const Job written = Job::steinke_job(small_cache(), 256);
  const Job wanted = Job::steinke_job(small_cache(), 512);

  svc::EvalService writer(opt);
  ASSERT_TRUE(writer.evaluate(kWorkload, written).result.ok());

  // Plant the size-256 artifact at the file name the size-512 key hashes
  // to — a digest collision / stale-file stand-in. The loader re-derives
  // the key from the parsed job and must refuse to serve it.
  const std::string written_path =
      dir + "/" +
      svc::key_digest(svc::result_key(ctx_for(), written)) + ".json";
  const std::string wanted_path =
      dir + "/" + svc::key_digest(svc::result_key(ctx_for(), wanted)) + ".json";
  std::filesystem::copy_file(written_path, wanted_path);

  svc::EvalService reader(opt);
  const svc::EvalResponse resp = reader.evaluate(kWorkload, wanted);
  ASSERT_TRUE(resp.result.ok());
  EXPECT_EQ(resp.provenance, svc::Provenance::kMiss);
  EXPECT_EQ(resp.result.outcome.spm_used, 512u);
  EXPECT_EQ(reader.stats().persist_errors, 1u);
}

TEST_F(SvcFaultTest, AdmissionFaultFailsTheRequestNotTheService) {
  fault::arm(
      fault::parse_spec(spec_for(sites::kSvcAdmit, "action=throw,count=1")));
  svc::EvalService service;
  const Job job = Job::steinke_job(small_cache(), 256);
  const svc::EvalResponse faulted = service.evaluate(kWorkload, job);
  EXPECT_FALSE(faulted.result.ok());
  EXPECT_EQ(faulted.result.error_kind, "fault");
  const svc::EvalResponse after = service.evaluate(kWorkload, job);
  EXPECT_TRUE(after.result.ok());
  EXPECT_EQ(after.provenance, svc::Provenance::kMiss);
}

TEST_F(SvcFaultTest, CacheLoadFaultDegradesToRecompute) {
  const std::string dir = ::testing::TempDir() + "svc_persist_fault";
  std::filesystem::remove_all(dir);
  svc::ServiceOptions opt;
  opt.persist_dir = dir;
  const Job job = Job::steinke_job(small_cache(), 256);
  svc::EvalService writer(opt);
  ASSERT_TRUE(writer.evaluate(kWorkload, job).result.ok());

  fault::arm(fault::parse_spec(
      spec_for(sites::kSvcCacheLoad, "action=throw,count=1")));
  svc::EvalService reader(opt);
  const svc::EvalResponse resp = reader.evaluate(kWorkload, job);
  ASSERT_TRUE(resp.result.ok());
  EXPECT_EQ(resp.provenance, svc::Provenance::kMiss);
  EXPECT_EQ(reader.stats().persist_errors, 1u);
  EXPECT_EQ(reader.stats().persist_loads, 0u);
}

TEST(EvalServiceTest, SampledHitVerificationPassesOnAnHonestCache) {
  svc::ServiceOptions opt;
  opt.verify_sample = 1;  // verify every hit
  svc::EvalService service(opt);
  const Job job = Job::steinke_job(small_cache(), 256);
  ASSERT_TRUE(service.evaluate(kWorkload, job).result.ok());
  const svc::EvalResponse hit = service.evaluate(kWorkload, job);
  ASSERT_TRUE(hit.result.ok());
  EXPECT_EQ(hit.provenance, svc::Provenance::kHit);
  EXPECT_EQ(service.stats().verified_hits, 1u);
}

TEST(EvalServiceTest, SampledHitVerificationCatchesAPoisonedCache) {
  const std::string dir = ::testing::TempDir() + "svc_persist_poison";
  std::filesystem::remove_all(dir);
  svc::ServiceOptions opt;
  opt.persist_dir = dir;
  const Job job = Job::steinke_job(small_cache(), 256);
  {
    svc::EvalService writer(opt);
    ASSERT_TRUE(writer.evaluate(kWorkload, job).result.ok());
  }

  // Tamper with one counter in the persisted artifact, keeping it a valid
  // casa-result v1 file for the same job: the load succeeds, but the
  // sampled-hit recomputation must flag the mismatch.
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = std::move(buf).str();
  }
  const std::string needle = "\"cycles\": ";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  const std::size_t digits = at + needle.size();
  std::size_t end = digits;
  while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end])) != 0) {
    ++end;
  }
  text.replace(digits, end - digits, "987654321");
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }

  opt.verify_sample = 1;
  svc::EvalService reader(opt);
  const svc::EvalResponse poisoned_load = reader.evaluate(kWorkload, job);
  // The persist load itself is not a sampled hit; it repopulates the
  // in-memory cache with the poisoned outcome.
  ASSERT_TRUE(poisoned_load.result.ok());
  EXPECT_EQ(poisoned_load.provenance, svc::Provenance::kHit);

  const svc::EvalResponse verified = reader.evaluate(kWorkload, job);
  EXPECT_EQ(verified.provenance, svc::Provenance::kHit);
  EXPECT_FALSE(verified.result.ok());
  EXPECT_EQ(verified.result.error_kind, "check");
  EXPECT_EQ(reader.stats().verified_hits, 0u);
}

// ------------------------------------------------------------ protocol --

TEST(ProtocolTest, ParsesEveryOp) {
  const svc::Request eval = svc::parse_request(
      R"({"op":"evaluate","workload":"fmult","job":{"kind":"steinke","size":256}})");
  EXPECT_EQ(eval.op, svc::Request::Op::kEvaluate);
  EXPECT_EQ(eval.workload, "fmult");
  ASSERT_EQ(eval.jobs.size(), 1u);
  EXPECT_EQ(eval.jobs[0].kind, FlowKind::kSteinke);
  EXPECT_EQ(eval.jobs[0].size, 256u);

  const svc::Request batch = svc::parse_request(
      R"({"op":"batch","workload":"fmult","jobs":[{"kind":"casa","size":512},{"kind":"cache_only"}]})");
  EXPECT_EQ(batch.op, svc::Request::Op::kBatch);
  ASSERT_EQ(batch.jobs.size(), 2u);
  EXPECT_EQ(batch.jobs[1].kind, FlowKind::kCacheOnly);

  const svc::Request sweep = svc::parse_request(
      R"({"op":"sweep","workload":"fmult","spm":[256,512],"flows":["casa","cache_only"]})");
  EXPECT_EQ(sweep.op, svc::Request::Op::kSweep);
  ASSERT_EQ(sweep.jobs.size(), 3u);  // casa x2 + cache_only x1

  EXPECT_EQ(svc::parse_request(R"({"op":"stats"})").op,
            svc::Request::Op::kStats);
  EXPECT_EQ(svc::parse_request(R"({"op":"flush"})").op,
            svc::Request::Op::kFlush);
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_THROW(svc::parse_request("not json"), Error);
  EXPECT_THROW(svc::parse_request(R"({"op":"bogus"})"), PreconditionError);
  EXPECT_THROW(svc::parse_request(R"({"op":"evaluate"})"), PreconditionError);
  EXPECT_THROW(
      svc::parse_request(R"({"op":"batch","workload":"fmult","jobs":[]})"),
      PreconditionError);
  EXPECT_THROW(
      svc::parse_request(
          R"({"op":"evaluate","workload":"fmult","job":{"kind":"warp"}})"),
      PreconditionError);
  EXPECT_THROW(
      svc::parse_request(
          R"({"op":"sweep","workload":"fmult","flows":["casa"]})"),
      PreconditionError);
}

TEST(ProtocolTest, WarmHitResponseIsByteIdenticalUpToProvenance) {
  svc::EvalService service;
  const Job job = Job::steinke_job(small_cache(), 256);
  const svc::EvalResponse miss = service.evaluate(kWorkload, job);
  const svc::EvalResponse hit = service.evaluate(kWorkload, job);
  ASSERT_TRUE(miss.result.ok());
  ASSERT_TRUE(hit.result.ok());

  std::ostringstream miss_line;
  std::ostringstream hit_line;
  svc::write_response_line(miss_line, 0, miss);
  svc::write_response_line(hit_line, 0, hit);
  std::string expected = std::move(miss_line).str();
  const std::string needle = "\"provenance\":\"miss\"";
  const std::size_t at = expected.find(needle);
  ASSERT_NE(at, std::string::npos);
  expected.replace(at, needle.size(), "\"provenance\":\"hit\"");
  EXPECT_EQ(std::move(hit_line).str(), expected);
}

}  // namespace
}  // namespace casa

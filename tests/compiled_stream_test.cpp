// Oracle tests for the line-granular compiled fetch stream.
//
// The compiled stream (trace::CompiledStream + Cache::access_line) claims
// bit-for-bit equivalence with the word-granular reference replay. These
// tests assert exactly that, end to end, over real workloads: identical
// conflict graphs (fetches / cold / hits / every edge), identical hierarchy
// counters, byte-identical energy totals, and identical two-level counters
// — across associativities, replacement policies (including Random with a
// fixed seed), and move-semantics layouts with unplaced objects.
#include <gtest/gtest.h>

#include "casa/cachesim/cache.hpp"
#include "casa/conflict/graph_builder.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/memsim/two_level.hpp"
#include "casa/support/rng.hpp"
#include "casa/trace/compiled_stream.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace {

using namespace casa;

// TraceProgram and Layout hold pointers into the program / trace program,
// so the rig is built member-by-member in place and never moved.
struct Rig {
  prog::Program program;
  trace::ExecutionResult exec;
  traceopt::TraceProgram tp;
  traceopt::Layout layout;

  Rig(const std::string& workload, Bytes line_size)
      : program(workloads::by_name(workload)),
        exec(trace::Executor::run(program)),
        tp(traceopt::form_traces(program, exec.profile, topt(line_size))),
        layout(traceopt::layout_all(tp)) {}

  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  static traceopt::TraceFormationOptions topt(Bytes line_size) {
    traceopt::TraceFormationOptions o;
    o.cache_line_size = line_size;
    o.max_trace_size = 256;
    return o;
  }
};

/// The three cache shapes the oracle sweeps: direct-mapped LRU, 2-way LRU,
/// 4-way Random (seeded). Random is the adversarial case — any divergence
/// in miss count or RNG draw order desynchronizes the streams instantly.
std::vector<cachesim::CacheConfig> oracle_configs() {
  std::vector<cachesim::CacheConfig> configs;
  {
    cachesim::CacheConfig c;
    c.size = 512;
    c.line_size = 16;
    configs.push_back(c);
  }
  {
    cachesim::CacheConfig c;
    c.size = 512;
    c.line_size = 16;
    c.associativity = 2;
    configs.push_back(c);
  }
  {
    cachesim::CacheConfig c;
    c.size = 1_KiB;
    c.line_size = 32;
    c.associativity = 4;
    c.policy = cachesim::ReplacementPolicy::kRandom;
    configs.push_back(c);
  }
  return configs;
}

void expect_same_graph(const conflict::ConflictGraph& a,
                       const conflict::ConflictGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    EXPECT_EQ(a.fetches(mo), b.fetches(mo));
    EXPECT_EQ(a.cold_misses(mo), b.cold_misses(mo));
    EXPECT_EQ(a.hits(mo), b.hits(mo));
  }
  for (std::size_t e = 0; e < a.edges().size(); ++e) {
    EXPECT_EQ(a.edges()[e].from, b.edges()[e].from);
    EXPECT_EQ(a.edges()[e].to, b.edges()[e].to);
    EXPECT_EQ(a.edges()[e].misses, b.edges()[e].misses);
  }
}

void expect_same_report(const memsim::SimReport& a,
                        const memsim::SimReport& b) {
  EXPECT_EQ(a.counters.total_fetches, b.counters.total_fetches);
  EXPECT_EQ(a.counters.spm_accesses, b.counters.spm_accesses);
  EXPECT_EQ(a.counters.lc_accesses, b.counters.lc_accesses);
  EXPECT_EQ(a.counters.cache_accesses, b.counters.cache_accesses);
  EXPECT_EQ(a.counters.cache_hits, b.counters.cache_hits);
  EXPECT_EQ(a.counters.cache_misses, b.counters.cache_misses);
  EXPECT_EQ(a.counters.mainmem_words, b.counters.mainmem_words);
  EXPECT_EQ(a.counters.cycles, b.counters.cycles);
  // Energies are derived from the counters identically on both paths, so
  // equality here is exact (byte-identical doubles), not approximate.
  EXPECT_EQ(a.spm_energy, b.spm_energy);
  EXPECT_EQ(a.cache_energy, b.cache_energy);
  EXPECT_EQ(a.lc_energy, b.lc_energy);
  EXPECT_EQ(a.total_energy, b.total_energy);
}

TEST(CompiledStream, RunsCoverEveryWordExactlyOnce) {
  const Rig r("adpcm", 16);
  const trace::CompiledStream stream =
      traceopt::compile_fetch_stream(r.tp, r.layout, 16);
  for (std::size_t i = 0; i < r.program.block_count(); ++i) {
    const BasicBlockId bb(static_cast<std::uint32_t>(i));
    const MemoryObjectId mo = r.tp.object_of(bb);
    if (!mo.valid() || !r.layout.placed(mo)) continue;
    ASSERT_TRUE(stream.cached(bb));
    Addr expect_addr = r.layout.block_addr(bb);
    std::uint64_t words = 0;
    for (const trace::LineRun& run : stream.runs(bb)) {
      EXPECT_EQ(run.addr, expect_addr);
      EXPECT_EQ(run.line, run.addr / 16);
      // A run never crosses its line's end.
      EXPECT_LE(run.addr % 16 + run.words * kWordBytes, 16u);
      EXPECT_GT(run.words, 0u);
      expect_addr += run.words * kWordBytes;
      words += run.words;
    }
    EXPECT_EQ(words, r.program.block(bb).size / kWordBytes);
    EXPECT_EQ(words, stream.words_of(bb));
  }
}

TEST(CompiledStream, AccessLineMatchesWordAccesses) {
  // Direct cache-level oracle: random line runs through access_line vs the
  // same runs replayed word by word, all four policies.
  for (const auto policy :
       {cachesim::ReplacementPolicy::kLru, cachesim::ReplacementPolicy::kFifo,
        cachesim::ReplacementPolicy::kRoundRobin,
        cachesim::ReplacementPolicy::kRandom}) {
    cachesim::CacheConfig cfg;
    cfg.size = 256;
    cfg.line_size = 16;
    cfg.associativity = 2;
    cfg.policy = policy;
    cachesim::Cache line_cache(cfg, 7);
    cachesim::Cache word_cache(cfg, 7);

    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
      const Addr line_base = rng.next_below(1 << 12) * cfg.line_size;
      const std::uint32_t max_words =
          static_cast<std::uint32_t>(cfg.line_size / kWordBytes);
      const std::uint32_t first =
          static_cast<std::uint32_t>(rng.next_below(max_words));
      const std::uint32_t words = static_cast<std::uint32_t>(
          1 + rng.next_below(max_words - first));
      const Addr addr = line_base + first * kWordBytes;

      const cachesim::AccessResult lr = line_cache.access_line(addr, words);
      cachesim::AccessResult wr = word_cache.access(addr);
      for (std::uint32_t w = 1; w < words; ++w) {
        const cachesim::AccessResult follow =
            word_cache.access(addr + w * kWordBytes);
        EXPECT_TRUE(follow.hit);  // same-line trailing words always hit
      }
      EXPECT_EQ(lr.hit, wr.hit);
      EXPECT_EQ(lr.evicted_line, wr.evicted_line);
      EXPECT_EQ(line_cache.hits(), word_cache.hits());
      EXPECT_EQ(line_cache.misses(), word_cache.misses());
    }
  }
}

TEST(CompiledStream, ConflictGraphOracle) {
  for (const std::string workload : {"adpcm", "g721"}) {
    for (const cachesim::CacheConfig& cache : oracle_configs()) {
      const Rig r(workload, cache.line_size);
      conflict::BuildOptions opt;
      opt.cache = cache;
      opt.seed = 3;
      opt.use_compiled_stream = true;
      const conflict::ConflictGraph fast =
          conflict::build_conflict_graph(r.tp, r.layout, r.exec.walk, opt);
      opt.use_compiled_stream = false;
      const conflict::ConflictGraph ref =
          conflict::build_conflict_graph(r.tp, r.layout, r.exec.walk, opt);
      expect_same_graph(fast, ref);
    }
  }
}

TEST(CompiledStream, HierarchySimulationOracle) {
  for (const std::string workload : {"adpcm", "g721"}) {
    for (const cachesim::CacheConfig& cache : oracle_configs()) {
      const Rig r(workload, cache.line_size);
      const auto energies = energy::EnergyTable::build(cache, 256, 0, 0);

      // Alternate objects on the scratchpad to exercise both paths.
      std::vector<bool> on_spm(r.tp.object_count(), false);
      for (std::size_t i = 0; i < on_spm.size(); i += 2) on_spm[i] = true;

      memsim::SimOptions fast_opt;
      fast_opt.seed = 5;
      memsim::SimOptions ref_opt = fast_opt;
      ref_opt.use_compiled_stream = false;

      expect_same_report(
          memsim::simulate_spm_system(r.tp, r.layout, r.exec.walk, on_spm,
                                      cache, energies, fast_opt),
          memsim::simulate_spm_system(r.tp, r.layout, r.exec.walk, on_spm,
                                      cache, energies, ref_opt));
      expect_same_report(
          memsim::simulate_cache_only(r.tp, r.layout, r.exec.walk, cache,
                                      energies, fast_opt),
          memsim::simulate_cache_only(r.tp, r.layout, r.exec.walk, cache,
                                      energies, ref_opt));
    }
  }
}

TEST(CompiledStream, MoveSemanticsLayoutOracle) {
  // Steinke-style compacted layout: scratchpad objects are absent from the
  // image, so their blocks compile as not-cached.
  const Rig r("g721", 16);
  cachesim::CacheConfig cache;
  cache.size = 1_KiB;
  cache.line_size = 16;
  const auto energies = energy::EnergyTable::build(cache, 256, 0, 0);

  std::vector<bool> on_spm(r.tp.object_count(), false);
  for (std::size_t i = 0; i < on_spm.size(); i += 3) on_spm[i] = true;
  const traceopt::Layout compacted = traceopt::layout_excluding(r.tp, on_spm);

  memsim::SimOptions fast_opt;
  memsim::SimOptions ref_opt;
  ref_opt.use_compiled_stream = false;

  expect_same_report(
      memsim::simulate_spm_system(r.tp, compacted, r.exec.walk, on_spm,
                                  cache, energies, fast_opt),
      memsim::simulate_spm_system(r.tp, compacted, r.exec.walk, on_spm,
                                  cache, energies, ref_opt));
}

TEST(CompiledStream, TwoLevelOracle) {
  const Rig r("g721", 16);
  cachesim::CacheConfig l1;
  l1.size = 512;
  l1.line_size = 16;
  cachesim::CacheConfig l2;
  l2.size = 4_KiB;
  l2.line_size = 32;
  l2.associativity = 2;
  const auto energies = memsim::TwoLevelEnergies::build(l1, l2, 256);

  std::vector<bool> on_spm(r.tp.object_count(), false);
  on_spm[0] = true;

  const memsim::TwoLevelReport fast = memsim::simulate_spm_two_level(
      r.tp, r.layout, r.exec.walk, on_spm, l1, l2, energies, 1,
      /*use_compiled_stream=*/true);
  const memsim::TwoLevelReport ref = memsim::simulate_spm_two_level(
      r.tp, r.layout, r.exec.walk, on_spm, l1, l2, energies, 1,
      /*use_compiled_stream=*/false);

  EXPECT_EQ(fast.counters.total_fetches, ref.counters.total_fetches);
  EXPECT_EQ(fast.counters.spm_accesses, ref.counters.spm_accesses);
  EXPECT_EQ(fast.counters.l1_hits, ref.counters.l1_hits);
  EXPECT_EQ(fast.counters.l1_misses, ref.counters.l1_misses);
  EXPECT_EQ(fast.counters.l2_hits, ref.counters.l2_hits);
  EXPECT_EQ(fast.counters.l2_misses, ref.counters.l2_misses);
  EXPECT_EQ(fast.total_energy, ref.total_energy);
}

}  // namespace

#include <gtest/gtest.h>

#include "casa/baseline/steinke.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/trace_formation.hpp"

namespace casa::baseline {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

traceopt::TraceProgram make_tp(prog::Program& program,
                               trace::ExecutionResult& exec) {
  traceopt::TraceFormationOptions opt;
  opt.max_trace_size = 64;
  opt.fuse_ratio = 1.5;  // keep every block its own object
  return traceopt::form_traces(program, exec.profile, opt);
}

TEST(Steinke, PicksHighestFetchDensityObjects) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.code(32, "cold");
    f.loop(1000, [](FunctionScope& l) { l.code(32, "hot"); });
    f.code(32, "cold2");
  });
  prog::Program program = b.build();
  auto exec = trace::Executor::run(program);
  const auto tp = make_tp(program, exec);

  // Capacity for roughly one object: the hot loop body must win.
  const SteinkeResult r = allocate_steinke(tp, 40);
  const auto& blocks = program.function(program.entry()).blocks();
  const MemoryObjectId hot = tp.object_of(blocks[2]);  // loop body
  EXPECT_TRUE(r.on_spm[hot.index()]);
  EXPECT_LE(r.used_bytes, 40u);
}

TEST(Steinke, CapacityZeroSelectsNothing) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) { f.code(32, "x"); });
  prog::Program program = b.build();
  auto exec = trace::Executor::run(program);
  const auto tp = make_tp(program, exec);
  const SteinkeResult r = allocate_steinke(tp, 0);
  for (const bool on : r.on_spm) EXPECT_FALSE(on);
}

TEST(Steinke, IgnoresEnergyScaling) {
  // Any positive per-access saving yields the same knapsack selection.
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(100, [](FunctionScope& l) { l.code(32, "a").code(48, "b"); });
    f.code(96, "c");
  });
  prog::Program program = b.build();
  auto exec = trace::Executor::run(program);
  const auto tp = make_tp(program, exec);
  const SteinkeResult r1 = allocate_steinke(tp, 64, 1.0);
  const SteinkeResult r2 = allocate_steinke(tp, 64, 123.0);
  EXPECT_EQ(r1.on_spm, r2.on_spm);
}

TEST(Steinke, RejectsNonPositiveSaving) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) { f.code(32, "x"); });
  prog::Program program = b.build();
  auto exec = trace::Executor::run(program);
  const auto tp = make_tp(program, exec);
  EXPECT_THROW(allocate_steinke(tp, 64, 0.0), PreconditionError);
}

TEST(Steinke, IsCacheOblivious) {
  // Two objects with equal fetch counts but (hypothetically) different
  // conflict behaviour are interchangeable for Steinke: selection depends
  // only on fetches and sizes. We verify profit ties break deterministically
  // and the knapsack fills the capacity greedily-optimally.
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(500, [](FunctionScope& l) {
      l.code(32, "a");
      l.code(32, "b");
    });
  });
  prog::Program program = b.build();
  auto exec = trace::Executor::run(program);
  const auto tp = make_tp(program, exec);
  // Each body carries a 4-byte exit jump (36 B raw): give room for both.
  const SteinkeResult r = allocate_steinke(tp, 80);
  // Both loop bodies fit and have equal profit: both taken.
  const auto& blocks = program.function(program.entry()).blocks();
  EXPECT_TRUE(r.on_spm[tp.object_of(blocks[1]).index()]);
  EXPECT_TRUE(r.on_spm[tp.object_of(blocks[2]).index()]);
}

}  // namespace
}  // namespace casa::baseline

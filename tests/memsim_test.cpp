#include <gtest/gtest.h>

#include "casa/memsim/hierarchy.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::memsim {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

struct TestRig {
  prog::Program program;
  trace::ExecutionResult exec;
  traceopt::TraceProgram tp;
  traceopt::Layout layout;
  cachesim::CacheConfig cache;
  energy::EnergyTable energies;

  explicit TestRig(prog::Program p, Bytes cache_size = 128)
      : program(std::move(p)),
        exec(trace::Executor::run(program)),
        tp(traceopt::form_traces(program, exec.profile, topts())),
        layout(traceopt::layout_all(tp)),
        cache(make_cache(cache_size)),
        energies(energy::EnergyTable::build(cache, 256, 256, 4)) {}

  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.max_trace_size = 128;
    return o;
  }
  static cachesim::CacheConfig make_cache(Bytes size) {
    cachesim::CacheConfig c;
    c.size = size;
    c.line_size = 16;
    return c;
  }
};

TestRig simple() {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(500, [](FunctionScope& l) { l.code(64, "hot").code(32, "warm"); });
  });
  return TestRig(b.build());
}

TEST(Memsim, CounterIdentities) {
  const TestRig s = simple();
  const std::vector<bool> none(s.tp.object_count(), false);
  const SimReport r = simulate_spm_system(s.tp, s.layout, s.exec.walk, none,
                                          s.cache, s.energies);
  const SimCounters& c = r.counters;
  EXPECT_EQ(c.total_fetches, s.exec.total_fetches);
  EXPECT_EQ(c.total_fetches, c.spm_accesses + c.cache_accesses);
  EXPECT_EQ(c.cache_accesses, c.cache_hits + c.cache_misses);
  EXPECT_EQ(c.mainmem_words,
            c.cache_misses * (s.cache.line_size / kWordBytes));
}

TEST(Memsim, EnergyIsSumOfComponents) {
  const TestRig s = simple();
  const std::vector<bool> none(s.tp.object_count(), false);
  const SimReport r = simulate_spm_system(s.tp, s.layout, s.exec.walk, none,
                                          s.cache, s.energies);
  EXPECT_DOUBLE_EQ(r.total_energy,
                   r.spm_energy + r.cache_energy + r.lc_energy);
  EXPECT_EQ(r.spm_energy, 0.0);
  EXPECT_EQ(r.lc_energy, 0.0);
}

TEST(Memsim, EnergyMatchesCountersExactly) {
  const TestRig s = simple();
  const std::vector<bool> none(s.tp.object_count(), false);
  const SimReport r = simulate_spm_system(s.tp, s.layout, s.exec.walk, none,
                                          s.cache, s.energies);
  const SimCounters& c = r.counters;
  EXPECT_NEAR(r.cache_energy,
              c.cache_hits * s.energies.cache_hit +
                  c.cache_misses * s.energies.cache_miss,
              1e-6);
}

TEST(Memsim, SpmObjectsNeverTouchCache) {
  const TestRig s = simple();
  std::vector<bool> all(s.tp.object_count(), true);
  const SimReport r = simulate_spm_system(s.tp, s.layout, s.exec.walk, all,
                                          s.cache, s.energies);
  EXPECT_EQ(r.counters.cache_accesses, 0u);
  EXPECT_EQ(r.counters.spm_accesses, s.exec.total_fetches);
  EXPECT_NEAR(r.total_energy,
              static_cast<double>(s.exec.total_fetches) *
                  s.energies.spm_access,
              1e-6);
}

TEST(Memsim, PlacingHotObjectReducesEnergy) {
  const TestRig s = simple();
  const std::vector<bool> none(s.tp.object_count(), false);
  const SimReport base = simulate_spm_system(s.tp, s.layout, s.exec.walk,
                                             none, s.cache, s.energies);
  const auto& blocks = s.program.function(s.program.entry()).blocks();
  std::vector<bool> hot(s.tp.object_count(), false);
  hot[s.tp.object_of(blocks[1]).index()] = true;
  const SimReport better = simulate_spm_system(s.tp, s.layout, s.exec.walk,
                                               hot, s.cache, s.energies);
  EXPECT_LT(better.total_energy, base.total_energy);
}

TEST(Memsim, CyclesAccumulate) {
  const TestRig s = simple();
  const std::vector<bool> none(s.tp.object_count(), false);
  SimOptions opt;
  const SimReport r = simulate_spm_system(s.tp, s.layout, s.exec.walk, none,
                                          s.cache, s.energies, opt);
  const SimCounters& c = r.counters;
  const std::uint64_t line_words = s.cache.line_size / kWordBytes;
  const std::uint64_t expected =
      c.cache_hits * opt.latency.cache_hit +
      c.cache_misses * (opt.latency.cache_hit + opt.latency.miss_base_penalty +
                        line_words * opt.latency.miss_per_word);
  EXPECT_EQ(c.cycles, expected);
}

TEST(Memsim, LoopCacheServesSelectedRanges) {
  const TestRig s = simple();
  const auto& blocks = s.program.function(s.program.entry()).blocks();
  const Addr lo = s.layout.block_addr(blocks[1]);
  const Addr hi = lo + s.program.block(blocks[1]).size;
  loopcache::RegionSet regions({loopcache::Region{lo, hi, 1, "hot"}});
  const SimReport r = simulate_loopcache_system(
      s.tp, s.layout, s.exec.walk, regions, s.cache, s.energies);
  EXPECT_GT(r.counters.lc_accesses, 0u);
  EXPECT_EQ(r.counters.lc_accesses + r.counters.cache_accesses,
            s.exec.total_fetches);
  // Controller energy charged on non-LC fetches too.
  EXPECT_GT(r.lc_energy, static_cast<double>(r.counters.lc_accesses) *
                             s.energies.lc_access -
                             1e-9);
}

TEST(Memsim, EmptyLoopCacheDegradesToCachePlusController) {
  const TestRig s = simple();
  loopcache::RegionSet regions{std::vector<loopcache::Region>{}};
  const SimReport lc = simulate_loopcache_system(
      s.tp, s.layout, s.exec.walk, regions, s.cache, s.energies);
  const SimReport plain = simulate_cache_only(s.tp, s.layout, s.exec.walk,
                                              s.cache, s.energies);
  EXPECT_EQ(lc.counters.cache_misses, plain.counters.cache_misses);
  EXPECT_NEAR(lc.total_energy - plain.total_energy,
              static_cast<double>(s.exec.total_fetches) *
                  s.energies.lc_controller,
              1e-6);
}

TEST(Memsim, MoveSemanticsChangesMissCounts) {
  // Steinke-style exclusion layout must generally alter cache behaviour of
  // the residue; verify the plumbing works with an excluded object.
  const TestRig s = simple();
  const auto& blocks = s.program.function(s.program.entry()).blocks();
  const MemoryObjectId hot = s.tp.object_of(blocks[1]);
  std::vector<bool> on_spm(s.tp.object_count(), false);
  on_spm[hot.index()] = true;

  const traceopt::Layout moved =
      traceopt::layout_excluding(s.tp, std::vector<bool>(on_spm));
  const SimReport r = simulate_spm_system(s.tp, moved, s.exec.walk, on_spm,
                                          s.cache, s.energies);
  EXPECT_EQ(r.counters.total_fetches, s.exec.total_fetches);
  EXPECT_GT(r.counters.spm_accesses, 0u);
}

TEST(Memsim, SeedOnlyAffectsRandomPolicy) {
  const TestRig s = simple();
  const std::vector<bool> none(s.tp.object_count(), false);
  SimOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const SimReport ra = simulate_spm_system(s.tp, s.layout, s.exec.walk, none,
                                           s.cache, s.energies, a);
  const SimReport rb = simulate_spm_system(s.tp, s.layout, s.exec.walk, none,
                                           s.cache, s.energies, b);
  EXPECT_EQ(ra.counters.cache_misses, rb.counters.cache_misses);
}

TEST(Memsim, MaskSizeValidated) {
  const TestRig s = simple();
  const std::vector<bool> wrong(s.tp.object_count() + 1, false);
  EXPECT_THROW(simulate_spm_system(s.tp, s.layout, s.exec.walk, wrong,
                                   s.cache, s.energies),
               PreconditionError);
}

TEST(Memsim, RequiresEnergyTableEntries) {
  const TestRig s = simple();
  const std::vector<bool> none(s.tp.object_count(), false);
  energy::EnergyTable no_spm =
      energy::EnergyTable::build(s.cache, 0, 0, 0);
  EXPECT_THROW(simulate_spm_system(s.tp, s.layout, s.exec.walk, none,
                                   s.cache, no_spm),
               PreconditionError);
}

}  // namespace
}  // namespace casa::memsim

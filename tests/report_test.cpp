// Workbench behaviour knobs (beyond what integration_test covers).
#include <gtest/gtest.h>

#include "casa/report/workbench.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::report {
namespace {

TEST(Workbench, FuseRatioChangesObjectGranularity) {
  const prog::Program program = workloads::make_adpcm();
  WorkbenchOptions fine;
  fine.fuse_ratio = 1.5;  // never fuse
  WorkbenchOptions coarse;
  coarse.fuse_ratio = 0.0;  // fuse every fallthrough
  const Workbench wb_fine(program, fine);
  const Workbench wb_coarse(program, coarse);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome f = wb_fine.evaluate(Workbench::Job::casa_job(cache, 128)).value();
  const Outcome c = wb_coarse.evaluate(Workbench::Job::casa_job(cache, 128)).value();
  EXPECT_GT(f.object_count, c.object_count);
}

TEST(Workbench, ExecutionExposedAndStable) {
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  EXPECT_GT(wb.execution().total_fetches, 0u);
  EXPECT_EQ(wb.execution().walk.seq.size(), wb.execution().total_blocks);
  EXPECT_EQ(&wb.program(), &program);
}

TEST(Workbench, CacheOnlyHasNoSpmTraffic) {
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  const Outcome o = wb.evaluate(Workbench::Job::cache_only_job(workloads::paper_cache_for("adpcm"))).value();
  EXPECT_EQ(o.sim.counters.spm_accesses, 0u);
  EXPECT_EQ(o.sim.counters.lc_accesses, 0u);
}

TEST(Workbench, LoopCacheOutcomeReportsRegions) {
  const prog::Program program = workloads::make_g721();
  const Workbench wb(program);
  const Outcome o =
      wb.evaluate(Workbench::Job::loopcache_job(workloads::paper_cache_for("g721"), 512, 4)).value();
  EXPECT_GE(o.lc_regions(), 1u);
  EXPECT_LE(o.lc_regions(), 4u);
  EXPECT_GT(o.sim.counters.lc_accesses, 0u);
}

TEST(Workbench, CasaOutcomeInternallyConsistent) {
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome o = wb.evaluate(Workbench::Job::casa_job(cache, 128)).value();
  // Objects marked on-SPM together account for the used bytes.
  Bytes used = 0;
  std::size_t placed = 0;
  for (std::size_t i = 0; i < o.alloc().on_spm.size(); ++i) {
    if (o.alloc().on_spm[i]) ++placed;
  }
  EXPECT_GT(placed, 0u);
  EXPECT_EQ(o.alloc().on_spm.size(), o.object_count);
  used = o.alloc().used_bytes;
  EXPECT_LE(used, 128u);
  // Energy identity against counters.
  EXPECT_GT(o.sim.counters.spm_accesses, 0u);
}

TEST(Workbench, SteinkeCopySemanticsOptionKeepsLayout) {
  // With steinke_moves=false the residual program is NOT compacted, so the
  // cache-path miss pattern of untouched objects matches CASA's layout.
  const prog::Program program = workloads::make_adpcm();
  WorkbenchOptions copy_opt;
  copy_opt.steinke_moves = false;
  const Workbench wb(program, copy_opt);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome s = wb.evaluate(Workbench::Job::steinke_job(cache, 128)).value();
  EXPECT_EQ(s.sim.counters.total_fetches, wb.execution().total_fetches);
}

TEST(Workbench, SeedChangesProfileButNotStructure) {
  const prog::Program program = workloads::make_adpcm();
  WorkbenchOptions a, b;
  a.exec_seed = 1;
  b.exec_seed = 2;
  const Workbench wa(program, a);
  const Workbench wbb(program, b);
  EXPECT_NE(wa.execution().total_fetches, wbb.execution().total_fetches);
  const auto cache = workloads::paper_cache_for("adpcm");
  EXPECT_EQ(wa.evaluate(Workbench::Job::casa_job(cache, 128)).value().object_count,
            wa.evaluate(Workbench::Job::casa_job(cache, 128)).value().object_count);
}

TEST(Workbench, SmallSpmStillWorks) {
  // Scratchpad of a single cache line: nearly nothing fits, but the
  // pipeline must not degenerate.
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome o = wb.evaluate(Workbench::Job::casa_job(cache, 16)).value();
  EXPECT_LE(o.alloc().used_bytes, 16u);
  EXPECT_EQ(o.sim.counters.total_fetches, wb.execution().total_fetches);
}

TEST(Outcome, WrongFlowAccessThrowsStructuredFlowError) {
  const Outcome steinke(FlowKind::kSteinke);
  try {
    (void)steinke.alloc();
    FAIL() << "alloc() on a Steinke outcome must throw";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.accessor(), "alloc");
    EXPECT_EQ(e.flow(), FlowKind::kSteinke);
    EXPECT_NE(std::string(e.what()).find("steinke"), std::string::npos);
  }
  EXPECT_THROW((void)steinke.conflict_edges(), FlowError);
  EXPECT_THROW((void)steinke.lc_regions(), FlowError);

  const Outcome casa(FlowKind::kCasa);
  EXPECT_THROW((void)casa.lc_regions(), FlowError);
  EXPECT_NO_THROW((void)casa.conflict_edges());
}

TEST(Workbench, DeprecatedShimsMatchTheUnifiedApi) {
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome unified =
      wb.evaluate(Workbench::Job::steinke_job(cache, 128)).value();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const Outcome legacy = wb.run_steinke(cache, 128);
#pragma GCC diagnostic pop
  EXPECT_TRUE(legacy == unified);
}

}  // namespace
}  // namespace casa::report

// Workbench behaviour knobs (beyond what integration_test covers).
#include <gtest/gtest.h>

#include "casa/report/workbench.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::report {
namespace {

TEST(Workbench, FuseRatioChangesObjectGranularity) {
  const prog::Program program = workloads::make_adpcm();
  WorkbenchOptions fine;
  fine.fuse_ratio = 1.5;  // never fuse
  WorkbenchOptions coarse;
  coarse.fuse_ratio = 0.0;  // fuse every fallthrough
  const Workbench wb_fine(program, fine);
  const Workbench wb_coarse(program, coarse);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome f = wb_fine.run_casa(cache, 128);
  const Outcome c = wb_coarse.run_casa(cache, 128);
  EXPECT_GT(f.object_count, c.object_count);
}

TEST(Workbench, ExecutionExposedAndStable) {
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  EXPECT_GT(wb.execution().total_fetches, 0u);
  EXPECT_EQ(wb.execution().walk.seq.size(), wb.execution().total_blocks);
  EXPECT_EQ(&wb.program(), &program);
}

TEST(Workbench, CacheOnlyHasNoSpmTraffic) {
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  const Outcome o = wb.run_cache_only(workloads::paper_cache_for("adpcm"));
  EXPECT_EQ(o.sim.counters.spm_accesses, 0u);
  EXPECT_EQ(o.sim.counters.lc_accesses, 0u);
}

TEST(Workbench, LoopCacheOutcomeReportsRegions) {
  const prog::Program program = workloads::make_g721();
  const Workbench wb(program);
  const Outcome o =
      wb.run_loopcache(workloads::paper_cache_for("g721"), 512, 4);
  EXPECT_GE(o.lc_regions, 1u);
  EXPECT_LE(o.lc_regions, 4u);
  EXPECT_GT(o.sim.counters.lc_accesses, 0u);
}

TEST(Workbench, CasaOutcomeInternallyConsistent) {
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome o = wb.run_casa(cache, 128);
  // Objects marked on-SPM together account for the used bytes.
  Bytes used = 0;
  std::size_t placed = 0;
  for (std::size_t i = 0; i < o.alloc.on_spm.size(); ++i) {
    if (o.alloc.on_spm[i]) ++placed;
  }
  EXPECT_GT(placed, 0u);
  EXPECT_EQ(o.alloc.on_spm.size(), o.object_count);
  used = o.alloc.used_bytes;
  EXPECT_LE(used, 128u);
  // Energy identity against counters.
  EXPECT_GT(o.sim.counters.spm_accesses, 0u);
}

TEST(Workbench, SteinkeCopySemanticsOptionKeepsLayout) {
  // With steinke_moves=false the residual program is NOT compacted, so the
  // cache-path miss pattern of untouched objects matches CASA's layout.
  const prog::Program program = workloads::make_adpcm();
  WorkbenchOptions copy_opt;
  copy_opt.steinke_moves = false;
  const Workbench wb(program, copy_opt);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome s = wb.run_steinke(cache, 128);
  EXPECT_EQ(s.sim.counters.total_fetches, wb.execution().total_fetches);
}

TEST(Workbench, SeedChangesProfileButNotStructure) {
  const prog::Program program = workloads::make_adpcm();
  WorkbenchOptions a, b;
  a.exec_seed = 1;
  b.exec_seed = 2;
  const Workbench wa(program, a);
  const Workbench wbb(program, b);
  EXPECT_NE(wa.execution().total_fetches, wbb.execution().total_fetches);
  const auto cache = workloads::paper_cache_for("adpcm");
  EXPECT_EQ(wa.run_casa(cache, 128).object_count,
            wa.run_casa(cache, 128).object_count);
}

TEST(Workbench, SmallSpmStillWorks) {
  // Scratchpad of a single cache line: nearly nothing fits, but the
  // pipeline must not degenerate.
  const prog::Program program = workloads::make_adpcm();
  const Workbench wb(program);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome o = wb.run_casa(cache, 16);
  EXPECT_LE(o.alloc.used_bytes, 16u);
  EXPECT_EQ(o.sim.counters.total_fetches, wb.execution().total_fetches);
}

}  // namespace
}  // namespace casa::report

// ThreadPool / ParallelRunner / Workbench::evaluate_batch determinism
// tests.
//
// The contract under test: a sweep evaluated on 1 thread and on N threads
// returns identical result vectors — same order, same values — because
// results are stored by index and every task derives randomness only from
// its own (base seed, index) pair.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "casa/report/workbench.hpp"
#include "casa/sim/parallel_runner.hpp"
#include "casa/support/thread_pool.hpp"
#include "casa/workloads/workloads.hpp"

namespace {

using namespace casa;

TEST(ThreadPool, RunsEverySubmittedTask) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after wait().
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 150);
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  support::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is consumed; the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitCollectCapturesEveryConcurrentFailure) {
  support::ThreadPool pool(2);
  // A rendezvous pins both failing tasks in flight at once: each waits for
  // the other before throwing, so neither error can be a straggler the
  // other's rethrow would have discarded.
  std::atomic<int> at_barrier{0};
  const auto rendezvous = [&at_barrier] {
    ++at_barrier;
    while (at_barrier.load() < 2) {
    }
  };
  EXPECT_EQ(pool.submit([&] {
    rendezvous();
    throw std::runtime_error("first");
  }), 0u);
  EXPECT_EQ(pool.submit([&] {
    rendezvous();
    throw std::logic_error("second");
  }), 1u);
  EXPECT_EQ(pool.submit([] {}), 2u);

  const std::vector<support::TaskError> errors = pool.wait_collect();
  ASSERT_EQ(errors.size(), 2u);  // both failures captured, none dropped
  EXPECT_EQ(errors[0].task_index, 0u);
  EXPECT_EQ(errors[1].task_index, 1u);
  EXPECT_THROW(std::rethrow_exception(errors[0].error), std::runtime_error);
  EXPECT_THROW(std::rethrow_exception(errors[1].error), std::logic_error);

  // Nothing rethrows, the batch counter resets, and the pool stays usable.
  std::atomic<int> counter{0};
  EXPECT_EQ(pool.submit([&counter] { ++counter; }), 0u);
  EXPECT_TRUE(pool.wait_collect().empty());
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitRethrowsLowestIndexedFailure) {
  support::ThreadPool pool(4);
  std::atomic<int> at_barrier{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&at_barrier, i] {
      ++at_barrier;
      while (at_barrier.load() < 4) {
      }
      if (i != 1) throw std::runtime_error("task " + std::to_string(i));
      throw std::logic_error("task 1");
    });
  }
  // Task 0's error wins deterministically even though all four failed at
  // the same moment.
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ParallelRunner, ResultsComeBackInIndexOrder) {
  sim::RunnerOptions opt;
  opt.threads = 4;
  const sim::ParallelRunner runner(opt);
  const std::vector<std::size_t> out = runner.map<std::size_t>(
      257, [](std::size_t i, std::uint64_t) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, TaskSeedsAreStableAndDistinct) {
  // Seeds depend only on (base, index) — never on schedule or thread count.
  EXPECT_EQ(sim::task_seed(1, 0), sim::task_seed(1, 0));
  EXPECT_NE(sim::task_seed(1, 0), sim::task_seed(1, 1));
  EXPECT_NE(sim::task_seed(1, 0), sim::task_seed(2, 0));
  EXPECT_NE(sim::task_seed(1, 0), 0u);

  sim::RunnerOptions serial;
  serial.threads = 1;
  serial.seed = 42;
  sim::RunnerOptions wide = serial;
  wide.threads = 8;
  const auto seeds_of = [](const sim::RunnerOptions& o) {
    return sim::ParallelRunner(o).map<std::uint64_t>(
        64, [](std::size_t, std::uint64_t seed) { return seed; });
  };
  EXPECT_EQ(seeds_of(serial), seeds_of(wide));
}

TEST(ParallelRunner, SweepIsThreadCountInvariant) {
  // The satellite determinism test: same CASA sweep, 1 thread vs 4 threads,
  // bit-identical outcome vectors.
  const prog::Program program = workloads::make_adpcm();
  const report::Workbench bench(program);

  std::vector<report::Workbench::Job> jobs;
  for (const Bytes spm : {64u, 128u, 256u}) {
    cachesim::CacheConfig cache = workloads::paper_cache_for("adpcm");
    jobs.push_back(report::Workbench::Job::casa_job(cache, spm));
    jobs.push_back(report::Workbench::Job::steinke_job(cache, spm));
    jobs.push_back(report::Workbench::Job::loopcache_job(cache, spm, 4));
  }
  {
    cachesim::CacheConfig cache = workloads::paper_cache_for("adpcm");
    jobs.push_back(report::Workbench::Job::cache_only_job(cache));
  }

  report::BatchOptions serial_opt;
  serial_opt.threads = 1;
  report::BatchOptions wide_opt;
  wide_opt.threads = 4;
  const std::vector<report::JobResult> serial =
      bench.evaluate_batch(jobs, serial_opt);
  const std::vector<report::JobResult> parallel =
      bench.evaluate_batch(jobs, wide_opt);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << "job " << i;
    ASSERT_TRUE(parallel[i].ok()) << "job " << i;
    const report::Outcome& a = serial[i].outcome;
    const report::Outcome& b = parallel[i].outcome;
    EXPECT_EQ(a.object_count, b.object_count) << "job " << i;
    ASSERT_EQ(a.flow(), b.flow()) << "job " << i;
    EXPECT_EQ(a.spm_used, b.spm_used) << "job " << i;
    EXPECT_EQ(a.sim.counters.total_fetches, b.sim.counters.total_fetches)
        << "job " << i;
    EXPECT_EQ(a.sim.counters.spm_accesses, b.sim.counters.spm_accesses)
        << "job " << i;
    EXPECT_EQ(a.sim.counters.cache_hits, b.sim.counters.cache_hits)
        << "job " << i;
    EXPECT_EQ(a.sim.counters.cache_misses, b.sim.counters.cache_misses)
        << "job " << i;
    EXPECT_EQ(a.sim.counters.cycles, b.sim.counters.cycles) << "job " << i;
    EXPECT_EQ(a.sim.total_energy, b.sim.total_energy) << "job " << i;
    EXPECT_EQ(a.sim.spm_energy, b.sim.spm_energy) << "job " << i;
    EXPECT_EQ(a.sim.cache_energy, b.sim.cache_energy) << "job " << i;
    EXPECT_EQ(a.sim.lc_energy, b.sim.lc_energy) << "job " << i;
    // Everything above is for diagnosis; the contract is full bit equality
    // (including the flow-gated allocation fields).
    EXPECT_EQ(a, b) << "job " << i;
  }

  // And batch results match the one-at-a-time entry points.
  const report::Outcome alone = bench.evaluate(report::Workbench::Job::casa_job(
      workloads::paper_cache_for("adpcm"), 64)).value();
  EXPECT_EQ(alone, serial[0].outcome);
}

}  // namespace

#include <gtest/gtest.h>

#include "casa/conflict/graph_builder.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/placement/placement.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::placement {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

/// Ping-pong pair under a tiny cache: natural layout aliases, a good
/// placement must separate them.
struct Rig {
  prog::Program program;
  trace::ExecutionResult exec;
  traceopt::TraceProgram tp;
  traceopt::Layout natural;
  conflict::ConflictGraph graph;
  cachesim::CacheConfig cache;

  Rig()
      : program(make()),
        exec(trace::Executor::run(program)),
        tp(traceopt::form_traces(program, exec.profile, topts())),
        natural(traceopt::layout_all(tp)),
        graph(conflict::build_conflict_graph(tp, natural, exec.walk,
                                             build_opts())),
        cache(cache_cfg()) {}

  static prog::Program make() {
    ProgramBuilder b("pp");
    b.function("main", [](FunctionScope& f) {
      f.loop(2000, [](FunctionScope& l) {
        l.call("f1");
        // Dead reference keeps the cold spacer between f1 and f2 in the
        // function (and therefore layout) order.
        l.if_then(0.0, [](FunctionScope& t) { t.call("spacer"); });
        l.call("f2");
      });
    });
    // 64 B bodies in a 256 B cache: the natural layout places f1 at ~32 and
    // f2 at ~128 — distinct sets. Force aliasing via an inert spacer so the
    // placer has something to fix: f1 at X, f2 at X + 256 -> same sets.
    b.function("f1", [](FunctionScope& f) { f.code(64, "body1"); });
    b.function("spacer", [](FunctionScope& f) { f.code(192, "cold"); });
    b.function("f2", [](FunctionScope& f) { f.code(64, "body2"); });
    return b.build();
  }
  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.max_trace_size = 64;
    return o;
  }
  static cachesim::CacheConfig cache_cfg() {
    cachesim::CacheConfig c;
    c.size = 256;
    c.line_size = 16;
    return c;
  }
  static conflict::BuildOptions build_opts() {
    conflict::BuildOptions o;
    o.cache = cache_cfg();
    return o;
  }
};

TEST(Placement, EveryObjectPlacedOnce) {
  const Rig rig;
  PlacementOptions opt;
  opt.cache = rig.cache;
  const PlacementResult r = place_conflict_aware(rig.tp, rig.graph, opt);
  for (const auto& mo : rig.tp.objects()) {
    EXPECT_TRUE(r.layout.placed(mo.id));
  }
}

TEST(Placement, AddressesLineAlignedAndDisjoint) {
  const Rig rig;
  PlacementOptions opt;
  opt.cache = rig.cache;
  const PlacementResult r = place_conflict_aware(rig.tp, rig.graph, opt);
  std::vector<std::pair<Addr, Addr>> ranges;
  for (const auto& mo : rig.tp.objects()) {
    const Addr lo = r.layout.object_base(mo.id);
    EXPECT_EQ(lo % rig.cache.line_size, 0u);
    ranges.emplace_back(lo, lo + mo.padded_size);
  }
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first);
  }
}

TEST(Placement, PaddingBoundedByWindow) {
  const Rig rig;
  PlacementOptions opt;
  opt.cache = rig.cache;
  opt.max_padding_lines = 4;
  const PlacementResult r = place_conflict_aware(rig.tp, rig.graph, opt);
  EXPECT_LE(r.padding_bytes,
            rig.tp.object_count() * 4 * rig.cache.line_size);
}

TEST(Placement, ZeroWindowMeansNoPadding) {
  const Rig rig;
  PlacementOptions opt;
  opt.cache = rig.cache;
  opt.max_padding_lines = 0;
  const PlacementResult r = place_conflict_aware(rig.tp, rig.graph, opt);
  EXPECT_EQ(r.padding_bytes, 0u);
  EXPECT_EQ(r.layout.span(), rig.tp.padded_code_size());
}

TEST(Placement, ReducesMissesOnConflictingWorkload) {
  // End-to-end: simulate under natural vs placed layout; the placer must
  // not increase misses, and on a thrashing benchmark must cut them.
  const prog::Program program = workloads::make_adpcm();
  const auto exec = trace::Executor::run(program);
  traceopt::TraceFormationOptions topt;
  topt.max_trace_size = 128;
  const auto tp = traceopt::form_traces(program, exec.profile, topt);
  const auto natural = traceopt::layout_all(tp);
  const auto cache = workloads::paper_cache_for("adpcm");
  conflict::BuildOptions bopt;
  bopt.cache = cache;
  const auto graph =
      conflict::build_conflict_graph(tp, natural, exec.walk, bopt);

  PlacementOptions popt;
  popt.cache = cache;
  const PlacementResult placed = place_conflict_aware(tp, graph, popt);

  const auto energies = energy::EnergyTable::build(cache, 128, 0, 0);
  const std::vector<bool> none(tp.object_count(), false);
  const auto before = memsim::simulate_spm_system(tp, natural, exec.walk,
                                                  none, cache, energies);
  const auto after = memsim::simulate_spm_system(tp, placed.layout,
                                                 exec.walk, none, cache,
                                                 energies);
  EXPECT_LT(after.counters.cache_misses, before.counters.cache_misses);
}

TEST(Placement, HeavyPairSeparated) {
  const Rig rig;
  // Find the heaviest pair in the measured graph.
  std::uint64_t best = 0;
  MemoryObjectId a, b;
  for (const conflict::Edge& e : rig.graph.edges()) {
    if (e.misses > best && e.from != e.to) {
      best = e.misses;
      a = e.from;
      b = e.to;
    }
  }
  if (best == 0) GTEST_SKIP() << "no conflicts in natural layout";

  PlacementOptions opt;
  opt.cache = rig.cache;
  const PlacementResult r = place_conflict_aware(rig.tp, rig.graph, opt);
  // The heaviest pair must not share any cache set afterwards.
  const auto sets_of = [&](MemoryObjectId mo) {
    const Addr base = r.layout.object_base(mo);
    const Bytes size = rig.tp.object(mo).padded_size;
    std::vector<bool> used(rig.cache.sets(), false);
    for (Bytes off = 0; off < size; off += rig.cache.line_size) {
      used[((base + off) / rig.cache.line_size) % rig.cache.sets()] = true;
    }
    return used;
  };
  const auto sa = sets_of(a), sb = sets_of(b);
  int shared = 0;
  for (std::size_t s = 0; s < sa.size(); ++s) {
    if (sa[s] && sb[s]) ++shared;
  }
  EXPECT_EQ(shared, 0);
}

}  // namespace
}  // namespace casa::placement

// Cross-validation of the three CASA solving engines.
//
// The specialized branch & bound, the generic ILP (both linearizations) and
// a brute-force enumerator must agree on the optimal saving for random
// instances; the greedy heuristic must be feasible and never better than
// the optimum.
#include <gtest/gtest.h>

#include "casa/core/allocator.hpp"
#include "casa/core/casa_branch_bound.hpp"
#include "casa/core/formulation.hpp"
#include "casa/core/greedy.hpp"
#include "casa/ilp/branch_bound.hpp"
#include "casa/support/rng.hpp"

namespace casa::core {
namespace {

SavingsProblem random_instance(std::uint64_t seed, std::size_t items,
                               std::size_t edges, Bytes capacity) {
  Rng rng(seed);
  SavingsProblem sp;
  sp.capacity = capacity;
  for (std::size_t k = 0; k < items; ++k) {
    sp.object_of.push_back(MemoryObjectId(static_cast<std::uint32_t>(k)));
    sp.value.push_back(rng.next_unit() * 50.0);
    sp.weight.push_back(4 * (1 + rng.next_below(24)));
    sp.all_cached_energy += sp.value.back() * 2.0;
  }
  for (std::size_t e = 0; e < edges && items >= 2; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(items));
    auto b = static_cast<std::uint32_t>(rng.next_below(items));
    if (b == a) b = (b + 1) % items;
    sp.edges.push_back(SavingsProblem::Edge{std::min(a, b), std::max(a, b),
                                            rng.next_unit() * 120.0});
    sp.all_cached_energy += sp.edges.back().weight;
  }
  return sp;
}

Energy brute_force(const SavingsProblem& sp) {
  const std::size_t n = sp.item_count();
  Energy best = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Bytes w = 0;
    std::vector<bool> chosen(n, false);
    for (std::size_t k = 0; k < n; ++k) {
      if (mask & (1u << k)) {
        chosen[k] = true;
        w += sp.weight[k];
      }
    }
    if (w > sp.capacity) continue;
    best = std::max(best, sp.saving_for(chosen));
  }
  return best;
}

class EngineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineAgreementTest, SpecializedMatchesBruteForce) {
  const SavingsProblem sp =
      random_instance(GetParam() * 41 + 1, 12, 16, 160);
  const CasaBranchBoundResult r = CasaBranchBound().solve(sp);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.saving, brute_force(sp), 1e-6);
}

TEST_P(EngineAgreementTest, GenericTightMatchesBruteForce) {
  const SavingsProblem sp =
      random_instance(GetParam() * 43 + 2, 9, 10, 120);
  const CasaModel cm = build_casa_model(sp, Linearization::kTight);
  const ilp::Solution sol = ilp::BranchAndBound().solve(cm.model);
  ASSERT_EQ(sol.status, ilp::SolveStatus::kOptimal);
  const Energy energy = cm.objective_offset + sol.objective;
  EXPECT_NEAR(energy, sp.all_cached_energy - brute_force(sp), 1e-6);
}

TEST_P(EngineAgreementTest, PaperLinearizationMatchesTight) {
  const SavingsProblem sp = random_instance(GetParam() * 47 + 3, 7, 8, 100);

  const CasaModel paper = build_casa_model(sp, Linearization::kPaper);
  ilp::BranchAndBoundOptions opt;
  opt.branch_priority.assign(paper.model.var_count(), 0);
  for (const VarId l : paper.l_vars) opt.branch_priority[l.index()] = 1;
  const ilp::Solution ps = ilp::BranchAndBound(opt).solve(paper.model);
  ASSERT_EQ(ps.status, ilp::SolveStatus::kOptimal);

  const CasaModel tight = build_casa_model(sp, Linearization::kTight);
  const ilp::Solution ts = ilp::BranchAndBound().solve(tight.model);
  ASSERT_EQ(ts.status, ilp::SolveStatus::kOptimal);

  EXPECT_NEAR(paper.objective_offset + ps.objective,
              tight.objective_offset + ts.objective, 1e-6);
}

TEST_P(EngineAgreementTest, GreedyFeasibleAndNotAboveOptimum) {
  const SavingsProblem sp =
      random_instance(GetParam() * 53 + 4, 14, 20, 200);
  const GreedyResult g = solve_greedy(sp);
  Bytes w = 0;
  for (std::size_t k = 0; k < sp.item_count(); ++k) {
    if (g.chosen[k]) w += sp.weight[k];
  }
  EXPECT_LE(w, sp.capacity);
  const CasaBranchBoundResult exact = CasaBranchBound().solve(sp);
  EXPECT_LE(g.saving, exact.saving + 1e-9);
  // Density greedy should be at least half decent on these instances.
  EXPECT_GE(g.saving, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementTest, ::testing::Range(0, 12));

// ------------------------------------------------------- CasaBranchBound ---

TEST(CasaBranchBound, EmptyProblem) {
  SavingsProblem sp;
  sp.capacity = 128;
  const CasaBranchBoundResult r = CasaBranchBound().solve(sp);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.saving, 0.0);
}

TEST(CasaBranchBound, EdgeCoveredByEitherEndpoint) {
  SavingsProblem sp;
  sp.capacity = 10;
  sp.object_of = {MemoryObjectId(0), MemoryObjectId(1)};
  sp.value = {0.0, 0.0};
  sp.weight = {10, 10};  // only one fits
  sp.edges = {{0, 1, 100.0}};
  sp.all_cached_energy = 100.0;
  const CasaBranchBoundResult r = CasaBranchBound().solve(sp);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.saving, 100.0);  // one endpoint suffices
  EXPECT_NE(r.chosen[0], r.chosen[1]);
}

TEST(CasaBranchBound, PrefersEdgeCoverOverLinearValue) {
  // Item 0: linear 10. Items 1,2: tiny linear but heavy mutual edge; only
  // two of the three fit. Optimal: item 0 plus one edge endpoint.
  SavingsProblem sp;
  sp.capacity = 20;
  sp.object_of = {MemoryObjectId(0), MemoryObjectId(1), MemoryObjectId(2)};
  sp.value = {10.0, 1.0, 1.0};
  sp.weight = {10, 10, 10};
  sp.edges = {{1, 2, 50.0}};
  sp.all_cached_energy = 62.0;
  const CasaBranchBoundResult r = CasaBranchBound().solve(sp);
  EXPECT_DOUBLE_EQ(r.saving, 10.0 + 1.0 + 50.0);
  EXPECT_TRUE(r.chosen[0]);
}

TEST(CasaBranchBound, NodeLimitFlagsInexact) {
  const SavingsProblem sp = random_instance(99, 20, 40, 400);
  CasaBranchBoundOptions opt;
  opt.max_nodes = 2;
  const CasaBranchBoundResult r = CasaBranchBound(opt).solve(sp);
  EXPECT_FALSE(r.exact);
  // Incumbent is still feasible.
  Bytes w = 0;
  for (std::size_t k = 0; k < sp.item_count(); ++k) {
    if (r.chosen[k]) w += sp.weight[k];
  }
  EXPECT_LE(w, sp.capacity);
}

// ------------------------------------------------------------- Allocator ---

conflict::ConflictGraph tiny_graph() {
  std::vector<conflict::Edge> edges{
      {MemoryObjectId(0), MemoryObjectId(1), 50},
      {MemoryObjectId(1), MemoryObjectId(0), 60}};
  return conflict::ConflictGraph(3, {1000, 800, 10}, {0, 0, 0},
                                 {950, 740, 10}, std::move(edges));
}

CasaProblem tiny_problem(const conflict::ConflictGraph& g) {
  CasaProblem p;
  p.graph = &g;
  p.sizes = {40, 44, 48};
  p.capacity = 64;
  p.e_cache_hit = 1.0;
  p.e_cache_miss = 25.0;
  p.e_spm = 0.4;
  return p;
}

class AllocatorEngineTest : public ::testing::TestWithParam<CasaEngine> {};

TEST_P(AllocatorEngineTest, RespectsCapacityAndReportsSaving) {
  const auto g = tiny_graph();
  const CasaProblem p = tiny_problem(g);
  CasaOptions opt;
  opt.engine = GetParam();
  const AllocationResult r = CasaAllocator(opt).allocate(p);
  EXPECT_LE(r.used_bytes, p.capacity);
  EXPECT_EQ(r.on_spm.size(), 3u);
  EXPECT_GE(r.predicted_saving, 0.0);
  EXPECT_DOUBLE_EQ(r.predicted_energy + r.predicted_saving,
                   presolve(p).all_cached_energy);
}

INSTANTIATE_TEST_SUITE_P(Engines, AllocatorEngineTest,
                         ::testing::Values(CasaEngine::kSpecializedBnB,
                                           CasaEngine::kGenericIlp,
                                           CasaEngine::kGreedy));

TEST(Allocator, ExactEnginesAgree) {
  const auto g = tiny_graph();
  const CasaProblem p = tiny_problem(g);
  CasaOptions a, b;
  a.engine = CasaEngine::kSpecializedBnB;
  b.engine = CasaEngine::kGenericIlp;
  const AllocationResult ra = CasaAllocator(a).allocate(p);
  const AllocationResult rb = CasaAllocator(b).allocate(p);
  EXPECT_NEAR(ra.predicted_energy, rb.predicted_energy, 1e-6);
  EXPECT_TRUE(ra.exact);
  EXPECT_TRUE(rb.exact);
}

TEST(Allocator, AutoSwitchesOnEdgeCount) {
  const auto g = tiny_graph();
  const CasaProblem p = tiny_problem(g);
  CasaOptions opt;
  opt.engine = CasaEngine::kAuto;
  opt.generic_ilp_max_edges = 0;  // force specialized
  EXPECT_EQ(CasaAllocator(opt).allocate(p).engine_used,
            CasaEngine::kSpecializedBnB);
  opt.generic_ilp_max_edges = 100;
  EXPECT_EQ(CasaAllocator(opt).allocate(p).engine_used,
            CasaEngine::kGenericIlp);
}

TEST(Allocator, PaperLinearizationOptionWorks) {
  const auto g = tiny_graph();
  const CasaProblem p = tiny_problem(g);
  CasaOptions opt;
  opt.engine = CasaEngine::kGenericIlp;
  opt.linearization = Linearization::kPaper;
  const AllocationResult r = CasaAllocator(opt).allocate(p);
  EXPECT_TRUE(r.exact);
  CasaOptions tight = opt;
  tight.linearization = Linearization::kTight;
  EXPECT_NEAR(r.predicted_energy,
              CasaAllocator(tight).allocate(p).predicted_energy, 1e-6);
}

TEST(Allocator, ZeroCapacityPlacesNothing) {
  const auto g = tiny_graph();
  CasaProblem p = tiny_problem(g);
  p.capacity = 0;
  // All objects oversized -> fixed cached; empty savings problem.
  const AllocationResult r = CasaAllocator().allocate(p);
  EXPECT_EQ(r.used_bytes, 0u);
  for (const bool b : r.on_spm) EXPECT_FALSE(b);
}

// ------------------------------------------------------------ SolveStats ---

TEST(SolveStats, PopulatedBySpecializedSolver) {
  const SavingsProblem sp = random_instance(7, 12, 16, 160);
  const CasaBranchBoundResult r = CasaBranchBound().solve(sp);
  ASSERT_TRUE(r.exact);
  EXPECT_GT(r.stats.nodes, 0u);
  EXPECT_EQ(r.stats.nodes, r.nodes);  // legacy field stays in sync
  EXPECT_GT(r.stats.max_depth, 0u);
  EXPECT_GT(r.stats.incumbent_updates, 0u);
  // The specialized solver never runs simplex relaxations.
  EXPECT_EQ(r.stats.simplex_iterations, 0u);
}

TEST(SolveStats, PopulatedByGenericSolver) {
  const SavingsProblem sp = random_instance(11, 9, 10, 120);
  const CasaModel cm = build_casa_model(sp, Linearization::kTight);
  const ilp::BranchAndBound solver;
  const ilp::Solution sol = solver.solve(cm.model);
  ASSERT_EQ(sol.status, ilp::SolveStatus::kOptimal);
  const ilp::SolveStats& s = solver.last_stats();
  EXPECT_GT(s.nodes, 0u);
  EXPECT_EQ(s.nodes, solver.last_node_count());
  // A warm-started search may seed its incumbent before node 1 and never
  // improve it; either signal proves the incumbent machinery ran.
  EXPECT_TRUE(s.incumbent_updates > 0 || s.warm_start_used);
  EXPECT_GT(s.simplex_iterations, 0u);
}

TEST(SolveStats, SpecializedExploresNoMoreNodesThanGeneric) {
  // The point of the specialized solver: branching directly on items with
  // the edge-aware bound beats the generic ILP, which must also branch the
  // linearization variables. The LP-relaxation bound is occasionally
  // tighter on a single instance, so the honest claim — and the one worth
  // gating — is over the shared instance set as a whole.
  std::uint64_t spec_nodes = 0, generic_nodes = 0;
  for (const int seed : {1, 2, 3, 4, 5, 6}) {
    const SavingsProblem sp = random_instance(seed * 61 + 5, 10, 12, 140);
    const CasaBranchBoundResult spec = CasaBranchBound().solve(sp);
    ASSERT_TRUE(spec.exact);

    const CasaModel cm = build_casa_model(sp, Linearization::kTight);
    const ilp::BranchAndBound generic;
    const ilp::Solution sol = generic.solve(cm.model);
    ASSERT_EQ(sol.status, ilp::SolveStatus::kOptimal);
    EXPECT_NEAR(sp.all_cached_energy - spec.saving,
                cm.objective_offset + sol.objective, 1e-6)
        << "seed " << seed;

    spec_nodes += spec.stats.nodes;
    generic_nodes += generic.last_stats().nodes;
  }
  EXPECT_LE(spec_nodes, generic_nodes);
}

TEST(SolveStats, AllocatorReportsEngineStats) {
  const auto g = tiny_graph();
  const CasaProblem p = tiny_problem(g);

  CasaOptions opt;
  opt.engine = CasaEngine::kSpecializedBnB;
  const AllocationResult spec = CasaAllocator(opt).allocate(p);
  EXPECT_GT(spec.solver_stats.nodes, 0u);
  EXPECT_EQ(spec.solver_stats.nodes, spec.solver_nodes);

  opt.engine = CasaEngine::kGenericIlp;
  const AllocationResult gen = CasaAllocator(opt).allocate(p);
  EXPECT_GT(gen.solver_stats.nodes, 0u);
  EXPECT_GT(gen.solver_stats.simplex_iterations, 0u);

  opt.engine = CasaEngine::kGreedy;
  const AllocationResult greedy = CasaAllocator(opt).allocate(p);
  EXPECT_EQ(greedy.solver_stats.nodes, 0u);  // no tree was searched
  EXPECT_EQ(greedy.solver_stats.simplex_iterations, 0u);
}

TEST(Allocator, HugeCapacityTakesAllBeneficialObjects) {
  const auto g = tiny_graph();
  CasaProblem p = tiny_problem(g);
  p.capacity = 4096;
  const AllocationResult r = CasaAllocator().allocate(p);
  // Everything has positive fetch count -> everything saves energy.
  EXPECT_TRUE(r.on_spm[0]);
  EXPECT_TRUE(r.on_spm[1]);
  EXPECT_TRUE(r.on_spm[2]);
}

}  // namespace
}  // namespace casa::core

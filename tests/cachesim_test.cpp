#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "casa/cachesim/cache.hpp"
#include "casa/support/error.hpp"
#include "casa/support/rng.hpp"

namespace casa::cachesim {
namespace {

CacheConfig dm(Bytes size = 128, Bytes line = 16) {
  CacheConfig c;
  c.size = size;
  c.line_size = line;
  c.associativity = 1;
  return c;
}

TEST(CacheConfig, DerivedGeometry) {
  CacheConfig c = dm(2_KiB, 16);
  EXPECT_EQ(c.sets(), 128u);
  EXPECT_EQ(c.offset_bits(), 4u);
  EXPECT_EQ(c.index_bits(), 7u);
}

TEST(CacheConfig, ValidationRejectsBadShapes) {
  CacheConfig c = dm(100, 16);
  EXPECT_THROW(c.validate(), PreconditionError);
  c = dm(128, 12);
  EXPECT_THROW(c.validate(), PreconditionError);
  c = dm(128, 16);
  c.associativity = 0;
  EXPECT_THROW(c.validate(), PreconditionError);
}

TEST(Cache, ColdMissThenHitWithinLine) {
  Cache c(dm());
  EXPECT_FALSE(c.access(0x00).hit);
  EXPECT_TRUE(c.access(0x04).hit);
  EXPECT_TRUE(c.access(0x0c).hit);
  EXPECT_FALSE(c.access(0x10).hit);  // next line
}

TEST(Cache, DirectMappedConflict) {
  Cache c(dm(128, 16));  // 8 sets
  EXPECT_FALSE(c.access(0x00).hit);
  EXPECT_FALSE(c.access(0x80).hit);  // same set (0x80 = 8 lines away)
  const AccessResult r = c.access(0x00);
  EXPECT_FALSE(r.hit);  // was evicted
}

TEST(Cache, EvictionReportsVictimLine) {
  Cache c(dm(128, 16));
  c.access(0x00);
  const AccessResult r = c.access(0x80);
  ASSERT_TRUE(r.evicted_line.has_value());
  EXPECT_EQ(*r.evicted_line, 0u);  // line number of address 0
}

TEST(Cache, ColdMissHasNoVictim) {
  Cache c(dm());
  EXPECT_FALSE(c.access(0x00).evicted_line.has_value());
}

TEST(Cache, DifferentSetsDoNotConflict) {
  Cache c(dm(128, 16));
  c.access(0x00);
  c.access(0x10);  // set 1
  EXPECT_TRUE(c.access(0x00).hit);
  EXPECT_TRUE(c.access(0x10).hit);
}

TEST(Cache, TwoWayHoldsBothConflictingLines) {
  CacheConfig cfg = dm(128, 16);
  cfg.associativity = 2;
  Cache c(cfg);
  c.access(0x00);
  c.access(0x80);  // with 4 sets, same set as 0x00? 0x80/16=8, 8%4=0; 0/16=0
  EXPECT_TRUE(c.access(0x00).hit);
  EXPECT_TRUE(c.access(0x80).hit);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  CacheConfig cfg = dm(64, 16);
  cfg.associativity = 2;  // 2 sets
  Cache c(cfg);
  // set 0 lines: 0x00, 0x40, 0x80 (line numbers 0, 4, 8; 2 sets -> all even
  // lines map to set 0).
  c.access(0x00);
  c.access(0x40);
  c.access(0x00);                    // refresh 0x00
  const auto r = c.access(0x80);     // evicts LRU = 0x40
  ASSERT_TRUE(r.evicted_line.has_value());
  EXPECT_EQ(*r.evicted_line, 4u);
  EXPECT_TRUE(c.access(0x00).hit);
}

TEST(Cache, FifoIgnoresRecency) {
  CacheConfig cfg = dm(64, 16);
  cfg.associativity = 2;
  cfg.policy = ReplacementPolicy::kFifo;
  Cache c(cfg);
  c.access(0x00);
  c.access(0x40);
  c.access(0x00);                    // touch does not refresh FIFO order
  const auto r = c.access(0x80);     // evicts first-in = 0x00
  ASSERT_TRUE(r.evicted_line.has_value());
  EXPECT_EQ(*r.evicted_line, 0u);
}

TEST(Cache, RoundRobinCyclesWays) {
  CacheConfig cfg = dm(64, 16);
  cfg.associativity = 2;
  cfg.policy = ReplacementPolicy::kRoundRobin;
  Cache c(cfg);
  c.access(0x00);
  c.access(0x40);
  const auto r1 = c.access(0x80);
  ASSERT_TRUE(r1.evicted_line.has_value());
  const auto r2 = c.access(0xc0);
  ASSERT_TRUE(r2.evicted_line.has_value());
  EXPECT_NE(*r1.evicted_line, *r2.evicted_line);
}

TEST(Cache, RandomPolicyDeterministicPerSeed) {
  CacheConfig cfg = dm(64, 16);
  cfg.associativity = 2;
  cfg.policy = ReplacementPolicy::kRandom;
  Cache a(cfg, 7), b(cfg, 7);
  for (Addr addr = 0; addr < 0x400; addr += 16) {
    EXPECT_EQ(a.access(addr).hit, b.access(addr).hit);
  }
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache c(dm());
  c.access(0x00);
  c.flush();
  EXPECT_FALSE(c.access(0x00).hit);
}

TEST(Cache, ContainsIsNonDestructive) {
  Cache c(dm());
  c.access(0x00);
  EXPECT_TRUE(c.contains(0x04));
  EXPECT_FALSE(c.contains(0x80));
  EXPECT_EQ(c.accesses(), 1u);  // contains() did not count
}

TEST(Cache, CountersConsistent) {
  Cache c(dm());
  for (Addr a = 0; a < 0x100; a += 4) c.access(a);
  EXPECT_EQ(c.accesses(), 64u);
  EXPECT_EQ(c.hits() + c.misses(), c.accesses());
  // 16 lines touched, 8 sets -> every line cold-missed at least once.
  EXPECT_GE(c.misses(), 16u);
}

TEST(Cache, SequentialScanMissRateIsPerLine) {
  Cache c(dm(2_KiB, 16));
  const int words = 512;  // 2 KiB worth
  for (int i = 0; i < words; ++i) c.access(static_cast<Addr>(i) * 4);
  EXPECT_EQ(c.misses(), 128u);  // one miss per line
  EXPECT_EQ(c.hits(), static_cast<std::uint64_t>(words) - 128u);
}

// Parameterized invariants over cache geometries and policies.
using GeometryParam = std::tuple<Bytes, Bytes, unsigned, ReplacementPolicy>;

class CacheGeometryTest : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(CacheGeometryTest, WorkingSetSmallerThanCacheNeverConflictMisses) {
  const auto [size, line, assoc, policy] = GetParam();
  CacheConfig cfg;
  cfg.size = size;
  cfg.line_size = line;
  cfg.associativity = assoc;
  cfg.policy = policy;
  Cache c(cfg);
  // Touch exactly the cache's capacity repeatedly: after the cold pass,
  // everything must hit (true for LRU/FIFO/RR on a pure loop; random too
  // since there is no contention — every line maps to a distinct slot).
  for (int pass = 0; pass < 3; ++pass) {
    for (Bytes a = 0; a < size; a += line) c.access(a);
  }
  EXPECT_EQ(c.misses(), size / line);
}

TEST_P(CacheGeometryTest, HitsPlusMissesEqualsAccesses) {
  const auto [size, line, assoc, policy] = GetParam();
  CacheConfig cfg;
  cfg.size = size;
  cfg.line_size = line;
  cfg.associativity = assoc;
  cfg.policy = policy;
  Cache c(cfg, 3);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    c.access(rng.next_below(8 * size));
  }
  EXPECT_EQ(c.hits() + c.misses(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Combine(::testing::Values<Bytes>(128, 1_KiB, 2_KiB),
                       ::testing::Values<Bytes>(16, 32),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(ReplacementPolicy::kLru,
                                         ReplacementPolicy::kFifo,
                                         ReplacementPolicy::kRoundRobin)),
    [](const ::testing::TestParamInfo<GeometryParam>& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_a" +
             std::to_string(std::get<2>(info.param)) + "_" +
             to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace casa::cachesim

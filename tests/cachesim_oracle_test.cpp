// Differential oracle for the cache simulator: an independent, naive
// reference model (per-set vectors with explicit recency/insertion lists)
// must agree with casa::cachesim::Cache on every access of random and
// structured address streams, across geometries and policies.
#include <gtest/gtest.h>

#include <deque>
#include <tuple>
#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/support/rng.hpp"

namespace casa::cachesim {
namespace {

/// Deliberately simple reference: correctness over speed, written against
/// the textbook definitions rather than the production code's structure.
class ReferenceCache {
 public:
  ReferenceCache(const CacheConfig& cfg) : cfg_(cfg), sets_(cfg.sets()) {}

  struct Result {
    bool hit;
    std::optional<std::uint64_t> evicted;
  };

  Result access(Addr addr) {
    const std::uint64_t line = addr / cfg_.line_size;
    auto& set = sets_[line % sets_.size()];

    for (std::size_t i = 0; i < set.size(); ++i) {
      if (set[i] == line) {
        if (cfg_.policy == ReplacementPolicy::kLru) {
          // Move to the back (most recently used).
          set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
          set.push_back(line);
        }
        return {true, std::nullopt};
      }
    }
    // Miss: fill, evicting the front (LRU or FIFO order) when full.
    std::optional<std::uint64_t> evicted;
    if (set.size() == cfg_.associativity) {
      evicted = set.front();
      set.pop_front();
    }
    set.push_back(line);
    return {false, evicted};
  }

 private:
  CacheConfig cfg_;
  std::vector<std::deque<std::uint64_t>> sets_;
};

using Param = std::tuple<Bytes, Bytes, unsigned, ReplacementPolicy>;

class CacheOracleTest : public ::testing::TestWithParam<Param> {};

TEST_P(CacheOracleTest, AgreesOnRandomStream) {
  const auto [size, line, assoc, policy] = GetParam();
  CacheConfig cfg;
  cfg.size = size;
  cfg.line_size = line;
  cfg.associativity = assoc;
  cfg.policy = policy;

  Cache dut(cfg);
  ReferenceCache ref(cfg);
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const Addr addr = rng.next_below(16 * size) & ~3ull;
    const AccessResult a = dut.access(addr);
    const ReferenceCache::Result b = ref.access(addr);
    ASSERT_EQ(a.hit, b.hit) << "access " << i << " addr " << addr;
    ASSERT_EQ(a.evicted_line.has_value(), b.evicted.has_value())
        << "access " << i;
    if (a.evicted_line.has_value()) {
      ASSERT_EQ(*a.evicted_line, *b.evicted) << "access " << i;
    }
  }
}

TEST_P(CacheOracleTest, AgreesOnLoopingStream) {
  const auto [size, line, assoc, policy] = GetParam();
  CacheConfig cfg;
  cfg.size = size;
  cfg.line_size = line;
  cfg.associativity = assoc;
  cfg.policy = policy;

  Cache dut(cfg);
  ReferenceCache ref(cfg);
  // Instruction-like: a loop slightly larger than the cache, repeated.
  const Addr span = size + 3 * line;
  for (int pass = 0; pass < 50; ++pass) {
    for (Addr a = 0; a < span; a += 4) {
      const AccessResult x = dut.access(a);
      const ReferenceCache::Result y = ref.access(a);
      ASSERT_EQ(x.hit, y.hit) << "pass " << pass << " addr " << a;
    }
  }
  EXPECT_EQ(dut.hits() + dut.misses(), 50ull * (span / 4));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheOracleTest,
    ::testing::Combine(::testing::Values<Bytes>(128, 512, 2_KiB),
                       ::testing::Values<Bytes>(16, 32),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(ReplacementPolicy::kLru,
                                         ReplacementPolicy::kFifo)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_a" +
             std::to_string(std::get<2>(info.param)) + "_" +
             to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace casa::cachesim
